(* The experiment tables of EXPERIMENTS.md (the paper is a theory paper with
   no tables or figures; its theorems are the reproduction targets — one
   experiment per result, see DESIGN.md). *)

open Subc_sim
module Task = Subc_tasks.Task
module Alg2 = Subc_core.Alg2
module Alg3 = Subc_core.Alg3
module Alg4 = Subc_core.Alg4
module Alg5 = Subc_core.Alg5
module Alg6 = Subc_core.Alg6
module Hierarchy = Subc_core.Hierarchy
module Valence = Subc_check.Valence
module Task_check = Subc_check.Task_check
module Progress = Subc_check.Progress
module Verdict = Subc_check.Verdict
module Lin = Subc_check.Linearizability

(* Map the unified verdict back onto the e6/e9 table vocabulary: refutations
   by an infinite schedule read "diverges", safety refutations "violation". *)
let consensus_verdict_name config ~inputs =
  match Valence.consensus_verdict config ~inputs with
  | Verdict.Proved _ -> "solves"
  | Verdict.Refuted { reason; _ } ->
    let diverges =
      let sub = "infinite schedule" in
      let n = String.length sub in
      let rec scan i =
        i + n <= String.length reason && (String.sub reason i n = sub || scan (i + 1))
      in
      scan 0
    in
    if diverges then "diverges" else "violation"
  | Verdict.Limited _ -> "unknown"

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Format.printf "!! %s FAILED@." name
  end;
  if ok then "ok" else "FAIL"

let table ~title ~header rows =
  Format.printf "@.%s@." title;
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Format.printf "| %s |@."
      (String.concat " | "
         (List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths row))
  in
  print_row header;
  Format.printf "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

let seeds n = List.init n (fun i -> (7919 * (i + 1)) + 13)

(* ------------------------------------------------------------------ E1 *)

let max_distinct_exhaustive store programs =
  let config = Config.make store programs in
  let best = ref 0 in
  let stats =
    Explore.iter_terminals config ~f:(fun final _ ->
        best := max !best (List.length (Task.distinct (Config.decisions final))))
  in
  (!best, stats)

let e1 () =
  let rows_exh =
    List.map
      (fun k ->
        let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
        let inputs = List.init k (fun i -> Value.Int (100 + i)) in
        let programs = List.mapi (fun i v -> Alg2.propose t ~i v) inputs in
        let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
        let ok =
          Verdict.is_proved (Task_check.check store ~programs ~inputs ~task)
        in
        let best, stats = max_distinct_exhaustive store programs in
        [
          string_of_int k; "exhaustive"; string_of_int stats.Explore.states;
          string_of_int best; string_of_int (k - 1);
          check (Printf.sprintf "E1 k=%d" k) (ok && best = k - 1);
        ])
      [ 3; 4; 5; 6 ]
  in
  let rows_sam =
    List.map
      (fun k ->
        let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
        let inputs = List.init k (fun i -> Value.Int (100 + i)) in
        let programs = List.mapi (fun i v -> Alg2.propose t ~i v) inputs in
        let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
        let s = Task_check.sample store ~programs ~inputs ~task ~seeds:(seeds 400) in
        let best =
          let b = ref 0 in
          Array.iteri (fun i c -> if c > 0 then b := i + 1) s.Task_check.distinct_counts;
          !b
        in
        [
          string_of_int k; "400 runs"; "-"; string_of_int best;
          string_of_int (k - 1);
          check (Printf.sprintf "E1 k=%d sampled" k)
            (s.Task_check.violations = 0);
        ])
      [ 7; 8; 10 ]
  in
  table ~title:"E1. Algorithm 2: (k,k-1)-set consensus from one WRN_k"
    ~header:[ "k"; "mode"; "states"; "max-distinct"; "bound k-1"; "verdict" ]
    (rows_exh @ rows_sam)

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  let rows =
    List.map
      (fun k ->
        let inputs = List.init k (fun i -> Value.Int (100 + i)) in
        (* WRN: guaranteed bound k−1 over ALL schedules. *)
        let store_w, t = Alg2.alloc Store.empty ~k ~one_shot:true in
        let programs_w = List.mapi (fun i v -> Alg2.propose t ~i v) inputs in
        let wrn_max, _ = max_distinct_exhaustive store_w programs_w in
        (* Registers: some schedule reaches k. *)
        let store_r, r = Subc_classic.Rw_baseline.alloc Store.empty ~k in
        let programs_r =
          List.mapi (fun i v -> Subc_classic.Rw_baseline.propose r ~i v) inputs
        in
        let reg_max, _ = max_distinct_exhaustive store_r programs_r in
        [
          string_of_int k; string_of_int wrn_max; string_of_int reg_max;
          check (Printf.sprintf "E2 k=%d" k) (wrn_max = k - 1 && reg_max = k);
        ])
      [ 3; 4 ]
  in
  table
    ~title:
      "E2. The register gap (Cor 10): worst-case distinct decisions, all \
       schedules"
    ~header:[ "k"; "WRN_k"; "registers"; "verdict" ]
    rows

(* ------------------------------------------------------------------ E3 *)

let e3_config ~k ~flavor ~renamer ~ids =
  let store, t = Alg3.alloc Store.empty ~k ~flavor ~renamer () in
  let inputs = List.map (fun id -> Value.Int (100 + id)) ids in
  let programs =
    List.mapi (fun slot id -> Alg3.propose t ~slot ~id (Value.Int (100 + id))) ids
  in
  (store, programs, inputs, Alg3.instances t)

let e3 () =
  let run name ~k ~flavor ~renamer ~ids ~exhaustive =
    let store, programs, inputs, instances =
      e3_config ~k ~flavor ~renamer ~ids
    in
    let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
    let mode, ok =
      if exhaustive then
        ( "exhaustive",
          Verdict.is_proved (Task_check.check store ~programs ~inputs ~task) )
      else
        let s =
          Task_check.sample store ~programs ~inputs ~task ~seeds:(seeds 300)
        in
        ("300 runs", s.Task_check.violations = 0)
    in
    [
      string_of_int k; name; string_of_int instances; mode;
      string_of_int (k - 1); check ("E3 " ^ name) ok;
    ]
  in
  table
    ~title:"E3. Algorithm 3: k participants out of many (renaming + sweep)"
    ~header:[ "k"; "configuration"; "instances"; "mode"; "bound"; "verdict" ]
    [
      run "plain+grid" ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:Alg3.Rename_grid
        ~ids:[ 13; 7 ] ~exhaustive:true;
      run "plain+snapshot-renaming" ~k:2 ~flavor:Alg3.Plain_wrn
        ~renamer:Alg3.Rename_snapshot ~ids:[ 13; 7 ] ~exhaustive:true;
      run "plain+identity(5 names)" ~k:3 ~flavor:Alg3.Plain_wrn
        ~renamer:(Alg3.Rename_identity 5) ~ids:[ 0; 2; 4 ] ~exhaustive:false;
      run "relaxed+grid" ~k:3 ~flavor:Alg3.Relaxed_wrn ~renamer:Alg3.Rename_grid
        ~ids:[ 19; 3; 11 ] ~exhaustive:false;
      run "relaxed+snapshot-renaming" ~k:3 ~flavor:Alg3.Relaxed_wrn
        ~renamer:Alg3.Rename_snapshot ~ids:[ 104; 2; 77 ] ~exhaustive:false;
    ]

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  let run name ~indices =
    let store, t = Alg4.alloc Store.empty ~k:3 in
    let programs =
      List.mapi (fun p i -> Alg4.rlx_wrn t ~i (Value.Int (100 + p))) indices
    in
    let legal =
      Verdict.is_proved (Progress.check_t_resilient ~t:0 store ~programs)
    in
    let config = Config.make store programs in
    let all_bot, _ =
      Explore.find_terminal config ~violates:(fun final ->
          List.for_all Value.is_bot (Config.decisions final))
    in
    [
      name; (if legal then "never" else "REACHED");
      (if all_bot <> None then "yes" else "no");
      check ("E4 " ^ name) legal;
    ]
  in
  table
    ~title:
      "E4. Algorithm 4 (relaxed WRN over 1sWRN_3): legality under collisions"
    ~header:[ "index pattern"; "illegal use"; "all-bot reachable"; "verdict" ]
    [
      run "0,1,2 (distinct)" ~indices:[ 0; 1; 2 ];
      run "0,0,1 (partial collision)" ~indices:[ 0; 0; 1 ];
      run "0,0,0 (full collision)" ~indices:[ 0; 0; 0 ];
    ]

(* ------------------------------------------------------------------ E5 *)

let e5_row ~k ~participants ~max_states =
  let store, t = Alg5.alloc Store.empty ~k () in
  let programs =
    List.map (fun i -> Alg5.wrn t ~i (Value.Int (100 + i))) participants
  in
  let ops i =
    let idx = List.nth participants i in
    Op.make "wrn" [ Value.Int idx; Value.Int (100 + idx) ]
  in
  let spec = Subc_objects.One_shot_wrn.model ~k in
  let config = Config.make store programs in
  let terminals = ref 0 and bad = ref 0 in
  let stats =
    Explore.iter_terminals ~max_states config ~f:(fun final trace ->
        incr terminals;
        let history = Lin.history ~ops final trace in
        if Lin.check ~spec history = None then incr bad)
  in
  let name =
    Printf.sprintf "k=%d parts={%s}" k
      (String.concat "," (List.map string_of_int participants))
  in
  [
    name;
    string_of_int stats.Explore.states;
    string_of_int !terminals;
    string_of_int !bad;
    check ("E5 " ^ name) (!bad = 0 && not stats.Explore.limited);
  ]

let e5 () =
  table
    ~title:
      "E5. Algorithm 5: linearizability of 1sWRN_k from strong set election"
    ~header:[ "instance"; "states"; "terminals"; "non-linearizable"; "verdict" ]
    [
      e5_row ~k:3 ~participants:[ 0; 1 ] ~max_states:2_000_000;
      e5_row ~k:3 ~participants:[ 0; 2 ] ~max_states:2_000_000;
      e5_row ~k:3 ~participants:[ 0; 1; 2 ] ~max_states:4_000_000;
      e5_row ~k:4 ~participants:[ 0; 1; 2; 3 ] ~max_states:8_000_000;
    ]

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  let verdict ~k ~style =
    let store, t = Subc_classic.Wrn_attempts.alloc Store.empty ~k ~style in
    let programs =
      [
        Subc_classic.Wrn_attempts.propose t ~me:0 (Value.Int 0);
        Subc_classic.Wrn_attempts.propose t ~me:1 (Value.Int 1);
      ]
    in
    let config = Config.make store programs in
    consensus_verdict_name config ~inputs:[ Value.Int 0; Value.Int 1 ]
  in
  let styles =
    [
      ("mirror-alg2", Subc_classic.Wrn_attempts.Mirror_alg2, "violation");
      ("same-index", Subc_classic.Wrn_attempts.Same_index, "violation");
      ("announce+adjacent", Subc_classic.Wrn_attempts.Adjacent_announce, "violation");
      ("busy-wait", Subc_classic.Wrn_attempts.Busy_wait, "diverges");
    ]
  in
  (* On WRN₂ the mirror and announce protocols are real 2-consensus; the
     same-index protocol still fails; busy-wait fails by disagreement (its
     spin cell 0 is written by P0, so it terminates — into a violation). *)
  let expected_k2 = function
    | "mirror-alg2" | "announce+adjacent" -> "solves"
    | "same-index" | "busy-wait" -> "violation"
    | _ -> "diverges"
  in
  table
    ~title:
      "E6. Lemma 38: 2-process consensus attempts — WRN_2 vs WRN_k (k>=3)"
    ~header:[ "protocol"; "WRN_2"; "WRN_3"; "WRN_4"; "verdict" ]
    (List.map
       (fun (name, style, expect3) ->
         let v2 = verdict ~k:2 ~style in
         let v3 = verdict ~k:3 ~style in
         let v4 = verdict ~k:4 ~style in
         [
           name; v2; v3; v4;
           check ("E6 " ^ name)
             (v3 = expect3 && v4 = expect3 && v2 = expected_k2 name);
         ])
       styles)

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  let rows =
    List.concat_map
      (fun k ->
        List.filter_map
          (fun n ->
            if n < k then None
            else
              let m = Alg6.agreement_bound ~n ~k in
              let store, t = Alg6.alloc Store.empty ~n ~k ~one_shot:true in
              let inputs = List.init n (fun i -> Value.Int (100 + i)) in
              let programs = List.mapi (fun i v -> Alg6.propose t ~i v) inputs in
              let task =
                Task.conj (Task.set_consensus m) Task.all_decided
              in
              let s =
                Task_check.sample store ~programs ~inputs ~task
                  ~seeds:(seeds 200)
              in
              let best =
                let b = ref 0 in
                Array.iteri
                  (fun i c -> if c > 0 then b := i + 1)
                  s.Task_check.distinct_counts;
                !b
              in
              Some
                [
                  string_of_int n; string_of_int k; string_of_int m;
                  Printf.sprintf "%.2f" (float_of_int m /. float_of_int n);
                  Printf.sprintf "%.2f" (float_of_int (k - 1) /. float_of_int k);
                  string_of_int best;
                  check (Printf.sprintf "E7 n=%d k=%d" n k)
                    (s.Task_check.violations = 0);
                ])
          [ 3; 4; 6; 8; 12 ])
      [ 3; 4; 5 ]
  in
  table
    ~title:
      "E7. Algorithm 6: m-set consensus for n processes (ratio (k-1)/k <= m/n)"
    ~header:[ "n"; "k"; "m"; "m/n"; "(k-1)/k"; "max-distinct(200)"; "verdict" ]
    rows

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  let pair_rows =
    List.map
      (fun (k, k') ->
        let fwd = Hierarchy.implementable ~n:k' ~k:(k' - 1) ~m:k ~j:(k - 1) in
        let sep = Hierarchy.separates ~k ~k' in
        [
          Printf.sprintf "%d -> %d" k k';
          (if fwd then "yes" else "no");
          (if sep then "no (Thm 41)" else "yes");
          check (Printf.sprintf "E8 %d->%d" k k') (fwd && sep);
        ])
      [ (3, 4); (3, 5); (4, 5); (4, 6); (5, 9) ]
  in
  table
    ~title:
      "E8. Corollary 42: the hierarchy — 1sWRN_k implements 1sWRN_k' iff k <= k'"
    ~header:[ "k -> k'"; "upward"; "downward"; "verdict" ]
    pair_rows;
  (* Partition construction demo. *)
  let store, t = Hierarchy.alloc_set_consensus Store.empty ~n:4 ~m:3 ~j:2 in
  let inputs = List.init 4 (fun i -> Value.Int (100 + i)) in
  let programs = List.mapi (fun i v -> Hierarchy.propose t ~i v) inputs in
  let best, stats = max_distinct_exhaustive store programs in
  Format.printf
    "partition construction (4 procs from (3,2)-objects): max distinct %d \
     (bound %d), states %d  [%s]@."
    best
    (Hierarchy.partition_bound ~n:4 ~m:3 ~j:2)
    stats.Explore.states
    (check "E8 partition" (best = 3))

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  let store, h = Store.alloc Store.empty (Subc_objects.Sse_obj.model ~k:3 ~j:2) in
  let store, regs = Store.alloc_many store 2 Subc_objects.Register.model_bot in
  let program me v =
    let open Program.Syntax in
    let* () = Subc_objects.Register.write (List.nth regs me) v in
    let* w = Subc_objects.Sse_obj.propose h me in
    if w = me then Program.return v
    else Subc_objects.Register.read (List.nth regs (1 - me))
  in
  let config =
    Config.make store [ program 0 (Value.Int 0); program 1 (Value.Int 1) ]
  in
  let v = consensus_verdict_name config ~inputs:[ Value.Int 0; Value.Int 1 ] in
  Format.printf
    "@.E9. The S2 strong-set-election object cannot solve 2-consensus \
     (win/lose protocol): %s  [%s]@."
    v
    (check "E9" (v = "violation"))

(* ----------------------------------------------------------------- E10 *)

let e10 () =
  (* Snapshot refinement. *)
  let outcomes_of store programs =
    let config = Config.make store programs in
    let acc = ref [] in
    let _ =
      Explore.iter_terminals config ~f:(fun final _ ->
          acc := Config.decisions final :: !acc)
    in
    List.sort_uniq compare !acc
  in
  let harness (api : Subc_rwmem.Snapshot_api.t) =
    let program me v =
      let open Program.Syntax in
      let* () = api.Subc_rwmem.Snapshot_api.update ~me (Value.Int v) in
      api.Subc_rwmem.Snapshot_api.scan
    in
    [ program 0 10; program 1 11 ]
  in
  let store_p, api_p = Subc_rwmem.Snapshot_api.primitive Store.empty 2 in
  let spec_outcomes = outcomes_of store_p (harness api_p) in
  let store_r, api_r = Subc_rwmem.Snapshot_api.register_based Store.empty 2 in
  let impl_outcomes = outcomes_of store_r (harness api_r) in
  let refines = List.for_all (fun o -> List.mem o spec_outcomes) impl_outcomes in
  (* Counter flag principle. *)
  let store, counter =
    Subc_rwmem.Counter_impl.alloc Store.empty ~contributors:2
      ~snapshot:Subc_rwmem.Snapshot_api.register_based
  in
  let program me =
    let open Program.Syntax in
    let* () = Subc_rwmem.Counter_impl.inc counter ~me in
    let* c = Subc_rwmem.Counter_impl.read counter in
    Program.return (Value.Int c)
  in
  let config = Config.make store [ program 0; program 1 ] in
  let flag_ok =
    Result.is_ok
      (Explore.check_terminals config ~ok:(fun final ->
           List.length
             (List.filter (Value.equal (Value.Int 1)) (Config.decisions final))
           <= 1))
  in
  table ~title:"E10. Substrate validity (register-only constructions)"
    ~header:[ "construction"; "property"; "result"; "verdict" ]
    [
      [
        "AADGMS snapshot (n=2)"; "refines atomic snapshot";
        Printf.sprintf "%d impl / %d spec outcomes"
          (List.length impl_outcomes) (List.length spec_outcomes);
        check "E10 snapshot" refines;
      ];
      [
        "counter from snapshot"; "flag principle (<=1 reads 1)";
        (if flag_ok then "holds" else "broken");
        check "E10 counter" flag_ok;
      ];
    ]

(* ----------------------------------------------------------------- E11 *)

let e11 () =
  let elect_programs t ids =
    List.map
      (fun i ->
        Program.map (fun w -> Value.Int w)
          (Subc_core.Sse_from_set_consensus.elect t ~i))
      ids
  in
  let inputs = [ Value.Int 0; Value.Int 1; Value.Int 2 ] in
  let task = Task.strong_set_election 2 in
  let store_n, tn = Subc_core.Sse_from_set_consensus.alloc_naive Store.empty ~k:3 in
  let naive =
    match
      Task_check.check store_n ~programs:(elect_programs tn [ 0; 1; 2 ])
        ~inputs ~task
    with
    | Verdict.Refuted { reason; trace; _ } ->
      Printf.sprintf "%s (schedule length %d)" reason (Trace.length trace)
    | Verdict.Proved _ | Verdict.Limited _ -> "no violation (?)"
  in
  let store_i, ti =
    Subc_core.Sse_from_set_consensus.alloc_iterated Store.empty ~k:3
  in
  let iterated =
    match
      Task_check.check
        ~options:Search.(with_max_states 4_000_000 default)
        store_i ~programs:(elect_programs ti [ 0; 1; 2 ]) ~inputs ~task
    with
    | Verdict.Refuted { reason; trace; _ } ->
      Printf.sprintf "%s (schedule length %d)" reason (Trace.length trace)
    | Verdict.Proved _ | Verdict.Limited _ -> "no violation (?)"
  in
  table
    ~title:
      "E11. Why [9] is nontrivial: candidate SSE constructions fail \
       (model-checked counterexamples)"
    ~header:[ "candidate"; "counterexample"; "verdict" ]
    [
      [ "naive (1 round)"; naive; check "E11 naive" (naive <> "no violation (?)") ];
      [
        "iterated (k rounds + commit board)"; iterated;
        check "E11 iterated" (iterated <> "no violation (?)");
      ];
    ]

(* ----------------------------------------------------------------- E12 *)

let e12 () =
  let show = function
    | `Solves -> "solves"
    | `Violates -> "fails"
    | `Diverges -> "diverges"
    | `Unknown -> "unknown"
  in
  let rows =
    List.map
      (fun family ->
        let v2 = Subc_classic.Consensus_number.verdict family ~n:2 in
        let v3 = Subc_classic.Consensus_number.verdict family ~n:3 in
        let known = Subc_classic.Consensus_number.known_consensus_number family in
        let expected =
          match known with
          | Some 1 -> v2 <> `Solves && v3 <> `Solves
          | Some 2 -> v2 = `Solves && v3 <> `Solves
          | Some _ -> true
          | None -> v2 = `Solves && v3 = `Solves
        in
        [
          Subc_classic.Consensus_number.family_name family;
          show v2; show v3;
          (match known with Some n -> string_of_int n | None -> "∞");
          check ("E12 " ^ Subc_classic.Consensus_number.family_name family)
            expected;
        ])
      Subc_classic.Consensus_number.all_families
  in
  table
    ~title:
      "E12. The consensus hierarchy around the paper's band (canonical \
       protocols, model-checked)"
    ~header:[ "object"; "n=2"; "n=3"; "known cons. no."; "verdict" ]
    rows

(* ----------------------------------------------------------------- E13 *)

let e13 () =
  let module P = Subc_classic.Set_consensus_power in
  let grid = [ (2, 1); (2, 2); (3, 1); (3, 2); (4, 2); (4, 3) ] in
  let families =
    [
      P.Registers; P.Wrn_objects 3; P.Wrn_objects 4; P.Sse_object 3;
      P.Sse_object 4; P.Two_consensus_pairs; P.Cas_object;
    ]
  in
  let rows =
    List.map
      (fun family ->
        let cells_ok = ref true in
        let cells =
          List.map
            (fun (n, k) ->
              if not (P.applicable family ~n) then "-"
              else
                let got = P.verdict family ~n ~k in
                let want = P.predicted family ~n ~k in
                let shown =
                  match got with
                  | `Solves -> "yes"
                  | `Violates -> "no"
                  | `Diverges -> "div"
                  | `Unknown -> "?"
                in
                if (got = `Solves) <> want then begin
                  cells_ok := false;
                  shown ^ "!"
                end
                else shown)
            grid
        in
        (P.family_name family :: cells)
        @ [ check ("E13 " ^ P.family_name family) !cells_ok ])
      families
  in
  table
    ~title:
      "E13. Set-consensus power classification (the conclusion's yardstick): \
       does the family solve (n,k)-set consensus?"
    ~header:
      ("family"
      :: List.map (fun (n, k) -> Printf.sprintf "(%d,%d)" n k) grid
      @ [ "verdict" ])
    rows

(* ----------------------------------------------------------------- E14 *)

let e14 () =
  let module Ps = Subc_classic.Protocol_search in
  let rows =
    List.map
      (fun (k, ops) ->
        let c = Ps.census ~k ~ops () in
        let expect_solvers = k = 2 in
        [
          string_of_int k;
          string_of_int ops;
          string_of_int c.Ps.total;
          string_of_int c.Ps.solving;
          (match c.Ps.example_solver with
          | Some p -> Ps.describe p
          | None -> "-");
          check
            (Printf.sprintf "E14 k=%d ops=%d" k ops)
            (expect_solvers = (c.Ps.solving > 0));
        ])
      [ (2, 1); (3, 1); (4, 1); (2, 2); (3, 2) ]
  in
  table
    ~title:
      "E14. Exhaustive protocol-space refutation (Lemma 38's quantifier, \
       discharged for a bounded class)"
    ~header:[ "k"; "ops"; "protocols"; "solving"; "example solver"; "verdict" ]
    rows

(* ----------------------------------------------------------------- E15 *)

let e15 () =
  (* Algorithm 2, k=3: safety under EVERY schedule and every crash pattern
     with <= f crashes, f = 0, 1, 2. *)
  let alg2_rows =
    let k = 3 in
    let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
    let inputs = List.init k (fun i -> Value.Int (100 + i)) in
    let programs = List.mapi (fun i v -> Alg2.propose t ~i v) inputs in
    let task = Task.set_consensus (k - 1) in
    List.map
      (fun f ->
        let config = Config.make store programs in
        let outcome, states, ok =
          match
            Explore.check_terminals ~max_crashes:f config ~ok:(fun c ->
                Task.satisfies task ~inputs c)
          with
          | Ok stats ->
            ( "safe", stats.Explore.states,
              not stats.Explore.limited )
          | Error (_, _, stats) -> ("VIOLATION", stats.Explore.states, false)
        in
        [
          "Alg 2 (k=3) safety"; Printf.sprintf "exhaustive, f=%d" f;
          string_of_int states; outcome;
          check (Printf.sprintf "E15 alg2 f=%d" f) ok;
        ])
      [ 0; 1; 2 ]
  in
  (* Algorithm 5, k=3: every terminal under a one-crash budget linearizes
     against the 1sWRN spec (crashed participants = incomplete operations). *)
  let alg5_row =
    let k = 3 in
    let store, t = Alg5.alloc Store.empty ~k () in
    let programs =
      List.init k (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    let ops i = Op.make "wrn" [ Value.Int i; Value.Int (100 + i) ] in
    let spec = Subc_objects.One_shot_wrn.model ~k in
    let config = Config.make store programs in
    let bad = ref 0 in
    let stats =
      Explore.iter_terminals ~max_crashes:1 config ~f:(fun final trace ->
          let history = Lin.history ~ops final trace in
          if Lin.check ~spec history = None then incr bad)
    in
    [
      "Alg 5 (k=3) linearizability"; "exhaustive, f=1";
      string_of_int stats.Explore.states;
      Printf.sprintf "%d bad / %d terminals (%d crashed)" !bad
        stats.Explore.terminals stats.Explore.crashed_terminals;
      check "E15 alg5 lin f=1" (!bad = 0 && not stats.Explore.limited);
    ]
  in
  (* Wait-freedom certificates (solo-step bounds), crash budget included. *)
  let progress_row name ~expect_bound store programs ~max_crashes =
    match
      Progress.check_wait_free
        ~options:Search.(with_max_crashes max_crashes default)
        store ~programs
    with
    | Verdict.Proved _ as v ->
      let metric key =
        match List.assoc_opt key (Verdict.stats v).Verdict.metrics with
        | Some x -> int_of_float x
        | None -> -1
      in
      [
        name; Printf.sprintf "progress, f=%d" max_crashes;
        string_of_int (metric "configs");
        Printf.sprintf "wait-free, solo bound %d" (metric "solo_bound");
        check ("E15 " ^ name)
          (match expect_bound with
          | Some b -> metric "solo_bound" = b
          | None -> true);
      ]
    | Verdict.Refuted { reason; _ } ->
      [
        name; Printf.sprintf "progress, f=%d" max_crashes; "-"; reason;
        check ("E15 " ^ name) false;
      ]
    | Verdict.Limited _ ->
      [
        name; Printf.sprintf "progress, f=%d" max_crashes; "-";
        "exploration truncated"; check ("E15 " ^ name) false;
      ]
  in
  let alg2_progress =
    let store, t = Alg2.alloc Store.empty ~k:3 ~one_shot:true in
    let programs =
      List.init 3 (fun i -> Alg2.propose t ~i (Value.Int (100 + i)))
    in
    progress_row "Alg 2 (k=3) wait-freedom" ~expect_bound:(Some 1) store
      programs ~max_crashes:2
  in
  let alg5_progress =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    let programs =
      List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    progress_row "Alg 5 (k=3) wait-freedom" ~expect_bound:None store programs
      ~max_crashes:1
  in
  (* A deliberately lock-free-only construction must produce a
     counterexample schedule: the spinner solo-runs forever. *)
  let spinner_row =
    let store, reg = Store.alloc Store.empty Subc_objects.Register.model_bot in
    let spinner =
      let open Program.Syntax in
      let rec spin () =
        let* () = Program.checkpoint (Value.Sym "spin") in
        let* v = Subc_objects.Register.read reg in
        if Value.is_bot v then spin () else Program.return v
      in
      spin ()
    in
    let writer =
      let open Program.Syntax in
      let* () = Subc_objects.Register.write reg (Value.Int 1) in
      Program.return (Value.Int 1)
    in
    match Progress.check_wait_free store ~programs:[ spinner; writer ] with
    | Verdict.Refuted { reason; _ }
      when String.length reason >= 9 && String.sub reason 0 9 = "process 0" ->
      [
        "lock-free spinner"; "progress, f=0"; "-";
        "NOT wait-free (P0 solo-spins)"; check "E15 spinner" true;
      ]
    | Verdict.Refuted { reason; _ } ->
      [
        "lock-free spinner"; "progress, f=0"; "-"; reason;
        check "E15 spinner" false;
      ]
    | Verdict.Proved _ | Verdict.Limited _ ->
      [
        "lock-free spinner"; "progress, f=0"; "-"; "no counterexample (?)";
        check "E15 spinner" false;
      ]
  in
  (* BG simulation: a crashed simulator blocks at most one simulated
     process — the surviving simulator still decides >= m-1 of them. *)
  let bg_row =
    let simulators = 2 and m = 3 in
    let runs = ref 0 and ok = ref 0 and blocked_seen = ref 0 in
    List.iter
      (fun seed ->
        List.iter
          (fun s ->
            incr runs;
            let codes =
              List.init m (fun p ->
                  Subc_bgsim.Sim_code.write_then_snapshot
                    (Value.Int (100 + p)) Fun.id)
            in
            let store, bg = Subc_bgsim.Bg.alloc Store.empty ~simulators ~codes in
            let programs =
              List.init simulators (fun me -> Subc_bgsim.Bg.simulate bg ~me)
            in
            let config = Config.make store programs in
            let r =
              Runner.run
                (Runner.Crash_at { crashes = [ (s, 1) ]; seed = Some seed })
                config
            in
            match Config.decision r.Runner.final 0 with
            | Some (Value.Vec views) ->
              let undecided =
                List.length (List.filter Value.is_bot views)
              in
              if undecided > 0 then incr blocked_seen;
              if r.Runner.completed && undecided <= 1 then incr ok
            | _ -> ())
          (List.init 12 (fun s -> s)))
      (seeds 25);
    [
      "BG (2 sims, m=3), sim 1 dies"; "crash-at-step sweep";
      string_of_int !runs;
      Printf.sprintf "%d/%d runs block <= 1 simulated (%d blocked some)" !ok
        !runs !blocked_seen;
      check "E15 bg" (!ok = !runs);
    ]
  in
  table
    ~title:
      "E15. Crash-resilience matrix: first-class crash faults, exhaustive \
       sweeps and wait-freedom certificates"
    ~header:[ "instance"; "crash model"; "states/runs"; "outcome"; "verdict" ]
    (alg2_rows
    @ [ alg5_row; alg2_progress; alg5_progress; spinner_row; bg_row ])

(* ----------------------------------------------------------------- E16 *)

(* Reduction-ratio table: the same instances explored with and without
   symmetry quotienting + source sets.  Two ratios are reported because
   they bound different resources: visited {e states} (capped by the group
   order — rotations give at most 3x at k=3) and {e transitions} (state
   expansions, where source sets add their savings on top).  All counts are
   deterministic, so the ratios are exact reproduction targets, not
   timings. *)

let e16 () =
  let module Sc = Subc_objects.Set_consensus_obj in
  let group_order n = function
    | `Full -> List.length (Symmetry.all_perms n)
    | `Rotations -> n
    | `Trivial -> 1
  in
  let totals = ref (0, 0, 0, 0) in
  let ratios = ref [] in
  let row name ~f ~group ~n config =
    let base = Explore.iter_terminals ~max_crashes:f config ~f:(fun _ _ -> ()) in
    let sym = Symmetry.standard ~n ~input_base:100 group in
    let full =
      Explore.iter_terminals ~max_crashes:f
        ~reduction:(Explore.full_reduction sym) config
        ~f:(fun _ _ -> ())
    in
    let ratio a b = float_of_int a /. float_of_int (max 1 b) in
    let s_ratio = ratio base.Explore.states full.Explore.states in
    let t_ratio = ratio base.Explore.transitions full.Explore.transitions in
    let tag = Printf.sprintf "e16.%s.f%d" name f in
    Subc_obs.Metrics.set_gauge (tag ^ ".states_ratio") s_ratio;
    Subc_obs.Metrics.set_gauge (tag ^ ".transitions_ratio") t_ratio;
    ratios := (tag, t_ratio) :: !ratios;
    let bs, bt, fs, ft = !totals in
    totals :=
      ( bs + base.Explore.states, bt + base.Explore.transitions,
        fs + full.Explore.states, ft + full.Explore.transitions );
    [
      name;
      Printf.sprintf "f=%d, |G|=%d" f (group_order n group);
      Printf.sprintf "%d / %d" base.Explore.states full.Explore.states;
      Printf.sprintf "%d / %d" base.Explore.transitions full.Explore.transitions;
      Printf.sprintf "%.2fx" s_ratio;
      Printf.sprintf "%.2fx" t_ratio;
      check
        (Printf.sprintf "E16 %s f=%d" name f)
        ((not base.Explore.limited)
        && (not full.Explore.limited)
        && full.Explore.states <= base.Explore.states
        && full.Explore.transitions <= base.Explore.transitions
        && full.Explore.terminals > 0
        && full.Explore.terminals <= base.Explore.terminals);
    ]
  in
  let alg2_config () =
    let store, t = Alg2.alloc Store.empty ~k:3 ~one_shot:true in
    let programs =
      List.init 3 (fun i -> Alg2.propose t ~i (Value.Int (100 + i)))
    in
    Config.make store programs
  in
  let alg5_config () =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    let programs =
      List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    Config.make store programs
  in
  let sc_config () =
    let store, h = Store.alloc Store.empty (Sc.model ~n:3 ~k:2) in
    let programs =
      List.init 3 (fun i -> Sc.propose h (Value.Int (100 + i)))
    in
    Config.make store programs
  in
  let chained_sc_config () =
    let store, ha = Store.alloc Store.empty (Sc.model ~n:3 ~k:2) in
    let store, hb = Store.alloc store (Sc.model ~n:3 ~k:2) in
    let programs =
      List.init 3 (fun i ->
          Program.bind
            (Sc.propose ha (Value.Int (100 + i)))
            (fun r -> Sc.propose hb r))
    in
    Config.make store programs
  in
  let wrn_config () =
    let store, h = Store.alloc Store.empty (Subc_objects.One_shot_wrn.model ~k:3) in
    let programs =
      List.init 3 (fun i ->
          Subc_objects.One_shot_wrn.wrn h i (Value.Int (100 + i)))
    in
    Config.make store programs
  in
  let rows =
    List.map
      (fun f -> row "Alg 2 (k=3)" ~f ~group:`Rotations ~n:3 (alg2_config ()))
      [ 0; 1; 2 ]
    @ List.map
        (fun f -> row "Alg 5 (k=3)" ~f ~group:`Rotations ~n:3 (alg5_config ()))
        [ 0; 1 ]
    @ List.map
        (fun f -> row "set-consensus (3,2)" ~f ~group:`Full ~n:3 (sc_config ()))
        [ 0; 1 ]
    @ List.map
        (fun f ->
          row "chained set-consensus" ~f ~group:`Full ~n:3 (chained_sc_config ()))
        [ 0; 1 ]
    @ [ row "1sWRN (k=3)" ~f:0 ~group:`Rotations ~n:3 (wrn_config ()) ]
  in
  let bs, bt, fs, ft = !totals in
  let agg_states = float_of_int bs /. float_of_int (max 1 fs) in
  let agg_trans = float_of_int bt /. float_of_int (max 1 ft) in
  Subc_obs.Metrics.set_gauge "e16.aggregate.states_ratio" agg_states;
  Subc_obs.Metrics.set_gauge "e16.aggregate.transitions_ratio" agg_trans;
  let agg_row =
    [
      "aggregate"; "-";
      Printf.sprintf "%d / %d" bs fs;
      Printf.sprintf "%d / %d" bt ft;
      Printf.sprintf "%.2fx" agg_states;
      Printf.sprintf "%.2fx" agg_trans;
      (* The counts are deterministic, so these thresholds are exact
         reproduction targets: the dominant Alg 5 f=1 row keeps >= 4.5x
         fewer state expansions (crash-terminal configurations retain
         their stores in the memo key — they are revivable under a
         recovery budget — which costs a little merging on the f>=1
         rows); states are capped by the group order (rotations give at
         most 3x on the WRN rows), so the aggregate states ratio sits
         near that ceiling. *)
      check "E16 aggregate"
        (agg_trans >= 3.5 && agg_states >= 3.0
        && List.assoc "e16.Alg 5 (k=3).f1" !ratios >= 4.5);
    ]
  in
  table
    ~title:
      "E16. Reduction ratios: symmetry quotienting + source sets vs the \
       plain exhaustive search (base / reduced; deterministic counts)"
    ~header:
      [ "instance"; "crash, group"; "states"; "transitions"; "states x";
        "transitions x"; "verdict" ]
    (rows @ [ agg_row ])

(* ------------------------------------------------------------------ E17 *)

(* Multicore scaling: the parallel engine must reproduce the sequential
   counts bit-for-bit at every domain count (that part is asserted); the
   timing columns are informational — wall-clock speedup is bounded by
   the host's core count, which the table header records. *)
let e17 () =
  let instance name config ~max_crashes ~reduction =
    let explore jobs =
      let t0 = Unix.gettimeofday () in
      let stats =
        if jobs <= 1 then
          Explore.iter_terminals ~max_crashes ?reduction config
            ~f:(fun _ _ -> ())
        else
          Parallel.iter_terminals ~max_crashes ?reduction ~jobs config
            ~f:(fun _ _ -> ())
      in
      (stats, Unix.gettimeofday () -. t0)
    in
    let base, base_secs = explore 1 in
    List.map
      (fun jobs ->
        let stats, secs = explore jobs in
        let agree =
          stats.Explore.states = base.Explore.states
          && stats.Explore.transitions = base.Explore.transitions
          && stats.Explore.terminals = base.Explore.terminals
          && stats.Explore.hung_terminals = base.Explore.hung_terminals
          && stats.Explore.crashed_terminals = base.Explore.crashed_terminals
        in
        let secs = if jobs = 1 then base_secs else secs in
        [
          name;
          string_of_int jobs;
          string_of_int stats.Explore.states;
          string_of_int stats.Explore.terminals;
          Printf.sprintf "%.3fs" secs;
          Printf.sprintf "%.0f" (float_of_int stats.Explore.states /. secs);
          Printf.sprintf "%.2fx" (base_secs /. secs);
          check (Printf.sprintf "E17 %s jobs=%d counts" name jobs) agree;
        ])
      [ 1; 2; 4; 8 ]
  in
  let alg2_rows =
    let k = 4 in
    let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
    let programs =
      List.init k (fun i -> Alg2.propose t ~i (Value.Int (100 + i)))
    in
    instance "Alg 2 (k=4), f=1"
      (Config.make store programs)
      ~max_crashes:1 ~reduction:None
  in
  let alg5_rows =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    let programs =
      List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    instance "Alg 5 (k=3), f=1"
      (Config.make store programs)
      ~max_crashes:1 ~reduction:None
  in
  let alg5_sym_rows =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    let programs =
      List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    let sym = Alg5.symmetry t ~input_base:100 () in
    instance "Alg 5 (k=3), f=1, sym"
      (Config.make store programs)
      ~max_crashes:1
      ~reduction:(Some (Explore.with_symmetry sym))
  in
  table
    ~title:
      (let host_domains = Domain.recommended_domain_count () in
       (* The same marker lands in BENCH_results.json as "mode": a
          single-core host can only measure synchronization overhead. *)
       let mode = if host_domains > 1 then "parallel" else "overhead-only" in
       Printf.sprintf
         "E17. Multicore scaling: parallel engine vs sequential counts \
          (identical by construction, asserted); host offers %d domain(s) \
          [mode: %s], which bounds any wall-clock speedup"
         host_domains mode)
    ~header:
      [ "instance"; "jobs"; "states"; "terminals"; "wall"; "states/s";
        "speedup"; "verdict" ]
    (alg2_rows @ alg5_rows @ alg5_sym_rows)

(* ------------------------------------------------------------------ E18 *)

(* Recoverable consensus (the crash-recovery model of Golab–Ramaraju,
   separations per Ovens 2024): shared objects keep their state across a
   crash but a recovered process restarts its program from the top.  The
   readable one-shot winners of the classical hierarchy — test-and-set,
   fetch-and-add, swap, queue — lose their 2-process consensus power the
   moment one recovery is allowed: a recovered winner re-runs the
   competition, now observes the loser's token, and adopts the loser's
   value while the loser adopted the winner's.  compare-and-swap and
   consensus objects are self-verifying (re-running returns the first
   committed value) and keep solving at every budget; registers solve
   nothing either way.  Each cell is an exhaustive model-checker verdict
   over every schedule, crash pattern and recovery pattern within the
   budgets (n = 2, crash budget max(n−1, r)); every cell is asserted
   against the expected separation table. *)
let e18 () =
  let module R = Subc_check.Recoverable in
  let budgets = [ 0; 1; 2 ] in
  let cell family r =
    let got =
      match R.verdict family ~n:2 ~max_recoveries:r with
      | Verdict.Proved _ -> `Proved
      | Verdict.Refuted _ -> `Refuted
      | Verdict.Limited _ -> `Limited
    in
    let expected =
      (R.expected family ~max_recoveries:r
        :> [ `Proved | `Refuted | `Limited ])
    in
    let word =
      match got with
      | `Proved -> "solves"
      | `Refuted -> "fails"
      | `Limited -> "unknown"
    in
    (word, got = expected)
  in
  let rows =
    List.map
      (fun family ->
        let cells = List.map (cell family) budgets in
        let ok = List.for_all snd cells in
        (R.family_name family :: List.map fst cells)
        @ [ check (Printf.sprintf "E18 %s" (R.family_name family)) ok ])
      R.all_families
  in
  table
    ~title:
      "E18. Recoverable consensus: which families keep their 2-process \
       consensus power under crash-recovery (exhaustive, n=2; r = recovery \
       budget; crash budget max(1, r))"
    ~header:
      ("object family"
      :: List.map (Printf.sprintf "r=%d") budgets
      @ [ "verdict" ])
    rows

(* ------------------------------------------------------------------ E19 *)

(* Source-set reduction under work stealing: Algorithm 5 (k=3) with a
   one-crash budget, explored unreduced / symmetry-only / full (symmetry
   + source sets) at 1, 2 and 4 domains.  Three properties are asserted:
   (1) determinism — per reduction, states/transitions/terminal counts are
   identical at every domain count (the (state, sleep)-keyed claim table
   reproduces the sequential search bit-for-bit, stolen subtrees
   included); (2) identical verdicts — every cell proves the E15
   linearizability property (crashed participants = incomplete
   operations); (3) strength — the full reduction explores at least 3x
   fewer transitions than the unreduced baseline.  The marginal factor
   over symmetry alone is far smaller (the two reductions overlap: most
   interleavings a sleep set prunes are also collapsed by
   canonicalization) but must stay strictly above 1. *)
let e19 () =
  let k = 3 in
  let config () =
    let store, t = Alg5.alloc Store.empty ~k () in
    let programs =
      List.init k (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    Config.make store programs
  in
  let ops i = Op.make "wrn" [ Value.Int i; Value.Int (100 + i) ] in
  let spec = Subc_objects.One_shot_wrn.model ~k in
  let sym () = Symmetry.standard ~n:k ~input_base:100 `Rotations in
  let reductions =
    [
      ("none", None);
      ("symmetry", Some (Explore.with_symmetry (sym ())));
      ("full", Some (Explore.full_reduction (sym ())));
    ]
  in
  let jobs_axis = [ 1; 2; 4 ] in
  let explore reduction jobs =
    let bad = ref 0 in
    let on_terminal final trace =
      let history = Lin.history ~ops final trace in
      if Lin.check ~spec history = None then incr bad
    in
    let stats =
      if jobs <= 1 then
        Explore.iter_terminals ~max_crashes:1 ?reduction (config ())
          ~f:on_terminal
      else
        Parallel.iter_terminals ~max_crashes:1 ?reduction ~jobs (config ())
          ~f:on_terminal
    in
    (stats, !bad = 0 && not stats.Explore.limited)
  in
  let cells =
    List.map
      (fun (name, red) ->
        (name, List.map (fun jobs -> (jobs, explore red jobs)) jobs_axis))
      reductions
  in
  let same (a : Explore.stats) (b : Explore.stats) =
    a.Explore.states = b.Explore.states
    && a.Explore.transitions = b.Explore.transitions
    && a.Explore.terminals = b.Explore.terminals
    && a.Explore.hung_terminals = b.Explore.hung_terminals
    && a.Explore.crashed_terminals = b.Explore.crashed_terminals
    && a.Explore.source_skips = b.Explore.source_skips
  in
  let stats_of name = fst (snd (List.hd (List.assoc name cells))) in
  let rows =
    List.map
      (fun (name, per_jobs) ->
        let s1, _ = snd (List.hd per_jobs) in
        let deterministic =
          List.for_all (fun (_, (s, _)) -> same s1 s) per_jobs
        in
        let proved = List.for_all (fun (_, (_, ok)) -> ok) per_jobs in
        Subc_obs.Metrics.set_gauge
          (Printf.sprintf "e19.%s.transitions" name)
          (float_of_int s1.Explore.transitions);
        [
          name;
          string_of_int s1.Explore.states;
          string_of_int s1.Explore.transitions;
          string_of_int s1.Explore.terminals;
          (if deterministic then "identical @ jobs 1/2/4" else "DIVERGED");
          check
            (Printf.sprintf "E19 %s" name)
            (deterministic && proved);
        ])
      cells
  in
  let base = stats_of "none" in
  let symmetry = stats_of "symmetry" in
  let full = stats_of "full" in
  let ratio a b =
    float_of_int a.Explore.transitions
    /. float_of_int (max 1 b.Explore.transitions)
  in
  let r_none = ratio base full and r_sym = ratio symmetry full in
  Subc_obs.Metrics.set_gauge "e19.ratio.full_vs_none" r_none;
  Subc_obs.Metrics.set_gauge "e19.ratio.full_vs_symmetry" r_sym;
  let ratio_row =
    [
      "full vs none / vs symmetry"; "-";
      Printf.sprintf "%.2fx / %.2fx" r_none r_sym;
      "-"; "-";
      check "E19 ratios"
        (r_none >= 3.0 && r_sym > 1.0
        && symmetry.Explore.terminals = full.Explore.terminals
        && symmetry.Explore.hung_terminals = full.Explore.hung_terminals
        && symmetry.Explore.crashed_terminals = full.Explore.crashed_terminals);
    ]
  in
  table
    ~title:
      "E19. Source sets under work stealing: Alg 5 (k=3), f=1 — counts \
       deterministic at jobs 1/2/4, verdicts identical, transition \
       reduction vs unreduced >= 3x"
    ~header:
      [ "reduction"; "states"; "transitions"; "terminals"; "jobs 1/2/4";
        "verdict" ]
    (rows @ [ ratio_row ])

(* E20 — the static-independence fast path (Issue 8).  With the
   analyzer's footprint tables installed, the full reduction runs under
   the three independence modes on three families.  Checks per family:
   every mode explores the identical space (states, transitions,
   terminals, hung/crashed counts), the static fast path computes no
   more diamonds than the semantic judge while actually taking table
   hits, and the Both cross-validation observes zero static/semantic
   disagreements.  Counters are read as before/after deltas so earlier
   experiments' gauges survive into the --metrics snapshot. *)
let e20 () =
  ignore (Subc_analysis.Analyzer.install_static ());
  let alg2_harness () =
    let store, t = Alg2.alloc Store.empty ~k:3 ~one_shot:true in
    ( store,
      List.init 3 (fun i -> Alg2.propose t ~i (Value.Int (100 + i))),
      Alg2.symmetry t ~input_base:100 () )
  in
  let alg5_harness () =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    ( store,
      List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i))),
      Alg5.symmetry t ~input_base:100 () )
  in
  let wrn_harness () =
    let store, h =
      Store.alloc Store.empty (Subc_objects.One_shot_wrn.model ~k:3)
    in
    ( store,
      List.init 3 (fun i ->
          Subc_objects.One_shot_wrn.wrn h i (Value.Int (100 + i))),
      Symmetry.standard ~n:3 ~input_base:100 `Rotations )
  in
  let metric name =
    match Subc_obs.Metrics.find name with Some v -> v | None -> 0.
  in
  let counter_names =
    [
      "commute.diamonds"; "commute.memo_hits"; "commute.static_hits";
      "commute.static_mismatches";
    ]
  in
  let run harness independence =
    let store, programs, sym = harness () in
    let options =
      Search.of_legacy ~max_crashes:1
        ~reduction:(Explore.full_reduction sym)
        ~independence ()
    in
    let before = List.map metric counter_names in
    let t0 = Unix.gettimeofday () in
    let stats =
      Search.iter_terminals ~options
        (Config.make store programs)
        ~f:(fun _ _ -> ())
    in
    let secs = Unix.gettimeofday () -. t0 in
    let deltas = List.map2 ( -. ) (List.map metric counter_names) before in
    (stats, secs, deltas)
  in
  let counts (s : Explore.stats) =
    ( s.Explore.states,
      s.Explore.transitions,
      s.Explore.terminals,
      s.Explore.hung_terminals,
      s.Explore.crashed_terminals )
  in
  let rows =
    List.concat_map
      (fun (family, harness) ->
        let cells =
          List.map
            (fun (mode, independence) -> (mode, run harness independence))
            [
              ("semantic", Explore.Semantic);
              ("static", Explore.Static);
              ("both", Explore.Both);
            ]
        in
        let sem_stats, _, sem_deltas = List.assoc "semantic" cells in
        let sem_diamonds = List.nth sem_deltas 0 in
        List.map
          (fun (mode, ((stats : Explore.stats), secs, deltas)) ->
            let diamonds = List.nth deltas 0
            and memo_hits = List.nth deltas 1
            and static_hits = List.nth deltas 2
            and mismatches = List.nth deltas 3 in
            let states_per_sec =
              float_of_int stats.Explore.states /. max 1e-9 secs
            in
            List.iter
              (fun (k, v) ->
                Subc_obs.Metrics.set_gauge
                  (Printf.sprintf "e20.%s.%s.%s" family mode k)
                  v)
              [
                ("diamonds", diamonds); ("memo_hits", memo_hits);
                ("static_hits", static_hits);
                ("states_per_sec", states_per_sec);
              ];
            let ok =
              counts stats = counts sem_stats
              &&
              match mode with
              | "static" -> diamonds <= sem_diamonds && static_hits > 0.
              | "both" -> mismatches = 0. && static_hits > 0.
              | _ -> true
            in
            [
              family; mode;
              string_of_int stats.Explore.states;
              string_of_int stats.Explore.transitions;
              Printf.sprintf "%.0f" diamonds;
              Printf.sprintf "%.0f" memo_hits;
              Printf.sprintf "%.0f" static_hits;
              Printf.sprintf "%.0f" mismatches;
              Printf.sprintf "%.0fk/s" (states_per_sec /. 1e3);
              check (Printf.sprintf "E20 %s %s" family mode) ok;
            ])
          cells)
      [
        ("alg2 k=3", alg2_harness);
        ("alg5 k=3", alg5_harness);
        ("1swrn k=3", wrn_harness);
      ]
  in
  table
    ~title:
      "E20. Static-independence fast path: full reduction, f=1 — three \
       independence modes explore identical spaces; static decides pairs \
       without diamonds; Both cross-validates with zero mismatches"
    ~header:
      [ "family"; "independence"; "states"; "transitions"; "diamonds";
        "memo hits"; "static hits"; "mismatches"; "speed"; "verdict" ]
    rows


(* E21: incremental fingerprinting + delta-encoded frontier.  Same
   family set as E20; each cell explores under both fingerprint modes
   and both engines.  The claim is exactness: identical states,
   transitions and terminals between [--fp incremental] and [--fp full]
   per family x reduction x jobs, with the incremental lanes doing O(1)
   patches (fp.patches ~ transitions, fp.refolds ~ 1 per search) and a
   frontier-proportional memory gauge. *)
let e21 () =
  let alg2_harness () =
    let store, t = Alg2.alloc Store.empty ~k:3 ~one_shot:true in
    ( store,
      List.init 3 (fun i -> Alg2.propose t ~i (Value.Int (100 + i))),
      Alg2.symmetry t ~input_base:100 () )
  in
  let alg5_harness () =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    ( store,
      List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i))),
      Alg5.symmetry t ~input_base:100 () )
  in
  let wrn_harness () =
    let store, h =
      Store.alloc Store.empty (Subc_objects.One_shot_wrn.model ~k:3)
    in
    ( store,
      List.init 3 (fun i ->
          Subc_objects.One_shot_wrn.wrn h i (Value.Int (100 + i))),
      Symmetry.standard ~n:3 ~input_base:100 `Rotations )
  in
  let metric name =
    match Subc_obs.Metrics.find name with Some v -> v | None -> 0.
  in
  let counter_names = [ "fp.patches"; "fp.refolds" ] in
  let run harness reduction fp jobs =
    let store, programs, sym = harness () in
    let reduction =
      match reduction with
      | `None -> Explore.no_reduction
      | `Full -> Explore.full_reduction sym
    in
    let options = Search.of_legacy ~max_crashes:1 ~reduction ~fp ~jobs () in
    let before = List.map metric counter_names in
    let t0 = Unix.gettimeofday () in
    let stats =
      Search.iter_terminals ~options
        (Config.make store programs)
        ~f:(fun _ _ -> ())
    in
    let secs = Unix.gettimeofday () -. t0 in
    let deltas = List.map2 ( -. ) (List.map metric counter_names) before in
    (stats, secs, deltas)
  in
  let counts (s : Explore.stats) =
    ( s.Explore.states,
      s.Explore.transitions,
      s.Explore.terminals,
      s.Explore.hung_terminals,
      s.Explore.crashed_terminals )
  in
  let rows =
    List.concat_map
      (fun (family, harness) ->
        List.concat_map
          (fun (rname, reduction) ->
            List.map
              (fun jobs ->
                let inc_stats, inc_secs, inc_deltas =
                  run harness reduction Explore.Incremental jobs
                in
                let full_stats, full_secs, _ =
                  run harness reduction Explore.Full jobs
                in
                let patches = List.nth inc_deltas 0
                and refolds = List.nth inc_deltas 1 in
                let inc_rate =
                  float_of_int inc_stats.Explore.states /. max 1e-9 inc_secs
                and full_rate =
                  float_of_int full_stats.Explore.states /. max 1e-9 full_secs
                in
                List.iter
                  (fun (k, v) ->
                    Subc_obs.Metrics.set_gauge
                      (Printf.sprintf "e21.%s.%s.jobs%d.%s" family rname jobs
                         k)
                      v)
                  [
                    ("states", float_of_int inc_stats.Explore.states);
                    ("fp_patches", patches); ("fp_refolds", refolds);
                    ( "frontier_bytes",
                      float_of_int inc_stats.Explore.frontier_bytes );
                    ("inc_states_per_sec", inc_rate);
                    ("full_states_per_sec", full_rate);
                  ];
                let ok =
                  counts inc_stats = counts full_stats
                  && inc_stats.Explore.frontier_bytes > 0
                  &&
                  (* On the unreduced lanes the carried hash is live:
                     one patch per transition, re-folds only at roots
                     (jobs > 1 re-folds once per seeded root). *)
                  match rname with
                  | "none" ->
                    patches = float_of_int inc_stats.Explore.transitions
                    && refolds >= 1.
                    && refolds <= float_of_int (max 1 (8 * jobs))
                  | _ -> true
                in
                [
                  family; rname; string_of_int jobs;
                  string_of_int inc_stats.Explore.states;
                  string_of_int inc_stats.Explore.transitions;
                  Printf.sprintf "%.0f" patches;
                  Printf.sprintf "%.0f" refolds;
                  string_of_int inc_stats.Explore.frontier_bytes;
                  Printf.sprintf "%.0fk/s" (inc_rate /. 1e3);
                  Printf.sprintf "%.0fk/s" (full_rate /. 1e3);
                  check
                    (Printf.sprintf "E21 %s %s jobs=%d" family rname jobs)
                    ok;
                ])
              [ 1; 4 ])
          [ ("none", `None); ("full", `Full) ])
      [
        ("alg2 k=3", alg2_harness);
        ("alg5 k=3", alg5_harness);
        ("1swrn k=3", wrn_harness);
      ]
  in
  table
    ~title:
      "E21. Incremental fingerprints + delta frontiers: f=1 — identical \
       spaces under --fp incremental and --fp full at jobs 1 and 4; O(1) \
       patches replace per-state re-folds; frontier-proportional memory"
    ~header:
      [ "family"; "reduction"; "jobs"; "states"; "transitions"; "patches";
        "refolds"; "frontier B"; "inc speed"; "full speed"; "verdict" ]
    rows

(* ------------------------------------------------------------------ E22 *)

(* Partitioned out-of-core exploration: fingerprint-lane state ownership
   with batched frontier exchange, at 1/2/4 partitions, over the heap
   claim tables and the mmap-spilled 62-bit tables.  The claim under
   test is the engine's determinism contract — states / transitions /
   terminals / hung / crashed bit-identical to the sequential explorer
   at every partition count in both storage modes — plus the exchange
   and spill traffic surfaced per run ([partition.batches_sent],
   [partition.batch_bytes], [partition.spill_bytes]).  [seq_threshold 0]
   forces the worker/batch path even on these benchmark-sized spaces. *)
let e22 () =
  let alg5_harness () =
    let store, t = Alg5.alloc Store.empty ~k:3 () in
    ( Config.make store
        (List.init 3 (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))),
      1 )
  in
  let alg2_harness () =
    let store, t = Alg2.alloc Store.empty ~k:3 ~one_shot:true in
    ( Config.make store
        (List.init 3 (fun i -> Alg2.propose t ~i (Value.Int (100 + i)))),
      2 )
  in
  let metric name =
    match Subc_obs.Metrics.find name with Some v -> v | None -> 0.
  in
  let counter_names =
    [ "partition.batches_sent"; "partition.batch_bytes";
      "partition.spill_bytes" ]
  in
  let rows =
    List.concat_map
      (fun (family, harness) ->
        let config, f = harness () in
        let seq =
          Explore.iter_terminals ~max_crashes:f config ~f:(fun _ _ -> ())
        in
        List.concat_map
          (fun (mode, spill) ->
            List.map
              (fun partitions ->
                let before = List.map metric counter_names in
                let t0 = Unix.gettimeofday () in
                let stats =
                  Partition.iter_terminals ~max_crashes:f ?spill
                    ~seq_threshold:0 ~partitions ~jobs:4 config
                    ~f:(fun _ _ -> ())
                in
                let secs = Unix.gettimeofday () -. t0 in
                let deltas =
                  List.map2 ( -. ) (List.map metric counter_names) before
                in
                let same =
                  stats.Explore.states = seq.Explore.states
                  && stats.Explore.transitions = seq.Explore.transitions
                  && stats.Explore.terminals = seq.Explore.terminals
                  && stats.Explore.hung_terminals = seq.Explore.hung_terminals
                  && stats.Explore.crashed_terminals
                     = seq.Explore.crashed_terminals
                  && stats.Explore.dedup_hits = seq.Explore.dedup_hits
                in
                let spilled = List.nth deltas 2 in
                let ok =
                  same
                  && (mode <> "spill" || spilled > 0.)
                  && (partitions > 1 || List.nth deltas 0 = 0.)
                in
                [
                  family; string_of_int partitions; mode;
                  string_of_int stats.Explore.states;
                  string_of_int stats.Explore.transitions;
                  string_of_int stats.Explore.terminals;
                  Printf.sprintf "%.0f" (List.nth deltas 0);
                  Printf.sprintf "%.0f" (List.nth deltas 1 /. 1024.);
                  Printf.sprintf "%.0f" (spilled /. 1024.);
                  Printf.sprintf "%.0fk/s"
                    (float_of_int stats.Explore.states /. max 1e-9 secs /. 1e3);
                  check
                    (Printf.sprintf "E22 %s p=%d %s" family partitions mode)
                    ok;
                ])
              [ 1; 2; 4 ])
          [ ("heap", None); ("spill", Some "_e22_spill.tmp") ])
      [ ("alg5 k=3 f=1", alg5_harness); ("alg2 k=3 f=2", alg2_harness) ]
  in
  table
    ~title:
      "E22. Partitioned out-of-core exploration: counts bit-identical to \
       the sequential explorer at 1/2/4 partitions, heap and mmap-spilled \
       tables alike; batches cross partitions only when partitions > 1"
    ~header:
      [ "family"; "parts"; "tables"; "states"; "transitions"; "terminals";
        "batches"; "batch KB"; "spill KB"; "speed"; "verdict" ]
    rows

(* ------------------------------------------------------------ scaling *)

let scaling () =
  let explore_stats store programs =
    let config = Config.make store programs in
    let t0 = Sys.time () in
    let stats = Explore.iter_terminals config ~f:(fun _ _ -> ()) in
    (stats, Sys.time () -. t0)
  in
  let alg2_row k =
    let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
    let programs =
      List.init k (fun i -> Alg2.propose t ~i (Value.Int (100 + i)))
    in
    let stats, dt = explore_stats store programs in
    [
      Printf.sprintf "Algorithm 2, k=%d" k;
      string_of_int stats.Explore.states;
      string_of_int stats.Explore.terminals;
      string_of_int stats.Explore.max_depth;
      Printf.sprintf "%.2fs" dt;
    ]
  in
  let alg5_row k =
    let store, t = Alg5.alloc Store.empty ~k () in
    let programs =
      List.init k (fun i -> Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    let stats, dt = explore_stats store programs in
    [
      Printf.sprintf "Algorithm 5, k=%d (full)" k;
      string_of_int stats.Explore.states;
      string_of_int stats.Explore.terminals;
      string_of_int stats.Explore.max_depth;
      Printf.sprintf "%.2fs" dt;
    ]
  in
  table
    ~title:
      "Scaling: canonical state-space sizes the model checker covers \
       (substitution S1's verification dividend)"
    ~header:[ "instance"; "states"; "terminals"; "depth"; "time" ]
    ([ alg2_row 3; alg2_row 4; alg2_row 5; alg2_row 6 ]
    @ [ alg5_row 2; alg5_row 3; alg5_row 4 ])

let run_all () =
  Format.printf
    "=== Experiment tables (the paper has no tables/figures; these \
     reproduce its theorems — see EXPERIMENTS.md) ===@.";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e18 ();
  e19 ();
  e20 ();
  e21 ();
  e22 ();
  scaling ();
  Format.printf "@.=== experiments complete: %s ===@."
    (if !failures = 0 then "ALL PASS"
     else Printf.sprintf "%d FAILURES" !failures);
  !failures = 0

(* Single-experiment entry points for the CI bench smoke job. *)
let run_one f =
  let before = !failures in
  f ();
  !failures = before

let run_e15 () = run_one e15
let run_e16 () = run_one e16
let run_e17 () = run_one e17
let run_e18 () = run_one e18
let run_e19 () = run_one e19
let run_e20 () = run_one e20
let run_e21 () = run_one e21
let run_e22 () = run_one e22
