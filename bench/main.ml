(* Benchmark/experiment harness.

   [dune exec bench/main.exe] runs the full experiment matrix (E1–E16, the
   reproduction of the paper's theorems — the paper has no tables/figures)
   followed by the bechamel timing benches (B1–B5).

   [dune exec bench/main.exe -- experiments] / [-- timing] run one half;
   [-- e15] / [-- e16] / [-- e17] run a single experiment (the CI smoke
   jobs); [-- perf] runs the fingerprint/multicore performance sweep and
   writes BENCH_results.json (jobs list configurable with [--jobs N]).
   [--metrics] streams observability events and a final metrics snapshot;
   with [--json] both go to stdout as JSON lines (the CI artifact). *)

module Obs = Subc_obs

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let metrics = List.mem "--metrics" args in
  let what =
    match List.filter (fun a -> not (String.starts_with ~prefix:"--" a)) args with
    | [] -> "all"
    | w :: _ -> w
  in
  if metrics then
    Obs.Sink.set (if json then Obs.Sink.jsonl stdout else Obs.Sink.stderr_sink);
  let ok =
    match what with
    | "experiments" -> Experiments.run_all ()
    | "timing" ->
      Timing.run_all ();
      true
    | "e15" -> Experiments.run_e15 ()
    | "e16" -> Experiments.run_e16 ()
    | "e17" -> Experiments.run_e17 ()
    | "e18" -> Experiments.run_e18 ()
    | "e19" -> Experiments.run_e19 ()
    | "e20" -> Experiments.run_e20 ()
    | "e21" -> Experiments.run_e21 ()
    | "e22" -> Experiments.run_e22 ()
    | "perf" ->
      (* [--jobs N] caps the sweep at N domains (the default sweeps
         1/2/4/8 regardless of the host's core count). *)
      let jobs_list =
        let rec find = function
          | "--jobs" :: n :: _ -> int_of_string_opt n
          | _ :: rest -> find rest
          | [] -> None
        in
        match find args with
        | Some n when n >= 1 ->
          List.filter (fun j -> j <= max n 1) [ 1; 2; 4; 8 ]
        | _ -> [ 1; 2; 4; 8 ]
      in
      Timing.run_perf ~jobs_list ();
      true
    | _ ->
      let ok = Experiments.run_all () in
      Timing.run_all ();
      ok
  in
  if metrics then begin
    Obs.Metrics.emit_snapshot ();
    List.iter
      (fun (label, secs) ->
        Obs.Sink.emit "span_total"
          [ ("label", Obs.Sink.Str label); ("seconds", Obs.Sink.Float secs) ])
      (Obs.Span.totals ());
    Obs.Sink.flush ()
  end;
  if not ok then exit 1
