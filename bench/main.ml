(* Benchmark/experiment harness.

   [dune exec bench/main.exe] runs the full experiment matrix (E1–E11, the
   reproduction of the paper's theorems — the paper has no tables/figures)
   followed by the bechamel timing benches (B1–B5).

   [dune exec bench/main.exe -- experiments] / [-- timing] run one half. *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let ok =
    match what with
    | "experiments" -> Experiments.run_all ()
    | "timing" ->
      Timing.run_all ();
      true
    | _ ->
      let ok = Experiments.run_all () in
      Timing.run_all ();
      ok
  in
  if not ok then exit 1
