(* Bechamel timing benches (B1–B5 of EXPERIMENTS.md): cost of the
   simulator, the substrates and the checkers. *)

open Bechamel
open Toolkit
open Subc_sim

(* B1: simulator step rate — one full Algorithm 2 run (k = 6) per
   iteration under a seeded random adversary. *)
let b1_sim_run =
  let k = 6 in
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:false in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b1: run alg2 k=6 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 42) config)))

(* B2: snapshot implementations — solo update+scan on the register-based
   AADGMS vs the primitive object, n = 8 components. *)
let snapshot_bench name snapshot =
  let store, api = snapshot Store.empty 8 in
  let program =
    let open Program.Syntax in
    let* () = api.Subc_rwmem.Snapshot_api.update ~me:3 (Value.Int 1) in
    api.Subc_rwmem.Snapshot_api.scan
  in
  let config = Config.make store [ program ] in
  Test.make ~name
    (Staged.stage (fun () -> ignore (Runner.run Runner.Round_robin config)))

let b2_snapshot_registers =
  snapshot_bench "b2: snapshot scan (AADGMS, n=8)"
    Subc_rwmem.Snapshot_api.register_based

let b2_snapshot_primitive =
  snapshot_bench "b2: snapshot scan (primitive, n=8)"
    Subc_rwmem.Snapshot_api.primitive

(* B3: model-checker throughput — exhaustive exploration of Algorithm 2,
   k = 4 (hundreds of canonical states). *)
let b3_explore =
  let k = 4 in
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b3: explore alg2 k=4 (exhaustive)"
    (Staged.stage (fun () ->
         ignore (Explore.iter_terminals config ~f:(fun _ _ -> ()))))

(* B4: linearizability checking — a 6-operation 1sWRN history. *)
let b4_linearizability =
  let spec = Subc_objects.One_shot_wrn.model ~k:6 in
  let wrn i v = Op.make "wrn" [ Value.Int i; Value.Int v ] in
  let record proc op result inv res =
    { Subc_check.Linearizability.proc; op; result = Some result; inv; res }
  in
  let history =
    [
      record 0 (wrn 0 100) (Value.Int 101) 0 10;
      record 1 (wrn 1 101) Value.Bot 1 11;
      record 2 (wrn 2 102) Value.Bot 2 12;
      record 3 (wrn 3 103) Value.Bot 3 13;
      record 4 (wrn 4 104) (Value.Int 105) 4 14;
      record 5 (wrn 5 105) Value.Bot 5 15;
    ]
  in
  Test.make ~name:"b4: linearizability check (6-op 1sWRN history)"
    (Staged.stage (fun () ->
         ignore (Subc_check.Linearizability.check ~spec history)))

(* B5: Algorithm 5 end-to-end — one full 3-party run of the implemented
   1sWRN on a random schedule. *)
let b5_alg5 =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b5: run alg5 k=3 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 7) config)))

(* B6: the BG simulation — a full 2-simulators/3-processes run. *)
let b6_bg =
  let codes =
    List.init 3 (fun p ->
        Subc_bgsim.Sim_code.write_then_snapshot (Value.Int (100 + p)) Fun.id)
  in
  let store, bg = Subc_bgsim.Bg.alloc Store.empty ~simulators:2 ~codes in
  let programs = List.init 2 (fun me -> Subc_bgsim.Bg.simulate bg ~me) in
  let config = Config.make store programs in
  Test.make ~name:"b6: run BG simulation 2x3 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 3) config)))

(* B7: protocol-space refutation throughput — one whole k=3, 1-op census
   (144 protocols, each model-checked). *)
let b7_census =
  Test.make ~name:"b7: protocol census k=3 ops=1 (144 protocols)"
    (Staged.stage (fun () ->
         ignore (Subc_classic.Protocol_search.census ~k:3 ~ops:1 ())))

let run_all () =
  Format.printf "@.=== Timing benches (bechamel) ===@.";
  let tests =
    [ b1_sim_run; b2_snapshot_registers; b2_snapshot_primitive; b3_explore;
      b4_linearizability; b5_alg5; b6_bg; b7_census ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"subconsensus" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with
        | Some (ns :: _) -> Printf.sprintf "%12.1f ns/run" ns
        | _ -> "estimate unavailable"
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some r2 -> Printf.sprintf "r²=%.3f" r2
        | None -> ""
      in
      Format.printf "%-55s %s %s@." name ns r2)
    (List.sort compare rows)
