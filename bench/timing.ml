(* Bechamel timing benches (B1–B5 of EXPERIMENTS.md): cost of the
   simulator, the substrates and the checkers; [run_perf] adds the
   fingerprint/multicore performance sweep and writes BENCH_results.json
   (the CI artifact). *)

open Bechamel
open Toolkit
open Subc_sim

(* B1: simulator step rate — one full Algorithm 2 run (k = 6) per
   iteration under a seeded random adversary. *)
let b1_sim_run =
  let k = 6 in
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:false in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b1: run alg2 k=6 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 42) config)))

(* B2: snapshot implementations — solo update+scan on the register-based
   AADGMS vs the primitive object, n = 8 components. *)
let snapshot_bench name snapshot =
  let store, api = snapshot Store.empty 8 in
  let program =
    let open Program.Syntax in
    let* () = api.Subc_rwmem.Snapshot_api.update ~me:3 (Value.Int 1) in
    api.Subc_rwmem.Snapshot_api.scan
  in
  let config = Config.make store [ program ] in
  Test.make ~name
    (Staged.stage (fun () -> ignore (Runner.run Runner.Round_robin config)))

let b2_snapshot_registers =
  snapshot_bench "b2: snapshot scan (AADGMS, n=8)"
    Subc_rwmem.Snapshot_api.register_based

let b2_snapshot_primitive =
  snapshot_bench "b2: snapshot scan (primitive, n=8)"
    Subc_rwmem.Snapshot_api.primitive

(* B3: model-checker throughput — exhaustive exploration of Algorithm 2,
   k = 4 (hundreds of canonical states). *)
let b3_explore =
  let k = 4 in
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b3: explore alg2 k=4 (exhaustive)"
    (Staged.stage (fun () ->
         ignore (Explore.iter_terminals config ~f:(fun _ _ -> ()))))

(* B4: linearizability checking — a 6-operation 1sWRN history. *)
let b4_linearizability =
  let spec = Subc_objects.One_shot_wrn.model ~k:6 in
  let wrn i v = Op.make "wrn" [ Value.Int i; Value.Int v ] in
  let record proc op result inv res =
    { Subc_check.Linearizability.proc; op; result = Some result; inv; res }
  in
  let history =
    [
      record 0 (wrn 0 100) (Value.Int 101) 0 10;
      record 1 (wrn 1 101) Value.Bot 1 11;
      record 2 (wrn 2 102) Value.Bot 2 12;
      record 3 (wrn 3 103) Value.Bot 3 13;
      record 4 (wrn 4 104) (Value.Int 105) 4 14;
      record 5 (wrn 5 105) Value.Bot 5 15;
    ]
  in
  Test.make ~name:"b4: linearizability check (6-op 1sWRN history)"
    (Staged.stage (fun () ->
         ignore (Subc_check.Linearizability.check ~spec history)))

(* B5: Algorithm 5 end-to-end — one full 3-party run of the implemented
   1sWRN on a random schedule. *)
let b5_alg5 =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b5: run alg5 k=3 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 7) config)))

(* B6: the BG simulation — a full 2-simulators/3-processes run. *)
let b6_bg =
  let codes =
    List.init 3 (fun p ->
        Subc_bgsim.Sim_code.write_then_snapshot (Value.Int (100 + p)) Fun.id)
  in
  let store, bg = Subc_bgsim.Bg.alloc Store.empty ~simulators:2 ~codes in
  let programs = List.init 2 (fun me -> Subc_bgsim.Bg.simulate bg ~me) in
  let config = Config.make store programs in
  Test.make ~name:"b6: run BG simulation 2x3 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 3) config)))

(* B7: protocol-space refutation throughput — one whole k=3, 1-op census
   (144 protocols, each model-checked). *)
let b7_census =
  Test.make ~name:"b7: protocol census k=3 ops=1 (144 protocols)"
    (Staged.stage (fun () ->
         ignore (Subc_classic.Protocol_search.census ~k:3 ~ops:1 ())))

let run_all () =
  Format.printf "@.=== Timing benches (bechamel) ===@.";
  let tests =
    [ b1_sim_run; b2_snapshot_registers; b2_snapshot_primitive; b3_explore;
      b4_linearizability; b5_alg5; b6_bg; b7_census ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"subconsensus" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with
        | Some (ns :: _) -> Printf.sprintf "%12.1f ns/run" ns
        | _ -> "estimate unavailable"
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some r2 -> Printf.sprintf "r²=%.3f" r2
        | None -> ""
      in
      Format.printf "%-55s %s %s@." name ns r2)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Performance sweep: fingerprint cost and multicore exploration.      *)
(* Results land in BENCH_results.json so CI can archive them and       *)
(* successive runs can be diffed.  Numbers are wall-clock              *)
(* (Unix.gettimeofday — CPU time would sum over domains and hide any   *)
(* speedup); [host_domains] records how many cores the host actually   *)
(* offers, since speedup_vs_1 is bounded by it.                        *)

type bench_result = { name : string; fields : (string * float) list }

let results_file = "BENCH_results.json"

let json_of_results results =
  let field (k, v) =
    (* Plain [%.6g] prints integral floats without a dot; keep them JSON
       numbers either way. *)
    Printf.sprintf "%S: %.6g" k v
  in
  let obj r =
    Printf.sprintf "    {%S: %S, %s}" "name" r.name
      (String.concat ", " (List.map field r.fields))
  in
  Printf.sprintf
    "{\n  \"host_domains\": %d,\n  \"benches\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map obj results))

let write_results results =
  let oc = open_out results_file in
  output_string oc (json_of_results results);
  close_out oc;
  Format.printf "@.wrote %s (%d benches)@." results_file (List.length results)

(* The legacy fingerprint this PR replaced: MD5 over a marshalled
   canonical key.  Kept here (only here) as the baseline of the
   microbench. *)
let legacy_fingerprint config =
  Digest.string (Marshal.to_string (Config.key config) [])

let time_per_op ~repeat f configs =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeat do
    List.iter (fun c -> ignore (Sys.opaque_identity (f c))) configs
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt /. float_of_int (repeat * List.length configs)

(* P1: per-state fingerprint cost, structural 126-bit hash vs the legacy
   marshal+MD5 pipeline, over a real reachable set (Algorithm 5, k=3). *)
let perf_fingerprint () =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  let configs = ref [] in
  ignore (Explore.iter_reachable config ~f:(fun c _ -> configs := c :: !configs));
  let configs = !configs in
  let repeat = 50 in
  let structural_ns =
    1e9 *. time_per_op ~repeat Fingerprint.of_config configs
  in
  let legacy_ns = 1e9 *. time_per_op ~repeat legacy_fingerprint configs in
  Format.printf
    "p1: fingerprint (%d configs): structural %.0f ns, marshal+md5 %.0f ns \
     (%.1fx)@."
    (List.length configs) structural_ns legacy_ns
    (legacy_ns /. structural_ns);
  {
    name = "p1.fingerprint";
    fields =
      [
        ("configs", float_of_int (List.length configs));
        ("structural_ns", structural_ns);
        ("legacy_marshal_md5_ns", legacy_ns);
        ("speedup", legacy_ns /. structural_ns);
      ];
  }

(* P2: exploration throughput across domain counts.  Counts are asserted
   identical to the sequential run (determinism is part of the bench);
   wall-clock and states/sec are informational — on a single-core host
   every jobs>1 row just measures synchronization overhead. *)
let perf_parallel ~jobs_list () =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  let explore jobs =
    let t0 = Unix.gettimeofday () in
    let stats =
      if jobs <= 1 then
        Explore.iter_terminals ~max_crashes:1 config ~f:(fun _ _ -> ())
      else
        Parallel.iter_terminals ~max_crashes:1 ~jobs config ~f:(fun _ _ -> ())
    in
    (stats, Unix.gettimeofday () -. t0)
  in
  let base_stats, base_secs = explore 1 in
  List.map
    (fun jobs ->
      let stats, secs = explore jobs in
      if
        stats.Explore.states <> base_stats.Explore.states
        || stats.Explore.terminals <> base_stats.Explore.terminals
      then
        Format.printf
          "!! p2 jobs=%d NONDETERMINISM: %d states / %d terminals, expected \
           %d / %d@."
          jobs stats.Explore.states stats.Explore.terminals
          base_stats.Explore.states base_stats.Explore.terminals;
      let secs = if jobs = 1 then base_secs else secs in
      let rate = float_of_int stats.Explore.states /. secs in
      Format.printf
        "p2: explore alg5 k=3 f=1, jobs=%d: %d states, %.3fs, %.0f \
         states/s, speedup %.2fx@."
        jobs stats.Explore.states secs rate (base_secs /. secs);
      {
        name = Printf.sprintf "p2.parallel_explore.jobs%d" jobs;
        fields =
          [
            ("jobs", float_of_int jobs);
            ("states", float_of_int stats.Explore.states);
            ("seconds", secs);
            ("states_per_sec", rate);
            ("speedup_vs_1", base_secs /. secs);
          ];
      })
    jobs_list

let run_perf ?(jobs_list = [ 1; 2; 4; 8 ]) () =
  Format.printf "@.=== Performance sweep (%s) ===@." results_file;
  let fingerprint = perf_fingerprint () in
  let parallel = perf_parallel ~jobs_list () in
  write_results (fingerprint :: parallel)
