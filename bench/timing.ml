(* Bechamel timing benches (B1–B5 of EXPERIMENTS.md): cost of the
   simulator, the substrates and the checkers; [run_perf] adds the
   fingerprint/multicore performance sweep and writes BENCH_results.json
   (the CI artifact). *)

open Bechamel
open Toolkit
open Subc_sim
module Obs = Subc_obs

(* B1: simulator step rate — one full Algorithm 2 run (k = 6) per
   iteration under a seeded random adversary. *)
let b1_sim_run =
  let k = 6 in
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:false in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b1: run alg2 k=6 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 42) config)))

(* B2: snapshot implementations — solo update+scan on the register-based
   AADGMS vs the primitive object, n = 8 components. *)
let snapshot_bench name snapshot =
  let store, api = snapshot Store.empty 8 in
  let program =
    let open Program.Syntax in
    let* () = api.Subc_rwmem.Snapshot_api.update ~me:3 (Value.Int 1) in
    api.Subc_rwmem.Snapshot_api.scan
  in
  let config = Config.make store [ program ] in
  Test.make ~name
    (Staged.stage (fun () -> ignore (Runner.run Runner.Round_robin config)))

let b2_snapshot_registers =
  snapshot_bench "b2: snapshot scan (AADGMS, n=8)"
    Subc_rwmem.Snapshot_api.register_based

let b2_snapshot_primitive =
  snapshot_bench "b2: snapshot scan (primitive, n=8)"
    Subc_rwmem.Snapshot_api.primitive

(* B3: model-checker throughput — exhaustive exploration of Algorithm 2,
   k = 4 (hundreds of canonical states). *)
let b3_explore =
  let k = 4 in
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b3: explore alg2 k=4 (exhaustive)"
    (Staged.stage (fun () ->
         ignore (Explore.iter_terminals config ~f:(fun _ _ -> ()))))

(* B4: linearizability checking — a 6-operation 1sWRN history. *)
let b4_linearizability =
  let spec = Subc_objects.One_shot_wrn.model ~k:6 in
  let wrn i v = Op.make "wrn" [ Value.Int i; Value.Int v ] in
  let record proc op result inv res =
    { Subc_check.Linearizability.proc; op; result = Some result; inv; res }
  in
  let history =
    [
      record 0 (wrn 0 100) (Value.Int 101) 0 10;
      record 1 (wrn 1 101) Value.Bot 1 11;
      record 2 (wrn 2 102) Value.Bot 2 12;
      record 3 (wrn 3 103) Value.Bot 3 13;
      record 4 (wrn 4 104) (Value.Int 105) 4 14;
      record 5 (wrn 5 105) Value.Bot 5 15;
    ]
  in
  Test.make ~name:"b4: linearizability check (6-op 1sWRN history)"
    (Staged.stage (fun () ->
         ignore (Subc_check.Linearizability.check ~spec history)))

(* B5: Algorithm 5 end-to-end — one full 3-party run of the implemented
   1sWRN on a random schedule. *)
let b5_alg5 =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  Test.make ~name:"b5: run alg5 k=3 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 7) config)))

(* B6: the BG simulation — a full 2-simulators/3-processes run. *)
let b6_bg =
  let codes =
    List.init 3 (fun p ->
        Subc_bgsim.Sim_code.write_then_snapshot (Value.Int (100 + p)) Fun.id)
  in
  let store, bg = Subc_bgsim.Bg.alloc Store.empty ~simulators:2 ~codes in
  let programs = List.init 2 (fun me -> Subc_bgsim.Bg.simulate bg ~me) in
  let config = Config.make store programs in
  Test.make ~name:"b6: run BG simulation 2x3 (random schedule)"
    (Staged.stage (fun () -> ignore (Runner.run (Runner.Random 3) config)))

(* B7: protocol-space refutation throughput — one whole k=3, 1-op census
   (144 protocols, each model-checked). *)
let b7_census =
  Test.make ~name:"b7: protocol census k=3 ops=1 (144 protocols)"
    (Staged.stage (fun () ->
         ignore (Subc_classic.Protocol_search.census ~k:3 ~ops:1 ())))

let run_all () =
  Format.printf "@.=== Timing benches (bechamel) ===@.";
  let tests =
    [ b1_sim_run; b2_snapshot_registers; b2_snapshot_primitive; b3_explore;
      b4_linearizability; b5_alg5; b6_bg; b7_census ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"subconsensus" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with
        | Some (ns :: _) -> Printf.sprintf "%12.1f ns/run" ns
        | _ -> "estimate unavailable"
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some r2 -> Printf.sprintf "r²=%.3f" r2
        | None -> ""
      in
      Format.printf "%-55s %s %s@." name ns r2)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Performance sweep: fingerprint cost and multicore exploration.      *)
(* Results land in BENCH_results.json so CI can archive them and       *)
(* successive runs can be diffed.  Numbers are wall-clock              *)
(* (Unix.gettimeofday — CPU time would sum over domains and hide any   *)
(* speedup); [host_domains] records how many cores the host actually   *)
(* offers, since speedup_vs_1 is bounded by it.                        *)

type bench_result = { name : string; fields : (string * float) list }

let results_file = "BENCH_results.json"

let json_of_results results =
  let field (k, v) =
    (* Plain [%.6g] prints integral floats without a dot; keep them JSON
       numbers either way. *)
    Printf.sprintf "%S: %.6g" k v
  in
  let obj r =
    Printf.sprintf "    {%S: %S, %s}" "name" r.name
      (String.concat ", " (List.map field r.fields))
  in
  let host_domains = Domain.recommended_domain_count () in
  (* Single-core hosts cannot show any parallel speedup: every jobs>1 row
     measures synchronization overhead only, and the consumer of the JSON
     artifact must not read those rows as a scaling regression. *)
  let mode = if host_domains > 1 then "parallel" else "overhead-only" in
  Printf.sprintf
    "{\n  \"host_domains\": %d,\n  \"mode\": %S,\n  \"benches\": [\n%s\n  ]\n}\n"
    host_domains mode
    (String.concat ",\n" (List.map obj results))

let write_results results =
  let oc = open_out results_file in
  output_string oc (json_of_results results);
  close_out oc;
  Format.printf "@.wrote %s (%d benches)@." results_file (List.length results)

(* The legacy fingerprint this PR replaced: MD5 over a marshalled
   canonical key.  Kept here (only here) as the baseline of the
   microbench. *)
let legacy_fingerprint config =
  Digest.string (Marshal.to_string (Config.key config) [])

let time_per_op ~repeat f configs =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeat do
    List.iter (fun c -> ignore (Sys.opaque_identity (f c))) configs
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt /. float_of_int (repeat * List.length configs)

(* P1: per-state fingerprint cost, structural 126-bit hash vs the legacy
   marshal+MD5 pipeline, over a real reachable set (Algorithm 5, k=3). *)
let perf_fingerprint () =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  let configs = ref [] in
  ignore (Explore.iter_reachable config ~f:(fun c _ -> configs := c :: !configs));
  let configs = !configs in
  let repeat = 50 in
  let structural_ns =
    1e9 *. time_per_op ~repeat Fingerprint.of_config configs
  in
  let legacy_ns = 1e9 *. time_per_op ~repeat legacy_fingerprint configs in
  (* The explore hot path: producing the child's fingerprint from the
     parent's.  Incremental = patch the slots the transition rewrote
     (O(1)); full = re-fold the whole child ([hom_of_config], what the
     incremental path replaces). *)
  let transitions =
    List.concat_map
      (fun parent ->
        let f = Fingerprint.hom_of_config parent in
        List.concat_map
          (fun i ->
            List.map
              (fun (child, _e, slots) -> (parent, f, slots, child))
              (Step.step_slots parent i))
          (Config.running parent))
      configs
  in
  let patch_ns =
    1e9
    *. time_per_op ~repeat
         (fun (parent, f, slots, child) ->
           Explore.patched_fingerprint parent f slots child)
         transitions
  in
  let hom_refold_ns =
    1e9
    *. time_per_op ~repeat
         (fun (_, _, _, child) -> Fingerprint.hom_of_config child)
         transitions
  in
  Format.printf
    "p1: fingerprint (%d configs): structural %.0f ns, marshal+md5 %.0f ns \
     (%.1fx)@."
    (List.length configs) structural_ns legacy_ns
    (legacy_ns /. structural_ns);
  Format.printf
    "p1: incremental (%d transitions): patch %.0f ns, hom re-fold %.0f ns \
     (%.1fx)@."
    (List.length transitions) patch_ns hom_refold_ns
    (hom_refold_ns /. patch_ns);
  {
    name = "p1.fingerprint";
    fields =
      [
        ("configs", float_of_int (List.length configs));
        ("structural_ns", structural_ns);
        ("legacy_marshal_md5_ns", legacy_ns);
        ("speedup", legacy_ns /. structural_ns);
        ("transitions", float_of_int (List.length transitions));
        ("incremental_patch_ns", patch_ns);
        ("hom_refold_ns", hom_refold_ns);
        ("incremental_speedup", hom_refold_ns /. patch_ns);
      ];
  }

(* Metric deltas around one exploration: the parallel engine adds to the
   process-global counters; subtracting a snapshot isolates one run. *)
let counter_delta names f =
  let read () =
    List.map (fun n -> Option.value ~default:0.0 (Obs.Metrics.find n)) names
  in
  let before = read () in
  let r = f () in
  let after = read () in
  (r, List.map2 (fun a b -> a -. b) after before)

(* P2: exploration throughput across visited-table modes and domain
   counts, over Algorithm 5 k=3 f=1 (the largest registry family).
   Counts are asserted identical to the sequential run in every mode at
   every domain count (determinism is part of the bench); wall-clock,
   states/sec and the contention counters (steals, probes, CAS retries,
   shard contention) are informational — on a single-core host every
   jobs>1 row just measures synchronization overhead. *)
let perf_parallel ~jobs_list () =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  let counter_names =
    [ "parallel.steals"; "parallel.probes"; "parallel.cas_retries";
      "parallel.shard_contention" ]
  in
  (* Best-of-[repeat] wall clock: single ~10ms runs are too noisy for the
     headline jobs=1 mode comparison. *)
  let repeat = 3 in
  let best_of f =
    let best = ref infinity and result = ref None in
    for _ = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let base_stats, base_secs =
    best_of (fun () ->
        Explore.iter_terminals ~max_crashes:1 config ~f:(fun _ _ -> ()))
  in
  Format.printf "p2: explore alg5 k=3 f=1, sequential: %d states, %.3fs@."
    base_stats.Explore.states base_secs;
  let mode_name v = Format.asprintf "%a" Parallel.pp_visited v in
  let explore visited jobs =
    let (stats, secs), deltas =
      counter_delta counter_names (fun () ->
          best_of (fun () ->
              Parallel.iter_terminals ~visited ~max_crashes:1 ~jobs config
                ~f:(fun _ _ -> ())))
    in
    (stats, secs, List.map (fun d -> d /. float_of_int repeat) deltas)
  in
  let rate_j1 = Hashtbl.create 4 in
  let bytes_by_mode = Hashtbl.create 4 in
  let rows =
    List.concat_map
      (fun visited ->
        List.map
          (fun jobs ->
            let stats, secs, deltas = explore visited jobs in
            if
              stats.Explore.states <> base_stats.Explore.states
              || stats.Explore.terminals <> base_stats.Explore.terminals
            then
              Format.printf
                "!! p2 %s jobs=%d NONDETERMINISM: %d states / %d terminals, \
                 expected %d / %d@."
                (mode_name visited) jobs stats.Explore.states
                stats.Explore.terminals base_stats.Explore.states
                base_stats.Explore.terminals;
            let rate = float_of_int stats.Explore.states /. secs in
            let visited_bytes =
              Option.value ~default:0.0
                (Obs.Metrics.find "parallel.visited_bytes")
            in
            if jobs = 1 then Hashtbl.replace rate_j1 (mode_name visited) rate;
            Hashtbl.replace bytes_by_mode (mode_name visited) visited_bytes;
            Format.printf
              "p2: explore alg5 k=3 f=1, visited=%s jobs=%d: %d states, \
               %.3fs, %.0f states/s, speedup %.2fx, visited %.0f bytes@."
              (mode_name visited) jobs stats.Explore.states secs rate
              (base_secs /. secs) visited_bytes;
            {
              name =
                Printf.sprintf "p2.parallel_explore.%s.jobs%d"
                  (mode_name visited) jobs;
              fields =
                [
                  ("jobs", float_of_int jobs);
                  ("states", float_of_int stats.Explore.states);
                  ("seconds", secs);
                  ("states_per_sec", rate);
                  ("speedup_vs_seq", base_secs /. secs);
                  ("collision_bound", stats.Explore.collision_bound);
                  ("visited_bytes", visited_bytes);
                ]
                @ List.map2
                    (fun n d ->
                      (* "parallel.steals" -> "steals" *)
                      let short =
                        String.sub n 9 (String.length n - 9)
                      in
                      (short, d))
                    counter_names deltas;
            })
          jobs_list)
      [ Parallel.Sharded; Parallel.Lockfree; Parallel.Compressed ]
  in
  (* Headline comparisons: the lock-free table must not be slower than the
     sharded baseline at jobs=1 (no contention to hide behind), and the
     compressed table must use less visited memory than the payload one. *)
  let r m = try Hashtbl.find rate_j1 m with Not_found -> 0.0 in
  let b m = try Hashtbl.find bytes_by_mode m with Not_found -> 0.0 in
  let compare_row =
    {
      name = "p2.visited_compare";
      fields =
        [
          ("sequential_states_per_sec",
           float_of_int base_stats.Explore.states /. base_secs);
          ("lockfree_vs_sharded_rate_jobs1",
           if r "sharded" > 0.0 then r "lockfree" /. r "sharded" else 0.0);
          ("compressed_vs_sharded_rate_jobs1",
           if r "sharded" > 0.0 then r "compressed" /. r "sharded" else 0.0);
          ("sharded_visited_bytes", b "sharded");
          ("lockfree_visited_bytes", b "lockfree");
          ("compressed_visited_bytes", b "compressed");
          ("compressed_vs_sharded_memory",
           if b "sharded" > 0.0 then b "compressed" /. b "sharded" else 0.0);
        ];
    }
  in
  Format.printf
    "p2: jobs=1 rate lockfree/sharded %.2fx, compressed/sharded memory %.2fx@."
    (if r "sharded" > 0.0 then r "lockfree" /. r "sharded" else 0.0)
    (if b "sharded" > 0.0 then b "compressed" /. b "sharded" else 0.0);
  rows @ [ compare_row ]

(* P3: parallel orbit minimization — [Symmetry.canonical_key ~jobs] over
   the full symmetric group on 5 processes (120 permutations, above the
   chunking threshold).  The canonical key and winning permutation are
   asserted identical at every domain count. *)
let perf_canonical ~jobs_list () =
  let k = 5 in
  (* |S_5| = 120 sits BELOW the chunking threshold (512): every [jobs]
     now takes the sequential fold, so jobs=2 must cost the same as
     jobs=1 — that is the small-orbit regression fix this row guards
     (the old threshold of 64 made jobs=2 pay a 27x domain-spawn
     penalty per call here). *)
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let programs =
    List.init k (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  let sym = Symmetry.standard ~n:k ~input_base:100 `Full in
  let base_key, base_perm = Symmetry.canonical_key ~jobs:1 sym config in
  let repeat = 200 in
  List.map
    (fun jobs ->
      let key, perm = Symmetry.canonical_key ~jobs sym config in
      if not (key = base_key && perm = base_perm) then
        Format.printf "!! p3 jobs=%d NONDETERMINISM: canonical key differs@."
          jobs;
      let t0 = Unix.gettimeofday () in
      for _ = 1 to repeat do
        ignore (Sys.opaque_identity (Symmetry.canonical_key ~jobs sym config))
      done;
      let per_call = (Unix.gettimeofday () -. t0) /. float_of_int repeat in
      Format.printf
        "p3: canonical_key S_%d (%d perms), jobs=%d: %.0f us/call@." k 120
        jobs (1e6 *. per_call);
      {
        name = Printf.sprintf "p3.canonical_key.jobs%d" jobs;
        fields =
          [
            ("jobs", float_of_int jobs);
            ("perms", 120.0);
            ("us_per_call", 1e6 *. per_call);
          ];
      })
    jobs_list
  |> fun rows ->
  (* Guard row: jobs=2 / jobs=1 cost ratio at this small orbit.  Must
     stay ~1.0 (CI asserts <= 1.2) now that small groups bypass the
     domain fan-out entirely. *)
  let us j =
    List.find_map
      (fun r ->
        if r.name = Printf.sprintf "p3.canonical_key.jobs%d" j then
          List.assoc_opt "us_per_call" r.fields
        else None)
      rows
  in
  match (us 1, us 2) with
  | Some u1, Some u2 when u1 > 0.0 ->
    Format.printf "p3: small-orbit jobs2/jobs1 ratio %.2fx@." (u2 /. u1);
    rows
    @ [
        {
          name = "p3.canonical_key.small_orbit_ratio";
          fields =
            [ ("perms", 120.0); ("jobs2_vs_jobs1", u2 /. u1) ];
        };
      ]
  | _ -> rows

(* P4 / E19 artifact rows: source-set reduction strength under work
   stealing — Algorithm 5 k=3 f=1 explored unreduced, with symmetry only,
   and at full reduction (symmetry + source sets), each at jobs 1/2/4.
   The counts are deterministic (that is E19's claim, re-asserted here),
   so the reduction ratio is a constant of the family; we still record it
   per domain count so the CI artifact shows the parallel runs achieving
   the same pruning as the sequential one, not a degraded approximation. *)
let perf_reduction ~jobs_list () =
  let k = 3 in
  let config () =
    let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
    let programs =
      List.init k (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
    in
    Config.make store programs
  in
  let sym () = Symmetry.standard ~n:k ~input_base:100 `Rotations in
  let reductions =
    [
      ("none", None);
      ("symmetry", Some (Explore.with_symmetry (sym ())));
      ("full", Some (Explore.full_reduction (sym ())));
    ]
  in
  let explore reduction jobs =
    let t0 = Unix.gettimeofday () in
    let stats =
      if jobs <= 1 then
        Explore.iter_terminals ~max_crashes:1 ?reduction (config ())
          ~f:(fun _ _ -> ())
      else
        Parallel.iter_terminals ~max_crashes:1 ?reduction ~jobs (config ())
          ~f:(fun _ _ -> ())
    in
    (stats, Unix.gettimeofday () -. t0)
  in
  let cells =
    List.map
      (fun (name, red) ->
        (name, List.map (fun jobs -> (jobs, explore red jobs)) jobs_list))
      reductions
  in
  let trans name jobs =
    let s, _ = List.assoc jobs (List.assoc name cells) in
    s.Explore.transitions
  in
  List.concat_map
    (fun (name, per_jobs) ->
      let base, _ = snd (List.hd per_jobs) in
      List.map
        (fun (jobs, ((stats : Explore.stats), secs)) ->
          if stats.Explore.transitions <> base.Explore.transitions then
            Format.printf
              "!! p4 %s jobs=%d NONDETERMINISM: %d transitions, expected %d@."
              name jobs stats.Explore.transitions base.Explore.transitions;
          let ratio_vs_none =
            float_of_int (trans "none" jobs)
            /. float_of_int (max 1 stats.Explore.transitions)
          in
          let ratio_vs_symmetry =
            float_of_int (trans "symmetry" jobs)
            /. float_of_int (max 1 stats.Explore.transitions)
          in
          Format.printf
            "p4: explore alg5 k=3 f=1, reduction=%s jobs=%d: %d states, %d \
             transitions (%.2fx vs none), %.3fs@."
            name jobs stats.Explore.states stats.Explore.transitions
            ratio_vs_none secs;
          {
            name = Printf.sprintf "e19.reduction.%s.jobs%d" name jobs;
            fields =
              [
                ("jobs", float_of_int jobs);
                ("states", float_of_int stats.Explore.states);
                ("transitions", float_of_int stats.Explore.transitions);
                ("terminals", float_of_int stats.Explore.terminals);
                ("source_skips", float_of_int stats.Explore.source_skips);
                ("seconds", secs);
                ("ratio_vs_none", ratio_vs_none);
                ("ratio_vs_symmetry", ratio_vs_symmetry);
              ];
          })
        per_jobs)
    cells

(* P5: the static-independence fast path (Issue 8).  Full reduction,
   three independence modes per family; the interesting numbers are the
   diamond computations the static tables avoid and the resulting
   states/sec, with commute.static_mismatches as the cross-validation
   row (must stay 0).  Counters are read as before/after deltas. *)
let perf_independence () =
  ignore (Subc_analysis.Analyzer.install_static ());
  let families =
    [
      ( "alg2",
        fun () ->
          let store, t = Subc_core.Alg2.alloc Store.empty ~k:3 ~one_shot:true in
          ( store,
            List.init 3 (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i))),
            Subc_core.Alg2.symmetry t ~input_base:100 () ) );
      ( "alg5",
        fun () ->
          let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
          ( store,
            List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i))),
            Subc_core.Alg5.symmetry t ~input_base:100 () ) );
      ( "1swrn",
        fun () ->
          let store, h =
            Store.alloc Store.empty (Subc_objects.One_shot_wrn.model ~k:3)
          in
          ( store,
            List.init 3 (fun i ->
                Subc_objects.One_shot_wrn.wrn h i (Value.Int (100 + i))),
            Symmetry.standard ~n:3 ~input_base:100 `Rotations ) );
    ]
  in
  let metric name =
    match Subc_obs.Metrics.find name with Some v -> v | None -> 0.
  in
  let counter_names =
    [
      "commute.diamonds"; "commute.memo_hits"; "commute.static_hits";
      "commute.static_mismatches";
    ]
  in
  List.concat_map
    (fun (family, harness) ->
      List.map
        (fun (mode, independence) ->
          let store, programs, sym = harness () in
          let options =
            Search.of_legacy ~max_crashes:1
              ~reduction:(Explore.full_reduction sym)
              ~independence ()
          in
          let before = List.map metric counter_names in
          let t0 = Unix.gettimeofday () in
          let stats =
            Search.iter_terminals ~options
              (Config.make store programs)
              ~f:(fun _ _ -> ())
          in
          let secs = Unix.gettimeofday () -. t0 in
          let deltas =
            List.map2 ( -. ) (List.map metric counter_names) before
          in
          Format.printf
            "p5: %s %s: %d states, %.0f diamonds, %.0f static hits, %.0f \
             mismatches, %.3fs@."
            family mode stats.Explore.states (List.nth deltas 0)
            (List.nth deltas 2) (List.nth deltas 3) secs;
          {
            name = Printf.sprintf "p5.independence.%s.%s" family mode;
            fields =
              [
                ("states", float_of_int stats.Explore.states);
                ("transitions", float_of_int stats.Explore.transitions);
                ("seconds", secs);
                ( "states_per_sec",
                  float_of_int stats.Explore.states /. max 1e-9 secs );
                ("diamonds", List.nth deltas 0);
                ("memo_hits", List.nth deltas 1);
                ("static_hits", List.nth deltas 2);
                ("static_mismatches", List.nth deltas 3);
              ];
          })
        [
          ("semantic", Explore.Semantic); ("static", Explore.Static);
          ("both", Explore.Both);
        ])
    families

(* E21 artifact rows: incremental fingerprinting + delta frontiers on
   the end-to-end explore path — per family x reduction x fp mode x
   domain count.  Counts must be identical between [--fp incremental]
   and [--fp full] everywhere (the homomorphic hash and the fold are
   both injective w.h.p., and a run keys consistently by one of them);
   states/sec, fp.patches / fp.refolds deltas and the frontier_bytes
   gauge are the measurement.  On the unreduced lanes the patch path
   must pay >= 3x fewer re-folds per state (fp.refolds stays at the
   roots while every visited state costs one patch). *)
let perf_e21 ~jobs_list () =
  let families =
    [
      ( "alg5.k3",
        (fun () ->
          let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
          let programs =
            List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
          in
          (Config.make store programs, Subc_core.Alg5.symmetry t ~input_base:100 ())) );
      ( "alg2.k3",
        (fun () ->
          let store, t = Subc_core.Alg2.alloc Store.empty ~k:3 ~one_shot:true in
          let programs =
            List.init 3 (fun i ->
                Subc_core.Alg2.propose t ~i (Value.Int (100 + i)))
          in
          (Config.make store programs, Subc_core.Alg2.symmetry t ~input_base:100 ())) );
    ]
  in
  List.concat_map
    (fun (fam, make) ->
      let config, sym = make () in
      List.concat_map
        (fun (rname, reduction) ->
          List.concat_map
            (fun jobs ->
              let run fp =
                let t0 = Unix.gettimeofday () in
                let (stats : Explore.stats), deltas =
                  counter_delta [ "fp.patches"; "fp.refolds" ] (fun () ->
                      Search.iter_terminals
                        ~options:
                          (Search.of_legacy ~max_crashes:1 ~reduction ~fp
                             ~jobs ())
                        config
                        ~f:(fun _ _ -> ()))
                in
                (stats, Unix.gettimeofday () -. t0, deltas)
              in
              let inc, inc_secs, inc_deltas = run Explore.Incremental in
              let full, full_secs, _ = run Explore.Full in
              if
                inc.Explore.states <> full.Explore.states
                || inc.Explore.transitions <> full.Explore.transitions
                || inc.Explore.terminals <> full.Explore.terminals
              then
                Format.printf
                  "!! e21 %s/%s jobs=%d MODE DISAGREEMENT: inc %d/%d/%d vs \
                   full %d/%d/%d@."
                  fam rname jobs inc.Explore.states inc.Explore.transitions
                  inc.Explore.terminals full.Explore.states
                  full.Explore.transitions full.Explore.terminals;
              Format.printf
                "e21: %s %s jobs=%d: %d states; inc %.0f st/s (patches \
                 %.0f, refolds %.0f, frontier %dB), full %.0f st/s \
                 (%.2fx)@."
                fam rname jobs inc.Explore.states
                (float_of_int inc.Explore.states /. inc_secs)
                (List.nth inc_deltas 0) (List.nth inc_deltas 1)
                inc.Explore.frontier_bytes
                (float_of_int full.Explore.states /. full_secs)
                (full_secs /. inc_secs);
              List.map2
                (fun fp (stats, secs, deltas) ->
                  {
                    name =
                      Printf.sprintf "e21.%s.%s.%s.jobs%d" fam rname fp jobs;
                    fields =
                      [
                        ("jobs", float_of_int jobs);
                        ("states", float_of_int stats.Explore.states);
                        ("transitions", float_of_int stats.Explore.transitions);
                        ("terminals", float_of_int stats.Explore.terminals);
                        ("seconds", secs);
                        ( "states_per_sec",
                          if secs > 0.0 then
                            float_of_int stats.Explore.states /. secs
                          else 0.0 );
                        ("fp_patches", List.nth deltas 0);
                        ("fp_refolds", List.nth deltas 1);
                        ( "frontier_bytes",
                          float_of_int stats.Explore.frontier_bytes );
                      ];
                  })
                [ "incremental"; "full" ]
                [ (inc, inc_secs, inc_deltas); (full, full_secs, [ 0.0; 0.0 ]) ])
            jobs_list)
        [ ("none", Explore.no_reduction); ("full", Explore.full_reduction sym) ])
    families

(* P6 / E22 artifact rows: the partitioned engine.  Three headline
   guards ride in [p6.partition_compare]:

   - [partition1_vs_parallel]: the batching/ownership machinery at
     partitions=1 must cost <= 1.15x the plain work-stealing engine at
     the same domain count (CI asserts this) — a single partition sends
     no batches, so the overhead is the routing hash and the credit
     counter.
   - [spill_vs_lockfree_memory]: the mmap-spilled visited set's heap
     residency must be <= 50% of the lock-free claim table's on the
     largest registry family (it is bookkeeping-only; the mapped pages
     are file-backed).
   - determinism: every partitioned run's counts are diffed against the
     sequential explorer, like P2 does for the parallel engine. *)
let perf_partition ~jobs_list () =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k:3 () in
  let programs =
    List.init 3 (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let config = Config.make store programs in
  let base_stats =
    Explore.iter_terminals ~max_crashes:1 config ~f:(fun _ _ -> ())
  in
  let repeat = 3 in
  let best_of f =
    let best = ref infinity and result = ref None in
    for _ = 1 to repeat do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let jobs = match List.rev jobs_list with j :: _ -> min j 4 | [] -> 4 in
  (* The plain parallel engine at the same domain count: the overhead
     baseline for partitions=1. *)
  let _, parallel_secs =
    best_of (fun () ->
        Parallel.iter_terminals ~max_crashes:1 ~seq_threshold:0 ~jobs config
          ~f:(fun _ _ -> ()))
  in
  let counter_names =
    [ "partition.batches_sent"; "partition.batch_bytes";
      "partition.spill_bytes"; "partition.steals" ]
  in
  let explore ?spill partitions =
    let (stats, secs), deltas =
      counter_delta counter_names (fun () ->
          best_of (fun () ->
              Partition.iter_terminals ~max_crashes:1 ?spill ~seq_threshold:0
                ~partitions ~jobs config
                ~f:(fun _ _ -> ())))
    in
    (stats, secs, List.map (fun d -> d /. float_of_int repeat) deltas)
  in
  let secs_p1 = ref 0.0 in
  let bytes_of_mode = Hashtbl.create 4 in
  let rows =
    List.concat_map
      (fun (mode, spill) ->
        List.map
          (fun partitions ->
            let stats, secs, deltas = explore ?spill partitions in
            if
              stats.Explore.states <> base_stats.Explore.states
              || stats.Explore.terminals <> base_stats.Explore.terminals
            then
              Format.printf
                "!! p6 %s partitions=%d NONDETERMINISM: %d states / %d \
                 terminals, expected %d / %d@."
                mode partitions stats.Explore.states stats.Explore.terminals
                base_stats.Explore.states base_stats.Explore.terminals;
            if mode = "heap" && partitions = 1 then secs_p1 := secs;
            let visited_bytes =
              Option.value ~default:0.0
                (Obs.Metrics.find "partition.visited_bytes")
            in
            Hashtbl.replace bytes_of_mode mode visited_bytes;
            Format.printf
              "p6: explore alg5 k=3 f=1, tables=%s partitions=%d jobs=%d: %d \
               states, %.3fs, %.0f batches, %.0f batch B, visited %.0f B@."
              mode partitions jobs stats.Explore.states secs
              (List.nth deltas 0) (List.nth deltas 1) visited_bytes;
            {
              name =
                Printf.sprintf "p6.partition_explore.%s.p%d" mode partitions;
              fields =
                [
                  ("partitions", float_of_int partitions);
                  ("jobs", float_of_int jobs);
                  ("states", float_of_int stats.Explore.states);
                  ("seconds", secs);
                  ( "states_per_sec",
                    float_of_int stats.Explore.states /. max 1e-9 secs );
                  ("collision_bound", stats.Explore.collision_bound);
                  ("visited_bytes", visited_bytes);
                  ("batches_sent", List.nth deltas 0);
                  ("batch_bytes", List.nth deltas 1);
                  ("spill_bytes", List.nth deltas 2);
                  ("steals", List.nth deltas 3);
                ];
            })
          [ 1; 2; 4 ])
      [ ("heap", None); ("spill", Some "_perf_spill.tmp") ]
  in
  (* The lock-free table's bytes for the memory headline come from the
     plain engine's gauge (same family, same budget). *)
  ignore
    (Parallel.iter_terminals ~visited:Parallel.Lockfree ~max_crashes:1
       ~seq_threshold:0 ~jobs config
       ~f:(fun _ _ -> ()));
  let lockfree_bytes =
    Option.value ~default:0.0 (Obs.Metrics.find "parallel.visited_bytes")
  in
  let spill_bytes_heap =
    try Hashtbl.find bytes_of_mode "spill" with Not_found -> 0.0
  in
  let overhead =
    if parallel_secs > 0.0 then !secs_p1 /. parallel_secs else 0.0
  in
  Format.printf
    "p6: partitions=1 vs parallel %.2fx; spill heap bytes / lockfree %.2fx@."
    overhead
    (if lockfree_bytes > 0.0 then spill_bytes_heap /. lockfree_bytes else 0.0);
  rows
  @ [
      {
        name = "p6.partition_compare";
        fields =
          [
            ("jobs", float_of_int jobs);
            ("parallel_seconds", parallel_secs);
            ("partition1_seconds", !secs_p1);
            ("partition1_vs_parallel", overhead);
            ("lockfree_visited_bytes", lockfree_bytes);
            ("spill_heap_bytes", spill_bytes_heap);
            ( "spill_vs_lockfree_memory",
              if lockfree_bytes > 0.0 then spill_bytes_heap /. lockfree_bytes
              else 0.0 );
          ];
      };
    ]

(* P7: the auto-sequential fallback (SUBC_SEQ_THRESHOLD).  On a space
   far below the threshold the parallel entry points complete on the
   seeding pass without spawning a single domain, so asking for jobs=4
   must cost about the same as the sequential explorer — CI asserts the
   ratio <= 1.2 (the old eager spawn measured 2-8x here). *)
let perf_seq_fallback () =
  let harness () =
    let store, t = Subc_core.Alg2.alloc Store.empty ~k:3 ~one_shot:true in
    Config.make store
      (List.init 3 (fun i -> Subc_core.Alg2.propose t ~i (Value.Int (100 + i))))
  in
  let config = harness () in
  let repeat = 200 in
  let per_call f =
    (* Warm up, then time: domain spawn noise is the thing measured. *)
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to repeat do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int repeat
  in
  let seq_secs =
    per_call (fun () ->
        Explore.iter_terminals ~max_crashes:1 config ~f:(fun _ _ -> ()))
  in
  let fallback_secs =
    per_call (fun () ->
        Parallel.iter_terminals ~max_crashes:1 ~jobs:4 config
          ~f:(fun _ _ -> ()))
  in
  let eager_secs =
    per_call (fun () ->
        Parallel.iter_terminals ~max_crashes:1 ~seq_threshold:0 ~jobs:4 config
          ~f:(fun _ _ -> ()))
  in
  let ratio = if seq_secs > 0.0 then fallback_secs /. seq_secs else 0.0 in
  Format.printf
    "p7: alg2 k=3 f=1 (small space): seq %.0f us, jobs=4 fallback %.0f us \
     (%.2fx), jobs=4 eager %.0f us (%.2fx)@."
    (1e6 *. seq_secs) (1e6 *. fallback_secs) ratio (1e6 *. eager_secs)
    (if seq_secs > 0.0 then eager_secs /. seq_secs else 0.0);
  [
    {
      name = "p7.seq_fallback";
      fields =
        [
          ("threshold", float_of_int (Parallel.default_seq_threshold ()));
          ("seq_us", 1e6 *. seq_secs);
          ("fallback_jobs4_us", 1e6 *. fallback_secs);
          ("eager_jobs4_us", 1e6 *. eager_secs);
          ("small_space_ratio", ratio);
          ( "eager_ratio",
            if seq_secs > 0.0 then eager_secs /. seq_secs else 0.0 );
        ];
    };
  ]

let run_perf ?(jobs_list = [ 1; 2; 4; 8 ]) () =
  Format.printf "@.=== Performance sweep (%s) ===@." results_file;
  let fingerprint = perf_fingerprint () in
  let parallel = perf_parallel ~jobs_list () in
  let canonical =
    perf_canonical ~jobs_list:(List.filter (fun j -> j <= 4) jobs_list) ()
  in
  let reduction =
    perf_reduction ~jobs_list:(List.filter (fun j -> j <= 4) jobs_list) ()
  in
  let independence = perf_independence () in
  let e21 =
    perf_e21 ~jobs_list:(List.filter (fun j -> j <= 4) jobs_list) ()
  in
  let partition = perf_partition ~jobs_list () in
  let seq_fallback = perf_seq_fallback () in
  write_results
    ((fingerprint :: parallel) @ canonical @ reduction @ independence @ e21
    @ partition @ seq_fallback)
