(* Command-line driver: run, model-check and trace the paper's algorithms.

   Examples:
     subconsensus_cli alg2 -k 4 --exhaustive
     subconsensus_cli alg2 -k 6 --seeds 500
     subconsensus_cli alg5 -k 3 --participants 0,1,2
     subconsensus_cli alg6 -n 12 -k 3 --seeds 200
     subconsensus_cli attempt --style mirror -k 3
     subconsensus_cli trace -k 3 --seed 7 *)

open Cmdliner
open Subc_sim
module Task = Subc_tasks.Task

let inputs_of k = List.init k (fun i -> Value.Int (100 + i))

(* A truncated search must not read as a verified one: exit 2 (and keep the
   (LIMITED) marker of [pp_stats]) when any budget was exhausted. *)
let report_exhaustive store programs inputs task =
  match Subc_check.Task_check.exhaustive store ~programs ~inputs ~task with
  | Ok stats when stats.Explore.limited ->
    Format.printf
      "no violation found, but the search was truncated — NOT a proof@.%a@."
      Explore.pp_stats stats;
    2
  | Ok stats ->
    Format.printf "all executions satisfy %s@.%a@." task.Task.name
      Explore.pp_stats stats;
    0
  | Error (reason, trace) ->
    Format.printf "VIOLATION of %s: %s@.%a@." task.Task.name reason Trace.pp
      trace;
    1

let report_sampled store programs inputs task n_seeds =
  let seeds = List.init n_seeds (fun i -> i + 1) in
  let s = Subc_check.Task_check.sample store ~programs ~inputs ~task ~seeds in
  Format.printf "%a@." Subc_check.Task_check.pp_sample_stats s;
  (match s.Subc_check.Task_check.first_violation with
  | Some (reason, trace) ->
    Format.printf "first violation: %s@.%a@." reason Trace.pp trace
  | None -> ());
  if s.Subc_check.Task_check.violations = 0 then 0 else 1

(* Shared flags. *)
let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~doc:"WRN arity $(docv).")
let exhaustive_arg =
  Arg.(value & flag & info [ "exhaustive" ] ~doc:"Model-check all schedules.")
let seeds_arg =
  Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Number of random runs.")

let alg2_cmd =
  let run k exhaustive n_seeds =
    let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
    let inputs = inputs_of k in
    let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
    let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
    if exhaustive then report_exhaustive store programs inputs task
    else report_sampled store programs inputs task n_seeds
  in
  Cmd.v
    (Cmd.info "alg2" ~doc:"(k-1)-set consensus from one WRN_k (Algorithm 2).")
    Term.(const run $ k_arg $ exhaustive_arg $ seeds_arg)

let alg3_cmd =
  let run k exhaustive n_seeds ids =
    let ids =
      match ids with
      | [] -> List.init k (fun i -> (i * 37) mod 1000)
      | ids -> ids
    in
    let store, t =
      Subc_core.Alg3.alloc Store.empty ~k ~flavor:Subc_core.Alg3.Relaxed_wrn
        ~renamer:Subc_core.Alg3.Rename_snapshot ()
    in
    let inputs = List.map (fun id -> Value.Int (1000 + id)) ids in
    let programs =
      List.mapi
        (fun slot id ->
          Subc_core.Alg3.propose t ~slot ~id (Value.Int (1000 + id)))
        ids
    in
    let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
    Format.printf "sweep of %d relaxed WRN_%d instances@."
      (Subc_core.Alg3.instances t) k;
    if exhaustive then report_exhaustive store programs inputs task
    else report_sampled store programs inputs task n_seeds
  in
  let ids_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "ids" ] ~doc:"Comma-separated participant identifiers.")
  in
  Cmd.v
    (Cmd.info "alg3"
       ~doc:"(k-1)-set consensus for k participants out of many (Algorithm 3).")
    Term.(const run $ k_arg $ exhaustive_arg $ seeds_arg $ ids_arg)

let alg5_cmd =
  let run k participants =
    let participants =
      match participants with [] -> List.init k Fun.id | ps -> ps
    in
    let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
    let programs =
      List.map (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i))) participants
    in
    let ops i =
      let idx = List.nth participants i in
      Op.make "wrn" [ Value.Int idx; Value.Int (100 + idx) ]
    in
    let spec = Subc_objects.One_shot_wrn.model ~k in
    let config = Config.make store programs in
    let bad = ref 0 and terminals = ref 0 in
    let stats =
      Explore.iter_terminals config ~f:(fun final trace ->
          incr terminals;
          let history = Subc_check.Linearizability.history ~ops final trace in
          if Subc_check.Linearizability.check ~spec history = None then begin
            incr bad;
            Format.printf "NON-LINEARIZABLE:@.%a@."
              Subc_check.Linearizability.pp_history history
          end)
    in
    Format.printf
      "explored %d states, %d terminals, %d non-linearizable histories%s@."
      stats.Explore.states !terminals !bad
      (if stats.Explore.limited then " (LIMITED)" else "");
    if !bad > 0 then 1 else if stats.Explore.limited then 2 else 0
  in
  let participants_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "participants" ] ~doc:"Indices that invoke the 1sWRN.")
  in
  Cmd.v
    (Cmd.info "alg5"
       ~doc:
         "Model-check the linearizability of 1sWRN_k from strong set \
          election (Algorithm 5).")
    Term.(const run $ k_arg $ participants_arg)

let alg6_cmd =
  let run n k exhaustive n_seeds =
    let store, t = Subc_core.Alg6.alloc Store.empty ~n ~k ~one_shot:true in
    let inputs = inputs_of n in
    let programs = List.mapi (fun i v -> Subc_core.Alg6.propose t ~i v) inputs in
    let m = Subc_core.Alg6.agreement_bound ~n ~k in
    Format.printf "agreement bound m = %d (n=%d, k=%d)@." m n k;
    let task = Task.conj (Task.set_consensus m) Task.all_decided in
    if exhaustive then report_exhaustive store programs inputs task
    else report_sampled store programs inputs task n_seeds
  in
  let n_arg = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Process count.") in
  Cmd.v
    (Cmd.info "alg6" ~doc:"m-set consensus for n processes (Algorithm 6).")
    Term.(const run $ n_arg $ k_arg $ exhaustive_arg $ seeds_arg)

let attempt_cmd =
  let run style k =
    let style =
      match style with
      | "mirror" -> Subc_classic.Wrn_attempts.Mirror_alg2
      | "same-index" -> Subc_classic.Wrn_attempts.Same_index
      | "announce" -> Subc_classic.Wrn_attempts.Adjacent_announce
      | "busy-wait" -> Subc_classic.Wrn_attempts.Busy_wait
      | s -> Fmt.failwith "unknown style %S" s
    in
    let store, t = Subc_classic.Wrn_attempts.alloc Store.empty ~k ~style in
    let programs =
      [
        Subc_classic.Wrn_attempts.propose t ~me:0 (Value.Int 0);
        Subc_classic.Wrn_attempts.propose t ~me:1 (Value.Int 1);
      ]
    in
    let config = Config.make store programs in
    (match
       Subc_check.Valence.check_consensus config
         ~inputs:[ Value.Int 0; Value.Int 1 ]
     with
    | Subc_check.Valence.Solves stats ->
      Format.printf "solves 2-consensus (%a)@." Explore.pp_stats stats
    | Subc_check.Valence.Violation { reason; trace } ->
      Format.printf "violation: %s@.%a@." reason Trace.pp trace
    | Subc_check.Valence.Diverges { trace } ->
      Format.printf "diverges; lasso schedule %a@." Value.pp
        (Value.of_int_list (Trace.schedule trace))
    | Subc_check.Valence.Unknown { detail } ->
      Format.printf "unknown: %s@." detail);
    0
  in
  let style_arg =
    Arg.(
      value
      & opt string "mirror"
      & info [ "style" ]
          ~doc:"Protocol style: mirror | same-index | announce | busy-wait.")
  in
  Cmd.v
    (Cmd.info "attempt"
       ~doc:"Verdict on a 2-consensus attempt over WRN_k (Lemma 38 / E6).")
    Term.(const run $ style_arg $ k_arg)

let trace_cmd =
  let run k seed =
    let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
    let inputs = inputs_of k in
    let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
    let config = Config.make store programs in
    let r = Runner.run (Runner.Random seed) config in
    Format.printf "%a@.decisions: %a@." Trace.pp r.Runner.trace Value.pp
      (Value.Vec (Config.decisions r.Runner.final));
    0
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print one full execution of Algorithm 2.")
    Term.(const run $ k_arg $ seed_arg)

let power_cmd =
  let run n k =
    let module P = Subc_classic.Set_consensus_power in
    let families =
      [
        P.Registers; P.Wrn_objects 3; P.Wrn_objects 4; P.Sse_object 3;
        P.Two_consensus_pairs; P.Cas_object;
      ]
    in
    List.iter
      (fun family ->
        if P.applicable family ~n then begin
          let verdict =
            match P.verdict family ~n ~k with
            | `Solves -> "solves"
            | `Violates -> "fails"
            | `Diverges -> "diverges"
            | `Unknown -> "unknown"
          in
          Format.printf "%-20s (%d,%d)-set consensus: %-8s (predicted %s)@."
            (P.family_name family) n k verdict
            (if P.predicted family ~n ~k then "solves" else "fails")
        end)
      families;
    0
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Process count.") in
  let k_bound = Arg.(value & opt int 2 & info [ "agree" ] ~doc:"Agreement bound.") in
  Cmd.v
    (Cmd.info "power"
       ~doc:"Which object families solve (n,k)-set consensus (experiment E13).")
    Term.(const run $ n_arg $ k_bound)

let bg_cmd =
  let run simulators m seed =
    let codes =
      List.init m (fun p ->
          Subc_bgsim.Sim_code.write_then_snapshot (Value.Int (100 + p)) Fun.id)
    in
    let store, bg = Subc_bgsim.Bg.alloc Store.empty ~simulators ~codes in
    let programs = List.init simulators (fun me -> Subc_bgsim.Bg.simulate bg ~me) in
    let config = Config.make store programs in
    let r = Runner.run (Runner.Random seed) config in
    Format.printf "%d real steps@." r.Runner.steps;
    List.iteri
      (fun s out ->
        match out with
        | Some view ->
          Format.printf "simulator %d: %a@." s Value.pp view
        | None -> Format.printf "simulator %d: (unfinished)@." s)
      (List.init simulators (fun s -> Config.decision r.Runner.final s));
    0
  in
  let sims_arg =
    Arg.(value & opt int 2 & info [ "simulators" ] ~doc:"Real simulators.")
  in
  let m_arg =
    Arg.(value & opt int 3 & info [ "m" ] ~doc:"Simulated processes.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "bg" ~doc:"Run the Borowsky–Gafni simulation on a random schedule.")
    Term.(const run $ sims_arg $ m_arg $ seed_arg)

let critical_cmd =
  let run k style =
    let style =
      match style with
      | "mirror" -> Subc_classic.Wrn_attempts.Mirror_alg2
      | "same-index" -> Subc_classic.Wrn_attempts.Same_index
      | "announce" -> Subc_classic.Wrn_attempts.Adjacent_announce
      | "busy-wait" -> Subc_classic.Wrn_attempts.Busy_wait
      | s -> Fmt.failwith "unknown style %S" s
    in
    let store, t = Subc_classic.Wrn_attempts.alloc Store.empty ~k ~style in
    let programs =
      [
        Subc_classic.Wrn_attempts.propose t ~me:0 (Value.Int 0);
        Subc_classic.Wrn_attempts.propose t ~me:1 (Value.Int 1);
      ]
    in
    let config = Config.make store programs in
    (match Subc_check.Valence.find_critical config with
    | Some crit ->
      Format.printf "%a@." Subc_check.Valence.pp_critical crit
    | None -> Format.printf "the initial configuration is univalent@.");
    0
  in
  let style_arg =
    Arg.(
      value & opt string "mirror"
      & info [ "style" ] ~doc:"mirror | same-index | announce | busy-wait.")
  in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Descend to a critical configuration of a 2-consensus protocol \
          over WRN_k (the Lemma 38 structure).")
    Term.(const run $ k_arg $ style_arg)

let crash_sweep_cmd =
  let run alg k f max_states solo_limit =
    let module Progress = Subc_check.Progress in
    let code = ref 0 in
    let bump c = code := max !code c in
    let note_limited (stats : Explore.stats) =
      if stats.Explore.limited then bump 2
    in
    let progress store programs =
      match
        Progress.wait_free ~max_states ~max_crashes:f ~solo_limit store
          ~programs
      with
      | Ok cert ->
        Format.printf "progress: %a@." Progress.pp_certificate cert
      | Error (Progress.Limited _ as fail) ->
        Format.printf "progress: %a@." Progress.pp_failure fail;
        bump 2
      | Error fail ->
        Format.printf "progress: %a@." Progress.pp_failure fail;
        bump 1
    in
    (match alg with
    | "alg2" | "alg6" ->
      let store, programs, inputs, bound =
        if alg = "alg2" then begin
          let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
          let inputs = inputs_of k in
          ( store,
            List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs,
            inputs, k - 1 )
        end
        else begin
          let n = 2 * k in
          let store, t = Subc_core.Alg6.alloc Store.empty ~n ~k ~one_shot:true in
          let inputs = inputs_of n in
          ( store,
            List.mapi (fun i v -> Subc_core.Alg6.propose t ~i v) inputs,
            inputs, Subc_core.Alg6.agreement_bound ~n ~k )
        end
      in
      (* No [all_decided]: crashed processes legitimately never decide. *)
      let task = Task.set_consensus bound in
      for f' = 0 to f do
        let config = Config.make store programs in
        match
          Explore.check_terminals ~max_states ~max_crashes:f' config
            ~ok:(fun c -> Task.satisfies task ~inputs c)
        with
        | Ok stats ->
          Format.printf "f=%d: every crash pattern satisfies %s  (%a)@." f'
            task.Task.name Explore.pp_stats stats;
          note_limited stats
        | Error (_, trace, _) ->
          Format.printf "f=%d: VIOLATION of %s@.%a@." f' task.Task.name
            Trace.pp trace;
          bump 1
      done;
      progress store programs
    | "alg5" ->
      let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
      let participants = List.init k Fun.id in
      let programs =
        List.map
          (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
          participants
      in
      let ops i = Op.make "wrn" [ Value.Int i; Value.Int (100 + i) ] in
      let spec = Subc_objects.One_shot_wrn.model ~k in
      let config = Config.make store programs in
      let bad = ref 0 and terminals = ref 0 in
      let stats =
        Explore.iter_terminals ~max_states ~max_crashes:f config
          ~f:(fun final trace ->
            incr terminals;
            let history =
              Subc_check.Linearizability.history ~ops final trace
            in
            if Subc_check.Linearizability.check ~spec history = None then begin
              incr bad;
              Format.printf "NON-LINEARIZABLE under crashes:@.%a@."
                Subc_check.Linearizability.pp_history history
            end)
      in
      Format.printf
        "f<=%d: %d states, %d terminals (%d with crashes), %d \
         non-linearizable histories%s@."
        f stats.Explore.states !terminals stats.Explore.crashed_terminals !bad
        (if stats.Explore.limited then " (LIMITED)" else "");
      if !bad > 0 then bump 1;
      note_limited stats;
      progress store programs
    | s -> Fmt.failwith "unknown algorithm %S (expected alg2, alg5 or alg6)" s);
    !code
  in
  let alg_arg =
    Arg.(
      value
      & opt (enum [ ("alg2", "alg2"); ("alg5", "alg5"); ("alg6", "alg6") ])
          "alg2"
      & info [ "alg" ] ~docv:"ALG" ~doc:"Algorithm to sweep: $(docv).")
  in
  let crashes_arg =
    Arg.(
      value & opt int 1
      & info [ "max-crashes" ] ~docv:"F"
          ~doc:"Crash budget $(docv) (sweep f = 0..$(docv)).")
  in
  let max_states_arg =
    Arg.(
      value & opt int 5_000_000
      & info [ "max-states" ] ~doc:"State budget per exploration.")
  in
  let solo_limit_arg =
    Arg.(
      value & opt int 10_000
      & info [ "solo-limit" ] ~doc:"Solo-step bound for the progress checker.")
  in
  Cmd.v
    (Cmd.info "crash-sweep"
       ~doc:
         "Exhaustive crash-fault sweep: verify safety under every crash \
          pattern within the budget, then certify wait-freedom (solo-step \
          bound).  Exits 1 on violation, 2 when any search was truncated.")
    Term.(
      const run $ alg_arg $ k_arg $ crashes_arg $ max_states_arg
      $ solo_limit_arg)

let () =
  let doc = "sub-consensus deterministic objects: runners and model checkers" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "subconsensus_cli" ~doc)
          [
            alg2_cmd; alg3_cmd; alg5_cmd; alg6_cmd; attempt_cmd; trace_cmd;
            power_cmd; bg_cmd; critical_cmd; crash_sweep_cmd;
          ]))
