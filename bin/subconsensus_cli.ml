(* Command-line driver: run, model-check and trace the paper's algorithms.

   Every checking subcommand funnels its results through one output
   contract: a [Subc_check.Verdict.t] printed either as human-readable
   text or as one JSON object per line (--json), and the shared exit
   codes 0 proved / 1 refuted / 2 limited (for sweeps, refuted wins over
   limited).  --metrics streams observability events and a final metrics
   snapshot; --reduction selects the state-space reductions.

   Examples:
     subconsensus_cli check --alg alg2 -k 4
     subconsensus_cli analyze --family alg2 --json
     subconsensus_cli check --alg alg5 -k 3 --reduction full --certified
     subconsensus_cli check --alg alg5 -k 3 --reduction full --json
     subconsensus_cli explore --alg alg5 -k 3 --reduction full --metrics
     subconsensus_cli crash-sweep --alg alg2 -k 3 --max-crashes 2
     subconsensus_cli alg2 -k 6 --seeds 500
     subconsensus_cli attempt --style mirror -k 3
     subconsensus_cli trace -k 3 --seed 7 *)

open Cmdliner
open Subc_sim
module Task = Subc_tasks.Task
module Obs = Subc_obs
module Verdict = Subc_check.Verdict

let inputs_of k = List.init k (fun i -> Value.Int (100 + i))

(* ------------------------------------------------------------------ *)
(* Shared output plumbing: sink setup, verdict reporting, exit codes.  *)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Machine-readable output: one JSON object per verdict (and per \
           observability event with $(b,--metrics)) on stdout.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Stream observability events (explorations, runs, spans) and \
           print a metrics snapshot at exit.")

let reduction_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", `None); ("source", `Source); ("sleep", `Source);
             ("sym", `Sym); ("full", `Full) ])
        `None
    & info [ "reduction" ] ~docv:"RED"
        ~doc:
          "State-space reduction: $(b,none), $(b,source) (source sets — \
           partial-order reduction; $(b,sleep) is a deprecated alias), \
           $(b,sym) (symmetry quotienting), or $(b,full) (both).  Every \
           reduction runs at full strength at any $(b,--jobs).  \
           Algorithms with no symmetry group fall back to dead-state \
           erasure for $(b,sym)/$(b,full).")

let independence_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("semantic", Explore.Semantic); ("static", Explore.Static);
             ("both", Explore.Both) ])
        Explore.Semantic
    & info [ "independence" ] ~docv:"MODE"
        ~doc:
          "How source-set reduction judges op independence: $(b,semantic) \
           (fresh diamond computations, memoized), $(b,static) (the \
           analyzer's precomputed footprint tables, falling back to the \
           diamond only on state-dependent or unknown pairs), or $(b,both) \
           (consult both and count disagreements in \
           $(b,commute.static_mismatches) — a cross-validation mode).  \
           $(b,static)/$(b,both) first classify and install the registry's \
           footprint tables.  No effect without source sets.")

let setup_obs ~json ~metrics =
  if metrics then
    Obs.Sink.set (if json then Obs.Sink.jsonl stdout else Obs.Sink.stderr_sink)

let finish_obs ~metrics =
  if metrics then begin
    Obs.Metrics.emit_snapshot ();
    List.iter
      (fun (label, secs) ->
        Obs.Sink.emit "span_total"
          [ ("label", Obs.Sink.Str label); ("seconds", Obs.Sink.Float secs) ])
      (Obs.Span.totals ());
    Obs.Sink.flush ()
  end

let report ~json name v =
  if json then print_endline (Verdict.to_json ~name v)
  else Format.printf "@[<v>[%s] %a@]@." name Verdict.pp v

(* The one exit-code contract: 0 proved / 1 refuted / 2 limited; over a
   sweep, a refutation (conclusive) wins over a truncation. *)
let finish ~metrics verdicts =
  finish_obs ~metrics;
  Verdict.combined_exit verdicts

(* ------------------------------------------------------------------ *)
(* Checkable instances: one constructor per algorithm family, shared by
   the check, explore and crash-sweep subcommands.                      *)

type checkable =
  | Task_instance of {
      store : Store.t;
      programs : Value.t Program.t list;
      inputs : Value.t list;
      task : Task.t;
      symmetry : Symmetry.t option;
    }
  | Lin_instance of {
      store : Store.t;
      programs : Value.t Program.t list;
      ops : int -> Op.t;
      spec : Obj_model.t;
      symmetry : Symmetry.t option;
    }

(* Under a positive crash budget, [all_decided] is dropped: crashed
   processes legitimately never decide. *)
let task_for bound ~crashes =
  if crashes > 0 then Task.set_consensus bound
  else Task.conj (Task.set_consensus bound) Task.all_decided

let alg2_instance ~k ~crashes =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = inputs_of k in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
  Task_instance
    {
      store;
      programs;
      inputs;
      task = task_for (k - 1) ~crashes;
      symmetry = Some (Subc_core.Alg2.symmetry t ~input_base:100 ());
    }

let alg3_instance ~k ~crashes =
  let ids = List.init k (fun i -> (i * 37) mod 1000) in
  let store, t =
    Subc_core.Alg3.alloc Store.empty ~k ~flavor:Subc_core.Alg3.Relaxed_wrn
      ~renamer:Subc_core.Alg3.Rename_snapshot ()
  in
  let inputs = List.map (fun id -> Value.Int (1000 + id)) ids in
  let programs =
    List.mapi
      (fun slot id -> Subc_core.Alg3.propose t ~slot ~id (Value.Int (1000 + id)))
      ids
  in
  (* Identifier-asymmetric: no valid renaming group. *)
  Task_instance
    { store; programs; inputs; task = task_for (k - 1) ~crashes; symmetry = None }

let alg5_instance ~k =
  let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
  let programs =
    List.init k (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let ops i = Op.make "wrn" [ Value.Int i; Value.Int (100 + i) ] in
  let spec = Subc_objects.One_shot_wrn.model ~k in
  Lin_instance
    {
      store;
      programs;
      ops;
      spec;
      symmetry = Some (Subc_core.Alg5.symmetry t ~input_base:100 ());
    }

let alg6_instance ~n ~k ~crashes =
  let store, t = Subc_core.Alg6.alloc Store.empty ~n ~k ~one_shot:true in
  let inputs = inputs_of n in
  let programs = List.mapi (fun i v -> Subc_core.Alg6.propose t ~i v) inputs in
  let m = Subc_core.Alg6.agreement_bound ~n ~k in
  (* Per-group WRN objects have length-k vectors: the length-n positional
     data action does not apply, so no symmetry group is exported. *)
  Task_instance
    { store; programs; inputs; task = task_for m ~crashes; symmetry = None }

let instance_of alg ~n ~k ~crashes =
  match alg with
  | "alg2" -> alg2_instance ~k ~crashes
  | "alg3" -> alg3_instance ~k ~crashes
  | "alg5" -> alg5_instance ~k
  | "alg6" -> alg6_instance ~n:(if n = 0 then 2 * k else n) ~k ~crashes
  | s -> Fmt.failwith "unknown algorithm %S" s

let instance_symmetry = function
  | Task_instance { symmetry; _ } | Lin_instance { symmetry; _ } -> symmetry

let instance_store_programs = function
  | Task_instance { store; programs; _ } | Lin_instance { store; programs; _ }
    ->
    (store, programs)

(* With --certified, a reduction is only enabled after the static
   soundness analyzer proves every obligation (purity, commutation,
   equivariance, classification) for the algorithm's registered objects;
   the reduction is then built through [Explore.certified_reduction].  A
   non-proved finding refuses the run with the refutation exit code. *)
let certified_reduction_for ~alg symmetry ~source_sets =
  match Subc_analysis.Registry.find alg with
  | None ->
    Format.eprintf "no analysis registry family for %S@." alg;
    exit 1
  | Some entry -> (
    match
      Subc_analysis.Analyzer.certify ~family:alg
        entry.Subc_analysis.Registry.subjects
    with
    | Ok certificate ->
      Explore.certified_reduction ~certificate ~source_sets symmetry
    | Error findings ->
      Format.eprintf "@[<v>analyzer refuses to certify %s:@,%a@]@." alg
        (Format.pp_print_list Subc_analysis.Analyzer.pp_finding)
        findings;
      exit 1)

(* Resolve the --reduction choice against the instance's symmetry spec.
   Algorithms with no valid renaming group still get the always-sound
   dead-state erasure for sym/full. *)
let reduction_of ?(certified = false) ~alg choice inst =
  let sym () =
    match instance_symmetry inst with
    | Some s -> s
    | None ->
      Symmetry.erasure_only ~n:(List.length (snd (instance_store_programs inst)))
  in
  match choice with
  | `None -> None
  | `Source ->
    Some
      (if certified then certified_reduction_for ~alg None ~source_sets:true
       else Explore.source_only)
  | `Sym ->
    Some
      (if certified then
         certified_reduction_for ~alg (Some (sym ())) ~source_sets:false
       else Explore.with_symmetry (sym ()))
  | `Full ->
    Some
      (if certified then
         certified_reduction_for ~alg (Some (sym ())) ~source_sets:true
       else Explore.full_reduction (sym ()))

(* Resolve --independence: static/both need the analyzer's footprint
   tables published before the search starts.  Installing the whole
   registry is cheap (each subject's space is a few thousand states) and
   keeps the flag usable on any algorithm without naming a family. *)
let resolve_independence independence reduction =
  match independence with
  | Explore.Semantic -> reduction
  | mode ->
    ignore (Subc_analysis.Analyzer.install_static ());
    Option.map (Explore.with_independence mode) reduction

(* One [Search.options] record from the CLI's flags — the single funnel
   every checking subcommand goes through. *)
let options_of ?deadline ?expected_states ?reduction ?spill ~max_states
    ~max_crashes ~max_recoveries ~jobs ~partitions () =
  Search.of_legacy ~max_states ~max_crashes ~max_recoveries ?deadline
    ?expected_states ?reduction ~jobs ~partitions ?spill ()

let check_instance ~options inst =
  match inst with
  | Task_instance { store; programs; inputs; task; _ } ->
    Subc_check.Task_check.check ~options store ~programs ~inputs ~task
  | Lin_instance { store; programs; ops; spec; _ } ->
    Subc_check.Linearizability.check_harness ~options store ~programs ~ops
      ~spec

(* Shared flags. *)
let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~doc:"WRN arity $(docv).")
let exhaustive_arg =
  Arg.(value & flag & info [ "exhaustive" ] ~doc:"Model-check all schedules.")
let seeds_arg =
  Arg.(value & opt int 200 & info [ "seeds" ] ~doc:"Number of random runs.")
let alg_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("alg2", "alg2"); ("alg3", "alg3"); ("alg5", "alg5");
             ("alg6", "alg6") ])
        "alg2"
    & info [ "alg" ] ~docv:"ALG" ~doc:"Algorithm: $(docv).")
let crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "max-crashes" ] ~docv:"F" ~doc:"Crash budget $(docv).")
let max_states_arg =
  Arg.(
    value & opt int 5_000_000
    & info [ "max-states" ] ~doc:"State budget per exploration.")
let recoveries_arg =
  Arg.(
    value & opt int 0
    & info [ "max-recoveries" ] ~docv:"R"
        ~doc:
          "Recovery budget $(docv): additionally quantify over every \
           crash-recovery pattern with at most $(docv) recoveries (a \
           recovered process restarts its program over persistent object \
           state).")
let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds: stop the exploration gracefully \
           when it elapses and downgrade the verdict to limited (exit 2).  \
           Applies per exploration, at any $(b,--jobs).")
let expected_states_arg =
  Arg.(
    value & opt (some int) None
    & info [ "expected-states" ] ~docv:"N"
        ~doc:
          "Sizing hint: pre-size the visited table for about $(docv) \
           states, avoiding growth pauses on explorations whose size is \
           roughly known.  Never affects verdicts or state counts.")
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore with $(docv) domains (multicore).  Verdicts and state \
           counts are deterministic across $(docv); witness traces may \
           differ.  Source sets and symmetry both compose with parallel \
           search: stolen subtrees prune identically to the sequential \
           explorer.")

let partitions_arg =
  Arg.(
    value & opt int 1
    & info [ "partitions" ] ~docv:"P"
        ~doc:
          "Partition state ownership across $(docv) hash-partitioned \
           visited tables (fingerprint-lane routing) with batched \
           cross-partition frontier exchange; $(b,--jobs) domains are \
           split evenly across partitions.  Verdicts and state counts \
           are identical at any $(docv).")

let spill_arg =
  Arg.(
    value & opt (some string) None
    & info [ "spill" ] ~docv:"DIR"
        ~doc:
          "Out-of-core mode: keep each partition's visited set in mmap'd \
           files of 62-bit compressed claim words under $(docv) (created \
           if absent; segment files are unlinked after mapping, so \
           nothing persists).  Heap residency drops to bookkeeping; \
           collision characteristics match $(b,--visited) compressed.  \
           Implies the partitioned engine even at $(b,--partitions) 1.")

let visited_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("sharded", Parallel.Sharded); ("lockfree", Parallel.Lockfree);
             ("compressed", Parallel.Compressed) ])
        Parallel.Lockfree
    & info [ "visited" ] ~docv:"MODE"
        ~doc:
          "Visited-table representation for parallel exploration \
           ($(b,--jobs) > 1): $(b,lockfree) (default; CAS claim table, \
           124-bit keys), $(b,compressed) (folded 62-bit words, half the \
           memory, collision bound surfaced in the stats), or \
           $(b,sharded) (the mutex-sharded baseline).  Verdicts and state \
           counts are identical across all three.")

let fp_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("incremental", Explore.Incremental); ("full", Explore.Full) ])
        Explore.Incremental
    & info [ "fp" ] ~docv:"MODE"
        ~doc:
          "Fingerprint mode: $(b,incremental) (default; each step patches            the parent's homomorphic hash in O(1) and the frontier is            delta-encoded) or $(b,full) (re-fold every configuration — the            escape hatch / baseline).  States, transitions, terminals and            verdicts are identical across the two; symmetry-reduced and            $(b,--paranoid) runs key on exact canonical forms either way.")

let certified_arg =
  Arg.(
    value & flag
    & info [ "certified" ]
        ~doc:
          "Demand an analyzer certificate before enabling any reduction: \
           run the static soundness analyzer over the algorithm's \
           registered objects and refuse to start (exit 1) unless every \
           commutation, equivariance and classification obligation is \
           proved.")

(* ------------------------------------------------------------------ *)
(* check: one verdict per invocation, under the shared contract.       *)

let check_cmd =
  let run alg n k f r deadline expected_states max_states jobs partitions
      spill visited fp choice independence certified json metrics =
    setup_obs ~json ~metrics;
    Parallel.set_default_visited visited;
    Explore.set_default_fp fp;
    let inst = instance_of alg ~n ~k ~crashes:(max f r) in
    let reduction =
      resolve_independence independence
        (reduction_of ~certified ~alg choice inst)
    in
    let options =
      options_of ?deadline ?expected_states ?reduction ?spill ~max_states
        ~max_crashes:(max f r) ~max_recoveries:r ~jobs ~partitions ()
    in
    let v = check_instance ~options inst in
    report ~json alg v;
    finish ~metrics [ v ]
  in
  let n_arg =
    Arg.(
      value & opt int 0
      & info [ "n" ] ~doc:"Process count (alg6; 0 means 2k).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check an algorithm's defining property (task conformance \
          for alg2/alg3/alg6, linearizability against 1sWRN for alg5) and \
          report a verdict.  Exits 0 proved / 1 refuted / 2 limited.")
    Term.(
      const run $ alg_arg $ n_arg $ k_arg $ crashes_arg $ recoveries_arg
      $ deadline_arg $ expected_states_arg $ max_states_arg $ jobs_arg
      $ partitions_arg $ spill_arg $ visited_arg $ fp_arg $ reduction_arg
      $ independence_arg $ certified_arg $ json_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* explore: raw state-space statistics, with or without reductions.    *)

let stats_fields reduction (stats : Explore.stats) =
  [
    ("reduction", Obs.Sink.Str (Format.asprintf "%a" Explore.pp_reduction
                                  (Option.value reduction ~default:Explore.no_reduction)));
    ("states", Obs.Sink.Int stats.Explore.states);
    ("transitions", Obs.Sink.Int stats.Explore.transitions);
    ("terminals", Obs.Sink.Int stats.Explore.terminals);
    ("dedup_hits", Obs.Sink.Int stats.Explore.dedup_hits);
    ("source_skips", Obs.Sink.Int stats.Explore.source_skips);
    ("max_depth", Obs.Sink.Int stats.Explore.max_depth);
    ("frontier_bytes", Obs.Sink.Int stats.Explore.frontier_bytes);
    ("collision_bound", Obs.Sink.Float stats.Explore.collision_bound);
    ("limited", Obs.Sink.Bool stats.Explore.limited);
    ("limit_reason",
     Obs.Sink.Str
       (Format.asprintf "%a" Explore.pp_limit_reason stats.Explore.limit_reason));
  ]

let explore_cmd =
  let run alg n k f r deadline expected_states max_states jobs partitions
      spill visited fp choice independence certified json metrics =
    setup_obs ~json ~metrics;
    Parallel.set_default_visited visited;
    Explore.set_default_fp fp;
    let inst = instance_of alg ~n ~k ~crashes:(max f r) in
    let store, programs = instance_store_programs inst in
    let reduction =
      resolve_independence independence
        (reduction_of ~certified ~alg choice inst)
    in
    let config = Config.make store programs in
    let options =
      options_of ?deadline ?expected_states ?reduction ?spill ~max_states
        ~max_crashes:(max f r) ~max_recoveries:r ~jobs ~partitions ()
    in
    let stats =
      Obs.Span.time "cli.explore" @@ fun () ->
      Search.iter_terminals ~options config ~f:(fun _ _ -> ())
    in
    if json then
      print_endline
        (Obs.Sink.json_of_event
           {
             Obs.Sink.name = "explore";
             fields =
               ("alg", Obs.Sink.Str alg)
               :: ("jobs", Obs.Sink.Int jobs)
               :: ("partitions", Obs.Sink.Int (max 1 partitions))
               :: ( "visited",
                    Obs.Sink.Str
                      (if spill <> None then "spill"
                       else if jobs > 1 || partitions > 1 then
                         Format.asprintf "%a" Parallel.pp_visited visited
                       else "sequential") )
               :: stats_fields reduction stats;
           })
    else
      Format.printf "[%s] %a@.%a@." alg
        Explore.pp_reduction
        (Option.value reduction ~default:Explore.no_reduction)
        Explore.pp_stats stats;
    finish_obs ~metrics;
    if stats.Explore.limited then 2 else 0
  in
  let n_arg =
    Arg.(
      value & opt int 0
      & info [ "n" ] ~doc:"Process count (alg6; 0 means 2k).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore an algorithm's state space and print exploration \
          statistics (states, transitions, reduction effect, limit \
          reason).  Exits 0, or 2 when the search was truncated.")
    Term.(
      const run $ alg_arg $ n_arg $ k_arg $ crashes_arg $ recoveries_arg
      $ deadline_arg $ expected_states_arg $ max_states_arg $ jobs_arg
      $ partitions_arg $ spill_arg $ visited_arg $ fp_arg $ reduction_arg
      $ independence_arg $ certified_arg $ json_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* Per-algorithm commands (sampled runs keep their own reporting; the
   exhaustive path uses the shared verdict contract).                  *)

let report_sampled store programs inputs task n_seeds =
  let seeds = List.init n_seeds (fun i -> i + 1) in
  let s = Subc_check.Task_check.sample store ~programs ~inputs ~task ~seeds in
  Format.printf "%a@." Subc_check.Task_check.pp_sample_stats s;
  (match s.Subc_check.Task_check.first_violation with
  | Some (reason, trace) ->
    Format.printf "first violation: %s@.%a@." reason Trace.pp trace
  | None -> ());
  if s.Subc_check.Task_check.violations = 0 then 0 else 1

let run_task_alg name inst exhaustive n_seeds choice json metrics =
  setup_obs ~json ~metrics;
  match inst with
  | Task_instance { store; programs; inputs; task; _ } ->
    if exhaustive then begin
      let reduction = reduction_of ~alg:name choice inst in
      let options = Search.of_legacy ?reduction () in
      let v =
        Subc_check.Task_check.check ~options store ~programs ~inputs ~task
      in
      report ~json name v;
      finish ~metrics [ v ]
    end
    else report_sampled store programs inputs task n_seeds
  | Lin_instance _ -> assert false

let alg2_cmd =
  let run k exhaustive n_seeds choice json metrics =
    run_task_alg "alg2" (alg2_instance ~k ~crashes:0) exhaustive n_seeds
      choice json metrics
  in
  Cmd.v
    (Cmd.info "alg2" ~doc:"(k-1)-set consensus from one WRN_k (Algorithm 2).")
    Term.(
      const run $ k_arg $ exhaustive_arg $ seeds_arg $ reduction_arg
      $ json_arg $ metrics_arg)

let alg3_cmd =
  let run k exhaustive n_seeds choice json metrics =
    run_task_alg "alg3" (alg3_instance ~k ~crashes:0) exhaustive n_seeds
      choice json metrics
  in
  Cmd.v
    (Cmd.info "alg3"
       ~doc:"(k-1)-set consensus for k participants out of many (Algorithm 3).")
    Term.(
      const run $ k_arg $ exhaustive_arg $ seeds_arg $ reduction_arg
      $ json_arg $ metrics_arg)

let alg5_cmd =
  let run k choice json metrics =
    setup_obs ~json ~metrics;
    let inst = alg5_instance ~k in
    let reduction = reduction_of ~alg:"alg5" choice inst in
    let v = check_instance ~options:(Search.of_legacy ?reduction ()) inst in
    report ~json "alg5" v;
    finish ~metrics [ v ]
  in
  Cmd.v
    (Cmd.info "alg5"
       ~doc:
         "Model-check the linearizability of 1sWRN_k from strong set \
          election (Algorithm 5).")
    Term.(const run $ k_arg $ reduction_arg $ json_arg $ metrics_arg)

let alg6_cmd =
  let run n k exhaustive n_seeds choice json metrics =
    let n = if n = 0 then 2 * k else n in
    Format.printf "agreement bound m = %d (n=%d, k=%d)@."
      (Subc_core.Alg6.agreement_bound ~n ~k) n k;
    run_task_alg "alg6" (alg6_instance ~n ~k ~crashes:0) exhaustive n_seeds
      choice json metrics
  in
  let n_arg = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Process count.") in
  Cmd.v
    (Cmd.info "alg6" ~doc:"m-set consensus for n processes (Algorithm 6).")
    Term.(
      const run $ n_arg $ k_arg $ exhaustive_arg $ seeds_arg $ reduction_arg
      $ json_arg $ metrics_arg)

let style_of = function
  | "mirror" -> Subc_classic.Wrn_attempts.Mirror_alg2
  | "same-index" -> Subc_classic.Wrn_attempts.Same_index
  | "announce" -> Subc_classic.Wrn_attempts.Adjacent_announce
  | "busy-wait" -> Subc_classic.Wrn_attempts.Busy_wait
  | s -> Fmt.failwith "unknown style %S" s

let attempt_cmd =
  let run style k json metrics =
    setup_obs ~json ~metrics;
    let store, t = Subc_classic.Wrn_attempts.alloc Store.empty ~k ~style:(style_of style) in
    let programs =
      [
        Subc_classic.Wrn_attempts.propose t ~me:0 (Value.Int 0);
        Subc_classic.Wrn_attempts.propose t ~me:1 (Value.Int 1);
      ]
    in
    let config = Config.make store programs in
    let v =
      Subc_check.Valence.consensus_verdict config
        ~inputs:[ Value.Int 0; Value.Int 1 ]
    in
    report ~json ("attempt/" ^ style) v;
    finish ~metrics [ v ]
  in
  let style_arg =
    Arg.(
      value
      & opt string "mirror"
      & info [ "style" ]
          ~doc:"Protocol style: mirror | same-index | announce | busy-wait.")
  in
  Cmd.v
    (Cmd.info "attempt"
       ~doc:
         "Verdict on a 2-consensus attempt over WRN_k (Lemma 38 / E6).  \
          Exits 0 solves / 1 violates or diverges / 2 unknown.")
    Term.(const run $ style_arg $ k_arg $ json_arg $ metrics_arg)

let trace_cmd =
  let run k seed =
    let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
    let inputs = inputs_of k in
    let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
    let config = Config.make store programs in
    let r = Runner.run (Runner.Random seed) config in
    Format.printf "%a@.decisions: %a@." Trace.pp r.Runner.trace Value.pp
      (Value.Vec (Config.decisions r.Runner.final));
    0
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print one full execution of Algorithm 2.")
    Term.(const run $ k_arg $ seed_arg)

let power_cmd =
  let run n k =
    let module P = Subc_classic.Set_consensus_power in
    let families =
      [
        P.Registers; P.Wrn_objects 3; P.Wrn_objects 4; P.Sse_object 3;
        P.Two_consensus_pairs; P.Cas_object;
      ]
    in
    List.iter
      (fun family ->
        if P.applicable family ~n then begin
          let verdict =
            match P.verdict family ~n ~k with
            | `Solves -> "solves"
            | `Violates -> "fails"
            | `Diverges -> "diverges"
            | `Unknown -> "unknown"
          in
          Format.printf "%-20s (%d,%d)-set consensus: %-8s (predicted %s)@."
            (P.family_name family) n k verdict
            (if P.predicted family ~n ~k then "solves" else "fails")
        end)
      families;
    0
  in
  let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Process count.") in
  let k_bound = Arg.(value & opt int 2 & info [ "agree" ] ~doc:"Agreement bound.") in
  Cmd.v
    (Cmd.info "power"
       ~doc:"Which object families solve (n,k)-set consensus (experiment E13).")
    Term.(const run $ n_arg $ k_bound)

let bg_cmd =
  let run simulators m seed =
    let codes =
      List.init m (fun p ->
          Subc_bgsim.Sim_code.write_then_snapshot (Value.Int (100 + p)) Fun.id)
    in
    let store, bg = Subc_bgsim.Bg.alloc Store.empty ~simulators ~codes in
    let programs = List.init simulators (fun me -> Subc_bgsim.Bg.simulate bg ~me) in
    let config = Config.make store programs in
    let r = Runner.run (Runner.Random seed) config in
    Format.printf "%d real steps@." r.Runner.steps;
    List.iteri
      (fun s out ->
        match out with
        | Some view ->
          Format.printf "simulator %d: %a@." s Value.pp view
        | None -> Format.printf "simulator %d: (unfinished)@." s)
      (List.init simulators (fun s -> Config.decision r.Runner.final s));
    0
  in
  let sims_arg =
    Arg.(value & opt int 2 & info [ "simulators" ] ~doc:"Real simulators.")
  in
  let m_arg =
    Arg.(value & opt int 3 & info [ "m" ] ~doc:"Simulated processes.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "bg" ~doc:"Run the Borowsky–Gafni simulation on a random schedule.")
    Term.(const run $ sims_arg $ m_arg $ seed_arg)

let critical_cmd =
  let run k style =
    let store, t = Subc_classic.Wrn_attempts.alloc Store.empty ~k ~style:(style_of style) in
    let programs =
      [
        Subc_classic.Wrn_attempts.propose t ~me:0 (Value.Int 0);
        Subc_classic.Wrn_attempts.propose t ~me:1 (Value.Int 1);
      ]
    in
    let config = Config.make store programs in
    (match Subc_check.Valence.find_critical config with
    | Some crit ->
      Format.printf "%a@." Subc_check.Valence.pp_critical crit
    | None -> Format.printf "the initial configuration is univalent@.");
    0
  in
  let style_arg =
    Arg.(
      value & opt string "mirror"
      & info [ "style" ] ~doc:"mirror | same-index | announce | busy-wait.")
  in
  Cmd.v
    (Cmd.info "critical"
       ~doc:
         "Descend to a critical configuration of a 2-consensus protocol \
          over WRN_k (the Lemma 38 structure).")
    Term.(const run $ k_arg $ style_arg)

(* ------------------------------------------------------------------ *)
(* analyze: the static soundness analyzer over the subject registry.   *)

let analyze_cmd =
  let run family lint jobs deadline json metrics =
    setup_obs ~json ~metrics;
    let entries =
      match family with
      | "all" -> Subc_analysis.Registry.entries ()
      | f -> (
        match Subc_analysis.Registry.find f with
        | Some e -> [ e ]
        | None ->
          Format.eprintf "unknown family %S (known: all, %s)@." f
            (String.concat ", " (Subc_analysis.Registry.families ()));
          exit 2)
    in
    let findings =
      if lint then
        let family = if family = "all" then None else Some family in
        Subc_analysis.Analyzer.lint ?family ()
      else
        List.concat_map
          (fun (e : Subc_analysis.Registry.entry) ->
            Subc_analysis.Analyzer.analyze
              ~family:e.Subc_analysis.Registry.family ~jobs ?deadline
              e.Subc_analysis.Registry.subjects)
          entries
    in
    List.iter
      (fun f ->
        if json then print_endline (Subc_analysis.Analyzer.to_json f)
        else Format.printf "%a@." Subc_analysis.Analyzer.pp_finding f)
      findings;
    finish ~metrics (Subc_analysis.Analyzer.verdicts findings)
  in
  let lint_arg =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the protocol linter instead of the object analyzer: \
             abstractly interpret every registered protocol exemplar \
             against its family's declared alphabets, reporting static \
             footprints, syntactic step bounds, and DSL soundness lints \
             (checkpoints whose key misses live loop state, ops outside \
             the declared alphabet, invocations on undeclared objects, \
             nondeterministic continuations).  Any lint is a refutation \
             (exit 1); widened analyses exit 2.")
  in
  let family_arg =
    Arg.(
      value & opt string "all"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            "Registry family to analyze ($(b,all), $(b,objects), \
             $(b,alg2) .. $(b,alg6), $(b,1swrn), $(b,set-consensus)).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically certify the reduction layer's soundness obligations: \
          enumerate each registered object's reachable states and prove \
          apply purity, pairwise commutation wherever the source-set \
          judgment claims independence, the source-set closure properties \
          (equivariance and persistence of that judgment), equivariance \
          of the declared symmetry group, and the declared classification \
          — or refute with a concrete witness.  No schedules are \
          explored.  $(b,--deadline) bounds the wall clock: checks not \
          started before it passes report limited.  With $(b,--lint), run \
          the protocol-side gate instead: the abstract interpreter over \
          every registered protocol exemplar.  Exits 0 proved / 1 \
          refuted / 2 limited.")
    Term.(
      const run $ family_arg $ lint_arg $ jobs_arg $ deadline_arg $ json_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* crash-sweep / recover-sweep: a verdict per fault budget plus a
   progress verdict, all under the shared contract.  Both subcommands
   run the same sweep; crash-sweep pins the recovery budget to 0, and
   every r = 0 cell keeps its crash-sweep name and arguments, so a
   recover-sweep with --max-recoveries 0 is output-identical to a
   crash-sweep at any --jobs.                                          *)

let run_fault_sweep alg k f r deadline expected_states max_states solo_limit
    jobs partitions spill visited fp choice independence certified json
    metrics =
  setup_obs ~json ~metrics;
  Parallel.set_default_visited visited;
  Explore.set_default_fp fp;
  let verdicts = ref [] in
  let note name v =
    verdicts := v :: !verdicts;
    report ~json name v
  in
  let rcell r' = if r' > 0 then Printf.sprintf "/r=%d" r' else "" in
  let inst = instance_of alg ~n:0 ~k ~crashes:(max f r) in
  let reduction =
    resolve_independence independence (reduction_of ~certified ~alg choice inst)
  in
  let cell_options ~max_crashes ~max_recoveries =
    options_of ?deadline ?expected_states ?reduction ?spill ~max_states
      ~max_crashes ~max_recoveries ~jobs ~partitions ()
  in
  let store, programs = instance_store_programs inst in
  (match inst with
  | Task_instance { inputs; task; _ } ->
    for f' = 0 to f do
      for r' = 0 to r do
        note
          (Printf.sprintf "%s/%s/f=%d%s" alg task.Task.name f' (rcell r'))
          (Subc_check.Task_check.check
             ~options:
               (cell_options ~max_crashes:(max f' r') ~max_recoveries:r')
             store ~programs ~inputs ~task)
      done
    done
  | Lin_instance { ops; spec; _ } ->
    for r' = 0 to r do
      note
        (Printf.sprintf "%s/linearizable/f<=%d%s" alg f (rcell r'))
        (Subc_check.Linearizability.check_harness
           ~options:(cell_options ~max_crashes:(max f r') ~max_recoveries:r')
           store ~programs ~ops ~spec)
    done);
  note
    (alg ^ "/wait-free")
    (Subc_check.Progress.check_wait_free
       ~options:(cell_options ~max_crashes:(max f r) ~max_recoveries:r)
       ~solo_limit store ~programs);
  finish ~metrics (List.rev !verdicts)

let sweep_crashes_arg =
  Arg.(
    value & opt int 1
    & info [ "max-crashes" ] ~docv:"F"
        ~doc:"Crash budget $(docv) (sweep f = 0..$(docv)).")

let solo_limit_arg =
  Arg.(
    value & opt int 10_000
    & info [ "solo-limit" ] ~doc:"Solo-step bound for the progress checker.")

let crash_sweep_cmd =
  let run alg k f deadline expected_states max_states solo_limit jobs
      partitions spill visited fp choice independence certified json metrics =
    run_fault_sweep alg k f 0 deadline expected_states max_states solo_limit
      jobs partitions spill visited fp choice independence certified json
      metrics
  in
  Cmd.v
    (Cmd.info "crash-sweep"
       ~doc:
         "Exhaustive crash-fault sweep: verify the algorithm's property \
          under every crash pattern within the budget, then certify \
          wait-freedom (solo-step bound).  Exits 1 on any refutation, \
          else 2 when any search was truncated.")
    Term.(
      const run $ alg_arg $ k_arg $ sweep_crashes_arg $ deadline_arg
      $ expected_states_arg $ max_states_arg $ solo_limit_arg $ jobs_arg
      $ partitions_arg $ spill_arg $ visited_arg $ fp_arg $ reduction_arg
      $ independence_arg $ certified_arg $ json_arg $ metrics_arg)

let recover_sweep_cmd =
  let run alg k f r deadline expected_states max_states solo_limit jobs
      partitions spill visited fp choice independence certified json metrics =
    run_fault_sweep alg k f r deadline expected_states max_states solo_limit
      jobs partitions spill visited fp choice independence certified json
      metrics
  in
  let sweep_recoveries_arg =
    Arg.(
      value & opt int 1
      & info [ "max-recoveries" ] ~docv:"R"
          ~doc:"Recovery budget $(docv) (sweep r = 0..$(docv)).")
  in
  Cmd.v
    (Cmd.info "recover-sweep"
       ~doc:
         "Exhaustive crash-recovery sweep: verify the algorithm's property \
          under every crash pattern within the crash budget and every \
          recovery pattern within the recovery budget (a recovered \
          process restarts over persistent object state), then certify \
          wait-freedom under the same fault budgets.  With \
          $(b,--max-recoveries) 0 this is exactly $(b,crash-sweep).  \
          Exits 1 on any refutation, else 2 when any search was \
          truncated.")
    Term.(
      const run $ alg_arg $ k_arg $ sweep_crashes_arg $ sweep_recoveries_arg
      $ deadline_arg $ expected_states_arg $ max_states_arg $ solo_limit_arg
      $ jobs_arg $ partitions_arg $ spill_arg $ visited_arg $ fp_arg
      $ reduction_arg $ independence_arg $ certified_arg $ json_arg
      $ metrics_arg)

let () =
  let doc = "sub-consensus deterministic objects: runners and model checkers" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "subconsensus_cli" ~doc)
          [
            check_cmd; explore_cmd; analyze_cmd; alg2_cmd; alg3_cmd;
            alg5_cmd; alg6_cmd; attempt_cmd; trace_cmd; power_cmd; bg_cmd;
            critical_cmd; crash_sweep_cmd; recover_sweep_cmd;
          ]))
