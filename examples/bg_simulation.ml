(* The Borowsky–Gafni simulation in action: two simulators jointly execute
   three simulated processes, each of which writes its identifier and
   snapshots the simulated memory.

   The interesting part: the simulated execution must be a LEGAL execution
   of the simulated snapshot system — the decided views must contain their
   owners and be totally ordered by containment — even though the two
   simulators interleave arbitrarily and agree on every simulated snapshot
   through safe agreement.

   Run with: dune exec examples/bg_simulation.exe *)

open Subc_sim
module Bg = Subc_bgsim.Bg
module Sim_code = Subc_bgsim.Sim_code

let m = 3 (* simulated processes *)
let n = 2 (* simulators *)

let codes =
  List.init m (fun p ->
      Sim_code.write_then_snapshot (Value.Int (100 + p)) (fun view -> view))

let pp_views out =
  List.iteri
    (fun p view ->
      match view with
      | Value.Bot -> Format.printf "  simulated P%d: (blocked)@." p
      | v -> Format.printf "  simulated P%d decided view %a@." p Value.pp v)
    (Value.to_vec out)

let () =
  let store, bg = Bg.alloc Store.empty ~simulators:n ~codes in
  let programs = List.init n (fun me -> Bg.simulate bg ~me) in
  let config = Config.make store programs in

  Format.printf "== two simulators, three simulated processes ==@.";
  List.iter
    (fun seed ->
      let r = Runner.run (Runner.Random seed) config in
      Format.printf "@.random schedule %d (%d real steps):@." seed
        r.Runner.steps;
      List.iteri
        (fun s out ->
          match out with
          | Some view ->
            Format.printf "simulator %d's final knowledge:@." s;
            pp_views view
          | None -> ())
        (List.init n (fun s -> Config.decision r.Runner.final s)))
    [ 1; 2; 3 ];

  (* A crashed simulator blocks at most n−1 = 1 simulated process: run
     simulator 1 for a few steps, "crash" it (never schedule it again),
     and let simulator 0 finish alone. *)
  Format.printf
    "@.== simulator 1 crashes mid-flight; simulator 0 carries on ==@.";
  let r =
    Runner.run
      (Runner.Fixed (List.init 7 (fun _ -> 1))) (* then round-robin kicks in *)
      config
  in
  ignore r;
  let crashed =
    (* Schedule: 7 steps of simulator 1, then only simulator 0. *)
    Runner.run
      (Runner.Fixed (List.init 7 (fun _ -> 1) @ List.init 10_000 (fun _ -> 0)))
      config
  in
  (match Config.decision crashed.Runner.final 0 with
  | Some view ->
    Format.printf "simulator 0 finished; its knowledge:@.";
    pp_views view;
    let decided =
      List.length
        (List.filter (fun v -> not (Value.is_bot v)) (Value.to_vec view))
    in
    Format.printf
      "decided %d/%d simulated processes (≥ m−(n−1) = %d guaranteed)@."
      decided m (m - (n - 1))
  | None -> Format.printf "simulator 0 did not finish?!@.");
  Format.printf
    "@.safe agreement's unsafe window is the whole story: one stalled@.";
  Format.printf "simulator blocks at most one simulated process.@."
