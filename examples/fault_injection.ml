(* Fault injection: wait-free means crash-oblivious safety.

   A process that crashes is indistinguishable from one that is merely
   slow, so a wait-free algorithm's safety properties must survive any
   crash pattern at any point.  This example drives Algorithm 2 through
   randomized crash scenarios, prints one space-time diagram of a crashed
   run, and shows that validity and (k−1)-agreement never break — only
   the crashed processes' outputs go missing.

   Run with: dune exec examples/fault_injection.exe *)

open Subc_sim
module Task = Subc_tasks.Task
module Task_check = Subc_check.Task_check

let k = 4

let harness () =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = List.init k (fun i -> Value.Int (100 + i)) in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
  (store, programs, inputs)

let () =
  let store, programs, inputs = harness () in

  Format.printf "== one crashed run, drawn ==@.";
  let config = Config.make store programs in
  (* Let everyone take a few steps, then crash all but processes 0 and 2. *)
  let before = Runner.run ~max_steps:2 (Runner.Random 5) config in
  let after = Runner.run (Runner.Only [ 0; 2 ]) before.Runner.final in
  let trace = before.Runner.trace @ after.Runner.trace in
  Format.printf "%a@." (Trace.pp_diagram ~n_procs:k) trace;
  List.iteri
    (fun i _ ->
      match Config.decision after.Runner.final i with
      | Some v -> Format.printf "P%d decided %a@." i Value.pp v
      | None -> Format.printf "P%d crashed undecided@." i)
    inputs;

  Format.printf "@.== 500 randomized crash scenarios ==@.";
  let task = Task.set_consensus (k - 1) in
  let stats =
    Task_check.sample_crashed store ~programs ~inputs ~task
      ~seeds:(List.init 500 (fun i -> i + 1))
  in
  Format.printf "%a@." Task_check.pp_sample_stats stats;
  assert (stats.Task_check.violations = 0);
  Format.printf
    "no crash pattern broke validity or %d-agreement — the survivors'@."
    (k - 1);
  Format.printf "decisions are always a legal partial outcome.@."
