(* Fault injection: wait-free means crash-oblivious safety — and crash
   faults are first-class transitions of the simulator.

   A process that crashes is indistinguishable from one that is merely
   slow, so a wait-free algorithm's safety properties must survive any
   crash pattern at any point.  This example drives Algorithm 2 through:

   1. a deterministic crash-at-step run, drawn as a space-time diagram in
      which the crashes themselves appear as events;
   2. 500 randomized crash scenarios under the seeded crash adversary;
   3. an *exhaustive* crash sweep — the model checker quantifies over
      every interleaving and every crash pattern of at most f crashes;
   4. the wait-freedom checker: a solo-step-bound certificate for
      Algorithm 2, and a counterexample schedule for a deliberately
      lock-free-only spinner.

   Run with: dune exec examples/fault_injection.exe *)

open Subc_sim
module Task = Subc_tasks.Task
module Task_check = Subc_check.Task_check
module Progress = Subc_check.Progress

let k = 4

let harness ~k =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = List.init k (fun i -> Value.Int (100 + i)) in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
  (store, programs, inputs)

let () =
  let store, programs, inputs = harness ~k in

  Format.printf "== one crashed run, drawn (P1 dies at step 1, P0 at 2) ==@.";
  let config = Config.make store programs in
  let r =
    Runner.run
      (Runner.Crash_at { crashes = [ (1, 1); (2, 0) ]; seed = Some 5 })
      config
  in
  Format.printf "%a@." (Trace.pp_diagram ~n_procs:k) r.Runner.trace;
  List.iteri
    (fun i _ ->
      match Config.decision r.Runner.final i with
      | Some v -> Format.printf "P%d decided %a@." i Value.pp v
      | None -> Format.printf "P%d crashed undecided@." i)
    inputs;
  (* The crash-containing trace replays deterministically. *)
  (match Replay.final config r.Runner.trace with
  | Ok replayed ->
    assert (Config.decisions replayed = Config.decisions r.Runner.final);
    Format.printf "(replay of the crash trace reproduces the same outcome)@."
  | Error { at; reason } ->
    Format.printf "replay failed at %d: %s@." at reason);

  Format.printf "@.== 500 randomized crash scenarios ==@.";
  let task = Task.set_consensus (k - 1) in
  let stats =
    Task_check.sample_crashed store ~programs ~inputs ~task
      ~seeds:(List.init 500 (fun i -> i + 1))
  in
  Format.printf "%a@." Task_check.pp_sample_stats stats;
  assert (stats.Task_check.violations = 0);
  Format.printf
    "no crash pattern broke validity or %d-agreement — the survivors'@."
    (k - 1);
  Format.printf "decisions are always a legal partial outcome.@.";

  Format.printf "@.== exhaustive crash sweep: Algorithm 2, k=3, f <= 2 ==@.";
  let store3, programs3, inputs3 = harness ~k:3 in
  let task3 = Task.set_consensus 2 in
  List.iter
    (fun f ->
      let config = Config.make store3 programs3 in
      match
        Explore.check_terminals ~max_crashes:f config ~ok:(fun c ->
            Task.satisfies task3 ~inputs:inputs3 c)
      with
      | Ok stats ->
        Format.printf "f=%d: every crash pattern is safe  (%a)@." f
          Explore.pp_stats stats
      | Error (_, trace, _) ->
        Format.printf "f=%d: VIOLATION@.%a@." f Trace.pp trace)
    [ 0; 1; 2 ];

  Format.printf "@.== wait-freedom certificates (solo-step bounds) ==@.";
  Format.printf "Algorithm 2 (k=3): %a@." Subc_check.Verdict.pp_summary
    (Progress.check_wait_free
       ~options:Search.(with_max_crashes 2 default)
       store3 ~programs:programs3);

  (* A lock-free-only construction: P0 spins until P1's write lands.  Safe,
     live under fair schedules — but P0 running solo never terminates. *)
  let store_s, reg = Store.alloc Store.empty Subc_objects.Register.model_bot in
  let spinner =
    let open Program.Syntax in
    let rec spin () =
      let* () = Program.checkpoint (Value.Sym "spin") in
      let* v = Subc_objects.Register.read reg in
      if Value.is_bot v then spin () else Program.return v
    in
    spin ()
  in
  let writer =
    let open Program.Syntax in
    let* () = Subc_objects.Register.write reg (Value.Int 1) in
    Program.return (Value.Int 1)
  in
  match Progress.check_wait_free store_s ~programs:[ spinner; writer ] with
  | Subc_check.Verdict.Refuted { reason; _ } ->
    Format.printf "spinner (lock-free only): NOT wait-free — %s@." reason
  | v ->
    Format.printf "spinner: unexpectedly %a@." Subc_check.Verdict.pp_summary v
