(* A guided tour of the band between registers and 2-consensus, with the
   model checker's verdict at every level:

     registers  <  1sWRN_k / (k,k−1)-set consensus  <  swap (= WRN₂)  <  CAS

   Run with: dune exec examples/hierarchy_tour.exe *)

open Subc_sim
module Task = Subc_tasks.Task
module Valence = Subc_check.Valence
module Hierarchy = Subc_core.Hierarchy

let section fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

(* Level 0: registers alone reach k distinct decisions on some schedule. *)
let registers () =
  section "level 0: read/write registers";
  let k = 3 in
  let store, t = Subc_classic.Rw_baseline.alloc Store.empty ~k in
  let inputs = List.init k (fun i -> Value.Int (100 + i)) in
  let programs =
    List.mapi (fun i v -> Subc_classic.Rw_baseline.propose t ~i v) inputs
  in
  let config = Config.make store programs in
  let best = ref 0 in
  let _ =
    Explore.iter_terminals config ~f:(fun final _ ->
        best := max !best (List.length (Task.distinct (Config.decisions final))))
  in
  Format.printf
    "best-effort register protocol, %d workers: up to %d distinct decisions@."
    k !best;
  Format.printf "(no register protocol can guarantee %d — BG/HS/SZ)@." (k - 1)

(* Level 1: one WRN₃ guarantees 2 distinct decisions for 3 processes. *)
let wrn_level () =
  section "level 1: WRN₃ (the paper's object)";
  let k = 3 in
  let store, alg = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = List.init k (fun i -> Value.Int (100 + i)) in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose alg ~i v) inputs in
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  (match Subc_check.Task_check.check store ~programs ~inputs ~task with
  | Subc_check.Verdict.Proved { explore = Some stats; _ } ->
    Format.printf "1sWRN₃ solves (3,2)-set consensus on ALL schedules (%a)@."
      Explore.pp_stats stats
  | _ -> assert false);
  (* …but not 2-process consensus. *)
  let store, t =
    Subc_classic.Wrn_attempts.alloc Store.empty ~k
      ~style:Subc_classic.Wrn_attempts.Adjacent_announce
  in
  let programs =
    [
      Subc_classic.Wrn_attempts.propose t ~me:0 (Value.Int 0);
      Subc_classic.Wrn_attempts.propose t ~me:1 (Value.Int 1);
    ]
  in
  let config = Config.make store programs in
  (match
     Valence.consensus_verdict config ~inputs:[ Value.Int 0; Value.Int 1 ]
   with
  | Subc_check.Verdict.Refuted { reason; trace; _ } ->
    Format.printf
      "2-consensus attempt on WRN₃ fails (%s) — counterexample schedule: %a@."
      reason Value.pp
      (Value.of_int_list (Trace.schedule trace))
  | v -> Format.printf "unexpected: %a@." Subc_check.Verdict.pp_summary v)

(* Level 1½: the hierarchy inside the band (Corollary 42). *)
let inner_hierarchy () =
  section "level 1½: the infinite hierarchy inside the band";
  List.iter
    (fun (k, k') ->
      Format.printf
        "1sWRN_%d → 1sWRN_%d implementable: %b;  1sWRN_%d → 1sWRN_%d: %b@." k
        k'
        (Hierarchy.implementable ~n:k' ~k:(k' - 1) ~m:k ~j:(k - 1))
        k' k
        (not (Hierarchy.separates ~k ~k')))
    [ (3, 4); (3, 5); (4, 6) ]

(* Level 2: swap = WRN₂ solves 2-consensus. *)
let swap_level () =
  section "level 2: swap (= WRN₂)";
  let store, t = Subc_classic.Two_consensus.alloc_wrn2 Store.empty in
  let programs =
    [
      Subc_classic.Two_consensus.propose t ~me:0 (Value.Int 0);
      Subc_classic.Two_consensus.propose t ~me:1 (Value.Int 1);
    ]
  in
  let config = Config.make store programs in
  match
    Valence.consensus_verdict config ~inputs:[ Value.Int 0; Value.Int 1 ]
  with
  | Subc_check.Verdict.Proved { explore = Some stats; _ } ->
    Format.printf "WRN₂ solves 2-consensus on all schedules (%a)@."
      Explore.pp_stats stats
  | v -> Format.printf "unexpected: %a@." Subc_check.Verdict.pp_summary v

(* Level ∞: compare-and-swap solves consensus for any n. *)
let cas_level () =
  section "level ∞: compare-and-swap";
  let n = 4 in
  let store, t = Subc_classic.N_consensus.alloc_cas Store.empty in
  let inputs = List.init n (fun i -> Value.Int (100 + i)) in
  let programs = List.map (Subc_classic.N_consensus.propose t) inputs in
  let task = Task.conj Task.consensus Task.all_decided in
  match Subc_check.Task_check.check store ~programs ~inputs ~task with
  | Subc_check.Verdict.Proved { explore = Some stats; _ } ->
    Format.printf "CAS solves %d-process consensus (%a)@." n Explore.pp_stats
      stats
  | _ -> assert false

let () =
  Format.printf "A tour of the consensus hierarchy around the paper's band@.";
  registers ();
  wrn_level ();
  inner_hierarchy ();
  swap_level ();
  cas_level ();
  Format.printf
    "@.conclusion: 1sWRN_k objects sit strictly between registers and@.";
  Format.printf
    "2-consensus, and form an infinite hierarchy among themselves.@."
