(* Walk the Section 6 impossibility argument mechanically.

   Lemma 38's critical-state proof says: in any would-be 2-process
   consensus algorithm over registers and WRN_k (k ≥ 3), a critical
   configuration's two pending WRN steps either commute for a third-party
   reader (same index) or commute for a solo run (non-adjacent indices).
   This explorer shows both halves concretely:

   - on WRN₂ the mirror protocol works, and the checker exhibits its
     critical configuration — the two pending steps on the SAME object
     whose order decides the outcome;
   - on WRN₃ the same protocol is bivalent all the way to disagreement,
     and the checker prints the indistinguishable schedules.

   Run with: dune exec examples/impossibility_explorer.exe *)

open Subc_sim
module Attempts = Subc_classic.Wrn_attempts
module Valence = Subc_check.Valence
module Verdict = Subc_check.Verdict

let protocol ~k ~style =
  let store, t = Attempts.alloc Store.empty ~k ~style in
  let programs =
    [ Attempts.propose t ~me:0 (Value.Int 0); Attempts.propose t ~me:1 (Value.Int 1) ]
  in
  Config.make store programs

let () =
  Format.printf "== WRN₂ (a swap): the protocol solves consensus ==@.";
  let config2 = protocol ~k:2 ~style:Attempts.Mirror_alg2 in
  (match
     Valence.consensus_verdict config2 ~inputs:[ Value.Int 0; Value.Int 1 ]
   with
  | Verdict.Proved { explore = Some stats; _ } ->
    Format.printf "verdict: solves (%a)@." Explore.pp_stats stats
  | v -> Format.printf "verdict: %a@." Verdict.pp_summary v);
  (match Valence.find_critical config2 with
  | Some crit ->
    Format.printf
      "@.its critical configuration (the heart of consensus number 2):@.%a@."
      Valence.pp_critical crit
  | None -> Format.printf "no critical configuration?!@.");

  Format.printf
    "@.== WRN₃: the same shape cannot decide — Lemma 38 in action ==@.";
  let config3 = protocol ~k:3 ~style:Attempts.Mirror_alg2 in
  (match
     Valence.consensus_verdict config3 ~inputs:[ Value.Int 0; Value.Int 1 ]
   with
  | Verdict.Refuted { reason; trace; _ } ->
    Format.printf "verdict: violation (%s)@.witness schedule:@.%a@." reason
      Trace.pp trace
  | v -> Format.printf "verdict: %a@." Verdict.pp_summary v);

  (* The indistinguishability core: P1's WRN(1,·) reads cell 2, which
     nobody writes; cells 0 and 1 are non-adjacent "enough" for k = 3 in
     this protocol, so P1 learns nothing about P0's step order. *)
  Format.printf
    "@.why: with k ≥ 3 the two pending steps use indices i and i+1, and@.";
  Format.printf
    "the reader of cell i+2 observes neither — the configurations Cs_Ps_Q@.";
  Format.printf "and Cs_Qs_P are indistinguishable to a solo run (case 2).@.";

  Format.printf "@.== the doomed announce+adjacent repair, k = 3 ==@.";
  let config3' = protocol ~k:3 ~style:Attempts.Adjacent_announce in
  (match
     Valence.consensus_verdict config3' ~inputs:[ Value.Int 0; Value.Int 1 ]
   with
  | Verdict.Refuted { reason; trace; _ } ->
    Format.printf "verdict: violation (%s)@.witness schedule: %a@." reason
      Value.pp
      (Value.of_int_list (Trace.schedule trace))
  | v -> Format.printf "verdict: %a@." Verdict.pp_summary v);

  Format.printf
    "@.== and the busy-wait repair is not wait-free: the adversary loops ==@.";
  let config3'' = protocol ~k:3 ~style:Attempts.Busy_wait in
  match
    Valence.consensus_verdict config3'' ~inputs:[ Value.Int 0; Value.Int 1 ]
  with
  | Verdict.Refuted { trace; _ } ->
    Format.printf "verdict: diverges; lasso schedule: %a@." Value.pp
      (Value.of_int_list (Trace.schedule trace))
  | v -> Format.printf "verdict: %a@." Verdict.pp_summary v
