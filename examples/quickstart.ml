(* Quickstart: build a WRN₃ object, run Algorithm 2's (k−1)-set consensus
   on it under a few schedules, then let the model checker prove the
   2-agreement bound for this instance.

   Run with: dune exec examples/quickstart.exe *)

open Subc_sim
module Alg2 = Subc_core.Alg2
module Task = Subc_tasks.Task

let () =
  let k = 3 in
  (* One shared WRN₃ object; process i proposes 100+i. *)
  let store, alg = Alg2.alloc Store.empty ~k ~one_shot:false in
  let inputs = List.init k (fun i -> Value.Int (100 + i)) in
  let programs = List.mapi (fun i v -> Alg2.propose alg ~i v) inputs in
  let config = Config.make store programs in

  Format.printf "== Algorithm 2 on WRN_%d: three schedules ==@." k;
  List.iter
    (fun (label, strategy) ->
      let r = Runner.run strategy config in
      Format.printf "%-12s decisions: %a@." label Value.pp
        (Value.Vec (Config.decisions r.Runner.final)))
    [
      ("round-robin", Runner.Round_robin);
      ("random(1)", Runner.Random 1);
      ("random(2)", Runner.Random 2);
    ];

  (* One full trace, so you can see the single atomic WRN step of each
     process. *)
  let r = Runner.run (Runner.Random 7) config in
  Format.printf "@.trace of random(7):@.%a@." Trace.pp r.Runner.trace;

  (* Now the interesting part: the model checker quantifies over ALL
     schedules and proves at most k−1 = 2 distinct decisions. *)
  Format.printf "@.== model checking all interleavings ==@.";
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  (match Subc_check.Task_check.check store ~programs ~inputs ~task with
  | Subc_check.Verdict.Proved _ as v ->
    Format.printf "%a@." Subc_check.Verdict.pp_summary v
  | Subc_check.Verdict.Refuted { reason; trace; _ } ->
    Format.printf "VIOLATION: %s@.%a@." reason Trace.pp trace
  | Subc_check.Verdict.Limited _ as v ->
    Format.printf "%a@." Subc_check.Verdict.pp_summary v);

  (* And the bound is tight: some schedule really produces 2 distinct
     values. *)
  let best = ref 0 in
  let _ =
    Explore.iter_terminals config ~f:(fun final _ ->
        best := max !best (List.length (Task.distinct (Config.decisions final))))
  in
  Format.printf "max distinct decisions over all schedules: %d (bound %d)@."
    !best (k - 1)
