(* A motivating scenario for sub-consensus objects: k worker nodes race to
   claim a batch of jobs.  Full consensus (a single owner) is overkill and —
   with only WRN-class hardware — impossible; but (k−1)-set consensus
   guarantees the k workers coalesce onto at most k−1 distinct "plan
   leaders", so at least two workers always share a plan and duplicate
   work is strictly reduced on every schedule.

   The workers go through the paper's full stack for processes with large
   names: snapshot renaming into a small namespace, then Algorithm 3's
   sweep of relaxed WRN objects (Algorithm 4) built on 1sWRN_k.

   Run with: dune exec examples/work_split.exe *)

open Subc_sim
module Alg3 = Subc_core.Alg3
module Task = Subc_tasks.Task

let worker_names = [ 1041; 557; 9003 ]

let () =
  let k = List.length worker_names in
  let store, alg =
    Alg3.alloc Store.empty ~k ~flavor:Alg3.Relaxed_wrn
      ~renamer:Alg3.Rename_snapshot ()
  in
  Format.printf
    "== %d workers (ids %s) splitting work via Algorithm 3 ==@." k
    (String.concat ", " (List.map string_of_int worker_names));
  Format.printf "WRN instances in the sweep: %d@.@." (Alg3.instances alg);

  (* Each worker proposes its own job plan (named after it). *)
  let programs =
    List.mapi
      (fun slot id ->
        Alg3.propose alg ~slot ~id (Value.Sym (Printf.sprintf "plan-%d" id)))
      worker_names
  in
  let inputs =
    List.map (fun id -> Value.Sym (Printf.sprintf "plan-%d" id)) worker_names
  in
  let config = Config.make store programs in

  (* Sample many adversarial schedules and report how often the workers
     coalesce onto 1 vs 2 plans (3 would be a violation). *)
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  let stats =
    Subc_check.Task_check.sample store ~programs ~inputs ~task
      ~seeds:(List.init 500 (fun i -> i + 1))
  in
  Format.printf "500 random schedules: %a@."
    Subc_check.Task_check.pp_sample_stats stats;
  assert (stats.Subc_check.Task_check.violations = 0);

  (* Show one concrete outcome. *)
  let r = Runner.run (Runner.Random 11) config in
  List.iteri
    (fun i id ->
      match Config.decision r.Runner.final i with
      | Some plan -> Format.printf "worker %d executes %a@." id Value.pp plan
      | None -> assert false)
    worker_names;
  Format.printf
    "@.at most %d distinct plans on every schedule — guaranteed by WRN_%d,@."
    (k - 1) k;
  Format.printf "impossible with read/write registers (Corollary 10).@."
