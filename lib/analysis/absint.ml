open Subc_sim

type protocol = {
  p_name : string;
  p_store : Store.t;
  p_program : Value.t Program.t;
}

let protocol ~name ~store program =
  { p_name = name; p_store = store; p_program = program }

type decl = { d_kind : string; d_ops : Op.t list; d_depth : int option }

let decl ?depth ~kind ops = { d_kind = kind; d_ops = ops; d_depth = depth }

type step_bound = Bounded of int | Unbounded

let pp_step_bound ppf = function
  | Bounded n -> Format.fprintf ppf "<= %d ops" n
  | Unbounded -> Format.pp_print_string ppf "unbounded"

type lint =
  | Undeclared_handle of { handle : int; kind : string; op : Op.t }
  | Op_outside_alphabet of { kind : string; op : Op.t }
  | Checkpoint_inconsistent of { key : Value.t }
  | Nondet_continuation of { kind : string; op : Op.t; resp : Value.t }

let pp_lint ppf = function
  | Undeclared_handle { handle; kind; op } ->
    Format.fprintf ppf
      "op %a issued on handle %d of undeclared kind %s — the protocol's \
       footprint is under-declared"
      Op.pp op handle kind
  | Op_outside_alphabet { kind; op } ->
    Format.fprintf ppf "op %a is outside the declared %s alphabet" Op.pp op
      kind
  | Checkpoint_inconsistent { key } ->
    Format.fprintf ppf
      "checkpoint key %a does not determine the remaining computation \
       (hoisted out of tail position, or missing live loop state)"
      Value.pp key
  | Nondet_continuation { kind; op; resp } ->
    Format.fprintf ppf
      "continuation after %a on %s is not a deterministic function of \
       response %a"
      Op.pp op kind Value.pp resp

module Fp = Set.Make (struct
  type t = int * Op.t

  let compare (h1, a) (h2, b) =
    match Int.compare h1 h2 with 0 -> Op.compare a b | c -> c
end)

module VS = Set.Make (Value)
module OS = Set.Make (Op)

type report = {
  r_protocol : string;
  r_footprint : (int * string * Op.t) list;
  r_bound : step_bound;
  r_returns : Value.t list;
  r_lints : lint list;
  r_widened : bool;
  r_iterations : int;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v2>%s: %a, %d footprint entries%s%s" r.r_protocol
    pp_step_bound r.r_bound
    (List.length r.r_footprint)
    (if r.r_widened then " (widened)" else "")
    (if r.r_lints = [] then "" else ":");
  List.iter (fun l -> Format.fprintf ppf "@,%a" pp_lint l) r.r_lints;
  Format.fprintf ppf "@]"

(* Abstract summary of one (sub)program: the ops it can issue, the worst
   number of invokes along any path, and the values it can return. *)
type summary = { s_fp : Fp.t; s_bound : step_bound; s_returns : VS.t }

let summary_equal a b =
  Fp.equal a.s_fp b.s_fp && a.s_bound = b.s_bound
  && VS.equal a.s_returns b.s_returns

let bound_max a b =
  match (a, b) with
  | Unbounded, _ | _, Unbounded -> Unbounded
  | Bounded x, Bounded y -> Bounded (max x y)

let bound_succ = function Unbounded -> Unbounded | Bounded n -> Bounded (n + 1)

(* The observable head of a program, for cheap same-computation probes:
   what the next instruction is, as a comparable value.  Continuations are
   opaque functions, so two programs with equal heads may still diverge
   deeper — the checkpoint check completes the comparison with full
   continuation summaries. *)
let head_shape : Value.t Program.t -> Value.t = function
  | Program.Return v -> Value.Tag ("return", v)
  | Program.Invoke (h, op, _) ->
    Value.Tag
      ( "invoke",
        Value.Pair
          ( Value.Int (h :> int),
            Value.Pair (Value.Sym op.Op.name, Value.Vec op.Op.args) ) )
  | Program.Checkpoint (key, _) -> Value.Tag ("checkpoint", key)

type memo_entry = In_progress of Value.t | Done of Value.t * summary

let analyze ?declared ?(fuel = 200_000) ?(max_pool = 4096) ?(max_branch = 32)
    p =
  (* Per-handle abstract state pool: state -> BFS depth from init under the
     environment alphabet plus the program's own ops.  Depth only matters
     for kinds declared with an op budget ([d_depth]), which bounds the
     closure of otherwise-unbounded objects (counters, queues). *)
  let pools : (int, (Value.t, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let issued : (int, OS.t ref) Hashtbl.t = Hashtbl.create 8 in
  let kinds : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let widened = ref false in
  let footprint = ref Fp.empty in
  let decl_for kind =
    match declared with
    | None -> None
    | Some ds -> List.find_opt (fun d -> d.d_kind = kind) ds
  in
  let pool_of hi (model : Obj_model.t) =
    match Hashtbl.find_opt pools hi with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 16 in
      Hashtbl.replace t model.Obj_model.init 0;
      Hashtbl.replace pools hi t;
      t
  in
  let issued_of hi =
    match Hashtbl.find_opt issued hi with
    | Some r -> r
    | None ->
      let r = ref OS.empty in
      Hashtbl.replace issued hi r;
      r
  in
  let apply_safe (model : Obj_model.t) st op =
    try model.Obj_model.apply st op with _ -> []
  in
  (* Close the pool of [hi] under the environment alphabet and every op the
     program has issued on it so far, respecting the declared depth budget
     and the pool-size cap. *)
  let close_pool hi (model : Obj_model.t) =
    let pool = pool_of hi model in
    let d = decl_for model.Obj_model.kind in
    let depth_limit =
      match d with Some { d_depth = Some n; _ } -> n | _ -> max_int
    in
    let env_ops = match d with Some { d_ops; _ } -> d_ops | None -> [] in
    let ops = OS.elements (OS.union !(issued_of hi) (OS.of_list env_ops)) in
    let frontier = ref [] in
    Hashtbl.iter (fun st depth -> frontier := (st, depth) :: !frontier) pool;
    while !frontier <> [] do
      let work = !frontier in
      frontier := [];
      List.iter
        (fun (st, depth) ->
          if depth < depth_limit then
            List.iter
              (fun op ->
                List.iter
                  (fun (st', _resp) ->
                    match Hashtbl.find_opt pool st' with
                    | Some d' when d' <= depth + 1 -> ()
                    | prior ->
                      if prior = None && Hashtbl.length pool >= max_pool then
                        widened := true
                      else begin
                        Hashtbl.replace pool st' (depth + 1);
                        frontier := (st', depth + 1) :: !frontier
                      end)
                  (apply_safe model st op))
              ops)
        work
    done;
    pool
  in
  (* Every response [op] can produce from some state in the pool; sorted so
     branch exploration (and the truncation under widening) is
     deterministic. *)
  let responses hi (model : Obj_model.t) op =
    let iss = issued_of hi in
    if not (OS.mem op !iss) then iss := OS.add op !iss;
    let pool = close_pool hi model in
    let rs = ref VS.empty in
    Hashtbl.iter
      (fun st _depth ->
        List.iter (fun (_st', resp) -> rs := VS.add resp !rs)
          (apply_safe model st op))
      pool;
    let rs = VS.elements !rs in
    if List.length rs > max_branch then begin
      widened := true;
      List.filteri (fun i _ -> i < max_branch) rs
    end
    else rs
  in
  let walk_once () =
    let lints = ref [] in
    let add_lint l = if not (List.mem l !lints) then lints := !lints @ [ l ] in
    let memo : (Value.t, memo_entry) Hashtbl.t = Hashtbl.create 8 in
    let reverified : (Value.t, int) Hashtbl.t = Hashtbl.create 8 in
    let nodes = ref 0 in
    let top = { s_fp = Fp.empty; s_bound = Unbounded; s_returns = VS.empty } in
    let loop_summary =
      { s_fp = Fp.empty; s_bound = Unbounded; s_returns = VS.empty }
    in
    let rec walk (prog : Value.t Program.t) : summary =
      incr nodes;
      if !nodes > fuel then begin
        widened := true;
        top
      end
      else
        match prog with
        | Program.Return v ->
          { s_fp = Fp.empty; s_bound = Bounded 0; s_returns = VS.singleton v }
        | Program.Invoke (h, op, k) ->
          let hi = (h :> int) in
          let model = Store.model p.p_store h in
          let kind = model.Obj_model.kind in
          if not (Hashtbl.mem kinds hi) then Hashtbl.replace kinds hi kind;
          (match declared with
          | None -> ()
          | Some ds -> (
            match List.find_opt (fun d -> d.d_kind = kind) ds with
            | None -> add_lint (Undeclared_handle { handle = hi; kind; op })
            | Some { d_ops; _ } ->
              let matches o =
                o.Op.name = op.Op.name
                && List.length o.Op.args = List.length op.Op.args
              in
              if not (List.exists matches d_ops) then
                add_lint (Op_outside_alphabet { kind; op })));
          footprint := Fp.add (hi, op) !footprint;
          let rs = responses hi model op in
          (match rs with
          | r :: _ ->
            if not (Value.equal (head_shape (k r)) (head_shape (k r))) then
              add_lint (Nondet_continuation { kind; op; resp = r })
          | [] -> (* the invocation hangs everywhere: the path ends here *) ());
          let base =
            {
              s_fp = Fp.singleton (hi, op);
              s_bound = Bounded 1;
              s_returns = VS.empty;
            }
          in
          List.fold_left
            (fun acc r ->
              let s = walk (k r) in
              {
                s_fp = Fp.union acc.s_fp s.s_fp;
                s_bound = bound_max acc.s_bound (bound_succ s.s_bound);
                s_returns = VS.union acc.s_returns s.s_returns;
              })
            base rs
        | Program.Checkpoint (key, rest) -> (
          match Hashtbl.find_opt memo key with
          | Some (In_progress first_head) ->
            (* Back-edge: the loop closes here.  The first instruction
               after the key must be the same one the first occurrence
               saw, else the key demonstrably fails to determine the
               remaining computation. *)
            if not (Value.equal (head_shape rest) first_head) then
              add_lint (Checkpoint_inconsistent { key });
            loop_summary
          | Some (Done (first_head, s)) ->
            if not (Value.equal (head_shape rest) first_head) then begin
              add_lint (Checkpoint_inconsistent { key });
              s
            end
            else
              let n =
                Option.value (Hashtbl.find_opt reverified key) ~default:0
              in
              if n >= 4 then s
              else begin
                (* Re-walk this occurrence's continuation and demand the
                   same observable summary as the memoized one. *)
                Hashtbl.replace reverified key (n + 1);
                Hashtbl.replace memo key (In_progress first_head);
                let s' = walk rest in
                Hashtbl.replace memo key (Done (first_head, s));
                if not (summary_equal s s') then
                  add_lint (Checkpoint_inconsistent { key });
                s
              end
          | None ->
            let hd = head_shape rest in
            Hashtbl.replace memo key (In_progress hd);
            let s = walk rest in
            Hashtbl.replace memo key (Done (hd, s));
            s)
    in
    let s = walk p.p_program in
    (s, !lints)
  in
  (* Outer fixpoint: a walk grows pools and the footprint, which grows the
     response sets the next walk branches on.  Stable when a whole walk
     changes neither; the reported lints come from that stable walk, so
     checkpoint-summary comparisons never see mid-growth response sets. *)
  let snapshot () =
    ( Fp.cardinal !footprint,
      Hashtbl.fold (fun _ pool acc -> acc + Hashtbl.length pool) pools 0 )
  in
  let rec iterate i =
    let before = snapshot () in
    let s, lints = walk_once () in
    if snapshot () = before then (s, lints, i)
    else if i >= 8 then begin
      widened := true;
      (s, lints, i)
    end
    else iterate (i + 1)
  in
  let s, lints, iterations = iterate 1 in
  {
    r_protocol = p.p_name;
    r_footprint =
      List.map
        (fun (hi, op) ->
          let kind =
            match Hashtbl.find_opt kinds hi with Some k -> k | None -> "?"
          in
          (hi, kind, op))
        (Fp.elements !footprint);
    r_bound = s.s_bound;
    r_returns = VS.elements s.s_returns;
    r_lints = lints;
    r_widened = !widened;
    r_iterations = iterations;
  }
