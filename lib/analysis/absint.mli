(** Protocol abstract interpreter: static footprints, step bounds and DSL
    soundness lints for [Program.t] process programs.

    The explorer's canonicalization assumes every process program is a
    deterministic function of its response history, that [checkpoint] keys
    determine the whole remaining computation, and that protocols only issue
    ops the analysis registry has certified ({!Registry}).  Nothing verified
    those disciplines statically — the analyzer certified object {e models}
    while the protocol layer above them was trusted.  This module closes the
    gap by symbolically executing the free monad over an abstract response
    lattice:

    - object states are pooled per handle and grown to a fixpoint under the
      declared environment alphabet (so responses account for what {e other}
      processes may have written, not just this program's own ops);
    - every [Invoke] continuation is explored once per abstract response
      (branch-set exploration), with bounded widening: response sets, pool
      sizes and walk fuel are capped, and hitting a cap marks the report
      {e widened} — a [Limited], never a wrong [Proved];
    - [Checkpoint] occurrences are memoized by key.  A back-edge into an
      in-progress key ends the path with an [Unbounded] step bound; a
      revisited key is re-walked and its continuation summary (footprint,
      bound, return set) compared against the memoized one — the detectable
      projection of the "tail position, key captures all live loop state"
      discipline of {!Subc_sim.Program.checkpoint}.

    The result per program: its {b static footprint} (every (handle, op) it
    can issue), a {b syntactic step bound} (a wait-freedom witness, or
    [Unbounded] when a checkpoint loop is reachable), and {b lint findings}
    for alphabet/handle/checkpoint/determinism violations.  Footprints feed
    {!Footprint} certificates and the [analyze --lint] CI gate. *)

open Subc_sim

type protocol = {
  p_name : string;
  p_store : Store.t;  (** the store the program's handles live in *)
  p_program : Value.t Program.t;
}

val protocol : name:string -> store:Store.t -> Value.t Program.t -> protocol

(** One declared object class of the environment: the ops any process may
    issue on objects of [d_kind], and (for unbounded objects registered
    with an op budget, {!Subject.Ops}) how many environment steps the
    abstract state pool explores from the initial state. *)
type decl = { d_kind : string; d_ops : Op.t list; d_depth : int option }

val decl : ?depth:int -> kind:string -> Op.t list -> decl

type step_bound =
  | Bounded of int  (** wait-freedom witness: at most [n] invokes per run *)
  | Unbounded  (** a checkpoint loop (or widening) is reachable *)

val pp_step_bound : Format.formatter -> step_bound -> unit

type lint =
  | Undeclared_handle of { handle : int; kind : string; op : Op.t }
      (** the program invokes an object whose kind no declaration covers —
          its footprint is under-declared *)
  | Op_outside_alphabet of { kind : string; op : Op.t }
      (** op (name, arity) not in the declared alphabet of the kind.
          Matching is by name and arity, not exact arguments: certified
          value-oblivious objects license the token abstraction, and
          protocols legitimately write richer values (views, vectors)
          through declared op shapes. *)
  | Checkpoint_inconsistent of { key : Value.t }
      (** the same checkpoint key was reached with observably different
          remaining computations — the key misses live loop state, or the
          checkpoint was hoisted out of tail position *)
  | Nondet_continuation of { kind : string; op : Op.t; resp : Value.t }
      (** applying an [Invoke] continuation twice to the same response
          produced different programs — the program is not a deterministic
          function of its response history *)

val pp_lint : Format.formatter -> lint -> unit

type report = {
  r_protocol : string;
  r_footprint : (int * string * Op.t) list;
      (** every (handle, kind, op) the program can issue, sorted *)
  r_bound : step_bound;
  r_returns : Value.t list;  (** abstract return-value set, sorted *)
  r_lints : lint list;
  r_widened : bool;
      (** some cap (fuel, pool, branch width) was hit: footprint, bound
          and lints are best-effort, not certificates *)
  r_iterations : int;  (** outer fixpoint iterations until stable *)
}

val pp_report : Format.formatter -> report -> unit

val analyze :
  ?declared:decl list ->
  ?fuel:int ->
  ?max_pool:int ->
  ?max_branch:int ->
  protocol ->
  report
(** Symbolically execute the program to a fixpoint.  [declared] is the
    environment: per-kind op alphabets grown into each handle's abstract
    state pool (omitting it analyzes the program solo — responses then
    only reflect the program's own writes) and the reference the
    handle/alphabet lints check against (no [declared], no such lints).
    Defaults: [fuel = 200_000] walk nodes per iteration, [max_pool = 4096]
    abstract states per handle, [max_branch = 32] responses per invoke. *)
