open Subc_sim
module Verdict = Subc_check.Verdict

type finding = {
  family : string;
  subject : string;
  check : string;
  verdict : Verdict.t;
}

let check_names =
  [
    "reachability";
    "commutation";
    "source-closure";
    "footprint";
    "equivariance";
    "recovery";
    "classification";
  ]

(* A proof over a truncated enumeration is no proof: downgrade to Limited,
   keeping the metrics. *)
let seal (space : Reach.space) v =
  match v with
  | Verdict.Proved st when space.Reach.truncated ->
    Verdict.Limited
      { st with Verdict.note = st.Verdict.note ^ " (truncated enumeration)" }
  | v -> v

let flaw_verdict f =
  Verdict.refuted ~trace:[] (Format.asprintf "%a" Reach.pp_flaw f)

(* Checks walk slightly beyond the enumerated states (diamond completions,
   renamed or value-swapped states); purity flaws surfacing there are
   refutations of the same reachability obligations. *)
let guarded f = try f () with Reach.Flaw flaw -> flaw_verdict flaw

let space_metrics (space : Reach.space) =
  [
    ("states", float_of_int space.Reach.n_states);
    ("edges", float_of_int space.Reach.n_edges);
    ("depth", float_of_int space.Reach.depth);
  ]

let reach_verdict (s : Subject.t) = function
  | Error f -> flaw_verdict f
  | Ok (space : Reach.space) ->
    let metrics = space_metrics space in
    if space.Reach.truncated then
      Verdict.limited ~metrics
        (Printf.sprintf
           "state budget (%d) exhausted before the space closed"
           s.Subject.max_states)
    else
      let scope =
        match s.Subject.bound with
        | Subject.Closure -> "closed"
        | Subject.Ops d -> Printf.sprintf "within a %d-op budget" d
      in
      Verdict.proved ~metrics
        (Printf.sprintf "%d states, %d edges, apply pure and total (%s)"
           space.Reach.n_states space.Reach.n_edges scope)

let commute_verdict (s : Subject.t) space =
  guarded (fun () ->
      match Commute.check s space with
      | Error race ->
        Verdict.refuted ~trace:[] (Format.asprintf "%a" Commute.pp_race race)
      | Ok (st : Commute.stats) ->
        seal space
          (Verdict.proved
             ~metrics:
               [
                 ("pairs", float_of_int st.Commute.pairs);
                 ("contexts", float_of_int st.Commute.contexts);
                 ("independent", float_of_int st.Commute.independent);
                 ("dependent", float_of_int st.Commute.dependent);
               ]
             (Printf.sprintf
                "%d/%d contexts judged independent, every one commutes \
                 (%d op pairs, %d states)"
                st.Commute.independent st.Commute.contexts st.Commute.pairs
                space.Reach.n_states)))

let sourceset_verdict (s : Subject.t) space =
  guarded (fun () ->
      match Sourceset.check s space with
      | Error v ->
        Verdict.refuted ~trace:[]
          (Format.asprintf "%a" Sourceset.pp_violation v)
      | Ok (st : Sourceset.stats) ->
        seal space
          (Verdict.proved
             ~metrics:
               [
                 ("pairs", float_of_int st.Sourceset.pairs);
                 ( "equivariance_checks",
                   float_of_int st.Sourceset.equivariance_checks );
                 ( "diamond_checks",
                   float_of_int st.Sourceset.diamond_checks );
               ]
             (Printf.sprintf
                "independence %s-equivariant (%d triples); independent \
                 steps stay applicable (%d diamond edges) on %d states"
                s.Subject.group_name st.Sourceset.equivariance_checks
                st.Sourceset.diamond_checks st.Sourceset.states)))

(* Classify the subject's alphabet pairs over the enumerated space,
   publish the table into the explorer's static-independence registry,
   then validate the *installed* table (which may have been merged with
   tables from other subjects of the same kind and initial state) against
   fresh semantic diamonds at every state — the obligation that makes
   [--independence static] reproduce semantic counts and verdicts. *)
let footprint_verdict (s : Subject.t) space =
  guarded (fun () ->
      let fp = Footprint.classify s space in
      Footprint.install fp;
      match Footprint.validate s space with
      | Error m ->
        Verdict.refuted ~trace:[] (Format.asprintf "%a" Footprint.pp_mismatch m)
      | Ok (st : Footprint.check_stats) ->
        let cls = fp.Footprint.fp_stats in
        seal space
          (Verdict.proved
             ~metrics:
               [
                 ("pairs", float_of_int cls.Footprint.pairs);
                 ("always", float_of_int cls.Footprint.always);
                 ("never", float_of_int cls.Footprint.never);
                 ( "state_dependent",
                   float_of_int cls.Footprint.state_dependent );
                 ("decided_contexts", float_of_int st.Footprint.c_decided);
                 ("fallback_contexts", float_of_int st.Footprint.c_fallback);
               ]
             (Printf.sprintf
                "static table %d always / %d never / %d state-dependent of \
                 %d pairs; installed table matches the semantic judgment \
                 at all %d decided contexts (%d fall back)"
                cls.Footprint.always cls.Footprint.never
                cls.Footprint.state_dependent cls.Footprint.pairs
                st.Footprint.c_decided st.Footprint.c_fallback)))

let equivariance_verdict (s : Subject.t) space =
  guarded (fun () ->
      match Equivariance.check s space with
      | Error v ->
        Verdict.refuted ~trace:[]
          (Format.asprintf "%a" Equivariance.pp_violation v)
      | Ok (st : Equivariance.stats) ->
        seal space
          (Verdict.proved
             ~metrics:
               [
                 ("group_order", float_of_int st.Equivariance.group_order);
                 ("states", float_of_int st.Equivariance.states);
                 ("checked", float_of_int st.Equivariance.checked);
               ]
             (Printf.sprintf
                "%s group (order %d) is an automorphism group on %d states \
                 (%d triples)"
                s.Subject.group_name st.Equivariance.group_order
                st.Equivariance.states st.Equivariance.checked)))

let recovery_verdict (s : Subject.t) space =
  guarded (fun () ->
      match Recovery.check s space with
      | Error v ->
        Verdict.refuted ~trace:[]
          (Format.asprintf "%a" Recovery.pp_violation v)
      | Ok (st : Recovery.stats) ->
        seal space
          (Verdict.proved
             ~metrics:
               [
                 ("states", float_of_int st.Recovery.states);
                 ("checked", float_of_int st.Recovery.checked);
                 ("group_order", float_of_int st.Recovery.group_order);
               ]
             (Printf.sprintf
                "persist idempotent, space-closed and %s-equivariant on %d \
                 states (%d checks)%s"
                s.Subject.group_name st.Recovery.states st.Recovery.checked
                (if st.Recovery.identity then "; all-persistent (identity)"
                 else ""))))

let classification_verdict (s : Subject.t) space =
  guarded (fun () ->
      match Classify.check s space with
      | Error l ->
        Verdict.refuted ~trace:[] (Format.asprintf "%a" Classify.pp_lint l)
      | Ok (inf : Classify.inferred) ->
        let cls =
          match s.Subject.expected with
          | Subject.Deterministic -> "deterministic"
          | Subject.Nondeterministic -> "nondeterministic"
        in
        let traits =
          (if s.Subject.may_hang then [ "hang-prone" ] else [])
          @ if s.Subject.value_oblivious then [ "value-oblivious" ] else []
        in
        seal space
          (Verdict.proved
             ~metrics:
               [
                 ("det_contexts", float_of_int inf.Classify.det_contexts);
                 ( "branching_contexts",
                   float_of_int inf.Classify.branching_contexts );
                 ("hang_contexts", float_of_int inf.Classify.hang_contexts);
                 ("value_pairs", float_of_int inf.Classify.value_pairs);
               ]
             (String.concat ", " (cls :: traits) ^ " as declared")))

(* [stop] is an absolute wall-clock instant; checks not yet started when
   it passes report Limited rather than running.  Checks are not
   interrupted mid-flight — the granularity is one check, matching the
   explorer's "a deadline run is only ever a Limited answer" contract. *)
let analyze_subject_until ?(family = "-") ?stop (s : Subject.t) =
  let mk check verdict = { family; subject = s.Subject.name; check; verdict } in
  let expired () =
    match stop with Some t -> Unix.gettimeofday () > t | None -> false
  in
  let deadline_verdict =
    Verdict.limited "skipped: analysis deadline exceeded"
  in
  if expired () then List.map (fun check -> mk check deadline_verdict) check_names
  else
    match Reach.enumerate s with
    | Error _ as r ->
      let skipped =
        Verdict.limited "skipped: reachable-space enumeration failed"
      in
      mk "reachability" (reach_verdict s r)
      :: List.map
           (fun check -> mk check skipped)
           (List.tl check_names)
    | Ok space as r ->
      let run check f =
        if expired () then mk check deadline_verdict
        else mk check (f s space)
      in
      [
        mk "reachability" (reach_verdict s r);
        run "commutation" commute_verdict;
        run "source-closure" sourceset_verdict;
        run "footprint" footprint_verdict;
        run "equivariance" equivariance_verdict;
        run "recovery" recovery_verdict;
        run "classification" classification_verdict;
      ]

let stop_of_deadline deadline =
  Option.map (fun d -> Unix.gettimeofday () +. d) deadline

let analyze_subject ?family ?deadline s =
  analyze_subject_until ?family ?stop:(stop_of_deadline deadline) s

(* Subjects are independent, so they fan out across domains; each
   subject's findings stay in check order and the subject order is
   preserved by [Parallel.map].  The deadline is converted to an absolute
   instant once, so all domains race the same clock. *)
let analyze ?family ?(jobs = 1) ?deadline subjects =
  let stop = stop_of_deadline deadline in
  List.concat
    (Subc_sim.Parallel.map ~jobs (analyze_subject_until ?family ?stop) subjects)

let verdicts findings = List.map (fun f -> f.verdict) findings
let exit_code findings = Verdict.combined_exit (verdicts findings)

let finding_name f = Printf.sprintf "%s/%s/%s" f.family f.subject f.check

let pp_finding ppf f =
  Format.fprintf ppf "@[<v2>%s:@ %a@]" (finding_name f) Verdict.pp_summary
    f.verdict

let to_json f = Verdict.to_json ~name:(finding_name f) f.verdict

let obligations =
  [
    "apply-purity";
    "pairwise-commutation";
    "source-set-closure";
    "static-independence";
    "symmetry-equivariance";
    "recovery-projection";
    "classification";
  ]

let certify ~family subjects =
  let findings = analyze ~family subjects in
  let bad = List.filter (fun f -> not (Verdict.is_proved f.verdict)) findings in
  if bad = [] then
    Ok (Explore.Certificate.attest ~tool:"subc_analysis" ~subject:family ~obligations)
  else Error bad

(* ------------------------------------------------------------------ *)
(* Protocol lint: the abstract interpreter over the registry's protocol
   exemplars, rendered through the same finding/verdict pipeline as the
   model checks. *)

let registry_entries family =
  match family with
  | None -> Registry.entries ()
  | Some f -> Option.to_list (Registry.find f)

let lint_verdict (r : Absint.report) =
  if r.Absint.r_lints <> [] then
    Verdict.refuted ~trace:[]
      (String.concat "; "
         (List.map (Format.asprintf "%a" Absint.pp_lint) r.Absint.r_lints))
  else
    let metrics =
      [
        ("footprint", float_of_int (List.length r.Absint.r_footprint));
        ("returns", float_of_int (List.length r.Absint.r_returns));
        ("iterations", float_of_int r.Absint.r_iterations);
      ]
    in
    if r.Absint.r_widened then
      Verdict.limited ~metrics
        "abstract interpretation widened — footprint and bound are \
         best-effort, not a certificate"
    else
      Verdict.proved ~metrics
        (Format.asprintf "footprint %d (handle, op) pairs, step bound %a"
           (List.length r.Absint.r_footprint)
           Absint.pp_step_bound r.Absint.r_bound)

(* The gate runs with far larger budgets than {!Absint.analyze}'s
   defaults: alg5's primitive snapshots answer a scan with any reachable
   view vector, so exact branch exploration needs a branch cap on the
   order of the abstract pool, and the resulting tree wants millions of
   nodes of fuel.  Exactness matters here — a widened report is a Limited
   verdict and the CI gate demands clean Proved rows. *)
let lint_protocol ~family ~declared (p : Absint.protocol) =
  let report =
    Absint.analyze ~fuel:6_000_000 ~max_branch:4096 ~declared p
  in
  {
    family;
    subject = p.Absint.p_name;
    check = "lint";
    verdict = lint_verdict report;
  }

let lint ?family () =
  List.concat_map
    (fun (e : Registry.entry) ->
      let declared = Registry.declared_alphabets e.Registry.subjects in
      List.map
        (lint_protocol ~family:e.Registry.family ~declared)
        e.Registry.protocols)
    (registry_entries family)

(* Publish every registry subject's static commutation table, so
   [--independence static|both] runs resolve table hits instead of falling
   back to the semantic judgment everywhere.  Enumeration failures are
   skipped silently: the missing table only costs fallbacks, and the
   footprint check reports the failure properly. *)
let install_static ?family () =
  List.concat_map
    (fun (e : Registry.entry) ->
      List.filter_map
        (fun s ->
          match Footprint.of_subject s with
          | Error _ -> None
          | Ok (fp, _space) ->
            Footprint.install fp;
            Some (s.Subject.name, List.length fp.Footprint.fp_pairs))
        e.Registry.subjects)
    (registry_entries family)
