(** The analyzer front-end: run every soundness check on a subject, render
    the results as {!Subc_check.Verdict.t} findings, and mint reduction
    certificates.

    Seven checks run per subject, in dependency order:

    + {b reachability} ({!Reach}): enumerate the reachable state space,
      certifying purity and alphabet-totality of [apply] along the way;
    + {b commutation} ({!Commute}): certify the source-set independence
      judgment against fresh diamond computations — refuted findings carry
      a concrete (state, op pair, divergent outcome sets) race witness;
    + {b source-closure} ({!Sourceset}): certify the independence judgment
      is equivariant under the declared group — the closure property the
      (configuration, sleep)-keyed reduction relies on under work
      stealing — and corroborate the per-state diamonds one step out
      (persistence across steps is deliberately {e not} demanded: the
      explorer re-judges carried sleep entries at every state);
    + {b footprint} ({!Footprint}): classify every alphabet pair as
      always/never/state-dependent commuting over the enumerated space,
      install the static table, and certify the {e installed} table agrees
      with the semantic judgment at every state — the obligation behind
      the [--independence static] fast path;
    + {b equivariance} ({!Equivariance}): certify the declared permutation
      group is an automorphism group of the reachable transition system;
    + {b recovery} ({!Recovery}): certify the crash-recovery projection
      [persist] is idempotent, closed over the reachable space, and
      commutes with the declared group;
    + {b classification} ({!Classify}): declared vs inferred
      determinism/hang status, plus the value-obliviousness claim.

    Everything is static in the paper's sense: only the object's
    transition function is exercised — no protocol programs run, no
    schedules are explored.  The verdicts obey the usual exit contract
    (proved 0 / refuted 1 / limited 2); a truncated enumeration downgrades
    dependent proofs to [Limited]. *)

open Subc_sim

type finding = {
  family : string;  (** registry family, or "-" for ad-hoc subjects *)
  subject : string;
  check : string;  (** one of {!check_names} *)
  verdict : Subc_check.Verdict.t;
}

val check_names : string list
(** ["reachability"; "commutation"; "source-closure"; "footprint";
    "equivariance"; "recovery"; "classification"]. *)

val analyze_subject :
  ?family:string -> ?deadline:float -> Subject.t -> finding list
(** One finding per check, in the order of {!check_names}.  When
    reachability fails, the dependent checks report [Limited] (skipped)
    rather than running on a broken space.  [deadline] (seconds of wall
    clock) stops starting new checks once it passes; not-yet-started
    checks report [Limited]. *)

val analyze :
  ?family:string ->
  ?jobs:int ->
  ?deadline:float ->
  Subject.t list ->
  finding list
(** [jobs] analyzes that many subjects concurrently (one domain each,
    {!Subc_sim.Parallel.map}); findings keep their deterministic order.
    [deadline] is one shared wall-clock budget across all subjects and
    domains — checks not started before it passes report [Limited]. *)

val verdicts : finding list -> Subc_check.Verdict.t list
val exit_code : finding list -> int
(** {!Subc_check.Verdict.combined_exit} over all findings. *)

val pp_finding : Format.formatter -> finding -> unit
val finding_name : finding -> string
(** ["family/subject/check"], the JSON [check] field. *)

val to_json : finding -> string

val certify :
  family:string ->
  Subject.t list ->
  (Explore.Certificate.t, finding list) result
(** The only legitimate certificate mint outside tests: analyze the
    subjects and attest the discharged obligations iff {e every} finding is
    proved; otherwise return the non-proved findings.  The resulting
    certificate feeds {!Subc_sim.Explore.certified_reduction}. *)

val lint_protocol :
  family:string -> declared:Absint.decl list -> Absint.protocol -> finding
(** One protocol through the abstract interpreter (with the gate's
    enlarged fuel and branch budgets): [Proved] carries the footprint size
    and step bound, any lint is a [Refuted] naming the witnesses, a
    widened analysis is [Limited]. *)

val lint : ?family:string -> unit -> finding list
(** The protocol gate: run the abstract interpreter ({!Absint}) on every
    protocol exemplar of the registry (or of one [family]) against the
    family's declared alphabets.  One finding per protocol with check
    ["lint"]: [Proved] carries the footprint size and step bound, any lint
    is a [Refuted], widening is a [Limited].  The CLI [analyze --lint] and
    the CI gate consume this. *)

val install_static : ?family:string -> unit -> (string * int) list
(** Classify and publish the static commutation table of every registry
    subject (or one family's) into
    {!Subc_sim.Explore.install_static_independence}; returns
    [(subject, pairs)] per installed table.  The CLI runs this before any
    [--independence static|both] exploration. *)
