open Subc_sim

type inferred = {
  det_contexts : int;
  branching_contexts : int;
  hang_contexts : int;
  value_pairs : int;
}

type lint =
  | Undeclared_branching of {
      state : Value.t;
      op : Op.t;
      successors : (Value.t * Value.t) list;
    }
  | Spurious_nondet_declaration
  | Undeclared_hang of { state : Value.t; op : Op.t }
  | Spurious_hang_declaration
  | Value_dependent of {
      u : Value.t;
      w : Value.t;
      state : Value.t;
      op : Op.t;
      lhs : (Value.t * Value.t) list;
      rhs : (Value.t * Value.t) list;
    }

let pp_succs ppf succs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (s, r) -> Format.fprintf ppf "%a/%a" Value.pp s Value.pp r))
    succs

let pp_lint ppf = function
  | Undeclared_branching { state; op; successors } ->
    Format.fprintf ppf
      "declared deterministic, but %a branches at %a: %a" Op.pp op Value.pp
      state pp_succs successors
  | Spurious_nondet_declaration ->
    Format.fprintf ppf
      "declared nondeterministic, but no reachable (state, op) branches"
  | Undeclared_hang { state; op } ->
    Format.fprintf ppf "undeclared hang: %a has no successor at %a" Op.pp op
      Value.pp state
  | Spurious_hang_declaration ->
    Format.fprintf ppf
      "declared hang-prone, but no reachable invocation hangs"
  | Value_dependent { u; w; state; op; lhs; rhs } ->
    Format.fprintf ppf
      "@[<v>not value-oblivious: swapping %a and %a does not commute with \
       apply at state %a, op %a:@,\
       swap.apply = %a@,\
       apply.swap = %a@]"
      Value.pp u Value.pp w Value.pp state Op.pp op pp_succs lhs pp_succs rhs

let rec swap_values u w v =
  if Value.equal v u then w
  else if Value.equal v w then u
  else
    match v with
    | Value.Pair (a, b) -> Value.Pair (swap_values u w a, swap_values u w b)
    | Value.Vec vs -> Value.Vec (List.map (swap_values u w) vs)
    | Value.Tag (t, x) -> Value.Tag (t, swap_values u w x)
    | Value.Bot | Value.Unit | Value.Bool _ | Value.Int _ | Value.Sym _ -> v

let swap_op u w (op : Op.t) = Op.make op.Op.name (List.map (swap_values u w) op.Op.args)

let rec value_pairs = function
  | [] -> []
  | u :: rest -> List.map (fun w -> (u, w)) rest @ value_pairs rest

let check (s : Subject.t) (space : Reach.space) =
  let model = s.Subject.model in
  let det = ref 0 and branching = ref 0 and hangs = ref 0 in
  let lint = ref None in
  let fail l =
    lint := Some l;
    raise Exit
  in
  let exhaustive =
    s.Subject.bound = Subject.Closure && not space.Reach.truncated
  in
  let pairs = if s.Subject.value_oblivious then value_pairs s.Subject.values else [] in
  (try
     List.iter
       (fun st ->
         List.iter
           (fun op ->
             (match Reach.successors_exn model st op with
             | [] ->
               incr hangs;
               if not s.Subject.may_hang then fail (Undeclared_hang { state = st; op })
             | [ _ ] -> incr det
             | succs ->
               incr branching;
               if s.Subject.expected = Subject.Deterministic then
                 fail (Undeclared_branching { state = st; op; successors = succs }));
             List.iter
               (fun (u, w) ->
                 let lhs =
                   Reach.successors_exn model st op
                   |> List.map (fun (s', r) ->
                          (swap_values u w s', swap_values u w r))
                   |> List.sort compare
                 in
                 let rhs =
                   Reach.successors_exn model (swap_values u w st)
                     (swap_op u w op)
                   |> List.sort compare
                 in
                 if lhs <> rhs then
                   fail (Value_dependent { u; w; state = st; op; lhs; rhs }))
               pairs)
           s.Subject.alphabet)
       space.Reach.states;
     if exhaustive then begin
       if s.Subject.expected = Subject.Nondeterministic && !branching = 0 then
         fail Spurious_nondet_declaration;
       if s.Subject.may_hang && !hangs = 0 then fail Spurious_hang_declaration
     end
   with Exit -> ());
  match !lint with
  | Some l -> Error l
  | None ->
    Ok
      {
        det_contexts = !det;
        branching_contexts = !branching;
        hang_contexts = !hangs;
        value_pairs = List.length pairs;
      }
