(** Classification lint: declared vs inferred object behaviour.

    The paper's taxonomy (Section 2) sorts objects by their successor sets:
    deterministic (singleton everywhere), nondeterministic (some branching),
    and hang-prone (some empty successor set — the invoker never returns).
    Checkers and reductions consume those declarations: {!Subc_check}'s
    progress checkers interpret hung terminals, and readers of
    [Obj_model.deterministic] take the constructor at its word.  This lint
    infers the classification from the reachable space and flags every
    mismatch with the subject's declaration.

    It also discharges the {b value-obliviousness} claim made by subjects
    enabling the full symmetric group: for every unordered pair of declared
    data-value tokens, the structural swap of the two commutes with [apply]
    at every reachable state.  Together with proposal-renaming equivariance
    this is what licenses running the analyzer on a small token alphabet
    and transferring the certificate to richer value domains. *)

open Subc_sim

type inferred = {
  det_contexts : int;  (** (state, op) with exactly one successor *)
  branching_contexts : int;  (** with two or more *)
  hang_contexts : int;  (** with none *)
  value_pairs : int;  (** token pairs certified oblivious (0 = no claim) *)
}

type lint =
  | Undeclared_branching of {
      state : Value.t;
      op : Op.t;
      successors : (Value.t * Value.t) list;
    }  (** declared deterministic, found a branching context *)
  | Spurious_nondet_declaration
      (** declared nondeterministic, yet no reachable context branches *)
  | Undeclared_hang of { state : Value.t; op : Op.t }
      (** a reachable invocation hangs, but the subject does not admit it *)
  | Spurious_hang_declaration
      (** declared hang-prone, yet no reachable invocation hangs *)
  | Value_dependent of {
      u : Value.t;
      w : Value.t;
      state : Value.t;
      op : Op.t;
      lhs : (Value.t * Value.t) list;  (** sorted swap-then-apply *)
      rhs : (Value.t * Value.t) list;  (** sorted apply-then-swap *)
    }  (** the value-obliviousness claim fails: swapping tokens [u] and [w]
           does not commute with [apply] *)

val pp_lint : Format.formatter -> lint -> unit

val swap_values : Value.t -> Value.t -> Value.t -> Value.t
(** [swap_values u w v] exchanges [u] and [w] everywhere in [v],
    structurally (exposed for tests). *)

val check : Subject.t -> Reach.space -> (inferred, lint) result
(** The spurious-declaration lints require exhaustiveness, so they are only
    raised for closed, untruncated spaces ([bound = Closure]); a
    depth-bounded enumeration may simply not reach the branching or the
    hang.  @raise Reach.Flaw when [apply] misbehaves on a swapped state. *)
