open Subc_sim

type stats = {
  pairs : int;
  contexts : int;
  independent : int;
  dependent : int;
}

type race = {
  state : Value.t;
  a : Op.t;
  b : Op.t;
  ab : (Value.t * Value.t * Value.t) list;
  ba : (Value.t * Value.t * Value.t) list;
}

let pp_outcomes ppf = function
  | [] -> Format.fprintf ppf "hangs"
  | outs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (s, ra, rb) ->
           Format.fprintf ppf "%a ra=%a rb=%a" Value.pp s Value.pp ra Value.pp
             rb))
      outs

let pp_race ppf r =
  Format.fprintf ppf
    "@[<v>ops %a and %a judged independent but do not commute at state %a:@,\
     %a-first: %a@,\
     %a-first: %a@]"
    Op.pp r.a Op.pp r.b Value.pp r.state Op.pp r.a pp_outcomes r.ab Op.pp r.b
    pp_outcomes r.ba

exception Hung

(* One order of the diamond: every resolution of nondeterminism of [first]
   then [second], as (final state, response of first, response of second).
   [`Hangs] when [first] has no successor, or some completion of [first]
   leaves [second] with none — running the ops in this order can then hang
   an invoker, which the other order must match to be independent.  A
   [`Outs] list is never empty: a completing order has a completion. *)
let order_outcomes model st0 first second =
  match Reach.successors_exn model st0 first with
  | [] -> `Hangs
  | firsts -> (
    try
      `Outs
        (List.concat_map
           (fun (s1, r1) ->
             match Reach.successors_exn model s1 second with
             | [] -> raise Hung
             | ys -> List.map (fun (s2, r2) -> (s2, r1, r2)) ys)
           firsts)
    with Hung -> `Hangs)

let diamond model st0 a b =
  let ab = order_outcomes model st0 a b in
  let ba =
    match order_outcomes model st0 b a with
    | `Hangs -> `Hangs
    | `Outs l -> `Outs (List.map (fun (s, rb, ra) -> (s, ra, rb)) l)
  in
  match (ab, ba) with
  | `Hangs, `Hangs -> `Commute
  | `Outs x, `Outs y ->
    let x = List.sort compare x and y = List.sort compare y in
    if x = y then `Commute else `Diverge (x, y)
  | `Outs x, `Hangs -> `Diverge (List.sort compare x, [])
  | `Hangs, `Outs y -> `Diverge ([], List.sort compare y)

let check (s : Subject.t) (space : Reach.space) =
  let model = s.Subject.model in
  let judge =
    match s.Subject.independence with
    | Subject.Semantic -> fun st a b -> Explore.op_independent model st a b
    | Subject.Static ->
      let kind = model.Obj_model.kind and init = model.Obj_model.init in
      fun st a b -> (
        match Explore.static_independent ~kind ~init a b with
        | Some r -> r
        | None -> Explore.op_independent model st a b)
    | Subject.Declared p -> fun _st a b -> p a b
  in
  let rec op_pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) (a :: rest) @ op_pairs rest
  in
  let pairs = op_pairs s.Subject.alphabet in
  let contexts = ref 0 and independent = ref 0 and dependent = ref 0 in
  let race = ref None in
  (try
     List.iter
       (fun st ->
         List.iter
           (fun (a, b) ->
             incr contexts;
             if judge st a b then begin
               incr independent;
               match diamond model st a b with
               | `Commute -> ()
               | `Diverge (ab, ba) ->
                 race := Some { state = st; a; b; ab; ba };
                 raise Exit
             end
             else incr dependent)
           pairs)
       space.Reach.states
   with Exit -> ());
  match !race with
  | Some r -> Error r
  | None ->
    Ok
      {
        pairs = List.length pairs;
        contexts = !contexts;
        independent = !independent;
        dependent = !dependent;
      }
