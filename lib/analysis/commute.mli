(** Commutation race detector.

    The source-set reduction prunes a transition when a sibling branch
    already covered an {e independent} one; for two ops on the same object
    the independence judgment is {!Subc_sim.Explore.op_independent}.  If
    that judgment ever answered "independent" for a pair that does not
    actually commute at some reachable state — a {e commutation race} — the
    reduction could prune a schedule with a genuinely different outcome and
    the checker would silently lose counterexamples.

    This check enumerates every unordered op pair (same-op pairs included:
    two processes may issue the same op) at every reachable state, asks the
    subject's independence judgment, and for every "independent" answer
    recomputes both orders from scratch — no cache, no sharing with the
    explorer — requiring identical sorted (final state, response{_a},
    response{_b}) outcome sets under every resolution of nondeterminism,
    with hangs preserved (neither order may turn a completing invocation
    into a hang).  A divergence is returned as a concrete witness. *)

open Subc_sim

type stats = {
  pairs : int;  (** unordered op pairs drawn from the alphabet *)
  contexts : int;  (** (state, pair) combinations examined *)
  independent : int;  (** contexts judged independent — each one certified *)
  dependent : int;  (** contexts judged dependent — no obligation *)
}

type race = {
  state : Value.t;
  a : Op.t;
  b : Op.t;
  ab : (Value.t * Value.t * Value.t) list;
      (** sorted (final, resp{_a}, resp{_b}) outcomes of [a] then [b];
          [[]] encodes "some completion hangs" *)
  ba : (Value.t * Value.t * Value.t) list;  (** same for [b] then [a] *)
}

val pp_race : Format.formatter -> race -> unit

val diamond :
  Obj_model.t ->
  Value.t ->
  Op.t ->
  Op.t ->
  [ `Commute | `Diverge of
      (Value.t * Value.t * Value.t) list * (Value.t * Value.t * Value.t) list ]
(** Ground truth for one context, computed fresh.  @raise Reach.Flaw on an
    impure or unsupported [apply]. *)

val check : Subject.t -> Reach.space -> (stats, race) result
(** @raise Reach.Flaw when [apply] misbehaves on a diamond completion. *)
