open Subc_sim

type stats = { group_order : int; states : int; checked : int }

type violation =
  | Not_a_group of string
  | Init_moved of { pi : Symmetry.perm; image : Value.t }
  | Alphabet_escape of { pi : Symmetry.perm; op : Op.t; image : Op.t }
  | Not_equivariant of {
      pi : Symmetry.perm;
      state : Value.t;
      op : Op.t;
      lhs : (Value.t * Value.t) list;
      rhs : (Value.t * Value.t) list;
    }

let pp_perm ppf pi =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int pi)))

let pp_succs ppf = function
  | [] -> Format.fprintf ppf "hang"
  | succs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (s, r) ->
           Format.fprintf ppf "%a/%a" Value.pp s Value.pp r))
      succs

let pp_violation ppf = function
  | Not_a_group msg -> Format.fprintf ppf "declared perms are not a group: %s" msg
  | Init_moved { pi; image } ->
    Format.fprintf ppf "%a moves the initial state to %a" pp_perm pi Value.pp
      image
  | Alphabet_escape { pi; op; image } ->
    Format.fprintf ppf "%a maps alphabet op %a to %a, outside the alphabet"
      pp_perm pi Op.pp op Op.pp image
  | Not_equivariant { pi; state; op; lhs; rhs } ->
    Format.fprintf ppf
      "@[<v>%a is not an automorphism at state %a, op %a:@,\
       pi.apply(s,o)      = %a@,\
       apply(pi.s, pi.o) = %a@]"
      pp_perm pi Value.pp state Op.pp op pp_succs lhs pp_succs rhs

let act_op sym pi (op : Op.t) =
  Op.make op.Op.name (List.map (Symmetry.act sym pi) op.Op.args)

let compose p q = Array.init (Array.length p) (fun i -> p.(q.(i)))

let check (s : Subject.t) (space : Reach.space) =
  let sym = s.Subject.symmetry in
  let perms = Symmetry.perms sym in
  let model = s.Subject.model in
  let n = Symmetry.n_procs sym in
  let violation = ref None in
  let checked = ref 0 in
  let fail v =
    violation := Some v;
    raise Exit
  in
  (try
     (* Group sanity: the canonicalization minimum is a true orbit minimum
        only if the perms form a group (identity and closure; inverses
        follow for finite closed subsets). *)
     if not (List.exists (fun p -> p = Symmetry.identity n) perms) then
       fail (Not_a_group "identity permutation missing");
     List.iter
       (fun p ->
         List.iter
           (fun q ->
             if not (List.mem (compose p q) perms) then
               fail
                 (Not_a_group
                    (Format.asprintf "composition %a o %a escapes" pp_perm p
                       pp_perm q)))
           perms)
       perms;
     List.iter
       (fun pi ->
         (* The initial state must be a fixpoint: orbits of reachable
            states are otherwise not closed under the group action. *)
         let init_image = Symmetry.act sym pi model.Obj_model.init in
         if not (Value.equal init_image model.Obj_model.init) then
           fail (Init_moved { pi; image = init_image });
         List.iter
           (fun op ->
             let image = act_op sym pi op in
             if not (List.exists (Op.equal image) s.Subject.alphabet) then
               fail (Alphabet_escape { pi; op; image }))
           s.Subject.alphabet;
         List.iter
           (fun st ->
             List.iter
               (fun op ->
                 incr checked;
                 let lhs =
                   Reach.successors_exn model st op
                   |> List.map (fun (s', r) ->
                          (Symmetry.act sym pi s', Symmetry.act sym pi r))
                   |> List.sort compare
                 in
                 let rhs =
                   Reach.successors_exn model (Symmetry.act sym pi st)
                     (act_op sym pi op)
                   |> List.sort compare
                 in
                 if lhs <> rhs then
                   fail (Not_equivariant { pi; state = st; op; lhs; rhs }))
               s.Subject.alphabet)
           space.Reach.states)
       perms
   with Exit -> ());
  match !violation with
  | Some v -> Error v
  | None ->
    Ok
      {
        group_order = List.length perms;
        states = space.Reach.n_states;
        checked = !checked;
      }
