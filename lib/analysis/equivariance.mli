(** Symmetry-equivariance checker.

    The symmetry reduction memoizes configurations by canonical orbit
    representatives, which is sound only if the declared permutation group
    really is an automorphism group of the transition system.  The
    configuration-level action factors through each object's state, so the
    object-level obligations are: every group element fixes the initial
    state, maps the protocol's op alphabet into itself, and commutes with
    [apply] — {m \pi \cdot \mathrm{apply}(s, o) =
    \mathrm{apply}(\pi \cdot s, \pi \cdot o)} as successor {e sets}
    (states and responses both renamed, hangs preserved) — at every
    reachable state.  This module verifies all of that exhaustively for the
    subject's declared group, plus two group-theory sanity conditions
    (identity present, closure under composition), and reports the first
    violation with a concrete witness.

    Out of scope, and documented as caller obligations in
    {!Subc_sim.Symmetry}: invariance of the {e checked property} under
    renaming, and that orbit-related processes run the same program. *)

open Subc_sim

type stats = {
  group_order : int;
  states : int;
  checked : int;  (** (group element, state, op) equivariance triples *)
}

type violation =
  | Not_a_group of string  (** identity missing or composition escapes *)
  | Init_moved of { pi : Symmetry.perm; image : Value.t }
  | Alphabet_escape of { pi : Symmetry.perm; op : Op.t; image : Op.t }
      (** the renamed op is not an op the protocol may issue *)
  | Not_equivariant of {
      pi : Symmetry.perm;
      state : Value.t;
      op : Op.t;
      lhs : (Value.t * Value.t) list;  (** sorted {m \pi \cdot apply(s,o)} *)
      rhs : (Value.t * Value.t) list;
          (** sorted {m apply(\pi \cdot s, \pi \cdot o)} *)
    }

val pp_violation : Format.formatter -> violation -> unit

val act_op : Symmetry.t -> Symmetry.perm -> Op.t -> Op.t
(** The data action lifted to operations: the name is fixed, every argument
    is renamed. *)

val check : Subject.t -> Reach.space -> (stats, violation) result
(** @raise Reach.Flaw when [apply] misbehaves on a renamed state. *)
