open Subc_sim

type stats = {
  states : int;
  pairs : int;
  always : int;
  never : int;
  state_dependent : int;
}

type t = {
  fp_kind : string;
  fp_init : Value.t;
  fp_alphabet : Op.t list;
  fp_pairs : ((Op.t * Op.t) * Explore.static_class) list;
  fp_stats : stats;
}

(* Unordered pairs (diagonal included), each in canonical Op.compare
   order — the order the explorer's table lookup normalizes to. *)
let op_pairs alphabet =
  let rec go = function
    | [] -> []
    | a :: rest ->
      List.map
        (fun b -> if Op.compare a b <= 0 then (a, b) else (b, a))
        (a :: rest)
      @ go rest
  in
  go alphabet

let classify (s : Subject.t) (space : Reach.space) =
  let model = s.Subject.model in
  (* A decided class is a claim about every reachable state; only a closed
     untruncated enumeration supports it.  Op-budgeted subjects (counters,
     queues) see a prefix of an unbounded space, so they get full semantic
     fallback. *)
  let exact =
    (not space.Reach.truncated) && s.Subject.bound = Subject.Closure
  in
  let pairs = op_pairs s.Subject.alphabet in
  let always = ref 0 and never = ref 0 and state_dependent = ref 0 in
  let classed =
    List.map
      (fun (a, b) ->
        let all = ref true and none = ref true in
        List.iter
          (fun st ->
            if Explore.op_independent model st a b then none := false
            else all := false)
          space.Reach.states;
        let cls =
          if not exact then Explore.State_dependent
          else if !all then Explore.Always_commute
          else if !none then Explore.Never_commute
          else Explore.State_dependent
        in
        (match cls with
        | Explore.Always_commute -> incr always
        | Explore.Never_commute -> incr never
        | Explore.State_dependent -> incr state_dependent);
        ((a, b), cls))
      pairs
  in
  {
    fp_kind = model.Obj_model.kind;
    fp_init = model.Obj_model.init;
    fp_alphabet = s.Subject.alphabet;
    fp_pairs = classed;
    fp_stats =
      {
        states = space.Reach.n_states;
        pairs = List.length pairs;
        always = !always;
        never = !never;
        state_dependent = !state_dependent;
      };
  }

let of_subject s =
  match Reach.enumerate s with
  | Error f -> Error f
  | Ok space -> Ok (classify s space, space)

let install t =
  Explore.install_static_independence ~kind:t.fp_kind ~init:t.fp_init
    ~alphabet:t.fp_alphabet t.fp_pairs

type check_stats = {
  c_states : int;
  c_contexts : int;
  c_decided : int;
  c_fallback : int;
}

type mismatch = {
  m_state : Value.t;
  m_a : Op.t;
  m_b : Op.t;
  m_static : bool;
  m_semantic : bool;
}

let pp_mismatch ppf m =
  Format.fprintf ppf
    "installed static table decides independent(%a, %a) = %b at state %a \
     but the semantic diamond says %b"
    Op.pp m.m_a Op.pp m.m_b m.m_static Value.pp m.m_state m.m_semantic

let validate (s : Subject.t) (space : Reach.space) =
  let model = s.Subject.model in
  let kind = model.Obj_model.kind and init = model.Obj_model.init in
  let pairs = op_pairs s.Subject.alphabet in
  let contexts = ref 0 and decided = ref 0 and fallback = ref 0 in
  let bad = ref None in
  (try
     List.iter
       (fun st ->
         List.iter
           (fun (a, b) ->
             incr contexts;
             match Explore.static_independent ~kind ~init a b with
             | None -> incr fallback
             | Some r ->
               incr decided;
               let sem = Explore.op_independent model st a b in
               if r <> sem then begin
                 bad :=
                   Some
                     {
                       m_state = st;
                       m_a = a;
                       m_b = b;
                       m_static = r;
                       m_semantic = sem;
                     };
                 raise Exit
               end)
           pairs)
       space.Reach.states
   with Exit -> ());
  match !bad with
  | Some m -> Error m
  | None ->
    Ok
      {
        c_states = space.Reach.n_states;
        c_contexts = !contexts;
        c_decided = !decided;
        c_fallback = !fallback;
      }
