(** Footprint certificates: static same-object commutation tables for the
    {!Subc_sim.Explore.independence} fast path.

    {!Subc_sim.Explore.op_independent} — the semantic judgment the
    source-set reduction consumes — is a state-local diamond computation.
    For most (op, op) pairs the answer is the same at {e every} reachable
    state of the object, so it can be decided once, statically, and the
    explorer's hot path can skip both the diamond and the memo probe.  This
    module classifies each unordered alphabet pair over the subject's
    enumerated state space:

    - [Always_commute]: independent at every enumerated state;
    - [Never_commute]: dependent at every enumerated state;
    - [State_dependent]: mixed — the explorer must fall back to the
      semantic judgment.

    Soundness: a decided class reproduces [op_independent] {e exactly} on
    the states it was enumerated over, so exploration counts and verdicts
    under [~independence:Static] equal the semantic ones.  The enumeration
    covers all states reachable under the subject's declared alphabet; the
    classification is only exact when that space {e closed}
    ({!Subject.Closure}, not truncated) — otherwise every pair is demoted
    to [State_dependent] (full fallback, trivially equivalent).  Runs that
    issue ops outside the declared alphabet can drive an object into
    states the enumeration never saw; the [analyze --lint] footprint gate
    ({!Absint}) is what discharges that side condition, and
    [~independence:Both] cross-validates it empirically
    ([commute.static_mismatches]). *)

open Subc_sim

type stats = {
  states : int;
  pairs : int;
  always : int;
  never : int;
  state_dependent : int;
}

type t = {
  fp_kind : string;
  fp_init : Value.t;
  fp_alphabet : Op.t list;
  fp_pairs : ((Op.t * Op.t) * Explore.static_class) list;
  fp_stats : stats;
}

val classify : Subject.t -> Reach.space -> t
(** Classify every unordered alphabet pair over [space].  Exact (decided
    classes) only for a closed, untruncated {!Subject.Closure} space;
    everything is [State_dependent] otherwise. *)

val of_subject : Subject.t -> (t * Reach.space, Reach.flaw) result
(** Enumerate the subject's space and classify. *)

val install : t -> unit
(** Publish into the global {!Subc_sim.Explore.install_static_independence}
    registry (merge with demotion on conflicting reinstalls). *)

type check_stats = { c_states : int; c_contexts : int; c_decided : int; c_fallback : int }

type mismatch = {
  m_state : Value.t;
  m_a : Op.t;
  m_b : Op.t;
  m_static : bool;
  m_semantic : bool;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val validate : Subject.t -> Reach.space -> (check_stats, mismatch) result
(** Check the {e installed} tables (not a local classification — this
    catches kind/init collisions and merge bugs) against a fresh
    [op_independent] at every enumerated state and alphabet pair. *)
