open Subc_sim

type space = {
  states : Value.t list;
  n_states : int;
  n_edges : int;
  depth : int;
  truncated : bool;
}

type flaw =
  | Impure of {
      state : Value.t;
      op : Op.t;
      first : (Value.t * Value.t) list;
      second : (Value.t * Value.t) list;
    }
  | Unsupported of { state : Value.t; op : Op.t; error : string }

let pp_succs ppf succs =
  match succs with
  | [] -> Format.fprintf ppf "hang"
  | _ ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (s, r) ->
           Format.fprintf ppf "%a/%a" Value.pp s Value.pp r))
      succs

let pp_flaw ppf = function
  | Impure { state; op; first; second } ->
    Format.fprintf ppf
      "apply is impure: %a at %a returned %a then %a on identical inputs"
      Op.pp op Value.pp state pp_succs first pp_succs second
  | Unsupported { state; op; error } ->
    Format.fprintf ppf "apply raised on %a at %a: %s" Op.pp op Value.pp state
      error

exception Flaw of flaw

let successors (model : Obj_model.t) st op =
  match
    let first = model.Obj_model.apply st op in
    let second = model.Obj_model.apply st op in
    (first, second)
  with
  | first, second ->
    if List.sort compare first = List.sort compare second then Ok first
    else Error (Impure { state = st; op; first; second })
  | exception e ->
    Error (Unsupported { state = st; op; error = Printexc.to_string e })

let successors_exn model st op =
  match successors model st op with Ok s -> s | Error f -> raise (Flaw f)

let enumerate (s : Subject.t) =
  let visited : (Value.t, unit) Hashtbl.t = Hashtbl.create 97 in
  let order = ref [] in
  let n_edges = ref 0 in
  let max_layer = ref 0 in
  let truncated = ref false in
  let flaw = ref None in
  let q = Queue.create () in
  let init = s.Subject.model.Obj_model.init in
  Hashtbl.replace visited init ();
  order := [ init ];
  Queue.push (init, 0) q;
  (try
     while not (Queue.is_empty q) do
       let st, d = Queue.pop q in
       if d > !max_layer then max_layer := d;
       let expandable =
         match s.Subject.bound with
         | Subject.Closure -> true
         | Subject.Ops d_max -> d < d_max
       in
       List.iter
         (fun op ->
           match successors s.Subject.model st op with
           | Error f ->
             flaw := Some f;
             raise Exit
           | Ok succs ->
             List.iter
               (fun (st', _) ->
                 incr n_edges;
                 if expandable && not (Hashtbl.mem visited st') then begin
                   if Hashtbl.length visited >= s.Subject.max_states then begin
                     truncated := true;
                     raise Exit
                   end;
                   Hashtbl.replace visited st' ();
                   order := st' :: !order;
                   Queue.push (st', d + 1) q
                 end)
               succs)
         s.Subject.alphabet
     done
   with Exit -> ());
  match !flaw with
  | Some f -> Error f
  | None ->
    Ok
      {
        states = List.rev !order;
        n_states = Hashtbl.length visited;
        n_edges = !n_edges;
        depth = !max_layer;
        truncated = !truncated;
      }
