(** Reachable-state enumeration with purity checking.

    Every downstream check (commutation, equivariance, classification)
    quantifies over the states of the object reachable from [init] within
    the subject's op alphabet.  This module enumerates that space by
    breadth-first search and, at every expansion, discharges the two
    assumptions the explorer's memoization silently makes about [apply]:

    - {b purity}: applying the same op to the same state twice yields the
      same successor set (compared as multisets — successor order is
      irrelevant everywhere downstream);
    - {b totality on the alphabet}: [apply] never raises ([Bad_op],
      assertion failures) on a reachable state and an alphabet op.  An
      {e empty} successor list is not a flaw — it is the paper's hang
      outcome and is handled by the classification lint. *)

open Subc_sim

type space = {
  states : Value.t list;  (** BFS order; the initial state comes first *)
  n_states : int;
  n_edges : int;  (** (state, op, successor) transitions expanded *)
  depth : int;  (** deepest BFS layer expanded *)
  truncated : bool;  (** the state budget was hit before the space closed *)
}

type flaw =
  | Impure of {
      state : Value.t;
      op : Op.t;
      first : (Value.t * Value.t) list;
      second : (Value.t * Value.t) list;  (** two runs, two answers *)
    }
  | Unsupported of { state : Value.t; op : Op.t; error : string }
      (** [apply] raised — the alphabet oversteps the model *)

val pp_flaw : Format.formatter -> flaw -> unit

exception Flaw of flaw

val successors :
  Obj_model.t -> Value.t -> Op.t -> ((Value.t * Value.t) list, flaw) result
(** [successors model st op] applies [op] twice, checks the two runs agree
    as multisets, and captures exceptions as {!Unsupported}. *)

val successors_exn : Obj_model.t -> Value.t -> Op.t -> (Value.t * Value.t) list
(** Like {!successors} but raises {!Flaw}; for use inside checks that walk
    beyond the enumerated states (diamond completions, renamed states). *)

val enumerate : Subject.t -> (space, flaw) result
(** BFS from [init] over the alphabet.  With bound [Ops d], states first
    seen in layer [d] are still purity-checked (all alphabet ops applied)
    but their successors are not enqueued. *)
