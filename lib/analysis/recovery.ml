open Subc_sim

type stats = {
  states : int;
  checked : int;
  group_order : int;
  identity : bool;  (** the object is all-persistent: recovery is a no-op *)
}

type violation =
  | Not_idempotent of { state : Value.t; once : Value.t; twice : Value.t }
  | Escapes_space of { state : Value.t; image : Value.t }
  | Not_equivariant of {
      pi : Symmetry.perm;
      state : Value.t;
      lhs : Value.t;  (** persist (pi . state) *)
      rhs : Value.t;  (** pi . persist state *)
    }

let pp_perm ppf pi =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int pi)))

let pp_violation ppf = function
  | Not_idempotent { state; once; twice } ->
    Format.fprintf ppf
      "persist is not idempotent at %a: persist = %a, persist^2 = %a"
      Value.pp state Value.pp once Value.pp twice
  | Escapes_space { state; image } ->
    Format.fprintf ppf
      "persist maps reachable state %a to %a, outside the reachable space"
      Value.pp state Value.pp image
  | Not_equivariant { pi; state; lhs; rhs } ->
    Format.fprintf ppf
      "@[<v>persist does not commute with %a at state %a:@,\
       persist(pi.s) = %a@,\
       pi.persist(s) = %a@]"
      pp_perm pi Value.pp state Value.pp lhs Value.pp rhs

(* The three recovery obligations, each over every reachable state:
   idempotence (recovering twice is recovering once — a recovered
   configuration re-crashed and re-recovered must not drift), closure
   (the recovered state is itself reachable, so certificates about the
   reachable space cover every state the crash-recovery explorer can
   produce), and equivariance (recovery commutes with the declared
   symmetry action — the orbit of a recovered state is the recovery of
   the orbit, which is what lets the symmetry reduction quotient recover
   edges).  For an all-persistent object all three hold definitionally;
   the checks still run, pinning [persist_state]'s identity behavior. *)
let check (s : Subject.t) (space : Reach.space) =
  let model = s.Subject.model in
  let sym = s.Subject.symmetry in
  let perms = Symmetry.perms sym in
  let in_space v = List.exists (Value.equal v) space.Reach.states in
  let violation = ref None in
  let checked = ref 0 in
  let fail v =
    violation := Some v;
    raise Exit
  in
  (try
     List.iter
       (fun st ->
         let once = Obj_model.persist_state model st in
         incr checked;
         let twice = Obj_model.persist_state model once in
         if not (Value.equal once twice) then
           fail (Not_idempotent { state = st; once; twice });
         if not (in_space once) then
           fail (Escapes_space { state = st; image = once });
         List.iter
           (fun pi ->
             incr checked;
             let lhs =
               Obj_model.persist_state model (Symmetry.act sym pi st)
             in
             let rhs = Symmetry.act sym pi once in
             if not (Value.equal lhs rhs) then
               fail (Not_equivariant { pi; state = st; lhs; rhs }))
           perms)
       space.Reach.states
   with Exit -> ());
  match !violation with
  | Some v -> Error v
  | None ->
    Ok
      {
        states = space.Reach.n_states;
        checked = !checked;
        group_order = List.length perms;
        identity = Obj_model.all_persistent model;
      }
