(** Recovery-projection obligations: what the crash-recovery fault model
    ({!Subc_sim.Config.recover}) assumes about each object's [persist]
    projection, certified over the object's reachable state space.

    Three obligations per subject: [persist] is idempotent, maps the
    reachable space into itself (closure), and commutes with the declared
    symmetry group (equivariance) — the last is what keeps the symmetry
    reduction sound once recover edges enter the transition system.
    All-persistent objects (the default) discharge all three
    definitionally; the checks still run against the concrete
    [persist_state] to pin that. *)

open Subc_sim

type stats = {
  states : int;
  checked : int;
  group_order : int;
  identity : bool;  (** the object is all-persistent: recovery is a no-op *)
}

type violation =
  | Not_idempotent of { state : Value.t; once : Value.t; twice : Value.t }
  | Escapes_space of { state : Value.t; image : Value.t }
  | Not_equivariant of {
      pi : Symmetry.perm;
      state : Value.t;
      lhs : Value.t;
      rhs : Value.t;
    }

val pp_violation : Format.formatter -> violation -> unit
val check : Subject.t -> Reach.space -> (stats, violation) result
