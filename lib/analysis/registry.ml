open Subc_sim
module O = Subc_objects
module C = Subc_core

type entry = {
  family : string;
  doc : string;
  subjects : Subject.t list;
  protocols : Absint.protocol list;
}

(* Harness conventions: proposals are 100 + process index, two or three
   processes per instance. *)
let tok j = Value.Int (100 + j)
let op = Op.make
let toks n = List.init n tok

(* The full symmetric group acting on proposal tokens only — for objects
   with scalar states and no process-indexed structure (registers, CAS,
   swap, consensus cells). *)
let value_full n = Symmetry.standard ~n ~input_base:100 ~map_ids:false `Full

(* The standard harness action: process ids and proposals both renamed. *)
let harness n grp = Symmetry.standard ~n ~input_base:100 grp

let register ?(name = "register") ?(group = `Scalar) () =
  let symmetry, group_name =
    match group with
    | `Scalar -> (value_full 2, "full")
    | `Rotations n -> (harness n `Rotations, "rotations")
    | `Trivial -> (Symmetry.trivial ~n:1, "trivial")
  in
  Subject.make ~name ~model:O.Register.model_bot
    ~alphabet:[ op "read" []; op "write" [ tok 0 ]; op "write" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~symmetry ~group_name
    ~value_oblivious:true ~values:(toks 2) ()

let doorway ~n =
  let opened = Value.Sym "opened" and closed = Value.Sym "closed" in
  Subject.make ~name:"doorway-register"
    ~model:(O.Register.model opened)
    ~alphabet:[ op "read" []; op "write" [ opened ]; op "write" [ closed ] ]
    ~expected:Subject.Deterministic ~symmetry:(harness n `Rotations)
    ~group_name:"rotations" ~value_oblivious:true ~values:[ opened; closed ]
    ()

let cas =
  Subject.make ~name:"cas" ~model:O.Cas_obj.model_bot
    ~alphabet:
      [
        op "read" [];
        op "cas" [ Value.Bot; tok 0 ];
        op "cas" [ Value.Bot; tok 1 ];
        op "cas" [ tok 0; tok 1 ];
        op "cas" [ tok 1; tok 0 ];
      ]
    ~expected:Subject.Deterministic ~symmetry:(value_full 2) ~group_name:"full"
    ~value_oblivious:true ~values:(toks 2) ()

let tas =
  Subject.make ~name:"test_and_set" ~model:O.Tas_obj.model
    ~alphabet:[ op "test_and_set" []; op "read" [] ]
    ~expected:Subject.Deterministic ()

let swap =
  Subject.make ~name:"swap" ~model:O.Swap_obj.model_bot
    ~alphabet:[ op "read" []; op "swap" [ tok 0 ]; op "swap" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~symmetry:(value_full 2) ~group_name:"full"
    ~value_oblivious:true ~values:(toks 2) ()

let counter ~ops =
  Subject.make ~name:"counter" ~model:O.Counter_obj.model
    ~alphabet:[ op "inc" []; op "read" [] ]
    ~expected:Subject.Deterministic ~bound:(Subject.Ops ops) ()

let faa ~ops =
  Subject.make ~name:"fetch_and_add" ~model:O.Faa_obj.model
    ~alphabet:[ op "faa" [ Value.Int 1 ]; op "faa" [ Value.Int 2 ]; op "read" [] ]
    ~expected:Subject.Deterministic ~bound:(Subject.Ops ops) ()

let queue ~ops =
  let a = Value.Sym "a" and b = Value.Sym "b" in
  Subject.make ~name:"queue"
    ~model:(O.Queue_obj.model [])
    ~alphabet:[ op "enq" [ a ]; op "enq" [ b ]; op "deq" [] ]
    ~expected:Subject.Deterministic ~bound:(Subject.Ops ops)
    ~value_oblivious:true ~values:[ a; b ] ()

let consensus =
  Subject.make ~name:"consensus" ~model:O.Consensus_obj.model
    ~alphabet:[ op "propose" [ tok 0 ]; op "propose" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~symmetry:(value_full 2) ~group_name:"full"
    ~value_oblivious:true ~values:(toks 2) ()

let snapshot ?(name = "snapshot") ~n (grp : [ `Full | `Rotations ]) =
  let group_name = match grp with `Full -> "full" | `Rotations -> "rotations" in
  let grp = (grp :> [ `Full | `Rotations | `Trivial ]) in
  Subject.make ~name
    ~model:(O.Snapshot_obj.model ~n)
    ~alphabet:
      (op "scan" []
      :: List.concat_map
           (fun i -> List.map (fun j -> op "update" [ Value.Int i; tok j ]) (List.init n Fun.id))
           (List.init n Fun.id))
    ~expected:Subject.Deterministic ~symmetry:(harness n grp) ~group_name
    ~value_oblivious:true ~values:(toks n) ()

let wrn_alphabet k =
  List.concat_map
    (fun i -> List.map (fun j -> op "wrn" [ Value.Int i; tok j ]) (List.init k Fun.id))
    (List.init k Fun.id)

let wrn ?(name = "wrn") ~k grp =
  let symmetry, group_name =
    match grp with
    | `Rotations -> (harness k `Rotations, "rotations")
    | `Trivial -> (Symmetry.erasure_only ~n:k, "trivial")
  in
  Subject.make ~name ~model:(O.Wrn.model ~k) ~alphabet:(wrn_alphabet k)
    ~expected:Subject.Deterministic ~symmetry ~group_name ~value_oblivious:true
    ~values:(toks k) ()

let one_shot_wrn ?(name = "one_shot_wrn") ~k grp =
  let symmetry, group_name =
    match grp with
    | `Rotations -> (harness k `Rotations, "rotations")
    | `Trivial -> (Symmetry.erasure_only ~n:k, "trivial")
  in
  Subject.make ~name
    ~model:(O.One_shot_wrn.model ~k)
    ~alphabet:(wrn_alphabet k) ~expected:Subject.Deterministic ~may_hang:true
    ~symmetry ~group_name ~value_oblivious:true ~values:(toks k) ()

let set_consensus ~n ~k =
  Subject.make ~name:"set_consensus"
    ~model:(O.Set_consensus_obj.model ~n ~k)
    ~alphabet:(List.map (fun i -> op "propose" [ tok i ]) (List.init n Fun.id))
    ~expected:Subject.Nondeterministic ~may_hang:true ~symmetry:(harness n `Full)
    ~group_name:"full" ~value_oblivious:true ~values:(toks n) ()

let sse ~k ~j grp =
  let symmetry, group_name =
    match grp with
    | `Full -> (Symmetry.standard ~n:k `Full, "full")
    | `Rotations -> (Symmetry.standard ~n:k `Rotations, "rotations")
  in
  Subject.make ~name:"strong_set_election"
    ~model:(O.Sse_obj.model ~k ~j)
    ~alphabet:(List.map (fun i -> op "propose" [ Value.Int i ]) (List.init k Fun.id))
    ~expected:Subject.Nondeterministic ~may_hang:true ~symmetry ~group_name ()

(* ------------------------------------------------------------------ *)
(* Protocol exemplars: one checkable program per process for each
   family, fed to the abstract interpreter ([Absint]) by the
   [analyze --lint] gate.  Instance sizes match the subjects above, so
   every op a protocol issues falls inside a declared alphabet. *)

let protocol = Absint.protocol

let alg2_protocols () =
  let store, t = C.Alg2.alloc Store.empty ~k:3 ~one_shot:true in
  List.init 3 (fun i ->
      protocol
        ~name:(Printf.sprintf "alg2.propose%d" i)
        ~store
        (C.Alg2.propose t ~i (tok i)))

let alg3_protocols () =
  let store, t =
    C.Alg3.alloc Store.empty ~k:2 ~flavor:C.Alg3.Plain_wrn
      ~renamer:(C.Alg3.Rename_identity 2) ()
  in
  List.init 2 (fun i ->
      protocol
        ~name:(Printf.sprintf "alg3.propose%d" i)
        ~store
        (C.Alg3.propose t ~slot:i ~id:i (tok i)))

let alg4_protocols () =
  let store, t = C.Alg4.alloc Store.empty ~k:2 in
  List.init 2 (fun i ->
      protocol
        ~name:(Printf.sprintf "alg4.rlx_wrn%d" i)
        ~store
        (C.Alg4.rlx_wrn t ~i (tok i)))

let alg5_protocols () =
  let store, t = C.Alg5.alloc Store.empty ~k:3 () in
  List.init 3 (fun i ->
      protocol
        ~name:(Printf.sprintf "alg5.wrn%d" i)
        ~store
        (C.Alg5.wrn t ~i (tok i)))

let alg6_protocols () =
  let store, t = C.Alg6.alloc Store.empty ~n:3 ~k:2 ~one_shot:true in
  List.init 3 (fun i ->
      protocol
        ~name:(Printf.sprintf "alg6.propose%d" i)
        ~store
        (C.Alg6.propose t ~i (tok i)))

let one_shot_wrn_protocols () =
  let store, h = Store.alloc Store.empty (O.One_shot_wrn.model ~k:3) in
  List.init 3 (fun i ->
      protocol
        ~name:(Printf.sprintf "1swrn.wrn%d" i)
        ~store
        (O.One_shot_wrn.wrn h i (tok i)))

let set_consensus_protocols () =
  let store, h =
    Store.alloc Store.empty (O.Set_consensus_obj.model ~n:3 ~k:2)
  in
  List.init 3 (fun i ->
      protocol
        ~name:(Printf.sprintf "set-consensus.propose%d" i)
        ~store
        (O.Set_consensus_obj.propose h (tok i)))

(* A checkpointed busy-wait in the blessed shape — tail position, the key
   is the entire remaining computation — plus a straight-line sweep over
   the read-modify-write objects: between them the lint pass sees every
   node kind the DSL has. *)
let objects_protocols () =
  let store, w = Store.alloc Store.empty (O.Wrn.model ~k:3) in
  let store, c = Store.alloc store O.Cas_obj.model_bot in
  let store, t = Store.alloc store O.Tas_obj.model in
  let store, r = Store.alloc store O.Register.model_bot in
  let open Program.Syntax in
  let rec retry () =
    let* () = Program.checkpoint (Value.Sym "busy-wait") in
    let* v = O.Wrn.wrn w 0 (tok 0) in
    if Value.is_bot v then retry () else Program.return v
  in
  let sweep =
    let* _ = Program.invoke c (op "cas" [ Value.Bot; tok 0 ]) in
    let* _ = Program.invoke t (op "test_and_set" []) in
    let* _ = Program.invoke r (op "write" [ tok 1 ]) in
    Program.invoke r (op "read" [])
  in
  [
    protocol ~name:"objects.busy-wait" ~store (retry ());
    protocol ~name:"objects.rmw-sweep" ~store sweep;
  ]

(* The per-kind environment the abstract interpreter closes object pools
   under: the union of the declared alphabets of every subject of that
   kind, with the op budget of budgeted subjects bounding the closure of
   unbounded objects. *)
let declared_alphabets subjects =
  let module OS = Set.Make (Op) in
  let kinds =
    List.fold_left
      (fun acc (s : Subject.t) ->
        let kind = s.Subject.model.Obj_model.kind in
        if List.mem kind acc then acc else acc @ [ kind ])
      [] subjects
  in
  List.map
    (fun kind ->
      let of_kind =
        List.filter
          (fun (s : Subject.t) -> s.Subject.model.Obj_model.kind = kind)
          subjects
      in
      let ops =
        OS.elements
          (List.fold_left
             (fun acc (s : Subject.t) ->
               OS.union acc (OS.of_list s.Subject.alphabet))
             OS.empty of_kind)
      in
      let depth =
        List.fold_left
          (fun acc (s : Subject.t) ->
            match (acc, s.Subject.bound) with
            | None, _ | _, Subject.Closure -> None
            | Some d, Subject.Ops d' -> Some (max d d'))
          (match (List.hd of_kind).Subject.bound with
          | Subject.Closure -> None
          | Subject.Ops d -> Some d)
          of_kind
      in
      Absint.decl ?depth ~kind ops)
    kinds

let entries () =
  [
    {
      family = "objects";
      doc =
        "every sequential model in lib/objects, under the strongest group \
         its users declare";
      subjects =
        [
          register ();
          cas;
          tas;
          swap;
          counter ~ops:4;
          faa ~ops:3;
          queue ~ops:4;
          consensus;
          snapshot ~n:3 `Full;
          wrn ~k:3 `Rotations;
          one_shot_wrn ~k:3 `Rotations;
          set_consensus ~n:3 ~k:2;
          sse ~k:3 ~j:2 `Full;
        ];
      protocols = objects_protocols ();
    };
    {
      family = "alg2";
      doc = "Alg2 (k-1 set consensus from one WRN_k): 1sWRN_3 under rotations";
      subjects = [ one_shot_wrn ~k:3 `Rotations ];
      protocols = alg2_protocols ();
    };
    {
      family = "alg3";
      doc =
        "Alg3 (n-process set consensus via renaming): WRN_2 plus the \
         renaming layer's snapshot and registers, identity group";
      subjects =
        [ wrn ~k:2 `Trivial; snapshot ~name:"renaming-snapshot" ~n:2 `Rotations;
          register ~group:`Trivial () ];
      protocols = alg3_protocols ();
    };
    {
      family = "alg4";
      doc =
        "Alg4 (long-lived WRN from 1sWRN + guards): 1sWRN_2 and a guard \
         counter within a 4-op budget";
      subjects = [ one_shot_wrn ~k:2 `Trivial; counter ~ops:4 ];
      protocols = alg4_protocols ();
    };
    {
      family = "alg5";
      doc =
        "Alg5 (SSE completion): sse(3,2), the doorway register and the \
         announce/publish snapshots under rotations";
      subjects =
        [ sse ~k:3 ~j:2 `Rotations; doorway ~n:3;
          snapshot ~name:"announce-snapshot" ~n:3 `Rotations ];
      protocols = alg5_protocols ();
    };
    {
      family = "alg6";
      doc = "Alg6 (group split): per-group WRN_2 and 1sWRN_2, identity group";
      subjects = [ wrn ~k:2 `Trivial; one_shot_wrn ~k:2 `Trivial ];
      protocols = alg6_protocols ();
    };
    {
      family = "1swrn";
      doc = "the 1sWRN_3 harness: rotation group, proposals 100..102";
      subjects = [ one_shot_wrn ~k:3 `Rotations ];
      protocols = one_shot_wrn_protocols ();
    };
    {
      family = "set-consensus";
      doc = "the (3,2)-set-consensus harness: full symmetric group";
      subjects = [ set_consensus ~n:3 ~k:2 ];
      protocols = set_consensus_protocols ();
    };
  ]

let families () = List.map (fun e -> e.family) (entries ())
let find name = List.find_opt (fun e -> e.family = name) (entries ())
