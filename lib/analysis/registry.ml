open Subc_sim
module O = Subc_objects

type entry = { family : string; doc : string; subjects : Subject.t list }

(* Harness conventions: proposals are 100 + process index, two or three
   processes per instance. *)
let tok j = Value.Int (100 + j)
let op = Op.make
let toks n = List.init n tok

(* The full symmetric group acting on proposal tokens only — for objects
   with scalar states and no process-indexed structure (registers, CAS,
   swap, consensus cells). *)
let value_full n = Symmetry.standard ~n ~input_base:100 ~map_ids:false `Full

(* The standard harness action: process ids and proposals both renamed. *)
let harness n grp = Symmetry.standard ~n ~input_base:100 grp

let register ?(name = "register") ?(group = `Scalar) () =
  let symmetry, group_name =
    match group with
    | `Scalar -> (value_full 2, "full")
    | `Rotations n -> (harness n `Rotations, "rotations")
    | `Trivial -> (Symmetry.trivial ~n:1, "trivial")
  in
  Subject.make ~name ~model:O.Register.model_bot
    ~alphabet:[ op "read" []; op "write" [ tok 0 ]; op "write" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~symmetry ~group_name
    ~value_oblivious:true ~values:(toks 2) ()

let doorway ~n =
  let opened = Value.Sym "opened" and closed = Value.Sym "closed" in
  Subject.make ~name:"doorway-register"
    ~model:(O.Register.model opened)
    ~alphabet:[ op "read" []; op "write" [ opened ]; op "write" [ closed ] ]
    ~expected:Subject.Deterministic ~symmetry:(harness n `Rotations)
    ~group_name:"rotations" ~value_oblivious:true ~values:[ opened; closed ]
    ()

let cas =
  Subject.make ~name:"cas" ~model:O.Cas_obj.model_bot
    ~alphabet:
      [
        op "read" [];
        op "cas" [ Value.Bot; tok 0 ];
        op "cas" [ Value.Bot; tok 1 ];
        op "cas" [ tok 0; tok 1 ];
        op "cas" [ tok 1; tok 0 ];
      ]
    ~expected:Subject.Deterministic ~symmetry:(value_full 2) ~group_name:"full"
    ~value_oblivious:true ~values:(toks 2) ()

let tas =
  Subject.make ~name:"test_and_set" ~model:O.Tas_obj.model
    ~alphabet:[ op "test_and_set" []; op "read" [] ]
    ~expected:Subject.Deterministic ()

let swap =
  Subject.make ~name:"swap" ~model:O.Swap_obj.model_bot
    ~alphabet:[ op "read" []; op "swap" [ tok 0 ]; op "swap" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~symmetry:(value_full 2) ~group_name:"full"
    ~value_oblivious:true ~values:(toks 2) ()

let counter ~ops =
  Subject.make ~name:"counter" ~model:O.Counter_obj.model
    ~alphabet:[ op "inc" []; op "read" [] ]
    ~expected:Subject.Deterministic ~bound:(Subject.Ops ops) ()

let faa ~ops =
  Subject.make ~name:"fetch_and_add" ~model:O.Faa_obj.model
    ~alphabet:[ op "faa" [ Value.Int 1 ]; op "faa" [ Value.Int 2 ]; op "read" [] ]
    ~expected:Subject.Deterministic ~bound:(Subject.Ops ops) ()

let queue ~ops =
  let a = Value.Sym "a" and b = Value.Sym "b" in
  Subject.make ~name:"queue"
    ~model:(O.Queue_obj.model [])
    ~alphabet:[ op "enq" [ a ]; op "enq" [ b ]; op "deq" [] ]
    ~expected:Subject.Deterministic ~bound:(Subject.Ops ops)
    ~value_oblivious:true ~values:[ a; b ] ()

let consensus =
  Subject.make ~name:"consensus" ~model:O.Consensus_obj.model
    ~alphabet:[ op "propose" [ tok 0 ]; op "propose" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~symmetry:(value_full 2) ~group_name:"full"
    ~value_oblivious:true ~values:(toks 2) ()

let snapshot ?(name = "snapshot") ~n (grp : [ `Full | `Rotations ]) =
  let group_name = match grp with `Full -> "full" | `Rotations -> "rotations" in
  let grp = (grp :> [ `Full | `Rotations | `Trivial ]) in
  Subject.make ~name
    ~model:(O.Snapshot_obj.model ~n)
    ~alphabet:
      (op "scan" []
      :: List.concat_map
           (fun i -> List.map (fun j -> op "update" [ Value.Int i; tok j ]) (List.init n Fun.id))
           (List.init n Fun.id))
    ~expected:Subject.Deterministic ~symmetry:(harness n grp) ~group_name
    ~value_oblivious:true ~values:(toks n) ()

let wrn_alphabet k =
  List.concat_map
    (fun i -> List.map (fun j -> op "wrn" [ Value.Int i; tok j ]) (List.init k Fun.id))
    (List.init k Fun.id)

let wrn ?(name = "wrn") ~k grp =
  let symmetry, group_name =
    match grp with
    | `Rotations -> (harness k `Rotations, "rotations")
    | `Trivial -> (Symmetry.erasure_only ~n:k, "trivial")
  in
  Subject.make ~name ~model:(O.Wrn.model ~k) ~alphabet:(wrn_alphabet k)
    ~expected:Subject.Deterministic ~symmetry ~group_name ~value_oblivious:true
    ~values:(toks k) ()

let one_shot_wrn ?(name = "one_shot_wrn") ~k grp =
  let symmetry, group_name =
    match grp with
    | `Rotations -> (harness k `Rotations, "rotations")
    | `Trivial -> (Symmetry.erasure_only ~n:k, "trivial")
  in
  Subject.make ~name
    ~model:(O.One_shot_wrn.model ~k)
    ~alphabet:(wrn_alphabet k) ~expected:Subject.Deterministic ~may_hang:true
    ~symmetry ~group_name ~value_oblivious:true ~values:(toks k) ()

let set_consensus ~n ~k =
  Subject.make ~name:"set_consensus"
    ~model:(O.Set_consensus_obj.model ~n ~k)
    ~alphabet:(List.map (fun i -> op "propose" [ tok i ]) (List.init n Fun.id))
    ~expected:Subject.Nondeterministic ~may_hang:true ~symmetry:(harness n `Full)
    ~group_name:"full" ~value_oblivious:true ~values:(toks n) ()

let sse ~k ~j grp =
  let symmetry, group_name =
    match grp with
    | `Full -> (Symmetry.standard ~n:k `Full, "full")
    | `Rotations -> (Symmetry.standard ~n:k `Rotations, "rotations")
  in
  Subject.make ~name:"strong_set_election"
    ~model:(O.Sse_obj.model ~k ~j)
    ~alphabet:(List.map (fun i -> op "propose" [ Value.Int i ]) (List.init k Fun.id))
    ~expected:Subject.Nondeterministic ~may_hang:true ~symmetry ~group_name ()

let entries () =
  [
    {
      family = "objects";
      doc =
        "every sequential model in lib/objects, under the strongest group \
         its users declare";
      subjects =
        [
          register ();
          cas;
          tas;
          swap;
          counter ~ops:4;
          faa ~ops:3;
          queue ~ops:4;
          consensus;
          snapshot ~n:3 `Full;
          wrn ~k:3 `Rotations;
          one_shot_wrn ~k:3 `Rotations;
          set_consensus ~n:3 ~k:2;
          sse ~k:3 ~j:2 `Full;
        ];
    };
    {
      family = "alg2";
      doc = "Alg2 (k-1 set consensus from one WRN_k): 1sWRN_3 under rotations";
      subjects = [ one_shot_wrn ~k:3 `Rotations ];
    };
    {
      family = "alg3";
      doc =
        "Alg3 (n-process set consensus via renaming): WRN_2 plus the \
         renaming layer's snapshot and registers, identity group";
      subjects =
        [ wrn ~k:2 `Trivial; snapshot ~name:"renaming-snapshot" ~n:2 `Rotations;
          register ~group:`Trivial () ];
    };
    {
      family = "alg4";
      doc =
        "Alg4 (long-lived WRN from 1sWRN + guards): 1sWRN_2 and a guard \
         counter within a 4-op budget";
      subjects = [ one_shot_wrn ~k:2 `Trivial; counter ~ops:4 ];
    };
    {
      family = "alg5";
      doc =
        "Alg5 (SSE completion): sse(3,2), the doorway register and the \
         announce/publish snapshots under rotations";
      subjects =
        [ sse ~k:3 ~j:2 `Rotations; doorway ~n:3;
          snapshot ~name:"announce-snapshot" ~n:3 `Rotations ];
    };
    {
      family = "alg6";
      doc = "Alg6 (group split): per-group WRN_2 and 1sWRN_2, identity group";
      subjects = [ wrn ~k:2 `Trivial; one_shot_wrn ~k:2 `Trivial ];
    };
    {
      family = "1swrn";
      doc = "the 1sWRN_3 harness: rotation group, proposals 100..102";
      subjects = [ one_shot_wrn ~k:3 `Rotations ];
    };
    {
      family = "set-consensus";
      doc = "the (3,2)-set-consensus harness: full symmetric group";
      subjects = [ set_consensus ~n:3 ~k:2 ];
    };
  ]

let families () = List.map (fun e -> e.family) (entries ())
let find name = List.find_opt (fun e -> e.family = name) (entries ())
