(** The registry: every analysis subject the CI gate runs.

    One entry per family.  The ["objects"] family covers every sequential
    model in [lib/objects] under the strongest symmetry group its users
    declare; the algorithm families ([alg2] .. [alg6], [1swrn],
    [set-consensus]) register exactly the (object, symmetry spec, op
    alphabet) combinations their harnesses enable in the reduction layer —
    an [analyze] run over the registry therefore certifies every reduction
    the test suite and the CLI can switch on.

    Subjects use small instance sizes (two or three processes) and token
    value alphabets ([100..102], matching the harness proposal convention).
    The value-obliviousness check is what licenses the token abstraction:
    an object certified oblivious behaves identically up to renaming for
    any richer value domain.  Unbounded objects (counters, fetch-and-add,
    queues) carry an op budget ({!Subject.Ops}) sized to their protocols'
    invocation counts; their certificates cover any protocol within the
    budget. *)

type entry = {
  family : string;
  doc : string;  (** one line: what the family's certificate covers *)
  subjects : Subject.t list;
  protocols : Absint.protocol list;
      (** checkable protocol exemplars — one program per process at the
          subjects' instance sizes — for the [analyze --lint] gate *)
}

val entries : unit -> entry list
val families : unit -> string list
val find : string -> entry option

val declared_alphabets : Subject.t list -> Absint.decl list
(** The per-kind environment declaration the abstract interpreter lints a
    family's protocols against: union of the subjects' alphabets per object
    kind, with op-budgeted subjects ({!Subject.Ops}) bounding the abstract
    state-pool closure of unbounded objects. *)
