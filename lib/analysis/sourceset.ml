open Subc_sim

type stats = {
  group_order : int;
  states : int;
  pairs : int;
  equivariance_checks : int;
  diamond_checks : int;
}

type violation =
  | Not_equivariant of {
      pi : Symmetry.perm;
      state : Value.t;
      a : Op.t;
      b : Op.t;
      judged : bool;
      judged_image : bool;
    }
  | Vanishing of { state : Value.t; succ : Value.t; a : Op.t; b : Op.t }

let pp_perm ppf pi =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int pi)))

let pp_violation ppf = function
  | Not_equivariant { pi; state; a; b; judged; judged_image } ->
    Format.fprintf ppf
      "@[<v>independence is not %a-equivariant at state %a:@,\
       independent(%a, %a) = %b@,\
       independent(pi.s: pi.%a, pi.%a) = %b@]"
      pp_perm pi Value.pp state Op.pp a Op.pp b judged Op.pp a Op.pp b
      judged_image
  | Vanishing { state; succ; a; b } ->
    Format.fprintf ppf
      "op %a is independent of %a at state %a yet hangs at the \
       %a-successor %a — a slept transition would vanish instead of being \
       explored elsewhere"
      Op.pp a Op.pp b Value.pp state Op.pp b Value.pp succ

(* The closure obligation the source-set reduction adds on top of
   pairwise commutation ({!Commute}): {b equivariance}.  The independence
   judgment must factor through the declared symmetry group, because the
   explorer sorts siblings and transports sleep sets through the
   canonicalizing permutation — a judgment that distinguished orbit-mates
   would make two claims of the same (state, sleep) key expand
   differently.

   Persistence (the pair staying independent at successors) is
   deliberately {e not} an obligation.  The explorer uses conditional,
   state-local independence: a sleep entry carried into a child is
   re-judged against the taken transition at that child, and its covering
   argument only uses the commutation diamond at the state where the
   judgment was made — sleeping [a] after taking [b] at [s] is justified
   because the diamond at [s] lands [a;b] and [b;a] on the same
   configuration, whatever the judgment later says at [b(s)].  Requiring
   persistence would wrongly refute sound state-dependent judgments (a
   queue's enq/deq commute exactly while the queue is nonempty).

   As a cheap corroboration of the per-state diamond, we do verify that a
   pair judged independent keeps both members applicable one step across
   each other ([Vanishing]): hanging there contradicts the very diamond
   {!Commute} certifies, so on a sound subject this never fires. *)
let check (s : Subject.t) (space : Reach.space) =
  let model = s.Subject.model in
  let sym = s.Subject.symmetry in
  let perms = Symmetry.perms sym in
  let judge =
    match s.Subject.independence with
    | Subject.Semantic -> fun st a b -> Explore.op_independent model st a b
    | Subject.Static ->
      let kind = model.Obj_model.kind and init = model.Obj_model.init in
      fun st a b -> (
        match Explore.static_independent ~kind ~init a b with
        | Some r -> r
        | None -> Explore.op_independent model st a b)
    | Subject.Declared p -> fun _st a b -> p a b
  in
  let rec op_pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) (a :: rest) @ op_pairs rest
  in
  let pairs = op_pairs s.Subject.alphabet in
  let equivariance_checks = ref 0 in
  let diamond_checks = ref 0 in
  let violation = ref None in
  let fail v =
    violation := Some v;
    raise Exit
  in
  (try
     List.iter
       (fun st ->
         List.iter
           (fun (a, b) ->
             let judged = judge st a b in
             List.iter
               (fun pi ->
                 incr equivariance_checks;
                 let judged_image =
                   judge (Symmetry.act sym pi st)
                     (Equivariance.act_op sym pi a)
                     (Equivariance.act_op sym pi b)
                 in
                 if judged <> judged_image then
                   fail
                     (Not_equivariant
                        { pi; state = st; a; b; judged; judged_image }))
               perms;
             if judged then
               List.iter
                 (fun (succ, _resp) ->
                   incr diamond_checks;
                   if Reach.successors_exn model succ a = [] then
                     fail (Vanishing { state = st; succ; a; b }))
                 (Reach.successors_exn model st b))
           pairs)
       space.Reach.states
   with Exit -> ());
  match !violation with
  | Some v -> Error v
  | None ->
    Ok
      {
        group_order = List.length perms;
        states = space.Reach.n_states;
        pairs = List.length pairs;
        equivariance_checks = !equivariance_checks;
        diamond_checks = !diamond_checks;
      }
