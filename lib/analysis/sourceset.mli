(** Source-set closure checker.

    The source-set reduction ({!Subc_sim.Explore}) keys search nodes by
    (configuration, sleep set) pairs and carries sleep entries into
    stolen subtrees.  On top of pairwise commutation (certified by
    {!Commute}) this demands one closure property of the independence
    judgment it consumes:

    - {b equivariance}: {m \mathrm{indep}(s, a, b) \iff
      \mathrm{indep}(\pi \cdot s, \pi \cdot a, \pi \cdot b)} for every
      declared group element {m \pi} and reachable state {m s} — the
      explorer sorts siblings and transports sleep sets through the
      canonicalizing permutation, so a judgment that distinguished
      orbit-mates would make two claims of the same canonical
      (state, sleep) key expand differently.

    {b Persistence is deliberately not an obligation.}  The explorer uses
    conditional (state-local) independence: a carried sleep entry is
    re-judged against the taken transition at every descendant, and its
    covering argument only invokes the commutation diamond at the state
    where the judgment was made.  Demanding that an independent pair stay
    independent at successors would wrongly refute sound state-dependent
    judgments — a queue's enq/deq commute exactly while the queue is
    nonempty, and that is all the reduction uses.

    As a corroboration of the per-state diamond, the checker also
    verifies that a pair judged independent keeps both members applicable
    one step across each other; a hang there ([Vanishing]) contradicts
    the diamond {!Commute} certifies, so it never fires on a sound
    subject.

    Checked exhaustively over the subject's reachable space; the first
    violation is reported with a concrete witness. *)

open Subc_sim

type stats = {
  group_order : int;
  states : int;
  pairs : int;  (** unordered op pairs from the alphabet *)
  equivariance_checks : int;  (** (state, pair, group element) triples *)
  diamond_checks : int;
      (** (state, independent pair, one-step successor) applicability
          corroborations *)
}

type violation =
  | Not_equivariant of {
      pi : Symmetry.perm;
      state : Value.t;
      a : Op.t;
      b : Op.t;
      judged : bool;  (** the judgment at the concrete state *)
      judged_image : bool;  (** the judgment at the renamed state *)
    }
  | Vanishing of { state : Value.t; succ : Value.t; a : Op.t; b : Op.t }
      (** [a] independent of [b] at [state] yet [a] hangs at the
          [b]-successor [succ] *)

val pp_violation : Format.formatter -> violation -> unit

val check : Subject.t -> Reach.space -> (stats, violation) result
(** @raise Reach.Flaw when [apply] misbehaves on a state the closure walk
    visits. *)
