open Subc_sim

type expected_class = Deterministic | Nondeterministic

type independence =
  | Semantic
  | Static
  | Declared of (Op.t -> Op.t -> bool)

type bound = Closure | Ops of int

type t = {
  name : string;
  model : Obj_model.t;
  alphabet : Op.t list;
  expected : expected_class;
  may_hang : bool;
  symmetry : Symmetry.t;
  group_name : string;
  independence : independence;
  value_oblivious : bool;
  values : Value.t list;
  bound : bound;
  max_states : int;
}

let make ~name ~model ~alphabet ~expected ?(may_hang = false)
    ?(symmetry = Symmetry.trivial ~n:1) ?(group_name = "trivial")
    ?(independence = Semantic) ?(value_oblivious = false) ?(values = [])
    ?(bound = Closure) ?(max_states = 20_000) () =
  {
    name;
    model;
    alphabet;
    expected;
    may_hang;
    symmetry;
    group_name;
    independence;
    value_oblivious;
    values;
    bound;
    max_states;
  }
