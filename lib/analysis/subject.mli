(** Analysis subjects: one sequential object model under one declared
    discipline.

    A subject bundles everything the reduction layer {e assumes} about an
    object with everything the analyzer must {e verify}: the op alphabet the
    protocol may issue, the claimed determinism class, whether invocations
    may hang, the permutation group the symmetry reduction will quotient by,
    the independence judgment the source-set reduction will consume, and —
    for objects enabling the full symmetric group — the claim that the
    object is value-oblivious.  The analyzer ({!Analyzer}) checks each claim
    over the subject's reachable state space and returns
    [Subc_check.Verdict.t] findings. *)

open Subc_sim

type expected_class =
  | Deterministic  (** every reachable (state, op) has at most one successor *)
  | Nondeterministic  (** some reachable (state, op) branches *)

(** How same-object independence of two ops is judged. *)
type independence =
  | Semantic
      (** certify {!Explore.op_independent} — the exact judgment the
          source-set layer consumes — against a fresh, uncached diamond
          computation at every reachable state *)
  | Static
      (** certify the judgment the explorer uses under
          [~independence:Static]: the installed
          {!Explore.static_independent} table entry when one decides the
          pair, the semantic diamond otherwise.  Install the subject's
          {!Footprint} table first — with no table this degenerates to
          [Semantic]. *)
  | Declared of (Op.t -> Op.t -> bool)
      (** a state-independent, footprint-style declaration.  Used by the
          negative tests to seed a false independence claim and harvest a
          concrete race witness; a protocol shipping its own static
          judgment would be certified the same way. *)

(** How far the reachable state space extends. *)
type bound =
  | Closure
      (** the state space must reach a fixpoint within [max_states];
          certificates are then unconditional for the subject *)
  | Ops of int
      (** enumerate states reachable by at most [d] operations (for
          unbounded objects such as counters and queues); certificates
          cover any protocol issuing at most [d] ops on the object *)

type t = {
  name : string;
  model : Obj_model.t;
  alphabet : Op.t list;  (** the ops the protocol may issue on the object *)
  expected : expected_class;
  may_hang : bool;  (** some reachable invocation legitimately hangs *)
  symmetry : Symmetry.t;  (** declared automorphism group + data action *)
  group_name : string;  (** "trivial" / "rotations" / "full", for reports *)
  independence : independence;
  value_oblivious : bool;
      (** claimed: renaming data values commutes with [apply] *)
  values : Value.t list;
      (** the data-value tokens the obliviousness check swaps pairwise *)
  bound : bound;
  max_states : int;  (** safety net for {!Closure} enumeration *)
}

val make :
  name:string ->
  model:Obj_model.t ->
  alphabet:Op.t list ->
  expected:expected_class ->
  ?may_hang:bool ->
  ?symmetry:Symmetry.t ->
  ?group_name:string ->
  ?independence:independence ->
  ?value_oblivious:bool ->
  ?values:Value.t list ->
  ?bound:bound ->
  ?max_states:int ->
  unit ->
  t
(** Defaults: no hangs, identity group ([Symmetry.trivial ~n:1], named
    "trivial"), [Semantic] independence, no value-obliviousness claim,
    [Closure] bound with a 20_000-state safety net. *)
