open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register
module Snapshot_api = Subc_rwmem.Snapshot_api

type t = {
  n : int;  (* simulators *)
  m : int;  (* simulated processes *)
  (* Write matrix: component s*m + p is the latest simulated write of
     process p known to simulator s, as Pair (write_count, value). *)
  matrix : Snapshot_api.t;
  (* agreements.(p).(s) decides process p's s-th snapshot. *)
  agreements : Safe_agreement.t array array;
  decisions : Store.handle list;
  codes : Sim_code.t list;
}

let m t = t.m

let alloc store ~simulators ~codes =
  let n = simulators and m = List.length codes in
  let store, matrix = Snapshot_api.primitive store (n * m) in
  let store, agreements =
    List.fold_left
      (fun (store, rows) code ->
        let bound = max 1 (Sim_code.snapshots_bound code) in
        let store, row =
          List.fold_left
            (fun (store, row) _ ->
              let store, sa = Safe_agreement.alloc store ~slots:n in
              (store, sa :: row))
            (store, [])
            (List.init bound Fun.id)
        in
        (store, Array.of_list (List.rev row) :: rows))
      (store, []) codes
  in
  let agreements = Array.of_list (List.rev agreements) in
  let store, decisions = Store.alloc_many store m Register.model_bot in
  (store, { n; m; matrix; agreements; decisions; codes })

(* Per-simulated-process bookkeeping, local to one simulator. *)
type proc_state = {
  cont : Sim_code.t;
  writes : int;
  snaps : int;
  joined : bool;  (* already joined the current snapshot's agreement *)
  decided : Value.t option;
}

let initial_states t =
  List.map
    (fun code -> { cont = code; writes = 0; snaps = 0; joined = false; decided = None })
    t.codes

(* Extract, for each simulated process, the latest write across all
   simulator rows of a real matrix snapshot. *)
let view_of_matrix t view =
  let cells = Value.to_vec view in
  let latest q =
    List.fold_left
      (fun best s ->
        match List.nth cells ((s * t.m) + q) with
        | Value.Pair (Value.Int count, v) -> (
          match best with
          | Some (c, _) when c >= count -> best
          | _ -> Some (count, v))
        | _ -> best)
      None
      (List.init t.n Fun.id)
  in
  Value.Vec
    (List.init t.m (fun q ->
         match latest q with Some (_, v) -> v | None -> Value.Bot))

(* Advance simulated process [p] by as much as possible without blocking;
   returns (new state, made_progress). *)
let advance t ~me p st =
  match st.decided with
  | Some _ -> Program.return (st, false)
  | None -> (
    match st.cont with
    | Sim_code.Return v ->
      let* () = Register.write (List.nth t.decisions p) v in
      Program.return ({ st with decided = Some v }, true)
    | Sim_code.Write (v, rest) ->
      let cell = (me * t.m) + p in
      let* () =
        t.matrix.Snapshot_api.update ~me:cell
          (Value.Pair (Value.Int (st.writes + 1), v))
      in
      Program.return
        ({ st with cont = rest; writes = st.writes + 1 }, true)
    | Sim_code.Snapshot k ->
      let sa = t.agreements.(p).(st.snaps) in
      let* st =
        if st.joined then Program.return st
        else
          let* raw = t.matrix.Snapshot_api.scan in
          let candidate = view_of_matrix t raw in
          let* () = Safe_agreement.join sa ~me candidate in
          Program.return { st with joined = true }
      in
      let* resolved = Safe_agreement.resolve sa in
      (match resolved with
      | Some view ->
        Program.return
          ( { st with cont = k view; snaps = st.snaps + 1; joined = false },
            true )
      | None -> Program.return (st, false)))

let simulate t ~me =
  let decided_count states =
    List.length (List.filter (fun st -> st.decided <> None) states)
  in
  let output states =
    Value.Vec
      (List.map
         (fun st -> Option.value st.decided ~default:Value.Bot)
         states)
  in
  (* Sweep the simulated processes round-robin; stop when everything is
     decided, or when a sweep makes no progress and at most n−1 simulated
     processes (the ones blocked in someone's window) remain. *)
  let rec sweep states progressed idx =
    if idx >= t.m then
      if decided_count states = t.m then Program.return (output states)
      else if (not progressed) && decided_count states >= t.m - (t.n - 1)
      then Program.return (output states)
      else sweep states false 0
    else
      let st = List.nth states idx in
      let* st', moved = advance t ~me idx st in
      let states =
        List.mapi (fun i s -> if i = idx then st' else s) states
      in
      sweep states (progressed || moved) (idx + 1)
  in
  sweep (initial_states t) false 0
