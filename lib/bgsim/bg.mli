(** The Borowsky–Gafni simulation.

    [n] real simulators jointly execute [m] simulated processes running
    single-writer/atomic-snapshot full-information protocols
    ([Sim_code.t]), such that the simulated execution is a legal execution
    of the simulated system.  Each simulated snapshot is agreed through a
    {!Safe_agreement} instance: a simulator proposes as candidate a {e real}
    atomic snapshot of the write matrix (one row per simulator, the latest
    simulated write it knows per simulated process), which is what makes
    the agreed views consistent cuts.

    Progress: a simulator abandons a simulated process whose agreement is
    mid-window and returns once every simulated process is decided or only
    blocked ones remain — at most one simulated process per stalled
    simulator, the classic n−1-resilience trade of BG.

    This is the machinery behind the paper's reference [9]
    (strong set election from set consensus) and behind the set-consensus
    hierarchy results [8, 10, 16] the paper builds on (Theorem 41); the
    repository uses it to *demonstrate* the simulation on small instances
    validated by the model checker. *)

open Subc_sim

type t

val m : t -> int

(** [alloc store ~simulators ~codes] — [codes] are the simulated
    processes' programs. *)
val alloc : Store.t -> simulators:int -> codes:Sim_code.t list -> Store.t * t

(** [simulate t ~me] — simulator [me]'s whole program.  Returns the vector
    of simulated decisions this simulator knows when it stops ({m \bot}
    for simulated processes still blocked). *)
val simulate : t -> me:int -> Value.t Program.t
