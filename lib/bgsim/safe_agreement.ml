open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register
module Snapshot_api = Subc_rwmem.Snapshot_api

type t = {
  slots : int;
  values : Store.handle list;  (* announced proposals, one SWMR each *)
  levels : Snapshot_api.t;  (* 0/absent, 1 = in window, 2 = committed *)
}

let alloc store ~slots =
  let store, values = Store.alloc_many store slots Register.model_bot in
  let store, levels = Snapshot_api.primitive store slots in
  (store, { slots; values; levels })

let level_of cell = match cell with Value.Int l -> l | _ -> 0

let join t ~me v =
  assert (0 <= me && me < t.slots);
  let* () = Register.write (List.nth t.values me) v in
  let* () = t.levels.Snapshot_api.update ~me (Value.Int 1) in
  let* view = t.levels.Snapshot_api.scan in
  let committed =
    List.exists (fun c -> level_of c = 2) (Value.to_vec view)
  in
  t.levels.Snapshot_api.update ~me (Value.Int (if committed then 0 else 2))

let resolve t =
  let* view = t.levels.Snapshot_api.scan in
  let cells = List.mapi (fun i c -> (i, level_of c)) (Value.to_vec view) in
  if List.exists (fun (_, l) -> l = 1) cells then Program.return None
  else
    match List.find_opt (fun (_, l) -> l = 2) cells with
    | None -> Program.return None
    | Some (winner, _) ->
      let+ v = Register.read (List.nth t.values winner) in
      Some v
