(** Safe agreement (Borowsky–Gafni) from registers and snapshots.

    The agreement core of the BG simulation: validity and agreement always
    hold, and the protocol is wait-free {e except} inside a bounded
    "unsafe window" — if a participant stops between entering and leaving
    the window, resolution can be delayed forever, which is exactly the
    price the simulation pays (one simulated process per dead simulator).

    The protocol is split so callers never block:

    - [join t ~me v] (wait-free, 3 steps): announce [v], raise my level to
      1, scan; if somebody already reached level 2 drop to level 0, else
      commit to level 2.  The window is the span between the level-1
      update and the final level update.
    - [resolve t] (one scan + maybe one read): if nobody is at level 1,
      the level-2 set is frozen; return the value announced by its
      minimal member.  Returns [None] while some participant is mid-window.

    Agreement: all resolutions see the same frozen level-2 set, hence pick
    the same minimal member. *)

open Subc_sim

type t

(** [alloc store ~slots] — at most [slots] participants, one slot each. *)
val alloc : Store.t -> slots:int -> Store.t * t

(** [join t ~me v] — call at most once per slot. *)
val join : t -> me:int -> Value.t -> unit Program.t

(** [resolve t] — [None] while unsafe; may be called repeatedly by
    anyone. *)
val resolve : t -> Value.t option Program.t
