open Subc_sim

type t =
  | Return of Value.t
  | Write of Value.t * t
  | Snapshot of (Value.t -> t)

(* The bound explores the continuation with an all-⊥ snapshot; for
   full-information protocols the number of snapshot steps does not depend
   on the values read.  [fuel] guards against unbounded codes. *)
let snapshots_bound ?(fuel = 1000) code =
  let rec go code count fuel =
    if fuel = 0 then invalid_arg "Sim_code.snapshots_bound: fuel exhausted"
    else
      match code with
      | Return _ -> count
      | Write (_, rest) -> go rest count (fuel - 1)
      | Snapshot k -> go (k Value.Bot) (count + 1) (fuel - 1)
  in
  go code 0 fuel

let write_then_snapshot v f =
  Write (v, Snapshot (fun view -> Return (f view)))
