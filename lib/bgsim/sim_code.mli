(** Programs of {e simulated} processes.

    The BG simulation runs full-information protocols over single-writer
    memory with atomic snapshots, so a simulated process's program is a
    sequence of exactly two kinds of steps — write my register, snapshot
    all registers — ending in an output.  Writes carry no information back
    and need no agreement; every snapshot's result is agreed upon by the
    simulators through safe agreement. *)

open Subc_sim

type t =
  | Return of Value.t
  | Write of Value.t * t  (** write own register, then continue *)
  | Snapshot of (Value.t -> t)
      (** receive the snapshot (a vector of all simulated registers,
          {m \bot} for never-written) *)

(** [snapshots_bound code] — an upper bound on the number of snapshot
    steps [code] can take, assuming continuations do not grow the program
    beyond [fuel] unfolding steps.  @raise Invalid_argument if the bound
    [fuel] is exceeded (the code may not be bounded). *)
val snapshots_bound : ?fuel:int -> t -> int

(** [write_then_snapshot v f] — the one-round full-information protocol:
    write [v], snapshot, return [f view]. *)
val write_then_snapshot : Value.t -> (Value.t -> Value.t) -> t
