open Subc_sim

type op_record = {
  proc : int;
  op : Op.t;
  result : Value.t option;
  inv : int;
  res : int;
}

let history ~ops final trace =
  let n = Config.n_procs final in
  List.concat
    (List.init n (fun i ->
         match (Trace.first_step trace i, Trace.last_step trace i) with
         | Some inv, Some res ->
           [ { proc = i; op = ops i; result = Config.decision final i; inv; res } ]
         | _ -> []))

let pp_record ppf r =
  Format.fprintf ppf "P%d %a -> %s [%d,%d]" r.proc Op.pp r.op
    (match r.result with Some v -> Value.to_string v | None -> "incomplete")
    r.inv r.res

let pp_history ppf h =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_record)
    h

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Canonical key of a search node: which operations are linearized (by
   index) plus the specification state. *)
let node_key linearized state =
  Value.Pair
    (Value.Vec (List.map (fun b -> Value.Bool b) (Array.to_list linearized)),
     state)

let check ~spec history =
  let ops = Array.of_list history in
  let n = Array.length ops in
  let completed i = ops.(i).result <> None in
  let linearized = Array.make n false in
  let dead = Vtbl.create 64 in
  (* [minimal i]: no unlinearized completed op finished before op [i]
     started. *)
  let minimal i =
    let ok = ref true in
    for j = 0 to n - 1 do
      if (not linearized.(j)) && j <> i && completed j
         && ops.(j).res < ops.(i).inv
      then ok := false
    done;
    !ok
  in
  let all_completed_done () =
    let ok = ref true in
    for j = 0 to n - 1 do
      if (not linearized.(j)) && completed j then ok := false
    done;
    !ok
  in
  let rec search state acc =
    if all_completed_done () then Some (List.rev acc)
    else
      let key = node_key linearized state in
      if Vtbl.mem dead key then None
      else begin
        let result = try_candidates state acc 0 in
        if result = None then Vtbl.add dead key ();
        result
      end
  and try_candidates state acc i =
    if i >= n then None
    else if linearized.(i) || not (minimal i) then
      try_candidates state acc (i + 1)
    else
      let successors = spec.Obj_model.apply state ops.(i).op in
      let matching =
        match ops.(i).result with
        | Some r ->
          List.filter (fun (_, resp) -> Value.equal resp r) successors
        | None -> successors
      in
      let rec attempt = function
        | [] -> try_candidates state acc (i + 1)
        | (state', _) :: rest -> (
          linearized.(i) <- true;
          let r = search state' (ops.(i) :: acc) in
          linearized.(i) <- false;
          match r with Some _ -> r | None -> attempt rest)
      in
      attempt matching
  in
  search spec.Obj_model.init []

(* Harness-level checking: explore every terminal of a one-operation-per-
   process harness and check each recorded history against the sequential
   specification.  This is the loop the CLI and bench previously inlined. *)
let check_harness ?(options = Search.default) store ~programs ~ops ~spec =
  Subc_obs.Span.time "linearizability.check_harness" @@ fun () ->
  let config = Config.make store programs in
  let failure = ref None in
  let histories = ref 0 in
  (* The terminal callback is serialized on either engine ([Parallel]
     holds the callback lock), so the two refs need no extra locking. *)
  let on_terminal final trace =
    if !failure = None then begin
      incr histories;
      let h = history ~ops final trace in
      if check ~spec h = None then failure := Some (h, trace)
    end
  in
  let stats = Search.iter_terminals ~options config ~f:on_terminal in
  match !failure with
  | Some (h, trace) ->
    Verdict.refuted ~explore:stats ~trace
      (Format.asprintf "@[<v>non-linearizable history:@,%a@]" pp_history h)
  | None when stats.Explore.limited ->
    Verdict.limited ~explore:stats
      ~metrics:[ ("histories", float_of_int !histories) ]
      "exploration truncated — not every history checked"
  | None ->
    Verdict.proved ~explore:stats
      ~metrics:[ ("histories", float_of_int !histories) ]
      (Printf.sprintf "all %d terminal histories linearizable%s" !histories
         (if options.Search.max_crashes > 0 then
            Printf.sprintf " (crash budget %d)" options.Search.max_crashes
          else ""))

let check_harness_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?reduction ?jobs ?visited store ~programs ~ops ~spec =
  check_harness
    ~options:
      (Search.of_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
         ?expected_states ?reduction ?jobs ?visited ())
    store ~programs ~ops ~spec
