(** Linearizability checking of recorded histories (Section 2's
    definition).

    A history is a set of high-level operations with real-time intervals
    measured in base steps: an operation's invocation is its first base
    step, its response its last.  (This matches the paper's own usage — the
    linearization of Algorithm 5 orders invocations by their first write.)

    [check] searches for a sequential ordering of all completed operations
    plus a subset of the uncompleted ones such that (1) if [op] completes
    before [op'] begins then [op] precedes [op'], and (2) replaying the
    ordering through the sequential specification reproduces every
    completed operation's response.  The search is a DFS over
    minimal-candidate choices with memoization on (linearized set,
    specification state). *)

open Subc_sim

type op_record = {
  proc : int;
  op : Op.t;  (** the high-level operation *)
  result : Value.t option;  (** [None] — never completed *)
  inv : int;  (** index of the first base step in the trace *)
  res : int;  (** index of the last base step *)
}

(** [history ~ops final trace] builds the one-operation-per-process history
    of a harness run: process [i] performed [ops i]; its result is its
    decision in [final]; its interval spans its steps in [trace].
    Processes that took no steps are omitted. *)
val history : ops:(int -> Op.t) -> Config.t -> Trace.t -> op_record list

(** [check ~spec history] returns a witness linearization (the operations
    in linearized order), or [None] if the history is not linearizable with
    respect to [spec]. *)
val check : spec:Obj_model.t -> op_record list -> op_record list option

val pp_history : Format.formatter -> op_record list -> unit

(** [check_harness store ~programs ~ops ~spec] explores every terminal of
    the harness (under every crash pattern within [options.max_crashes]
    and every crash-recovery pattern within [options.max_recoveries]
    recoveries), builds each execution's history with {!history}, and
    checks it with {!check}: [Proved] when every history linearizes,
    [Refuted] with the offending history and its schedule, [Limited] when
    the search was truncated — including by [options.deadline] seconds of
    wall clock.  Search knobs come from the {!Subc_sim.Search.options}
    record ([?options]).

    A symmetry [options.reduction] checks one representative per orbit,
    which is sound only when [spec] is equivariant under the chosen
    renamings (the same caller obligation as {!Subc_sim.Symmetry}).

    [options.jobs] explores across that many domains
    ({!Subc_sim.Parallel}); terminal callbacks are serialized, so the
    history count and verdict status are deterministic — only the
    offending history reported on refutation may differ between runs. *)
val check_harness :
  ?options:Search.options ->
  Store.t ->
  programs:Value.t Program.t list ->
  ops:(int -> Op.t) ->
  spec:Obj_model.t ->
  Verdict.t

(** @deprecated Use {!check_harness} with a {!Subc_sim.Search.options}
    record; this optional-argument spelling remains for one release. *)
val check_harness_legacy :
  ?max_states:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  Store.t ->
  programs:Value.t Program.t list ->
  ops:(int -> Op.t) ->
  spec:Obj_model.t ->
  Verdict.t
[@@deprecated
  "use Linearizability.check_harness ?options (Search.options record)"]
