open Subc_sim

type certificate = {
  solo_bound : int;
  configs : int;
  stats : Explore.stats;
}

type failure =
  | Non_terminating of { proc : int; prefix : Trace.t; spin : Trace.t }
  | Hang of { proc : int; prefix : Trace.t; spin : Trace.t }
  | Limited of Explore.stats

let pp_certificate ppf c =
  Format.fprintf ppf
    "wait-free: every process terminates within %d solo steps from every \
     reachable configuration (%d configurations, %a)"
    c.solo_bound c.configs Explore.pp_stats c.stats

let pp_failure ppf = function
  | Non_terminating { proc; prefix; spin } ->
    Format.fprintf ppf
      "@[<v>NOT wait-free: process %d does not terminate running solo after \
       the %d-step prefix@,%a@,solo continuation (truncated):@,%a@]"
      proc (Trace.length prefix) Trace.pp prefix Trace.pp spin
  | Hang { proc; prefix; spin } ->
    Format.fprintf ppf
      "@[<v>NOT wait-free: process %d hangs (illegal invocation) running \
       solo after the %d-step prefix@,%a@,solo continuation:@,%a@]"
      proc (Trace.length prefix) Trace.pp prefix Trace.pp spin
  | Limited stats ->
    Format.fprintf ppf "exploration truncated — no verdict (%a)"
      Explore.pp_stats stats

exception Failed of failure

(* Structural fingerprints ({!Fingerprint.of_config}) replace the former
   [Digest.string (Marshal.to_string (Config.key config) [])] pipeline:
   one traversal, no marshal buffer, 126-bit collision resistance. *)
let fingerprint = Fingerprint.of_config

(* Exact solo distance of process [p] from [config]: the number of steps [p]
   needs to terminate running alone, maximized over object nondeterminism.
   Memoized per (configuration, process); a revisit of a configuration on
   the current solo path (possible only through [Program.checkpoint], which
   resets the history) witnesses an infinite solo run. *)
let solo_distance ~memo ~solo_limit ~prefix config0 p =
  let onstack = Hashtbl.create 16 in
  let rec go config depth rev_spin =
    match config.Config.procs.(p).Config.status with
    | Config.Terminated _ | Config.Crashed -> 0
    | Config.Hung ->
      raise
        (Failed
           (Hang { proc = p; prefix = Lazy.force prefix; spin = List.rev rev_spin }))
    | Config.Running _ | Config.Recovering _ ->
      let digest = fingerprint config in
      let key = (digest, p) in
      (match Hashtbl.find_opt memo key with
      | Some d -> d
      | None ->
        if depth >= solo_limit || Hashtbl.mem onstack digest then
          raise
            (Failed
               (Non_terminating
                  { proc = p; prefix = Lazy.force prefix; spin = List.rev rev_spin }));
        Hashtbl.add onstack digest ();
        let d =
          List.fold_left
            (fun acc (config', event) ->
              max acc (1 + go config' (depth + 1) (Trace.Sched event :: rev_spin)))
            0
            (Step.step config p)
        in
        Hashtbl.remove onstack digest;
        Hashtbl.replace memo key d;
        d)
  in
  go config0 0 []

(* Lock-free running maximum. *)
let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let wait_free_search ~options ~solo_limit store ~programs =
  Subc_obs.Span.time "progress.wait_free" @@ fun () ->
  let config0 = Config.make store programs in
  let bound = Atomic.make 0 in
  let configs = Atomic.make 0 in
  let visit memo config prefix =
    Atomic.incr configs;
    List.iter
      (fun p ->
        atomic_max bound (solo_distance ~memo ~solo_limit ~prefix config p))
      (Config.running config)
  in
  let explore () =
    if options.Search.jobs <= 1 then begin
      let memo = Hashtbl.create 4096 in
      Search.iter_reachable ~options config0 ~f:(visit memo)
    end
    else begin
      (* The solo-distance memo is plain mutable state, so each worker
         domain keeps its own (domain-local storage): no locking on the
         hot path, at the price of some recomputation across domains.
         The exact distances are deterministic, so per-domain memos
         change only timing, never the resulting bound. *)
      let memo_key = Domain.DLS.new_key (fun () -> Hashtbl.create 4096) in
      Search.iter_reachable ~options config0 ~f:(fun config prefix ->
          visit (Domain.DLS.get memo_key) config prefix)
    end
  in
  match explore () with
  | stats when stats.Explore.limited -> Error (Limited stats)
  | stats ->
    Ok
      {
        solo_bound = Atomic.get bound;
        configs = Atomic.get configs;
        stats;
      }
  | exception Failed f -> Error f

let wait_free ?max_states ?max_crashes ?max_recoveries ?deadline
    ?(solo_limit = 10_000) ?reduction ?jobs ?visited store ~programs =
  let options =
    Search.of_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
      ?reduction ?jobs ?visited ()
  in
  wait_free_search ~options ~solo_limit store ~programs

let t_resilient ?max_states ?reduction ~t store ~programs =
  Subc_obs.Span.time "progress.t_resilient" @@ fun () ->
  let config = Config.make store programs in
  match Explore.find_cycle ?max_states ~max_crashes:t ?reduction config with
  | Some _, _ ->
    Error
      (Printf.sprintf
         "infinite schedule with <= %d crashes (not %d-resilient terminating)"
         t t)
  | None, stats ->
    if stats.Explore.limited then Error "state limit reached — no verdict"
    else if stats.Explore.hung_terminals > 0 then
      Error "some execution hangs a process (illegal object use)"
    else Ok stats

(* Verdict-typed entry points (the canonical API; the result-typed
   functions above remain as building blocks). *)

let check_wait_free ?(options = Search.default) ?(solo_limit = 10_000) store
    ~programs =
  match wait_free_search ~options ~solo_limit store ~programs with
  | Ok cert ->
    Verdict.proved ~explore:cert.stats
      ~metrics:
        [
          ("solo_bound", float_of_int cert.solo_bound);
          ("configs", float_of_int cert.configs);
        ]
      (Printf.sprintf
         "wait-free: every process terminates within %d solo steps from \
          every reachable configuration (%d configurations)"
         cert.solo_bound cert.configs)
  | Error (Limited stats) ->
    Verdict.limited ~explore:stats "exploration truncated — no verdict"
  | Error (Non_terminating { proc; prefix; spin }) ->
    Verdict.refuted
      ~trace:(prefix @ spin)
      (Printf.sprintf
         "process %d does not terminate running solo after a %d-step prefix"
         proc (Trace.length prefix))
  | Error (Hang { proc; prefix; spin }) ->
    Verdict.refuted
      ~trace:(prefix @ spin)
      (Printf.sprintf
         "process %d hangs (illegal invocation) running solo after a \
          %d-step prefix"
         proc (Trace.length prefix))

let check_wait_free_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
    ?solo_limit ?reduction ?jobs ?visited store ~programs =
  check_wait_free
    ~options:
      (Search.of_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
         ?reduction ?jobs ?visited ())
    ?solo_limit store ~programs

let check_t_resilient ?(options = Search.default) ~t store ~programs =
  Subc_obs.Span.time "progress.t_resilient" @@ fun () ->
  let options = Search.with_max_crashes t options in
  match Search.find_cycle ~options (Config.make store programs) with
  | Some lasso, stats ->
    Verdict.refuted ~explore:stats ~trace:lasso
      (Printf.sprintf
         "infinite schedule with <= %d crashes (not %d-resilient \
          terminating)"
         t t)
  | None, stats ->
    if stats.Explore.limited then
      Verdict.limited ~explore:stats "state limit reached — no verdict"
    else if stats.Explore.hung_terminals > 0 then
      Verdict.refuted ~explore:stats ~trace:[]
        "some execution hangs a process (illegal object use)"
    else
      Verdict.proved ~explore:stats
        (Printf.sprintf
           "every schedule with <= %d crashes terminates (no cycles, no \
            hangs)"
           t)

let check_t_resilient_legacy ?max_states ?reduction ~t store ~programs =
  check_t_resilient
    ~options:(Search.of_legacy ?max_states ?reduction ())
    ~t store ~programs
