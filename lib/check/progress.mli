(** Progress properties: wait-freedom certificates and t-resilient
    termination.

    Every algorithm this repository reproduces makes a {e wait-free} claim:
    each process terminates in a bounded number of its own steps regardless
    of what the others do — including crashing.  [wait_free] certifies this
    by exhaustive search: from {e every} reachable configuration (under
    every interleaving and every crash pattern within the budget), every
    running process must terminate within a bounded number of {e solo}
    steps.  The certificate is the bound; the failure is a concrete
    counterexample schedule — a reachable prefix after which some process
    runs solo forever (the signature of a merely lock-free construction) or
    hangs.

    [t_resilient] checks the weaker property that no execution with at most
    [t] crashes runs forever (and none hangs a process) — termination
    rather than a per-process solo bound. *)

open Subc_sim

type certificate = {
  solo_bound : int;
      (** max over reachable configurations and running processes of the
          number of solo steps needed to terminate *)
  configs : int;  (** reachable configurations checked *)
  stats : Explore.stats;
}

type failure =
  | Non_terminating of { proc : int; prefix : Trace.t; spin : Trace.t }
      (** after [prefix], [proc] running solo revisits a configuration or
          exceeds the solo-step limit: an infinite solo run *)
  | Hang of { proc : int; prefix : Trace.t; spin : Trace.t }
      (** after [prefix], [proc] running solo performs an invocation with
          no successor *)
  | Limited of Explore.stats
      (** the reachable-state exploration was truncated: no verdict *)

val pp_certificate : Format.formatter -> certificate -> unit
val pp_failure : Format.formatter -> failure -> unit

(** [check_wait_free store ~programs] certifies wait-freedom.  Search
    knobs come from the {!Subc_sim.Search.options} record ([?options]):
    [max_crashes] additionally quantifies the reachable prefix over every
    crash pattern within the budget, [max_recoveries] over every
    crash-recovery pattern, [deadline] (seconds of wall clock) gracefully
    truncates the enumeration — the verdict is then Limited — and [jobs]
    spreads the reachable-prefix enumeration across that many domains
    ({!Subc_sim.Parallel}).  [reduction] applies to the reachable-prefix
    enumeration (symmetry only; source sets are stripped from
    reachability on either engine).  [solo_limit] caps the solo search
    per process (default 10000); exceeding it counts as non-termination.
    The verdict status, solo bound and configuration count are
    deterministic, the counterexample witness (on refutation) may differ
    between runs.  The solo bound and configuration count are in the
    verdict's metrics. *)
val check_wait_free :
  ?options:Search.options ->
  ?solo_limit:int ->
  Store.t ->
  programs:Value.t Program.t list ->
  Verdict.t

(** @deprecated Use {!check_wait_free} with a {!Subc_sim.Search.options}
    record; this optional-argument spelling remains for one release. *)
val check_wait_free_legacy :
  ?max_states:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?solo_limit:int ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  Store.t ->
  programs:Value.t Program.t list ->
  Verdict.t
[@@deprecated "use Progress.check_wait_free ?options (Search.options record)"]

(** [check_t_resilient ~t store ~programs] checks that no schedule with at
    most [t] crashes runs forever and none hangs a process.  The [t]
    budget overrides [options.max_crashes]; cycle hunting is always
    sequential, so [options.jobs] is ignored. *)
val check_t_resilient :
  ?options:Search.options ->
  t:int ->
  Store.t ->
  programs:Value.t Program.t list ->
  Verdict.t

(** @deprecated Use {!check_t_resilient} with a {!Subc_sim.Search.options}
    record; this optional-argument spelling remains for one release. *)
val check_t_resilient_legacy :
  ?max_states:int ->
  ?reduction:Explore.reduction ->
  t:int ->
  Store.t ->
  programs:Value.t Program.t list ->
  Verdict.t
[@@deprecated
  "use Progress.check_t_resilient ?options (Search.options record)"]

(** @deprecated Use {!check_wait_free}; this result-typed form remains for
    one release as a building block. *)
val wait_free :
  ?max_states:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?solo_limit:int ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  Store.t ->
  programs:Value.t Program.t list ->
  (certificate, failure) result
[@@deprecated "use Progress.check_wait_free (Verdict-typed)"]

(** @deprecated Use {!check_t_resilient}. *)
val t_resilient :
  ?max_states:int ->
  ?reduction:Explore.reduction ->
  t:int ->
  Store.t ->
  programs:Value.t Program.t list ->
  (Explore.stats, string) result
[@@deprecated "use Progress.check_t_resilient (Verdict-typed)"]
