open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register
module Task = Subc_tasks.Task

type family =
  | Register
  | Test_and_set
  | Fetch_and_add
  | Swap
  | Queue
  | Cas
  | Consensus_object

let family_name = function
  | Register -> "register"
  | Test_and_set -> "test-and-set"
  | Fetch_and_add -> "fetch-and-add"
  | Swap -> "swap"
  | Queue -> "queue"
  | Cas -> "compare-and-swap"
  | Consensus_object -> "consensus object"

let all_families =
  [ Register; Test_and_set; Fetch_and_add; Swap; Queue; Cas; Consensus_object ]

let solves_recoverable = function
  | Cas | Consensus_object -> true
  | Register | Test_and_set | Fetch_and_add | Swap | Queue -> false

(* The canonical protocol per family, in recoverable form (Golab–Ramaraju
   structure): a per-process persistent decision register is consulted
   first — a process that crashed {e after} persisting its decision
   re-decides consistently on recovery — and written last, so the protocol
   has an explicit window between winning the competition object and
   persisting the outcome.  That window is where the Ovens-style
   separations live: a test-and-set (or fetch-and-add, swap, queue) winner
   that crashes inside it re-competes on recovery, loses to its own dead
   incarnation, and adopts somebody else's value, while compare-and-swap
   and consensus objects answer the re-run of the competition step with
   the original outcome and stay correct. *)
let protocol store family ~n ~max_recoveries =
  let values = List.init n (fun i -> Value.Int i) in
  (* Per-process persistent decision cells, then announcement registers. *)
  let store, decs = Store.alloc_many store n Register.model_bot in
  let store, regs = Store.alloc_many store n Register.model_bot in
  let read_announcement who = Register.read (List.nth regs who) in
  let min_announced v =
    let* seen = Program.map_list Register.read regs in
    let candidates = List.filter (fun c -> not (Value.is_bot c)) seen in
    Program.return
      (List.fold_left
         (fun acc c -> if Value.compare c acc < 0 then c else acc)
         v candidates)
  in
  let recoverably me v body =
    let dec = List.nth decs me in
    let* d0 = Register.read dec in
    if not (Value.is_bot d0) then Program.return d0
    else
      let* () = Register.write (List.nth regs me) v in
      let* d = body () in
      let* () = Register.write dec d in
      Program.return d
  in
  let store, body =
    match family with
    | Register ->
      (store, fun _me v () -> min_announced v)
    | Test_and_set ->
      let store, b = Store.alloc store Subc_objects.Tas_obj.model in
      ( store,
        fun me v () ->
          let* already = Subc_objects.Tas_obj.test_and_set b in
          if not already then Program.return v
          else if n = 2 then read_announcement (1 - me)
          else min_announced v )
    | Fetch_and_add ->
      let store, f = Store.alloc store Subc_objects.Faa_obj.model in
      ( store,
        fun me v () ->
          let* rank = Subc_objects.Faa_obj.fetch_and_add f 1 in
          if rank = 0 then Program.return v
          else if n = 2 then read_announcement (1 - me)
          else min_announced v )
    | Swap ->
      let store, s = Store.alloc store Subc_objects.Swap_obj.model_bot in
      ( store,
        fun me v () ->
          let* prev = Subc_objects.Swap_obj.swap s (Value.Int me) in
          match prev with
          | Value.Bot -> Program.return v
          | Value.Int who -> read_announcement who
          | _ -> assert false )
    | Queue ->
      (* Enough "lose" tokens that every re-competition within the
         recovery budget still dequeues something. *)
      let tokens =
        Value.Sym "win"
        :: List.init (n - 1 + max_recoveries) (fun _ -> Value.Sym "lose")
      in
      let store, q = Store.alloc store (Subc_objects.Queue_obj.model tokens) in
      ( store,
        fun me v () ->
          let* tok = Subc_objects.Queue_obj.dequeue q in
          if Value.equal tok (Value.Sym "win") then Program.return v
          else if n = 2 then read_announcement (1 - me)
          else min_announced v )
    | Cas ->
      let store, c = Store.alloc store Subc_objects.Cas_obj.model_bot in
      ( store,
        fun _me v () ->
          let* _ =
            Subc_objects.Cas_obj.compare_and_swap c ~expected:Value.Bot
              ~desired:v
          in
          Subc_objects.Cas_obj.read c )
    | Consensus_object ->
      let store, c = Store.alloc store Subc_objects.Consensus_obj.model in
      (store, fun _me v () -> Subc_objects.Consensus_obj.propose c v)
  in
  (store, List.mapi (fun me v -> recoverably me v (body me v)) values)

(* Recoverable consensus on a terminal configuration: validity and
   agreement over the processes that decided (a process still crashed when
   the budgets run out decides nothing, which is allowed), and no process
   hangs.  At a terminal every process is terminated, hung or crashed, so
   "not hung" makes every surviving process's decision count. *)
let consensus_ok ~inputs c =
  if Config.any_hung c then
    Error "some execution hangs a process (illegal object use)"
  else Task.consensus.Task.check (Task.outcomes ~inputs c)

let verdict ?(options = Search.default) family ~n ~max_recoveries =
  Subc_obs.Span.time "recoverable.verdict" @@ fun () ->
  let store, programs = protocol Store.empty family ~n ~max_recoveries in
  let inputs = List.init n (fun i -> Value.Int i) in
  let config = Config.make store programs in
  (* Recoveries need crashes: a zero crash budget (the record default)
     means "pick for me" — the classic n−1 budget, widened so every
     recovery can be exercised. *)
  let max_crashes =
    if options.Search.max_crashes > 0 then options.Search.max_crashes
    else max (n - 1) max_recoveries
  in
  let options =
    options
    |> Search.with_max_crashes max_crashes
    |> Search.with_max_recoveries max_recoveries
  in
  let ok c = Result.is_ok (consensus_ok ~inputs c) in
  let budgets =
    Printf.sprintf "crash budget %d, recovery budget %d" max_crashes
      max_recoveries
  in
  let result = Search.check_terminals ~options config ~ok in
  match result with
  | Error (c, trace, stats) ->
    let reason =
      match consensus_ok ~inputs c with Error e -> e | Ok () -> assert false
    in
    Verdict.refuted ~explore:stats ~trace
      (Printf.sprintf "recoverable consensus (%s): %s" budgets reason)
  | Ok stats when stats.Explore.limited ->
    Verdict.limited ~explore:stats
      (Format.asprintf
         "exploration truncated (%a) before covering all terminals — no \
          verdict"
         Explore.pp_limit_reason stats.Explore.limit_reason)
  | Ok stats -> (
    match Search.find_cycle ~options config with
    | Some trace, cycle_stats ->
      Verdict.refuted ~explore:cycle_stats ~trace
        "infinite schedule (protocol not wait-free)"
    | None, cycle_stats ->
      if cycle_stats.Explore.limited then
        Verdict.limited ~explore:cycle_stats
          "exploration truncated while searching cycles — no verdict"
      else
        Verdict.proved ~explore:stats
          (Printf.sprintf
             "recoverable consensus (%s): agreement + validity on every \
              terminal, every schedule terminates"
             budgets))

let verdict_legacy ?max_states ?max_crashes ?deadline ?reduction ?jobs
    ?visited ?expected_states family ~n ~max_recoveries =
  verdict
    ~options:
      (Search.of_legacy ?max_states ?max_crashes ?deadline ?reduction ?jobs
         ?visited ?expected_states ())
    family ~n ~max_recoveries

(* The separation table: at n = 2, every consensus-number-2 object solves
   consensus with crashes only (r = 0) but the canonical protocol fails
   once one recovery is allowed; CAS and consensus objects survive
   recovery.  [expected family ~r] is what [verdict] should return at
   n = 2. *)
let expected family ~max_recoveries =
  match family with
  | Register -> `Refuted
  | Cas | Consensus_object -> `Proved
  | Test_and_set | Fetch_and_add | Swap | Queue ->
    if max_recoveries = 0 then `Proved else `Refuted
