(** Recoverable consensus: the consensus-number table under the
    crash-recovery fault model, machine-checked.

    Under crash-stop faults Herlihy's hierarchy puts test-and-set,
    fetch-and-add, swap and queues at consensus number 2.  Under
    crash-{e recovery} — a crashed process may restart its protocol with
    its local state wiped while shared-object state persists — that power
    evaporates (Ovens 2024): a test-and-set winner that crashes between
    winning and persisting its decision re-competes on recovery, loses to
    its own dead incarnation, and adopts another process's value.
    Compare-and-swap and consensus objects are immune: re-running the
    competition step returns the original outcome.

    For each family this module runs the canonical protocol in its
    recoverable form — consult a persistent per-process decision register
    first, write it last — and delivers a {!Verdict.t} by exhaustive
    exploration over every schedule, every crash pattern within the crash
    budget, and every recovery pattern within [max_recoveries].  At
    [max_recoveries = 0] the check coincides with the classic
    crash-tolerant consensus check.

    A [Refuted] verdict refutes {e that protocol}, not every protocol —
    but for the canonical protocols these are exactly the textbook
    separations, and the [Proved] verdicts are exhaustive proofs at the
    given [n] and budgets. *)

open Subc_sim

type family =
  | Register
  | Test_and_set
  | Fetch_and_add
  | Swap
  | Queue
  | Cas
  | Consensus_object

val family_name : family -> string
val all_families : family list

(** Whether the family's canonical protocol solves recoverable consensus
    (n = 2, any recovery budget): true for [Cas] and [Consensus_object]. *)
val solves_recoverable : family -> bool

(** [protocol store family ~n ~max_recoveries] — the canonical recoverable
    consensus protocol: one program per process, proposing 0, …, n−1.
    [max_recoveries] only sizes bounded resources (the queue's token
    supply); the budget itself is enforced by the explorer. *)
val protocol :
  Store.t ->
  family ->
  n:int ->
  max_recoveries:int ->
  Store.t * Value.t Program.t list

(** [verdict family ~n ~max_recoveries] — exhaustive recoverable-consensus
    check: validity and agreement over the decided values on every
    reachable terminal (a process still crashed when the budgets run out
    decides nothing, which is allowed; a hung process refutes), plus
    termination of every schedule.  Search knobs come from the
    {!Subc_sim.Search.options} record ([?options]); the [max_recoveries]
    label overrides [options.max_recoveries], and a zero
    [options.max_crashes] (the record default) is widened to
    [max (n − 1) max_recoveries] so every recovery can be exercised.
    [options.deadline] gracefully truncates to [Limited];
    [options.jobs] parallelizes the terminal sweep
    ({!Subc_sim.Parallel}).  The verdict status is deterministic. *)
val verdict :
  ?options:Search.options -> family -> n:int -> max_recoveries:int -> Verdict.t

(** @deprecated Use {!verdict} with a {!Subc_sim.Search.options} record;
    this optional-argument spelling remains for one release. *)
val verdict_legacy :
  ?max_states:int ->
  ?max_crashes:int ->
  ?deadline:float ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  ?expected_states:int ->
  family ->
  n:int ->
  max_recoveries:int ->
  Verdict.t
[@@deprecated "use Recoverable.verdict ?options (Search.options record)"]

(** The expected verdict at n = 2 — the separation table the test suite
    pins: registers refuted at every budget; test-and-set, fetch-and-add,
    swap and queue proved at [max_recoveries = 0] and refuted at ≥ 1;
    CAS and consensus objects proved throughout. *)
val expected : family -> max_recoveries:int -> [ `Proved | `Refuted ]
