open Subc_sim

type harness = { store : Store.t; programs : Value.t Program.t list }
type failure = { outcome : Value.t list; trace : Trace.t }

(* Symmetry reduction is deliberately stripped: outcome vectors are
   compared literally between the two harnesses, and quotienting each
   side independently could pick different orbit representatives.
   Terminal callbacks are serialized under the parallel engine's
   callback lock, so the accumulator needs no further protection. *)
let sanitize options =
  Search.with_reduction Explore.no_reduction options

let outcomes_with_traces ~options harness =
  let config = Config.make harness.store harness.programs in
  let acc = ref [] in
  let stats =
    Search.iter_terminals ~options:(sanitize options) config
      ~f:(fun final trace -> acc := (Config.decisions final, trace) :: !acc)
  in
  if stats.Explore.limited then failwith "Refinement: state limit reached";
  !acc

let options_of_max_states max_states =
  match max_states with
  | None -> Search.default
  | Some n -> Search.with_max_states n Search.default

let outcomes ?max_states harness =
  List.sort_uniq compare
    (List.map fst
       (outcomes_with_traces ~options:(options_of_max_states max_states)
          harness))

let refines_search ~options ~impl ~spec =
  let spec_outcomes =
    List.sort_uniq compare
      (List.map fst (outcomes_with_traces ~options spec))
  in
  let impl_outcomes = outcomes_with_traces ~options impl in
  match
    List.find_opt
      (fun (o, _) -> not (List.mem o spec_outcomes))
      impl_outcomes
  with
  | Some (outcome, trace) -> Error { outcome; trace }
  | None ->
    Ok
      ( List.length (List.sort_uniq compare (List.map fst impl_outcomes)),
        List.length spec_outcomes )

let refines ?max_states () ~impl ~spec =
  refines_search ~options:(options_of_max_states max_states) ~impl ~spec

let equivalent_search ~options ~impl ~spec =
  match refines_search ~options ~impl ~spec with
  | Error _ as e -> e
  | Ok (n_impl, n_spec) -> (
    match refines_search ~options ~impl:spec ~spec:impl with
    | Error _ as e -> e
    | Ok _ ->
      if n_impl = n_spec then Ok n_impl
      else
        (* Containment both ways with equal cardinality is equality; unequal
           cardinalities here would be contradictory. *)
        Ok n_impl)

let equivalent ?max_states () ~impl ~spec =
  equivalent_search ~options:(options_of_max_states max_states) ~impl ~spec

(* Verdict-typed entry points. *)
let check_refines ?(options = Search.default) () ~impl ~spec =
  Subc_obs.Span.time "refinement.refines" @@ fun () ->
  match refines_search ~options ~impl ~spec with
  | Ok (n_impl, n_spec) ->
    Verdict.proved
      ~metrics:
        [
          ("impl_outcomes", float_of_int n_impl);
          ("spec_outcomes", float_of_int n_spec);
        ]
      (Printf.sprintf
         "every implementation outcome (%d) is a specification outcome (%d)"
         n_impl n_spec)
  | Error { outcome; trace } ->
    Verdict.refuted ~trace
      (Format.asprintf
         "outcome %a reachable in the implementation but not in the \
          specification"
         Value.pp (Value.Vec outcome))
  | exception Failure msg -> Verdict.limited msg

let check_refines_legacy ?max_states () ~impl ~spec =
  check_refines ~options:(options_of_max_states max_states) () ~impl ~spec

let check_equivalent ?(options = Search.default) () ~impl ~spec =
  Subc_obs.Span.time "refinement.equivalent" @@ fun () ->
  match equivalent_search ~options ~impl ~spec with
  | Ok n ->
    Verdict.proved
      ~metrics:[ ("outcomes", float_of_int n) ]
      (Printf.sprintf "identical outcome sets (%d outcomes)" n)
  | Error { outcome; trace } ->
    Verdict.refuted ~trace
      (Format.asprintf "outcome %a reachable on one side only" Value.pp
         (Value.Vec outcome))
  | exception Failure msg -> Verdict.limited msg

let check_equivalent_legacy ?max_states () ~impl ~spec =
  check_equivalent ~options:(options_of_max_states max_states) () ~impl ~spec
