open Subc_sim

type harness = { store : Store.t; programs : Value.t Program.t list }
type failure = { outcome : Value.t list; trace : Trace.t }

let outcomes_with_traces ?max_states harness =
  let config = Config.make harness.store harness.programs in
  let acc = ref [] in
  let stats =
    Explore.iter_terminals ?max_states config ~f:(fun final trace ->
        acc := (Config.decisions final, trace) :: !acc)
  in
  if stats.Explore.limited then failwith "Refinement: state limit reached";
  !acc

let outcomes ?max_states harness =
  List.sort_uniq compare (List.map fst (outcomes_with_traces ?max_states harness))

let refines ?max_states () ~impl ~spec =
  let spec_outcomes = outcomes ?max_states spec in
  let impl_outcomes = outcomes_with_traces ?max_states impl in
  match
    List.find_opt
      (fun (o, _) -> not (List.mem o spec_outcomes))
      impl_outcomes
  with
  | Some (outcome, trace) -> Error { outcome; trace }
  | None ->
    Ok
      ( List.length (List.sort_uniq compare (List.map fst impl_outcomes)),
        List.length spec_outcomes )

let equivalent ?max_states () ~impl ~spec =
  match refines ?max_states () ~impl ~spec with
  | Error _ as e -> e
  | Ok (n_impl, n_spec) -> (
    match refines ?max_states () ~impl:spec ~spec:impl with
    | Error _ as e -> e
    | Ok _ ->
      if n_impl = n_spec then Ok n_impl
      else
        (* Containment both ways with equal cardinality is equality; unequal
           cardinalities here would be contradictory. *)
        Ok n_impl)

(* Verdict-typed entry points.  Symmetry reduction is deliberately not
   offered here: outcome vectors are compared literally between the two
   harnesses, and quotienting each side independently could pick
   different orbit representatives. *)
let check_refines ?max_states () ~impl ~spec =
  Subc_obs.Span.time "refinement.refines" @@ fun () ->
  match refines ?max_states () ~impl ~spec with
  | Ok (n_impl, n_spec) ->
    Verdict.proved
      ~metrics:
        [
          ("impl_outcomes", float_of_int n_impl);
          ("spec_outcomes", float_of_int n_spec);
        ]
      (Printf.sprintf
         "every implementation outcome (%d) is a specification outcome (%d)"
         n_impl n_spec)
  | Error { outcome; trace } ->
    Verdict.refuted ~trace
      (Format.asprintf
         "outcome %a reachable in the implementation but not in the \
          specification"
         Value.pp (Value.Vec outcome))
  | exception Failure msg -> Verdict.limited msg

let check_equivalent ?max_states () ~impl ~spec =
  Subc_obs.Span.time "refinement.equivalent" @@ fun () ->
  match equivalent ?max_states () ~impl ~spec with
  | Ok n ->
    Verdict.proved
      ~metrics:[ ("outcomes", float_of_int n) ]
      (Printf.sprintf "identical outcome sets (%d outcomes)" n)
  | Error { outcome; trace } ->
    Verdict.refuted ~trace
      (Format.asprintf "outcome %a reachable on one side only" Value.pp
         (Value.Vec outcome))
  | exception Failure msg -> Verdict.limited msg
