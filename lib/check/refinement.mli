(** Outcome-set refinement between two harnesses.

    The workhorse behind "implementation X behaves like object Y": run the
    same logical harness once against the implementation and once against
    the specification object, exhaustively enumerate the reachable
    terminal outcome vectors (the processes' decisions) of both, and check
    that the implementation's set is contained in the specification's.

    This is sound for checking implementations of {e atomic} objects when
    each harness process performs one high-level operation and returns its
    response: every implementation outcome must then be producible by some
    atomic interleaving.  It complements the per-history linearizability
    checker: refinement quantifies over outcomes, the linearizability
    checker over orderings within a single execution. *)

open Subc_sim

type harness = { store : Store.t; programs : Value.t Program.t list }

type failure = {
  outcome : Value.t list;  (** reachable in the impl, not in the spec *)
  trace : Trace.t;  (** witness schedule in the implementation *)
}

(** [outcomes harness] — all reachable terminal decision vectors.
    @raise Failure if the state limit is hit. *)
val outcomes : ?max_states:int -> harness -> Value.t list list

(** [refines ~impl ~spec] — [Ok (n_impl, n_spec)] with the outcome-set
    sizes, or the first implementation outcome the spec cannot produce. *)
val refines :
  ?max_states:int ->
  unit ->
  impl:harness ->
  spec:harness ->
  (int * int, failure) result

(** [equivalent ~impl ~spec] — containment in both directions. *)
val equivalent :
  ?max_states:int -> unit -> impl:harness -> spec:harness -> (int, failure) result

(** Verdict-typed forms of {!refines} and {!equivalent}.  A hit state
    limit becomes [Limited].  Search knobs come from the
    {!Subc_sim.Search.options} record ([?options]); [options.reduction]
    is ignored — outcome vectors are compared literally between the two
    harnesses, and quotienting each side independently could pick
    different orbit representatives — while [options.jobs] parallelizes
    each terminal sweep. *)
val check_refines :
  ?options:Search.options -> unit -> impl:harness -> spec:harness -> Verdict.t

val check_equivalent :
  ?options:Search.options -> unit -> impl:harness -> spec:harness -> Verdict.t

(** @deprecated Use {!check_refines} with a {!Subc_sim.Search.options}
    record; this optional-argument spelling remains for one release. *)
val check_refines_legacy :
  ?max_states:int -> unit -> impl:harness -> spec:harness -> Verdict.t
[@@deprecated "use Refinement.check_refines ?options (Search.options record)"]

(** @deprecated Use {!check_equivalent} with a {!Subc_sim.Search.options}
    record; this optional-argument spelling remains for one release. *)
val check_equivalent_legacy :
  ?max_states:int -> unit -> impl:harness -> spec:harness -> Verdict.t
[@@deprecated
  "use Refinement.check_equivalent ?options (Search.options record)"]
