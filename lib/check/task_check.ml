open Subc_sim
module Task = Subc_tasks.Task

let search_result ~options ~inputs ~task config =
  Subc_obs.Span.time "task_check.exhaustive" @@ fun () ->
  match
    Search.check_terminals ~options config ~ok:(fun c ->
        Task.satisfies task ~inputs c)
  with
  | Ok stats -> Ok stats
  | Error (c, trace, _stats) ->
    let reason = Option.value ~default:"?" (Task.explain task ~inputs c) in
    Error (reason, trace)

let exhaustive ?max_states ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?reduction ?jobs ?visited store ~programs ~inputs ~task =
  let options =
    Search.of_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?reduction ?jobs ?visited ()
  in
  search_result ~options ~inputs ~task (Config.make store programs)

let wait_free ?max_states ?reduction store ~programs =
  let config = Config.make store programs in
  match Explore.find_cycle ?max_states ?reduction config with
  | Some _, _ -> Error "infinite schedule (protocol not wait-free)"
  | None, stats ->
    if stats.Explore.limited then Error "state limit reached"
    else if stats.Explore.hung_terminals > 0 then
      Error "some execution hangs a process (illegal object use)"
    else Ok stats

(* Verdict-typed entry point: exhaustive task conformance, classifying a
   truncated search as [Limited] rather than a proof. *)
let check ?(options = Search.default) store ~programs ~inputs ~task =
  let config = Config.make store programs in
  match search_result ~options ~inputs ~task config with
  | Error (reason, trace) -> Verdict.refuted ~trace reason
  | Ok stats when stats.Explore.limited ->
    Verdict.limited ~explore:stats
      "exploration truncated before covering all terminals — no verdict"
  | Ok stats ->
    Verdict.proved ~explore:stats
      (Printf.sprintf "task satisfied on all %d reachable terminals%s%s"
         stats.Explore.terminals
         (if options.Search.max_crashes > 0 then
            Printf.sprintf " (crash budget %d)" options.Search.max_crashes
          else "")
         (if options.Search.max_recoveries > 0 then
            Printf.sprintf " (recovery budget %d)" options.Search.max_recoveries
          else ""))

let check_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?reduction ?jobs ?visited store ~programs ~inputs ~task =
  check
    ~options:
      (Search.of_legacy ?max_states ?max_crashes ?max_recoveries ?deadline
         ?expected_states ?reduction ?jobs ?visited ())
    store ~programs ~inputs ~task

type sample_stats = {
  runs : int;
  violations : int;
  first_violation : (string * Trace.t) option;
  distinct_counts : int array;
}

let sample ?max_steps store ~programs ~inputs ~task ~seeds =
  let config = Config.make store programs in
  let n = List.length programs in
  let distinct_counts = Array.make (max n 1) 0 in
  let violations = ref 0 in
  let first_violation = ref None in
  List.iter
    (fun seed ->
      let r = Runner.run ?max_steps (Runner.Random seed) config in
      let d =
        List.length (Task.distinct (Config.decisions r.Runner.final))
      in
      if d > 0 && d <= n then
        distinct_counts.(d - 1) <- distinct_counts.(d - 1) + 1;
      match Task.explain task ~inputs r.Runner.final with
      | None -> ()
      | Some reason ->
        incr violations;
        if !first_violation = None then
          first_violation := Some (reason, r.Runner.trace))
    seeds;
  {
    runs = List.length seeds;
    violations = !violations;
    first_violation = !first_violation;
    distinct_counts;
  }

let sample_crashed ?max_crashes store ~programs ~inputs ~task ~seeds =
  let config = Config.make store programs in
  let n = List.length programs in
  let max_crashes = Option.value max_crashes ~default:(max 0 (n - 1)) in
  let distinct_counts = Array.make (max n 1) 0 in
  let violations = ref 0 in
  let first_violation = ref None in
  List.iter
    (fun seed ->
      let r = Runner.run (Runner.Crash_random { seed; max_crashes }) config in
      let d =
        List.length (Task.distinct (Config.decisions r.Runner.final))
      in
      if d > 0 && d <= n then
        distinct_counts.(d - 1) <- distinct_counts.(d - 1) + 1;
      match Task.explain task ~inputs r.Runner.final with
      | None -> ()
      | Some reason ->
        incr violations;
        if !first_violation = None then
          first_violation := Some (reason, r.Runner.trace))
    seeds;
  {
    runs = List.length seeds;
    violations = !violations;
    first_violation = !first_violation;
    distinct_counts;
  }

let pp_sample_stats ppf s =
  Format.fprintf ppf "runs=%d violations=%d distinct-decisions=[%s]" s.runs
    s.violations
    (String.concat "; "
       (Array.to_list
          (Array.mapi (fun i c -> Printf.sprintf "%d:%d" (i + 1) c)
             s.distinct_counts)))
