(** Task-conformance checking: exhaustive (model checker) and randomized
    (seeded adversaries), plus decision-distribution measurement for the
    experiment tables. *)

open Subc_sim
module Task = Subc_tasks.Task

(** [check store ~programs ~inputs ~task] checks [task] on every reachable
    terminal configuration (under every crash pattern within
    [options.max_crashes], and every crash-recovery pattern within
    [options.max_recoveries] recoveries): [Proved] when exhaustive and
    clean, [Refuted] with the violating schedule, [Limited] when the
    search was truncated — including by [options.deadline] seconds of
    wall clock.  All search knobs come from the {!Subc_sim.Search.options}
    record ([?options], default {!Subc_sim.Search.default});
    [options.jobs > 1] runs the exploration across that many domains
    ({!Subc_sim.Parallel}).  The verdict status is deterministic, the
    counterexample schedule (on refutation) may differ between runs. *)
val check :
  ?options:Search.options ->
  Store.t ->
  programs:Value.t Program.t list ->
  inputs:Value.t list ->
  task:Task.t ->
  Verdict.t

(** @deprecated Use {!check} with a {!Subc_sim.Search.options} record;
    this optional-argument spelling remains for one release. *)
val check_legacy :
  ?max_states:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  Store.t ->
  programs:Value.t Program.t list ->
  inputs:Value.t list ->
  task:Task.t ->
  Verdict.t
[@@deprecated "use Task_check.check ?options (Search.options record)"]

(** @deprecated Use {!check}; this result-typed form remains for one
    release.  Note: an [Ok] with [stats.limited] set is {e not} a proof. *)
val exhaustive :
  ?max_states:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  Store.t ->
  programs:Value.t Program.t list ->
  inputs:Value.t list ->
  task:Task.t ->
  (Explore.stats, string * Trace.t) result
[@@deprecated "use Task_check.check (Verdict-typed)"]

(** @deprecated Use {!Progress.check_t_resilient} (with [t = 0]) or
    {!Progress.check_wait_free}.  Checks that no adversarial schedule runs
    forever and no process hangs. *)
val wait_free :
  ?max_states:int ->
  ?reduction:Explore.reduction ->
  Store.t ->
  programs:Value.t Program.t list ->
  (Explore.stats, string) result
[@@deprecated
  "use Progress.check_t_resilient ~t:0 or Progress.check_wait_free"]

type sample_stats = {
  runs : int;
  violations : int;
  first_violation : (string * Trace.t) option;
  (* Distribution of the number of distinct decided values: entry [d] is
     how many runs decided exactly [d+1] distinct values. *)
  distinct_counts : int array;
}

(** [sample store ~programs ~inputs ~task ~seeds] runs once per seed under
    the random adversary. *)
val sample :
  ?max_steps:int ->
  Store.t ->
  programs:Value.t Program.t list ->
  inputs:Value.t list ->
  task:Task.t ->
  seeds:int list ->
  sample_stats

val pp_sample_stats : Format.formatter -> sample_stats -> unit

(** [sample_crashed store ~programs ~inputs ~task ~seeds] — fault
    injection: each seeded run executes under the {!Runner.Crash_random}
    adversary, which crashes up to [max_crashes] random processes (default
    n−1) at random points.  Crashes are events of the trace, so the task is
    evaluated against the true partial-outcome history and a violating
    schedule replays deterministically, crashes included.  Wait-free
    algorithms must keep their safety properties whatever the crash
    pattern, because a crashed process is indistinguishable from a slow
    one. *)
val sample_crashed :
  ?max_crashes:int ->
  Store.t ->
  programs:Subc_sim.Value.t Subc_sim.Program.t list ->
  inputs:Subc_sim.Value.t list ->
  task:Task.t ->
  seeds:int list ->
  sample_stats
