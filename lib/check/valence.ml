open Subc_sim
module Task = Subc_tasks.Task

type verdict =
  | Solves of Explore.stats
  | Violation of { reason : string; trace : Trace.t }
  | Diverges of { trace : Trace.t }
  | Unknown of { detail : string }

let pp_verdict ppf = function
  | Solves stats -> Format.fprintf ppf "solves (%a)" Explore.pp_stats stats
  | Violation { reason; _ } -> Format.fprintf ppf "violation: %s" reason
  | Diverges _ -> Format.fprintf ppf "diverges (infinite schedule found)"
  | Unknown { detail } -> Format.fprintf ppf "unknown: %s" detail

let consensus_ok ~inputs config =
  let os = Task.outcomes ~inputs config in
  match Task.all_decided.Task.check os with
  | Error e -> Error e
  | Ok () -> Task.consensus.Task.check os

let check_consensus ?max_states config ~inputs =
  match
    Explore.check_terminals ?max_states config ~ok:(fun c ->
        Result.is_ok (consensus_ok ~inputs c))
  with
  | Error (c, trace, _stats) ->
    let reason =
      match consensus_ok ~inputs c with Error e -> e | Ok () -> assert false
    in
    Violation { reason; trace }
  | Ok stats when stats.Explore.limited ->
    Unknown { detail = "state limit reached while checking terminals" }
  | Ok stats -> (
    match Explore.find_cycle ?max_states config with
    | Some trace, _ -> Diverges { trace }
    | None, cycle_stats ->
      if cycle_stats.Explore.limited then
        Unknown { detail = "state limit reached while searching cycles" }
      else Solves stats)

(* Verdict-typed consensus check (the canonical API).  Terminal checking
   parallelizes ([options.jobs]); the cycle search stays sequential —
   back-edge detection needs the DFS stack discipline (see [Parallel]). *)
let consensus_verdict ?(options = Search.default) config ~inputs =
  Subc_obs.Span.time "valence.consensus" @@ fun () ->
  let check_terminals_result =
    Search.check_terminals ~options config ~ok:(fun c ->
        Result.is_ok (consensus_ok ~inputs c))
  in
  match check_terminals_result with
  | Error (c, trace, stats) ->
    let reason =
      match consensus_ok ~inputs c with Error e -> e | Ok () -> assert false
    in
    Verdict.refuted ~explore:stats ~trace reason
  | Ok stats when stats.Explore.limited ->
    Verdict.limited ~explore:stats
      "state limit reached while checking terminals"
  | Ok stats -> (
    match Search.find_cycle ~options config with
    | Some trace, cycle_stats ->
      Verdict.refuted ~explore:cycle_stats ~trace
        "infinite schedule (protocol not wait-free)"
    | None, cycle_stats ->
      if cycle_stats.Explore.limited then
        Verdict.limited ~explore:cycle_stats
          "state limit reached while searching cycles"
      else
        Verdict.proved ~explore:stats
          "consensus: agreement + validity on every terminal, and every \
           schedule terminates")

let consensus_verdict_legacy ?max_states ?reduction ?jobs ?visited config
    ~inputs =
  consensus_verdict
    ~options:(Search.of_legacy ?max_states ?reduction ?jobs ?visited ())
    config ~inputs

module Vtbl = Hashtbl

(* Structural fingerprints replace the former marshal+MD5 digest: one
   traversal of the configuration, no marshal buffer (see {!Fingerprint}). *)
let fingerprint = Fingerprint.of_config

(* Memoized valence computation: the union over all reachable terminals of
   the decided values. *)
type valence_ctx = {
  memo : (Fingerprint.t, Value.t list) Vtbl.t;
  mutable budget : int;
}

let rec valence_rec ctx config =
  let key = fingerprint config in
  match Vtbl.find_opt ctx.memo key with
  | Some vs -> vs
  | None ->
    ctx.budget <- ctx.budget - 1;
    if ctx.budget < 0 then []
    else begin
      let vs =
        match Config.running config with
        | [] -> Task.distinct (Config.decisions config)
        | runnable ->
          List.concat_map
            (fun i ->
              List.concat_map
                (fun (c', _) -> valence_rec ctx c')
                (Step.step config i))
            runnable
          |> Task.distinct
      in
      Vtbl.replace ctx.memo key vs;
      vs
    end

let make_ctx max_states =
  { memo = Vtbl.create 1024; budget = Option.value max_states ~default:5_000_000 }

let valence ?max_states config =
  valence_rec (make_ctx max_states) config

type successor_valence = {
  proc : int;
  event : Step.event;
  valence : Value.t list;
}

type critical = {
  config : Config.t;
  trace : Trace.t;
  successors : successor_valence list;
}

let successors_of ctx config =
  List.concat_map
    (fun i ->
      List.map
        (fun (c', event) ->
          { proc = i; event; valence = valence_rec ctx c' })
        (Step.step config i))
    (Config.running config)

let find_critical ?max_states config =
  let ctx = make_ctx max_states in
  let bivalent c = List.length (valence_rec ctx c) >= 2 in
  if not (bivalent config) then None
  else
    let rec descend config rev_trace =
      if List.length rev_trace > 100_000 then None
      else
      let succs = successors_of ctx config in
      match
        List.find_opt (fun s -> List.length s.valence >= 2) succs
      with
      | None ->
        Some { config; trace = List.rev rev_trace; successors = succs }
      | Some s -> (
        (* Follow one bivalent successor; replay the step to recover the
           configuration. *)
        let next =
          List.find_map
            (fun (c', e) -> if e = s.event then Some c' else None)
            (Step.step config s.proc)
        in
        match next with
        | Some c' -> descend c' (Trace.Sched s.event :: rev_trace)
        | None -> None)
    in
    descend config []

let pp_critical ppf c =
  Format.fprintf ppf
    "@[<v>critical configuration after %d steps:@,%a@,pending steps:@,%a@]"
    (Trace.length c.trace) Trace.pp c.trace
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
         Format.fprintf ppf "  %a  =>  valence %a" Step.pp_event s.event
           Value.pp (Value.Vec s.valence)))
    c.successors
