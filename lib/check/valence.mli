(** Critical-configuration (valence) analysis — the engine behind the
    Section 6 experiments.

    For a consensus protocol given as an initial configuration, the valence
    of a configuration is the set of values some execution from it decides.
    A configuration is bivalent if its valence has ≥ 2 values, univalent
    otherwise; a critical configuration is a bivalent one all of whose
    successors are univalent (FLP / Herlihy).

    [check_consensus] is the full verdict: does the protocol solve
    consensus (agreement + validity on every reachable terminal, and no
    infinite schedule)?  [find_critical] reproduces the proof structure of
    Lemma 38 mechanically: it descends from the initial configuration
    through bivalent successors to a critical configuration and reports the
    pending steps. *)

open Subc_sim

type verdict =
  | Solves of Explore.stats
  | Violation of { reason : string; trace : Trace.t }
  | Diverges of { trace : Trace.t }
      (** an adversarial schedule revisits a configuration: the protocol is
          not wait-free *)
  | Unknown of { detail : string }  (** state limit exhausted *)

val pp_verdict : Format.formatter -> verdict -> unit

(** [consensus_verdict config ~inputs] — [inputs.(i)] is process [i]'s
    proposal; terminals must satisfy validity and agreement over decided
    values, every process must decide (no hung terminals), and no schedule
    may run forever.  Search knobs come from the
    {!Subc_sim.Search.options} record ([?options]): [options.jobs]
    parallelizes the terminal check ({!Subc_sim.Parallel}); the cycle
    search stays sequential.  The verdict status is deterministic either
    way. *)
val consensus_verdict :
  ?options:Search.options -> Config.t -> inputs:Value.t list -> Verdict.t

(** @deprecated Use {!consensus_verdict} with a {!Subc_sim.Search.options}
    record; this optional-argument spelling remains for one release. *)
val consensus_verdict_legacy :
  ?max_states:int ->
  ?reduction:Explore.reduction ->
  ?jobs:int ->
  ?visited:Subc_sim.Parallel.visited ->
  Config.t ->
  inputs:Value.t list ->
  Verdict.t
[@@deprecated "use Valence.consensus_verdict ?options (Search.options record)"]

(** @deprecated Use {!consensus_verdict}; the ad-hoc [verdict] shape
    remains for one release. *)
val check_consensus :
  ?max_states:int -> Config.t -> inputs:Value.t list -> verdict
[@@deprecated "use Valence.consensus_verdict (Verdict-typed)"]

(** [valence config] — all values reachable as decisions from [config].
    Decisions are the outputs of terminated processes. *)
val valence : ?max_states:int -> Config.t -> Value.t list

type successor_valence = {
  proc : int;  (** the process whose step was taken *)
  event : Step.event;
  valence : Value.t list;
}

type critical = {
  config : Config.t;
  trace : Trace.t;  (** schedule from the initial configuration *)
  successors : successor_valence list;
}

(** [find_critical config] — [None] if the initial configuration is already
    univalent (or no critical configuration exists within the bound). *)
val find_critical : ?max_states:int -> Config.t -> critical option

val pp_critical : Format.formatter -> critical -> unit
