open Subc_sim
module Obs = Subc_obs

type stats = {
  explore : Explore.stats option;
  note : string;
  metrics : (string * float) list;
}

type t =
  | Proved of stats
  | Refuted of { reason : string; trace : Trace.t; stats : stats }
  | Limited of stats

let mk ?explore ?(metrics = []) note = { explore; note; metrics }
let proved ?explore ?metrics note = Proved (mk ?explore ?metrics note)

let refuted ?explore ?metrics ~trace reason =
  Refuted { reason; trace; stats = mk ?explore ?metrics reason }

let limited ?explore ?metrics note = Limited (mk ?explore ?metrics note)

let stats = function Proved s | Limited s -> s | Refuted { stats; _ } -> stats
let note v = (stats v).note
let is_proved = function Proved _ -> true | _ -> false
let is_refuted = function Refuted _ -> true | _ -> false
let is_limited = function Limited _ -> true | _ -> false

let status_string = function
  | Proved _ -> "proved"
  | Refuted _ -> "refuted"
  | Limited _ -> "limited"

(* The CLI exit-code contract shared by every subcommand. *)
let exit_code = function Proved _ -> 0 | Refuted _ -> 1 | Limited _ -> 2

(* A refutation is conclusive bad news and wins over an inconclusive
   truncation; truncation wins over success. *)
let combined_exit vs =
  if List.exists is_refuted vs then 1
  else if List.exists is_limited vs then 2
  else 0

let with_metrics extra v =
  let add s = { s with metrics = s.metrics @ extra } in
  match v with
  | Proved s -> Proved (add s)
  | Limited s -> Limited (add s)
  | Refuted r -> Refuted { r with stats = add r.stats }

let pp_metrics ppf = function
  | [] -> ()
  | ms ->
    Format.fprintf ppf "@,metrics:";
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%g" k v) ms

let pp_explore ppf = function
  | None -> ()
  | Some e -> Format.fprintf ppf "@,%a" Explore.pp_stats e

let pp ppf v =
  match v with
  | Proved s ->
    Format.fprintf ppf "@[<v>PROVED: %s%a%a@]" s.note pp_explore s.explore
      pp_metrics s.metrics
  | Limited s ->
    Format.fprintf ppf "@[<v>LIMITED: %s%a%a@]" s.note pp_explore s.explore
      pp_metrics s.metrics
  | Refuted { reason; trace; stats = s } ->
    Format.fprintf ppf "@[<v>REFUTED: %s%a%a@,counterexample:@,%a@]" reason
      pp_explore s.explore pp_metrics s.metrics Trace.pp trace

let pp_summary ppf v =
  Format.fprintf ppf "%s: %s"
    (String.uppercase_ascii (status_string v))
    (note v)

(* JSON rendering through the Obs field encoder: one flat object per
   verdict, suitable for JSON-lines output. *)
let json_fields ?name v =
  let s = stats v in
  let field k f = (k, f) in
  List.concat
    [
      (match name with
      | Some n -> [ field "check" (Obs.Sink.Str n) ]
      | None -> []);
      [
        field "verdict" (Obs.Sink.Str (status_string v));
        field "exit_code" (Obs.Sink.Int (exit_code v));
        field "note" (Obs.Sink.Str s.note);
      ];
      (match v with
      | Refuted { trace; _ } ->
        [
          field "counterexample"
            (Obs.Sink.Str (Format.asprintf "%a" Trace.pp trace));
        ]
      | _ -> []);
      (match s.explore with
      | None -> []
      | Some e ->
        [
          field "states" (Obs.Sink.Int e.Explore.states);
          field "transitions" (Obs.Sink.Int e.Explore.transitions);
          field "terminals" (Obs.Sink.Int e.Explore.terminals);
          field "dedup_hits" (Obs.Sink.Int e.Explore.dedup_hits);
          field "source_skips" (Obs.Sink.Int e.Explore.source_skips);
          field "collision_bound" (Obs.Sink.Float e.Explore.collision_bound);
          field "limited" (Obs.Sink.Bool e.Explore.limited);
          field "limit_reason"
            (Obs.Sink.Str
               (Format.asprintf "%a" Explore.pp_limit_reason
                  e.Explore.limit_reason));
        ]);
      List.map (fun (k, x) -> field k (Obs.Sink.Float x)) s.metrics;
    ]

let to_json ?name v =
  let fields = json_fields ?name v in
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, f) ->
           Printf.sprintf "\"%s\":%s" (Obs.Sink.escape k)
             (Obs.Sink.json_of_field f))
         fields)
  ^ "}"
