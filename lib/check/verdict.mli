(** The one shared checker result type.

    Every checker in this library — task conformance, wait-freedom,
    t-resilience, linearizability, refinement, consensus valence — answers
    the same three-way question: the property is {e proved} for the
    instance (the exploration was exhaustive and clean), {e refuted} by a
    concrete counterexample schedule, or the search was {e limited} (a
    state or depth budget truncated it, so there is no verdict).  This
    module gives that answer one concrete type, one pretty-printer, one
    JSON rendering, and one exit-code contract, so the CLI and the bench
    harness stop pattern-matching per-checker shapes.

    Exit-code contract: 0 proved / 1 refuted / 2 limited. *)

open Subc_sim

type stats = {
  explore : Explore.stats option;
      (** the (last) exploration behind the verdict, when there was one *)
  note : string;  (** one-line human-readable summary *)
  metrics : (string * float) list;
      (** auxiliary numbers (solo bounds, outcome counts, reduction
          ratios); rendered into both text and JSON output *)
}

type t =
  | Proved of stats
  | Refuted of { reason : string; trace : Trace.t; stats : stats }
      (** [trace] is the counterexample schedule (crash events included) *)
  | Limited of stats

(** {1 Constructors} *)

val proved :
  ?explore:Explore.stats -> ?metrics:(string * float) list -> string -> t

val refuted :
  ?explore:Explore.stats ->
  ?metrics:(string * float) list ->
  trace:Trace.t ->
  string ->
  t

val limited :
  ?explore:Explore.stats -> ?metrics:(string * float) list -> string -> t

val with_metrics : (string * float) list -> t -> t
(** Append metrics to an existing verdict. *)

(** {1 Accessors} *)

val stats : t -> stats
val note : t -> string
val is_proved : t -> bool
val is_refuted : t -> bool
val is_limited : t -> bool

val status_string : t -> string
(** ["proved"], ["refuted"], or ["limited"]. *)

(** {1 The exit-code contract} *)

val exit_code : t -> int
(** 0 proved / 1 refuted / 2 limited. *)

val combined_exit : t list -> int
(** For a sweep of checks: 1 if any refuted (conclusive bad news wins),
    else 2 if any limited, else 0. *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** Full rendering: status, note, exploration stats, metrics, and the
    counterexample trace for refutations. *)

val pp_summary : Format.formatter -> t -> unit
(** One line: [STATUS: note]. *)

val to_json : ?name:string -> t -> string
(** One flat JSON object (one line), with the optional [name] under
    ["check"].  Used by the CLI [--json] path and the CI metrics
    artifact. *)
