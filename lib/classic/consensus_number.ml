open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register

type family =
  | Register
  | Wrn of int
  | Swap
  | Test_and_set
  | Fetch_and_add
  | Queue
  | Cas
  | Consensus_object
  | Strong_set_election of int

let family_name = function
  | Register -> "register"
  | Wrn k -> Printf.sprintf "WRN_%d" k
  | Swap -> "swap"
  | Test_and_set -> "test-and-set"
  | Fetch_and_add -> "fetch-and-add"
  | Queue -> "queue"
  | Cas -> "compare-and-swap"
  | Consensus_object -> "consensus object"
  | Strong_set_election k -> Printf.sprintf "strong-set-election(%d,%d)" k (k - 1)

let all_families =
  [
    Register; Wrn 3; Strong_set_election 3; Swap; Wrn 2; Test_and_set;
    Fetch_and_add; Queue; Cas; Consensus_object;
  ]

let known_consensus_number = function
  | Register | Wrn _ -> Some 1  (* WRN₂ is the exception, handled below *)
  | Swap | Test_and_set | Fetch_and_add | Queue -> Some 2
  | Strong_set_election _ -> Some 1
  | Cas | Consensus_object -> None

let known_consensus_number = function
  | Wrn 2 -> Some 2
  | f -> known_consensus_number f

(* Announce registers: every protocol first publishes its proposal. *)
let with_announcements store n body =
  let store, regs = Store.alloc_many store n Register.model_bot in
  let program me v =
    let* () = Register.write (List.nth regs me) v in
    body regs me v
  in
  (store, program)

let read_announcement regs who = Register.read (List.nth regs who)

(* The canonical protocol per family.  "first wins" objects let the winner
   decide its own value and losers look up the winner's announcement when
   they can identify the winner; where the object does not reveal the
   winner (test-and-set, fetch-and-add, queue with n ≥ 3), losers adopt
   the minimum announcement they can see — the natural (and for n ≥ 3
   doomed) generalization. *)
let protocol store family ~n =
  let values = List.init n (fun i -> Value.Int i) in
  let min_announced regs me v =
    let* seen = Program.map_list Register.read regs in
    let candidates = List.filter (fun c -> not (Value.is_bot c)) seen in
    ignore me;
    Program.return
      (List.fold_left
         (fun acc c -> if Value.compare c acc < 0 then c else acc)
         v candidates)
  in
  let store, program =
    match family with
    | Register ->
      with_announcements store n min_announced
    | Wrn k ->
      (* The Algorithm-2 mirror: write-and-read-next on your own index and
         adopt what you read.  For k = n = 2 this is the swap protocol. *)
      let store, w = Store.alloc store (Subc_objects.Wrn.model ~k) in
      ( store,
        fun me v ->
          let* r = Subc_objects.Wrn.wrn w (me mod k) v in
          Program.return (if Value.is_bot r then v else r) )
    | Swap ->
      let store, s = Store.alloc store Subc_objects.Swap_obj.model_bot in
      with_announcements store n (fun regs me v ->
          let* prev = Subc_objects.Swap_obj.swap s (Value.Int me) in
          match prev with
          | Value.Bot -> Program.return v
          | Value.Int who -> read_announcement regs who
          | _ -> assert false)
    | Test_and_set ->
      let store, b = Store.alloc store Subc_objects.Tas_obj.model in
      with_announcements store n (fun regs me v ->
          let* already = Subc_objects.Tas_obj.test_and_set b in
          if not already then Program.return v
          else if n = 2 then read_announcement regs (1 - me)
          else min_announced regs me v)
    | Fetch_and_add ->
      let store, f = Store.alloc store Subc_objects.Faa_obj.model in
      with_announcements store n (fun regs me v ->
          let* rank = Subc_objects.Faa_obj.fetch_and_add f 1 in
          if rank = 0 then Program.return v
          else if n = 2 then read_announcement regs (1 - me)
          else min_announced regs me v)
    | Queue ->
      let store, q =
        Store.alloc store (Subc_objects.Queue_obj.model [ Value.Sym "win" ])
      in
      with_announcements store n (fun regs me v ->
          let* tok = Subc_objects.Queue_obj.dequeue q in
          if Value.equal tok (Value.Sym "win") then Program.return v
          else if n = 2 then read_announcement regs (1 - me)
          else min_announced regs me v)
    | Cas ->
      let store, c = Store.alloc store Subc_objects.Cas_obj.model_bot in
      let program _me v =
        let* _ =
          Subc_objects.Cas_obj.compare_and_swap c ~expected:Value.Bot ~desired:v
        in
        Subc_objects.Cas_obj.read c
      in
      (store, fun me v -> program me v)
    | Consensus_object ->
      let store, c = Store.alloc store Subc_objects.Consensus_obj.model in
      (store, fun _me v -> Subc_objects.Consensus_obj.propose c v)
    | Strong_set_election k ->
      let store, h = Store.alloc store (Subc_objects.Sse_obj.model ~k ~j:(k - 1)) in
      with_announcements store n (fun regs me v ->
          let* w = Subc_objects.Sse_obj.propose h me in
          if w = me then Program.return v else read_announcement regs w)
  in
  (store, List.mapi program values)

let verdict ?max_states family ~n =
  let store, programs = protocol Store.empty family ~n in
  let inputs = List.init n (fun i -> Value.Int i) in
  let config = Config.make store programs in
  let contains s sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
    in
    scan 0
  in
  let options =
    match max_states with
    | None -> Subc_sim.Search.default
    | Some n -> Subc_sim.Search.(with_max_states n default)
  in
  match Subc_check.Valence.consensus_verdict ~options config ~inputs with
  | Subc_check.Verdict.Proved _ -> `Solves
  | Subc_check.Verdict.Refuted { reason; _ } ->
    if contains reason "infinite schedule" then `Diverges else `Violates
  | Subc_check.Verdict.Limited _ -> `Unknown
