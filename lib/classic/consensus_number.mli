(** Herlihy's consensus-number table, machine-checked.

    For each object class we run its {e canonical} n-process consensus
    protocol — the textbook protocol where one exists, the natural
    generalization where none does — and let the valence engine deliver
    the verdict.  The expected shape is Herlihy's hierarchy refined by the
    paper: registers and WRN{_k} (k ≥ 3) fail already at n = 2; swap
    (= WRN₂), test-and-set, fetch-and-add and queues solve n = 2 but fail
    at n = 3; compare-and-swap and consensus objects solve both.

    A failed verdict refutes {e that protocol}, not every protocol — but
    for the objects with consensus number 2 the n = 3 failure of the
    canonical protocol is exactly the textbook separation, and for n = 2
    the successes are exhaustive proofs. *)

open Subc_sim

type family =
  | Register
  | Wrn of int
  | Swap
  | Test_and_set
  | Fetch_and_add
  | Queue
  | Cas
  | Consensus_object
  | Strong_set_election of int  (** the S2 object, (k, k−1) *)

val family_name : family -> string
val all_families : family list

(** Known consensus number, for the table ([None] = infinite). *)
val known_consensus_number : family -> int option

(** [protocol store family ~n] — the canonical consensus protocol: one
    program per process, proposing values 0, …, n−1. *)
val protocol : Store.t -> family -> n:int -> Store.t * Value.t Program.t list

(** [verdict family ~n] — run the canonical protocol through
    {!Subc_check.Valence.consensus_verdict}-style analysis: [`Solves],
    [`Violates] or [`Diverges]. *)
val verdict :
  ?max_states:int -> family -> n:int -> [ `Solves | `Violates | `Diverges | `Unknown ]
