open Subc_sim

type t = { n : int; group_size : int; groups : Store.handle list }

let agreement_bound ~n ~group_size = (n + group_size - 1) / group_size

let alloc store ~n ~group_size =
  let n_groups = agreement_bound ~n ~group_size in
  let store, groups =
    Store.alloc_many store n_groups Subc_objects.Consensus_obj.model
  in
  (store, { n; group_size; groups })

let propose t ~i v =
  assert (0 <= i && i < t.n);
  let group = List.nth t.groups (i / t.group_size) in
  Subc_objects.Consensus_obj.propose group v
