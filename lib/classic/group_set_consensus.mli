(** Baseline: k-set consensus for n processes from consensus objects —
    partition the processes into k groups, one consensus object each.

    Used by experiment E7 to contrast the WRN ratio (k−1)/k with what full
    consensus groups achieve (⌈n/m⌉-set consensus from m-process groups). *)

open Subc_sim

type t

(** [alloc store ~n ~group_size] gives ⌈n/group_size⌉-set consensus. *)
val alloc : Store.t -> n:int -> group_size:int -> Store.t * t

val agreement_bound : n:int -> group_size:int -> int
val propose : t -> i:int -> Value.t -> Value.t Program.t
