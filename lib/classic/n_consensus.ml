open Subc_sim
open Program.Syntax

type t = Cas of Store.handle | Obj of Store.handle

let alloc_cas store =
  let store, h = Store.alloc store Subc_objects.Cas_obj.model_bot in
  (store, Cas h)

let alloc_consensus_object store =
  let store, h = Store.alloc store Subc_objects.Consensus_obj.model in
  (store, Obj h)

let propose t v =
  match t with
  | Obj h -> Subc_objects.Consensus_obj.propose h v
  | Cas h ->
    let* _won =
      Subc_objects.Cas_obj.compare_and_swap h ~expected:Value.Bot ~desired:v
    in
    Subc_objects.Cas_obj.read h
