(** n-process consensus from compare-and-swap (infinite consensus number)
    and from the consensus-object primitive — the top of the hierarchy. *)

open Subc_sim

type t

val alloc_cas : Store.t -> Store.t * t
val alloc_consensus_object : Store.t -> Store.t * t

(** [propose t v] — any number of processes. *)
val propose : t -> Value.t -> Value.t Program.t
