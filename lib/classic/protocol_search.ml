open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register

type decision = Own | Other

type protocol = {
  ops : int;
  indices : int array array;  (* indices.(proc).(op) = WRN index *)
  decide : decision array array;
      (* decide.(proc).(pattern) where bit i of pattern is set iff the
         i-th WRN response was non-⊥ *)
}

let rec tuples ~arity ~width =
  (* All [width]-digit numbers in base [arity], as arrays. *)
  if width = 0 then [ [||] ]
  else
    List.concat_map
      (fun rest -> List.init arity (fun d -> Array.append [| d |] rest))
      (tuples ~arity ~width:(width - 1))

let enumerate ~k ~ops =
  let index_choices = tuples ~arity:k ~width:ops in
  let patterns = 1 lsl ops in
  let decision_tables =
    List.map
      (fun t -> Array.map (fun d -> if d = 0 then Own else Other) t)
      (tuples ~arity:2 ~width:patterns)
  in
  let per_proc =
    List.concat_map
      (fun idx -> List.map (fun dec -> (idx, dec)) decision_tables)
      index_choices
  in
  List.concat_map
    (fun (i0, d0) ->
      List.map
        (fun (i1, d1) ->
          { ops; indices = [| i0; i1 |]; decide = [| d0; d1 |] })
        per_proc)
    per_proc

let describe p =
  let proc me =
    Printf.sprintf "P%d: wrn@[%s] decide[%s]" me
      (String.concat ","
         (Array.to_list (Array.map string_of_int p.indices.(me))))
      (String.concat ""
         (Array.to_list
            (Array.map (fun d -> match d with Own -> "o" | Other -> "x")
               p.decide.(me))))
  in
  proc 0 ^ " | " ^ proc 1

let program p ~wrn ~announcements ~me v =
  let* () = Register.write (List.nth announcements me) v in
  let rec steps i pattern =
    if i >= p.ops then
      match p.decide.(me).(pattern) with
      | Own -> Program.return v
      | Other -> Register.read (List.nth announcements (1 - me))
    else
      let* r =
        Subc_objects.Wrn.wrn wrn p.indices.(me).(i) (Value.Int (1000 + me))
      in
      steps (i + 1) (pattern lor (if Value.is_bot r then 0 else 1 lsl i))
  in
  steps 0 0

let solves_consensus ?max_states ~k p =
  let store, wrn = Store.alloc Store.empty (Subc_objects.Wrn.model ~k) in
  let store, announcements = Store.alloc_many store 2 Register.model_bot in
  let inputs = [ Value.Int 0; Value.Int 1 ] in
  let programs =
    List.mapi (fun me v -> program p ~wrn ~announcements ~me v) inputs
  in
  let config = Config.make store programs in
  let ok final =
    let os = Subc_tasks.Task.outcomes ~inputs final in
    Result.is_ok (Subc_tasks.Task.all_decided.Subc_tasks.Task.check os)
    && Result.is_ok (Subc_tasks.Task.consensus.Subc_tasks.Task.check os)
  in
  (* Straight-line programs terminate on every schedule, so checking
     terminals is complete. *)
  Result.is_ok (Explore.check_terminals ?max_states config ~ok)

type census = {
  total : int;
  solving : int;
  example_solver : protocol option;
}

let census ?max_states ~k ~ops () =
  let protocols = enumerate ~k ~ops in
  List.fold_left
    (fun acc p ->
      if solves_consensus ?max_states ~k p then
        {
          acc with
          solving = acc.solving + 1;
          example_solver =
            (match acc.example_solver with Some _ as s -> s | None -> Some p);
        }
      else acc)
    { total = List.length protocols; solving = 0; example_solver = None }
    protocols
