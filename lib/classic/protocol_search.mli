(** Exhaustive protocol-space refutation (experiment E14).

    Lemma 38 quantifies over {e all} algorithms; a model checker refutes
    one protocol at a time.  For {e bounded} protocol classes, however, the
    quantifier itself is finite and can be discharged by enumeration: this
    module generates every 2-process consensus protocol in a syntactic
    class over one WRN{_k} object plus announcement registers, model-checks
    each, and reports how many solve consensus.

    The class [straight_line ~k ~ops]: each process announces its value,
    then performs [ops] WRN invocations with protocol-chosen constant
    indices, writing its own marker; it finally decides Own or Other
    (reading the other's announcement) as a protocol-chosen function of
    the abstracted response pattern (⊥ / non-⊥ per invocation).

    Results (machine-checked): for k = 2 the class contains working
    protocols (the swap protocol is one of them); for k ≥ 3 {e none} of
    the protocols in the class solves consensus — Lemma 38's conclusion,
    proved exhaustively for this class rather than sampled. *)


type protocol

(** [enumerate ~k ~ops] — all protocols of the class ([ops] WRN steps per
    process). *)
val enumerate : k:int -> ops:int -> protocol list

val describe : protocol -> string

(** [solves_consensus ~k protocol] — exhaustive verdict for inputs (0,1). *)
val solves_consensus : ?max_states:int -> k:int -> protocol -> bool

type census = {
  total : int;
  solving : int;
  example_solver : protocol option;
}

(** [census ~k ~ops] — enumerate and check the whole class. *)
val census : ?max_states:int -> k:int -> ops:int -> unit -> census
