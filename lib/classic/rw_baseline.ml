open Subc_sim
open Program.Syntax
module Snapshot_api = Subc_rwmem.Snapshot_api

type t = { k : int; announce : Snapshot_api.t }

let alloc store ~k =
  let store, announce = Snapshot_api.primitive store k in
  (store, { k; announce })

let propose t ~i v =
  assert (0 <= i && i < t.k);
  let* () = t.announce.Snapshot_api.update ~me:i v in
  let* view = t.announce.Snapshot_api.scan in
  let seen = List.filter (fun c -> not (Value.is_bot c)) (Value.to_vec view) in
  let min_seen =
    List.fold_left
      (fun acc c -> if Value.compare c acc < 0 then c else acc)
      v seen
  in
  Program.return min_seen
