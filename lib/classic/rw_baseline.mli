(** The register-only baseline of experiment E2.

    With registers alone, k processes can only solve the trivial k-set
    consensus: this "best-effort" protocol (announce, snapshot, adopt the
    minimum proposal seen) guarantees validity but an adversary can drive
    it to k distinct decisions — which the model checker exhibits — whereas
    one WRN{_k} object guarantees k−1 (Corollary 10). *)

open Subc_sim

type t

val alloc : Store.t -> k:int -> Store.t * t
val propose : t -> i:int -> Value.t -> Value.t Program.t
