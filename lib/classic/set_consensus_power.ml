open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register
module Task = Subc_tasks.Task

type family =
  | Registers
  | Wrn_objects of int
  | Two_consensus_pairs
  | Sse_object of int
  | Cas_object

let family_name = function
  | Registers -> "registers"
  | Wrn_objects j -> Printf.sprintf "WRN_%d objects" j
  | Two_consensus_pairs -> "2-consensus pairs"
  | Sse_object j -> Printf.sprintf "SSE(%d,%d) object" j (j - 1)
  | Cas_object -> "compare-and-swap"

let applicable family ~n =
  match family with Sse_object j -> n <= j | _ -> true

let predicted_bound family ~n =
  match family with
  | Registers -> n
  | Wrn_objects j -> ((j - 1) * (n / j)) + min (n mod j) (j - 1)
  | Two_consensus_pairs -> (n + 1) / 2
  | Sse_object j -> min n (j - 1)
  | Cas_object -> 1

let predicted family ~n ~k = predicted_bound family ~n <= k

(* Canonical protocols.  Every protocol announces its proposal first so
   adopters can look values up by process index. *)
let protocol store family ~n ~k =
  let store, announcements = Store.alloc_many store n Register.model_bot in
  let announce me v = Register.write (List.nth announcements me) v in
  let value_of who = Register.read (List.nth announcements who) in
  match family with
  | Registers ->
    (* Decide own value: the trivial n-set consensus, and the best
       registers can do wait-free. *)
    (store, fun _me v -> Program.return v)
  | Wrn_objects j ->
    let store, alg = Store.alloc_many store ((n + j - 1) / j) (Subc_objects.Wrn.model ~k:j) in
    ( store,
      fun me v ->
        let group = List.nth alg (me / j) in
        let* r = Subc_objects.Wrn.wrn group (me mod j) v in
        Program.return (if Value.is_bot r then v else r) )
  | Two_consensus_pairs ->
    (* Processes 2g and 2g+1 share a swap; an unpaired last process
       decides its own value. *)
    let pairs = n / 2 in
    let store, swaps =
      Store.alloc_many store (max pairs 1) Subc_objects.Swap_obj.model_bot
    in
    ( store,
      fun me v ->
        if me >= 2 * pairs then Program.return v
        else
          let s = List.nth swaps (me / 2) in
          let* () = announce me v in
          let* prev = Subc_objects.Swap_obj.swap s (Value.Int me) in
          match prev with
          | Value.Bot -> Program.return v
          | Value.Int who -> value_of who
          | _ -> assert false )
  | Sse_object j ->
    let store, h = Store.alloc store (Subc_objects.Sse_obj.model ~k:j ~j:(j - 1)) in
    ( store,
      fun me v ->
        let* () = announce me v in
        let* w = Subc_objects.Sse_obj.propose h me in
        if w = me then Program.return v else value_of w )
  | Cas_object ->
    let store, c = Store.alloc store Subc_objects.Cas_obj.model_bot in
    ( store,
      fun _me v ->
        let* _ = Subc_objects.Cas_obj.compare_and_swap c ~expected:Value.Bot ~desired:v in
        Subc_objects.Cas_obj.read c )
  |> fun (store, p) ->
  ignore k;
  (store, p)

let verdict ?max_states family ~n ~k =
  let store, program = protocol Store.empty family ~n ~k in
  let inputs = List.init n (fun i -> Value.Int (100 + i)) in
  let programs = List.mapi program inputs in
  let task = Task.conj (Task.set_consensus k) Task.all_decided in
  let config = Config.make store programs in
  match
    Explore.check_terminals ?max_states config ~ok:(fun final ->
        Task.satisfies task ~inputs final)
  with
  | Error _ -> `Violates
  | Ok stats when stats.Explore.limited -> `Unknown
  | Ok _ -> (
    match Explore.find_cycle ?max_states config with
    | Some _, _ -> `Diverges
    | None, stats -> if stats.Explore.limited then `Unknown else `Solves)
