(** Set-consensus power classification (the paper's conclusion).

    The paper conjectures that set-consensus power — which (n,k)-set
    consensus tasks an object can solve — is the right yardstick for
    deterministic objects below 2-consensus.  This module implements, for
    each object family, its {e canonical} (n,k)-set-consensus protocol and
    the theoretical prediction of where it succeeds, so experiment E13 can
    chart the power matrix and the model checker can confirm every cell:

    - registers: solvable iff k ≥ n (trivial decide-own; anything better is
      BG/HS/SZ-impossible);
    - WRN{_j} objects: Algorithm 6's bound (j−1)⌊n/j⌋ + min(n mod j, j−1);
    - 2-consensus pairs (swap groups): ⌈n/2⌉;
    - the (j, j−1)-strong-set-election object: min(n, j−1) for n ≤ j;
    - compare-and-swap: everything. *)

type family =
  | Registers
  | Wrn_objects of int  (** WRN{_j} *)
  | Two_consensus_pairs  (** swap-backed 2-consensus per pair of processes *)
  | Sse_object of int  (** the (j, j−1)-strong-set-election object *)
  | Cas_object

val family_name : family -> string

(** [applicable family ~n] — some families only support few processes
    (the one-shot SSE object has j ports). *)
val applicable : family -> n:int -> bool

(** The theoretical agreement bound the canonical protocol achieves. *)
val predicted_bound : family -> n:int -> int

(** [predicted family ~n ~k] = [predicted_bound family ~n <= k]. *)
val predicted : family -> n:int -> k:int -> bool

(** [verdict family ~n ~k] — model-check the canonical protocol against
    the (n,k)-set-consensus task (exhaustive). *)
val verdict :
  ?max_states:int ->
  family ->
  n:int ->
  k:int ->
  [ `Solves | `Violates | `Diverges | `Unknown ]
