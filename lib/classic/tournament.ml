open Subc_sim
open Program.Syntax
module Consensus_obj = Subc_objects.Consensus_obj

(* The tree is stored as a heap-indexed array of consensus objects:
   node 1 is the root, node [v] has children [2v] and [2v+1]; leaves are
   [width + slot] for a power-of-two [width] ≥ n. *)
type t = { width : int; nodes : Store.handle list }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let alloc store ~n =
  assert (n >= 1);
  let width = next_pow2 n 1 in
  let store, nodes = Store.alloc_many store (2 * width) Consensus_obj.model in
  (store, { width; nodes })

let node t v = List.nth t.nodes v

let play t ~me =
  assert (0 <= me && me < t.width);
  let rec climb v =
    if v < 1 then Program.return true
    else
      let* winner = Consensus_obj.propose (node t v) (Value.Int me) in
      if Value.equal winner (Value.Int me) then climb (v / 2)
      else Program.return false
  in
  climb ((t.width + me) / 2)
