(** n-process one-shot leader election (test-and-set) from 2-process
    consensus objects, by binary tournament — the Common2-style positive
    direction that frames the paper's introduction: consensus number 2
    suffices for n-process test-and-set-like objects.

    Each internal node of a complete binary tree holds one consensus
    object; a process starts at its leaf and climbs, at each node proposing
    its identifier.  It advances iff the node decided its identifier (it
    was first there); otherwise it loses.  At most one process advances
    from each subtree, so every node sees at most two competitors, and the
    unique process that wins the root is the leader:

    - exactly one participant wins;
    - a participant that runs after some participant completed never wins
      unless that one lost (first-wins semantics);
    - wait-free: ⌈log₂ n⌉ steps. *)

open Subc_sim

type t

(** [alloc store ~n] builds the tree for [n] slots. *)
val alloc : Store.t -> n:int -> Store.t * t

(** [play t ~me] returns [true] iff [me] (a slot in [0, n)) is the leader. *)
val play : t -> me:int -> bool Program.t
