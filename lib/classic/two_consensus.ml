open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register

type mechanism =
  | Swap of Store.handle
  | Wrn2 of Store.handle
  | Tas of Store.handle
  | Queue of Store.handle

type t = { mechanism : mechanism; proposals : Store.handle list }

let alloc_proposals store =
  Store.alloc_many store 2 Register.model_bot

let alloc_swap store =
  let store, s = Store.alloc store Subc_objects.Swap_obj.model_bot in
  let store, proposals = alloc_proposals store in
  (store, { mechanism = Swap s; proposals })

let alloc_wrn2 store =
  let store, w = Store.alloc store (Subc_objects.Wrn.model ~k:2) in
  let store, proposals = alloc_proposals store in
  (store, { mechanism = Wrn2 w; proposals })

let alloc_test_and_set store =
  let store, b = Store.alloc store Subc_objects.Tas_obj.model in
  let store, proposals = alloc_proposals store in
  (store, { mechanism = Tas b; proposals })

let alloc_queue store =
  let store, q =
    Store.alloc store (Subc_objects.Queue_obj.model [ Value.Sym "win" ])
  in
  let store, proposals = alloc_proposals store in
  (store, { mechanism = Queue q; proposals })

let other_proposal t ~me = Register.read (List.nth t.proposals (1 - me))

let propose t ~me v =
  assert (me = 0 || me = 1);
  let* () = Register.write (List.nth t.proposals me) v in
  match t.mechanism with
  | Wrn2 w ->
    (* WRN₂ is a swap: the second invoker reads the first's value. *)
    let* r = Subc_objects.Wrn.wrn w me v in
    if Value.is_bot r then Program.return v else Program.return r
  | Swap s ->
    let* r = Subc_objects.Swap_obj.swap s (Value.Int me) in
    if Value.is_bot r then Program.return v else other_proposal t ~me
  | Tas b ->
    let* already_set = Subc_objects.Tas_obj.test_and_set b in
    if already_set then other_proposal t ~me else Program.return v
  | Queue q ->
    let* token = Subc_objects.Queue_obj.dequeue q in
    if Value.equal token (Value.Sym "win") then Program.return v
    else other_proposal t ~me
