(** Herlihy's classic 2-process consensus protocols from consensus-number-2
    objects — the upper boundary of the paper's band.

    Each [alloc_*] returns a two-process protocol [propose ~me v] that
    solves consensus for processes 0 and 1; the model checker verifies
    agreement, validity and wait-freedom exhaustively (experiment E6's
    positive half).  [alloc_wrn2] is the paper's observation that WRN{_2}
    {e is} a swap object: the protocol uses a WRN{_2} directly. *)

open Subc_sim

type t

val alloc_swap : Store.t -> Store.t * t
val alloc_wrn2 : Store.t -> Store.t * t
val alloc_test_and_set : Store.t -> Store.t * t
val alloc_queue : Store.t -> Store.t * t

(** [propose t ~me v] — [me] ∈ {0, 1}. *)
val propose : t -> me:int -> Value.t -> Value.t Program.t
