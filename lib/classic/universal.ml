open Subc_sim
open Program.Syntax
module Consensus_obj = Subc_objects.Consensus_obj

type t = { n : int; spec : Obj_model.t; cells : Store.handle list }

let alloc store ~n ~spec =
  let store, cells = Store.alloc_many store n Consensus_obj.model in
  (store, { n; spec; cells })

(* Replay a decided prefix through the sequential specification. *)
let replay spec ops =
  List.fold_left
    (fun state (_, op) ->
      match spec.Obj_model.apply state op with
      | [ (state', _) ] -> state'
      | _ -> invalid_arg "Universal: specification must be deterministic")
    spec.Obj_model.init ops

let decode_decision v =
  match v with
  | Value.Pair (Value.Int who, Value.Pair (Value.Sym name, Value.Vec args)) ->
    (who, Op.make name args)
  | _ -> invalid_arg "Universal: malformed cell decision"

let encode ~me op =
  Value.Pair
    (Value.Int me, Value.Pair (Value.Sym op.Op.name, Value.Vec op.Op.args))

let perform t ~me op =
  assert (0 <= me && me < t.n);
  let mine = encode ~me op in
  let rec claim cell prefix =
    if cell >= t.n then invalid_arg "Universal: more operations than cells"
    else
      let* decided = Consensus_obj.propose (List.nth t.cells cell) mine in
      let who, dop = decode_decision decided in
      if who = me then begin
        let state = replay t.spec (List.rev prefix) in
        match t.spec.Obj_model.apply state dop with
        | [ (_, response) ] -> Program.return response
        | _ -> invalid_arg "Universal: specification must be deterministic"
      end
      else claim (cell + 1) ((who, dop) :: prefix)
  in
  claim 0 []
