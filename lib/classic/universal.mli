(** Herlihy's universal construction, bounded one-shot variant: any
    deterministic sequential object, implemented for [n] processes from
    consensus objects and registers.

    A chain of [n] cells, each holding one consensus object, decides the
    global order of operations: a process repeatedly proposes its
    (identifier, operation) pair at the first undecided cell; whichever
    pair wins occupies that slot in the linearization.  After its own
    operation wins some cell [c], the process replays the decided prefix
    through the sequential specification to compute its response.  Each
    process performs at most one operation here, so [n] cells suffice and
    the construction is wait-free (a process loses a cell only to a
    distinct winner, and there are at most n−1 others).

    This is the "n-consensus objects are universal for n processes" half
    of Herlihy's programme that the consensus hierarchy — and hence this
    paper's refinement of it — is built on. *)

open Subc_sim

type t

(** [alloc store ~n ~spec] — [spec] is the deterministic sequential object
    to implement (its nondeterministic transitions must be singletons). *)
val alloc : Store.t -> n:int -> spec:Obj_model.t -> Store.t * t

(** [perform t ~me op] — process [me]'s one operation; returns the response
    the sequential specification gives at this operation's linearization
    point. *)
val perform : t -> me:int -> Op.t -> Value.t Program.t
