open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register
module Wrn = Subc_objects.Wrn

type style = Mirror_alg2 | Same_index | Adjacent_announce | Busy_wait

type t = {
  k : int;
  style : style;
  wrn : Store.handle;
  proposals : Store.handle list;
}

let alloc store ~k ~style =
  assert (k >= 2);
  let store, wrn = Store.alloc store (Wrn.model ~k) in
  let store, proposals = Store.alloc_many store 2 Register.model_bot in
  (store, { k; style; wrn; proposals })

let k t = t.k

let decide_own_or r ~own = if Value.is_bot r then own else r

let propose t ~me v =
  assert (me = 0 || me = 1);
  match t.style with
  | Mirror_alg2 ->
    let+ r = Wrn.wrn t.wrn me v in
    decide_own_or r ~own:v
  | Same_index ->
    let+ r = Wrn.wrn t.wrn 0 v in
    decide_own_or r ~own:v
  | Adjacent_announce ->
    let* () = Register.write (List.nth t.proposals me) v in
    let* r = Wrn.wrn t.wrn me (Value.Int me) in
    if Value.is_bot r then Program.return v
    else Register.read (List.nth t.proposals (1 - me))
  | Busy_wait ->
    if me = 0 then
      let+ r = Wrn.wrn t.wrn 0 v in
      decide_own_or r ~own:v
    else
      let rec retry () =
        let* () = Program.checkpoint (Value.Sym "busy-wait") in
        let* r = Wrn.wrn t.wrn 1 v in
        if Value.is_bot r then retry () else Program.return r
      in
      retry ()
