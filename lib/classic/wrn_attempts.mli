(** Candidate 2-process consensus protocols over WRN{_k} (k ≥ 3) — all
    doomed by Lemma 38, each exhibiting one of its failure modes.

    Lemma 38 proves no wait-free 2-process consensus algorithm exists from
    registers and WRN{_k} objects with k ≥ 3: at a critical configuration
    the two pending WRN steps either use the same index (the writes commute
    for the reader of a third cell) or different indices, at least one pair
    of which is non-adjacent modulo k (the steps commute for a solo run).
    These constructive candidates let the model checker exhibit concrete
    violating schedules (experiment E6), complementing the exhaustively
    verified success of the very same protocol shapes on WRN{_2}. *)

open Subc_sim

type style =
  | Mirror_alg2
      (** run Algorithm 2's two-process pattern on indices 0 and 1 — for
          k ≥ 3, process 1 reads cell 2, which nobody writes *)
  | Same_index  (** both processes use index 0: writes overwrite silently *)
  | Adjacent_announce
      (** announce proposals in registers, then WRN on adjacent indices —
          the asymmetry leaves process 1 blind *)
  | Busy_wait
      (** process 1 retries until it sees its neighbor's cell — not
          wait-free: the checker finds an infinite schedule *)

type t

val k : t -> int
val alloc : Store.t -> k:int -> style:style -> Store.t * t

(** [propose t ~me v] — [me] ∈ {0, 1}. *)
val propose : t -> me:int -> Value.t -> Value.t Program.t
