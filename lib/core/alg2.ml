open Subc_sim
open Program.Syntax

type t = { wrn : Store.handle; k : int }

let k t = t.k

let alloc store ~k ~one_shot =
  let model =
    if one_shot then Subc_objects.One_shot_wrn.model ~k
    else Subc_objects.Wrn.model ~k
  in
  let store, wrn = Store.alloc store model in
  (store, { wrn; k })

let propose t ~i v =
  assert (0 <= i && i < t.k);
  let* r = Subc_objects.Wrn.wrn t.wrn i v in
  if Value.is_bot r then Program.return v else Program.return r

(* WRN's "read cell (i+1) mod k" is ring-structured: rotations are the
   automorphisms, arbitrary transpositions are not. *)
let symmetry t ?input_base () =
  Symmetry.standard ~n:t.k ?input_base `Rotations
