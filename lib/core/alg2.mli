(** Algorithm 2 — (k−1)-set consensus for k processes from one WRN{_k}.

    Process {m P_i} invokes [wrn i v_i]; on {m \bot} it decides its own
    proposal, otherwise it decides the returned value.  The paper proves
    (Claims 3–8): the first invoker decides its own value, the last decides
    its successor's, and the last invoker's proposal is decided by nobody —
    at most k−1 distinct decisions (Corollary 9).  Since (k−1)-set consensus
    for k processes is unsolvable from registers, WRN{_k} is strictly
    stronger than registers (Corollary 10). *)

open Subc_sim

type t

val k : t -> int

(** [alloc store ~k ~one_shot] — with [one_shot] the underlying object is
    1sWRN{_k} (legal here: each index is used at most once). *)
val alloc : Store.t -> k:int -> one_shot:bool -> Store.t * t

(** [propose t ~i v] — process [i]'s program, deciding a value. *)
val propose : t -> i:int -> Value.t -> Value.t Program.t

(** [symmetry t ?input_base ()] — the rotation-group symmetry spec for the
    standard one-invocation-per-process harness (proposals
    [input_base..input_base+k-1] when given).  WRN's ring structure admits
    rotations but not arbitrary renamings. *)
val symmetry : t -> ?input_base:int -> unit -> Symmetry.t
