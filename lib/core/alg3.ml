open Subc_sim
open Program.Syntax

type flavor = Plain_wrn | Relaxed_wrn

type renamer =
  | Rename_grid
  | Rename_snapshot
  | Rename_immediate
  | Rename_identity of int

type instance = Plain of Store.handle | Relaxed of Alg4.t

type rename_state =
  | Grid of Subc_renaming.Grid_renaming.t
  | Snapshot of Subc_renaming.Snapshot_renaming.t
  | Immediate of Subc_renaming.Is_renaming.t
  | Identity of int

type t = {
  k : int;
  (* One WRN instance per function of the family, in sweep order. *)
  sweep : (Function_family.func * instance) list;
  rename : rename_state;
}

let instances t = List.length t.sweep
let k t = t.k

let alloc store ~k ~flavor ~renamer ?family () =
  let store, rename, name_bound =
    match renamer with
    | Rename_grid ->
      let store, g = Subc_renaming.Grid_renaming.alloc store ~k in
      (store, Grid g, Subc_renaming.Grid_renaming.bound ~k)
    | Rename_snapshot ->
      let store, s =
        Subc_renaming.Snapshot_renaming.alloc store ~slots:k
          ~snapshot:Subc_rwmem.Snapshot_api.primitive
      in
      (store, Snapshot s, Subc_renaming.Snapshot_renaming.bound ~k)
    | Rename_immediate ->
      let store, r = Subc_renaming.Is_renaming.alloc store ~k in
      (store, Immediate r, Subc_renaming.Is_renaming.bound ~k)
    | Rename_identity bound -> (store, Identity bound, bound)
  in
  let family =
    match family with
    | Some fs -> fs
    | None -> Function_family.covering ~names:name_bound ~k
  in
  let alloc_instance store =
    match flavor with
    | Plain_wrn ->
      let store, h = Store.alloc store (Subc_objects.Wrn.model ~k) in
      (store, Plain h)
    | Relaxed_wrn ->
      let store, a = Alg4.alloc store ~k in
      (store, Relaxed a)
  in
  let store, sweep =
    List.fold_left
      (fun (store, acc) f ->
        let store, inst = alloc_instance store in
        (store, (f, inst) :: acc))
      (store, []) family
  in
  (store, { k; sweep = List.rev sweep; rename })

let rename t ~slot ~id =
  match t.rename with
  | Grid g -> Subc_renaming.Grid_renaming.rename g ~me:id
  | Snapshot s -> Subc_renaming.Snapshot_renaming.rename s ~slot ~id
  | Immediate r -> Subc_renaming.Is_renaming.rename r ~slot ~id
  | Identity bound ->
    assert (0 <= id && id < bound);
    Program.return id

let invoke_instance inst ~i v =
  match inst with
  | Plain h -> Subc_objects.Wrn.wrn h i v
  | Relaxed a -> Alg4.rlx_wrn a ~i v

let propose t ~slot ~id v =
  let* j = rename t ~slot ~id in
  let rec sweep = function
    | [] -> Program.return v
    | (f, inst) :: rest ->
      let i = Function_family.apply f j in
      let* r = invoke_instance inst ~i v in
      if Value.is_bot r then sweep rest else Program.return r
  in
  sweep t.sweep
