(** Algorithm 3 — (k−1)-set consensus for k participants out of many.

    Participants first acquire small names through wait-free register-only
    renaming, then sweep an array of WRN{_k} objects — one per function of
    the family {m \mathcal{F}} mapping names to WRN indices, in a fixed
    order.  A process decides the first non-{m \bot} response it receives,
    or its own proposal after a full sweep.  Some iteration {m \ell^*}
    maps the ≤ k actual names onto all k indices, which forces a process to
    decide another's proposal there, and the last such proposal is decided
    by nobody (Claims 11–17).

    The array can hold plain WRN{_k} objects (processes may collide on an
    index — legal for the multi-shot object) or {e relaxed} WRN{_k}
    (Algorithm 4) built on 1sWRN{_k}, which tolerates collisions by giving
    up; correctness persists because iteration {m \ell^*} is collision-free
    (Claim 21). *)

open Subc_sim

type flavor = Plain_wrn | Relaxed_wrn

type renamer =
  | Rename_grid  (** splitter-grid renaming, names < k(k+1)/2 *)
  | Rename_snapshot  (** snapshot renaming on the primitive snapshot *)
  | Rename_immediate  (** immediate-snapshot (participating-set) renaming *)
  | Rename_identity of int
      (** no renaming: identifiers are already small names < the given
          bound (used to keep exhaustive instances small) *)

type t

(** [alloc store ~k ~flavor ~renamer ()] — [?family] defaults to
    [Function_family.covering] over the renamer's name bound. *)
val alloc :
  Store.t ->
  k:int ->
  flavor:flavor ->
  renamer:renamer ->
  ?family:Function_family.func list ->
  unit ->
  Store.t * t

(** Number of WRN instances allocated (the family size). *)
val instances : t -> int

val k : t -> int

(** [propose t ~slot ~id v] — [slot] < k indexes per-participant renaming
    state; [id] is the participant's original name. *)
val propose : t -> slot:int -> id:int -> Value.t -> Value.t Program.t
