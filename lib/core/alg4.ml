open Subc_sim
open Program.Syntax
module Counter = Subc_objects.Counter_obj

type t = { wrn1s : Store.handle; guards : Store.handle list; k : int }

let k t = t.k

let alloc store ~k =
  let store, wrn1s = Store.alloc store (Subc_objects.One_shot_wrn.model ~k) in
  let store, guards = Store.alloc_many store k Counter.model in
  (store, { wrn1s; guards; k })

let rlx_wrn t ~i v =
  assert (0 <= i && i < t.k);
  let guard = List.nth t.guards i in
  let* () = Counter.inc guard in
  let* c = Counter.read guard in
  if c = 1 then Subc_objects.One_shot_wrn.wrn t.wrn1s i v
  else Program.return Value.Bot
