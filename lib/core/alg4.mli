(** Algorithm 4 — relaxed WRN{_k} from 1sWRN{_k} and counters.

    Each index [i] is guarded by an atomic counter [A.(i)]: a caller first
    increments the counter, then reads it; only a caller that reads exactly
    1 invokes the underlying 1sWRN (it is then the unique process ever to do
    so with that index — the flag principle, Claim 19); every other caller
    gives up and returns {m \bot}.

    When exactly k processes arrive with k distinct indices, every one of
    them reaches the 1sWRN (Claim 21), so the relaxed object behaves like a
    real WRN{_k} in the iteration {m \ell^*} that Algorithm 3's proof
    relies on. *)

open Subc_sim

type t

val k : t -> int

val alloc : Store.t -> k:int -> Store.t * t

(** [rlx_wrn t ~i v] — may return {m \bot} even after other invocations
    wrote, but never uses the one-shot object illegally. *)
val rlx_wrn : t -> i:int -> Value.t -> Value.t Program.t
