open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register
module Sse = Subc_objects.Sse_obj
module Snapshot_api = Subc_rwmem.Snapshot_api

type t = {
  k : int;
  sse : Store.handle;
  doorway : Store.handle;
  r : Snapshot_api.t;  (* announced values, one component per index *)
  o : Snapshot_api.t;  (* published views, one component per index *)
}

let k t = t.k

let opened = Value.Sym "opened"
let closed = Value.Sym "closed"

let alloc store ~k ?(register_snapshots = false) () =
  let snapshot =
    if register_snapshots then Snapshot_api.register_based
    else Snapshot_api.primitive
  in
  let store, sse = Store.alloc store (Sse.model ~k ~j:(k - 1)) in
  let store, doorway = Store.alloc store (Register.model opened) in
  let store, r = snapshot store k in
  let store, o = snapshot store k in
  (store, { k; sse; doorway; r; o })

let wrn t ~i v =
  assert (0 <= i && i < t.k);
  assert (not (Value.is_bot v));
  let succ_i = (i + 1) mod t.k in
  (* Line 6: announce the value at index i. *)
  let* () = t.r.Snapshot_api.update ~me:i v in
  (* Lines 7–12: the doorway and the strong set election. *)
  let* d = Register.read t.doorway in
  let* won =
    if Value.equal d opened then
      let* () = Register.write t.doorway closed in
      let* w = Sse.propose t.sse i in
      Program.return (w = i)
    else Program.return false
  in
  if won then Program.return Value.Bot
  else
    (* Line 13: snapshot the announcements. *)
    let* sr = t.r.Snapshot_api.scan in
    (* Line 14: publish the observed view. *)
    let* () = t.o.Snapshot_api.update ~me:i sr in
    (* Line 15: snapshot the published views. *)
    let* so = t.o.Snapshot_api.scan in
    (* Lines 16–20: if some view saw our value but not our successor's, we
       started before our successor finished — return ⊥. *)
    let conflict =
      List.exists
        (fun view ->
          match view with
          | Value.Vec _ ->
            Value.equal (Value.vec_get view i) v
            && Value.is_bot (Value.vec_get view succ_i)
          | _ -> false)
        (Value.to_vec so)
    in
    if conflict then Program.return Value.Bot
    else
      (* Line 21. *)
      Program.return (Value.vec_get sr succ_i)

(* Alg5 implements WRN_k, so the ring structure again limits the valid
   renamings to rotations of the k indices. *)
let symmetry t ?input_base () =
  Symmetry.standard ~n:t.k ?input_base `Rotations
