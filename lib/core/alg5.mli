(** Algorithm 5 — a linearizable 1sWRN{_k} from (k,k−1)-strong set election,
    registers and snapshots (Section 5).

    The construction:

    + announce the value at index [i] in the announcement array [R];
    + the {e doorway}: a process that reads the doorway open closes it and
      runs the strong set election — a {e winner} (self-elected) returns
      {m \bot}, guaranteeing a first linearized operation;
    + everyone else snapshots [R], publishes the observed view in [O],
      snapshots [O], and returns {m \bot} if some published view saw this
      invocation's value but not its successor's — the double-snapshot
      conflict detection that restores linearizability (the {m w_1 w_2 w_3}
      counterexample of Section 5);
    + otherwise it returns the announced value of its successor index.

    Corollary 37: the construction is a linearizable implementation of
    1sWRN{_k}; combined with Algorithm 2, 1sWRN{_k} and (k,k−1)-set
    consensus are equivalent (Theorem 2).

    The strong set election is the primitive object of substitution S2
    (see DESIGN.md and [Subc_objects.Sse_obj]). *)

open Subc_sim

type t

val k : t -> int

(** [alloc store ~k ~register_snapshots] — with [register_snapshots] the
    two snapshots are the register-only AADGMS implementation instead of
    the primitive object (bigger state space, full-stack run). *)
val alloc : Store.t -> k:int -> ?register_snapshots:bool -> unit -> Store.t * t

(** [wrn t ~i v] — the implemented one-shot operation; each index may be
    used at most once, values must be distinct and not {m \bot}. *)
val wrn : t -> i:int -> Value.t -> Value.t Program.t

(** [symmetry t ?input_base ()] — rotation-group symmetry spec for the
    standard harness; see {!Alg2.symmetry}.  Sound because Alg5's state
    (announcements, views, SSE winner) indexes processes only positionally
    and the algorithm is uniform up to rotation. *)
val symmetry : t -> ?input_base:int -> unit -> Symmetry.t
