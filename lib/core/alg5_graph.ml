open Subc_sim

type edge = { src : int; dst : int }
type t = { k : int; edges : edge list }

let of_results ~k results =
  assert (List.length results = k);
  let edges =
    List.concat
      (List.mapi
         (fun i result ->
           let succ = (i + 1) mod k in
           match result with
           | None -> []
           | Some v when Value.is_bot v -> [ { src = i; dst = succ } ]
           | Some _ -> [ { src = succ; dst = i } ])
         results)
  in
  { k; edges }

let neighbour_edges_exclusive g =
  List.for_all
    (fun i ->
      let succ = (i + 1) mod g.k in
      let fwd = List.mem { src = i; dst = succ } g.edges in
      let bwd = List.mem { src = succ; dst = i } g.edges in
      not (fwd && bwd))
    (List.init g.k Fun.id)

let successors g v =
  List.filter_map (fun e -> if e.src = v then Some e.dst else None) g.edges

let acyclic g =
  (* DFS with colors over at most k nodes. *)
  let color = Array.make g.k 0 in
  let rec visit v =
    match color.(v) with
    | 1 -> false (* grey: back edge *)
    | 2 -> true
    | _ ->
      color.(v) <- 1;
      let ok = List.for_all visit (successors g v) in
      color.(v) <- 2;
      ok
  in
  List.for_all visit (List.init g.k Fun.id)

let has_source_and_sink g =
  let has_in = Array.make g.k false and has_out = Array.make g.k false in
  List.iter
    (fun e ->
      has_in.(e.dst) <- true;
      has_out.(e.src) <- true)
    g.edges;
  let source = ref false and sink = ref false in
  for v = 0 to g.k - 1 do
    if has_out.(v) && not has_in.(v) then source := true;
    if has_in.(v) && not has_out.(v) then sink := true
  done;
  !source && !sink

let pp ppf g =
  Format.fprintf ppf "G(k=%d): %s" g.k
    (String.concat ", "
       (List.map (fun e -> Printf.sprintf "w%d->w%d" e.src e.dst) g.edges))
