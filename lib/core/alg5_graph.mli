(** The precedence graph G of Section 5's linearizability proof.

    For an execution of k one-shot WRN invocations {m w_0, …, w_{k-1}}
    (invocation {m w_i} uses index [i]), the paper defines a directed graph
    on the invocations:

    - if {m w_i} returned {m \bot}, an edge {m w_i \to w_{(i+1) \bmod k}};
    - if {m w_i} returned {m v_{(i+1) \bmod k}}, an edge
      {m w_{(i+1) \bmod k} \to w_i}.

    Claims 27–30: between neighbours exactly one edge exists, G is acyclic,
    has a source and a sink, and its edges form a partial order — the
    skeleton from which the linearization {m \preceq} is built.  This
    module rebuilds G from any terminal configuration of an Algorithm 5 (or
    primitive 1sWRN) harness so the test suite can check those claims on
    every reachable execution. *)

type edge = { src : int; dst : int }

type t = { k : int; edges : edge list }

(** [of_results ~k results] — [results.(i)] is invocation [w_i]'s return
    value ({m \bot} or its successor's value); invocations absent from the
    execution are [None]. *)
val of_results : k:int -> Subc_sim.Value.t option list -> t

(** Claim 27: for participating neighbours, exactly one direction. *)
val neighbour_edges_exclusive : t -> bool

(** Corollary 28: no directed cycles. *)
val acyclic : t -> bool

(** Corollary 29 (for full participation): G has a source and a sink. *)
val has_source_and_sink : t -> bool

val pp : Format.formatter -> t -> unit
