open Subc_sim
open Program.Syntax

type t = { n : int; k : int; groups : Store.handle list }

let agreement_bound ~n ~k =
  ((k - 1) * (n / k)) + min (n mod k) (k - 1)

let alloc store ~n ~k ~one_shot =
  let model =
    if one_shot then Subc_objects.One_shot_wrn.model ~k
    else Subc_objects.Wrn.model ~k
  in
  let n_groups = (n + k - 1) / k in
  let store, groups = Store.alloc_many store n_groups model in
  (store, { n; k; groups })

let propose t ~i v =
  assert (0 <= i && i < t.n);
  let group = List.nth t.groups (i / t.k) in
  let* r = Subc_objects.Wrn.wrn group (i mod t.k) v in
  if Value.is_bot r then Program.return v else Program.return r
