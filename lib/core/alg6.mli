(** Algorithm 6 — m-set consensus for n processes from WRN{_k} objects
    (Section 7.1).

    Processes are partitioned into {m \lceil n/k \rceil} groups of at most
    [k]; group [g] runs Algorithm 2 on its own WRN{_k}.  Each full group
    contributes at most k−1 distinct decisions and the remainder group at
    most its size, so the construction solves m-set consensus whenever
    {m (k-1)/k \le m/n} (Lemma 39, Corollary 40) — e.g. WRN{_3} objects
    implement (12,8)-set consensus. *)

open Subc_sim

type t

(** The number of distinct decisions the construction guarantees:
    {m (k-1)\lfloor n/k \rfloor + \min(n \bmod k,\, k-1)}. *)
val agreement_bound : n:int -> k:int -> int

val alloc : Store.t -> n:int -> k:int -> one_shot:bool -> Store.t * t

(** [propose t ~i v] for process [i < n]. *)
val propose : t -> i:int -> Value.t -> Value.t Program.t
