open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register

type election = { slots : int; elect : me:int -> int Program.t }

let election_of_set_consensus store ~slots ~k =
  let store, sc =
    Store.alloc store (Subc_objects.Set_consensus_obj.model ~n:slots ~k)
  in
  let elect ~me =
    let+ leader = Subc_objects.Set_consensus_obj.propose sc (Value.Int me) in
    Value.to_int leader
  in
  (store, { slots; elect })

let election_of_one_shot_wrn store ~k =
  let store, alg = Alg2.alloc store ~k ~one_shot:true in
  let elect ~me =
    let+ leader = Alg2.propose alg ~i:me (Value.Int me) in
    Value.to_int leader
  in
  (store, { slots = k; elect })

type t = { election : election; announcements : Store.handle list }

let set_consensus_of_election store election =
  let store, announcements =
    Store.alloc_many store election.slots Register.model_bot
  in
  (store, { election; announcements })

let propose t ~slot v =
  assert (0 <= slot && slot < t.election.slots);
  let* () = Register.write (List.nth t.announcements slot) v in
  let* leader = t.election.elect ~me:slot in
  Register.read (List.nth t.announcements leader)
