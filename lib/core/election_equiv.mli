(** The Section 2 equivalence: k-set consensus ⇔ k-set election [3].

    - Election from consensus is immediate: propose your identifier.
    - Consensus from election: announce your value under your identifier,
      run the election on identifiers, then adopt the announced value of
      your elected leader.  Because validity of the election guarantees the
      leader is a participant, and announcements precede proposals, the
      leader's value is always readable. *)

open Subc_sim

(** A k-set-{e election} facility for slots {0,…,slots−1}: each slot
    proposes itself once and gets an elected slot back. *)
type election = { slots : int; elect : me:int -> int Program.t }

(** [election_of_set_consensus store ~slots ~k] — the trivial direction,
    backed by a (slots, k)-set-consensus object. *)
val election_of_set_consensus :
  Store.t -> slots:int -> k:int -> Store.t * election

(** [election_of_one_shot_wrn store ~k] — an election backed by the
    paper's 1sWRN{_k} via Algorithm 2 (slot [i] uses index [i]). *)
val election_of_one_shot_wrn : Store.t -> k:int -> Store.t * election

type t

(** [set_consensus_of_election store election] — the interesting
    direction: a set-consensus [propose] for arbitrary values. *)
val set_consensus_of_election : Store.t -> election -> Store.t * t

(** [propose t ~slot v] — decides a value; at most [k] distinct decisions,
    where [k] is the election's agreement bound. *)
val propose : t -> slot:int -> Value.t -> Value.t Program.t
