type func = int array

let apply f j =
  if j < 0 || j >= Array.length f then
    invalid_arg (Printf.sprintf "Function_family.apply: name %d out of range" j)
  else f.(j)

let all ~names ~k =
  (* Enumerate the k^names value tables as base-k numerals. *)
  let total =
    let rec pow acc i = if i = 0 then acc else pow (acc * k) (i - 1) in
    pow 1 names
  in
  List.init total (fun idx ->
      let f = Array.make names 0 in
      let rec fill idx pos =
        if pos < names then begin
          f.(pos) <- idx mod k;
          fill (idx / k) (pos + 1)
        end
      in
      fill idx 0;
      f)

let subsets_of_size k names =
  let rec choose start k =
    if k = 0 then [ [] ]
    else
      List.concat
        (List.init
           (names - start - k + 1)
           (fun d ->
             let x = start + d in
             List.map (fun rest -> x :: rest) (choose (x + 1) (k - 1))))
  in
  choose 0 k

let covering ~names ~k =
  assert (names >= k);
  List.map
    (fun subset ->
      let f = Array.make names 0 in
      List.iteri (fun rank name -> f.(name) <- rank) subset;
      f)
    (subsets_of_size k names)

let covers f s k =
  let image = List.sort_uniq compare (List.map (fun j -> f.(j)) s) in
  image = List.init k (fun i -> i)
