(** The function family {m \mathcal{F}} of Algorithm 3.

    Section 4.2 fixes an arbitrary ordering of {e all} functions from the
    renamed namespace {0,…,N−1} onto the index space {0,…,k−1}; correctness
    only uses the existence of a function mapping the ≤ k actual names onto
    all of {0,…,k−1} (Claim 16).  Besides the paper's full family (size
    {m k^N}), we provide a {e covering} family with one surjection per
    k-subset of names (size {m \binom{N}{k}}), which satisfies the same
    existence property and keeps instances tractable. *)

(** A function {0,…,N−1} → {0,…,k−1} as its value table. *)
type func = int array

val apply : func -> int -> int

(** [all ~names ~k] — the paper's full family, in a fixed order. *)
val all : names:int -> k:int -> func list

(** [covering ~names ~k] — for every size-[k] subset S of {0,…,names−1},
    contains a function mapping S onto {0,…,k−1}. *)
val covering : names:int -> k:int -> func list

(** [covers f s k] — does [f] map the name set [s] onto {0,…,k−1}? *)
val covers : func -> int list -> int -> bool
