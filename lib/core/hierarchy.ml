open Subc_sim
open Program.Syntax

let partition_bound ~n ~m ~j = (j * (n / m)) + min (n mod m) j

let implementable ~n ~k ~m ~j = k >= j && partition_bound ~n ~m ~j <= k

let separates ~k ~k' =
  k < k'
  && implementable ~n:k' ~k:(k' - 1) ~m:k ~j:(k - 1)
  (* Necessary condition n/k ≤ m/j of Theorem 41, instantiated for
     implementing (k,k−1) from (k′,k′−1): k/(k−1) ≤ k′/(k′−1) fails for
     k < k′, so the converse implementation does not exist. *)
  && k * (k' - 1) > k' * (k - 1)

type t = { n : int; m : int; groups : Store.handle list }

let alloc_set_consensus store ~n ~m ~j =
  let n_groups = (n + m - 1) / m in
  let store, groups =
    Store.alloc_many store n_groups (Subc_objects.Set_consensus_obj.model ~n:m ~k:j)
  in
  (store, { n; m; groups })

let propose t ~i v =
  assert (0 <= i && i < t.n);
  let group = List.nth t.groups (i / t.m) in
  let* r = Subc_objects.Set_consensus_obj.propose group v in
  Program.return r

let alloc_one_shot_wrn store ~k' = Alg5.alloc store ~k:k' ()
