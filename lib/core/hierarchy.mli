(** Section 7.2 — the infinite hierarchy.

    Theorem 41 (from [1, 16]) characterizes when (n,k)-set consensus is
    wait-free implementable from (m,j)-set-consensus objects and registers.
    This module implements the positive direction — the partition
    construction — and the arithmetic feasibility test, from which
    Corollary 42 derives the strict hierarchy of 1sWRN objects:
    1sWRN{_{k'}} is implementable from 1sWRN{_k} for k < k′, but not
    conversely.

    The full executable chain for Corollary 42(2) is:
    1sWRN{_k} {m \Rightarrow} (k,k−1)-set consensus (Algorithm 2)
    {m \Rightarrow} (k′,k′−1)-set consensus (partition / Algorithm 6)
    {m \Rightarrow} (k′,k′−1)-strong set election ([9]; substitution S2)
    {m \Rightarrow} 1sWRN{_{k'}} (Algorithm 5). *)

open Subc_sim

(** [partition_bound ~n ~m ~j] is the number of distinct decisions the
    partition construction guarantees: {m j\lfloor n/m\rfloor +
    \min(n \bmod m, j)}. *)
val partition_bound : n:int -> m:int -> j:int -> int

(** [implementable ~n ~k ~m ~j] — can the partition construction implement
    (n,k)-set consensus from (m,j)-set-consensus objects?  (The positive
    direction of Theorem 41.) *)
val implementable : n:int -> k:int -> m:int -> j:int -> bool

(** [separates ~k ~k'] — Corollary 42: for k < k′, 1sWRN{_{k'}} is
    implementable from 1sWRN{_k} but not conversely, because
    (k,k−1)-set consensus is not implementable from (k′,k′−1)-set-consensus
    objects (Theorem 41's necessary condition {m n/k \le m/j} fails). *)
val separates : k:int -> k':int -> bool

type t

(** [alloc_set_consensus store ~n ~m ~j] — the partition construction:
    {m \lceil n/m \rceil} groups, each sharing one (m,j)-set-consensus
    object. *)
val alloc_set_consensus : Store.t -> n:int -> m:int -> j:int -> Store.t * t

val propose : t -> i:int -> Value.t -> Value.t Program.t

(** [alloc_one_shot_wrn store ~k'] — the end of the Corollary 42 chain: a
    linearizable 1sWRN{_{k'}} via Algorithm 5 (with the S2 strong-set-
    election bridge). *)
val alloc_one_shot_wrn : Store.t -> k':int -> Store.t * Alg5.t
