open Subc_sim
open Program.Syntax
module Sc = Subc_objects.Set_consensus_obj
module Snapshot_api = Subc_rwmem.Snapshot_api

type round = {
  sc : Store.handle;  (* (k,k−1)-set-consensus object, proposals are ids *)
  announce : Snapshot_api.t;  (* announced leaders *)
}

type t = {
  k : int;
  rounds : round list;  (* one for [alloc_naive], k for [alloc_iterated] *)
  win : Snapshot_api.t option;  (* commit board, [alloc_iterated] only *)
}

let alloc_rounds store ~k ~n_rounds =
  let rec build store acc = function
    | 0 -> (store, List.rev acc)
    | remaining ->
      let store, sc = Store.alloc store (Sc.model ~n:k ~k:(k - 1)) in
      let store, announce = Snapshot_api.primitive store k in
      build store ({ sc; announce } :: acc) (remaining - 1)
  in
  build store [] n_rounds

let alloc_naive store ~k =
  let store, rounds = alloc_rounds store ~k ~n_rounds:1 in
  (store, { k; rounds; win = None })

let alloc_iterated store ~k =
  let store, rounds = alloc_rounds store ~k ~n_rounds:k in
  let store, win = Snapshot_api.primitive store k in
  (store, { k; rounds; win = Some win })

(* One announce-and-look round: propose own id, announce the leader it
   returns, snapshot the announcements; the boolean is "someone elected
   me". *)
let round_step rnd ~i =
  let* leader = Sc.propose rnd.sc (Value.Int i) in
  let leader = Value.to_int leader in
  let* () = rnd.announce.Snapshot_api.update ~me:i (Value.Int leader) in
  let* view = rnd.announce.Snapshot_api.scan in
  let elected_me =
    List.exists (Value.equal (Value.Int i)) (Value.to_vec view)
  in
  Program.return (elected_me, leader)

let elect_naive t ~i =
  match t.rounds with
  | [ rnd ] ->
    let* elected_me, leader = round_step rnd ~i in
    Program.return (if elected_me then i else leader)
  | _ -> assert false

(* First committed winner on the board (one atomic scan). *)
let committed_winner board =
  let+ view = board.Snapshot_api.scan in
  List.find_map
    (fun (j, c) -> if Value.is_bot c then None else Some j)
    (List.mapi (fun j c -> (j, c)) (Value.to_vec view))

let elect_iterated t board ~i =
  let commit_and_win =
    let* () = board.Snapshot_api.update ~me:i (Value.Bool true) in
    Program.return i
  in
  let rec go = function
    | [] ->
      (* Unreachable — every round retires at least one participant — but
         terminate safely rather than loop. *)
      commit_and_win
    | rnd :: rest ->
      let* winner = committed_winner board in
      (match winner with
      | Some j when j <> i -> Program.return j
      | Some _ | None ->
        let* elected_me, _leader = round_step rnd ~i in
        if elected_me then commit_and_win else go rest)
  in
  go t.rounds

let elect t ~i =
  assert (0 <= i && i < t.k);
  match t.win with
  | None -> elect_naive t ~i
  | Some board -> elect_iterated t board ~i
