(** Candidate constructions of strong set election from set consensus —
    and why they fail (experiment E11).

    The paper invokes Borowsky–Gafni [9] for "(k,k−1)-strong set election
    can be implemented using (k,k−1)-set consensus" without reproducing the
    construction.  The two natural simple constructions below are {e not}
    correct, and the model checker exhibits concrete counterexample
    schedules for k = 3:

    - [alloc_naive]: elect through set consensus, announce the leader,
      snapshot, self-elect if anyone elected you.  Violates Self-Election —
      a process can decide on a leader that never discovers it was elected
      and decides on a third party.
    - [alloc_iterated]: rounds of (set consensus + announce + snapshot),
      with winners committing to a shared [win] board, losers deferring to
      committed winners, and undecided processes moving to the next round.
      Every round at least one participant decides, so it terminates — but
      an adversary can suspend k−1 would-be winners between their snapshot
      and their commit and let the remaining process win a later round
      alone: k winners, violating (k−1)-agreement.

    This is why substitution S2 (see DESIGN.md) models strong set election
    as a primitive nondeterministic object with exactly the task's
    guarantees, rather than shipping a subtly wrong construction. *)

open Subc_sim

type t

val alloc_naive : Store.t -> k:int -> Store.t * t
val alloc_iterated : Store.t -> k:int -> Store.t * t

(** [elect t ~i] — participant [i]'s program; returns the elected index. *)
val elect : t -> i:int -> int Program.t
