open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args) with
  | "cas", [ expected; desired ] ->
    if Value.equal state expected then (desired, Value.Bool true)
    else (state, Value.Bool false)
  | "read", [] -> (state, state)
  | _ -> Obj_model.bad_op "cas" op

let model init = Obj_model.deterministic ~kind:"cas" ~init apply
let model_bot = model Value.Bot

let compare_and_swap h ~expected ~desired =
  Program.map Value.to_bool
    (Program.invoke h (Op.make "cas" [ expected; desired ]))

let read h = Program.invoke h (Op.make "read" [])
