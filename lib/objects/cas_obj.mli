(** Compare-and-swap register (infinite consensus number).

    The top of the consensus hierarchy; used by [Subc_classic] to situate
    the paper's sub-consensus band against universal objects. *)

open Subc_sim

val model : Value.t -> Obj_model.t
val model_bot : Obj_model.t

(** [compare_and_swap h ~expected ~desired] atomically replaces the value
    with [desired] if it equals [expected]; returns whether it succeeded. *)
val compare_and_swap :
  Store.handle -> expected:Value.t -> desired:Value.t -> bool Program.t

val read : Store.handle -> Value.t Program.t
