open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args) with
  | "propose", [ v ] ->
    assert (not (Value.is_bot v));
    if Value.is_bot state then (v, v) else (state, state)
  | _ -> Obj_model.bad_op "consensus" op

let model = Obj_model.deterministic ~kind:"consensus" ~init:Value.Bot apply
let propose h v = Program.invoke h (Op.make "propose" [ v ])
