(** Consensus object: the first proposal sticks; every propose returns it.

    Used as the upper baseline of the hierarchy experiments — the paper's
    point is that WRN{_k} objects ({m k \ge 3}) {e cannot} implement this
    object even for two processes. *)

open Subc_sim

val model : Obj_model.t

(** [propose h v] ([v] must not be {m \bot}) returns the decided value. *)
val propose : Store.handle -> Value.t -> Value.t Program.t
