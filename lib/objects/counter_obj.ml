open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args, state) with
  | "inc", [], Value.Int n -> (Value.Int (n + 1), Value.Unit)
  | "read", [], Value.Int n -> (state, Value.Int n)
  | _ -> Obj_model.bad_op "counter" op

let model = Obj_model.deterministic ~kind:"counter" ~init:(Value.Int 0) apply
let inc h = Program.map (fun _ -> ()) (Program.invoke h (Op.make "inc" []))
let read h = Program.map Value.to_int (Program.invoke h (Op.make "read" []))
