(** Atomic counter with increment and read, each a single step.

    This is exactly the guard object of Algorithm 4: "a simple atomic
    register that can be incremented and read (each operation is a single
    step)".  A register-only construction is provided and verified in
    [Subc_rwmem.Counter_impl]. *)

open Subc_sim

val model : Obj_model.t
val inc : Store.handle -> unit Program.t
val read : Store.handle -> int Program.t
