open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args, state) with
  | "faa", [ Value.Int d ], Value.Int n -> (Value.Int (n + d), Value.Int n)
  | "read", [], Value.Int n -> (state, Value.Int n)
  | _ -> Obj_model.bad_op "fetch_and_add" op

let model =
  Obj_model.deterministic ~kind:"fetch_and_add" ~init:(Value.Int 0) apply

let fetch_and_add h d =
  Program.map Value.to_int (Program.invoke h (Op.make "faa" [ Value.Int d ]))

let read h = Program.map Value.to_int (Program.invoke h (Op.make "read" []))
