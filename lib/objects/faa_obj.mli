(** Fetch-and-add register (consensus number 2). *)

open Subc_sim

val model : Obj_model.t

(** [fetch_and_add h d] adds [d] and returns the {e previous} value. *)
val fetch_and_add : Store.handle -> int -> int Program.t

val read : Store.handle -> int Program.t
