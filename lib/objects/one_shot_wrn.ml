open Subc_sim

let apply ~k state op =
  match (op.Op.name, op.Op.args, state) with
  | "wrn", [ Value.Int i; v ], Value.Pair (cells, used) ->
    assert (0 <= i && i < k);
    assert (not (Value.is_bot v));
    if Value.to_bool (Value.vec_get used i) then Obj_model.hang
    else
      let cells' = Value.vec_set cells i v in
      let used' = Value.vec_set used i (Value.Bool true) in
      [ (Value.Pair (cells', used'), Value.vec_get cells' ((i + 1) mod k)) ]
  | _ -> Obj_model.bad_op "one_shot_wrn" op

let model ~k =
  Obj_model.nondet
    ~kind:(Printf.sprintf "one_shot_wrn(%d)" k)
    ~init:
      (Value.Pair
         (Value.bot_vec k, Value.Vec (List.init k (fun _ -> Value.Bool false))))
    (apply ~k)

let wrn h i v = Program.invoke h (Op.make "wrn" [ Value.Int i; v ])
