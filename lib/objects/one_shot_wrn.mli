(** The one-shot variant 1sWRN{_k} (Section 3).

    Identical to WRN{_k}, except every index may be used at most once:
    invoking [wrn] twice with the same index is illegal and "hangs the
    system in a manner that cannot be detected by any process" — modeled as
    an empty successor set.

    Theorem 2: 1sWRN{_k} and (k,k−1)-set consensus have equivalent
    synchronization power. *)

open Subc_sim

val model : k:int -> Obj_model.t
val wrn : Store.handle -> int -> Value.t -> Value.t Program.t

(** This sequential specification, restricted to legal histories, drives the
    linearizability checking of Algorithm 5 (same [model ~k]). *)
