open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args, state) with
  | "enq", [ v ], Value.Vec vs -> (Value.Vec (vs @ [ v ]), Value.Unit)
  | "deq", [], Value.Vec [] -> (state, Value.Bot)
  | "deq", [], Value.Vec (v :: vs) -> (Value.Vec vs, v)
  | _ -> Obj_model.bad_op "queue" op

let model init = Obj_model.deterministic ~kind:"queue" ~init:(Value.Vec init) apply

let enqueue h v =
  Program.map (fun _ -> ()) (Program.invoke h (Op.make "enq" [ v ]))

let dequeue h = Program.invoke h (Op.make "deq" [])
