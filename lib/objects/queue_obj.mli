(** FIFO queue with enqueue and dequeue (consensus number 2). *)

open Subc_sim

(** [model init] is a queue holding [init] front-first. *)
val model : Value.t list -> Obj_model.t

val enqueue : Store.handle -> Value.t -> unit Program.t

(** [dequeue h] returns the front element, or {m \bot} if empty. *)
val dequeue : Store.handle -> Value.t Program.t
