open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args) with
  | "read", [] -> (state, state)
  | "write", [ v ] -> (v, Value.Unit)
  | _ -> Obj_model.bad_op "register" op

let model init = Obj_model.deterministic ~kind:"register" ~init apply
let model_bot = model Value.Bot
let read h = Program.invoke h (Op.make "read" [])

let write h v =
  Program.map (fun _ -> ()) (Program.invoke h (Op.make "write" [ v ]))
