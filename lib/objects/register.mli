(** Atomic multi-writer multi-reader read/write register.

    The weakest object of the paper's hierarchy — everything below
    2-consensus is measured against it.  SWMR registers are MWMR registers
    used by a single writer; the simulator does not need to enforce the
    single-writer discipline because every algorithm in this repository
    respects it by construction (each is verified by the model checker). *)

open Subc_sim

(** [model init] is a register initialized to [init]. *)
val model : Value.t -> Obj_model.t

(** [model_bot] is a register initialized to {m \bot}. *)
val model_bot : Obj_model.t

val read : Store.handle -> Value.t Program.t
val write : Store.handle -> Value.t -> unit Program.t
