open Subc_sim

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

(* The proposal counter lives in the state as a [Sym], not an [Int]: the
   symmetry layer's data action renames integers in 0..n-1 as process ids,
   and a raw counter in that range would be renamed too, breaking
   equivariance of [apply] under the declared full symmetric group (found
   by the Subc_analysis equivariance checker). *)
let count_of = function
  | Value.Sym s -> int_of_string s
  | v -> raise (Value.Type_error ("set_consensus count", v))

let mk_count n = Value.Sym (string_of_int n)

let apply ~n ~k state op =
  match (op.Op.name, op.Op.args, state) with
  | "propose", [ v ], Value.Pair (Value.Vec chosen, count) ->
    let count = count_of count in
    if count >= n then Obj_model.hang
    else
      let extensions =
        if chosen = [] then [ [ v ] ]
        else if List.length chosen < k && not (List.mem v chosen) then
          [ chosen; chosen @ [ v ] ]
        else [ chosen ]
      in
      List.concat_map
        (fun chosen' ->
          let state' =
            Value.Pair (Value.Vec chosen', mk_count (count + 1))
          in
          List.map (fun r -> (state', r)) chosen')
        extensions
      |> dedup
  | _ -> Obj_model.bad_op "set_consensus" op

let model ~n ~k =
  Obj_model.nondet ~kind:(Printf.sprintf "set_consensus(%d,%d)" n k)
    ~init:(Value.Pair (Value.Vec [], mk_count 0))
    (apply ~n ~k)

let propose h v = Program.invoke h (Op.make "propose" [ v ])
