open Subc_sim

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

let apply ~n ~k state op =
  match (op.Op.name, op.Op.args, state) with
  | "propose", [ v ], Value.Pair (Value.Vec chosen, Value.Int count) ->
    if count >= n then Obj_model.hang
    else
      let extensions =
        if chosen = [] then [ [ v ] ]
        else if List.length chosen < k && not (List.mem v chosen) then
          [ chosen; chosen @ [ v ] ]
        else [ chosen ]
      in
      List.concat_map
        (fun chosen' ->
          let state' =
            Value.Pair (Value.Vec chosen', Value.Int (count + 1))
          in
          List.map (fun r -> (state', r)) chosen')
        extensions
      |> dedup
  | _ -> Obj_model.bad_op "set_consensus" op

let model ~n ~k =
  Obj_model.nondet ~kind:(Printf.sprintf "set_consensus(%d,%d)" n k)
    ~init:(Value.Pair (Value.Vec [], Value.Int 0))
    (apply ~n ~k)

let propose h v = Program.invoke h (Op.make "propose" [ v ])
