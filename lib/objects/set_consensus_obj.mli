(** The (n,k)-set-consensus nondeterministic object of Section 2.

    State: a set of at most [k] adopted values plus a count of proposals.
    The first [propose] adds its input to the set; later proposes may
    nondeterministically add theirs while the set holds fewer than [k]
    values.  Each of the first [n] proposes returns a nondeterministically
    chosen member of the (post-transition) set.  Propose number [n+1]
    onwards hangs the system undetectably (empty successor set).

    All nondeterminism is resolved by the scheduler/model checker, i.e. by
    the adversary — the object guarantees nothing beyond the (n,k)-set
    consensus task. *)

open Subc_sim

val model : n:int -> k:int -> Obj_model.t
val propose : Store.handle -> Value.t -> Value.t Program.t
