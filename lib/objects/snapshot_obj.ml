open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args) with
  | "update", [ Value.Int i; v ] -> (Value.vec_set state i v, Value.Unit)
  | "scan", [] -> (state, state)
  | _ -> Obj_model.bad_op "snapshot" op

let model ~n =
  Obj_model.deterministic ~kind:"snapshot" ~init:(Value.bot_vec n) apply

let update h i v =
  Program.map
    (fun _ -> ())
    (Program.invoke h (Op.make "update" [ Value.Int i; v ]))

let scan h = Program.invoke h (Op.make "scan" [])
