(** Atomic snapshot object with [n] components.

    [update i v] atomically writes [v] into component [i]; [scan] atomically
    reads all components.  Algorithm 5 of the paper takes snapshots of its
    register arrays; a wait-free register-only implementation (justifying
    this primitive) is built and verified in [Subc_rwmem.Snapshot_impl]. *)

open Subc_sim

val model : n:int -> Obj_model.t
val update : Store.handle -> int -> Value.t -> unit Program.t

(** [scan h] returns the vector of all components. *)
val scan : Store.handle -> Value.t Program.t
