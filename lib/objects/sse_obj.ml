open Subc_sim

let apply ~k ~j state op =
  match (op.Op.name, op.Op.args, state) with
  | "propose", [ Value.Int i ], Value.Pair (Value.Vec kings, used) ->
    assert (0 <= i && i < k);
    if Value.to_bool (Value.vec_get used i) then Obj_model.hang
    else
      let used' = Value.vec_set used i (Value.Bool true) in
      let self_elect =
        if List.length kings < j then
          [ (Value.Pair (Value.Vec (kings @ [ Value.Int i ]), used'), Value.Int i) ]
        else []
      in
      let defer =
        List.map
          (fun king -> (Value.Pair (Value.Vec kings, used'), king))
          kings
      in
      self_elect @ defer
  | _ -> Obj_model.bad_op "strong_set_election" op

let model ~k ~j =
  Obj_model.nondet
    ~kind:(Printf.sprintf "strong_set_election(%d,%d)" k j)
    ~init:(Value.Pair (Value.Vec [], Value.Vec (List.init k (fun _ -> Value.Bool false))))
    (apply ~k ~j)

let propose h i =
  Program.map Value.to_int (Program.invoke h (Op.make "propose" [ Value.Int i ]))
