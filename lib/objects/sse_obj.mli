(** (k,j)-strong-set-election object (substitution S2 of DESIGN.md).

    Algorithm 5 of the paper consumes a (k,k−1)-strong set election, which
    Borowsky–Gafni [9] construct from (k,k−1)-set consensus.  Rather than
    reproducing that construction, this object's transition relation is
    {e exactly} the strong-set-election task guarantees and nothing more:

    - each index in {0..k−1} may propose at most once (re-use hangs);
    - a propose either {e self-elects} (joins the set of winners, provided
      fewer than [j] winners exist) and returns its own index, or returns
      the index of an {e already self-elected} winner;
    - the choice is nondeterministic, i.e. adversarial.

    Consequences, each matching the task: at most [j] distinct outputs
    (winners only); validity (outputs are participants); Self-Election (an
    output [i ≠ me] is only possible after [i]'s own propose returned [i]);
    and the first propose always self-elects. *)

open Subc_sim

val model : k:int -> j:int -> Obj_model.t

(** [propose h i] proposes index [i]; returns the elected index. *)
val propose : Store.handle -> int -> int Program.t
