open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args) with
  | "swap", [ v ] -> (v, state)
  | "read", [] -> (state, state)
  | _ -> Obj_model.bad_op "swap" op

let model init = Obj_model.deterministic ~kind:"swap" ~init apply
let model_bot = model Value.Bot
let swap h v = Program.invoke h (Op.make "swap" [ v ])
