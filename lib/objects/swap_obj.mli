(** Atomic swap register: [swap v] writes [v] and returns the old value.

    The paper observes that WRN{_2} {e is} a swap object, whose consensus
    number is 2 (Herlihy); swap marks the upper boundary of the band of
    objects this paper populates. *)

open Subc_sim

val model : Value.t -> Obj_model.t
val model_bot : Obj_model.t
val swap : Store.handle -> Value.t -> Value.t Program.t
