open Subc_sim

let apply state op =
  match (op.Op.name, op.Op.args) with
  | "test_and_set", [] -> (Value.Bool true, state)
  | "read", [] -> (state, state)
  | _ -> Obj_model.bad_op "test_and_set" op

let model =
  Obj_model.deterministic ~kind:"test_and_set" ~init:(Value.Bool false) apply

let test_and_set h =
  Program.map Value.to_bool (Program.invoke h (Op.make "test_and_set" []))

let read h = Program.map Value.to_bool (Program.invoke h (Op.make "read" []))
