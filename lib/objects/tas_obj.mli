(** Test-and-set bit (consensus number 2). *)

open Subc_sim

val model : Obj_model.t

(** [test_and_set h] sets the bit and returns its {e previous} value; the
    unique caller that sees [false] won the bit. *)
val test_and_set : Store.handle -> bool Program.t

val read : Store.handle -> bool Program.t
