open Subc_sim

let apply ~k state op =
  match (op.Op.name, op.Op.args) with
  | "wrn", [ Value.Int i; v ] ->
    assert (0 <= i && i < k);
    assert (not (Value.is_bot v));
    let state' = Value.vec_set state i v in
    (state', Value.vec_get state' ((i + 1) mod k))
  | _ -> Obj_model.bad_op "wrn" op

let model ~k =
  Obj_model.deterministic
    ~kind:(Printf.sprintf "wrn(%d)" k)
    ~init:(Value.bot_vec k) (apply ~k)

let wrn h i v = Program.invoke h (Op.make "wrn" [ Value.Int i; v ])
