(** The Write-and-Read-Next object WRN{_k} (Algorithm 1) — the paper's
    central deterministic object.

    State: an array [A] of [k] cells, initially all {m \bot}.  The single
    operation [wrn i v] (with [0 ≤ i < k] and [v ≠ ⊥]) atomically performs
    [A.(i) <- v] and returns [A.((i+1) mod k)].

    WRN{_2} is a swap object (consensus number 2); for [k ≥ 3] the paper
    proves WRN{_k} has consensus number 1 yet cannot be implemented
    non-blocking from registers — a deterministic object strictly between
    registers and 2-consensus. *)

open Subc_sim

val model : k:int -> Obj_model.t

(** [wrn h i v] writes [v] at index [i] and returns the value last written
    at index [(i+1) mod k], or {m \bot}. *)
val wrn : Store.handle -> int -> Value.t -> Value.t Program.t
