(* Global counter/gauge registry. Counters are interned int refs so the hot
   paths (explore inner loop) pay one Hashtbl lookup at setup and a bare
   [incr] per event. *)

type counter = { mutable count : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { count = 0 } in
    Hashtbl.add counters name c;
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count
let set_gauge name v = Hashtbl.replace gauges name v

let find name =
  match Hashtbl.find_opt counters name with
  | Some c -> Some (float_of_int c.count)
  | None -> Hashtbl.find_opt gauges name

let snapshot () =
  let xs = ref [] in
  Hashtbl.iter
    (fun name c -> xs := (name, float_of_int c.count) :: !xs)
    counters;
  Hashtbl.iter (fun name v -> xs := (name, v) :: !xs) gauges;
  List.sort (fun (a, _) (b, _) -> compare a b) !xs

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.reset gauges

let emit_snapshot ?(name = "metrics") () =
  Sink.emit name
    (List.map (fun (k, v) -> (k, Sink.Float v)) (snapshot ()))
