(* Global counter/gauge registry. Counters are interned atomics so the hot
   paths (explore inner loop) pay one registry lookup at setup and a bare
   [Atomic.incr] per event — domain-safe, so parallel explorations on
   multiple domains can bump the same counter without tearing. The
   registry itself (interning, gauges, snapshots) is guarded by a mutex:
   those operations are setup/reporting paths, never hot. *)

type counter = int Atomic.t

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, float) Hashtbl.t = Hashtbl.create 32

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add counters name c;
        c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c
let set_gauge name v = with_lock (fun () -> Hashtbl.replace gauges name v)

let find name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> Some (float_of_int (Atomic.get c))
      | None -> Hashtbl.find_opt gauges name)

let snapshot () =
  with_lock (fun () ->
      let xs = ref [] in
      Hashtbl.iter
        (fun name c -> xs := (name, float_of_int (Atomic.get c)) :: !xs)
        counters;
      Hashtbl.iter (fun name v -> xs := (name, v) :: !xs) gauges;
      List.sort (fun (a, _) (b, _) -> compare a b) !xs)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.reset gauges)

let emit_snapshot ?(name = "metrics") () =
  Sink.emit name
    (List.map (fun (k, v) -> (k, Sink.Float v)) (snapshot ()))
