(** Process-global counters and gauges.

    Counters are interned by name: look one up once with {!counter} (cheap
    registry hit) and bump it with {!incr}/{!add} on hot paths (a bare
    atomic increment). Counters are domain-safe — workers of the parallel
    exploration engine may bump the same counter concurrently — and the
    registry itself (interning, gauges, snapshots) is mutex-guarded.
    Gauges hold the latest float value for derived quantities such as
    states/sec or reduction ratios. {!snapshot} returns everything for
    reporting; {!reset} zeroes the registry between experiment runs. *)

type counter

val counter : string -> counter
(** Intern (or retrieve) the counter with the given name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set_gauge : string -> float -> unit

val find : string -> float option
(** Look up a counter or gauge by name. *)

val snapshot : unit -> (string * float) list
(** All counters and gauges, sorted by name. *)

val reset : unit -> unit
(** Zero all counters and drop all gauges. *)

val emit_snapshot : ?name:string -> unit -> unit
(** Emit the current snapshot as a single event on the current {!Sink}. *)
