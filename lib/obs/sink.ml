type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = { name : string; fields : (string * field) list }

type t = {
  emit : event -> unit;
  flush : unit -> unit;
}

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

(* Minimal JSON string escaping: enough for metric names, object kinds and
   counterexample one-liners; no dependency on a JSON library. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_field = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> if b then "true" else "false"

let json_of_event { name; fields } =
  let parts =
    (Printf.sprintf "\"event\":\"%s\"" (escape name))
    :: List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (escape k) (json_of_field v))
         fields
  in
  "{" ^ String.concat "," parts ^ "}"

let text_of_field = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bool b -> string_of_bool b

let text_of_event { name; fields } =
  name ^ " "
  ^ String.concat " "
      (List.map (fun (k, v) -> k ^ "=" ^ text_of_field v) fields)

let stderr_sink =
  {
    emit = (fun ev -> Printf.eprintf "[obs] %s\n%!" (text_of_event ev));
    flush = (fun () -> flush stderr);
  }

let jsonl oc =
  {
    emit = (fun ev -> output_string oc (json_of_event ev ^ "\n"));
    flush = (fun () -> flush oc);
  }

let memory () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); flush = (fun () -> ()) },
    fun () -> List.rev !events )

let current = ref null
let set t = current := t
let get () = !current
let emit name fields = !current.emit { name; fields }
let flush () = !current.flush ()
