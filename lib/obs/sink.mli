(** Structured event sink: the output backend for the observability layer.

    Events are flat [name + fields] records. Three backends are provided:
    {!null} (drop everything, the default), {!stderr_sink} (human-readable
    one-liners), and {!jsonl} (one JSON object per line, for machine
    consumption by CI and the bench harness). A process-global current sink
    is installed with {!set}; instrumented code emits through {!emit} and
    pays nothing beyond a closure call when the null sink is installed. *)

type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = { name : string; fields : (string * field) list }

type t = {
  emit : event -> unit;
  flush : unit -> unit;
}

val null : t
(** Drops all events. The default sink. *)

val stderr_sink : t
(** Prints each event as a [\[obs\] name k=v ...] line on stderr. *)

val jsonl : out_channel -> t
(** Writes each event as one JSON object per line on the given channel. *)

val memory : unit -> t * (unit -> event list)
(** In-memory sink for tests: returns the sink and a function that yields
    all events emitted so far, in order. *)

val set : t -> unit
(** Install the process-global sink. *)

val get : unit -> t

val emit : string -> (string * field) list -> unit
(** [emit name fields] sends an event to the current sink. *)

val flush : unit -> unit

val json_of_event : event -> string
(** JSON rendering of a single event (used by the [jsonl] backend and by the
    CLI [--json] output path). *)

val text_of_event : event -> string

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val json_of_field : field -> string
