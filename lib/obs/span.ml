(* Wall-time accumulation per phase label. Uses [Sys.time] (CPU seconds) to
   avoid a Unix dependency in the libraries; bench-grade timing stays in
   bechamel. *)

let totals_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

let record label dt =
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals_tbl label) in
  Hashtbl.replace totals_tbl label (prev +. dt)

let time label f =
  let t0 = Sys.time () in
  let finish () =
    let dt = Sys.time () -. t0 in
    record label dt;
    Sink.emit "span" [ ("label", Sink.Str label); ("seconds", Sink.Float dt) ]
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let totals () =
  let xs = ref [] in
  Hashtbl.iter (fun k v -> xs := (k, v) :: !xs) totals_tbl;
  List.sort (fun (a, _) (b, _) -> compare a b) !xs

let total label = Hashtbl.find_opt totals_tbl label
let reset () = Hashtbl.reset totals_tbl
