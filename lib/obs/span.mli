(** Per-phase wall-clock accumulation.

    [time label f] runs [f], adds its duration to the running total for
    [label], and emits a ["span"] event on the current {!Sink}. Durations
    use [Sys.time] (CPU seconds) so the libraries stay free of a Unix
    dependency; precise benchmarking remains bechamel's job. *)

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, accounting its duration under [label]. Exceptions
    propagate after the span is recorded. *)

val totals : unit -> (string * float) list
(** Accumulated seconds per label, sorted by label. *)

val total : string -> float option

val reset : unit -> unit
