open Subc_sim
open Program.Syntax
module Splitter = Subc_rwmem.Splitter

type t = { k : int; cells : (int * int * Splitter.t) list }

let bound ~k = k * (k + 1) / 2

(* Diagonal enumeration of the triangle { (r,d) | r+d < k }. *)
let name_of ~r ~d =
  let diag = r + d in
  (diag * (diag + 1) / 2) + d

let alloc store ~k =
  let rec build store cells = function
    | [] -> (store, List.rev cells)
    | (r, d) :: rest ->
      let store, s = Splitter.alloc store in
      build store ((r, d, s) :: cells) rest
  in
  let coords =
    List.concat
      (List.init k (fun r -> List.init (k - r) (fun d -> (r, d))))
  in
  let store, cells = build store [] coords in
  (store, { k; cells })

let cell t ~r ~d =
  let found =
    List.find_opt (fun (r', d', _) -> r' = r && d' = d) t.cells
  in
  match found with
  | Some (_, _, s) -> s
  | None -> invalid_arg (Printf.sprintf "Grid_renaming: no cell (%d,%d)" r d)

let rename t ~me =
  let rec walk r d =
    assert (r + d < t.k);
    let* dir = Splitter.split (cell t ~r ~d) ~me in
    match dir with
    | Splitter.Stop -> Program.return (name_of ~r ~d)
    | Splitter.Right -> walk r (d + 1)
    | Splitter.Down -> walk (r + 1) d
  in
  walk 0 0
