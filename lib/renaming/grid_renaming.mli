(** One-shot renaming via a triangular grid of splitters (Moir–Anderson).

    [k] participants with distinct identifiers each acquire a distinct name
    in [0, k(k+1)/2).  A process walks the grid from the top-left corner,
    moving right or down as its splitters direct, and takes the name of the
    splitter where it stops; at most [k−p] competitors remain after [p]
    moves, so every walk stops within the triangle. *)

open Subc_sim

type t

(** Maximum number of distinct names: [k(k+1)/2]. *)
val bound : k:int -> int

val alloc : Store.t -> k:int -> Store.t * t

(** [rename t ~me] returns this process's new name; [me] values must be
    distinct across participants. *)
val rename : t -> me:int -> int Program.t
