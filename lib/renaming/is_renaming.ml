open Subc_sim
open Program.Syntax

type t = { is : Subc_rwmem.Immediate_snapshot.t; k : int }

let bound ~k = k * (k + 1) / 2

let alloc store ~k =
  let store, is = Subc_rwmem.Immediate_snapshot.alloc store ~n:k in
  (store, { is; k })

let rename t ~slot ~id =
  assert (0 <= slot && slot < t.k);
  let+ view = Subc_rwmem.Immediate_snapshot.run t.is ~me:slot (Value.Int id) in
  let members =
    List.filter_map
      (fun c -> match c with Value.Int id' -> Some id' | _ -> None)
      (Value.to_vec view)
  in
  let size = List.length members in
  let rank = List.length (List.filter (fun id' -> id' < id) members) in
  (* Triangle numbering: views of size s occupy names
     [s(s−1)/2, s(s−1)/2 + s). *)
  (size * (size - 1) / 2) + rank
