(** Order-preserving renaming from one immediate snapshot
    (Borowsky–Gafni participating set).

    A participant runs the one-shot immediate snapshot with its identifier
    as value and takes the name determined by (|view|, rank of its
    identifier inside the view).  Containment makes equal-sized views
    {e equal}, so two processes share a view size only if they are both in
    that common view, where their ranks differ — names are distinct.  With
    k participants, |view| ≤ k and rank < |view|, so names fit in the
    triangle of size k(k+1)/2, like the splitter grid but in O(k) steps. *)

open Subc_sim

type t

val bound : k:int -> int

val alloc : Store.t -> k:int -> Store.t * t

(** [rename t ~slot ~id] — [slot] < k indexes the snapshot component; [id]
    is the original name; both distinct across participants. *)
val rename : t -> slot:int -> id:int -> int Program.t
