open Subc_sim
open Program.Syntax
module Snapshot_api = Subc_rwmem.Snapshot_api

type t = Snapshot_api.t

let bound ~k = (2 * k) - 1
let alloc store ~slots ~snapshot = snapshot store slots

let announced view =
  List.filter_map
    (fun c ->
      match c with
      | Value.Pair (Value.Int id, Value.Int prop) -> Some (id, prop)
      | _ -> None)
    (Value.to_vec view)

(* [nth_free r taken] is the r-th (1-based) smallest positive integer not in
   [taken]. *)
let nth_free r taken =
  let rec go candidate remaining =
    if List.mem candidate taken then go (candidate + 1) remaining
    else if remaining = 1 then candidate
    else go (candidate + 1) (remaining - 1)
  in
  go 1 r

let rename (t : t) ~slot ~id =
  let rec attempt prop =
    let* () = t.Snapshot_api.update ~me:slot (Value.pair (Value.Int id) (Value.Int prop)) in
    let* view = t.Snapshot_api.scan in
    let others = List.filter (fun (id', _) -> id' <> id) (announced view) in
    let conflict = List.exists (fun (_, p) -> p = prop) others in
    if not conflict then Program.return (prop - 1)
    else
      let ids = id :: List.map fst others in
      let rank =
        1 + List.length (List.filter (fun id' -> id' < id) ids)
      in
      let taken = List.map snd others in
      attempt (nth_free rank taken)
  in
  (* Initial proposal: rank 1's first free name; any start works, conflicts
     are resolved by the rank rule. *)
  attempt 1
