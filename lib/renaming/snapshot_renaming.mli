(** One-shot (2k−1)-renaming from atomic snapshots (Attiya et al.).

    Section 4.2 of the paper relies on wait-free register-only renaming of
    [k] processes into {0,…,2k−2} [4, 6]; this is the classic snapshot-based
    algorithm: announce (identifier, proposed name); on conflict, re-propose
    the r-th smallest name not proposed by others, where r is the rank of
    your identifier among the announced ones; on a conflict-free view, keep
    the name.

    With at most [k] participants, proposals never exceed 2k−1, giving
    0-based names in [0, 2k−1). *)

open Subc_sim

type t

(** Name bound for [k] participants: [2k−1]. *)
val bound : k:int -> int

(** [alloc store ~slots ~snapshot] — [slots] is the maximum number of
    participants; each participant uses a distinct slot. *)
val alloc :
  Store.t ->
  slots:int ->
  snapshot:(Store.t -> int -> Store.t * Subc_rwmem.Snapshot_api.t) ->
  Store.t * t

(** [rename t ~slot ~id] — [slot] indexes this participant's snapshot
    component, [id] is its original name; both must be distinct across
    participants. *)
val rename : t -> slot:int -> id:int -> int Program.t
