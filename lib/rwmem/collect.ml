open Subc_sim

type t = { regs : Store.handle list; n : int }

let alloc_init store n init =
  let store, regs = Store.alloc_many store n (Subc_objects.Register.model init) in
  (store, { regs; n })

let alloc store n = alloc_init store n Value.Bot

let handle t i =
  match List.nth_opt t.regs i with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Collect: index %d out of %d" i t.n)

let write t i v = Subc_objects.Register.write (handle t i) v
let read t i = Subc_objects.Register.read (handle t i)
let collect t = Program.map_list Subc_objects.Register.read t.regs
