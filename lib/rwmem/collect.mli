(** Collects over arrays of SWMR registers. *)

open Subc_sim

type t = { regs : Store.handle list; n : int }

(** [alloc store n] allocates [n] registers initialized to {m \bot}. *)
val alloc : Store.t -> int -> Store.t * t

(** [alloc_init store n init] allocates [n] registers initialized to [init]. *)
val alloc_init : Store.t -> int -> Value.t -> Store.t * t

(** [write t i v] writes register [i]. *)
val write : t -> int -> Value.t -> unit Program.t

val read : t -> int -> Value.t Program.t

(** [collect t] reads all registers in index order (not atomic). *)
val collect : t -> Value.t list Program.t
