open Subc_sim
open Program.Syntax

type t = Snapshot_api.t

let alloc store ~contributors ~snapshot = snapshot store contributors

let component_value view i =
  match Value.vec_get view i with
  | Value.Bot -> 0
  | v -> Value.to_int v

let inc (t : t) ~me =
  let* view = t.Snapshot_api.scan in
  t.Snapshot_api.update ~me (Value.Int (component_value view me + 1))

let read (t : t) =
  let+ view = t.Snapshot_api.scan in
  List.init t.Snapshot_api.n (component_value view)
  |> List.fold_left ( + ) 0
