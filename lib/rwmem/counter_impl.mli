(** Increment/read counter built from a snapshot.

    Each contributor owns one component; [inc] bumps the caller's component
    (scan to learn own value, then update); [read] scans and sums.  The
    "flag principle" use in Algorithm 4 — at most one of two concurrent
    inc-then-read callers can read 1 — holds because each [inc]'s update
    precedes its caller's [read] scan, and the later of two scans sees both
    updates.  Verified exhaustively in the tests (experiment E10). *)

open Subc_sim

type t

(** [alloc store ~contributors ~snapshot] builds a counter for that many
    contributors on the given snapshot facility. *)
val alloc :
  Store.t ->
  contributors:int ->
  snapshot:(Store.t -> int -> Store.t * Snapshot_api.t) ->
  Store.t * t

(** [inc t ~me] adds one to the caller's component. *)
val inc : t -> me:int -> unit Program.t

(** [read t] returns the current sum. *)
val read : t -> int Program.t
