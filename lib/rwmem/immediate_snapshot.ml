open Subc_sim
open Program.Syntax

type t = { values : Collect.t; levels : Collect.t; n : int }

let alloc store ~n =
  let store, values = Collect.alloc store n in
  let store, levels = Collect.alloc store n in
  (store, { values; levels; n })

let run t ~me v =
  let* () = Collect.write t.values me v in
  let rec descend level =
    let* () = Collect.write t.levels me (Value.Int level) in
    let* announced = Collect.collect t.levels in
    let at_or_below =
      List.concat
        (List.mapi
           (fun p lv ->
             match lv with
             | Value.Int l when l <= level -> [ p ]
             | _ -> [])
           announced)
    in
    if List.length at_or_below >= level then
      let* values = Collect.collect t.values in
      let view =
        List.mapi
          (fun p value -> if List.mem p at_or_below then value else Value.Bot)
          values
      in
      Program.return (Value.Vec view)
    else descend (level - 1)
  in
  descend t.n
