(** One-shot immediate snapshot (Borowsky–Gafni participating-set
    algorithm) from registers.

    Each of [n] processes writes a value and obtains a view — a set of
    (process, value) pairs — such that:

    - {e self-inclusion}: a process is in its own view;
    - {e containment}: any two views are ordered by inclusion;
    - {e immediacy}: if [q] is in [p]'s view then [q]'s view is contained in
      [p]'s view.

    The recursive level structure: a process descends one level at a time,
    announcing its level, and returns the set of processes at or below its
    level as soon as that set is at least as large as the level. *)

open Subc_sim

type t

val alloc : Store.t -> n:int -> Store.t * t

(** [run t ~me v] participates with value [v]; returns the view as a vector
    of length [n] with {m \bot} for processes outside the view. *)
val run : t -> me:int -> Value.t -> Value.t Program.t
