open Subc_sim
open Program.Syntax

type t = Collect.t

(* Cell layout: Vec [timestamp; writer; value]; initially Bot. *)
let cell ts writer v = Value.Vec [ Value.Int ts; Value.Int writer; v ]

let decode c =
  match c with
  | Value.Vec [ Value.Int ts; Value.Int w; v ] -> Some (ts, w, v)
  | _ -> None

let alloc store ~writers = Collect.alloc store writers

let newest cells =
  List.fold_left
    (fun best c ->
      match (decode c, best) with
      | None, _ -> best
      | Some x, None -> Some x
      | Some (ts, w, v), Some (bts, bw, _) ->
        if (ts, w) > (bts, bw) then Some (ts, w, v) else best)
    None cells

let write (t : t) ~me v =
  let* cells = Collect.collect t in
  let ts =
    1 + List.fold_left (fun acc c ->
            match decode c with Some (ts, _, _) -> max acc ts | None -> acc)
          0 cells
  in
  Collect.write t me (cell ts me v)

let read (t : t) =
  let+ cells = Collect.collect t in
  match newest cells with Some (_, _, v) -> v | None -> Value.Bot
