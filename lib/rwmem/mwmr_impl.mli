(** Multi-writer register from single-writer registers
    (Vitányi–Awerbuch-style, unbounded timestamps).

    Each writer owns one SWMR cell holding (timestamp, writer, value).  A
    write collects all cells, picks a timestamp above every one it saw, and
    publishes; a read collects and returns the value with the lexically
    largest (timestamp, writer) pair.  Ties are broken by writer identifier,
    which makes concurrent writes linearizable in a fixed order.

    This backfills the model's assumption that MWMR registers (e.g.
    Algorithm 5's doorway) are available on SWMR hardware; the test suite
    checks refinement against the primitive register. *)

open Subc_sim

type t

(** [alloc store ~writers] — readers are unrestricted. *)
val alloc : Store.t -> writers:int -> Store.t * t

val write : t -> me:int -> Value.t -> unit Program.t
val read : t -> Value.t Program.t
