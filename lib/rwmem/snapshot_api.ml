open Subc_sim

type t = {
  n : int;
  update : me:int -> Value.t -> unit Program.t;
  scan : Value.t Program.t;
}

let primitive store n =
  let store, h = Store.alloc store (Subc_objects.Snapshot_obj.model ~n) in
  ( store,
    {
      n;
      update = (fun ~me v -> Subc_objects.Snapshot_obj.update h me v);
      scan = Subc_objects.Snapshot_obj.scan h;
    } )

let register_based store n =
  let store, t = Snapshot_impl.alloc store n in
  ( store,
    {
      n;
      update = (fun ~me v -> Snapshot_impl.update t ~me v);
      scan = Snapshot_impl.scan t;
    } )
