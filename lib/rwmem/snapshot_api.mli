(** A common interface over the two snapshot facilities.

    The paper's algorithms are written against this record so that every
    construction can run either on the primitive atomic snapshot object
    (small state spaces — exhaustive model checking) or on the register-only
    implementation (full-stack integration runs). *)

open Subc_sim

type t = {
  n : int;
  update : me:int -> Value.t -> unit Program.t;
  scan : Value.t Program.t;
}

(** [primitive store n] backs the interface with [Subc_objects.Snapshot_obj]. *)
val primitive : Store.t -> int -> Store.t * t

(** [register_based store n] backs it with [Snapshot_impl] (AADGMS). *)
val register_based : Store.t -> int -> Store.t * t
