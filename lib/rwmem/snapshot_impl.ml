open Subc_sim
open Program.Syntax

type t = Collect.t

let n (t : t) = t.Collect.n

(* Register cell layout: Vec [seq; value; embedded_view]. *)
let cell seq v view = Value.Vec [ Value.Int seq; v; view ]
let seq_of c = Value.to_int (Value.vec_get c 0)
let value_of c = Value.vec_get c 1
let view_of c = Value.vec_get c 2

let alloc store count =
  let init = cell 0 Value.Bot (Value.bot_vec count) in
  let store, regs = Collect.alloc_init store count init in
  (store, regs)

let values_of collects = Value.Vec (List.map value_of collects)

let changed_indices prev cur =
  List.concat
    (List.mapi
       (fun i c -> if seq_of (List.nth prev i) <> seq_of c then [ i ] else [])
       cur)

let scan t =
  let rec go prev moved =
    let* cur = Collect.collect t in
    let changed = changed_indices prev cur in
    if changed = [] then Program.return (values_of cur)
    else
      match List.find_opt (fun i -> List.mem i moved) changed with
      | Some i ->
        (* Component [i] completed a whole update inside our scan: its
           embedded view is an atomic snapshot linearized within it. *)
        Program.return (view_of (List.nth cur i))
      | None -> go cur (moved @ changed)
  in
  let* first = Collect.collect t in
  go first []

let update t ~me v =
  let* view = scan t in
  let* own = Collect.read t me in
  Collect.write t me (cell (seq_of own + 1) v view)
