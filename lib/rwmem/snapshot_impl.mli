(** Wait-free atomic snapshot from SWMR registers.

    The classic Afek–Attiya–Dolev–Gafni–Merritt–Shavit construction with
    unbounded sequence numbers and embedded scans:

    - [scan] repeatedly double-collects; two identical collects form an
      atomic snapshot; a component observed to change {e twice} belongs to a
      writer whose whole [update] (including its embedded scan) happened
      inside our scan, so its embedded view is returned instead;
    - [update ~me v] performs a scan, then writes (seq+1, v, view) to its
      own register.

    A scan finishes after at most n+2 collects, so the construction is
    wait-free.  Its linearizability is verified by the model checker and the
    history checker in the test suite (experiment E10), which is what
    justifies using the primitive [Subc_objects.Snapshot_obj] in the paper's
    algorithms. *)

open Subc_sim

type t

val n : t -> int

(** [alloc store n] allocates the [n] underlying registers. *)
val alloc : Store.t -> int -> Store.t * t

(** [update t ~me v] sets component [me] to [v] (single-writer: only process
    [me] may use this component). *)
val update : t -> me:int -> Value.t -> unit Program.t

(** [scan t] returns an atomic snapshot of all [n] components as a vector. *)
val scan : t -> Value.t Program.t
