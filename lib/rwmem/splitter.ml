open Subc_sim
open Program.Syntax
module Register = Subc_objects.Register

type t = { door : Store.handle; closed : Store.handle }
type direction = Stop | Right | Down

let alloc store =
  let store, door = Store.alloc store Register.model_bot in
  let store, closed = Store.alloc store (Register.model (Value.Bool false)) in
  (store, { door; closed })

let split t ~me =
  let* () = Register.write t.door (Value.Int me) in
  let* b = Register.read t.closed in
  if Value.to_bool b then Program.return Right
  else
    let* () = Register.write t.closed (Value.Bool true) in
    let* x = Register.read t.door in
    if Value.equal x (Value.Int me) then Program.return Stop
    else Program.return Down

let direction_to_string = function
  | Stop -> "stop"
  | Right -> "right"
  | Down -> "down"
