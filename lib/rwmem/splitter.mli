(** Lamport/Moir–Anderson splitter from two registers.

    Of [p] concurrent visitors, at most one [Stop]s, at most [p−1] go
    [Right] and at most [p−1] go [Down] — the building block of the
    splitter-grid renaming network. *)

open Subc_sim

type t

type direction = Stop | Right | Down

val alloc : Store.t -> Store.t * t

(** [split t ~me] — [me] must be distinct across concurrent visitors. *)
val split : t -> me:int -> direction Program.t

val direction_to_string : direction -> string
