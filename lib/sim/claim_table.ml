(* Lock-free open-addressed claim table for the parallel explorer.

   A claim table answers one question, once per state: "am I the first
   domain to reach this fingerprint?"  It supports exactly one operation,
   [claim], which returns [`Fresh] to exactly one caller per distinct key
   and [`Dup] to every other — claim-once, with no mutex anywhere on the
   path.

   {b Slot encoding.}  Each slot is one or two [int Atomic.t] words.  A
   stored lane keeps the low 62 bits of its fingerprint lane and forces
   the sign bit on ([encode] below), so a live word is always negative —
   distinguishable from [empty] (0) and from the [dead] tombstone (1)
   without a separate presence bit.  Dropping one bit per lane leaves an
   effective 124-bit key in two-lane mode (collision odds ~2^-124 per
   pair) and 62 bits in folded mode (~2^-62 per pair; the birthday bound
   is surfaced through [Explore.stats.collision_bound]).

   {b Two-lane claim protocol.}  Lane 1 is the claim word: CASing it from
   [empty] wins the slot.  Lane 2 is published immediately after; until
   then it reads [empty] and probers spin ([pending] lasts two
   instructions of the claimer).  A probe that matches lane 1 but not
   lane 2 — a genuine 62-bit lane-1 collision between distinct keys, or a
   tombstone — continues down the probe chain.  Folded mode stores a
   single mixed word, so one CAS both claims and publishes; there is no
   pending state.

   {b Growth without a rehash stall.}  The table is a chain of segments
   (newest first), each a fixed power-of-two array.  Nothing is ever
   rehashed or moved: when the newest segment's occupancy crosses its
   limit, a grower appends a doubled segment at the head (serialized by a
   mutex — growth is rare and off the hot path; claims never take it).
   A claim probes the older segments read-only, then claims in the head
   segment, then {e validates} that the head is unchanged; if a new
   segment was published in the window, the claimer tombstones its own
   entry and retries from scratch.

   {b Why claim-once holds (sketch; DESIGN.md has the full argument).}
   Two [`Fresh] answers for one key would need two validated CASes.  In
   the same segment the second CAS on the probed slot fails and the
   probe re-reads the winner's entry ([`Dup]).  Across segments, suppose
   A validated in segment S1 and B claimed in a newer head S2: B's
   snapshot of the segment list contains S2, so B's read of the list
   follows the publication of S2 in the SC order, which follows A's
   validation read (A saw a list without S2), which follows A's entry
   write — so B's read-only probe of S1 sees A's entry and returns
   [`Dup], a contradiction.  A tombstoned (aborted) entry can earn other
   claimers a [`Dup] answer, but its owner retries until it claims or
   meets a validated entry, so exactly one [`Fresh] per key survives;
   growth is finite, so the retries terminate. *)

let empty = 0
let dead = 1

let[@inline] encode h = h lor min_int

(* One well-mixed word out of both lanes, for folded mode. *)
let fold_key h1 h2 =
  let x = h1 + (h2 * 0x27D4EB2F165667C5) in
  let x = (x lxor (x lsr 31)) * 0x2545F4914F6CDD1D in
  x lxor (x lsr 29)

(* Foldedness is a {e per-segment} property: escalation (below) flips the
   table's mode mid-run by prepending a two-lane head segment while the
   folded tail keeps serving read-only probes.  Each probe picks its
   words by the segment it is probing. *)
type segment = {
  folded : bool;
  mask : int;
  lane1 : int Atomic.t array;
  lane2 : int Atomic.t array; (* [||] in folded mode *)
  count : int Atomic.t; (* successful claims incl. tombstoned; occupancy *)
  limit : int; (* occupancy that triggers growth; margin = cap/4 slots
                  absorbs the claimers already past the check *)
}

type t = {
  folded : bool Atomic.t; (* current mode: what new segments use *)
  segments : segment list Atomic.t; (* head = newest = claim target *)
  grow_lock : Mutex.t;
}

(* Per-claim instrumentation, filled by the caller's domain — no shared
   counters on the hot path. *)
type opstats = { mutable probes : int; mutable cas_retries : int }

let fresh_opstats () = { probes = 0; cas_retries = 0 }

let make_segment folded cap =
  {
    folded;
    mask = cap - 1;
    lane1 = Array.init cap (fun _ -> Atomic.make empty);
    lane2 =
      (if folded then [||] else Array.init cap (fun _ -> Atomic.make empty));
    count = Atomic.make 0;
    limit = cap - (cap / 4);
  }

(* A segment holds 3/4 of its capacity before growth triggers, so an
   expectation of [n] live entries needs a capacity of 4n/3; the cap
   keeps a loose expectation from pre-allocating hundreds of MB. *)
let capacity_for_expectation n = min (1 lsl 21) (max 64 (n + (n / 3)))

let create ?initial_capacity ?expected_states mode =
  let folded = match mode with `Folded -> true | `Two_lane -> false in
  let initial_capacity =
    match (initial_capacity, expected_states) with
    | Some c, _ -> c
    | None, Some n -> capacity_for_expectation n
    | None, None -> 4096
  in
  let cap =
    let rec up c = if c >= initial_capacity then c else up (c * 2) in
    up 64
  in
  {
    folded = Atomic.make folded;
    segments = Atomic.make [ make_segment folded cap ];
    grow_lock = Mutex.create ();
  }

let bits t = if Atomic.get t.folded then 62 else 124
let is_folded t = Atomic.get t.folded

(* Spin until the claimer of slot [i] publishes lane 2 (two instructions
   away); returns the published word ([dead] if the claim was aborted). *)
let rec lane2_value seg i =
  let b = Atomic.get seg.lane2.(i) in
  if b = empty then begin
    Domain.cpu_relax ();
    lane2_value seg i
  end
  else b

(* Read-only probe of an older segment: [true] iff a live entry for
   (w1, w2) is present.  Stops at the first empty slot — older segments
   receive no new claims except in-flight ones that will abort. *)
let probe_ro st (seg : segment) w1 w2 =
  let cap = seg.mask + 1 in
  let rec go i remaining =
    if remaining = 0 then false
    else begin
      st.probes <- st.probes + 1;
      let a = Atomic.get seg.lane1.(i) in
      if a = empty then false
      else if a = w1 then
        if seg.folded then true
        else if lane2_value seg i = w2 then true
        else go ((i + 1) land seg.mask) (remaining - 1)
      else go ((i + 1) land seg.mask) (remaining - 1)
    end
  in
  go (w1 land seg.mask) cap

(* Claim in the head segment. *)
let claim_in_head st (seg : segment) w1 w2 =
  let cap = seg.mask + 1 in
  let rec go i remaining =
    if remaining = 0 then `Full
    else begin
      st.probes <- st.probes + 1;
      let a = Atomic.get seg.lane1.(i) in
      if a = empty then
        if Atomic.get seg.count >= seg.limit then `Full
        else if Atomic.compare_and_set seg.lane1.(i) empty w1 then begin
          if not seg.folded then Atomic.set seg.lane2.(i) w2;
          Atomic.incr seg.count;
          `Claimed i
        end
        else begin
          (* Lost the slot race: re-examine the same slot. *)
          st.cas_retries <- st.cas_retries + 1;
          go i remaining
        end
      else if a = w1 then
        if seg.folded then `Dup
        else if lane2_value seg i = w2 then `Dup
        else go ((i + 1) land seg.mask) (remaining - 1)
      else go ((i + 1) land seg.mask) (remaining - 1)
    end
  in
  go (w1 land seg.mask) cap

(* Tombstone our own aborted claim: the slot stays occupied (probe chains
   must not shorten), but no key matches it again. *)
let retract (seg : segment) i =
  if seg.folded then Atomic.set seg.lane1.(i) dead
  else Atomic.set seg.lane2.(i) dead

(* Append a doubled segment, unless someone already did.  New segments
   take the table's {e current} mode, so growth after an escalation keeps
   producing two-lane segments. *)
let grow t seen =
  Mutex.lock t.grow_lock;
  (if Atomic.get t.segments == seen then
     let cap =
       match seen with [] -> assert false | s :: _ -> 2 * (s.mask + 1)
     in
     Atomic.set t.segments (make_segment (Atomic.get t.folded) cap :: seen));
  Mutex.unlock t.grow_lock

(* Escalate a folded table to two-lane keys mid-run: prepend a same-size
   two-lane head segment and flip the mode for future growth.  Existing
   folded entries stay where they are and keep answering read-only probes
   with folded words — escalation caps the {e growth} of the collision
   bound rather than rewriting history.  In-flight claims against the old
   head observe the new segment list during validation and abort-retry
   through the exact mechanism growth uses, so claim-once is untouched.
   Idempotent; a no-op on a table that is already two-lane. *)
let escalate t =
  Mutex.lock t.grow_lock;
  (if Atomic.get t.folded then begin
     Atomic.set t.folded false;
     let segs = Atomic.get t.segments in
     let cap = match segs with [] -> assert false | s :: _ -> s.mask + 1 in
     Atomic.set t.segments (make_segment false cap :: segs)
   end);
  Mutex.unlock t.grow_lock

let claim t st ~h1 ~h2 =
  (* Words for both modes are cheap to precompute; each segment picks by
     its own foldedness. *)
  let wf = encode (fold_key h1 h2) in
  let w1 = encode h1 and w2 = encode h2 in
  let words (seg : segment) = if seg.folded then (wf, 0) else (w1, w2) in
  let rec attempt () =
    let segs = Atomic.get t.segments in
    match segs with
    | [] -> assert false
    | head :: older ->
      if
        List.exists
          (fun s ->
            let a, b = words s in
            probe_ro st s a b)
          older
      then `Dup
      else begin
        let a, b = words head in
        match claim_in_head st head a b with
        | `Dup -> `Dup
        | `Full ->
          grow t segs;
          attempt ()
        | `Claimed i ->
          if Atomic.get t.segments == segs then `Fresh
          else begin
            (* A new segment appeared in the window: another claimer of
               this key may have missed our entry.  Abort and retry. *)
            retract head i;
            st.cas_retries <- st.cas_retries + 1;
            attempt ()
          end
      end
  in
  attempt ()

let occupancy t =
  List.fold_left
    (fun acc s -> acc + Atomic.get s.count)
    0
    (Atomic.get t.segments)

(* Live-ish entries still guarded only by a 62-bit word — the piecewise
   collision bound in the parallel engine charges these pairs at 2^-62
   and the rest at 2^-124. *)
let folded_occupancy t =
  List.fold_left
    (fun acc (s : segment) -> if s.folded then acc + Atomic.get s.count else acc)
    0
    (Atomic.get t.segments)

let slots t =
  List.fold_left (fun acc s -> acc + s.mask + 1) 0 (Atomic.get t.segments)

(* Analytic footprint: each [int Atomic.t] is a one-field boxed record
   (header + field = 2 words) plus its array slot — 3 words per lane per
   slot — plus the array headers. *)
let memory_bytes t =
  List.fold_left
    (fun acc (s : segment) ->
      let words_per_slot = if s.folded then 3 else 6 in
      acc + (((s.mask + 1) * words_per_slot) + 8))
    0
    (Atomic.get t.segments)
  * 8
