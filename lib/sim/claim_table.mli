(** Lock-free open-addressed claim table.

    The parallel explorer's visited set, reduced to its essence: a
    claim-once membership test over two-lane 126-bit fingerprints with
    no mutex on the hot path.  Slots are [int Atomic.t] words (62
    usable bits per lane after the live/empty/tombstone encoding);
    claiming is a single CAS on the first lane; linear probing resolves
    collisions; capacity grows by appending doubled segments, so there
    is never a stop-the-world rehash.  See the implementation comment
    and DESIGN.md, "The lock-free claim table", for the claim-once
    linearizability argument.

    Two modes: [`Two_lane] stores both fingerprint lanes (effective 124
    bits, ~2^-124 collision odds per pair); [`Folded] stores a single
    mixed word per state (62 bits — half the memory, collision odds
    ~2^-62 per pair, bounded and surfaced by the caller).

    Foldedness is a per-segment property: {!escalate} flips a folded
    table to two-lane mid-run by prepending a two-lane head segment,
    without rehashing the folded tail.  Probes pick their words by the
    segment they are probing, so mixed-mode tables stay claim-once. *)

type t

(** Per-claim instrumentation, accumulated into caller-owned (per-domain)
    mutable fields — no shared counters on the hot path. *)
type opstats = { mutable probes : int; mutable cas_retries : int }

val fresh_opstats : unit -> opstats

val create :
  ?initial_capacity:int -> ?expected_states:int -> [ `Two_lane | `Folded ] -> t
(** [initial_capacity] (default 4096) is rounded up to a power of two,
    minimum 64.  [expected_states] is a sizing hint used when
    [initial_capacity] is absent: the first segment is sized to hold that
    many entries without growing (capped at 2^21 slots, so a loose hint
    cannot pre-allocate unbounded memory).  An explicit
    [initial_capacity] wins over the hint. *)

val claim : t -> opstats -> h1:int -> h2:int -> [ `Fresh | `Dup ]
(** [claim t st ~h1 ~h2] — [`Fresh] for exactly one caller per distinct
    [(h1, h2)] (mod the mode's truncation), [`Dup] for every other.
    Lock-free; safe from any number of domains. *)

val bits : t -> int
(** Effective key width of the table's {e current} mode: 124 (two-lane)
    or 62 (folded).  After an escalation this reports 124 even though
    the folded tail remains — use {!folded_occupancy} for the piecewise
    collision accounting. *)

val is_folded : t -> bool
(** Whether new claims currently land in folded (62-bit) segments. *)

val escalate : t -> unit
(** Flip a folded table to two-lane keys for all future claims: a
    same-size two-lane segment is prepended and future growth produces
    two-lane segments.  Existing folded entries are not rehashed; they
    keep serving probes with folded words.  In-flight claims abort and
    retry through the growth validation path, so claim-once is
    preserved.  Idempotent; no-op on a two-lane table. *)

val occupancy : t -> int
(** Slots consumed (successful claims, aborted ones included). *)

val folded_occupancy : t -> int
(** Slots consumed in folded segments only — the entries still guarded
    by 62-bit words, charged at 2^-62 in the piecewise collision
    bound. *)

val slots : t -> int
(** Total slots across all segments. *)

val memory_bytes : t -> int
(** Analytic memory footprint of the table's arrays and atoms. *)

val fold_key : int -> int -> int
(** The folded mode's key compression: one well-mixed word out of both
    fingerprint lanes.  Exposed so the out-of-core {!Spill_table} and the
    partition router key by {e exactly} the same 62-bit representation as
    a [`Folded] claim table. *)

val encode : int -> int
(** Force the live-entry tag (sign bit) onto a lane word: a stored word
    is always negative, distinguishable from empty (0) and tombstone
    (1).  [encode (fold_key h1 h2)] is the on-disk word of the spill
    table. *)
