(** Lock-free open-addressed claim table.

    The parallel explorer's visited set, reduced to its essence: a
    claim-once membership test over two-lane 126-bit fingerprints with
    no mutex on the hot path.  Slots are [int Atomic.t] words (62
    usable bits per lane after the live/empty/tombstone encoding);
    claiming is a single CAS on the first lane; linear probing resolves
    collisions; capacity grows by appending doubled segments, so there
    is never a stop-the-world rehash.  See the implementation comment
    and DESIGN.md, "The lock-free claim table", for the claim-once
    linearizability argument.

    Two modes: [`Two_lane] stores both fingerprint lanes (effective 124
    bits, ~2^-124 collision odds per pair); [`Folded] stores a single
    mixed word per state (62 bits — half the memory, collision odds
    ~2^-62 per pair, bounded and surfaced by the caller). *)

type t

(** Per-claim instrumentation, accumulated into caller-owned (per-domain)
    mutable fields — no shared counters on the hot path. *)
type opstats = { mutable probes : int; mutable cas_retries : int }

val fresh_opstats : unit -> opstats

val create : ?initial_capacity:int -> [ `Two_lane | `Folded ] -> t
(** [initial_capacity] (default 4096) is rounded up to a power of two,
    minimum 64. *)

val claim : t -> opstats -> h1:int -> h2:int -> [ `Fresh | `Dup ]
(** [claim t st ~h1 ~h2] — [`Fresh] for exactly one caller per distinct
    [(h1, h2)] (mod the mode's truncation), [`Dup] for every other.
    Lock-free; safe from any number of domains. *)

val bits : t -> int
(** Effective key width: 124 ([`Two_lane]) or 62 ([`Folded]). *)

val occupancy : t -> int
(** Slots consumed (successful claims, aborted ones included). *)

val slots : t -> int
(** Total slots across all segments. *)

val memory_bytes : t -> int
(** Analytic memory footprint of the table's arrays and atoms. *)
