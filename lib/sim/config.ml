type status =
  | Running of Value.t Program.t
  | Terminated of Value.t
  | Hung
  | Crashed
  | Recovering of Value.t Program.t

type proc = {
  status : status;
  history : Value.t list;
  steps : int;
  recoveries : int;
}

type t = {
  store : Store.t;
  procs : proc array;
  programs : Value.t Program.t array;
}

(* Normalize a continuation: [Return] terminates, [Checkpoint] replaces the
   response history with its key (see [Program.checkpoint]). *)
let rec advance program history =
  match program with
  | Program.Return v -> (Terminated v, history)
  | Program.Checkpoint (key, rest) -> advance rest [ key ]
  | Program.Invoke _ -> (Running program, history)

let make store programs =
  let proc p =
    let status, history = advance p [] in
    { status; history; steps = 0; recoveries = 0 }
  in
  {
    store;
    procs = Array.of_list (List.map proc programs);
    programs = Array.of_list programs;
  }

let n_procs c = Array.length c.procs

let can_step proc =
  match proc.status with
  | Running _ | Recovering _ -> true
  | Terminated _ | Hung | Crashed -> false

let running c =
  let acc = ref [] in
  Array.iteri (fun i p -> if can_step p then acc := i :: !acc) c.procs;
  List.rev !acc

let is_terminal c = running c = []

let decision c i =
  match c.procs.(i).status with
  | Terminated v -> Some v
  | Running _ | Recovering _ | Hung | Crashed -> None

let decisions c =
  Array.to_list c.procs
  |> List.filter_map (fun p ->
         match p.status with
         | Terminated v -> Some v
         | Running _ | Recovering _ | Hung | Crashed -> None)

let any_hung c =
  Array.exists (fun p -> match p.status with Hung -> true | _ -> false) c.procs

let is_crashed c i = c.procs.(i).status = Crashed

let crashed c =
  let acc = ref [] in
  Array.iteri (fun i p -> if p.status = Crashed then acc := i :: !acc) c.procs;
  List.rev !acc

let n_crashed c =
  Array.fold_left
    (fun n p -> if p.status = Crashed then n + 1 else n)
    0 c.procs

let any_crashed c = n_crashed c > 0

let n_recoveries c =
  Array.fold_left (fun n p -> n + p.recoveries) 0 c.procs

let any_recovered c =
  Array.exists (fun p -> p.recoveries > 0) c.procs

(* The history is cleared on crash: a crashed process has no continuation,
   so its response history can no longer influence the execution — dropping
   it merges configurations that differ only in where the victim was when
   it died, which is what makes exhaustive crash sweeps tractable. *)
let crash c i =
  match c.procs.(i).status with
  | Running _ | Recovering _ ->
    let procs = Array.copy c.procs in
    procs.(i) <- { c.procs.(i) with status = Crashed; history = [] };
    { c with procs }
  | Terminated _ | Hung | Crashed ->
    invalid_arg (Printf.sprintf "Config.crash: process %d cannot crash" i)

(* Crash-recovery: the crashed process restarts its initial program with an
   empty response history (local state is volatile — lost with the crash),
   while the store keeps only persistent object state ([Store.recover]).
   The per-process [recoveries] counter is part of the configuration key:
   the recovery budget must be derivable from the configuration alone (the
   transient [Recovering] status is erased by the process's first step), or
   memoization would merge configurations with different remaining
   budgets. *)
let recover c i =
  match c.procs.(i).status with
  | Crashed ->
    let status, history = advance c.programs.(i) [] in
    let status =
      match status with Running prog -> Recovering prog | s -> s
    in
    let procs = Array.copy c.procs in
    procs.(i) <-
      {
        status;
        history;
        steps = c.procs.(i).steps;
        recoveries = c.procs.(i).recoveries + 1;
      };
    { c with store = Store.recover c.store; procs }
  | Running _ | Recovering _ | Terminated _ | Hung ->
    invalid_arg (Printf.sprintf "Config.recover: process %d is not crashed" i)

let proc_key p =
  let status =
    match p.status with
    | Running _ -> Value.Sym "run"
    | Terminated v -> Value.Tag ("done", v)
    | Hung -> Value.Sym "hung"
    | Crashed -> Value.Sym "crash"
    | Recovering _ -> Value.Sym "recover"
  in
  Value.Pair
    (status, Value.Pair (Value.Int p.recoveries, Value.Vec p.history))

let key c =
  let store_part =
    Value.Vec
      (List.map (fun (h, st) -> Value.Pair (Value.Int h, st)) (Store.contents c.store))
  in
  let procs_part = Value.Vec (Array.to_list (Array.map proc_key c.procs)) in
  Value.Pair (store_part, procs_part)

let pp ppf c =
  Format.fprintf ppf "@[<v>store:@,%a" Store.pp c.store;
  Array.iteri
    (fun i p ->
      let status =
        match p.status with
        | Running _ -> "running"
        | Terminated v -> "terminated " ^ Value.to_string v
        | Hung -> "hung"
        | Crashed -> "crashed"
        | Recovering _ -> "recovering"
      in
      Format.fprintf ppf "P%d: %s after %d steps%s@," i status p.steps
        (if p.recoveries > 0 then
           Printf.sprintf " (%d recoveries)" p.recoveries
         else ""))
    c.procs;
  Format.fprintf ppf "@]"
