type status =
  | Running of Value.t Program.t
  | Terminated of Value.t
  | Hung
  | Crashed
  | Recovering of Value.t Program.t

type proc = {
  status : status;
  history : Value.t list;
  steps : int;
  recoveries : int;
}

type t = {
  store : Store.t;
  procs : proc array;
  programs : Value.t Program.t array;
}

(* Normalize a continuation: [Return] terminates, [Checkpoint] replaces the
   response history with its key (see [Program.checkpoint]). *)
let rec advance program history =
  match program with
  | Program.Return v -> (Terminated v, history)
  | Program.Checkpoint (key, rest) -> advance rest [ key ]
  | Program.Invoke _ -> (Running program, history)

let make store programs =
  let proc p =
    let status, history = advance p [] in
    { status; history; steps = 0; recoveries = 0 }
  in
  {
    store;
    procs = Array.of_list (List.map proc programs);
    programs = Array.of_list programs;
  }

let n_procs c = Array.length c.procs

let can_step proc =
  match proc.status with
  | Running _ | Recovering _ -> true
  | Terminated _ | Hung | Crashed -> false

let running c =
  let acc = ref [] in
  Array.iteri (fun i p -> if can_step p then acc := i :: !acc) c.procs;
  List.rev !acc

let is_terminal c = running c = []

let decision c i =
  match c.procs.(i).status with
  | Terminated v -> Some v
  | Running _ | Recovering _ | Hung | Crashed -> None

let decisions c =
  Array.to_list c.procs
  |> List.filter_map (fun p ->
         match p.status with
         | Terminated v -> Some v
         | Running _ | Recovering _ | Hung | Crashed -> None)

let any_hung c =
  Array.exists (fun p -> match p.status with Hung -> true | _ -> false) c.procs

let is_crashed c i = c.procs.(i).status = Crashed

let crashed c =
  let acc = ref [] in
  Array.iteri (fun i p -> if p.status = Crashed then acc := i :: !acc) c.procs;
  List.rev !acc

let n_crashed c =
  Array.fold_left
    (fun n p -> if p.status = Crashed then n + 1 else n)
    0 c.procs

let any_crashed c = n_crashed c > 0

let n_recoveries c =
  Array.fold_left (fun n p -> n + p.recoveries) 0 c.procs

let any_recovered c =
  Array.exists (fun p -> p.recoveries > 0) c.procs

(* The history is cleared on crash: a crashed process has no continuation,
   so its response history can no longer influence the execution — dropping
   it merges configurations that differ only in where the victim was when
   it died, which is what makes exhaustive crash sweeps tractable. *)
let crash c i =
  match c.procs.(i).status with
  | Running _ | Recovering _ ->
    let procs = Array.copy c.procs in
    procs.(i) <- { c.procs.(i) with status = Crashed; history = [] };
    { c with procs }
  | Terminated _ | Hung | Crashed ->
    invalid_arg (Printf.sprintf "Config.crash: process %d cannot crash" i)

(* Crash-recovery: the crashed process restarts its initial program with an
   empty response history (local state is volatile — lost with the crash),
   while the store keeps only persistent object state ([Store.recover]).
   The per-process [recoveries] counter is part of the configuration key:
   the recovery budget must be derivable from the configuration alone (the
   transient [Recovering] status is erased by the process's first step), or
   memoization would merge configurations with different remaining
   budgets. *)
let recover c i =
  match c.procs.(i).status with
  | Crashed ->
    let status, history = advance c.programs.(i) [] in
    let status =
      match status with Running prog -> Recovering prog | s -> s
    in
    let procs = Array.copy c.procs in
    procs.(i) <-
      {
        status;
        history;
        steps = c.procs.(i).steps;
        recoveries = c.procs.(i).recoveries + 1;
      };
    { c with store = Store.recover c.store; procs }
  | Running _ | Recovering _ | Terminated _ | Hung ->
    invalid_arg (Printf.sprintf "Config.recover: process %d is not crashed" i)

(* Delta-encoded configurations: a frontier entry is a parent pointer
   plus the slot patches its transition rewrote, with a periodic rebase
   to a materialized root every K links so chains (and materialization
   cost) stay bounded.  The patches are exactly [Step]'s [slots], so the
   frontier retains O(1) fresh words per entry instead of a copied proc
   array per entry; everything else is structure-shared with the root. *)
module Delta = struct
  type config = t

  type patch = {
    p_procs : (int * proc) list;
    p_store : (Store.handle * Value.t) list;
  }

  type t = Root of config | Link of t * int * patch

  let default_rebase_interval = 8

  (* Settable (tests shrink it to force rebases on tiny chains); shared
     across the parallel engine's domains, hence atomic. *)
  let rebase_interval = Atomic.make default_rebase_interval
  let set_rebase_interval n = Atomic.set rebase_interval (max 1 n)
  let get_rebase_interval () = Atomic.get rebase_interval
  let root c = Root c
  let links = function Root _ -> 0 | Link (_, n, _) -> n

  (* O(1) (physically the root itself) on [Root]; otherwise one proc-array
     copy plus one [Store.set] per store patch, applied oldest-first so
     later links win. *)
  let materialize node =
    match node with
    | Root c -> c
    | Link _ ->
      let rec collect acc = function
        | Root c -> (c, acc)
        | Link (parent, _, patch) -> collect (patch :: acc) parent
      in
      let c0, patches = collect [] node in
      let procs = Array.copy c0.procs in
      let store =
        List.fold_left
          (fun store patch ->
            List.iter (fun (i, p) -> procs.(i) <- p) patch.p_procs;
            List.fold_left
              (fun store (h, v) -> Store.set store h v)
              store patch.p_store)
          c0.store patches
      in
      { c0 with store; procs }

  let extend node ~proc_sets ~store_sets =
    let n = links node + 1 in
    let link =
      Link (node, n, { p_procs = proc_sets; p_store = store_sets })
    in
    if n >= Atomic.get rebase_interval then Root (materialize link) else link

  (* Rough unique-retention estimate in words (excluding structure shared
     with the parent/root), for frontier-memory accounting. *)
  let approx_words = function
    | Root c ->
      (* config record + procs array + one fresh proc record + a handful
         of store-map spine nodes not shared with the parent. *)
      4 + (Array.length c.procs + 1) + 6 + 20
    | Link (_, _, patch) ->
      3 + 1
      + List.fold_left (fun n _ -> n + 3 + 2 + 6) 0 patch.p_procs
      + List.fold_left (fun n _ -> n + 3 + 2) 0 patch.p_store
end

let proc_key p =
  let status =
    match p.status with
    | Running _ -> Value.Sym "run"
    | Terminated v -> Value.Tag ("done", v)
    | Hung -> Value.Sym "hung"
    | Crashed -> Value.Sym "crash"
    | Recovering _ -> Value.Sym "recover"
  in
  Value.Pair
    (status, Value.Pair (Value.Int p.recoveries, Value.Vec p.history))

let key c =
  let store_part =
    Value.Vec
      (List.map (fun (h, st) -> Value.Pair (Value.Int h, st)) (Store.contents c.store))
  in
  let procs_part = Value.Vec (Array.to_list (Array.map proc_key c.procs)) in
  Value.Pair (store_part, procs_part)

let pp ppf c =
  Format.fprintf ppf "@[<v>store:@,%a" Store.pp c.store;
  Array.iteri
    (fun i p ->
      let status =
        match p.status with
        | Running _ -> "running"
        | Terminated v -> "terminated " ^ Value.to_string v
        | Hung -> "hung"
        | Crashed -> "crashed"
        | Recovering _ -> "recovering"
      in
      Format.fprintf ppf "P%d: %s after %d steps%s@," i status p.steps
        (if p.recoveries > 0 then
           Printf.sprintf " (%d recoveries)" p.recoveries
         else ""))
    c.procs;
  Format.fprintf ppf "@]"
