(** Configurations.

    A configuration specifies the state of every process and the value of
    every shared object (Section 2).  Process state is the pending program
    continuation plus the history of responses received so far; since
    programs are deterministic functions of their response histories, the
    pair (object states, response histories) canonically identifies a
    configuration, which lets the model checker memoize configurations even
    though continuations are closures.

    Crash faults are first-class: a process may transition to [Crashed], a
    terminal status distinct from [Terminated] (it produced no output) and
    from [Hung] (it was not the victim of an illegal invocation — the
    adversary simply stopped it).  A crashed process never takes another
    step; since a crashed process is indistinguishable from a slow one,
    wait-free safety properties must hold on the surviving outcomes.

    Crash-{e recovery} is equally first-class: a crashed process may
    {!recover} — it restarts its initial program with an empty response
    history (its local state is volatile), while shared objects keep only
    their persistent component ({!Store.recover}; all-persistent by
    default).  The freshly recovered process is [Recovering] until its
    first step; its per-process [recoveries] counter is part of the
    configuration key, so the model checker's recovery budget is derivable
    from the configuration alone. *)

type status =
  | Running of Value.t Program.t
  | Terminated of Value.t  (** the process produced its output value *)
  | Hung  (** the process invoked an operation with no successor *)
  | Crashed  (** the adversary stopped the process; no output *)
  | Recovering of Value.t Program.t
      (** restarted after a crash; behaves as [Running] from its next step *)

type proc = {
  status : status;
  history : Value.t list;  (** responses received, newest first *)
  steps : int;
  recoveries : int;  (** crash-recoveries this process has performed *)
}

type t = {
  store : Store.t;
  procs : proc array;
  programs : Value.t Program.t array;
      (** the initial programs, restarted on recovery; constant along any
          execution, hence excluded from {!key} *)
}

(** [make store programs] starts one process per program; programs that are
    already [Return v] start in the [Terminated v] state. *)
val make : Store.t -> Value.t Program.t list -> t

(** [advance program history] normalizes a continuation: [Return v] becomes
    [Terminated v]; a [Checkpoint] replaces the history with its key. *)
val advance : Value.t Program.t -> Value.t list -> status * Value.t list

val n_procs : t -> int

(** Indices of processes that can still take a step ([Running] or
    [Recovering]). *)
val running : t -> int list

(** A configuration is terminal when no process can take a step (all are
    terminated, hung, or crashed).  Note that under a positive recovery
    budget a terminal configuration with crashed processes still has
    {!recover} transitions: "terminal" means "no process step", and the
    adversary may choose never to recover anyone. *)
val is_terminal : t -> bool

(** [decision c i] is [Some v] iff process [i] terminated with output [v]. *)
val decision : t -> int -> Value.t option

(** All outputs of terminated processes, in process order. *)
val decisions : t -> Value.t list

val any_hung : t -> bool

(** [crash c i] — process [i] crashes: it never steps again (unless
    recovered) and produces no output.  Its response history is cleared (it
    can no longer influence the execution), which lets the model checker
    merge configurations that differ only in where the victim was when it
    died.
    @raise Invalid_argument if process [i] is not running. *)
val crash : t -> int -> t

val is_crashed : t -> int -> bool

(** Indices of crashed processes, in increasing order. *)
val crashed : t -> int list

val n_crashed : t -> int
val any_crashed : t -> bool

(** [recover c i] — crashed process [i] restarts its initial program with
    an empty response history and status [Recovering]; the store is
    projected to persistent object state ({!Store.recover}); the process's
    [recoveries] counter increments.
    @raise Invalid_argument if process [i] is not crashed. *)
val recover : t -> int -> t

(** Total crash-recoveries performed across all processes — the recovery
    budget consumed so far, derivable from the configuration. *)
val n_recoveries : t -> int

val any_recovered : t -> bool

(** Canonical key for memoization: encodes object states, process response
    histories, statuses and recovery counters as a single value. *)
val key : t -> Value.t

(** Delta-encoded configurations for compact frontiers.

    A frontier entry is a pointer to its parent plus the slot patches its
    transition rewrote (one process slot, at most a handful of store
    slots — {!Step.slots}), so the explorer's work queues retain O(1)
    fresh words per entry instead of a copied process array each.  Chains
    are rebased to a materialized {e root} every K links
    ({!Delta.set_rebase_interval}, default 8), bounding both chain length
    and materialization cost. *)
module Delta : sig
  type config := t

  type t

  (** [root c] wraps a materialized configuration; {!materialize} returns
      it physically unchanged. *)
  val root : config -> t

  (** [extend node ~proc_sets ~store_sets] appends one transition's
      patches.  When the chain reaches the rebase interval the result is
      eagerly materialized into a fresh root. *)
  val extend :
    t ->
    proc_sets:(int * proc) list ->
    store_sets:(Store.handle * Value.t) list ->
    t

  (** Replay the chain over its root: one proc-array copy plus one
      {!Store.set} per store patch, oldest-first.  Equals the eagerly
      built configuration up to structural equality (and physical
      equality on untouched slots). *)
  val materialize : t -> config

  (** Links back to the nearest root (0 for a root). *)
  val links : t -> int

  val default_rebase_interval : int
  val set_rebase_interval : int -> unit
  val get_rebase_interval : unit -> int

  (** Rough unique-retention estimate in words (excluding structure
      shared with parent/root), for frontier-memory accounting. *)
  val approx_words : t -> int
end

val pp : Format.formatter -> t -> unit
