type stats = {
  states : int;
  transitions : int;
  terminals : int;
  hung_terminals : int;
  crashed_terminals : int;
  max_depth : int;
  dedup_hits : int;
  cycles : int;
  limited : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "states=%d transitions=%d terminals=%d hung=%d crashed=%d depth=%d \
     dedup=%d cycles=%d%s"
    s.states s.transitions s.terminals s.hung_terminals s.crashed_terminals
    s.max_depth s.dedup_hits s.cycles
    (if s.limited then " (LIMITED)" else "")

(* Canonical configurations are interned as 16-byte digests: the visited
   set of a multi-million-state exploration must not retain the full
   structured keys. *)
module Vtbl = Hashtbl

let fingerprint config = Digest.string (Marshal.to_string (Config.key config) [])

exception Stop

type state = {
  visited : (string, unit) Vtbl.t;
  onstack : (string, unit) Vtbl.t;
  mutable states : int;
  mutable transitions : int;
  mutable terminals : int;
  mutable hung_terminals : int;
  mutable crashed_terminals : int;
  mutable max_depth : int;
  mutable dedup_hits : int;
  mutable cycles : int;
  mutable limited : bool;
  max_states : int;
  depth_limit : int;
  max_crashes : int;
  mutable cycle_witness : Trace.t option;
  on_terminal : Config.t -> Trace.t -> unit;
  on_visit : Config.t -> Trace.t Lazy.t -> unit;
  stop_on_cycle : bool;
}

let stats_of st =
  {
    states = st.states;
    transitions = st.transitions;
    terminals = st.terminals;
    hung_terminals = st.hung_terminals;
    crashed_terminals = st.crashed_terminals;
    max_depth = st.max_depth;
    dedup_hits = st.dedup_hits;
    cycles = st.cycles;
    limited = st.limited;
  }

(* DFS with memoization on canonical configuration keys.  [rev_trace] is the
   path from the root, newest event first.  Crash transitions are ordinary
   transitions of the search: every running process may crash as long as the
   crash budget is not exhausted.  The budget needs no separate memoization
   key — crashed processes are part of the configuration, so the number of
   crashes used is derivable from the configuration itself. *)
let rec dfs st config rev_trace depth =
  if depth > st.max_depth then st.max_depth <- depth;
  if depth > st.depth_limit then
    (* Prune this branch only; siblings are still explored. *)
    st.limited <- true
  else
    let key = fingerprint config in
    if Vtbl.mem st.onstack key then begin
      (* Back-edge into the current DFS stack: an infinite schedule. *)
      st.cycles <- st.cycles + 1;
      if st.cycle_witness = None then st.cycle_witness <- Some (List.rev rev_trace);
      if st.stop_on_cycle then raise Stop
    end
    else if Vtbl.mem st.visited key then st.dedup_hits <- st.dedup_hits + 1
    else if st.states >= st.max_states then begin
      st.limited <- true;
      raise Stop
    end
    else begin
      Vtbl.add st.visited key ();
      st.states <- st.states + 1;
      st.on_visit config (lazy (List.rev rev_trace));
      match Config.running config with
      | [] ->
        st.terminals <- st.terminals + 1;
        if Config.any_hung config then
          st.hung_terminals <- st.hung_terminals + 1;
        if Config.any_crashed config then
          st.crashed_terminals <- st.crashed_terminals + 1;
        st.on_terminal config (List.rev rev_trace)
      | runnable ->
        Vtbl.add st.onstack key ();
        List.iter
          (fun i ->
            List.iter
              (fun (config', event) ->
                st.transitions <- st.transitions + 1;
                dfs st config' (Trace.Sched event :: rev_trace) (depth + 1))
              (Step.step config i))
          runnable;
        if Config.n_crashed config < st.max_crashes then
          List.iter
            (fun (config', victim) ->
              st.transitions <- st.transitions + 1;
              dfs st config' (Trace.Crash victim :: rev_trace) (depth + 1))
            (Step.crash_successors config);
        Vtbl.remove st.onstack key
    end

let make_state ?(max_states = 5_000_000) ?(max_depth = 10_000)
    ?(max_crashes = 0) ?(stop_on_cycle = false)
    ?(on_visit = fun _ _ -> ()) on_terminal =
  {
    visited = Vtbl.create 4096;
    onstack = Vtbl.create 256;
    states = 0;
    transitions = 0;
    terminals = 0;
    hung_terminals = 0;
    crashed_terminals = 0;
    max_depth = 0;
    dedup_hits = 0;
    cycles = 0;
    limited = false;
    max_states;
    depth_limit = max_depth;
    max_crashes;
    cycle_witness = None;
    on_terminal;
    on_visit;
    stop_on_cycle;
  }

let iter_terminals ?max_states ?max_depth ?max_crashes config ~f =
  let st = make_state ?max_states ?max_depth ?max_crashes f in
  (try dfs st config [] 0 with Stop -> ());
  stats_of st

let iter_reachable ?max_states ?max_depth ?max_crashes config ~f =
  let st =
    make_state ?max_states ?max_depth ?max_crashes ~on_visit:f (fun _ _ -> ())
  in
  (try dfs st config [] 0 with Stop -> ());
  stats_of st

let find_terminal ?max_states ?max_depth ?max_crashes config ~violates =
  let found = ref None in
  let on_terminal c trace =
    if violates c then begin
      found := Some (c, trace);
      raise Stop
    end
  in
  let st = make_state ?max_states ?max_depth ?max_crashes on_terminal in
  (try dfs st config [] 0 with Stop -> ());
  (!found, stats_of st)

let check_terminals ?max_states ?max_depth ?max_crashes config ~ok =
  match
    find_terminal ?max_states ?max_depth ?max_crashes config
      ~violates:(fun c -> not (ok c))
  with
  | None, stats -> Ok stats
  | Some (c, trace), stats -> Error (c, trace, stats)

let find_cycle ?max_states ?max_depth ?max_crashes config =
  let st =
    make_state ?max_states ?max_depth ?max_crashes ~stop_on_cycle:true
      (fun _ _ -> ())
  in
  (try dfs st config [] 0 with Stop -> ());
  (st.cycle_witness, stats_of st)
