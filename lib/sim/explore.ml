module Obs = Subc_obs

type limit_reason = No_limit | Max_states | Max_depth | Deadline

let pp_limit_reason ppf = function
  | No_limit -> Format.fprintf ppf "none"
  | Max_states -> Format.fprintf ppf "max-states"
  | Max_depth -> Format.fprintf ppf "max-depth"
  | Deadline -> Format.fprintf ppf "deadline"

(* A truncation reason makes the search inconclusive. *)
let reason_truncates = function
  | No_limit -> false
  | Max_states | Max_depth | Deadline -> true

type stats = {
  states : int;
  transitions : int;
  terminals : int;
  hung_terminals : int;
  crashed_terminals : int;
  recovered_terminals : int;
  max_depth : int;
  dedup_hits : int;
  source_skips : int;
  cycles : int;
  collision_bound : float;
  limited : bool;
  limit_reason : limit_reason;
  frontier_bytes : int;
}

(* How visited-set keys are produced on the unreduced (symmetry-off)
   lanes:

   - [Incremental] (default): the root configuration is hashed once with
     the homomorphic fold ([Fingerprint.hom_of_config]); every transition
     then {e patches} the parent's fingerprint through the slots it
     rewrote ([Step.slots]) — O(1) per transition instead of
     O(|store| + |procs|).
   - [Full]: every state is re-folded from scratch ([of_config]) — the
     escape hatch, and the cross-validation baseline.

   Symmetry-canonicalized keys always take the existing [of_value] path
   (the orbit minimization materializes the canonical key tree anyway),
   and [~paranoid] keys stay exact; under paranoid the incremental
   fingerprint is still carried and cross-validated against a
   [hom_of_config] re-fold at every node ([fp.paranoid_mismatches]). *)
type fp_mode = Incremental | Full

let pp_fp_mode ppf = function
  | Incremental -> Format.fprintf ppf "incremental"
  | Full -> Format.fprintf ppf "full"

let default_fp_mode : fp_mode Atomic.t = Atomic.make Incremental
let set_default_fp m = Atomic.set default_fp_mode m
let default_fp () = Atomic.get default_fp_mode

(* Test-only fault injection: corrupt every [n]-th patched fingerprint
   (0 disables).  Used by the suite's seeded-mutation negative to prove
   [~paranoid] catches a wrong patch. *)
let fp_fault_period = Atomic.make 0
let fp_fault_tick = Atomic.make 0

let set_fp_fault_injection n =
  Atomic.set fp_fault_period (max 0 n);
  Atomic.set fp_fault_tick 0

let[@inline] fp_inject_fault fp =
  let n = Atomic.get fp_fault_period in
  if n = 0 then fp
  else if (Atomic.fetch_and_add fp_fault_tick 1 + 1) mod n = 0 then
    Fingerprint.extend fp 0xBAD
  else fp

(* Birthday bound on any-fingerprint-collision over the whole search:
   n(n-1)/2 pairs, each colliding with odds 2^-bits.  Zero under the
   exact-key [~paranoid] mode. *)
let collision_bound ~bits ~states =
  let n = float_of_int states in
  min 1.0 (n *. (n -. 1.0) /. 2.0 *. ldexp 1.0 (-bits))

let pp_stats ppf s =
  Format.fprintf ppf
    "states=%d transitions=%d terminals=%d hung=%d crashed=%d%s depth=%d \
     dedup=%d%s cycles=%d%s%s"
    s.states s.transitions s.terminals s.hung_terminals s.crashed_terminals
    (if s.recovered_terminals > 0 then
       Printf.sprintf " recovered=%d" s.recovered_terminals
     else "")
    s.max_depth s.dedup_hits
    (if s.source_skips > 0 then Printf.sprintf " source-skips=%d" s.source_skips
     else "")
    s.cycles
    (if s.collision_bound >= 1e-9 then
       Printf.sprintf " p-collision<=%.2g" s.collision_bound
     else "")
    (if s.limited then
       Format.asprintf " (LIMITED: %a)" pp_limit_reason s.limit_reason
     else "")

(* How the source-set reduction judges same-object commutation:

   - [Semantic] (default): the state-local diamond [op_independent],
     memoized per exploration — exactly the historical behaviour.
   - [Static]: consult the statically-derived per-kind commutation table
     first ({!static_independent}); a pair the table decides skips the
     diamond computation {e and} the memo entirely.  Pairs the table
     classifies as state-dependent (or does not cover) fall back to the
     semantic judgment, so verdicts and counts are identical to
     [Semantic] whenever the installed tables are sound — which is what
     the analyzer's footprint obligation certifies.
   - [Both]: belt and braces — every statically-decided pair is {e also}
     recomputed semantically and disagreements are counted
     ([commute.static_mismatches]); the semantic answer wins.  The
     cross-validation mode. *)
type independence = Semantic | Static | Both

let pp_independence ppf = function
  | Semantic -> Format.fprintf ppf "semantic"
  | Static -> Format.fprintf ppf "static"
  | Both -> Format.fprintf ppf "both"

type reduction = {
  symmetry : Symmetry.t option;
  source_sets : bool;
  independence : independence;
}

let no_reduction = { symmetry = None; source_sets = false; independence = Semantic }
let with_symmetry sym =
  { symmetry = Some sym; source_sets = false; independence = Semantic }
let full_reduction sym =
  { symmetry = Some sym; source_sets = true; independence = Semantic }
let source_only = { symmetry = None; source_sets = true; independence = Semantic }
let with_independence independence r = { r with independence }

(* Soundness certificates: an unforgeable-by-convention token recording
   that a tool mechanically discharged the trusted obligations behind a
   reduction (equivariance of the symmetry spec, commutation of the
   independence judgment, source-set closure, object classification).
   The only minting site outside tests is [Subc_analysis.Analyzer.certify],
   which refuses unless every check proved. *)
module Certificate = struct
  type t = { tool : string; subject : string; obligations : string list }

  let attest ~tool ~subject ~obligations = { tool; subject; obligations }
  let tool c = c.tool
  let subject c = c.subject
  let obligations c = c.obligations

  let pp ppf c =
    Format.fprintf ppf "certified by %s for %s: %s" c.tool c.subject
      (String.concat ", " c.obligations)
end

let certified_reduction ~certificate:(_ : Certificate.t) ?(source_sets = true)
    ?(independence = Semantic) symmetry =
  { symmetry; source_sets; independence }

let pp_reduction ppf r =
  Format.fprintf ppf "symmetry=%s source-sets=%b%s"
    (match r.symmetry with
    | None -> "off"
    | Some s -> Printf.sprintf "|G|=%d" (Symmetry.group_order s))
    r.source_sets
    (match r.independence with
    | Semantic -> ""
    | m -> Format.asprintf " independence=%a" pp_independence m)

(* A transition identity, for source-set independence: a process step is
   identified by (process, object handle) — all nondeterministic outcomes
   of one invocation form one transition bundle — and a crash by its
   victim.  Steps of distinct processes on distinct objects always
   commute; steps on the {e same} object commute when the object model
   says so (below).  Crashes of distinct victims commute (a crash touches
   only the victim's local state), and a crash commutes with any step of
   another process: the budget can only disable a sleeping crash, never
   re-enable one within a recovery-free segment, so budget exhaustion
   cannot unsoundly skip.

   A recovery is conservatively dependent on everything: it rewrites the
   whole store through the persistence projections and restarts the
   victim's program, so no commutation is assumed.  Recoveries are
   therefore never slept and never put siblings to sleep — reordering
   soundness never rests on a recovery diamond — and taking one wakes
   every sleeping transition. *)
type tr = Tstep of int * int | Tcrash of int | Trecover of int

(* Conditional (state-local) commutation of two operations on the same
   object: both orders must yield the same final object state and the
   same responses, for every resolution of nondeterminism, and neither
   order may turn a completing invocation into a hang.  This is the
   footprint-level independence — snapshot updates to distinct segments
   commute, reads commute with reads — derived semantically from
   [Obj_model.apply] rather than from declared footprints.  The pure
   computation lives here; the DFS memoizes it per exploration (below),
   assuming [apply] is pure and that equal [kind] strings name
   behaviourally identical models — both assumptions are discharged
   mechanically by [Subc_analysis], which certifies this judgment over
   each object's full reachable state space (and cross-checks it with an
   independent recomputation). *)
let op_independent (model : Obj_model.t) st0 a b =
  let apply st op = model.Obj_model.apply st op in
  let outcomes first second =
    (* (final object state, first's resp, second's resp), one triple per
       resolution of both invocations' nondeterminism; [Exit] when the
       second invocation hangs after the first. *)
    List.concat_map
      (fun (s1, r1) ->
        match apply s1 second with
        | [] -> raise Exit
        | ys -> List.map (fun (s2, r2) -> (s2, r1, r2)) ys)
      (apply st0 first)
  in
  if apply st0 a = [] || apply st0 b = [] then
    (* A hang is order-sensitive in general; stay conservative. *)
    false
  else
    match
      ( List.sort compare (outcomes a b),
        List.sort compare
          (List.map (fun (s, rb, ra) -> (s, ra, rb)) (outcomes b a)) )
    with
    | ab, ba -> ab = ba
    | exception Exit -> false

(* {2 Static commutation tables}

   A statically-derived, whole-space classification of an op pair on one
   object kind, minted by the analyzer's footprint pass
   ([Subc_analysis.Footprint]) from the object's certified reachable
   space and installed here for the source-set hot path to consume:

   - [Always_commute]: [op_independent] is true at {e every} state of the
     certified space — the pair is independent wherever the explorer can
     meet it, with no diamond computation and no memo traffic;
   - [Never_commute]: false at every state — dependent everywhere, again
     with no per-state work;
   - [State_dependent]: the judgment genuinely flips across the space
     (a queue's enq/deq commute exactly while the queue is nonempty) —
     the lookup abstains and the explorer falls back to the state-local
     semantic diamond.

   Tables are keyed by (kind, initial state): the repo-wide convention
   that equal [kind] strings name behaviourally equal models (already
   assumed by the commute memo) plus an initial-state match pins the
   reachable space the classification was computed over.  The registry
   is an atomic snapshot of immutable tables — installs publish a fresh
   list via CAS, lookups are wait-free reads — so worker domains may
   consult it while another thread installs. *)
type static_class = Always_commute | Never_commute | State_dependent

type static_table = {
  st_kind : string;
  st_init : Value.t;
  st_alphabet : Op.t list;
  st_pairs : (Op.t * Op.t, static_class) Hashtbl.t; (* frozen after publish *)
}

let static_registry : static_table list Atomic.t = Atomic.make []

let canonical_pair a b = if Op.compare a b <= 0 then (a, b) else (b, a)

(* Merge-with-demotion: if a table for the same (kind, init) already
   classified a pair differently (two subjects with the same kind but
   different alphabets enumerate different spaces), the pair is demoted
   to [State_dependent] — the lookup then abstains and the semantic
   judgment decides.  Soundness never rests on which install ran last. *)
let install_static_independence ~kind ~init ~alphabet pairs =
  let rec publish () =
    let old = Atomic.get static_registry in
    let prev =
      List.find_opt (fun t -> t.st_kind = kind && t.st_init = init) old
    in
    let tbl = Hashtbl.create (max 16 (List.length pairs)) in
    (match prev with
    | None -> ()
    | Some p -> Hashtbl.iter (Hashtbl.replace tbl) p.st_pairs);
    List.iter
      (fun ((a, b), cls) ->
        let key = canonical_pair a b in
        match Hashtbl.find_opt tbl key with
        | Some prev_cls when prev_cls <> cls ->
          Hashtbl.replace tbl key State_dependent
        | _ -> Hashtbl.replace tbl key cls)
      pairs;
    let alphabet =
      match prev with
      | None -> alphabet
      | Some p ->
        p.st_alphabet
        @ List.filter (fun o -> not (List.mem o p.st_alphabet)) alphabet
    in
    let entry = { st_kind = kind; st_init = init; st_alphabet = alphabet; st_pairs = tbl } in
    let next =
      entry
      :: List.filter (fun t -> not (t.st_kind = kind && t.st_init = init)) old
    in
    if not (Atomic.compare_and_set static_registry old next) then publish ()
  in
  publish ()

let clear_static_independence () = Atomic.set static_registry []

let static_tables_installed () =
  List.map
    (fun t -> (t.st_kind, Hashtbl.length t.st_pairs))
    (Atomic.get static_registry)

let static_lookup ~kind ~init a b =
  match
    List.find_opt
      (fun t -> t.st_kind = kind && t.st_init = init)
      (Atomic.get static_registry)
  with
  | None -> None
  | Some t -> (
    match Hashtbl.find_opt t.st_pairs (canonical_pair a b) with
    | Some Always_commute -> Some true
    | Some Never_commute -> Some false
    | Some State_dependent | None -> None)

let static_independent ~kind ~init a b = static_lookup ~kind ~init a b

(* The memo table for [op_independent] is per-exploration state (per
   worker domain in the parallel engine): no process-global hashtable, no
   unbounded growth across searches, no cross-domain data race.  It is
   also bounded: past [commute_cache_bound] entries new results are
   recomputed instead of cached — the cache is a pure memoization, so
   dropping inserts only costs time, never soundness.  Each dropped
   insert is counted ([commute.memo_evictions] after the flush), so the
   silent-recomputation regime is visible in the metrics instead of
   indistinguishable from a healthy cache.  The bound is settable for
   tests that want to exercise the overflow path cheaply. *)
let default_commute_cache_bound = 1 lsl 16
let commute_cache_bound = Atomic.make default_commute_cache_bound
let set_commute_cache_bound n = Atomic.set commute_cache_bound (max 0 n)
let get_commute_cache_bound () = Atomic.get commute_cache_bound

type commute_cache = {
  cc_tbl : (string * Value.t * Op.t * Op.t, bool) Hashtbl.t;
  (* Local counters, flushed to the global metrics registry once per
     search ([flush_commute_metrics]) — the hot path never touches an
     atomic. *)
  mutable cc_diamonds : int;
  mutable cc_memo_hits : int;
  mutable cc_memo_evictions : int;
  mutable cc_static_hits : int;
  mutable cc_static_fallbacks : int;
  mutable cc_static_mismatches : int;
}

let commute_cache () : commute_cache =
  {
    cc_tbl = Hashtbl.create 256;
    cc_diamonds = 0;
    cc_memo_hits = 0;
    cc_memo_evictions = 0;
    cc_static_hits = 0;
    cc_static_fallbacks = 0;
    cc_static_mismatches = 0;
  }

let m_diamonds = Obs.Metrics.counter "commute.diamonds"
let m_memo_hits = Obs.Metrics.counter "commute.memo_hits"
let m_memo_evictions = Obs.Metrics.counter "commute.memo_evictions"
let m_static_hits = Obs.Metrics.counter "commute.static_hits"
let m_static_fallbacks = Obs.Metrics.counter "commute.static_fallbacks"
let m_static_mismatches = Obs.Metrics.counter "commute.static_mismatches"

let flush_commute_metrics (c : commute_cache) =
  Obs.Metrics.add m_diamonds c.cc_diamonds;
  Obs.Metrics.add m_memo_hits c.cc_memo_hits;
  Obs.Metrics.add m_memo_evictions c.cc_memo_evictions;
  Obs.Metrics.add m_static_hits c.cc_static_hits;
  Obs.Metrics.add m_static_fallbacks c.cc_static_fallbacks;
  Obs.Metrics.add m_static_mismatches c.cc_static_mismatches;
  c.cc_diamonds <- 0;
  c.cc_memo_hits <- 0;
  c.cc_memo_evictions <- 0;
  c.cc_static_hits <- 0;
  c.cc_static_fallbacks <- 0;
  c.cc_static_mismatches <- 0

let ops_commute_semantic (cache : commute_cache) model st0 a b =
  let key =
    if Op.compare a b <= 0 then (model.Obj_model.kind, st0, a, b)
    else (model.Obj_model.kind, st0, b, a)
  in
  match Hashtbl.find_opt cache.cc_tbl key with
  | Some r ->
    cache.cc_memo_hits <- cache.cc_memo_hits + 1;
    r
  | None ->
    let r = op_independent model st0 a b in
    cache.cc_diamonds <- cache.cc_diamonds + 1;
    if Hashtbl.length cache.cc_tbl < Atomic.get commute_cache_bound then
      Hashtbl.replace cache.cc_tbl key r
    else cache.cc_memo_evictions <- cache.cc_memo_evictions + 1;
    r

let ops_commute independence (cache : commute_cache) store h a b =
  let model = Store.model store h in
  let st0 = Store.state store h in
  match independence with
  | Semantic -> ops_commute_semantic cache model st0 a b
  | Static -> (
    match
      static_lookup ~kind:model.Obj_model.kind ~init:model.Obj_model.init a b
    with
    | Some r ->
      cache.cc_static_hits <- cache.cc_static_hits + 1;
      r
    | None ->
      cache.cc_static_fallbacks <- cache.cc_static_fallbacks + 1;
      ops_commute_semantic cache model st0 a b)
  | Both -> (
    match
      static_lookup ~kind:model.Obj_model.kind ~init:model.Obj_model.init a b
    with
    | Some r ->
      cache.cc_static_hits <- cache.cc_static_hits + 1;
      let sem = ops_commute_semantic cache model st0 a b in
      if sem <> r then
        cache.cc_static_mismatches <- cache.cc_static_mismatches + 1;
      sem
    | None ->
      cache.cc_static_fallbacks <- cache.cc_static_fallbacks + 1;
      ops_commute_semantic cache model st0 a b)

let pending config i =
  match config.Config.procs.(i).Config.status with
  | Config.Running (Program.Invoke (h, op, _))
  | Config.Recovering (Program.Invoke (h, op, _)) ->
    (h, op)
  | _ -> assert false

(* Dependence of two transitions, conditional on the configuration where
   both are enabled (Katz–Peled conditional independence: state-local
   diamonds compose along any run that keeps the sleeping transition
   asleep). *)
let dependent_at independence cache config a b =
  match (a, b) with
  | Trecover _, _ | _, Trecover _ -> true
  | Tstep (p, hp), Tstep (q, hq) ->
    p = q
    || (hp = hq
       &&
       let h, op_p = pending config p and _, op_q = pending config q in
       not (ops_commute independence cache config.Config.store h op_p op_q))
  | Tstep (p, _), Tcrash q | Tcrash q, Tstep (p, _) -> p = q
  | Tcrash p, Tcrash q -> p = q

let map_tr (pi : Symmetry.perm) = function
  | Tstep (p, h) -> Tstep (pi.(p), h)
  | Tcrash p -> Tcrash pi.(p)
  | Trecover p -> Trecover pi.(p)

(* Injective int packing of a transition identity, for folding a sleep
   set into a fingerprint ([Fingerprint.extend]).  Processes and handles
   are tiny (bounded by the instance size), so the shifted fields never
   overlap in practice; even if they did, the packing only has to be
   deterministic and near-injective — the fingerprint lanes do the
   mixing. *)
let pack_tr = function
  | Tstep (p, h) -> 0x1 lor (p lsl 2) lor (h lsl 24)
  | Tcrash p -> 0x2 lor (p lsl 2)
  | Trecover p -> 0x3 lor (p lsl 2)

(* The sleep set restricted to transitions enabled at [config] — the
   {e relevant} sleep.  Restriction before keying and inheritance is what
   keys terminals by state alone (no step or crash is enabled there, and
   recoveries never sleep, so the relevant sleep of a terminal is empty)
   and merges arrivals whose sleeps differ only in disabled entries.
   Dropping a disabled entry is sound: a sleeping [Tstep] stays enabled
   as long as it sleeps (anything that changes the process's status or
   pending invocation is dependent with it, and dependence wakes it), so
   only [Tcrash] entries are ever dropped — when the crash budget is
   exhausted, which is monotone within a recovery-free segment, and any
   recovery empties the sleep set wholesale. *)
let restrict_sleep ~max_crashes config sleep =
  match sleep with
  | [] -> []
  | _ ->
    let runnable = Config.running config in
    let budget_left = Config.n_crashed config < max_crashes in
    List.filter
      (fun e ->
        match e with
        | Tstep (p, h) ->
          List.mem p runnable && (fst (pending config p) :> int) = h
        | Tcrash p -> budget_left && List.mem p runnable
        | Trecover _ -> false)
      sleep

(* Canonical packed encoding of a (restricted) sleep set: transport to
   the representative's frame, pack, sort.  The sorted int list is a
   deterministic function of the canonical (state, sleep) pair whatever
   concrete representative arrived. *)
let packed_sleep pi sleep =
  match sleep with
  | [] -> []
  | _ ->
    List.sort compare
      (List.map
         (fun e ->
           pack_tr (match pi with None -> e | Some pi -> map_tr pi e))
         sleep)

(* The packed sleep attached to a canonical state key must be an orbit
   invariant of the abstract (state, sleep) pair, not of whichever
   concrete representative arrived.  When the canonical state has a
   nontrivial stabilizer, two orbit-mates canonicalize through minimizers
   that differ by a stabilizer element, and transporting the sleep
   through just the tie-broken winner would encode the same abstract pair
   two ways — the visited/claim table would then split one node in two,
   and the state counts (never the verdicts: both keys still guard sound
   expansions) would depend on which representative was reached first,
   breaking the seq-vs-par bit-for-bit contract.  Taking the
   lexicographic minimum of the packed list over {e every} permutation
   achieving the canonical state key makes the encoding
   representative-independent.  Stabilizers are trivial for almost all
   states, so the fold usually sees one candidate. *)
let canonical_packed_sleep minimizers sleep =
  match minimizers with
  | [] -> packed_sleep None sleep
  | [ pi ] -> packed_sleep (Some pi) sleep
  | pi0 :: rest ->
    List.fold_left
      (fun best pi ->
        let packed = packed_sleep (Some pi) sleep in
        if compare packed best < 0 then packed else best)
      (packed_sleep (Some pi0) sleep)
      rest

(* Canonical configurations are interned as two-word structural
   fingerprints ({!Fingerprint}): the visited set of a multi-million-state
   exploration must not retain the full structured keys, and the
   fingerprint is folded directly over the configuration — no key tree,
   no marshal buffer, no digest string.  Under [~paranoid] the exact
   canonical key is kept instead (collisions impossible; the
   cross-validation mode).  Under source sets the visited key is the
   {e pair} (canonical state, canonical relevant sleep): expansion under
   the source-set protocol is a pure function of that pair, so claiming
   each pair exactly once reproduces the stateless sleep-set search tree
   with identical subtrees shared — the protocol every engine (sequential
   or work-stealing) observes identically. *)
module Vtbl = Fingerprint.Ktbl

exception Stop

type state = {
  visited : unit Vtbl.t;
  onstack : unit Vtbl.t;
  commute : commute_cache;
  paranoid : bool;
  fp_mode : fp_mode;
  mutable states : int;
  mutable transitions : int;
  mutable terminals : int;
  mutable hung_terminals : int;
  mutable crashed_terminals : int;
  mutable recovered_terminals : int;
  mutable max_depth : int;
  mutable dedup_hits : int;
  mutable source_skips : int;
  mutable cycles : int;
  mutable fp_patches : int;
  mutable fp_refolds : int;
  mutable fp_mismatches : int;
  mutable limit_reason : limit_reason;
  max_states : int;
  depth_limit : int;
  max_crashes : int;
  max_recoveries : int;
  (* Absolute wall-clock cutoff, or infinity.  Checked every
     [deadline_mask + 1] DFS nodes so the common case costs one integer
     test. *)
  deadline_at : float;
  mutable deadline_tick : int;
  reduction : reduction;
  mutable cycle_witness : Trace.t option;
  on_terminal : Config.t -> Trace.t -> unit;
  on_visit : Config.t -> Trace.t Lazy.t -> unit;
  stop_on_cycle : bool;
}

(* The sequential visited table compares both full fingerprint lanes:
   126 effective bits. *)
let fingerprint_bits = 126

let stats_of ?(frontier_bytes = 0) st =
  {
    frontier_bytes;
    states = st.states;
    transitions = st.transitions;
    terminals = st.terminals;
    hung_terminals = st.hung_terminals;
    crashed_terminals = st.crashed_terminals;
    recovered_terminals = st.recovered_terminals;
    max_depth = st.max_depth;
    dedup_hits = st.dedup_hits;
    source_skips = st.source_skips;
    cycles = st.cycles;
    collision_bound =
      (if st.paranoid then 0.0
       else collision_bound ~bits:fingerprint_bits ~states:st.states);
    limited = reason_truncates st.limit_reason;
    limit_reason = st.limit_reason;
  }

(* Visited-set key of [config] under a reduction: the fingerprint of the
   canonical representative of its orbit (the exact key under
   [paranoid]), plus the renaming that canonicalizes (identity when
   symmetry is off).  Without symmetry the fingerprint is folded straight
   over the configuration; with symmetry the canonical key tree is
   already materialized by the orbit minimization, so only the
   marshal+digest step is saved. *)
let key_of ~paranoid (reduction : reduction) config =
  match reduction.symmetry with
  | None ->
    if paranoid then (Fingerprint.Exact (Config.key config), None)
    else (Fingerprint.Fp (Fingerprint.of_config config), None)
  | Some sym ->
    let key, pi = Symmetry.canonical_key sym config in
    ( (if paranoid then Fingerprint.Exact key
       else Fingerprint.Fp (Fingerprint.of_value key)),
      Some pi )

let state_key ?(paranoid = false) reduction config =
  fst (key_of ~paranoid reduction config)

(* The bare two-lane fingerprint of the canonical representative — the
   parallel engine's claim-table path, which stores the raw lanes and
   never allocates a [Fingerprint.key] wrapper. *)
let state_fingerprint (reduction : reduction) config =
  match reduction.symmetry with
  | None -> Fingerprint.of_config config
  | Some sym ->
    let key, _ = Symmetry.canonical_key sym config in
    Fingerprint.of_value key

(* (state, sleep) visited key: the state key extended with the canonical
   relevant sleep.  An empty relevant sleep leaves the state key
   untouched, so source-set-off searches and terminal states key exactly
   as before.  Returns the canonicalizing renaming (for canonical sibling
   ordering in [source_successors]) and the restricted concrete sleep
   (the base the children inherit). *)
let extend_with_sleep key packed =
  match packed with
  | [] -> key
  | _ -> (
    match key with
    | Fingerprint.Fp fp ->
      Fingerprint.Fp (List.fold_left Fingerprint.extend fp packed)
    | Fingerprint.Exact v ->
      (* [Tag "sleep"] cannot collide with a bare configuration key —
         config keys are untagged pair/vector trees at the top. *)
      Fingerprint.Exact
        (Value.Tag
           ( "sleep",
             Value.Pair (v, Value.Vec (List.map (fun x -> Value.Int x) packed))
           )))

let source_key ?(paranoid = false) (reduction : reduction) ~max_crashes config
    ~sleep =
  let sleep =
    if reduction.source_sets then restrict_sleep ~max_crashes config sleep
    else []
  in
  match (reduction.symmetry, sleep) with
  | None, _ ->
    let key, pi = key_of ~paranoid reduction config in
    (extend_with_sleep key (packed_sleep None sleep), pi, sleep)
  | Some _, [] ->
    let key, pi = key_of ~paranoid reduction config in
    (key, pi, [])
  | Some sym, _ ->
    let key, minimizers = Symmetry.canonical_minimizers sym config in
    let key =
      if paranoid then Fingerprint.Exact key
      else Fingerprint.Fp (Fingerprint.of_value key)
    in
    ( extend_with_sleep key (canonical_packed_sleep minimizers sleep),
      Some (List.hd minimizers),
      sleep )

(* Raw-lane variant of [source_key] for the parallel claim table. *)
let source_fingerprint (reduction : reduction) ~max_crashes config ~sleep =
  let sleep =
    if reduction.source_sets then restrict_sleep ~max_crashes config sleep
    else []
  in
  match (reduction.symmetry, sleep) with
  | None, _ ->
    let fp = Fingerprint.of_config config in
    (List.fold_left Fingerprint.extend fp (packed_sleep None sleep), None, sleep)
  | Some sym, [] ->
    let key, pi = Symmetry.canonical_key sym config in
    (Fingerprint.of_value key, Some pi, [])
  | Some sym, _ ->
    let key, minimizers = Symmetry.canonical_minimizers sym config in
    let fp =
      List.fold_left Fingerprint.extend
        (Fingerprint.of_value key)
        (canonical_packed_sleep minimizers sleep)
    in
    (fp, Some (List.hd minimizers), sleep)

(* [source_fingerprint] when the bare state fingerprint is already in
   hand (the incremental engines carry it patched from the parent's, so
   the claim key costs O(|relevant sleep|) instead of a configuration
   re-fold).  Only valid with symmetry off — the incremental path never
   carries a fingerprint under symmetry quotienting. *)
let source_fingerprint_from fp (reduction : reduction) ~max_crashes config
    ~sleep =
  let sleep =
    if reduction.source_sets then restrict_sleep ~max_crashes config sleep
    else []
  in
  (List.fold_left Fingerprint.extend fp (packed_sleep None sleep), None, sleep)

(* One enabled transition bundle of the expansion, with the sleep set its
   children inherit (concrete coordinates of {e this} configuration).
   Each successor carries the slots its transition rewrote
   ({!Step.slots}), which is what lets the incremental engines patch
   fingerprints and delta-encode frontier entries instead of re-folding
   and copying. *)
type succ_group = {
  g_tr : tr;
  g_sleep : tr list;
  g_succs : (Config.t * Trace.event * Step.slots) list;
}

(* Every enabled transition bundle of [config], paired with its successor
   list: steps of runnable processes, crashes within budget, recoveries
   within budget. *)
let enabled_groups ~max_crashes ~max_recoveries config =
  let runnable = Config.running config in
  let steps =
    List.map
      (fun i ->
        ( Tstep (i, (fst (pending config i) :> int)),
          List.map
            (fun (c, e, sl) -> (c, Trace.Sched e, sl))
            (Step.step_slots config i) ))
      runnable
  in
  let crashes =
    if Config.n_crashed config < max_crashes then
      List.map
        (fun (c, v, sl) -> (Tcrash v, [ (c, Trace.Crash v, sl) ]))
        (Step.crash_successors_slots config)
    else []
  in
  let recoveries =
    if
      max_recoveries > 0
      && Config.any_crashed config
      && Config.n_recoveries config < max_recoveries
    then
      List.map
        (fun (c, v, sl) -> (Trecover v, [ (c, Trace.Recover v, sl) ]))
        (Step.recover_successors_slots config)
    else []
  in
  steps @ crashes @ recoveries

(* The O(1) fingerprint patch: rewrite the touched proc slot's
   contribution and each touched store slot's contribution.  Exact (not
   just probabilistic) agreement with [hom_of_config child] holds because
   a transition's successor differs from its parent in precisely the
   slots listed — everything else is physically shared — and the
   homomorphic combine is an abelian group per lane. *)
let patched_fingerprint parent fp (s : Step.slots) child =
  let i = s.Step.sl_proc in
  let fp =
    Fingerprint.hom_patch_proc fp i parent.Config.procs.(i)
      child.Config.procs.(i)
  in
  List.fold_left
    (fun fp ((h : Store.handle), v') ->
      Fingerprint.hom_patch_store fp
        (h :> int)
        (Store.state parent.Config.store h)
        v')
    fp s.Step.sl_store

(* The source-set expansion of a (config, sleep) node, shared verbatim by
   the sequential DFS and every parallel worker domain.

   Siblings are processed in {e canonical} order (sorted by their image
   under the canonicalizing renaming), so the k-th sibling — and hence
   each child's inherited sleep — is the same function of the canonical
   (state, sleep) key whichever orbit representative is being expanded
   and whichever domain claimed it.  A sibling already in [sleep] is
   skipped (counted); an explored sibling joins the sleep of every later
   independent sibling's children (the classic sleep-set inheritance,
   which under DFS ordering is exactly the source-set discipline: the
   transitions actually explored at the node form a source set for it).
   Independence is conditional (state-local): an inherited entry is
   re-filtered against the taken transition at every expansion, and each
   covering argument uses only the commutation diamond at the state where
   the judgment was made — the judgment may freely flip at descendants.
   Soundness under work stealing needs only the certificate obligations —
   per-state commutation and [dependent_at] equivariance — because the
   expansion is deterministic per canonical key and the claim-once table
   makes execution order irrelevant. *)
let source_successors cache (reduction : reduction) ~pi ~max_crashes
    ~max_recoveries config ~sleep =
  let groups = enabled_groups ~max_crashes ~max_recoveries config in
  if not reduction.source_sets then
    (List.map (fun (tr, succs) -> { g_tr = tr; g_sleep = []; g_succs = succs })
       groups,
     0)
  else begin
    let groups =
      match pi with
      | None ->
        (* Concrete coordinates are canonical: [enabled_groups] already
           yields steps by process, then crashes by victim, then
           recoveries — sorted transition order. *)
        groups
      | Some pi ->
        List.sort
          (fun (a, _) (b, _) -> compare (map_tr pi a) (map_tr pi b))
          groups
    in
    let skips = ref 0 in
    let taken = ref [] in
    let out =
      List.filter_map
        (fun (tr, succs) ->
          if List.mem tr sleep then begin
            incr skips;
            None
          end
          else begin
            let child =
              List.filter
                (fun s -> not (dependent_at reduction.independence cache config s tr))
                (List.rev_append !taken sleep)
            in
            taken := tr :: !taken;
            Some { g_tr = tr; g_sleep = child; g_succs = succs }
          end)
        groups
    in
    (out, !skips)
  end

(* DFS with claim-once memoization on canonical (configuration, sleep)
   keys.  [rev_trace] is the path from the root, newest event first.
   Crash transitions are ordinary transitions of the search: every
   running process may crash as long as the crash budget is not
   exhausted.  The budget needs no separate memoization key — crashed
   processes are part of the configuration, so the number of crashes used
   is derivable from the configuration itself.

   [sleep] is the sleep set in concrete coordinates: transitions whose
   exploration is covered by a sibling branch and must not be re-explored
   here.  Source sets only prune transitions, never terminals: every
   reachable terminal is still visited through some canonical
   interleaving, and terminals key by state alone (their relevant sleep
   is empty), so terminal verdicts and counts are preserved exactly.
   (Completeness of the pruning assumes the state graph is acyclic, which
   holds for all one-shot bounded algorithms; the cycle-hunting entry
   points force source sets off.) *)
let deadline_mask = 1023

let rec dfs st config fp rev_trace depth sleep =
  st.deadline_tick <- st.deadline_tick + 1;
  if
    st.deadline_tick land deadline_mask = 0
    && Unix.gettimeofday () > st.deadline_at
  then begin
    st.limit_reason <- Deadline;
    raise Stop
  end;
  if depth > st.max_depth then st.max_depth <- depth;
  if depth > st.depth_limit then begin
    (* Prune this branch only; siblings are still explored. *)
    if st.limit_reason = No_limit then st.limit_reason <- Max_depth
  end
  else begin
    (* [fp] is [Some] only on the incremental lanes (symmetry off): the
       state's homomorphic fingerprint, patched from the parent's.  Under
       [~paranoid] the visited keys stay exact but the carried
       fingerprint is cross-validated against a full re-fold. *)
    (match fp with
    | Some f when st.paranoid ->
      st.fp_refolds <- st.fp_refolds + 1;
      if not (Fingerprint.equal f (Fingerprint.hom_of_config config)) then
        st.fp_mismatches <- st.fp_mismatches + 1
    | _ -> ());
    let key, pi, sleep =
      match fp with
      | Some f when not st.paranoid ->
        let sleep =
          if st.reduction.source_sets then
            restrict_sleep ~max_crashes:st.max_crashes config sleep
          else []
        in
        ( extend_with_sleep (Fingerprint.Fp f) (packed_sleep None sleep),
          None,
          sleep )
      | _ ->
        source_key ~paranoid:st.paranoid st.reduction
          ~max_crashes:st.max_crashes config ~sleep
    in
    if Vtbl.mem st.onstack key then begin
      (* Back-edge into the current DFS stack: an infinite schedule (modulo
         symmetry, when enabled). *)
      st.cycles <- st.cycles + 1;
      if st.cycle_witness = None then st.cycle_witness <- Some (List.rev rev_trace);
      if st.stop_on_cycle then raise Stop
    end
    else if Vtbl.mem st.visited key then
      st.dedup_hits <- st.dedup_hits + 1
    else if st.states >= st.max_states then begin
      st.limit_reason <- Max_states;
      raise Stop
    end
    else begin
      Vtbl.add st.visited key ();
      st.states <- st.states + 1;
      st.on_visit config (lazy (List.rev rev_trace));
      (* Terminal for the processes is not necessarily terminal for the
         search: with recovery budget left, the adversary may still
         revive a crashed process.  The configuration is reported as a
         terminal either way — the adversary may equally choose never to
         recover — and then expanded through its recover successors.
         Terminals key by state alone (empty relevant sleep), so this
         fires once per terminal configuration. *)
      if Config.running config = [] then begin
        st.terminals <- st.terminals + 1;
        if Config.any_hung config then
          st.hung_terminals <- st.hung_terminals + 1;
        if Config.any_crashed config then
          st.crashed_terminals <- st.crashed_terminals + 1;
        if Config.any_recovered config then
          st.recovered_terminals <- st.recovered_terminals + 1;
        st.on_terminal config (List.rev rev_trace)
      end;
      let groups, skips =
        source_successors st.commute st.reduction ~pi
          ~max_crashes:st.max_crashes ~max_recoveries:st.max_recoveries config
          ~sleep
      in
      st.source_skips <- st.source_skips + skips;
      if groups <> [] then begin
        Vtbl.add st.onstack key ();
        List.iter
          (fun g ->
            List.iter
              (fun (config', event, slots) ->
                st.transitions <- st.transitions + 1;
                let fp' =
                  match fp with
                  | None -> None
                  | Some f ->
                    st.fp_patches <- st.fp_patches + 1;
                    Some
                      (fp_inject_fault (patched_fingerprint config f slots config'))
                in
                dfs st config' fp' (event :: rev_trace) (depth + 1) g.g_sleep)
              g.g_succs)
          groups;
        Vtbl.remove st.onstack key
      end
    end
  end

(* Initial bucket-array sizing for the visited table.  An explicit
   expectation skips the rehash generations of a million-state search;
   the cap keeps a loose upper bound (a default state budget, say) from
   pre-allocating a huge empty table. *)
let table_hint expected_states =
  match expected_states with
  | None -> 4096
  | Some n -> max 4096 (min (1 lsl 20) n)

let make_state ?(max_states = 5_000_000) ?(max_depth = 10_000)
    ?(max_crashes = 0) ?(max_recoveries = 0) ?deadline ?expected_states
    ?(reduction = no_reduction) ?(paranoid = false) ?fp
    ?(stop_on_cycle = false) ?(on_visit = fun _ _ -> ()) on_terminal =
  {
    visited = Vtbl.create (table_hint expected_states);
    onstack = Vtbl.create 256;
    commute = commute_cache ();
    paranoid;
    fp_mode = (match fp with Some m -> m | None -> default_fp ());
    states = 0;
    transitions = 0;
    terminals = 0;
    hung_terminals = 0;
    crashed_terminals = 0;
    recovered_terminals = 0;
    max_depth = 0;
    dedup_hits = 0;
    source_skips = 0;
    cycles = 0;
    fp_patches = 0;
    fp_refolds = 0;
    fp_mismatches = 0;
    limit_reason = No_limit;
    max_states;
    depth_limit = max_depth;
    max_crashes;
    max_recoveries;
    deadline_at =
      (match deadline with
      | None -> infinity
      | Some secs -> Unix.gettimeofday () +. secs);
    deadline_tick = 0;
    reduction;
    cycle_witness = None;
    on_terminal;
    on_visit;
    stop_on_cycle;
  }

(* Observability: cumulative counters are cheap and always on; a per-search
   event is emitted only when a sink is installed. *)
let m_states = Obs.Metrics.counter "explore.states"
let m_transitions = Obs.Metrics.counter "explore.transitions"
let m_dedup = Obs.Metrics.counter "explore.dedup_hits"
let m_source = Obs.Metrics.counter "explore.source_skips"
let m_searches = Obs.Metrics.counter "explore.searches"
let m_fp_patches = Obs.Metrics.counter "fp.patches"
let m_fp_refolds = Obs.Metrics.counter "fp.refolds"
let m_fp_mismatches = Obs.Metrics.counter "fp.paranoid_mismatches"

let run_search label st config =
  let t0 = Sys.time () in
  let fp0 =
    if st.fp_mode = Incremental && st.reduction.symmetry = None then begin
      st.fp_refolds <- st.fp_refolds + 1;
      Some (Fingerprint.hom_of_config config)
    end
    else None
  in
  (try dfs st config fp0 [] 0 [] with Stop -> ());
  (* Sequential frontier retention is the DFS stack: one frame of unique
     words (successor config + trace cons + a few map spine nodes) per
     level of the deepest path.  A rough estimate — the parallel engine
     measures its deques instead. *)
  let frontier_bytes =
    if st.states = 0 then 0
    else 8 * st.max_depth * (34 + Config.n_procs config)
  in
  let s = stats_of ~frontier_bytes st in
  let dt = Sys.time () -. t0 in
  flush_commute_metrics st.commute;
  Obs.Metrics.incr m_searches;
  Obs.Metrics.add m_states s.states;
  Obs.Metrics.add m_transitions s.transitions;
  Obs.Metrics.add m_dedup s.dedup_hits;
  Obs.Metrics.add m_source s.source_skips;
  Obs.Metrics.add m_fp_patches st.fp_patches;
  Obs.Metrics.add m_fp_refolds st.fp_refolds;
  Obs.Metrics.add m_fp_mismatches st.fp_mismatches;
  Obs.Metrics.set_gauge "explore.frontier_bytes" (float_of_int frontier_bytes);
  (* A paranoid run that saw any patch/re-fold disagreement is a soundness
     bug (or injected fault) — fail loudly rather than return counts built
     on a corrupted carry.  The counter above is flushed first so the
     mismatch stays visible in the metrics snapshot. *)
  if st.fp_mismatches > 0 then
    invalid_arg
      (Printf.sprintf
         "Explore: %d incremental fingerprint patch(es) disagree with the \
          paranoid re-fold"
         st.fp_mismatches);
  if Obs.Sink.get () != Obs.Sink.null then
    Obs.Sink.emit "explore"
      [
        ("search", Obs.Sink.Str label);
        ("states", Obs.Sink.Int s.states);
        ("transitions", Obs.Sink.Int s.transitions);
        ("terminals", Obs.Sink.Int s.terminals);
        ("dedup_hits", Obs.Sink.Int s.dedup_hits);
        ("source_skips", Obs.Sink.Int s.source_skips);
        ("cycles", Obs.Sink.Int s.cycles);
        ("limited", Obs.Sink.Bool s.limited);
        ("seconds", Obs.Sink.Float dt);
        ( "states_per_sec",
          Obs.Sink.Float
            (if dt > 0.0 then float_of_int s.states /. dt else 0.0) );
      ];
  s

let iter_terminals ?max_states ?max_depth ?max_crashes ?max_recoveries
    ?deadline ?expected_states ?reduction ?paranoid ?fp config ~f =
  let st =
    make_state ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?reduction ?paranoid ?fp f
  in
  run_search "iter_terminals" st config

(* Source sets are forced off: [iter_reachable] exists to enumerate every
   reachable configuration (wait-freedom bounds quantify over all of them),
   and the reduction's guarantee covers terminals, not every intermediate
   state. *)
let iter_reachable ?max_states ?max_depth ?max_crashes ?max_recoveries
    ?deadline ?expected_states ?reduction ?paranoid ?fp config ~f =
  let reduction =
    Option.map (fun r -> { r with source_sets = false }) reduction
  in
  let st =
    make_state ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?reduction ?paranoid ?fp ~on_visit:f
      (fun _ _ -> ())
  in
  run_search "iter_reachable" st config

let find_terminal ?max_states ?max_depth ?max_crashes ?max_recoveries
    ?deadline ?expected_states ?reduction ?paranoid ?fp config ~violates =
  let found = ref None in
  let on_terminal c trace =
    if violates c then begin
      found := Some (c, trace);
      raise Stop
    end
  in
  let st =
    make_state ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?reduction ?paranoid ?fp on_terminal
  in
  let stats = run_search "find_terminal" st config in
  (!found, stats)

let check_terminals ?max_states ?max_depth ?max_crashes ?max_recoveries
    ?deadline ?expected_states ?reduction ?paranoid ?fp config ~ok =
  match
    find_terminal ?max_states ?max_depth ?max_crashes ?max_recoveries
      ?deadline ?expected_states ?reduction ?paranoid ?fp config
      ~violates:(fun c -> not (ok c))
  with
  | None, stats -> Ok stats
  | Some (c, trace), stats -> Error (c, trace, stats)

(* Source sets are forced off: skipping a transition at a state revisited on
   the DFS stack could hide a back-edge.  Symmetry stays on — an orbit
   back-edge still witnesses an infinite run (apply the automorphism
   repeatedly to extend the lasso). *)
let find_cycle ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?reduction ?paranoid ?fp config =
  let reduction =
    Option.map (fun r -> { r with source_sets = false }) reduction
  in
  let st =
    make_state ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?reduction ?paranoid ?fp ~stop_on_cycle:true
      (fun _ _ -> ())
  in
  let stats = run_search "find_cycle" st config in
  (st.cycle_witness, stats)
