(** Exhaustive state-space exploration (model checking).

    Explores {e all} interleavings of process steps {e and} all resolutions
    of object nondeterminism, by depth-first search over configurations.
    Configurations are memoized by a 126-bit structural fingerprint
    ({!Fingerprint.t}) folded directly over the configuration — no
    intermediate key tree, no marshal buffer — which agrees with
    [Config.key] equality (sound because programs are deterministic
    functions of their response histories; collisions have odds ~2^-126
    per pair).  Pass [~paranoid:true] to memoize by the exact canonical
    key instead — collisions impossible, memory proportional to key size;
    the test suite cross-validates the two modes.

    Crash faults are part of the transition relation: with [~max_crashes:f]
    the search also branches on crashing any running process, as long as
    fewer than [f] processes have crashed so far — so a property checked
    with budget [f] holds under {e every} interleaving {e and} every crash
    pattern of at most [f] crashes.  (The budget needs no extra memoization
    state: crashed processes are part of the configuration key.)

    Recovery faults extend the model to crash-recovery: with
    [~max_recoveries:r] the search additionally branches on recovering any
    crashed process ({!Config.recover} — persistent object state survives,
    the victim's program restarts), as long as fewer than [r] recoveries
    have happened in total.  A configuration with no running process is
    still reported as a terminal even when recover transitions remain (the
    adversary may choose never to recover) {e and} is then expanded through
    them.  The recovery budget is derivable from the configuration key too:
    each process carries its recovery count, which the key and fingerprint
    include.  Recover transitions are conservatively dependent on every
    other transition, so the source-set reduction never prunes around them.

    {1 Reductions}

    Two sound, opt-in reductions shrink the search (see DESIGN.md for the
    soundness arguments):

    - {b Symmetry quotienting} ([reduction.symmetry]): configurations are
      memoized by the canonical representative of their orbit under a
      process-renaming group ({!Symmetry.t}), so schedules differing only
      in the identity of symmetric processes collapse.  Visited states drop
      by up to the group order; the spec must be a true automorphism group
      for the instance.  That obligation is discharged mechanically by the
      static soundness analyzer ([Subc_analysis], CLI [analyze]), which
      certifies equivariance of every registered object model under its
      declared group, and empirically by the cross-validation suite
      ([test_reduction]); invariance of the {e checked property} under
      renaming remains out of the analyzer's scope and stays a caller
      obligation.  Sound for terminal checking, reachability, and cycle
      detection.

    - {b Source sets} ([reduction.source_sets]): a partial-order reduction
      that skips transitions covered by an independent sibling branch (two
      transitions are independent when they involve distinct processes and
      distinct objects; same-object independence is the semantic judgment
      {!op_independent}).  The visited key is the canonical
      {e (configuration, sleep set)} pair and expansion is a deterministic
      function of that pair ({!source_successors}), so the reduction is
      claim-once safe: the parallel work-stealing engine ({!Parallel})
      runs it at full strength and reproduces the sequential counts
      bit-for-bit.  Terminals carry an empty relevant sleep and key by
      state alone, so terminal verdicts {e and} terminal counts are
      preserved exactly.  The judgment's purity, equivariance and closure
      assumptions are certified over each object's reachable state space
      by [Subc_analysis].  Assumes an acyclic state graph (true for all
      one-shot bounded algorithms); the entry points that hunt cycles or
      enumerate all reachable states ({!find_cycle}, {!iter_reachable})
      force source sets off.

    For the bounded one-shot algorithms of the paper the state space is
    finite and exploration is complete: a property checked here is a proof
    for that instance size. *)

type limit_reason =
  | No_limit
  | Max_states  (** the state budget was exhausted; search aborted *)
  | Max_depth  (** some branch was pruned at the depth bound *)
  | Deadline  (** the wall-clock budget ([?deadline]) expired; search aborted *)

val pp_limit_reason : Format.formatter -> limit_reason -> unit

val reason_truncates : limit_reason -> bool
(** Whether the reason makes the search inconclusive ([Max_states],
    [Max_depth], [Deadline]). *)

(** {1 Fingerprinting strategy}

    How visited-set keys are produced on the unreduced (symmetry-off)
    lanes.  [Incremental] (the default) hashes the root once with the
    homomorphic fold ({!Fingerprint.hom_of_config}) and then {e patches}
    each child's fingerprint from its parent's through the slots the
    transition rewrote ({!Step.slots}) — O(1) per transition.  [Full]
    re-folds every state from scratch ({!Fingerprint.of_config}) — the
    escape hatch and cross-validation baseline.  Both are injective up to
    ~2^-126 collisions on canonical content, so states/transitions/
    terminal counts and verdicts are identical across the two modes.
    Symmetry-canonicalized keys always take the existing [of_value] path;
    [~paranoid] keys stay exact, and the carried incremental fingerprint
    is then cross-validated against a re-fold at every node
    ([fp.paranoid_mismatches]; any mismatch fails the search loudly). *)
type fp_mode = Incremental | Full

val pp_fp_mode : Format.formatter -> fp_mode -> unit

val set_default_fp : fp_mode -> unit
(** Process-wide default for searches that do not pin [?fp] (the CLI's
    [--fp] flag lands here). *)

val default_fp : unit -> fp_mode

val set_fp_fault_injection : int -> unit
(** Test-only: corrupt every [n]-th patched fingerprint ([0] disables,
    the initial state).  Lets the suite's seeded-mutation negative prove
    that [~paranoid] catches a wrong patch. *)

val fp_inject_fault : Fingerprint.t -> Fingerprint.t
(** Apply the {!set_fp_fault_injection} counter to one patched
    fingerprint — identity unless injection is armed.  Exposed so the
    parallel engine shares the same fault hook. *)

type stats = {
  states : int;
      (** distinct canonical (configuration, sleep) nodes visited; equals
          distinct configurations whenever source sets are off *)
  transitions : int;
  terminals : int;  (** distinct terminal configurations *)
  hung_terminals : int;  (** terminals in which some process hung *)
  crashed_terminals : int;  (** terminals in which some process crashed *)
  recovered_terminals : int;
      (** terminals in which some process had recovered at least once *)
  max_depth : int;
  dedup_hits : int;  (** transitions into an already-visited node *)
  source_skips : int;
      (** transitions skipped by the source-set reduction (deterministic:
          a per-node function of the canonical key, summed over nodes) *)
  cycles : int;  (** back-edges into the current DFS stack: each witnesses
                     an infinite schedule (non-termination potential) *)
  collision_bound : float;
      (** birthday bound on the probability that {e any} fingerprint
          collision merged two distinct states this search
          (n(n-1)/2 · 2^-bits for the visited-table width in use:
          126 sequential, 124 lock-free, 62 compressed; exactly 0.0
          under [~paranoid]) *)
  limited : bool;
      (** true iff the search was truncated — it is then {e not} a proof;
          [limit_reason] says why *)
  limit_reason : limit_reason;
  frontier_bytes : int;
      (** estimated peak unique retention of the search frontier, in
          bytes: the DFS stack's per-frame words (sequential engine) or
          the measured peak work-deque population times the average
          delta-entry size (parallel engine).  An estimate for memory
          accounting, not an allocator measurement. *)
}

val pp_stats : Format.formatter -> stats -> unit

val collision_bound : bits:int -> states:int -> float
(** The birthday bound above, exposed for the parallel engine and the
    bench tables: [min 1 (n(n-1)/2 · 2^-bits)]. *)

val fingerprint_bits : int
(** Effective key width of the full two-lane fingerprint comparison
    (126): the sequential visited table and the parallel sharded mode. *)

(** How the source-set reduction judges same-object commutation.

    - [Semantic]: the state-local diamond {!op_independent}, memoized per
      exploration — the default and historical behaviour.
    - [Static]: consult the statically-derived per-kind commutation table
      ({!static_independent}, installed by the analyzer's footprint pass)
      first; a decided pair skips the diamond computation and the memo
      entirely, an undecided pair falls back to the semantic judgment.
      With sound tables (the analyzer's footprint obligation), verdicts
      and counts are identical to [Semantic].
    - [Both]: cross-validation — statically-decided pairs are also
      recomputed semantically, disagreements counted under
      [commute.static_mismatches], and the semantic answer wins. *)
type independence = Semantic | Static | Both

val pp_independence : Format.formatter -> independence -> unit

(** Which reductions to apply.  The default ({!no_reduction}) reproduces
    the plain exhaustive search exactly. *)
type reduction = {
  symmetry : Symmetry.t option;
  source_sets : bool;
  independence : independence;
}

val no_reduction : reduction
val with_symmetry : Symmetry.t -> reduction
val full_reduction : Symmetry.t -> reduction
(** Symmetry quotienting {e and} source sets. *)

val source_only : reduction
(** Source sets without symmetry ([{ symmetry = None; source_sets = true;
    independence = Semantic }]). *)

val with_independence : independence -> reduction -> reduction

(** Soundness certificates.  The reductions above rest on trusted
    declarations (the symmetry spec is an automorphism group, the
    independence judgment's purity/equivariance/closure assumptions hold).
    A {!Certificate.t} records that a tool has mechanically discharged
    those obligations; the only minting site outside tests is
    [Subc_analysis.Analyzer.certify], which refuses unless every analyzer
    check proves.  Callers that want a checked reduction construct it
    through {!certified_reduction} instead of the bare record, making
    "fast but trust-me" and "fast and checked" distinct types of evidence
    at the call site. *)
module Certificate : sig
  type t

  (** [attest ~tool ~subject ~obligations] mints a certificate.  Reserved
      for analysis tools that have actually discharged the named
      obligations — constructing one by hand defeats the point. *)
  val attest : tool:string -> subject:string -> obligations:string list -> t

  val tool : t -> string
  val subject : t -> string
  val obligations : t -> string list
  val pp : Format.formatter -> t -> unit
end

(** [certified_reduction ~certificate sym] — a reduction that demanded a
    certificate before enabling itself; [source_sets] defaults to [true]
    (the certificate covers the independence judgment too) and
    [independence] to [Semantic] (the certificate's footprint obligation
    also licenses [Static]). *)
val certified_reduction :
  certificate:Certificate.t ->
  ?source_sets:bool ->
  ?independence:independence ->
  Symmetry.t option ->
  reduction

(** [op_independent model st a b] — the explorer's conditional-independence
    judgment for two operations on one object in state [st]: both orders
    yield the same final state and responses under every resolution of
    nondeterminism, and neither order turns a completing invocation into a
    hang.  The judgment itself is pure; each exploration memoizes it in a
    bounded per-search cache keyed by (kind, state, op pair) — there is no
    process-global table, so concurrent explorations on separate domains
    never share mutable state.  The memoization assumes [apply] is pure
    and that equal [kind] strings name behaviourally equal models.
    Exposed so the soundness analyzer ([Subc_analysis]) can certify
    exactly the judgment the source-set reduction consumes. *)
val op_independent : Obj_model.t -> Value.t -> Op.t -> Op.t -> bool

val pp_reduction : Format.formatter -> reduction -> unit

(** {1 Static commutation tables}

    The [Static]/[Both] independence modes consult a process-global
    registry of per-object-kind commutation tables: a whole-space
    classification of each op pair as always-commuting, never-commuting,
    or state-dependent, computed by the analyzer's footprint pass
    ([Subc_analysis.Footprint]) over the object's certified reachable
    space.  Tables are keyed by (kind, initial state) — the commute
    memo's "equal kinds name behaviourally equal models" convention plus
    an initial-state match pins the space the classification covers.
    The registry is an atomic snapshot of immutable tables: installs
    publish via CAS, lookups are wait-free, so worker domains may read
    while a checker installs. *)

type static_class = Always_commute | Never_commute | State_dependent

val install_static_independence :
  kind:string ->
  init:Value.t ->
  alphabet:Op.t list ->
  ((Op.t * Op.t) * static_class) list ->
  unit
(** Install (or extend) the table for (kind, init).  Pairs are keyed in
    canonical [Op.compare] order.  Re-installing a pair with a
    {e conflicting} class demotes it to [State_dependent] (the lookup then
    abstains and the semantic judgment decides) — soundness never depends
    on install order.  Intended to be called by
    [Subc_analysis.Footprint]; installing a hand-written table bypasses
    the footprint obligation and is only appropriate in tests. *)

val clear_static_independence : unit -> unit

val static_tables_installed : unit -> (string * int) list
(** Installed (kind, pair-count) list, for reporting. *)

val static_independent :
  kind:string -> init:Value.t -> Op.t -> Op.t -> bool option
(** The fast-path judgment: [Some true] iff the installed table for
    (kind, init) classifies the pair as always-commuting over the
    certified space, [Some false] iff never-commuting, [None] when the
    pair is state-dependent, uncovered, or no table is installed — the
    caller must then fall back to {!op_independent}. *)

(** {1 Source-set machinery}

    Shared verbatim by the sequential DFS and the parallel work-stealing
    engine, so both observe the same protocol: visited keys are canonical
    (configuration, sleep) pairs, and expansion is a deterministic
    function of the key. *)

(** A transition identity, in concrete process coordinates: a process
    step is identified by (process, object handle) — all nondeterministic
    outcomes of one invocation form one transition bundle — a crash and a
    recovery by their victim. *)
type tr = Tstep of int * int | Tcrash of int | Trecover of int

val map_tr : Symmetry.perm -> tr -> tr
(** Transport a transition identity along a process renaming. *)

(** The bounded per-exploration (per-domain) memo for {!op_independent},
    with local counters (diamond computations, memo hits, dropped
    inserts, static-table hits/fallbacks/mismatches).  Callers running
    concurrent expansions must use one cache per domain. *)
type commute_cache

val commute_cache : unit -> commute_cache

val flush_commute_metrics : commute_cache -> unit
(** Add the cache's local counters to the global metrics registry
    ([commute.diamonds], [commute.memo_hits], [commute.memo_evictions],
    [commute.static_hits], [commute.static_fallbacks],
    [commute.static_mismatches]) and zero them.  The sequential explorer
    flushes at the end of every search; the parallel engine flushes each
    domain's cache when its worker finishes. *)

val set_commute_cache_bound : int -> unit
(** Override the memo's entry bound (default [2^16]; clamped at [0]).
    Past the bound new results are recomputed instead of cached and each
    dropped insert counts as a [commute.memo_evictions] event.  Exposed
    so tests can exercise the overflow path cheaply; affects subsequent
    searches process-wide. *)

val get_commute_cache_bound : unit -> int
val default_commute_cache_bound : int

(** [source_key reduction ~max_crashes config ~sleep] — the visited key of
    the (configuration, sleep) node: the canonical state key extended with
    the canonical enabled-restricted sleep set (the extension is the
    identity when the relevant sleep is empty, so source-set-off searches
    and terminal states key exactly as plain state keys).  Also returns
    the canonicalizing renaming and the restricted concrete sleep — the
    inputs {!source_successors} needs. *)
val source_key :
  ?paranoid:bool ->
  reduction ->
  max_crashes:int ->
  Config.t ->
  sleep:tr list ->
  Fingerprint.key * Symmetry.perm option * tr list

val source_fingerprint :
  reduction ->
  max_crashes:int ->
  Config.t ->
  sleep:tr list ->
  Fingerprint.t * Symmetry.perm option * tr list
(** Raw-two-lane variant of {!source_key} for the parallel engine's
    lock-free claim table, which stores bare lanes and never allocates a
    {!Fingerprint.key}. *)

val source_fingerprint_from :
  Fingerprint.t ->
  reduction ->
  max_crashes:int ->
  Config.t ->
  sleep:tr list ->
  Fingerprint.t * Symmetry.perm option * tr list
(** {!source_fingerprint} when the bare state fingerprint is already in
    hand — the incremental engines carry it patched from the parent's, so
    the claim key costs O(|relevant sleep|) instead of a re-fold.  Only
    meaningful with symmetry off (the incremental path never carries a
    fingerprint under symmetry quotienting). *)

val patched_fingerprint :
  Config.t -> Fingerprint.t -> Step.slots -> Config.t -> Fingerprint.t
(** [patched_fingerprint parent fp slots child] — the child's homomorphic
    fingerprint in O(|slots|): rewrite the touched proc slot's
    contribution and each touched store slot's.  Agrees {e exactly} with
    [Fingerprint.hom_of_config child] (the successor differs from the
    parent in precisely the listed slots; the per-lane combine is an
    abelian group). *)

(** One enabled transition bundle of an expansion: its identity, the
    sleep set its children inherit (concrete coordinates of the expanded
    configuration), and its successor configurations with their trace
    events and rewritten slots ({!Step.slots} — the incremental engines'
    patch inputs). *)
type succ_group = {
  g_tr : tr;
  g_sleep : tr list;
  g_succs : (Config.t * Trace.event * Step.slots) list;
}

val source_successors :
  commute_cache ->
  reduction ->
  pi:Symmetry.perm option ->
  max_crashes:int ->
  max_recoveries:int ->
  Config.t ->
  sleep:tr list ->
  succ_group list * int
(** The source-set expansion of a (configuration, sleep) node: enabled
    transition bundles in {e canonical} sibling order (sorted by image
    under [pi]), minus those asleep (their count is returned — the
    [source_skips] contribution), each paired with its children's sleep
    set.  [sleep] must be the restricted sleep returned by
    {!source_key}/{!source_fingerprint} for the same configuration.
    Deterministic per canonical key — the property that makes the
    reduction safe under work stealing. *)


(** [state_key reduction config] — the plain visited-set key of [config]
    under [reduction] (no sleep extension): the structural fingerprint of
    the canonical orbit representative ([Fingerprint.Fp]), or the exact
    canonical key under [~paranoid:true] ([Fingerprint.Exact]).  Exposed
    for per-state memoization outside the explorer (e.g. solo-run bounds)
    and for the cross-validation tests. *)
val state_key : ?paranoid:bool -> reduction -> Config.t -> Fingerprint.key

val state_fingerprint : reduction -> Config.t -> Fingerprint.t
(** The bare two-lane fingerprint of the canonical orbit representative
    (no sleep extension). *)

(** {1 Entry points} *)

(** [iter_terminals config ~f] visits every reachable terminal configuration
    once, passing a witness trace.  Under symmetry, one representative per
    terminal orbit is reported (checked properties must be
    renaming-invariant). *)
val iter_terminals :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:reduction ->
  ?paranoid:bool ->
  ?fp:fp_mode ->
  Config.t ->
  f:(Config.t -> Trace.t -> unit) ->
  stats

(** [iter_reachable config ~f] visits {e every} reachable configuration
    (one representative per orbit under symmetry) once, passing a lazy
    witness trace — forcing it is linear in the depth, so callers that only
    need the trace on failure pay nothing on the common path.  Source sets
    are forced off (their guarantee covers terminals, and reachability
    callers quantify over every intermediate configuration). *)
val iter_reachable :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:reduction ->
  ?paranoid:bool ->
  ?fp:fp_mode ->
  Config.t ->
  f:(Config.t -> Trace.t Lazy.t -> unit) ->
  stats

(** [find_terminal config ~violates] returns the first reachable terminal
    configuration satisfying [violates], with a witness trace. *)
val find_terminal :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:reduction ->
  ?paranoid:bool ->
  ?fp:fp_mode ->
  Config.t ->
  violates:(Config.t -> bool) ->
  (Config.t * Trace.t) option * stats

(** [check_terminals config ~ok] verifies [ok] on every reachable terminal:
    [Ok stats] if all satisfy it, [Error (cex, trace, stats)] otherwise. *)
val check_terminals :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:reduction ->
  ?paranoid:bool ->
  ?fp:fp_mode ->
  Config.t ->
  ok:(Config.t -> bool) ->
  (stats, Config.t * Trace.t * stats) result

(** [find_cycle config] searches for an infinite schedule: a configuration
    reachable from itself (modulo symmetry, when enabled — an orbit
    back-edge extends to an infinite run by repeated application of the
    automorphism).  Returns the lasso trace (stem to the repeated
    configuration).  Source sets are forced off — skipping transitions at
    on-stack states could hide back-edges.  Wait-free algorithms must
    return [None]. *)
val find_cycle :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:reduction ->
  ?paranoid:bool ->
  ?fp:fp_mode ->
  Config.t ->
  Trace.t option * stats
