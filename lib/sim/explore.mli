(** Exhaustive state-space exploration (model checking).

    Explores {e all} interleavings of process steps {e and} all resolutions
    of object nondeterminism, by depth-first search over configurations.
    Configurations are memoized by their canonical key ([Config.key]), which
    is sound because programs are deterministic functions of their response
    histories.

    Crash faults are part of the transition relation: with [~max_crashes:f]
    the search also branches on crashing any running process, as long as
    fewer than [f] processes have crashed so far — so a property checked
    with budget [f] holds under {e every} interleaving {e and} every crash
    pattern of at most [f] crashes.  (The budget needs no extra memoization
    state: crashed processes are part of the configuration key.)

    For the bounded one-shot algorithms of the paper the state space is
    finite and exploration is complete: a property checked here is a proof
    for that instance size. *)

type stats = {
  states : int;  (** distinct canonical configurations visited *)
  transitions : int;
  terminals : int;  (** distinct terminal configurations *)
  hung_terminals : int;  (** terminals in which some process hung *)
  crashed_terminals : int;  (** terminals in which some process crashed *)
  max_depth : int;
  dedup_hits : int;  (** transitions into an already-visited configuration *)
  cycles : int;  (** back-edges into the current DFS stack: each witnesses
                     an infinite schedule (non-termination potential) *)
  limited : bool;
      (** true iff [max_states] was exhausted or some branch was pruned at
          the depth bound — the search is then {e not} a proof *)
}

val pp_stats : Format.formatter -> stats -> unit

(** [iter_terminals config ~f] visits every reachable terminal configuration
    once, passing a witness trace. *)
val iter_terminals :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  Config.t ->
  f:(Config.t -> Trace.t -> unit) ->
  stats

(** [iter_reachable config ~f] visits {e every} reachable configuration
    (not just terminals) once, passing a lazy witness trace — forcing it is
    linear in the depth, so callers that only need the trace on failure pay
    nothing on the common path. *)
val iter_reachable :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  Config.t ->
  f:(Config.t -> Trace.t Lazy.t -> unit) ->
  stats

(** [find_terminal config ~violates] returns the first reachable terminal
    configuration satisfying [violates], with a witness trace. *)
val find_terminal :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  Config.t ->
  violates:(Config.t -> bool) ->
  (Config.t * Trace.t) option * stats

(** [check_terminals config ~ok] verifies [ok] on every reachable terminal:
    [Ok stats] if all satisfy it, [Error (cex, trace, stats)] otherwise. *)
val check_terminals :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  Config.t ->
  ok:(Config.t -> bool) ->
  (stats, Config.t * Trace.t * stats) result

(** [find_cycle config] searches for an infinite schedule: a configuration
    reachable from itself.  Returns the lasso trace (stem to the repeated
    configuration).  Wait-free algorithms must return [None]. *)
val find_cycle :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  Config.t ->
  Trace.t option * stats
