(* Allocation-lean structural fingerprints of configurations.

   The explorer's hot path used to build a full [Value.t] key tree
   ([Config.key]), [Marshal] it to a fresh string and MD5-digest that
   string at every DFS node — three heap-churning passes per state.  This
   module folds a 126-bit hash (two independent 63-bit lanes of native
   ints, so nothing is ever boxed) directly over the store contents and
   the process array: one traversal, no intermediate tree, no marshal
   buffer, no 16-byte string key.  The only allocation per fingerprint is
   the final two-immediate-field record.

   Each lane is a SplitMix/xxhash-style multiply-xorshift accumulator;
   the lanes use distinct seeds and multipliers, so a collision requires
   two independent 63-bit matches (~2^-126 per pair of distinct states —
   negligible against the <= 10^7-state spaces the checker handles, and
   guarded by the [~paranoid] exact-key mode cross-validated in tests).

   All 64-bit-looking constants below are truncated to fit OCaml's 63-bit
   native int; the multiplications wrap modulo 2^63, which is exactly the
   mixing we want. *)

type t = { h1 : int; h2 : int }

let equal a b = a.h1 = b.h1 && a.h2 = b.h2
let compare a b =
  let c = Int.compare a.h1 b.h1 in
  if c <> 0 then c else Int.compare a.h2 b.h2

(* Non-negative 30-bit-ish hash for Hashtbl. *)
let hash t = (t.h1 lxor (t.h2 lsl 1)) land max_int
let to_hex t = Printf.sprintf "%016x%016x" (t.h1 land max_int) (t.h2 land max_int)
let pp ppf t = Format.pp_print_string ppf (to_hex t)

(* Lane multipliers / seeds: large odd constants < 2^62. *)
let m1 = 0x2545F4914F6CDD1D
let m2 = 0x27D4EB2F165667C5
let seed1 = 0x1CE1E5B9F352D9F3
let seed2 = 0x31E2B5A7C94F6E2D

type ctx = { mutable a : int; mutable b : int }

let create () = { a = seed1; b = seed2 }

let[@inline] feed ctx x =
  let a = (ctx.a + x) * m1 in
  ctx.a <- a lxor (a lsr 29);
  let b = (ctx.b lxor x) * m2 in
  ctx.b <- b lxor (b lsr 31)

let finish ctx =
  let fin h m =
    let h = (h lxor (h lsr 33)) * m in
    h lxor (h lsr 29)
  in
  { h1 = fin ctx.a m2; h2 = fin ctx.b m1 }

let feed_string ctx s =
  feed ctx (String.length s);
  String.iter (fun c -> feed ctx (Char.code c)) s

(* Structural fold over a [Value.t].  Constructor tags and open/close
   markers keep the encoding prefix-free: [Vec [a; b]] and
   [Pair (a, b)] feed different tag streams, so structurally distinct
   values feed distinct int sequences. *)
let rec feed_value ctx (v : Value.t) =
  match v with
  | Value.Bot -> feed ctx 1
  | Value.Unit -> feed ctx 2
  | Value.Bool false -> feed ctx 3
  | Value.Bool true -> feed ctx 4
  | Value.Int i ->
    feed ctx 5;
    feed ctx i
  | Value.Sym s ->
    feed ctx 6;
    feed_string ctx s
  | Value.Pair (a, b) ->
    feed ctx 7;
    feed_value ctx a;
    feed_value ctx b
  | Value.Vec vs ->
    feed ctx 8;
    feed ctx (List.length vs);
    List.iter (feed_value ctx) vs
  | Value.Tag (s, x) ->
    feed ctx 9;
    feed_string ctx s;
    feed_value ctx x

(* Mirrors [Config.key] exactly — same distinctions, no tree:
   - store: (handle, object state) in increasing handle order;
   - per process: the status kind (a [Running] continuation is erased,
     exactly as [Config.proc_key] erases it — programs are deterministic
     functions of their response histories), the decided value if any,
     and the response history. *)
let feed_config ctx (c : Config.t) =
  Store.iter c.Config.store (fun h st ->
      feed ctx h;
      feed_value ctx st);
  feed ctx 0x5E9;
  Array.iter
    (fun (p : Config.proc) ->
      (match p.Config.status with
      | Config.Running _ -> feed ctx 0x11
      | Config.Terminated v ->
        feed ctx 0x12;
        feed_value ctx v
      | Config.Hung -> feed ctx 0x13
      | Config.Crashed -> feed ctx 0x14
      | Config.Recovering _ -> feed ctx 0x15);
      feed ctx p.Config.recoveries;
      feed ctx (List.length p.Config.history);
      List.iter (feed_value ctx) p.Config.history)
    c.Config.procs;
  feed ctx (Array.length c.Config.procs)

let of_config c =
  let ctx = create () in
  feed_config ctx c;
  finish ctx

let of_value v =
  let ctx = create () in
  feed_value ctx v;
  finish ctx

(* Re-open a finished fingerprint and mix one more word into both lanes.
   Used to key (configuration, sleep set) pairs: the state fingerprint is
   computed once and each canonical sleep entry is folded on top, so the
   extension costs O(|sleep|) with no re-traversal of the configuration.
   The lanes pass through the same multiply-xorshift round as [feed] +
   [finish], so [extend fp x] is as well-mixed as fingerprinting the
   extended stream directly; an empty extension is the identity. *)
let extend t x =
  let ctx = { a = t.h1; b = t.h2 } in
  feed ctx x;
  finish ctx

(* Visited-set keys: the fingerprint fast path, or the exact canonical
   [Value.t] key under [~paranoid] (collisions impossible, memory heavy —
   the cross-validation mode). *)
type key = Fp of t | Exact of Value.t

let key_equal a b =
  match (a, b) with
  | Fp x, Fp y -> equal x y
  | Exact u, Exact v -> Value.compare u v = 0
  | Fp _, Exact _ | Exact _, Fp _ -> false

let key_hash = function
  | Fp f -> hash f
  | Exact v -> Value.hash v

(* Shard selection for the parallel engine's sharded visited table: use
   the second lane so shard choice is independent of the bits [hash]
   feeds to the per-shard hashtable. *)
let shard_index = function
  | Fp f -> f.h2 land max_int
  | Exact v -> Value.hash v

module Ktbl = Hashtbl.Make (struct
  type nonrec t = key

  let equal = key_equal
  let hash = key_hash
end)
