(* Allocation-lean structural fingerprints of configurations.

   The explorer's hot path used to build a full [Value.t] key tree
   ([Config.key]), [Marshal] it to a fresh string and MD5-digest that
   string at every DFS node — three heap-churning passes per state.  This
   module folds a 126-bit hash (two independent 63-bit lanes of native
   ints, so nothing is ever boxed) directly over the store contents and
   the process array: one traversal, no intermediate tree, no marshal
   buffer, no 16-byte string key.  The only allocation per fingerprint is
   the final two-immediate-field record.

   Each lane is a SplitMix/xxhash-style multiply-xorshift accumulator;
   the lanes use distinct seeds and multipliers, so a collision requires
   two independent 63-bit matches (~2^-126 per pair of distinct states —
   negligible against the <= 10^7-state spaces the checker handles, and
   guarded by the [~paranoid] exact-key mode cross-validated in tests).

   All 64-bit-looking constants below are truncated to fit OCaml's 63-bit
   native int; the multiplications wrap modulo 2^63, which is exactly the
   mixing we want. *)

type t = { h1 : int; h2 : int }

let equal a b = a.h1 = b.h1 && a.h2 = b.h2
let compare a b =
  let c = Int.compare a.h1 b.h1 in
  if c <> 0 then c else Int.compare a.h2 b.h2

(* Non-negative 30-bit-ish hash for Hashtbl. *)
let hash t = (t.h1 lxor (t.h2 lsl 1)) land max_int
let to_hex t = Printf.sprintf "%016x%016x" (t.h1 land max_int) (t.h2 land max_int)
let pp ppf t = Format.pp_print_string ppf (to_hex t)

(* Lane multipliers / seeds: large odd constants < 2^62. *)
let m1 = 0x2545F4914F6CDD1D
let m2 = 0x27D4EB2F165667C5
let seed1 = 0x1CE1E5B9F352D9F3
let seed2 = 0x31E2B5A7C94F6E2D

type ctx = { mutable a : int; mutable b : int }

let create () = { a = seed1; b = seed2 }

let[@inline] feed ctx x =
  let a = (ctx.a + x) * m1 in
  ctx.a <- a lxor (a lsr 29);
  let b = (ctx.b lxor x) * m2 in
  ctx.b <- b lxor (b lsr 31)

let finish ctx =
  let fin h m =
    let h = (h lxor (h lsr 33)) * m in
    h lxor (h lsr 29)
  in
  { h1 = fin ctx.a m2; h2 = fin ctx.b m1 }

let feed_string ctx s =
  feed ctx (String.length s);
  String.iter (fun c -> feed ctx (Char.code c)) s

(* Structural fold over a [Value.t].  Constructor tags and open/close
   markers keep the encoding prefix-free: [Vec [a; b]] and
   [Pair (a, b)] feed different tag streams, so structurally distinct
   values feed distinct int sequences. *)
let rec feed_value ctx (v : Value.t) =
  match v with
  | Value.Bot -> feed ctx 1
  | Value.Unit -> feed ctx 2
  | Value.Bool false -> feed ctx 3
  | Value.Bool true -> feed ctx 4
  | Value.Int i ->
    feed ctx 5;
    feed ctx i
  | Value.Sym s ->
    feed ctx 6;
    feed_string ctx s
  | Value.Pair (a, b) ->
    feed ctx 7;
    feed_value ctx a;
    feed_value ctx b
  | Value.Vec vs ->
    feed ctx 8;
    feed ctx (List.length vs);
    List.iter (feed_value ctx) vs
  | Value.Tag (s, x) ->
    feed ctx 9;
    feed_string ctx s;
    feed_value ctx x

(* Mirrors [Config.key] exactly — same distinctions, no tree:
   - store: (handle, object state) in increasing handle order;
   - per process: the status kind (a [Running] continuation is erased,
     exactly as [Config.proc_key] erases it — programs are deterministic
     functions of their response histories), the decided value if any,
     and the response history. *)
let feed_config ctx (c : Config.t) =
  Store.iter c.Config.store (fun h st ->
      feed ctx h;
      feed_value ctx st);
  feed ctx 0x5E9;
  Array.iter
    (fun (p : Config.proc) ->
      (match p.Config.status with
      | Config.Running _ -> feed ctx 0x11
      | Config.Terminated v ->
        feed ctx 0x12;
        feed_value ctx v
      | Config.Hung -> feed ctx 0x13
      | Config.Crashed -> feed ctx 0x14
      | Config.Recovering _ -> feed ctx 0x15);
      feed ctx p.Config.recoveries;
      feed ctx (List.length p.Config.history);
      List.iter (feed_value ctx) p.Config.history)
    c.Config.procs;
  feed ctx (Array.length c.Config.procs)

let of_config c =
  let ctx = create () in
  feed_config ctx c;
  finish ctx

let of_value v =
  let ctx = create () in
  feed_value ctx v;
  finish ctx

(* {1 Homomorphic (group-combinable) fingerprints}

   [of_config] is a sequential fold: changing one slot forces an O(|store|
   + |procs|) re-traversal.  The incremental explorer instead hashes each
   (slot, content) pair to an independent, fully-finished mix and combines
   the mixes with a per-lane *group* operation — lane 1 uses addition
   modulo 2^63 (OCaml native-int [+]/[-] wrap), lane 2 uses XOR.  Both
   operations are abelian and invertible, so when a [Step] rewrites one
   process slot and one object slot the child fingerprint is the parent's
   with the old contributions subtracted and the new ones added: O(1) per
   transition, Zobrist-hashing style.

   Soundness: within one search the store's handle set and the process
   count are fixed, so two configurations with equal [Config.key] produce
   the identical multiset of (slot, content) mixes and hence equal
   combined fingerprints.  Distinct keys differ in at least one indexed
   slot; each slot mix is an independently seeded-and-finalized 126-bit
   hash, so the combined values collide with probability ~2^-126 per pair
   — same bound as the sequential fold, on a *different* hash function
   (the visited table is keyed consistently by exactly one of the two
   within a run, so counts are unaffected; [~paranoid] cross-validates
   patched fingerprints against [hom_of_config] re-folds). *)

let hom_add a b = { h1 = a.h1 + b.h1; h2 = a.h2 lxor b.h2 }
let hom_sub a b = { h1 = a.h1 - b.h1; h2 = a.h2 lxor b.h2 }

(* Domain tags keep store-slot, proc-slot and base mixes disjoint even
   when a handle and a process index share an integer. *)
let mix_store_slot h (st : Value.t) =
  let ctx = create () in
  feed ctx 0xA;
  feed ctx h;
  feed_value ctx st;
  finish ctx

(* A process slot's contribution is itself a combination of finer
   mixes, so that the common transition — push one response onto the
   history — patches in O(1) rather than re-mixing the whole history:

   - one {e control} mix: status kind (a [Running] continuation is
     erased, exactly as [Config.proc_key] erases it — programs are
     deterministic functions of their response histories), the decided
     value if any, and the recovery count;
   - one mix {e per history entry}, indexed by the entry's distance from
     the {e oldest} end.  Histories are newest-first cons lists that
     grow by prepending, so reverse indexing keeps every existing
     entry's mix stable across a step: the step adds exactly one new
     (index = old length) mix.

   Together these distinguish everything [Config.proc_key] does — and
   nothing more ([steps] is bookkeeping, not state). *)
let mix_proc_control i (p : Config.proc) =
  let ctx = create () in
  feed ctx 0xB;
  feed ctx i;
  (match p.Config.status with
  | Config.Running _ -> feed ctx 0x11
  | Config.Terminated v ->
    feed ctx 0x12;
    feed_value ctx v
  | Config.Hung -> feed ctx 0x13
  | Config.Crashed -> feed ctx 0x14
  | Config.Recovering _ -> feed ctx 0x15);
  feed ctx p.Config.recoveries;
  finish ctx

let mix_proc_hist i r v =
  let ctx = create () in
  feed ctx 0xD;
  feed ctx i;
  feed ctx r;
  feed_value ctx v;
  finish ctx

(* The whole slot at once (re-fold path and algebraic tests); the patch
   path below never calls this on a step. *)
let mix_proc_slot i (p : Config.proc) =
  let acc = ref (mix_proc_control i p) in
  let r = ref (List.length p.Config.history) in
  List.iter
    (fun v ->
      decr r;
      acc := hom_add !acc (mix_proc_hist i !r v))
    p.Config.history;
  !acc

let hom_base ~n_procs =
  let ctx = create () in
  feed ctx 0xC;
  feed ctx n_procs;
  finish ctx

let hom_of_config (c : Config.t) =
  let acc = ref (hom_base ~n_procs:(Array.length c.Config.procs)) in
  Store.iter c.Config.store (fun h st ->
      acc := hom_add !acc (mix_store_slot h st));
  Array.iteri
    (fun i p -> acc := hom_add !acc (mix_proc_slot i p))
    c.Config.procs;
  !acc

(* Control projections are equal iff the control mixes are equal mixes —
   compare before hashing, so a step that only extends the history pays
   no control mix at all. *)
let same_control (a : Config.proc) (b : Config.proc) =
  a.Config.recoveries = b.Config.recoveries
  &&
  match (a.Config.status, b.Config.status) with
  | Config.Running _, Config.Running _ -> true
  | Config.Recovering _, Config.Recovering _ -> true
  | Config.Hung, Config.Hung -> true
  | Config.Crashed, Config.Crashed -> true
  | Config.Terminated x, Config.Terminated y -> x == y || x = y
  | _ -> false

(* Patch the history contributions from [oldh] (length [lo]) to [newh]
   (length [ln]): walk the longer list down to the shorter, then both in
   lockstep, stopping at the first physically shared tail.  A step's
   successor shares the entire old history ([resp :: old]), so the loop
   mixes exactly one entry; crash (history cleared) and recovery
   (restart) pay their own length, which their budgets bound. *)
let hist_patch fp i oldh lo newh ln =
  let rec go fp oldh ro newh rn =
    if oldh == newh then fp
    else if ro > rn then
      match oldh with
      | v :: tl -> go (hom_sub fp (mix_proc_hist i ro v)) tl (ro - 1) newh rn
      | [] -> assert false
    else if rn > ro then
      match newh with
      | v :: tl -> go (hom_add fp (mix_proc_hist i rn v)) oldh ro tl (rn - 1)
      | [] -> assert false
    else
      match (oldh, newh) with
      | [], [] -> fp
      | vo :: to_, vn :: tn ->
        let fp =
          if vo == vn then fp
          else
            hom_add (hom_sub fp (mix_proc_hist i ro vo)) (mix_proc_hist i rn vn)
        in
        go fp to_ (ro - 1) tn (rn - 1)
      | _ -> assert false
  in
  go fp oldh (lo - 1) newh (ln - 1)

let hom_patch_proc fp i oldp newp =
  let fp =
    if same_control oldp newp then fp
    else hom_add (hom_sub fp (mix_proc_control i oldp)) (mix_proc_control i newp)
  in
  let oldh = oldp.Config.history and newh = newp.Config.history in
  if oldh == newh then fp
  else hist_patch fp i oldh (List.length oldh) newh (List.length newh)

let hom_patch_store fp h oldv newv =
  hom_add (hom_sub fp (mix_store_slot h oldv)) (mix_store_slot h newv)

(* Re-open a finished fingerprint and mix one more word into both lanes.
   Used to key (configuration, sleep set) pairs: the state fingerprint is
   computed once and each canonical sleep entry is folded on top, so the
   extension costs O(|sleep|) with no re-traversal of the configuration.
   The lanes pass through the same multiply-xorshift round as [feed] +
   [finish], so [extend fp x] is as well-mixed as fingerprinting the
   extended stream directly; an empty extension is the identity. *)
let extend t x =
  let ctx = { a = t.h1; b = t.h2 } in
  feed ctx x;
  finish ctx

(* Visited-set keys: the fingerprint fast path, or the exact canonical
   [Value.t] key under [~paranoid] (collisions impossible, memory heavy —
   the cross-validation mode). *)
type key = Fp of t | Exact of Value.t

let key_equal a b =
  match (a, b) with
  | Fp x, Fp y -> equal x y
  | Exact u, Exact v -> Value.compare u v = 0
  | Fp _, Exact _ | Exact _, Fp _ -> false

let key_hash = function
  | Fp f -> hash f
  | Exact v -> Value.hash v

(* Shard selection for the parallel engine's sharded visited table: use
   the second lane so shard choice is independent of the bits [hash]
   feeds to the per-shard hashtable. *)
let shard_index = function
  | Fp f -> f.h2 land max_int
  | Exact v -> Value.hash v

module Ktbl = Hashtbl.Make (struct
  type nonrec t = key

  let equal = key_equal
  let hash = key_hash
end)
