(** Allocation-lean structural fingerprints of configurations.

    A 126-bit hash (two 63-bit native-int lanes — nothing boxed) folded
    directly over a configuration's store contents and process array,
    replacing the explorer's former per-node
    [Digest.string (Marshal.to_string (Config.key config) [])] pipeline:
    no intermediate [Value.t] key tree, no marshal buffer, no string
    digest.  Two configurations with equal {!Config.key} have equal
    fingerprints; distinct keys collide with probability ~2^-126 per
    pair.  The exact-key path survives behind the explorer's [~paranoid]
    flag ({!key}), and the test suite cross-validates the two. *)

type t = private { h1 : int; h2 : int }

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit

val of_config : Config.t -> t
(** One traversal of store + procs; agrees with {!Config.key} equality
    (continuations erased, histories included). *)

val of_value : Value.t -> t
(** Fingerprint of an explicit key tree — the path used under symmetry
    quotienting, where the canonical representative key is already
    materialized by [Symmetry.canonical_key]. *)

val extend : t -> int -> t
(** [extend fp x] mixes one more word into both lanes of a finished
    fingerprint.  The explorer keys (configuration, sleep set) pairs by
    folding each canonical sleep entry onto the state fingerprint —
    O(sleep) per extension, no configuration re-traversal. *)

(** {1 Visited-set keys} *)

(** [Fp] is the fast path; [Exact] keeps the full canonical key (the
    [~paranoid] mode: collisions impossible, memory proportional to key
    size). *)
type key = Fp of t | Exact of Value.t

val key_equal : key -> key -> bool
val key_hash : key -> int

val shard_index : key -> int
(** Non-negative shard selector, independent of the bits {!key_hash}
    feeds to the per-shard table (used by the parallel engine). *)

(** Hashtables keyed by {!key}. *)
module Ktbl : Hashtbl.S with type key = key
