(** Allocation-lean structural fingerprints of configurations.

    A 126-bit hash (two 63-bit native-int lanes — nothing boxed) folded
    directly over a configuration's store contents and process array,
    replacing the explorer's former per-node
    [Digest.string (Marshal.to_string (Config.key config) [])] pipeline:
    no intermediate [Value.t] key tree, no marshal buffer, no string
    digest.  Two configurations with equal {!Config.key} have equal
    fingerprints; distinct keys collide with probability ~2^-126 per
    pair.  The exact-key path survives behind the explorer's [~paranoid]
    flag ({!key}), and the test suite cross-validates the two. *)

type t = private { h1 : int; h2 : int }

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit

val of_config : Config.t -> t
(** One traversal of store + procs; agrees with {!Config.key} equality
    (continuations erased, histories included). *)

val of_value : Value.t -> t
(** Fingerprint of an explicit key tree — the path used under symmetry
    quotienting, where the canonical representative key is already
    materialized by [Symmetry.canonical_key]. *)

val extend : t -> int -> t
(** [extend fp x] mixes one more word into both lanes of a finished
    fingerprint.  The explorer keys (configuration, sleep set) pairs by
    folding each canonical sleep entry onto the state fingerprint —
    O(sleep) per extension, no configuration re-traversal. *)

(** {1 Homomorphic (group-combinable) fingerprints}

    An alternative, incrementally patchable hash of configurations: each
    (slot, content) pair contributes an independently finalized mix, and
    mixes are combined per lane with an abelian group operation (addition
    modulo 2^63 / XOR).  Because the combination is invertible, a step
    that rewrites one process slot and one object slot turns the parent
    fingerprint into the child's in O(1) — subtract the old
    contributions, add the new ones — instead of re-folding the whole
    configuration.  [hom_of_config] is a {e different} hash function from
    {!of_config} with the same ~2^-126 pairwise collision bound; a run
    keys its visited table consistently by one or the other, never a
    mixture. *)

val hom_add : t -> t -> t
(** Group combine: lane 1 adds modulo 2^63, lane 2 XORs.  Associative,
    commutative, inverted by {!hom_sub}. *)

val hom_sub : t -> t -> t
(** Group inverse combine: [hom_sub (hom_add fp m) m = fp]. *)

val mix_store_slot : int -> Value.t -> t
(** Contribution of one store slot [(handle, object state)]. *)

val mix_proc_slot : int -> Config.proc -> t
(** Contribution of one process slot, distinguishing exactly what
    {!of_config}'s per-process stream does (status kind, decided value,
    recovery count, response history — continuations and step counts
    erased). *)

val hom_base : n_procs:int -> t
(** Contribution of the configuration shape itself (process count). *)

val hom_of_config : Config.t -> t
(** [hom_base ⊕ Σ mix_store_slot ⊕ Σ mix_proc_slot] — the full re-fold;
    the root of every incremental run, and the [~paranoid]
    cross-validation target for patched fingerprints.  Agrees with
    {!Config.key} equality exactly as {!of_config} does. *)

val hom_patch_proc : t -> int -> Config.proc -> Config.proc -> t
(** [hom_patch_proc fp i old new_] rewrites process slot [i]'s
    contribution: subtract [mix_proc_slot i old], add
    [mix_proc_slot i new_]. *)

val hom_patch_store : t -> int -> Value.t -> Value.t -> t
(** [hom_patch_store fp h old new_] rewrites store slot [h]'s
    contribution. *)

(** {1 Visited-set keys} *)

(** [Fp] is the fast path; [Exact] keeps the full canonical key (the
    [~paranoid] mode: collisions impossible, memory proportional to key
    size). *)
type key = Fp of t | Exact of Value.t

val key_equal : key -> key -> bool
val key_hash : key -> int

val shard_index : key -> int
(** Non-negative shard selector, independent of the bits {!key_hash}
    feeds to the per-shard table (used by the parallel engine). *)

(** Hashtables keyed by {!key}. *)
module Ktbl : Hashtbl.S with type key = key
