type t = {
  kind : string;
  init : Value.t;
  apply : Value.t -> Op.t -> (Value.t * Value.t) list;
}

let deterministic ~kind ~init f =
  { kind; init; apply = (fun state op -> [ f state op ]) }

let nondet ~kind ~init f = { kind; init; apply = f }

let hang = []

exception Bad_op of string * Op.t

let bad_op kind op = raise (Bad_op (kind, op))
