type t = {
  kind : string;
  init : Value.t;
  apply : Value.t -> Op.t -> (Value.t * Value.t) list;
  persist : (Value.t -> Value.t) option;
}

let deterministic ~kind ~init f =
  { kind; init; apply = (fun state op -> [ f state op ]); persist = None }

let nondet ~kind ~init f = { kind; init; apply = f; persist = None }

let with_persist persist t = { t with persist = Some persist }

let persist_state t state =
  match t.persist with None -> state | Some p -> p state

let all_persistent t = t.persist = None

let hang = []

exception Bad_op of string * Op.t

let bad_op kind op = raise (Bad_op (kind, op))
