(** Sequential object models.

    Following Section 2 of the paper, a shared object is a set of states plus,
    for every operation, a transition taking each state to a set of
    (state, response) successors:

    - a singleton successor set on every (state, op) makes the object
      {e deterministic} — the paper's central notion;
    - several successors make it {e nondeterministic} (e.g. the
      (n,k)-set-consensus object of Section 2);
    - an {e empty} successor set means the invocation "hangs the system in a
      manner that cannot be detected by the processes" (illegal 1sWRN reuse,
      exhausted set-consensus objects): the invoker never receives a
      response.

    Transitions must be pure: the simulator calls them repeatedly while
    exploring interleavings.

    {b Persistence.}  Under the crash-recovery fault model ({!Config.recover})
    an object's state splits into a persistent component, which survives a
    crash, and a volatile component, which is reset when a crashed process
    recovers.  The split is expressed as a {e projection} [persist] mapping
    any state to the state recovered from it: [persist] must be idempotent
    ([persist (persist s) = persist s]) and map reachable states to valid
    states — both obligations are discharged mechanically by the static
    soundness analyzer ([Subc_analysis]).  The default ([None]) is
    all-persistent: [persist] is the identity and every existing object is
    trivially recoverable. *)

type t = {
  kind : string;  (** object-class name, for traces and diagnostics *)
  init : Value.t;  (** initial state *)
  apply : Value.t -> Op.t -> (Value.t * Value.t) list;
      (** [apply state op] = all (state', response) successors *)
  persist : (Value.t -> Value.t) option;
      (** recovery projection: the state restored after a crash-recovery
          ([None] = identity = fully persistent) *)
}

(** [deterministic ~kind ~init f] wraps a deterministic transition. *)
val deterministic :
  kind:string -> init:Value.t -> (Value.t -> Op.t -> Value.t * Value.t) -> t

(** [nondet ~kind ~init f] wraps a nondeterministic transition. *)
val nondet :
  kind:string ->
  init:Value.t ->
  (Value.t -> Op.t -> (Value.t * Value.t) list) ->
  t

(** [with_persist p t] declares the persistent/volatile split of [t]'s
    state: on recovery the object's state becomes [p state].  [p] must be
    an idempotent projection into valid states (certified by
    [Subc_analysis]). *)
val with_persist : (Value.t -> Value.t) -> t -> t

(** [persist_state t s] is the state recovered from [s]: [s] itself when
    the object is fully persistent. *)
val persist_state : t -> Value.t -> Value.t

(** Whether the object declares no volatile component ([persist = None]) —
    recovery is then the identity on its state. *)
val all_persistent : t -> bool

(** The hang outcome: no successors. *)
val hang : (Value.t * Value.t) list

(** Raised by [apply] functions on operations the object does not support —
    a programming error in algorithm code, never modeled nondeterminism. *)
exception Bad_op of string * Op.t

val bad_op : string -> Op.t -> 'a
