(** Sequential object models.

    Following Section 2 of the paper, a shared object is a set of states plus,
    for every operation, a transition taking each state to a set of
    (state, response) successors:

    - a singleton successor set on every (state, op) makes the object
      {e deterministic} — the paper's central notion;
    - several successors make it {e nondeterministic} (e.g. the
      (n,k)-set-consensus object of Section 2);
    - an {e empty} successor set means the invocation "hangs the system in a
      manner that cannot be detected by the processes" (illegal 1sWRN reuse,
      exhausted set-consensus objects): the invoker never receives a
      response.

    Transitions must be pure: the simulator calls them repeatedly while
    exploring interleavings. *)

type t = {
  kind : string;  (** object-class name, for traces and diagnostics *)
  init : Value.t;  (** initial state *)
  apply : Value.t -> Op.t -> (Value.t * Value.t) list;
      (** [apply state op] = all (state', response) successors *)
}

(** [deterministic ~kind ~init f] wraps a deterministic transition. *)
val deterministic :
  kind:string -> init:Value.t -> (Value.t -> Op.t -> Value.t * Value.t) -> t

(** [nondet ~kind ~init f] wraps a nondeterministic transition. *)
val nondet :
  kind:string ->
  init:Value.t ->
  (Value.t -> Op.t -> (Value.t * Value.t) list) ->
  t

(** The hang outcome: no successors. *)
val hang : (Value.t * Value.t) list

(** Raised by [apply] functions on operations the object does not support —
    a programming error in algorithm code, never modeled nondeterminism. *)
exception Bad_op of string * Op.t

val bad_op : string -> Op.t -> 'a
