type t = { name : string; args : Value.t list }

let make name args = { name; args }
let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp ppf { name; args } =
  match args with
  | [] -> Format.pp_print_string ppf name
  | _ ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Value.pp)
      args

let to_string op = Format.asprintf "%a" pp op

let arg op i =
  match List.nth_opt op.args i with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Op.arg: %s has no argument %d" op.name i)
