(** Operation descriptors.

    An operation is a name plus a list of argument values; each shared object
    interprets the operations it supports and rejects the rest.  Invoking an
    operation is one atomic step of the paper's execution model. *)

type t = { name : string; args : Value.t list }

val make : string -> Value.t list -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [arg op i] is the [i]-th argument.  @raise Invalid_argument if absent. *)
val arg : t -> int -> Value.t
