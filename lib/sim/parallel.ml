(* Multicore exploration: a frontier-splitting parallel driver for the
   sequential explorer's transition relation.

   The driver seeds a work frontier by bounded breadth-first search from
   the root (until roughly [4 * jobs] items are pending), then fans the
   frontier out across [jobs] domains.  Each domain runs depth-first
   search over its own local stack, deduplicating against a visited table
   sharded by fingerprint prefix — one mutex per shard, so lock hold
   times are a single hashtable probe and contention spreads across
   [n_shards] locks.  A state is {e claimed} exactly once, by whichever
   domain first inserts its key into the owning shard; only the claimer
   expands the state, so every state is expanded at most once and the
   explored graph is exactly the sequential one.

   Work balancing: a domain whose local stack empties takes from the
   shared seed queue ("stealing"); a domain that notices idle peers
   donates the shallow half of its local stack back to the shared queue.
   Termination is the classic idle-counter protocol: when all [jobs]
   domains are simultaneously waiting on an empty shared queue, the
   search space is exhausted.

   What is deterministic and what is not (see DESIGN.md "Parallel
   exploration"): [states], [transitions], [terminals], [hung_terminals]
   and [crashed_terminals] are schedule-independent — claim-once
   partitions the same reachable set, and each claimed state contributes
   its fixed out-degree — so they agree with the sequential explorer on
   acyclic state graphs (all one-shot bounded algorithms).  [max_depth],
   [dedup_hits] and the specific witness traces depend on the race for
   claims; checkers built on this module return deterministic verdicts
   with possibly different (equally valid) witnesses.

   Reductions: symmetry quotienting composes (the canonical key is
   computed before the claim, so all orbit members race for one slot);
   sleep sets are forced off — their resume protocol mutates a
   per-state [explored] list in DFS order, which is inherently
   sequential.  Cycle detection is not offered: back-edges are
   indistinguishable from cross-edges without a per-domain DFS stack
   discipline, so revisits count as [dedup_hits]; use the sequential
   [Explore.find_cycle]. *)

module Obs = Subc_obs

exception Stop

type work = { config : Config.t; rev_trace : Trace.event list; depth : int }

type shard = { lock : Mutex.t; tbl : unit Fingerprint.Ktbl.t }

let n_shards = 128

type stop_cause = Budget | Callback of exn

(* Per-domain statistics; merged after join (sums, except [max_depth]). *)
type dstats = {
  mutable states : int;
  mutable transitions : int;
  mutable terminals : int;
  mutable hung_terminals : int;
  mutable crashed_terminals : int;
  mutable max_depth : int;
  mutable dedup_hits : int;
  mutable depth_limited : bool;
  mutable steals : int;
  mutable contention : int;
  mutable seconds : float;
}

let fresh_dstats () =
  {
    states = 0;
    transitions = 0;
    terminals = 0;
    hung_terminals = 0;
    crashed_terminals = 0;
    max_depth = 0;
    dedup_hits = 0;
    depth_limited = false;
    steals = 0;
    contention = 0;
    seconds = 0.0;
  }

type global = {
  shards : shard array;
  queue : work Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  idle : int Atomic.t;
  mutable finished : bool; (* under [qlock] *)
  stop : stop_cause option Atomic.t;
  n_states : int Atomic.t;
  max_states : int;
  depth_limit : int;
  max_crashes : int;
  reduction : Explore.reduction;
  paranoid : bool;
  jobs : int;
  cb_lock : Mutex.t;
  on_terminal : Config.t -> Trace.t -> unit;
  on_visit : Config.t -> Trace.t Lazy.t -> unit;
}

type ctx = {
  g : global;
  stats : dstats;
  mutable local : work list;
  mutable local_n : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* First cause wins; always wake any waiters so they can observe it. *)
let set_stop g cause =
  ignore (Atomic.compare_and_set g.stop None (Some cause));
  with_lock g.qlock (fun () ->
      g.finished <- true;
      Condition.broadcast g.qcond)

(* Claim [key] in its shard.  [`Fresh] means this domain owns the state
   and must expand it; [`Dup] means another claim got there first (or an
   earlier visit did); [`Budget] means the global state budget is
   exhausted — the state is deliberately left unclaimed and uncounted,
   matching the sequential explorer, which stops at the (N+1)-th fresh
   state without counting it. *)
let claim ctx key =
  let g = ctx.g in
  let sh = g.shards.(Fingerprint.shard_index key mod n_shards) in
  if not (Mutex.try_lock sh.lock) then begin
    ctx.stats.contention <- ctx.stats.contention + 1;
    Mutex.lock sh.lock
  end;
  let r =
    if Fingerprint.Ktbl.mem sh.tbl key then `Dup
    else if Atomic.fetch_and_add g.n_states 1 >= g.max_states then `Budget
    else begin
      Fingerprint.Ktbl.add sh.tbl key ();
      `Fresh
    end
  in
  Mutex.unlock sh.lock;
  r

let push_local ctx w =
  ctx.local <- w :: ctx.local;
  ctx.local_n <- ctx.local_n + 1

(* Expand one work item.  Exceptions from user callbacks propagate to the
   caller (the worker loop converts them into a stop cause); no shard
   lock is held while a callback runs. *)
let process ctx item =
  let g = ctx.g in
  if item.depth > ctx.stats.max_depth then ctx.stats.max_depth <- item.depth;
  if item.depth > g.depth_limit then ctx.stats.depth_limited <- true
  else
    let key = Explore.state_key ~paranoid:g.paranoid g.reduction item.config in
    match claim ctx key with
    | `Dup -> ctx.stats.dedup_hits <- ctx.stats.dedup_hits + 1
    | `Budget -> set_stop g Budget
    | `Fresh -> (
      ctx.stats.states <- ctx.stats.states + 1;
      g.on_visit item.config (lazy (List.rev item.rev_trace));
      match Config.running item.config with
      | [] ->
        ctx.stats.terminals <- ctx.stats.terminals + 1;
        if Config.any_hung item.config then
          ctx.stats.hung_terminals <- ctx.stats.hung_terminals + 1;
        if Config.any_crashed item.config then
          ctx.stats.crashed_terminals <- ctx.stats.crashed_terminals + 1;
        with_lock g.cb_lock (fun () ->
            g.on_terminal item.config (List.rev item.rev_trace))
      | runnable ->
        List.iter
          (fun i ->
            List.iter
              (fun (config', event) ->
                ctx.stats.transitions <- ctx.stats.transitions + 1;
                push_local ctx
                  {
                    config = config';
                    rev_trace = Trace.Sched event :: item.rev_trace;
                    depth = item.depth + 1;
                  })
              (Step.step item.config i))
          runnable;
        if Config.n_crashed item.config < g.max_crashes then
          List.iter
            (fun (config', victim) ->
              ctx.stats.transitions <- ctx.stats.transitions + 1;
              push_local ctx
                {
                  config = config';
                  rev_trace = Trace.Crash victim :: item.rev_trace;
                  depth = item.depth + 1;
                })
            (Step.crash_successors item.config))

let pop_local ctx =
  match ctx.local with
  | [] -> None
  | w :: tl ->
    ctx.local <- tl;
    ctx.local_n <- ctx.local_n - 1;
    Some w

(* Donate the shallow (oldest-pushed) half of the local stack when peers
   are idle: shallow items root larger unexplored subtrees, so donation
   granularity stays coarse.  The idle read is a heuristic — staleness
   only delays a donation by one item. *)
let donate ctx =
  let g = ctx.g in
  if ctx.local_n >= 2 && Atomic.get g.idle > 0 then begin
    let keep_n = ctx.local_n / 2 in
    let rec split i acc l =
      if i = 0 then (List.rev acc, l)
      else
        match l with
        | [] -> (List.rev acc, [])
        | x :: tl -> split (i - 1) (x :: acc) tl
    in
    let kept, given = split keep_n [] ctx.local in
    ctx.local <- kept;
    ctx.local_n <- keep_n;
    with_lock g.qlock (fun () ->
        List.iter (fun w -> Queue.push w g.queue) given;
        Condition.broadcast g.qcond)
  end

(* Blocking take from the shared queue, with idle-counter termination:
   the last domain to go idle on an empty queue declares the search
   finished and wakes everyone. *)
let take_global ctx =
  let g = ctx.g in
  with_lock g.qlock (fun () ->
      let rec loop () =
        if g.finished then None
        else
          match Queue.take_opt g.queue with
          | Some w ->
            ctx.stats.steals <- ctx.stats.steals + 1;
            Some w
          | None ->
            Atomic.incr g.idle;
            if Atomic.get g.idle = g.jobs then begin
              g.finished <- true;
              Condition.broadcast g.qcond;
              None
            end
            else begin
              Condition.wait g.qcond g.qlock;
              Atomic.decr g.idle;
              loop ()
            end
      in
      loop ())

let rec worker ctx =
  if Atomic.get ctx.g.stop <> None then ()
  else
    match pop_local ctx with
    | Some item ->
      (try process ctx item
       with e -> set_stop ctx.g (Callback e));
      donate ctx;
      worker ctx
    | None -> (
      match take_global ctx with
      | Some item ->
        (try process ctx item
         with e -> set_stop ctx.g (Callback e));
        donate ctx;
        worker ctx
      | None -> ())

let merge_stats g (all : dstats list) =
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 all in
  let limit_reason =
    if Atomic.get g.stop = Some Budget then Explore.Max_states
    else if List.exists (fun d -> d.depth_limited) all then Explore.Max_depth
    else Explore.No_limit
  in
  {
    Explore.states = sum (fun d -> d.states);
    transitions = sum (fun d -> d.transitions);
    terminals = sum (fun d -> d.terminals);
    hung_terminals = sum (fun d -> d.hung_terminals);
    crashed_terminals = sum (fun d -> d.crashed_terminals);
    max_depth = List.fold_left (fun acc d -> max acc d.max_depth) 0 all;
    dedup_hits = sum (fun d -> d.dedup_hits);
    sleep_skips = 0;
    cycles = 0;
    limited = limit_reason <> Explore.No_limit;
    limit_reason;
  }

(* Observability: aggregate counters always; one "parallel" event with
   per-domain breakdown when a sink is installed. *)
let m_states = Obs.Metrics.counter "parallel.states"
let m_steals = Obs.Metrics.counter "parallel.steals"
let m_contention = Obs.Metrics.counter "parallel.shard_contention"
let m_searches = Obs.Metrics.counter "parallel.searches"

let emit_obs label g stats (dstats : dstats array) dt =
  Obs.Metrics.incr m_searches;
  Obs.Metrics.add m_states stats.Explore.states;
  Array.iter
    (fun d ->
      Obs.Metrics.add m_steals d.steals;
      Obs.Metrics.add m_contention d.contention)
    dstats;
  let rate = if dt > 0.0 then float_of_int stats.Explore.states /. dt else 0.0 in
  Obs.Metrics.set_gauge "parallel.states_per_sec" rate;
  if Obs.Sink.get () != Obs.Sink.null then
    Obs.Sink.emit "parallel"
      ([
         ("search", Obs.Sink.Str label);
         ("jobs", Obs.Sink.Int g.jobs);
         ("states", Obs.Sink.Int stats.Explore.states);
         ("transitions", Obs.Sink.Int stats.Explore.transitions);
         ("terminals", Obs.Sink.Int stats.Explore.terminals);
         ("dedup_hits", Obs.Sink.Int stats.Explore.dedup_hits);
         ("limited", Obs.Sink.Bool stats.Explore.limited);
         ("seconds", Obs.Sink.Float dt);
         ("states_per_sec", Obs.Sink.Float rate);
       ]
      @ List.concat
          (List.mapi
             (fun i (d : dstats) ->
               let pfx = Printf.sprintf "d%d." i in
               [
                 (pfx ^ "states", Obs.Sink.Int d.states);
                 ( pfx ^ "states_per_sec",
                   Obs.Sink.Float
                     (if d.seconds > 0.0 then
                        float_of_int d.states /. d.seconds
                      else 0.0) );
                 (pfx ^ "steals", Obs.Sink.Int d.steals);
                 (pfx ^ "contention", Obs.Sink.Int d.contention);
               ])
             (Array.to_list dstats)))

let run ?(max_states = 5_000_000) ?(max_depth = 10_000) ?(max_crashes = 0)
    ?(reduction = Explore.no_reduction) ?(paranoid = false) ~jobs ~on_terminal
    ~on_visit label config =
  let jobs = max 1 jobs in
  (* Sleep sets are inherently sequential (see module comment); strip
     them so [reduction] keeps only the symmetry quotient. *)
  let reduction = { reduction with Explore.sleep_sets = false } in
  let g =
    {
      shards =
        Array.init n_shards (fun _ ->
            { lock = Mutex.create (); tbl = Fingerprint.Ktbl.create 1024 });
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      idle = Atomic.make 0;
      finished = false;
      stop = Atomic.make None;
      n_states = Atomic.make 0;
      max_states;
      depth_limit = max_depth;
      max_crashes;
      reduction;
      paranoid;
      jobs;
      cb_lock = Mutex.create ();
      on_terminal;
      on_visit;
    }
  in
  let t0 = Unix.gettimeofday () in
  Queue.push { config; rev_trace = []; depth = 0 } g.queue;
  (* Seed: bounded BFS on the main domain until the frontier is wide
     enough to keep [jobs] domains busy.  The seeder claims and counts
     states through the same [process] path the workers use. *)
  let seed_stats = fresh_dstats () in
  let seed_ctx = { g; stats = seed_stats; local = []; local_n = 0 } in
  let target = 4 * jobs in
  (try
     while
       (not (Queue.is_empty g.queue))
       && Queue.length g.queue < target
       && Atomic.get g.stop = None
     do
       let item = Queue.pop g.queue in
       process seed_ctx item;
       List.iter (fun w -> Queue.push w g.queue) (List.rev seed_ctx.local);
       seed_ctx.local <- [];
       seed_ctx.local_n <- 0
     done
   with e -> set_stop g (Callback e));
  seed_stats.seconds <- Unix.gettimeofday () -. t0;
  let dstats = Array.init jobs (fun _ -> fresh_dstats ()) in
  if (not (Queue.is_empty g.queue)) && Atomic.get g.stop = None then begin
    let domains =
      Array.init jobs (fun i ->
          Domain.spawn (fun () ->
              let w0 = Unix.gettimeofday () in
              let ctx = { g; stats = dstats.(i); local = []; local_n = 0 } in
              worker ctx;
              dstats.(i).seconds <- Unix.gettimeofday () -. w0))
    in
    Array.iter Domain.join domains
  end;
  let dt = Unix.gettimeofday () -. t0 in
  let stats = merge_stats g (seed_stats :: Array.to_list dstats) in
  emit_obs label g stats dstats dt;
  (match Atomic.get g.stop with
  | Some (Callback Stop) | Some Budget | None -> ()
  | Some (Callback e) -> raise e);
  stats

let iter_terminals ?max_states ?max_depth ?max_crashes ?reduction ?paranoid
    ~jobs config ~f =
  run ?max_states ?max_depth ?max_crashes ?reduction ?paranoid ~jobs
    ~on_terminal:f
    ~on_visit:(fun _ _ -> ())
    "iter_terminals" config

let iter_reachable ?max_states ?max_depth ?max_crashes ?reduction ?paranoid
    ~jobs config ~f =
  run ?max_states ?max_depth ?max_crashes ?reduction ?paranoid ~jobs
    ~on_terminal:(fun _ _ -> ())
    ~on_visit:f "iter_reachable" config

let find_terminal ?max_states ?max_depth ?max_crashes ?reduction ?paranoid
    ~jobs config ~violates =
  let found = ref None in
  (* [on_terminal] runs under the callback lock, so the first writer
     wins and the witness is stable once set. *)
  let on_terminal c trace =
    if Option.is_none !found && violates c then begin
      found := Some (c, trace);
      raise Stop
    end
  in
  let stats =
    run ?max_states ?max_depth ?max_crashes ?reduction ?paranoid ~jobs
      ~on_terminal
      ~on_visit:(fun _ _ -> ())
      "find_terminal" config
  in
  (!found, stats)

let check_terminals ?max_states ?max_depth ?max_crashes ?reduction ?paranoid
    ~jobs config ~ok =
  match
    find_terminal ?max_states ?max_depth ?max_crashes ?reduction ?paranoid
      ~jobs config
      ~violates:(fun c -> not (ok c))
  with
  | None, stats -> Ok stats
  | Some (c, trace), stats -> Error (c, trace, stats)

(* Parallel map over an ordinary list: static index partition (item [i]
   goes to domain [i mod jobs]) — the analyzer's per-subject work items
   are few and coarse, so static partitioning is enough.  The first
   exception (in domain order) is re-raised. *)
let map ~jobs f xs =
  let jobs = max 1 jobs in
  if jobs = 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let worker d () =
      let i = ref d in
      while !i < n do
        (out.(!i) <-
           (match f arr.(!i) with
           | y -> Some (Ok y)
           | exception e -> Some (Error e)));
        i := !i + jobs
      done
    in
    let domains =
      Array.init (min jobs (max n 1)) (fun d -> Domain.spawn (worker d))
    in
    Array.iter Domain.join domains;
    Array.to_list out
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise e
         | None -> assert false)
  end
