(* Multicore exploration: a frontier-splitting parallel driver for the
   sequential explorer's transition relation.

   The driver seeds a work frontier by bounded breadth-first search from
   the root (until roughly [4 * jobs] items are pending), distributes the
   frontier round-robin across per-domain Chase–Lev deques ({!Ws_deque}),
   then fans out across [jobs] domains.  Each domain runs depth-first
   search over its own deque (LIFO bottom); a domain whose deque empties
   steals from a randomly chosen victim's top (lock-free CAS).
   Termination is the idle-counter protocol: a domain decrements the idle
   counter {e before} every steal attempt and re-increments on failure,
   so [idle = jobs] can only be observed when every deque is empty and no
   domain holds work — at that point the search space is exhausted.

   Deduplication goes through one of three visited tables ({!visited}):

   - [Lockfree] (default): a single open-addressed claim table
     ({!Claim_table}, [`Two_lane]) storing both fingerprint lanes in
     [Atomic] slot words — CAS claim-once, no mutex on the hot path,
     effective 124-bit keys.
   - [Compressed]: the same claim table in [`Folded] mode — one mixed
     62-bit word per state, half the memory; the birthday collision
     bound is surfaced in [stats.collision_bound].
   - [Sharded]: the historical mutex-sharded [Fingerprint.Ktbl] tables,
     kept as the comparison baseline and as the exact-key path:
     [~paranoid] stores full canonical keys, which only this
     representation can hold, so paranoid runs use it regardless of the
     requested mode.

   A state is {e claimed} exactly once, by whichever domain's claim
   lands first; only the claimer expands the state, so every state is
   expanded at most once and the explored graph is exactly the
   sequential one.

   What is deterministic and what is not (see DESIGN.md "Parallel
   exploration"): [states], [transitions], [terminals], [hung_terminals]
   and [crashed_terminals] are schedule-independent — claim-once
   partitions the same reachable set, and each claimed state contributes
   its fixed out-degree — so they agree with the sequential explorer on
   acyclic state graphs (all one-shot bounded algorithms).  [max_depth],
   [dedup_hits] and the specific witness traces depend on the race for
   claims; checkers built on this module return deterministic verdicts
   with possibly different (equally valid) witnesses.

   Budget exactness: under [Lockfree]/[Compressed] a successful claim
   draws a ticket from the global state counter; tickets below
   [max_states] are counted ([`Fresh]), the first ticket at the budget
   raises the stop flag and is {e not} counted — so a truncated search
   reports exactly [max_states] states, matching the sequential engine
   and the [Sharded] path (which checks the budget under the shard
   lock).

   Reductions: symmetry quotienting composes (the canonical key is
   computed before the claim, so all orbit members race for one slot),
   and so does the source-set partial-order reduction: work items carry
   their sleep set, the visited key is the canonical {e (state, sleep)}
   pair, and expansion ([Explore.source_successors] — the same function
   the sequential DFS runs) is a deterministic function of that pair.
   Claim-once on pairs therefore reproduces the stateless sleep-set
   search tree with identical subtrees shared, whichever domain claims
   each node and however the Chase–Lev steals interleave — a stolen
   frame prunes exactly as an owner-executed one because everything the
   pruning depends on travels inside the work item.  [source_skips] is
   the per-key skip count summed over claimed keys, so it is as
   deterministic as [states] and [transitions].
   Cycle detection is not offered: back-edges are indistinguishable
   from cross-edges without a per-domain DFS stack discipline, so
   revisits count as [dedup_hits]; use the sequential
   [Explore.find_cycle]. *)

module Obs = Subc_obs

exception Stop

type visited = Sharded | Lockfree | Compressed

let pp_visited ppf v =
  Format.pp_print_string ppf
    (match v with
    | Sharded -> "sharded"
    | Lockfree -> "lockfree"
    | Compressed -> "compressed")

(* Process-wide default, settable once by the CLI's [--visited] flag so
   every checker entry point inherits it without plumbing. *)
let default_visited_mode = Atomic.make Lockfree
let set_default_visited v = Atomic.set default_visited_mode v
let default_visited () = Atomic.get default_visited_mode

(* Auto-sequential fallback: on sub-10^4-state spaces the domain spawn +
   steal traffic costs more than the whole search (E21 measures jobs=2 at
   2-8x slower than jobs=1 on such families), so the seeding pass keeps
   going — it runs the identical claim/expand path — until it has counted
   this many states; only spaces that outlive the threshold pay for
   domains.  [SUBC_SEQ_THRESHOLD] overrides (0 restores the old eager
   spawn), as does [?seq_threshold] per call. *)
let default_seq_threshold () =
  match Sys.getenv_opt "SUBC_SEQ_THRESHOLD" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> max 0 n
    | None -> 4096)
  | None -> 4096

(* [sleep] is the node's sleep set in the concrete coordinates of the
   item's configuration — carried in the work item so a stolen subtree
   prunes identically to an owner-executed one.

   The configuration itself travels delta-encoded ([Config.Delta]): under
   the incremental fingerprint mode each push extends the parent's chain
   with the one-proc-slot/one-store-slot patch of its transition, so a
   deque entry retains O(1) fresh words; under [Full] every item is a
   materialized root (the historical representation).  [fp] is the
   state's homomorphic fingerprint patched from the parent's — [Some]
   exactly on the incremental symmetry-off lanes — which lets [claim]
   skip both the materialization and the re-fold on the hot path. *)
type work = {
  delta : Config.Delta.t;
  fp : Fingerprint.t option;
  rev_trace : Trace.event list;
  depth : int;
  sleep : Explore.tr list;
}

type shard = { lock : Mutex.t; tbl : unit Fingerprint.Ktbl.t }

let n_shards = 128

type vtable = Shards of shard array | Claims of Claim_table.t

type stop_cause = Budget | Deadline | Callback of exn

(* Per-domain statistics; merged after join (sums, except [max_depth]). *)
type dstats = {
  mutable states : int;
  mutable transitions : int;
  mutable terminals : int;
  mutable hung_terminals : int;
  mutable crashed_terminals : int;
  mutable recovered_terminals : int;
  mutable max_depth : int;
  mutable dedup_hits : int;
  mutable source_skips : int;
  mutable fp_patches : int;
  mutable fp_refolds : int;
  mutable fp_mismatches : int;
  mutable pushed_items : int;
  mutable pushed_words : int; (* unique-retention estimate of pushed work *)
  mutable depth_limited : bool;
  mutable steals : int;
  mutable contention : int;
  claim : Claim_table.opstats; (* probes + CAS retries, all hot paths *)
  mutable seconds : float;
}

let fresh_dstats () =
  {
    states = 0;
    transitions = 0;
    terminals = 0;
    hung_terminals = 0;
    crashed_terminals = 0;
    recovered_terminals = 0;
    max_depth = 0;
    dedup_hits = 0;
    source_skips = 0;
    fp_patches = 0;
    fp_refolds = 0;
    fp_mismatches = 0;
    pushed_items = 0;
    pushed_words = 0;
    depth_limited = false;
    steals = 0;
    contention = 0;
    claim = Claim_table.fresh_opstats ();
    seconds = 0.0;
  }

type global = {
  table : vtable;
  visited : visited;
  deques : work Ws_deque.t array;
  idle : int Atomic.t;
  finished : bool Atomic.t;
  stop : stop_cause option Atomic.t;
  n_states : int Atomic.t;
  max_states : int;
  depth_limit : int;
  max_crashes : int;
  max_recoveries : int;
  deadline_at : float; (* absolute wall clock, or infinity *)
  (* Collision-bound threshold above which a folded (compressed) claim
     table escalates to two-lane keys; <= 0 disables.  [escalated]
     makes the stderr note and the metric fire once. *)
  escalate_threshold : float;
  escalated : bool Atomic.t;
  reduction : Explore.reduction;
  paranoid : bool;
  fp_mode : Explore.fp_mode;
  (* Peak total deque population, sampled every 256 processed items —
     the frontier-memory gauge's item count. *)
  frontier_peak : int Atomic.t;
  jobs : int;
  cb_lock : Mutex.t;
  on_terminal : Config.t -> Trace.t -> unit;
  on_visit : Config.t -> Trace.t Lazy.t -> unit;
}

type ctx = {
  g : global;
  id : int; (* owner index into [deques]; the seeder uses 0 pre-spawn *)
  stats : dstats;
  commute : Explore.commute_cache; (* per-domain independence memo *)
  mutable rng : int; (* xorshift state for victim selection *)
  mutable tick : int; (* items processed; deadline poll every 256 *)
  push : work -> unit;
}

(* First cause wins; workers poll [stop] between items and inside the
   steal loop, so no wake-up broadcast is needed. *)
let set_stop g cause = ignore (Atomic.compare_and_set g.stop None (Some cause))

(* Claim [config]'s canonical (state, sleep) key.  [`Fresh (pi, sleep)]
   means this domain owns the node and must expand it — [pi] is the
   canonicalizing renaming and [sleep] the enabled-restricted concrete
   sleep set, both fed to [Explore.source_successors]; [`Dup] means
   another claim got there first; [`Budget] means the global state budget
   is exhausted — the node is left uncounted, so a truncated search
   reports exactly [max_states] states, like the sequential explorer. *)
let claim ctx item config =
  let g = ctx.g in
  (* Incremental fast path: the carried fingerprint IS the claim key
     (extended with the relevant sleep when source sets are on), so a
     duplicate is rejected without materializing the delta chain and
     without any re-fold.  Materialization is forced only when the sleep
     restriction needs the configuration, or on the exact/symmetry
     paths. *)
  match g.table with
  | Shards shards ->
    let key, pi, sleep =
      match item.fp with
      | Some f when not g.paranoid ->
        if g.reduction.Explore.source_sets && item.sleep <> [] then
          let fp, pi, sleep =
            Explore.source_fingerprint_from f g.reduction
              ~max_crashes:g.max_crashes (Lazy.force config) ~sleep:item.sleep
          in
          (Fingerprint.Fp fp, pi, sleep)
        else (Fingerprint.Fp f, None, [])
      | _ ->
        Explore.source_key ~paranoid:g.paranoid g.reduction
          ~max_crashes:g.max_crashes (Lazy.force config) ~sleep:item.sleep
    in
    let sh = shards.(Fingerprint.shard_index key mod n_shards) in
    if not (Mutex.try_lock sh.lock) then begin
      ctx.stats.contention <- ctx.stats.contention + 1;
      Mutex.lock sh.lock
    end;
    let r =
      if Fingerprint.Ktbl.mem sh.tbl key then `Dup
      else if Atomic.fetch_and_add g.n_states 1 >= g.max_states then `Budget
      else begin
        Fingerprint.Ktbl.add sh.tbl key ();
        `Fresh (pi, sleep)
      end
    in
    Mutex.unlock sh.lock;
    r
  | Claims t -> (
    let fp, pi, sleep =
      match item.fp with
      | Some f ->
        if g.reduction.Explore.source_sets && item.sleep <> [] then
          Explore.source_fingerprint_from f g.reduction
            ~max_crashes:g.max_crashes (Lazy.force config) ~sleep:item.sleep
        else (f, None, [])
      | None ->
        Explore.source_fingerprint g.reduction ~max_crashes:g.max_crashes
          (Lazy.force config) ~sleep:item.sleep
    in
    match
      Claim_table.claim t ctx.stats.claim ~h1:fp.Fingerprint.h1
        ~h2:fp.Fingerprint.h2
    with
    | `Dup -> `Dup
    | `Fresh ->
      (* Claim first, ticket second: every ticket below the budget goes
         to exactly one successful claim, so the counted states of a
         truncated run are exactly [max_states]. *)
      if Atomic.fetch_and_add g.n_states 1 >= g.max_states then `Budget
      else `Fresh (pi, sleep))

let m_escalated = Obs.Metrics.counter "parallel.visited_escalated"

(* Auto-escalation: every 256 fresh states per domain, if the claim table
   is still folded and the 62-bit birthday bound over the global state
   count has crossed the threshold, flip it to two-lane.  [escalate] is
   idempotent and racing domains are harmless; the note and the metric
   fire once via the [escalated] CAS. *)
let maybe_escalate ctx =
  let g = ctx.g in
  if g.escalate_threshold > 0.0 && ctx.stats.states land 255 = 0 then
    match g.table with
    | Claims t when Claim_table.is_folded t ->
      let n = Atomic.get g.n_states in
      let bound = Explore.collision_bound ~bits:62 ~states:n in
      if bound > g.escalate_threshold then begin
        Claim_table.escalate t;
        if Atomic.compare_and_set g.escalated false true then begin
          Obs.Metrics.incr m_escalated;
          Printf.eprintf
            "subconsensus: compressed visited table escalated to lockfree at \
             %d states (collision bound %.2g > %.2g)\n\
             %!"
            n bound g.escalate_threshold
        end
      end
    | Claims _ | Shards _ -> ()

(* Expand one work item.  Exceptions from user callbacks propagate to the
   caller (the worker loop converts them into a stop cause); no lock is
   held while a callback runs. *)
let process ctx item =
  let g = ctx.g in
  ctx.tick <- ctx.tick + 1;
  if ctx.tick land 255 = 0 then begin
    if g.deadline_at < infinity && Unix.gettimeofday () > g.deadline_at then
      set_stop g Deadline;
    (* Sample the frontier population for the peak gauge. *)
    let sz =
      Array.fold_left (fun acc d -> acc + Ws_deque.size d) 0 g.deques
    in
    let rec bump () =
      let cur = Atomic.get g.frontier_peak in
      if sz > cur && not (Atomic.compare_and_set g.frontier_peak cur sz) then
        bump ()
    in
    bump ()
  end;
  if item.depth > ctx.stats.max_depth then ctx.stats.max_depth <- item.depth;
  if item.depth > g.depth_limit then ctx.stats.depth_limited <- true
  else
    let config = lazy (Config.Delta.materialize item.delta) in
    match claim ctx item config with
    | `Dup -> ctx.stats.dedup_hits <- ctx.stats.dedup_hits + 1
    | `Budget -> set_stop g Budget
    | `Fresh (pi, sleep) ->
      let config = Lazy.force config in
      ctx.stats.states <- ctx.stats.states + 1;
      maybe_escalate ctx;
      (* Paranoid cross-validation of the carried incremental
         fingerprint against a full homomorphic re-fold (mirrors the
         sequential DFS; any mismatch fails the run after the join). *)
      (match item.fp with
      | Some f when g.paranoid ->
        ctx.stats.fp_refolds <- ctx.stats.fp_refolds + 1;
        if not (Fingerprint.equal f (Fingerprint.hom_of_config config)) then
          ctx.stats.fp_mismatches <- ctx.stats.fp_mismatches + 1
      | _ -> ());
      g.on_visit config (lazy (List.rev item.rev_trace));
      (* Terminal for the processes, not necessarily for the search:
         with recovery budget left, the adversary may still revive a
         crashed process (the sequential explorer does the same).  A
         terminal's relevant sleep is empty, so it claims by state alone
         and this fires exactly once per terminal configuration. *)
      if Config.running config = [] then begin
        ctx.stats.terminals <- ctx.stats.terminals + 1;
        if Config.any_hung config then
          ctx.stats.hung_terminals <- ctx.stats.hung_terminals + 1;
        if Config.any_crashed config then
          ctx.stats.crashed_terminals <- ctx.stats.crashed_terminals + 1;
        if Config.any_recovered config then
          ctx.stats.recovered_terminals <- ctx.stats.recovered_terminals + 1;
        Mutex.lock g.cb_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock g.cb_lock)
          (fun () -> g.on_terminal config (List.rev item.rev_trace))
      end;
      (* The same expansion the sequential DFS runs: enabled transition
         bundles in canonical sibling order, each with the sleep set its
         children inherit.  Deterministic per claimed key, so pushes are
         schedule-independent however the deques drain. *)
      let groups, skips =
        Explore.source_successors ctx.commute g.reduction ~pi
          ~max_crashes:g.max_crashes ~max_recoveries:g.max_recoveries config
          ~sleep
      in
      ctx.stats.source_skips <- ctx.stats.source_skips + skips;
      List.iter
        (fun grp ->
          List.iter
            (fun (config', event, slots) ->
              ctx.stats.transitions <- ctx.stats.transitions + 1;
              let fp' =
                match item.fp with
                | None -> None
                | Some f ->
                  ctx.stats.fp_patches <- ctx.stats.fp_patches + 1;
                  Some
                    (Explore.fp_inject_fault
                       (Explore.patched_fingerprint config f slots config'))
              in
              let delta' =
                match g.fp_mode with
                | Explore.Full -> Config.Delta.root config'
                | Explore.Incremental ->
                  let i = slots.Step.sl_proc in
                  Config.Delta.extend item.delta
                    ~proc_sets:[ (i, config'.Config.procs.(i)) ]
                    ~store_sets:slots.Step.sl_store
              in
              ctx.stats.pushed_items <- ctx.stats.pushed_items + 1;
              ctx.stats.pushed_words <-
                ctx.stats.pushed_words + 7 + Config.Delta.approx_words delta';
              ctx.push
                {
                  delta = delta';
                  fp = fp';
                  rev_trace = event :: item.rev_trace;
                  depth = item.depth + 1;
                  sleep = grp.Explore.g_sleep;
                })
            grp.Explore.g_succs)
        groups

let[@inline] next_rand ctx =
  let x = ctx.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  ctx.rng <- (if x = 0 then 0x9E3779B9 else x);
  ctx.rng

(* A victim with apparently pending work, scanning all peers from a
   random start — [None] when every other deque looks empty. *)
let pick_victim ctx =
  let g = ctx.g in
  let n = g.jobs in
  if n <= 1 then None
  else begin
    let start = next_rand ctx mod n in
    let rec go k =
      if k = n then None
      else
        let v = (start + k) mod n in
        if v <> ctx.id && Ws_deque.size g.deques.(v) > 0 then Some v
        else go (k + 1)
    in
    go 0
  end

(* Steal with idle-counter termination.  The domain is counted idle
   whenever it holds no work; it decrements {e before} a steal attempt
   and re-increments on failure, so observing [idle = jobs] proves every
   domain is workless — and a workless owner's deque is empty (only the
   owner pushes), so nothing remains anywhere and the search is done. *)
let acquire ctx =
  let g = ctx.g in
  Atomic.incr g.idle;
  let rec scan () =
    if Atomic.get g.stop <> None || Atomic.get g.finished then begin
      Atomic.decr g.idle;
      None
    end
    else
      match pick_victim ctx with
      | Some v -> (
        Atomic.decr g.idle;
        match Ws_deque.steal g.deques.(v) with
        | `Stolen w ->
          ctx.stats.steals <- ctx.stats.steals + 1;
          Some w
        | `Empty ->
          Atomic.incr g.idle;
          Domain.cpu_relax ();
          scan ()
        | `Retry ->
          ctx.stats.claim.Claim_table.cas_retries <-
            ctx.stats.claim.Claim_table.cas_retries + 1;
          Atomic.incr g.idle;
          scan ())
      | None ->
        if Atomic.get g.idle = g.jobs then begin
          Atomic.set g.finished true;
          Atomic.decr g.idle;
          None
        end
        else begin
          Domain.cpu_relax ();
          scan ()
        end
  in
  scan ()

let rec worker ctx =
  if Atomic.get ctx.g.stop <> None then ()
  else
    match Ws_deque.pop ctx.g.deques.(ctx.id) with
    | Some item ->
      (try process ctx item with e -> set_stop ctx.g (Callback e));
      worker ctx
    | None -> (
      match acquire ctx with
      | Some item ->
        (try process ctx item with e -> set_stop ctx.g (Callback e));
        worker ctx
      | None -> ())

(* Collision bound for a claim table, piecewise after an escalation:
   a state is missed when its words match an earlier entry, so pairs
   whose earlier member sits in a folded segment collide at 2^-62 and
   purely two-lane pairs at 2^-124.  With no escalation this reduces to
   the plain single-width birthday bound. *)
let claims_bound t ~states =
  let nf = min (Claim_table.folded_occupancy t) states in
  let nt = states - nf in
  let fnf = float_of_int nf and fnt = float_of_int nt in
  min 1.0
    ((((fnf *. (fnf -. 1.0) /. 2.0) +. (fnf *. fnt)) *. ldexp 1.0 (-62))
    +. (fnt *. (fnt -. 1.0) /. 2.0 *. ldexp 1.0 (-124)))

let merge_stats g (all : dstats list) =
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 all in
  let limit_reason =
    match Atomic.get g.stop with
    | Some Budget -> Explore.Max_states
    | Some Deadline -> Explore.Deadline
    | Some (Callback _) | None ->
      if List.exists (fun d -> d.depth_limited) all then Explore.Max_depth
      else Explore.No_limit
  in
  let states = sum (fun d -> d.states) in
  let frontier_bytes =
    let items = sum (fun d -> d.pushed_items) in
    if items = 0 then 0
    else
      let words = sum (fun d -> d.pushed_words) in
      let peak = max 1 (Atomic.get g.frontier_peak) in
      int_of_float
        (8.0 *. float_of_int peak
        *. (float_of_int words /. float_of_int items))
  in
  {
    Explore.states;
    frontier_bytes;
    transitions = sum (fun d -> d.transitions);
    terminals = sum (fun d -> d.terminals);
    hung_terminals = sum (fun d -> d.hung_terminals);
    crashed_terminals = sum (fun d -> d.crashed_terminals);
    recovered_terminals = sum (fun d -> d.recovered_terminals);
    max_depth = List.fold_left (fun acc d -> max acc d.max_depth) 0 all;
    dedup_hits = sum (fun d -> d.dedup_hits);
    source_skips = sum (fun d -> d.source_skips);
    cycles = 0;
    collision_bound =
      (if g.paranoid then 0.0
       else
         match g.table with
         | Shards _ ->
           Explore.collision_bound ~bits:Explore.fingerprint_bits ~states
         | Claims t -> claims_bound t ~states);
    limited = Explore.reason_truncates limit_reason;
    limit_reason;
  }

(* Approximate footprint of the visited set, for the bench's
   memory-per-state comparison: analytic for the claim table, a
   bucket+cons+key estimate for the sharded hashtables ([Fp] keys are a
   3-word record; [Exact] keys under paranoid hold whole key trees, not
   counted — paranoid is a debug mode). *)
let visited_bytes g =
  match g.table with
  | Claims t -> Claim_table.memory_bytes t
  | Shards shards ->
    8
    * Array.fold_left
        (fun acc sh ->
          let s = Fingerprint.Ktbl.stats sh.tbl in
          acc + s.Hashtbl.num_buckets + (7 * s.Hashtbl.num_bindings))
        0 shards

(* Observability: aggregate counters always; one "parallel" event with
   per-domain breakdown when a sink is installed. *)
let m_states = Obs.Metrics.counter "parallel.states"
let m_steals = Obs.Metrics.counter "parallel.steals"
let m_probes = Obs.Metrics.counter "parallel.probes"
let m_cas_retries = Obs.Metrics.counter "parallel.cas_retries"
let m_contention = Obs.Metrics.counter "parallel.shard_contention"
let m_source = Obs.Metrics.counter "parallel.source_skips"
let m_searches = Obs.Metrics.counter "parallel.searches"

(* Same interned counters the sequential engine flushes into. *)
let m_fp_patches = Obs.Metrics.counter "fp.patches"
let m_fp_refolds = Obs.Metrics.counter "fp.refolds"
let m_fp_mismatches = Obs.Metrics.counter "fp.paranoid_mismatches"

(* [all] additionally carries the seeding pass's stats: fp patches and
   re-folds happen there too, and the shared fp.* counters must cover
   the whole search (the per-domain d0../steals breakdown below stays
   worker-only). *)
let emit_obs label g stats (dstats : dstats array) ~all dt =
  Obs.Metrics.incr m_searches;
  Obs.Metrics.add m_states stats.Explore.states;
  Obs.Metrics.add m_source stats.Explore.source_skips;
  Array.iter
    (fun d ->
      Obs.Metrics.add m_steals d.steals;
      Obs.Metrics.add m_probes d.claim.Claim_table.probes;
      Obs.Metrics.add m_cas_retries d.claim.Claim_table.cas_retries;
      Obs.Metrics.add m_contention d.contention)
    dstats;
  List.iter
    (fun d ->
      Obs.Metrics.add m_fp_patches d.fp_patches;
      Obs.Metrics.add m_fp_refolds d.fp_refolds;
      Obs.Metrics.add m_fp_mismatches d.fp_mismatches)
    all;
  let rate = if dt > 0.0 then float_of_int stats.Explore.states /. dt else 0.0 in
  Obs.Metrics.set_gauge "parallel.states_per_sec" rate;
  Obs.Metrics.set_gauge "parallel.visited_bytes" (float_of_int (visited_bytes g));
  Obs.Metrics.set_gauge "explore.frontier_bytes"
    (float_of_int stats.Explore.frontier_bytes);
  if Obs.Sink.get () != Obs.Sink.null then
    Obs.Sink.emit "parallel"
      ([
         ("search", Obs.Sink.Str label);
         ("jobs", Obs.Sink.Int g.jobs);
         ("visited", Obs.Sink.Str (Format.asprintf "%a" pp_visited g.visited));
         ("states", Obs.Sink.Int stats.Explore.states);
         ("transitions", Obs.Sink.Int stats.Explore.transitions);
         ("terminals", Obs.Sink.Int stats.Explore.terminals);
         ("dedup_hits", Obs.Sink.Int stats.Explore.dedup_hits);
         ("source_skips", Obs.Sink.Int stats.Explore.source_skips);
         ("collision_bound", Obs.Sink.Float stats.Explore.collision_bound);
         ("limited", Obs.Sink.Bool stats.Explore.limited);
         ("seconds", Obs.Sink.Float dt);
         ("states_per_sec", Obs.Sink.Float rate);
       ]
      @ List.concat
          (List.mapi
             (fun i (d : dstats) ->
               let pfx = Printf.sprintf "d%d." i in
               [
                 (pfx ^ "states", Obs.Sink.Int d.states);
                 ( pfx ^ "states_per_sec",
                   Obs.Sink.Float
                     (if d.seconds > 0.0 then
                        float_of_int d.states /. d.seconds
                      else 0.0) );
                 (pfx ^ "steals", Obs.Sink.Int d.steals);
                 (pfx ^ "probes", Obs.Sink.Int d.claim.Claim_table.probes);
                 ( pfx ^ "cas_retries",
                   Obs.Sink.Int d.claim.Claim_table.cas_retries );
                 (pfx ^ "contention", Obs.Sink.Int d.contention);
               ])
             (Array.to_list dstats)))

let run ?visited ?(max_states = 5_000_000) ?(max_depth = 10_000)
    ?(max_crashes = 0) ?(max_recoveries = 0) ?deadline ?expected_states
    ?(escalate_threshold = 1e-6) ?(reduction = Explore.no_reduction)
    ?(paranoid = false) ?fp ?seed_target ?seq_threshold ~jobs ~on_terminal
    ~on_visit label config =
  let jobs = max 1 jobs in
  let visited =
    match visited with
    | Some v -> v
    | None -> Atomic.get default_visited_mode
  in
  (* Exact canonical keys only fit the hashtable representation, so
     paranoid runs take the sharded path whatever mode was asked for. *)
  let visited = if paranoid then Sharded else visited in
  let fp_mode = match fp with Some m -> m | None -> Explore.default_fp () in
  (* The incremental lanes carry a homomorphic fingerprint only with
     symmetry off (canonical keys go through the orbit minimization);
     under [~paranoid] it is carried for cross-validation while the
     claim keys stay exact. *)
  let root_fp =
    if fp_mode = Explore.Incremental && reduction.Explore.symmetry = None then
      Some (Fingerprint.hom_of_config config)
    else None
  in
  let root =
    {
      delta = Config.Delta.root config;
      fp = root_fp;
      rev_trace = [];
      depth = 0;
      sleep = [];
    }
  in
  (* The auto-sequential fallback threshold, resolved early because it
     also sizes the visited tables: when it is active and no
     [?expected_states] hint says otherwise, the space is presumed small
     until the seeder proves it big, so the tables start tiny (a
     right-sized allocation costs more than the whole search on the
     small spaces the fallback exists for — segment-chained growth
     amortizes the big-space case). *)
  let threshold =
    match seed_target with
    | Some _ -> 0
    | None -> (
      match seq_threshold with
      | Some n -> max 0 n
      | None -> default_seq_threshold ())
  in
  let g =
    {
      table =
        (match visited with
        | Sharded ->
          let shard_slots = if threshold > 0 then 64 else 1024 in
          Shards
            (Array.init n_shards (fun _ ->
                 {
                   lock = Mutex.create ();
                   tbl = Fingerprint.Ktbl.create shard_slots;
                 }))
        | Lockfree | Compressed ->
          let mode =
            match visited with Compressed -> `Folded | _ -> `Two_lane
          in
          Claims
            (match expected_states with
            | Some _ -> Claim_table.create ?expected_states mode
            | None ->
              Claim_table.create
                ~initial_capacity:(if threshold > 0 then 256 else 8192)
                mode));
      visited;
      deques = Array.init jobs (fun _ -> Ws_deque.create ~dummy:root ());
      idle = Atomic.make 0;
      finished = Atomic.make false;
      stop = Atomic.make None;
      n_states = Atomic.make 0;
      max_states;
      depth_limit = max_depth;
      max_crashes;
      max_recoveries;
      deadline_at =
        (match deadline with
        | None -> infinity
        | Some secs -> Unix.gettimeofday () +. secs);
      escalate_threshold;
      escalated = Atomic.make false;
      reduction;
      paranoid;
      fp_mode;
      frontier_peak = Atomic.make 0;
      jobs;
      cb_lock = Mutex.create ();
      on_terminal;
      on_visit;
    }
  in
  let t0 = Unix.gettimeofday () in
  let queue = Queue.create () in
  Queue.push root queue;
  (* Seed: bounded BFS on the main domain until the frontier is wide
     enough to keep [jobs] domains busy.  The seeder claims and counts
     states through the same [process] path the workers use. *)
  let seed_stats = fresh_dstats () in
  if root_fp <> None then seed_stats.fp_refolds <- 1;
  let seed_ctx =
    {
      g;
      id = 0;
      stats = seed_stats;
      commute = Explore.commute_cache ();
      rng = 0x9E3779B9;
      tick = 0;
      push = (fun w -> Queue.push w queue);
    }
  in
  (* [?seed_target] shrinks (or widens) the seeded frontier; the stress
     tests set it to 1 so nearly all distribution happens through steals
     of freshly pushed work rather than the round-robin seeding.  Setting
     it also disables the sequential-fallback threshold — such callers
     want the domains regardless of the space's size. *)
  let target = match seed_target with Some t -> max 1 t | None -> 4 * jobs in
  (try
     while
       (not (Queue.is_empty queue))
       && (Queue.length queue < target || seed_stats.states < threshold)
       && Atomic.get g.stop = None
     do
       process seed_ctx (Queue.pop queue)
     done
   with e -> set_stop g (Callback e));
  Explore.flush_commute_metrics seed_ctx.commute;
  seed_stats.seconds <- Unix.gettimeofday () -. t0;
  let dstats = Array.init jobs (fun _ -> fresh_dstats ()) in
  (* The seeded queue is frontier too: fold it into the peak before the
     per-item sampling takes over. *)
  if Queue.length queue > Atomic.get g.frontier_peak then
    Atomic.set g.frontier_peak (Queue.length queue);
  if (not (Queue.is_empty queue)) && Atomic.get g.stop = None then begin
    (* Distribute the frontier round-robin before spawning: spawn
       provides the happens-before edge publishing the deque contents. *)
    let i = ref 0 in
    Queue.iter
      (fun w ->
        Ws_deque.push g.deques.(!i mod jobs) w;
        incr i)
      queue;
    let domains =
      Array.init jobs (fun i ->
          Domain.spawn (fun () ->
              let w0 = Unix.gettimeofday () in
              let ctx =
                {
                  g;
                  id = i;
                  stats = dstats.(i);
                  commute = Explore.commute_cache ();
                  rng = 0x9E3779B9 * (i + 1);
                  tick = 0;
                  push = (fun w -> Ws_deque.push g.deques.(i) w);
                }
              in
              worker ctx;
              Explore.flush_commute_metrics ctx.commute;
              dstats.(i).seconds <- Unix.gettimeofday () -. w0))
    in
    Array.iter Domain.join domains
  end;
  let dt = Unix.gettimeofday () -. t0 in
  let all = seed_stats :: Array.to_list dstats in
  let stats = merge_stats g all in
  emit_obs label g stats dstats ~all dt;
  (match Atomic.get g.stop with
  | Some (Callback Stop) | Some Budget | Some Deadline | None -> ()
  | Some (Callback e) -> raise e);
  let mismatches = List.fold_left (fun acc d -> acc + d.fp_mismatches) 0 all in
  if mismatches > 0 then
    invalid_arg
      (Printf.sprintf
         "Parallel: %d incremental fingerprint patch(es) disagree with the \
          paranoid re-fold"
         mismatches);
  stats

let iter_terminals ?visited ?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?escalate_threshold ?reduction
    ?paranoid ?fp ?seed_target ?seq_threshold ~jobs config ~f =
  run ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp ?seed_target
    ?seq_threshold ~jobs ~on_terminal:f
    ~on_visit:(fun _ _ -> ())
    "iter_terminals" config

(* Source sets are forced off, exactly as in [Explore.iter_reachable]:
   the reduction's guarantee covers terminals, and reachability callers
   quantify over every intermediate configuration. *)
let iter_reachable ?visited ?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?escalate_threshold ?reduction
    ?paranoid ?fp ?seed_target ?seq_threshold ~jobs config ~f =
  let reduction =
    Option.map (fun r -> { r with Explore.source_sets = false }) reduction
  in
  run ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp ?seed_target
    ?seq_threshold ~jobs
    ~on_terminal:(fun _ _ -> ())
    ~on_visit:f "iter_reachable" config

let find_terminal ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries
    ?deadline ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp
    ?seed_target ?seq_threshold ~jobs config ~violates =
  let found = ref None in
  (* [on_terminal] runs under the callback lock, so the first writer
     wins and the witness is stable once set. *)
  let on_terminal c trace =
    if Option.is_none !found && violates c then begin
      found := Some (c, trace);
      raise Stop
    end
  in
  let stats =
    run ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp
      ?seed_target ?seq_threshold ~jobs ~on_terminal
      ~on_visit:(fun _ _ -> ())
      "find_terminal" config
  in
  (!found, stats)

let check_terminals ?visited ?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?escalate_threshold ?reduction
    ?paranoid ?fp ?seed_target ?seq_threshold ~jobs config ~ok =
  match
    find_terminal ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries
      ?deadline ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp
      ?seed_target ?seq_threshold ~jobs config
      ~violates:(fun c -> not (ok c))
  with
  | None, stats -> Ok stats
  | Some (c, trace), stats -> Error (c, trace, stats)

let map ~jobs f xs = Parmap.map ~jobs f xs
