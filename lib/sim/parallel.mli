(** Multicore state-space exploration.

    Runs the same transition relation as {!Explore} across [jobs] domains:
    a bounded breadth-first pass on the calling domain seeds a frontier of
    roughly [4 * jobs] work items, which then fan out to worker domains
    each running depth-first search over a local stack.  Deduplication
    goes through a visited table sharded by fingerprint prefix (one mutex
    per shard); a state is claimed exactly once, by whichever domain first
    inserts its key, so every state is expanded at most once.  Domains
    whose stacks empty take work from the shared queue; domains that
    observe idle peers donate the shallow half of their stack back.

    {b Determinism.}  On acyclic state graphs (every one-shot bounded
    algorithm in this repository) the merged [states], [transitions],
    [terminals], [hung_terminals] and [crashed_terminals] equal the
    sequential explorer's, independent of scheduling: claim-once yields
    the same reachable set however the race for claims resolves, and each
    claimed state contributes its fixed out-degree.  [max_depth],
    [dedup_hits] and the particular witness traces are racy; checkers
    built on this module return deterministic {e verdicts} with possibly
    different (equally valid) witnesses.  [cycles] and [sleep_skips] are
    always [0] here: back-edges count as [dedup_hits] (use the sequential
    {!Explore.find_cycle} for non-termination hunting).

    {b Reductions.}  Symmetry quotienting composes with parallel search —
    canonicalization happens before the claim, so an orbit's members race
    for a single slot.  Sleep sets are {e forced off}: their
    explored-transition resume protocol is sequential by construction.
    See DESIGN.md, "Parallel exploration".

    {b Callbacks.}  [f] in {!iter_terminals} is serialized under a lock
    (terminals are sparse); [f] in {!iter_reachable} is called
    concurrently from worker domains and must be domain-safe.  A callback
    may raise {!Stop} to end the search gracefully (stats reflect work
    done so far); any other exception aborts the search and is re-raised
    on the calling domain. *)

(** Raise from a callback to stop the search gracefully. *)
exception Stop

val iter_terminals :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  jobs:int ->
  Config.t ->
  f:(Config.t -> Trace.t -> unit) ->
  Explore.stats
(** Parallel {!Explore.iter_terminals}.  [f] sees every reachable terminal
    exactly once (one representative per orbit under symmetry), serialized
    under the callback lock, in a nondeterministic order. *)

val iter_reachable :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  jobs:int ->
  Config.t ->
  f:(Config.t -> Trace.t Lazy.t -> unit) ->
  Explore.stats
(** Parallel {!Explore.iter_reachable}.  [f] runs {e concurrently} on
    worker domains — it must be domain-safe.  Sleep sets are off (they
    are here anyway). *)

val find_terminal :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  jobs:int ->
  Config.t ->
  violates:(Config.t -> bool) ->
  (Config.t * Trace.t) option * Explore.stats
(** Parallel {!Explore.find_terminal}: whether a violating terminal exists
    is deterministic; {e which} one is returned is not. *)

val check_terminals :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  jobs:int ->
  Config.t ->
  ok:(Config.t -> bool) ->
  (Explore.stats, Config.t * Trace.t * Explore.stats) result
(** Parallel {!Explore.check_terminals}: the [Ok]/[Error] outcome is
    deterministic, the counterexample in [Error] need not be. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element across [jobs] domains
    (static index partition), preserving order.  [f] must be domain-safe.
    The first exception raised is re-raised after all domains join.
    [jobs <= 1] is plain [List.map]. *)
