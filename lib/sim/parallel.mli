(** Multicore state-space exploration.

    Runs the same transition relation as {!Explore} across [jobs] domains:
    a bounded breadth-first pass on the calling domain seeds a frontier of
    roughly [4 * jobs] work items ([?seed_target] overrides), distributed
    round-robin across per-domain Chase–Lev work-stealing deques
    ({!Ws_deque}).  Each domain runs depth-first search over its own
    deque; an empty domain steals from a random victim's top with a
    lock-free CAS.  Termination is the idle-counter protocol
    (decrement-before-steal), with no mutex or condition variable
    anywhere on the work path.

    {b Visited tables.}  Deduplication is claim-once through one of three
    representations ({!visited}):

    - [Lockfree] (default): one open-addressed claim table of [Atomic]
      slot words storing both fingerprint lanes (effective 124 bits) —
      CAS claim, linear probing, segment-chained growth with no rehash
      stall ({!Claim_table}).
    - [Compressed]: the claim table in folded mode — a single mixed
      62-bit word per state, about half the memory; the birthday
      collision bound is surfaced in [stats.collision_bound].
    - [Sharded]: the historical 128 mutex-sharded hashtables, kept as
      the measured baseline and as the exact-key representation:
      [~paranoid] runs always use it (full canonical keys, collisions
      impossible).

    A search node is claimed exactly once whichever table is active, so
    every node is expanded at most once and the explored graph is exactly
    the sequential one.

    {b Escalation.}  Under [Compressed], once the 62-bit birthday bound
    over the global state count crosses [?escalate_threshold] (default
    [1e-6]; [<= 0.] disables) the claim table escalates in place to
    two-lane keys: a two-lane head segment is prepended, the folded tail
    keeps serving probes, and [stats.collision_bound] switches to the
    piecewise accounting (folded-era pairs at 2^-62, the rest at
    2^-124).  A one-line note goes to stderr and the
    [parallel.visited_escalated] metrics counter is bumped.

    {b Fault budgets.}  [?max_crashes] and [?max_recoveries] mirror the
    sequential explorer exactly — budget exactness holds at any [jobs]
    because recover successors are pushed by whichever domain claims the
    state, and the recovery count is part of the fingerprint.

    {b Deadline.}  [?deadline] (seconds of wall clock) stops the search
    through the first-cause stop protocol; the merged stats then read
    [limited = true], [limit_reason = Deadline].  Which states were
    visited before the cutoff is scheduling-dependent — a deadline run
    is only ever a {e Limited} answer.

    {b Determinism.}  On acyclic state graphs (every one-shot bounded
    algorithm in this repository) the merged [states], [transitions],
    [terminals], [hung_terminals], [crashed_terminals],
    [recovered_terminals], [dedup_hits] and [source_skips] equal the
    sequential explorer's — at any [jobs], under any of the three visited
    modes: claim-once yields the same claimed-node set however the race
    for claims resolves, and each claimed node contributes an expansion
    that is a pure function of the node.  [max_depth] and the particular
    witness traces are racy; checkers built on this module return
    deterministic {e verdicts} with possibly different (equally valid)
    witnesses.  [cycles] is always [0] here: back-edges count as
    [dedup_hits] (use the sequential {!Explore.find_cycle} for
    non-termination hunting).

    {b Reductions.}  Both reductions compose with work stealing.
    Symmetry quotienting canonicalizes before the claim, so an orbit's
    members race for a single slot.  Source sets ride inside the work
    items: each item carries the sleep set computed at its parent, the
    claim key is the (canonical configuration, canonical relevant sleep)
    pair ({!Explore.source_key}), and expansion calls the same
    {!Explore.source_successors} as the sequential explorer — a pure
    function of the claimed pair under the canonical sibling order.  A
    stolen subtree therefore prunes {e identically} to the subtree the
    victim would have explored, and [source_skips] is deterministic.
    See DESIGN.md, "Source sets under work stealing".

    {b Callbacks.}  [f] in {!iter_terminals} is serialized under a lock
    (terminals are sparse); [f] in {!iter_reachable} is called
    concurrently from worker domains and must be domain-safe.  A callback
    may raise {!Stop} to end the search gracefully (stats reflect work
    done so far); any other exception aborts the search and is re-raised
    on the calling domain. *)

(** Raise from a callback to stop the search gracefully. *)
exception Stop

(** Which visited-table representation deduplicates states. *)
type visited = Sharded | Lockfree | Compressed

val pp_visited : Format.formatter -> visited -> unit

val set_default_visited : visited -> unit
(** Process-wide default for every entry point whose [?visited] is
    omitted (initially [Lockfree]).  The CLI's [--visited] flag sets it
    once at startup so the checkers inherit it without plumbing. *)

val default_visited : unit -> visited

val default_seq_threshold : unit -> int
(** The auto-sequential fallback threshold: the seeding pass (which runs
    the identical claim/expand path on the calling domain) keeps going
    until it has counted this many states before any worker domain is
    spawned, so small state spaces — where E21 measures the spawn + steal
    machinery at 2-8x the cost of the whole search — complete
    sequentially with identical stats.  Defaults to [4096]; the
    [SUBC_SEQ_THRESHOLD] environment variable overrides it process-wide
    ([0] restores the historical eager spawn) and [?seq_threshold]
    overrides it per call.  Passing [?seed_target] disables the fallback:
    those callers want the domains regardless of size. *)

(** Every entry point also takes [?fp], selecting the fingerprint mode
    exactly as in {!Explore} (defaulting to {!Explore.default_fp}).
    Under [Incremental] (symmetry off) work items travel delta-encoded
    ({!Config.Delta}) with a carried homomorphic fingerprint, so a
    duplicate claim needs neither a materialization nor a re-fold; the
    merged stats expose [frontier_bytes] — peak deque population times
    the mean retained words per item. *)

val iter_terminals :
  ?visited:visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  jobs:int ->
  Config.t ->
  f:(Config.t -> Trace.t -> unit) ->
  Explore.stats
(** Parallel {!Explore.iter_terminals}.  [f] sees every reachable terminal
    exactly once (one representative per orbit under symmetry), serialized
    under the callback lock, in a nondeterministic order.  [?seed_target]
    sets the width the sequential seeding pass aims for before handing
    the frontier to the domains (default [4 * jobs], clamped to at least
    [1]); tests force it to [1] to maximize steal pressure. *)

val iter_reachable :
  ?visited:visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  jobs:int ->
  Config.t ->
  f:(Config.t -> Trace.t Lazy.t -> unit) ->
  Explore.stats
(** Parallel {!Explore.iter_reachable}.  [f] runs {e concurrently} on
    worker domains — it must be domain-safe.  Source sets are stripped
    here exactly as in the sequential version: reachability consumers
    want every state, not a reduced cover. *)

val find_terminal :
  ?visited:visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  jobs:int ->
  Config.t ->
  violates:(Config.t -> bool) ->
  (Config.t * Trace.t) option * Explore.stats
(** Parallel {!Explore.find_terminal}: whether a violating terminal exists
    is deterministic; {e which} one is returned is not. *)

val check_terminals :
  ?visited:visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  jobs:int ->
  Config.t ->
  ok:(Config.t -> bool) ->
  (Explore.stats, Config.t * Trace.t * Explore.stats) result
(** Parallel {!Explore.check_terminals}: the [Ok]/[Error] outcome is
    deterministic, the counterexample in [Error] need not be. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element across [jobs] domains
    (static index partition), preserving order.  [f] must be domain-safe.
    The first exception raised is re-raised after all domains join.
    [jobs <= 1] is plain [List.map].  Delegates to {!Parmap.map}. *)
