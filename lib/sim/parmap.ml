(* Domain fan-out over an ordinary list: static index partition (item [i]
   goes to domain [i mod jobs]).  This is the leaf parallel primitive of
   the simulator — it sits below [Symmetry] (parallel orbit minimization)
   and [Parallel] (the exploration engine delegates its [map]), so
   neither creates a dependency cycle.  The work items handed to it are
   few and coarse, so static partitioning is enough.  The first exception
   (in item order) is re-raised after all domains join. *)

let map ~jobs f xs =
  let jobs = max 1 jobs in
  if jobs = 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let out = Array.make n None in
    let worker d () =
      let i = ref d in
      while !i < n do
        (out.(!i) <-
           (match f arr.(!i) with
           | y -> Some (Ok y)
           | exception e -> Some (Error e)));
        i := !i + jobs
      done
    in
    let domains =
      Array.init (min jobs (max n 1)) (fun d -> Domain.spawn (worker d))
    in
    Array.iter Domain.join domains;
    Array.to_list out
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise e
         | None -> assert false)
  end

(* Split [xs] into at most [pieces] contiguous chunks of near-equal
   length, preserving order (chunk boundaries are deterministic — used by
   [Symmetry.canonical_key] so the winning permutation is independent of
   the domain count). *)
let chunk ~pieces xs =
  let n = List.length xs in
  let pieces = max 1 (min pieces n) in
  if pieces = 1 then [ xs ]
  else begin
    let base = n / pieces and extra = n mod pieces in
    let rec take k acc l =
      if k = 0 then (List.rev acc, l)
      else
        match l with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec loop i l =
      if i = pieces then []
      else
        let len = base + if i < extra then 1 else 0 in
        let chunk, rest = take len [] l in
        chunk :: loop (i + 1) rest
    in
    loop 0 xs
  end
