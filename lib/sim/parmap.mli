(** Leaf domain fan-out: parallel [map] over ordinary lists.

    This module exists below {!Symmetry} and {!Parallel} in the
    dependency order, so the parallel orbit minimization and the
    exploration engine can share one primitive without a cycle.
    [Parallel.map] delegates here. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element across [jobs] domains
    (static index partition), preserving order.  [f] must be domain-safe.
    The first exception raised (in item order) is re-raised after all
    domains join.  [jobs <= 1] is plain [List.map]. *)

val chunk : pieces:int -> 'a list -> 'a list list
(** [chunk ~pieces xs] splits [xs] into at most [pieces] contiguous,
    order-preserving chunks of near-equal length.  Deterministic: chunk
    boundaries depend only on [pieces] and [List.length xs]. *)
