(* Partitioned exploration: fingerprint-lane state ownership across N
   partitions, with batched cross-partition frontier exchange and an
   optional out-of-core (mmap-spilled) visited table per partition.

   The layout is the classic distributed model checker's, collapsed into
   one process: every search node is {e owned} by exactly one partition,
   chosen by a pure hash of its claim key (the fingerprint of the
   canonical (state, sleep) pair — with reductions off this is literally
   the state's fingerprint lane).  Each partition owns a private visited
   table — a {!Claim_table} reused unchanged, the sharded exact-key
   representation under [~paranoid], or a {!Spill_table} of mmap'd
   62-bit words under [?spill] — plus [jobs / partitions] worker domains
   with per-worker Chase–Lev deques.  Workers steal only from siblings
   in their own partition; work crosses a partition boundary exactly
   once, as a batch.

   {b Producer-side keys.}  Unlike {!Parallel}, which computes the claim
   key lazily at claim time, the {e producer} of a successor computes
   its claim key (it holds the materialized successor configuration
   anyway, straight out of [Explore.source_successors]) and the routing
   follows from it.  The work item then travels delta-encoded
   ({!Config.Delta}) with the key attached, so the owner claims without
   materializing anything: a duplicate — local or from another
   partition — is rejected on the strength of the carried key alone,
   and a cross-partition item is "rebased to the owner's side" only
   when its claim wins, by materializing the shared immutable delta
   chain.  Pending cross-partition items are additionally deduplicated
   {e inside} each batch buffer by their folded 62-bit word
   ([Claim_table.fold_key]) before they are ever sent: an item whose
   full fingerprint matches a buffered one is dropped and counted as
   the dedup hit it would have become, cutting resident frontier bytes
   without touching the counts (the ROADMAP's "spill rebased delta
   roots to the compressed representation" follow-up).

   {b Batched exchange.}  Each worker keeps one buffer per destination
   partition; a buffer flushes into the destination's mutex-protected
   inbox when it reaches [?batch_size] items (default 64) or when the
   worker goes idle, so a starved partition is never waiting on a
   half-full buffer held by a busy peer — the idle path flushes before
   the worker is allowed to conclude anything about termination.
   Owners drain their inbox into their own deque whenever their deque
   empties.  [partition.batches_sent] and [partition.batch_bytes] count
   the exchange traffic.

   {b Termination: a global credit counter.}  The idle-counter protocol
   of {!Parallel} cannot see work parked in buffers and inboxes, so it
   is folded into a single conservation law: [in_flight] counts every
   work item in existence (deques, batch buffers, inboxes, the seed
   queue), incremented {e before} an item becomes reachable and
   decremented only after it is fully processed (its children counted
   first).  [in_flight = 0] therefore proves global exhaustion — it can
   never be observed while any item exists or is being expanded — and
   an idle worker (empty deque, drained inbox, flushed buffers, failed
   steals) that reads 0 ends the search.  Budget truncation keeps the
   first-cause stop protocol and the claim-first-ticket-second discipline
   of {!Parallel}, so a truncated run reports exactly [max_states]
   states at any partition count.

   {b Determinism.}  The partition tables partition the claim-key space
   by a pure function of the key, so the union of the per-partition
   claim-once sets is exactly the single-table claim-once set; each
   claimed key is expanded by the same pure function
   ([Explore.source_successors] of the canonical pair) whichever
   partition owns it and however batches interleave.  [states],
   [transitions], [terminals], [hung_terminals], [crashed_terminals],
   [recovered_terminals], [dedup_hits] and [source_skips] are therefore
   identical at any [partitions] x [jobs] x reduction x fp mode — the
   property E22 and the partition test matrix assert. *)

module Obs = Subc_obs

exception Stop = Parallel.Stop

type stop_cause = Budget | Deadline | Callback of exn

let n_shards = 32

type shard = { lock : Mutex.t; tbl : unit Fingerprint.Ktbl.t }

type vtable =
  | Shards of shard array
  | Claims of Claim_table.t
  | Spill of Spill_table.t

(* A work item carries everything its owner needs to claim and expand it
   without re-deriving anything: the delta-encoded configuration, the
   carried incremental fingerprint (for paranoid cross-validation and
   O(1) child patching), the precomputed claim key, the canonicalizing
   renaming and enabled-restricted sleep (the [Explore.source_successors]
   inputs), and the owner partition its key routes to. *)
type work = {
  delta : Config.Delta.t;
  fp : Fingerprint.t option;
  ckey : Fingerprint.key;
  owner : int;
  pi : Symmetry.perm option;
  rsleep : Explore.tr list;
  rev_trace : Trace.event list;
  depth : int;
}

type inbox = {
  m : Mutex.t;
  mutable batches : work list list;
  n_items : int Atomic.t; (* lock-free emptiness fast path + sampling *)
}

type part = {
  table : vtable;
  deques : work Ws_deque.t array; (* one per local worker *)
  inbox : inbox;
}

(* Per-worker statistics, merged after the join (sums except
   [max_depth]); the two batch fields feed the partition.* metrics. *)
type dstats = {
  mutable states : int;
  mutable transitions : int;
  mutable terminals : int;
  mutable hung_terminals : int;
  mutable crashed_terminals : int;
  mutable recovered_terminals : int;
  mutable max_depth : int;
  mutable dedup_hits : int;
  mutable source_skips : int;
  mutable fp_patches : int;
  mutable fp_refolds : int;
  mutable fp_mismatches : int;
  mutable pushed_items : int;
  mutable pushed_words : int;
  mutable depth_limited : bool;
  mutable steals : int;
  mutable contention : int;
  mutable batches_sent : int;
  mutable batch_bytes : int;
  claim : Claim_table.opstats;
  mutable seconds : float;
}

let fresh_dstats () =
  {
    states = 0;
    transitions = 0;
    terminals = 0;
    hung_terminals = 0;
    crashed_terminals = 0;
    recovered_terminals = 0;
    max_depth = 0;
    dedup_hits = 0;
    source_skips = 0;
    fp_patches = 0;
    fp_refolds = 0;
    fp_mismatches = 0;
    pushed_items = 0;
    pushed_words = 0;
    depth_limited = false;
    steals = 0;
    contention = 0;
    batches_sent = 0;
    batch_bytes = 0;
    claim = Claim_table.fresh_opstats ();
    seconds = 0.0;
  }

type global = {
  parts : part array;
  n_parts : int;
  jobs_per_part : int;
  batch_size : int;
  spill : string option;
  visited : Parallel.visited;
  stop : stop_cause option Atomic.t;
  finished : bool Atomic.t;
  in_flight : int Atomic.t; (* the credit counter; see the header *)
  n_states : int Atomic.t;
  max_states : int;
  depth_limit : int;
  max_crashes : int;
  max_recoveries : int;
  deadline_at : float;
  escalate_threshold : float;
  escalated : bool Atomic.t;
  reduction : Explore.reduction;
  paranoid : bool;
  fp_mode : Explore.fp_mode;
  frontier_peak : int Atomic.t;
  cb_lock : Mutex.t;
  on_terminal : Config.t -> Trace.t -> unit;
  on_visit : Config.t -> Trace.t Lazy.t -> unit;
}

(* Per-destination batch buffer.  [keys] is the satellite compressed-key
   dedup: folded 62-bit word -> full lanes of the buffered item. *)
type buffer = {
  mutable items : work list;
  mutable count : int;
  mutable words : int;
  keys : (int, int * int) Hashtbl.t;
}

type ctx = {
  g : global;
  pid : int; (* owning partition *)
  wid : int; (* deque index within the partition *)
  stats : dstats;
  commute : Explore.commute_cache;
  bufs : buffer array; (* one per destination; [||] for the seeder *)
  mutable rng : int;
  mutable tick : int;
  mutable route_push : int -> work -> unit; (* owner -> item -> () *)
}

let set_stop g cause = ignore (Atomic.compare_and_set g.stop None (Some cause))

(* Ownership routing: a pure, well-mixed function of the claim key.
   With reductions off the claim key {e is} the state's fingerprint, so
   this is hash-partitioned state ownership by fingerprint lane; under
   reductions it partitions (state, sleep) nodes, which is exactly the
   granularity the claim-once argument needs. *)
let[@inline] route key n =
  if n <= 1 then 0
  else
    let x = Fingerprint.key_hash key in
    Claim_table.fold_key x (x lxor 0x9E3779B97F4A7C5) land max_int mod n

(* The claim key, canonicalizing renaming and restricted sleep of a
   configuration — computed by the producer, which already holds the
   materialized configuration.  Mirrors [Parallel.claim]'s key derivation
   exactly so the claimed-key set (and hence every count) matches. *)
let make_key g fp config ~sleep =
  match fp with
  | Some f when not g.paranoid ->
    if g.reduction.Explore.source_sets && sleep <> [] then
      let fp', pi, rs =
        Explore.source_fingerprint_from f g.reduction
          ~max_crashes:g.max_crashes config ~sleep
      in
      (Fingerprint.Fp fp', pi, rs)
    else (Fingerprint.Fp f, None, [])
  | _ ->
    Explore.source_key ~paranoid:g.paranoid g.reduction
      ~max_crashes:g.max_crashes config ~sleep

(* Claim [item]'s key in its owner partition's table.  Claim first,
   ticket second (on the shared [n_states]): every ticket below the
   budget goes to exactly one successful claim, so a truncated run
   reports exactly [max_states] states — the same discipline at any
   partition count. *)
let claim ctx item =
  let g = ctx.g in
  let ticket () =
    if Atomic.fetch_and_add g.n_states 1 >= g.max_states then `Budget
    else `Fresh
  in
  match (g.parts.(item.owner).table, item.ckey) with
  | Claims t, Fingerprint.Fp f -> (
    match
      Claim_table.claim t ctx.stats.claim ~h1:f.Fingerprint.h1
        ~h2:f.Fingerprint.h2
    with
    | `Dup -> `Dup
    | `Fresh -> ticket ())
  | Spill s, Fingerprint.Fp f -> (
    match
      Spill_table.claim s ctx.stats.claim ~h1:f.Fingerprint.h1
        ~h2:f.Fingerprint.h2
    with
    | `Dup -> `Dup
    | `Fresh -> ticket ())
  | Shards shards, key ->
    let sh = shards.(Fingerprint.shard_index key mod n_shards) in
    if not (Mutex.try_lock sh.lock) then begin
      ctx.stats.contention <- ctx.stats.contention + 1;
      Mutex.lock sh.lock
    end;
    let r =
      if Fingerprint.Ktbl.mem sh.tbl key then `Dup
      else if Atomic.fetch_and_add g.n_states 1 >= g.max_states then `Budget
      else begin
        Fingerprint.Ktbl.add sh.tbl key ();
        `Fresh
      end
    in
    Mutex.unlock sh.lock;
    r
  | (Claims _ | Spill _), Fingerprint.Exact _ ->
    (* Exact keys only arise under [~paranoid], which forces [Shards]. *)
    assert false

let m_escalated = Obs.Metrics.counter "partition.visited_escalated"

(* Compressed-mode auto-escalation, per owner table: same policy as
   {!Parallel.maybe_escalate}, evaluated against the global state count
   (conservative — each table holds a subset). *)
let maybe_escalate ctx owner =
  let g = ctx.g in
  if g.escalate_threshold > 0.0 && ctx.stats.states land 255 = 0 then
    match g.parts.(owner).table with
    | Claims t when Claim_table.is_folded t ->
      let n = Atomic.get g.n_states in
      let bound = Explore.collision_bound ~bits:62 ~states:n in
      if bound > g.escalate_threshold then begin
        Claim_table.escalate t;
        if Atomic.compare_and_set g.escalated false true then begin
          Obs.Metrics.incr m_escalated;
          Printf.eprintf
            "subconsensus: partition %d compressed visited table escalated \
             to lockfree at %d states (collision bound %.2g > %.2g)\n\
             %!"
            owner n bound g.escalate_threshold
        end
      end
    | Claims _ | Shards _ | Spill _ -> ()

(* Flush one destination buffer into its partition's inbox. *)
let flush ctx dest =
  let b = ctx.bufs.(dest) in
  if b.count > 0 then begin
    let inbox = ctx.g.parts.(dest).inbox in
    Mutex.lock inbox.m;
    inbox.batches <- b.items :: inbox.batches;
    Atomic.fetch_and_add inbox.n_items b.count |> ignore;
    Mutex.unlock inbox.m;
    ctx.stats.batches_sent <- ctx.stats.batches_sent + 1;
    (* Item overhead (list cons + record header + key) plus the deltas'
       unique retention — the bytes the batch actually moves. *)
    ctx.stats.batch_bytes <- ctx.stats.batch_bytes + (8 * (b.words + (10 * b.count)));
    b.items <- [];
    b.count <- 0;
    b.words <- 0;
    Hashtbl.reset b.keys
  end

let flush_all ctx =
  Array.iteri (fun dest _ -> flush ctx dest) ctx.bufs

(* Buffer a cross-partition item, deduplicating by compressed key: a
   pending item whose full fingerprint matches a buffered one can only
   become a [`Dup] at the owner, so it is dropped here and counted as
   the dedup hit it would have been — same totals, fewer resident
   items.  Exact (paranoid) keys skip the compression. *)
let buffer_add ctx dest w =
  let b = ctx.bufs.(dest) in
  let dropped =
    match w.ckey with
    | Fingerprint.Fp f -> (
      let folded = Claim_table.fold_key f.Fingerprint.h1 f.Fingerprint.h2 in
      match Hashtbl.find_opt b.keys folded with
      | Some (h1, h2) -> h1 = f.Fingerprint.h1 && h2 = f.Fingerprint.h2
      | None ->
        Hashtbl.add b.keys folded (f.Fingerprint.h1, f.Fingerprint.h2);
        false)
    | Fingerprint.Exact _ -> false
  in
  if dropped then ctx.stats.dedup_hits <- ctx.stats.dedup_hits + 1
  else begin
    Atomic.incr ctx.g.in_flight;
    b.items <- w :: b.items;
    b.count <- b.count + 1;
    b.words <- b.words + 7 + Config.Delta.approx_words w.delta;
    if b.count >= ctx.g.batch_size then flush ctx dest
  end

(* Expand one claimed-or-not work item; the caller decrements
   [in_flight] after this returns (children are counted inside, so the
   counter can never be observed at zero mid-expansion). *)
let process ctx item =
  let g = ctx.g in
  ctx.tick <- ctx.tick + 1;
  if ctx.tick land 255 = 0 then begin
    if g.deadline_at < infinity && Unix.gettimeofday () > g.deadline_at then
      set_stop g Deadline;
    let sz =
      Array.fold_left
        (fun acc (p : part) ->
          Array.fold_left
            (fun a d -> a + Ws_deque.size d)
            (acc + Atomic.get p.inbox.n_items)
            p.deques)
        0 g.parts
    in
    let rec bump () =
      let cur = Atomic.get g.frontier_peak in
      if sz > cur && not (Atomic.compare_and_set g.frontier_peak cur sz) then
        bump ()
    in
    bump ()
  end;
  if item.depth > ctx.stats.max_depth then ctx.stats.max_depth <- item.depth;
  if item.depth > g.depth_limit then ctx.stats.depth_limited <- true
  else
    match claim ctx item with
    | `Dup -> ctx.stats.dedup_hits <- ctx.stats.dedup_hits + 1
    | `Budget -> set_stop g Budget
    | `Fresh ->
      (* Only a winning claim materializes: cross-partition duplicates
         die as carried keys, never as configurations. *)
      let config = Config.Delta.materialize item.delta in
      ctx.stats.states <- ctx.stats.states + 1;
      maybe_escalate ctx item.owner;
      (match item.fp with
      | Some f when g.paranoid ->
        ctx.stats.fp_refolds <- ctx.stats.fp_refolds + 1;
        if not (Fingerprint.equal f (Fingerprint.hom_of_config config)) then
          ctx.stats.fp_mismatches <- ctx.stats.fp_mismatches + 1
      | _ -> ());
      g.on_visit config (lazy (List.rev item.rev_trace));
      if Config.running config = [] then begin
        ctx.stats.terminals <- ctx.stats.terminals + 1;
        if Config.any_hung config then
          ctx.stats.hung_terminals <- ctx.stats.hung_terminals + 1;
        if Config.any_crashed config then
          ctx.stats.crashed_terminals <- ctx.stats.crashed_terminals + 1;
        if Config.any_recovered config then
          ctx.stats.recovered_terminals <- ctx.stats.recovered_terminals + 1;
        Mutex.lock g.cb_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock g.cb_lock)
          (fun () -> g.on_terminal config (List.rev item.rev_trace))
      end;
      let groups, skips =
        Explore.source_successors ctx.commute g.reduction ~pi:item.pi
          ~max_crashes:g.max_crashes ~max_recoveries:g.max_recoveries config
          ~sleep:item.rsleep
      in
      ctx.stats.source_skips <- ctx.stats.source_skips + skips;
      List.iter
        (fun grp ->
          List.iter
            (fun (config', event, slots) ->
              ctx.stats.transitions <- ctx.stats.transitions + 1;
              let fp' =
                match item.fp with
                | None -> None
                | Some f ->
                  ctx.stats.fp_patches <- ctx.stats.fp_patches + 1;
                  Some
                    (Explore.fp_inject_fault
                       (Explore.patched_fingerprint config f slots config'))
              in
              let delta' =
                match g.fp_mode with
                | Explore.Full -> Config.Delta.root config'
                | Explore.Incremental ->
                  let i = slots.Step.sl_proc in
                  Config.Delta.extend item.delta
                    ~proc_sets:[ (i, config'.Config.procs.(i)) ]
                    ~store_sets:slots.Step.sl_store
              in
              let ckey, pi, rsleep =
                make_key g fp' config' ~sleep:grp.Explore.g_sleep
              in
              let owner = route ckey g.n_parts in
              ctx.stats.pushed_items <- ctx.stats.pushed_items + 1;
              ctx.stats.pushed_words <-
                ctx.stats.pushed_words + 7 + Config.Delta.approx_words delta';
              ctx.route_push owner
                {
                  delta = delta';
                  fp = fp';
                  ckey;
                  owner;
                  pi;
                  rsleep;
                  rev_trace = event :: item.rev_trace;
                  depth = item.depth + 1;
                })
            grp.Explore.g_succs)
        groups

(* Drain this partition's inbox into the calling worker's own deque.
   Returns whether anything arrived. *)
let drain_inbox ctx =
  let inbox = ctx.g.parts.(ctx.pid).inbox in
  if Atomic.get inbox.n_items = 0 then false
  else begin
    Mutex.lock inbox.m;
    let batches = inbox.batches in
    inbox.batches <- [];
    Atomic.set inbox.n_items 0;
    Mutex.unlock inbox.m;
    match batches with
    | [] -> false
    | _ ->
      let deque = ctx.g.parts.(ctx.pid).deques.(ctx.wid) in
      List.iter (List.iter (fun w -> Ws_deque.push deque w)) batches;
      true
  end

let[@inline] next_rand ctx =
  let x = ctx.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  ctx.rng <- (if x = 0 then 0x9E3779B9 else x);
  ctx.rng

(* One steal sweep over the sibling deques of this partition (ownership
   confines stealing: cross-partition work moves only through batches).
   [None] after a full unsuccessful sweep — the worker's outer loop
   re-checks the inbox and the credit counter and spins. *)
let steal ctx =
  let deques = ctx.g.parts.(ctx.pid).deques in
  let n = Array.length deques in
  if n <= 1 then None
  else begin
    let start = next_rand ctx mod n in
    let rec go k =
      if k = n then None
      else
        let v = (start + k) mod n in
        if v = ctx.wid || Ws_deque.size deques.(v) = 0 then go (k + 1)
        else
          match Ws_deque.steal deques.(v) with
          | `Stolen w ->
            ctx.stats.steals <- ctx.stats.steals + 1;
            Some w
          | `Empty -> go (k + 1)
          | `Retry ->
            ctx.stats.claim.Claim_table.cas_retries <-
              ctx.stats.claim.Claim_table.cas_retries + 1;
            go k
    in
    go 0
  end

let rec worker ctx =
  let g = ctx.g in
  if Atomic.get g.stop <> None || Atomic.get g.finished then ()
  else
    match Ws_deque.pop g.parts.(ctx.pid).deques.(ctx.wid) with
    | Some item ->
      (try process ctx item with e -> set_stop g (Callback e));
      Atomic.decr g.in_flight;
      worker ctx
    | None ->
      if drain_inbox ctx then worker ctx
      else begin
        (* Idle: publish everything we are holding before drawing any
           conclusion — a buffered batch must not starve its owner. *)
        flush_all ctx;
        match steal ctx with
        | Some item ->
          (try process ctx item with e -> set_stop g (Callback e));
          Atomic.decr g.in_flight;
          worker ctx
        | None ->
          if Atomic.get g.in_flight = 0 then Atomic.set g.finished true
          else Domain.cpu_relax ();
          worker ctx
      end

(* Piecewise collision bound of one claim table (same accounting as
   {!Parallel}); summed over partitions — keys never compare across
   tables, so the per-table pair bounds union-bound the whole run. *)
let claims_bound t ~states =
  let nf = min (Claim_table.folded_occupancy t) states in
  let nt = states - nf in
  let fnf = float_of_int nf and fnt = float_of_int nt in
  min 1.0
    ((((fnf *. (fnf -. 1.0) /. 2.0) +. (fnf *. fnt)) *. ldexp 1.0 (-62))
    +. (fnt *. (fnt -. 1.0) /. 2.0 *. ldexp 1.0 (-124)))

let collision_bound g ~states =
  if g.paranoid then 0.0
  else
    min 1.0
      (Array.fold_left
         (fun acc p ->
           acc
           +.
           match p.table with
           | Shards _ ->
             (* Conservative: charge the whole run at the fingerprint
                width (pairs across partitions never actually meet). *)
             Explore.collision_bound ~bits:Explore.fingerprint_bits ~states
             /. float_of_int g.n_parts
           | Claims t ->
             claims_bound t ~states:(min states (Claim_table.occupancy t))
           | Spill s ->
             Explore.collision_bound ~bits:62
               ~states:(Spill_table.occupancy s))
         0.0 g.parts)

let visited_bytes g =
  Array.fold_left
    (fun acc p ->
      acc
      +
      match p.table with
      | Claims t -> Claim_table.memory_bytes t
      | Spill s -> Spill_table.memory_bytes s
      | Shards shards ->
        8
        * Array.fold_left
            (fun a sh ->
              let s = Fingerprint.Ktbl.stats sh.tbl in
              a + s.Hashtbl.num_buckets + (7 * s.Hashtbl.num_bindings))
            0 shards)
    0 g.parts

let spill_bytes g =
  Array.fold_left
    (fun acc p ->
      acc + match p.table with Spill s -> Spill_table.spill_bytes s | _ -> 0)
    0 g.parts

let merge_stats g (all : dstats list) =
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 all in
  let limit_reason =
    match Atomic.get g.stop with
    | Some Budget -> Explore.Max_states
    | Some Deadline -> Explore.Deadline
    | Some (Callback _) | None ->
      if List.exists (fun d -> d.depth_limited) all then Explore.Max_depth
      else Explore.No_limit
  in
  let states = sum (fun d -> d.states) in
  let frontier_bytes =
    let items = sum (fun d -> d.pushed_items) in
    if items = 0 then 0
    else
      let words = sum (fun d -> d.pushed_words) in
      let peak = max 1 (Atomic.get g.frontier_peak) in
      int_of_float
        (8.0 *. float_of_int peak
        *. (float_of_int words /. float_of_int items))
  in
  {
    Explore.states;
    frontier_bytes;
    transitions = sum (fun d -> d.transitions);
    terminals = sum (fun d -> d.terminals);
    hung_terminals = sum (fun d -> d.hung_terminals);
    crashed_terminals = sum (fun d -> d.crashed_terminals);
    recovered_terminals = sum (fun d -> d.recovered_terminals);
    max_depth = List.fold_left (fun acc d -> max acc d.max_depth) 0 all;
    dedup_hits = sum (fun d -> d.dedup_hits);
    source_skips = sum (fun d -> d.source_skips);
    cycles = 0;
    collision_bound = collision_bound g ~states;
    limited = Explore.reason_truncates limit_reason;
    limit_reason;
  }

let m_searches = Obs.Metrics.counter "partition.searches"
let m_states = Obs.Metrics.counter "partition.states"
let m_batches_sent = Obs.Metrics.counter "partition.batches_sent"
let m_batch_bytes = Obs.Metrics.counter "partition.batch_bytes"
let m_spill_bytes = Obs.Metrics.counter "partition.spill_bytes"
let m_spill_probes = Obs.Metrics.counter "partition.spill_probes"
let m_steals = Obs.Metrics.counter "partition.steals"
let m_fp_patches = Obs.Metrics.counter "fp.patches"
let m_fp_refolds = Obs.Metrics.counter "fp.refolds"
let m_fp_mismatches = Obs.Metrics.counter "fp.paranoid_mismatches"

let emit_obs label g stats ~all dt =
  Obs.Metrics.incr m_searches;
  Obs.Metrics.add m_states stats.Explore.states;
  let spilling = g.spill <> None && not g.paranoid in
  List.iter
    (fun d ->
      Obs.Metrics.add m_batches_sent d.batches_sent;
      Obs.Metrics.add m_batch_bytes d.batch_bytes;
      Obs.Metrics.add m_steals d.steals;
      if spilling then
        Obs.Metrics.add m_spill_probes d.claim.Claim_table.probes;
      Obs.Metrics.add m_fp_patches d.fp_patches;
      Obs.Metrics.add m_fp_refolds d.fp_refolds;
      Obs.Metrics.add m_fp_mismatches d.fp_mismatches)
    all;
  Obs.Metrics.add m_spill_bytes (spill_bytes g);
  let rate = if dt > 0.0 then float_of_int stats.Explore.states /. dt else 0.0 in
  Obs.Metrics.set_gauge "partition.states_per_sec" rate;
  Obs.Metrics.set_gauge "partition.visited_bytes"
    (float_of_int (visited_bytes g));
  Obs.Metrics.set_gauge "partition.spill_bytes_gauge"
    (float_of_int (spill_bytes g));
  Obs.Metrics.set_gauge "explore.frontier_bytes"
    (float_of_int stats.Explore.frontier_bytes);
  if Obs.Sink.get () != Obs.Sink.null then
    Obs.Sink.emit "partition"
      [
        ("search", Obs.Sink.Str label);
        ("partitions", Obs.Sink.Int g.n_parts);
        ("jobs_per_partition", Obs.Sink.Int g.jobs_per_part);
        ("visited", Obs.Sink.Str
           (if spilling then "spill"
            else Format.asprintf "%a" Parallel.pp_visited g.visited));
        ("states", Obs.Sink.Int stats.Explore.states);
        ("transitions", Obs.Sink.Int stats.Explore.transitions);
        ("terminals", Obs.Sink.Int stats.Explore.terminals);
        ("dedup_hits", Obs.Sink.Int stats.Explore.dedup_hits);
        ("source_skips", Obs.Sink.Int stats.Explore.source_skips);
        ("batches_sent", Obs.Sink.Int (List.fold_left (fun a d -> a + d.batches_sent) 0 all));
        ("batch_bytes", Obs.Sink.Int (List.fold_left (fun a d -> a + d.batch_bytes) 0 all));
        ("contention", Obs.Sink.Int (List.fold_left (fun a d -> a + d.contention) 0 all));
        ("worker_seconds", Obs.Sink.Float (List.fold_left (fun a d -> max a d.seconds) 0.0 all));
        ("visited_bytes", Obs.Sink.Int (visited_bytes g));
        ("spill_bytes", Obs.Sink.Int (spill_bytes g));
        ("collision_bound", Obs.Sink.Float stats.Explore.collision_bound);
        ("limited", Obs.Sink.Bool stats.Explore.limited);
        ("seconds", Obs.Sink.Float dt);
        ("states_per_sec", Obs.Sink.Float rate);
      ]

let fresh_buffers n =
  Array.init n (fun _ ->
      { items = []; count = 0; words = 0; keys = Hashtbl.create 64 })

let run ?visited ?(max_states = 5_000_000) ?(max_depth = 10_000)
    ?(max_crashes = 0) ?(max_recoveries = 0) ?deadline ?expected_states
    ?(escalate_threshold = 1e-6) ?(reduction = Explore.no_reduction)
    ?(paranoid = false) ?fp ?seed_target ?seq_threshold ?(batch_size = 64)
    ?spill ~partitions ~jobs ~on_terminal ~on_visit label config =
  let n_parts = max 1 partitions in
  let jobs_per_part = max 1 (max 1 jobs / n_parts) in
  let n_workers = n_parts * jobs_per_part in
  let visited =
    match visited with Some v -> v | None -> Parallel.default_visited ()
  in
  (* Exact canonical keys under [~paranoid] only fit the hashtable
     representation — it wins over both the visited mode and [?spill],
     exactly as in {!Parallel}. *)
  let visited = if paranoid then Parallel.Sharded else visited in
  let fp_mode = match fp with Some m -> m | None -> Explore.default_fp () in
  let root_fp =
    if fp_mode = Explore.Incremental && reduction.Explore.symmetry = None then
      Some (Fingerprint.hom_of_config config)
    else None
  in
  (* Resolved before the tables because it also sizes them: with the
     auto-sequential fallback active and no [?expected_states] hint the
     space is presumed small until the seeder proves it big, so each
     partition's table starts tiny (segment-chained growth amortizes the
     big-space case; see the matching note in {!Parallel.run}). *)
  let threshold =
    match seed_target with
    | Some _ -> 0
    | None -> (
      match seq_threshold with
      | Some n -> max 0 n
      | None -> Parallel.default_seq_threshold ())
  in
  let shard_slots = if threshold > 0 then 64 else 1024 in
  let make_table pid =
    if paranoid then
      Shards
        (Array.init n_shards (fun _ ->
             {
               lock = Mutex.create ();
               tbl = Fingerprint.Ktbl.create shard_slots;
             }))
    else
      match spill with
      | Some dir ->
        Spill
          (Spill_table.create
             ?expected_states:
               (Option.map (fun n -> max 64 (n / n_parts)) expected_states)
             ~dir ~part:pid ())
      | None -> (
        match visited with
        | Parallel.Sharded ->
          Shards
            (Array.init n_shards (fun _ ->
                 {
                   lock = Mutex.create ();
                   tbl = Fingerprint.Ktbl.create shard_slots;
                 }))
        | Parallel.Lockfree | Parallel.Compressed ->
          let mode =
            match visited with Parallel.Compressed -> `Folded | _ -> `Two_lane
          in
          Claims
            (match expected_states with
            | Some n ->
              Claim_table.create ~expected_states:(max 64 (n / n_parts)) mode
            | None ->
              Claim_table.create
                ~initial_capacity:
                  (if threshold > 0 then 256 else max 256 (8192 / n_parts))
                mode))
  in
  let g =
    {
      parts =
        Array.init n_parts (fun pid ->
            {
              table = make_table pid;
              deques = [||] (* placed after the root exists, for ~dummy *);
              inbox =
                { m = Mutex.create (); batches = []; n_items = Atomic.make 0 };
            });
      n_parts;
      jobs_per_part;
      batch_size = max 1 batch_size;
      spill;
      visited;
      stop = Atomic.make None;
      finished = Atomic.make false;
      in_flight = Atomic.make 1 (* the root *);
      n_states = Atomic.make 0;
      max_states;
      depth_limit = max_depth;
      max_crashes;
      max_recoveries;
      deadline_at =
        (match deadline with
        | None -> infinity
        | Some secs -> Unix.gettimeofday () +. secs);
      escalate_threshold;
      escalated = Atomic.make false;
      reduction;
      paranoid;
      fp_mode;
      frontier_peak = Atomic.make 0;
      cb_lock = Mutex.create ();
      on_terminal;
      on_visit;
    }
  in
  let rkey, rpi, rsleep =
    make_key g root_fp config ~sleep:[]
  in
  let root =
    {
      delta = Config.Delta.root config;
      fp = root_fp;
      ckey = rkey;
      owner = route rkey n_parts;
      pi = rpi;
      rsleep;
      rev_trace = [];
      depth = 0;
    }
  in
  let parts =
    Array.map
      (fun p ->
        {
          p with
          deques =
            Array.init jobs_per_part (fun _ -> Ws_deque.create ~dummy:root ());
        })
      g.parts
  in
  let g = { g with parts } in
  let t0 = Unix.gettimeofday () in
  let queue = Queue.create () in
  Queue.push root queue;
  (* Seed: bounded BFS on the main domain, claiming into each item's
     owner table (single-threaded, so no batching is needed yet), until
     the frontier is wide enough for every worker {e and} the
     sequential-fallback threshold is crossed — spaces smaller than the
     threshold finish right here and never pay a domain spawn
     ([threshold] was resolved above, where it sized the tables). *)
  let target =
    match seed_target with Some t -> max 1 t | None -> 4 * n_workers
  in
  let seed_stats = fresh_dstats () in
  if root_fp <> None then seed_stats.fp_refolds <- 1;
  let seed_ctx =
    {
      g;
      pid = 0;
      wid = 0;
      stats = seed_stats;
      commute = Explore.commute_cache ();
      bufs = [||];
      rng = 0x9E3779B9;
      tick = 0;
      route_push = (fun _ _ -> assert false);
    }
  in
  seed_ctx.route_push <-
    (fun _ w ->
      Atomic.incr g.in_flight;
      Queue.push w queue);
  (try
     while
       (not (Queue.is_empty queue))
       && (Queue.length queue < target || seed_stats.states < threshold)
       && Atomic.get g.stop = None
     do
       let item = Queue.pop queue in
       process seed_ctx item;
       Atomic.decr g.in_flight
     done
   with e -> set_stop g (Callback e));
  Explore.flush_commute_metrics seed_ctx.commute;
  seed_stats.seconds <- Unix.gettimeofday () -. t0;
  let dstats = Array.init n_workers (fun _ -> fresh_dstats ()) in
  if Queue.length queue > Atomic.get g.frontier_peak then
    Atomic.set g.frontier_peak (Queue.length queue);
  if (not (Queue.is_empty queue)) && Atomic.get g.stop = None then begin
    (* Hand the remaining frontier to its owners — each item goes to its
       owner partition, round-robin across that partition's workers;
       spawn publishes the deque contents. *)
    let rr = Array.make n_parts 0 in
    Queue.iter
      (fun w ->
        let p = w.owner in
        Ws_deque.push g.parts.(p).deques.(rr.(p) mod jobs_per_part) w;
        rr.(p) <- rr.(p) + 1)
      queue;
    let domains =
      Array.init n_workers (fun i ->
          Domain.spawn (fun () ->
              let w0 = Unix.gettimeofday () in
              let pid = i / jobs_per_part and wid = i mod jobs_per_part in
              let ctx =
                {
                  g;
                  pid;
                  wid;
                  stats = dstats.(i);
                  commute = Explore.commute_cache ();
                  bufs = fresh_buffers n_parts;
                  rng = 0x9E3779B9 * (i + 1);
                  tick = 0;
                  route_push = (fun _ _ -> assert false);
                }
              in
              ctx.route_push <-
                (fun owner w ->
                  if owner = pid then begin
                    Atomic.incr g.in_flight;
                    Ws_deque.push g.parts.(pid).deques.(wid) w
                  end
                  else buffer_add ctx owner w);
              worker ctx;
              Explore.flush_commute_metrics ctx.commute;
              dstats.(i).seconds <- Unix.gettimeofday () -. w0))
    in
    Array.iter Domain.join domains
  end;
  let dt = Unix.gettimeofday () -. t0 in
  let all = seed_stats :: Array.to_list dstats in
  let stats = merge_stats g all in
  emit_obs label g stats ~all dt;
  (match Atomic.get g.stop with
  | Some (Callback Stop) | Some Budget | Some Deadline | None -> ()
  | Some (Callback e) -> raise e);
  let mismatches = List.fold_left (fun acc d -> acc + d.fp_mismatches) 0 all in
  if mismatches > 0 then
    invalid_arg
      (Printf.sprintf
         "Partition: %d incremental fingerprint patch(es) disagree with the \
          paranoid re-fold"
         mismatches);
  stats

let iter_terminals ?visited ?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?escalate_threshold ?reduction
    ?paranoid ?fp ?seed_target ?seq_threshold ?batch_size ?spill ~partitions
    ~jobs config ~f =
  run ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp ?seed_target
    ?seq_threshold ?batch_size ?spill ~partitions ~jobs ~on_terminal:f
    ~on_visit:(fun _ _ -> ())
    "iter_terminals" config

let iter_reachable ?visited ?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?escalate_threshold ?reduction
    ?paranoid ?fp ?seed_target ?seq_threshold ?batch_size ?spill ~partitions
    ~jobs config ~f =
  (* Source sets are stripped exactly as in {!Explore.iter_reachable}:
     reachability consumers quantify over every configuration. *)
  let reduction =
    Option.map (fun r -> { r with Explore.source_sets = false }) reduction
  in
  run ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp ?seed_target
    ?seq_threshold ?batch_size ?spill ~partitions ~jobs
    ~on_terminal:(fun _ _ -> ())
    ~on_visit:f "iter_reachable" config

let find_terminal ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries
    ?deadline ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp
    ?seed_target ?seq_threshold ?batch_size ?spill ~partitions ~jobs config
    ~violates =
  let found = ref None in
  let on_terminal c trace =
    if Option.is_none !found && violates c then begin
      found := Some (c, trace);
      raise Stop
    end
  in
  let stats =
    run ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
      ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp
      ?seed_target ?seq_threshold ?batch_size ?spill ~partitions ~jobs
      ~on_terminal
      ~on_visit:(fun _ _ -> ())
      "find_terminal" config
  in
  (!found, stats)

let check_terminals ?visited ?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?escalate_threshold ?reduction
    ?paranoid ?fp ?seed_target ?seq_threshold ?batch_size ?spill ~partitions
    ~jobs config ~ok =
  match
    find_terminal ?visited ?max_states ?max_depth ?max_crashes ?max_recoveries
      ?deadline ?expected_states ?escalate_threshold ?reduction ?paranoid ?fp
      ?seed_target ?seq_threshold ?batch_size ?spill ~partitions ~jobs config
      ~violates:(fun c -> not (ok c))
  with
  | None, stats -> Ok stats
  | Some (c, trace), stats -> Error (c, trace, stats)
