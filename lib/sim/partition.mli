(** Partitioned (optionally out-of-core) state-space exploration.

    Extends {!Parallel}'s claim-once multicore driver with hash-partitioned
    state {e ownership}: every search node belongs to exactly one of
    [partitions] partitions, chosen by a pure hash of its claim key — with
    reductions off, literally its fingerprint lane.  Each partition owns a
    private visited table (a {!Claim_table} reused unchanged, the sharded
    exact-key representation under [~paranoid], or an mmap-spilled
    {!Spill_table} under [?spill]) and [jobs / partitions] worker domains
    with per-worker Chase–Lev deques; work stealing stays {e within} a
    partition, and work crosses partitions only as batches.

    {b Batched exchange.}  A successor owned by another partition is
    accumulated into a per-worker, per-destination buffer of delta-encoded
    items ({!Config.Delta}, rebased to the owner's side only if its claim
    wins) and flushed into the destination's inbox at [?batch_size] items
    (default [64]) or whenever the sending worker goes idle — so no
    partition can be starved by a half-full buffer.  Pending batch items
    are deduplicated by their folded 62-bit compressed key before sending;
    a dropped item is counted as the [dedup_hits] it would have become,
    so counts are unchanged.  Traffic is surfaced as the
    [partition.batches_sent] and [partition.batch_bytes] metrics.

    {b Termination.}  The idle-counter protocol is folded into a single
    global credit counter: [in_flight] counts every live work item
    (deques, buffers, inboxes, the seed queue), incremented before an item
    becomes reachable and decremented only after its expansion completes.
    Reading [0] proves exhaustion.  Budget truncation keeps {!Parallel}'s
    claim-first-ticket-second discipline on one shared state counter, so a
    truncated run reports exactly [max_states] states at any partition
    count, with the same first-cause stop protocol.

    {b Out-of-core mode.}  [?spill] gives a directory under which each
    partition maps its visited set as a file of 62-bit compressed claim
    words ({!Spill_table}) — heap residency drops to bookkeeping
    ([partition.visited_bytes] gauge) while the mapped bytes
    ([partition.spill_bytes]) are file-backed and evictable.  Collision
    characteristics match [--visited compressed] and are surfaced through
    [stats.collision_bound].  [~paranoid] overrides [?spill] (exact keys
    cannot be compressed).

    {b Determinism.}  The partition tables partition the claim-key space
    by a pure function of the key, so the union of per-partition
    claim-once sets is exactly the single-table claim-once set, and each
    claimed node is expanded by the same pure function whichever partition
    owns it.  [states], [transitions], [terminals], [hung_terminals],
    [crashed_terminals], [recovered_terminals], [dedup_hits] and
    [source_skips] are identical at any [partitions] x [jobs] x reduction
    x fingerprint mode — and equal to {!Explore} and {!Parallel} on the
    acyclic graphs this repository checks.  See DESIGN.md, "Partitioned
    ownership and out-of-core tables".

    [partitions <= 1] still runs this engine (one partition, no exchange);
    {!Search} dispatches here only when partitioning or spilling is
    requested, so the plain parallel path keeps {!Parallel}'s zero-batch
    overhead. *)

(** Raise from a callback to stop the search gracefully (the same
    exception as {!Parallel.Stop}, so callbacks work under either
    engine). *)
exception Stop

val iter_terminals :
  ?visited:Parallel.visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  ?batch_size:int ->
  ?spill:string ->
  partitions:int ->
  jobs:int ->
  Config.t ->
  f:(Config.t -> Trace.t -> unit) ->
  Explore.stats
(** Partitioned {!Parallel.iter_terminals}.  [f] sees every reachable
    terminal exactly once, serialized under the callback lock.  [jobs] is
    the {e total} domain count, split evenly across partitions (at least
    one worker each).  [?seq_threshold] is the auto-sequential fallback
    exactly as in {!Parallel} ({!Parallel.default_seq_threshold}). *)

val iter_reachable :
  ?visited:Parallel.visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  ?batch_size:int ->
  ?spill:string ->
  partitions:int ->
  jobs:int ->
  Config.t ->
  f:(Config.t -> Trace.t Lazy.t -> unit) ->
  Explore.stats
(** Partitioned {!Parallel.iter_reachable}; [f] runs concurrently on
    worker domains and must be domain-safe.  Source sets are stripped
    exactly as in the sequential version. *)

val find_terminal :
  ?visited:Parallel.visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  ?batch_size:int ->
  ?spill:string ->
  partitions:int ->
  jobs:int ->
  Config.t ->
  violates:(Config.t -> bool) ->
  (Config.t * Trace.t) option * Explore.stats
(** Partitioned {!Parallel.find_terminal}: whether a violating terminal
    exists is deterministic; which one is returned is not. *)

val check_terminals :
  ?visited:Parallel.visited ->
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?escalate_threshold:float ->
  ?reduction:Explore.reduction ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?seed_target:int ->
  ?seq_threshold:int ->
  ?batch_size:int ->
  ?spill:string ->
  partitions:int ->
  jobs:int ->
  Config.t ->
  ok:(Config.t -> bool) ->
  (Explore.stats, Config.t * Trace.t * Explore.stats) result
(** Partitioned {!Parallel.check_terminals}: the [Ok]/[Error] outcome is
    deterministic, the counterexample in [Error] need not be. *)
