type 'a t =
  | Return of 'a
  | Invoke of Store.handle * Op.t * (Value.t -> 'a t)
  | Checkpoint of Value.t * 'a t

let return v = Return v

let rec bind m f =
  match m with
  | Return v -> f v
  | Invoke (h, op, k) -> Invoke (h, op, fun resp -> bind (k resp) f)
  | Checkpoint (key, m) -> Checkpoint (key, bind m f)

let map f m = bind m (fun v -> Return (f v))
let invoke h op = Invoke (h, op, fun resp -> Return resp)
let checkpoint key = Checkpoint (key, Return ())

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

open Syntax

let rec for_ lo hi f =
  if lo >= hi then return ()
  else
    let* () = f lo in
    for_ (lo + 1) hi f

let rec fold_range lo hi acc f =
  if lo >= hi then return acc
  else
    let* acc = f acc lo in
    fold_range (lo + 1) hi acc f

let rec first_some lo hi f =
  if lo >= hi then return None
  else
    let* r = f lo in
    match r with Some _ -> return r | None -> first_some (lo + 1) hi f

let rec iter_list f = function
  | [] -> return ()
  | x :: xs ->
    let* () = f x in
    iter_list f xs

let rec map_list f = function
  | [] -> return []
  | x :: xs ->
    let* y = f x in
    let+ ys = map_list f xs in
    y :: ys
