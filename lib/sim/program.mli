(** Process programs.

    A program is a free-monad computation whose only effect is invoking one
    atomic operation on one shared object; everything between two [Invoke]s
    is pure local computation.  One [Invoke] is therefore exactly one step of
    the paper's execution model.

    Programs must be deterministic functions of the responses they receive:
    the continuation after a prefix of responses is always the same.  The
    model checker relies on this to canonicalize process states by their
    response histories. *)

type 'a t =
  | Return of 'a
  | Invoke of Store.handle * Op.t * (Value.t -> 'a t)
  | Checkpoint of Value.t * 'a t
      (** see [checkpoint]; prefer the combinator over the constructor *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

(** [invoke h op] performs one atomic step and returns the response. *)
val invoke : Store.handle -> Op.t -> Value.t t

(** [checkpoint key] declares that the whole remaining computation of this
    process is fully determined by [key]: the simulator replaces the
    process's recorded response history with [key], which is what makes a
    {e non-terminating} loop revisit configurations so that
    [Explore.find_cycle] can detect it.

    Soundness requirement: use only in tail position of a top-level process
    program (i.e. the loop is the entire rest of the program) with a [key]
    capturing every live loop variable.  Wait-free algorithms never need
    it — their histories are bounded. *)
val checkpoint : Value.t -> unit t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

(** {1 Iteration combinators} *)

(** [for_ lo hi f] runs [f lo], …, [f (hi-1)] in order ([hi] exclusive). *)
val for_ : int -> int -> (int -> unit t) -> unit t

(** [fold_range lo hi acc f] threads [acc] through [f lo], …, [f (hi-1)]. *)
val fold_range : int -> int -> 'acc -> ('acc -> int -> 'acc t) -> 'acc t

(** [first_some lo hi f] runs [f lo], [f (lo+1)], … and returns the first
    [Some] result, or [None] if every iteration yields [None]. *)
val first_some : int -> int -> (int -> 'a option t) -> 'a option t

val iter_list : ('a -> unit t) -> 'a list -> unit t
val map_list : ('a -> 'b t) -> 'a list -> 'b list t
