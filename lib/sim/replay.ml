type error = { at : int; reason : string }

let step_matching config (event : Step.event) =
  match Step.step config event.Step.proc with
  | exception Invalid_argument reason -> Error reason
  | successors -> (
    let matches (_, (e : Step.event)) =
      Op.equal e.Step.op event.Step.op
      && e.Step.obj = event.Step.obj
      && e.Step.resp = event.Step.resp
    in
    match List.find_opt matches successors with
    | Some (config', _) -> Ok config'
    | None -> Error "no successor matches the recorded event")

let apply config = function
  | Trace.Sched event -> step_matching config event
  | Trace.Crash i -> (
    match Config.crash config i with
    | config' -> Ok config'
    | exception Invalid_argument reason -> Error reason)
  | Trace.Recover i -> (
    match Config.recover config i with
    | config' -> Ok config'
    | exception Invalid_argument reason -> Error reason)

let replay config trace =
  let rec go config acc at = function
    | [] -> Ok (List.rev acc)
    | event :: rest -> (
      match apply config event with
      | Ok config' -> go config' (config' :: acc) (at + 1) rest
      | Error reason -> Error { at; reason })
  in
  go config [] 0 trace

let final config trace =
  match replay config trace with
  | Ok [] -> Ok config
  | Ok configs -> Ok (List.nth configs (List.length configs - 1))
  | Error e -> Error e

let pp_annotated ppf (config, trace) =
  match replay config trace with
  | Error { at; reason } ->
    Format.fprintf ppf "replay failed at event %d: %s" at reason
  | Ok configs ->
    Format.fprintf ppf "@[<v>";
    List.iteri
      (fun i (event, config') ->
        Format.fprintf ppf "%3d. %a@,%a" i Trace.pp_event event Store.pp
          config'.Config.store)
      (List.combine trace configs);
    Format.fprintf ppf "@]"
