(** Deterministic re-execution of recorded traces.

    A trace plus the initial configuration determines the execution: each
    event names the process that stepped and the response it received,
    which also pins down the resolution of object nondeterminism.  Crash
    events replay as {!Config.crash} transitions and recovery events as
    {!Config.recover}, so counterexample schedules produced under a crash
    or recovery adversary or a fault-budgeted exploration reproduce the
    same terminal configuration.  Replay recovers
    every intermediate configuration — used to pretty-print counterexample
    schedules with full store states, and to assert that traces produced by
    the runner and the model checker are faithful. *)

type error = {
  at : int;  (** index of the event that failed to replay *)
  reason : string;
}

(** [replay config trace] returns the configurations {e after} each event
    (so the list has one entry per event; the final configuration is the
    last).  Fails if the trace does not correspond to an execution from
    [config]. *)
val replay : Config.t -> Trace.t -> (Config.t list, error) result

(** [final config trace] — just the last configuration. *)
val final : Config.t -> Trace.t -> (Config.t, error) result

(** [pp_annotated ppf (config, trace)] prints the trace interleaved with
    object states. *)
val pp_annotated : Format.formatter -> Config.t * Trace.t -> unit
