type strategy =
  | Round_robin
  | Random of int
  | Fixed of int list
  | Priority of int list
  | Only of int list

type result = {
  final : Config.t;
  trace : Trace.t;
  steps : int;
  completed : bool;
}

type scheduler = {
  mutable pending : int list;  (* for Fixed *)
  mutable last : int;  (* for Round_robin *)
  rng : Random.State.t option;
  kind : strategy;
}

let scheduler_of_strategy = function
  | (Round_robin | Priority _ | Only _) as s ->
    { pending = []; last = -1; rng = None; kind = s }
  | Random seed as s ->
    { pending = []; last = -1; rng = Some (Random.State.make [| seed |]); kind = s }
  | Fixed sched as s -> { pending = sched; last = -1; rng = None; kind = s }

let round_robin_next sched runnable =
  let after = List.filter (fun i -> i > sched.last) runnable in
  let next = match after with i :: _ -> i | [] -> List.hd runnable in
  sched.last <- next;
  next

let next_proc sched runnable =
  match sched.kind with
  | Round_robin -> round_robin_next sched runnable
  | Random _ ->
    let rng = Option.get sched.rng in
    List.nth runnable (Random.State.int rng (List.length runnable))
  | Fixed _ ->
    let rec pop () =
      match sched.pending with
      | [] -> round_robin_next sched runnable
      | i :: rest ->
        sched.pending <- rest;
        if List.mem i runnable then i else pop ()
    in
    pop ()
  | Priority order ->
    let rec first = function
      | [] -> List.hd runnable
      | i :: rest -> if List.mem i runnable then i else first rest
    in
    first order
  | Only _ -> assert false (* handled in the run loop *)

let pick_successor sched successors =
  match (sched.rng, successors) with
  | _, [] -> assert false
  | None, s :: _ -> s
  | Some rng, _ ->
    List.nth successors (Random.State.int rng (List.length successors))

let run ?(max_steps = 1_000_000) strategy config =
  let sched = scheduler_of_strategy strategy in
  let rec loop config rev_trace steps =
    if steps >= max_steps then
      { final = config; trace = List.rev rev_trace; steps; completed = false }
    else
      match
        (let all = Config.running config in
         match strategy with
         | Only survivors -> List.filter (fun i -> List.mem i survivors) all
         | _ -> all)
      with
      | [] ->
        {
          final = config;
          trace = List.rev rev_trace;
          steps;
          completed = Config.is_terminal config;
        }
      | runnable ->
        let i =
          match strategy with
          | Only _ -> round_robin_next sched runnable
          | _ -> next_proc sched runnable
        in
        let config, event = pick_successor sched (Step.step config i) in
        loop config (event :: rev_trace) (steps + 1)
  in
  loop config [] 0

let run_random_many ?max_steps ~seeds config =
  List.map (fun seed -> run ?max_steps (Random seed) config) seeds
