module Obs = Subc_obs

type strategy =
  | Round_robin
  | Random of int
  | Fixed of int list
  | Priority of int list
  | Only of int list
  | Crash_at of { crashes : (int * int) list; seed : int option }
  | Crash_random of { seed : int; max_crashes : int }
  | Recover_after of {
      crashes : (int * int) list;
      recoveries : (int * int) list;
      seed : int option;
    }
  | Recover_random of { seed : int; max_crashes : int; max_recoveries : int }

type result = {
  final : Config.t;
  trace : Trace.t;
  steps : int;
  completed : bool;
  starved : int list;
}

type scheduler = {
  mutable pending : int list;  (* for Fixed *)
  mutable last : int;  (* for Round_robin *)
  rng : Random.State.t option;
  kind : strategy;
}

let scheduler_of_strategy = function
  | (Round_robin | Priority _ | Only _) as s ->
    { pending = []; last = -1; rng = None; kind = s }
  | Random seed as s ->
    { pending = []; last = -1; rng = Some (Random.State.make [| seed |]); kind = s }
  | Fixed sched as s -> { pending = sched; last = -1; rng = None; kind = s }
  | (Crash_at { seed; _ } | Recover_after { seed; _ }) as s ->
    {
      pending = [];
      last = -1;
      rng = Option.map (fun seed -> Random.State.make [| seed |]) seed;
      kind = s;
    }
  | (Crash_random { seed; _ } | Recover_random { seed; _ }) as s ->
    { pending = []; last = -1; rng = Some (Random.State.make [| seed |]); kind = s }

let round_robin_next sched runnable =
  let after = List.filter (fun i -> i > sched.last) runnable in
  let next = match after with i :: _ -> i | [] -> List.hd runnable in
  sched.last <- next;
  next

let random_next rng runnable =
  List.nth runnable (Random.State.int rng (List.length runnable))

let next_proc sched runnable =
  match sched.kind with
  | Round_robin -> round_robin_next sched runnable
  | Random _ | Crash_random _ | Recover_random _ ->
    random_next (Option.get sched.rng) runnable
  | Crash_at _ | Recover_after _ -> (
    match sched.rng with
    | Some rng -> random_next rng runnable
    | None -> round_robin_next sched runnable)
  | Fixed _ ->
    let rec pop () =
      match sched.pending with
      | [] -> round_robin_next sched runnable
      | i :: rest ->
        sched.pending <- rest;
        if List.mem i runnable then i else pop ()
    in
    pop ()
  | Priority order ->
    let rec first = function
      | [] -> List.hd runnable
      | i :: rest -> if List.mem i runnable then i else first rest
    in
    first order
  | Only _ -> assert false (* handled in the run loop *)

let pick_successor sched successors =
  match (sched.rng, successors) with
  | _, [] -> assert false
  | None, s :: _ -> s
  | Some rng, _ ->
    List.nth successors (Random.State.int rng (List.length successors))

let m_runs = Obs.Metrics.counter "runner.runs"
let m_steps = Obs.Metrics.counter "runner.steps"
let m_crashes = Obs.Metrics.counter "runner.crashes_injected"
let m_recoveries = Obs.Metrics.counter "runner.recoveries_injected"
let m_incomplete = Obs.Metrics.counter "runner.incomplete"

let strategy_name = function
  | Round_robin -> "round_robin"
  | Random _ -> "random"
  | Fixed _ -> "fixed"
  | Priority _ -> "priority"
  | Only _ -> "only"
  | Crash_at _ -> "crash_at"
  | Crash_random _ -> "crash_random"
  | Recover_after _ -> "recover_after"
  | Recover_random _ -> "recover_random"

let observe strategy r =
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_steps r.steps;
  Obs.Metrics.add m_crashes (Config.n_crashed r.final);
  Obs.Metrics.add m_recoveries (List.length (Trace.recoveries r.trace));
  if not r.completed then Obs.Metrics.incr m_incomplete;
  if Obs.Sink.get () != Obs.Sink.null then
    Obs.Sink.emit "run"
      [
        ("strategy", Obs.Sink.Str (strategy_name strategy));
        ("steps", Obs.Sink.Int r.steps);
        ("completed", Obs.Sink.Bool r.completed);
        ("crashed", Obs.Sink.Int (Config.n_crashed r.final));
        ("recovered", Obs.Sink.Int (List.length (Trace.recoveries r.trace)));
        ("starved", Obs.Sink.Int (List.length r.starved));
      ];
  r

let run ?(max_steps = 1_000_000) strategy config =
  let sched = scheduler_of_strategy strategy in
  (* Crash plan for [Crash_at]/[Recover_after]: (step, proc) pairs,
     applied in step order. *)
  let plan =
    ref
      (match strategy with
      | Crash_at { crashes; _ } | Recover_after { crashes; _ } ->
        List.sort compare crashes
      | _ -> [])
  in
  (* Recovery plan for [Recover_after], same shape. *)
  let rplan =
    ref
      (match strategy with
      | Recover_after { recoveries; _ } -> List.sort compare recoveries
      | _ -> [])
  in
  (* [Recover_random]'s crash budget counts crashes {e injected}, not
     currently-crashed processes — a recovery must not refill it. *)
  let crashes_injected = ref 0 in
  (* Crash every running process the adversary has scheduled to die before
     the current step; crash events enter the trace. *)
  let inject_crashes config rev_trace steps =
    match strategy with
    | Crash_at _ | Recover_after _ ->
      let due, later = List.partition (fun (s, _) -> s <= steps) !plan in
      plan := later;
      List.fold_left
        (fun (c, rt) (_, p) ->
          if p >= 0 && p < Config.n_procs c && not (Config.is_terminal c)
             && List.mem p (Config.running c)
          then (Config.crash c p, Trace.Crash p :: rt)
          else (c, rt))
        (config, rev_trace) due
    | Crash_random { max_crashes; _ } ->
      let rng = Option.get sched.rng in
      let running = Config.running config in
      if
        running <> []
        && Config.n_crashed config < max_crashes
        && Random.State.int rng 4 = 0
      then
        let victim = random_next rng running in
        (Config.crash config victim, Trace.Crash victim :: rev_trace)
      else (config, rev_trace)
    | Recover_random { max_crashes; _ } ->
      let rng = Option.get sched.rng in
      let running = Config.running config in
      if
        running <> []
        && !crashes_injected < max_crashes
        && Random.State.int rng 4 = 0
      then begin
        let victim = random_next rng running in
        incr crashes_injected;
        (Config.crash config victim, Trace.Crash victim :: rev_trace)
      end
      else (config, rev_trace)
    | _ -> (config, rev_trace)
  in
  (* Recover crashed processes the adversary has scheduled to revive.
     With [~drain:true] (the run has no runnable process left) the whole
     remaining plan — or, for [Recover_random], the remaining budget — is
     applied, so planned recoveries are not silently lost when every
     process finishes or crashes before their step number comes up. *)
  let inject_recoveries ~drain config rev_trace steps =
    match strategy with
    | Recover_after _ ->
      let due, later =
        List.partition (fun (s, _) -> drain || s <= steps) !rplan
      in
      rplan := later;
      List.fold_left
        (fun (c, rt) (_, p) ->
          if p >= 0 && p < Config.n_procs c && List.mem p (Config.crashed c)
          then (Config.recover c p, Trace.Recover p :: rt)
          else (c, rt))
        (config, rev_trace) due
    | Recover_random { max_recoveries; _ } ->
      let rng = Option.get sched.rng in
      let crashed = Config.crashed config in
      if
        crashed <> []
        && Config.n_recoveries config < max_recoveries
        && (drain || Random.State.int rng 4 = 0)
      then
        let p = random_next rng crashed in
        (Config.recover config p, Trace.Recover p :: rev_trace)
      else (config, rev_trace)
    | _ -> (config, rev_trace)
  in
  let rec loop config rev_trace steps =
    if steps >= max_steps then
      {
        final = config;
        trace = List.rev rev_trace;
        steps;
        completed = false;
        starved = [];
      }
    else
      let config, rev_trace = inject_crashes config rev_trace steps in
      let config, rev_trace =
        inject_recoveries ~drain:false config rev_trace steps
      in
      let all = Config.running config in
      match
        (match strategy with
        | Only survivors -> List.filter (fun i -> List.mem i survivors) all
        | _ -> all)
      with
      | [] when all = [] ->
        (* Nobody can step.  A recovery adversary with plan or budget
           left may still revive a crashed process; otherwise the run is
           over. *)
        let config', rev_trace' =
          inject_recoveries ~drain:true config rev_trace steps
        in
        if Config.running config' <> [] then loop config' rev_trace' steps
        else
          {
            final = config';
            trace = List.rev rev_trace';
            steps;
            completed = Config.is_terminal config';
            starved = [];
          }
      | [] ->
        (* With [Only], runnable non-survivors are starved, not finished:
           the caller must be able to tell "terminated" from "everyone left
           is filtered out". *)
        {
          final = config;
          trace = List.rev rev_trace;
          steps;
          completed = Config.is_terminal config;
          starved = all;
        }
      | runnable ->
        let i =
          match strategy with
          | Only _ -> round_robin_next sched runnable
          | _ -> next_proc sched runnable
        in
        let config, event = pick_successor sched (Step.step config i) in
        loop config (Trace.Sched event :: rev_trace) (steps + 1)
  in
  observe strategy (loop config [] 0)

let run_random_many ?max_steps ~seeds config =
  List.map (fun seed -> run ?max_steps (Random seed) config) seeds
