(** Schedulers: run a configuration to completion under a scheduling policy.

    The scheduler is the paper's adversary.  [Random] draws both the next
    process and the resolution of object nondeterminism from a seeded PRNG,
    so runs are reproducible.  [Round_robin] and [Fixed] resolve object
    nondeterminism by taking the first successor.

    The crash adversaries make crashes events of the trace: [Crash_at]
    crashes chosen processes at chosen steps (deterministic fault
    injection), [Crash_random] crashes up to a budget of random victims at
    random points (seeded, hence reproducible).  A crashed process never
    takes another step; the run continues with the survivors.

    The recovery adversaries additionally revive crashed processes
    ([Trace.Recover] events): the object store's persistent components
    survive, the process's volatile slot restarts ({!Config.recover}).
    [Recover_after] is the deterministic crash/recover script;
    [Recover_random] crashes and recovers at seeded-random points within
    budgets.  When no process can run but a recovery is still scheduled
    (or budgeted), the pending recoveries are drained so a planned revival
    is never lost to early termination. *)

type strategy =
  | Round_robin
  | Random of int  (** seed *)
  | Fixed of int list
      (** explicit process schedule; entries naming non-runnable processes
          are skipped; when exhausted, falls back to round-robin *)
  | Priority of int list
      (** always steps the first runnable process in the given order — the
          "solo run" adversary when the list is a single process first *)
  | Only of int list
      (** starve everyone else: schedule only the listed processes
          (round-robin) and stop when none of them can run; if the
          configuration is not fully terminal at that point, the runnable
          non-survivors are reported in [starved] and [completed] is
          false *)
  | Crash_at of { crashes : (int * int) list; seed : int option }
      (** crash-at-step adversary: each [(s, p)] crashes process [p] just
          before the [s]-th scheduled step (if it is still running).
          Scheduling is round-robin, or seeded-random when [seed] is
          given. *)
  | Crash_random of { seed : int; max_crashes : int }
      (** crash-at-random adversary: seeded-random scheduling; before each
          step, with probability 1/4, crashes a random running process as
          long as fewer than [max_crashes] processes have crashed *)
  | Recover_after of {
      crashes : (int * int) list;
      recoveries : (int * int) list;
      seed : int option;
    }
      (** deterministic crash-recovery script: [crashes] as in [Crash_at];
          each [(s, p)] in [recoveries] recovers process [p] just before
          the [s]-th scheduled step (if it is crashed by then).
          Recoveries whose step never arrives are drained when the run
          would otherwise end.  Scheduling is round-robin, or
          seeded-random when [seed] is given. *)
  | Recover_random of { seed : int; max_crashes : int; max_recoveries : int }
      (** crash-recovery-at-random adversary: seeded-random scheduling;
          before each step, with probability 1/4 each, crashes a random
          running process (while fewer than [max_crashes] crashes have
          been {e injected}) and recovers a random crashed process (while
          fewer than [max_recoveries] recoveries have occurred) *)

type result = {
  final : Config.t;
  trace : Trace.t;
      (** includes [Trace.Crash] / [Trace.Recover] events for the fault
          adversaries *)
  steps : int;  (** scheduled steps (crashes and recoveries are not counted) *)
  completed : bool;
      (** true iff the final configuration is terminal: false when
          [max_steps] was hit first, or when [Only] starved runnable
          processes *)
  starved : int list;
      (** processes that were still runnable when an [Only] run stopped —
          empty for every other strategy and for completed runs *)
}

val run : ?max_steps:int -> strategy -> Config.t -> result

(** [run_many ~seeds strategy config] runs once per seed with [Random seed]. *)
val run_random_many : ?max_steps:int -> seeds:int list -> Config.t -> result list
