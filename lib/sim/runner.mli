(** Schedulers: run a configuration to completion under a scheduling policy.

    The scheduler is the paper's adversary.  [Random] draws both the next
    process and the resolution of object nondeterminism from a seeded PRNG,
    so runs are reproducible.  [Round_robin] and [Fixed] resolve object
    nondeterminism by taking the first successor. *)

type strategy =
  | Round_robin
  | Random of int  (** seed *)
  | Fixed of int list
      (** explicit process schedule; entries naming non-runnable processes
          are skipped; when exhausted, falls back to round-robin *)
  | Priority of int list
      (** always steps the first runnable process in the given order — the
          "solo run" adversary when the list is a single process first *)
  | Only of int list
      (** crash everyone else: schedule only the listed processes
          (round-robin) and stop when none of them can run; [completed] is
          false unless the configuration is fully terminal *)

type result = {
  final : Config.t;
  trace : Trace.t;
  steps : int;
  completed : bool;  (** false iff [max_steps] was hit first *)
}

val run : ?max_steps:int -> strategy -> Config.t -> result

(** [run_many ~seeds strategy config] runs once per seed with [Random seed]. *)
val run_random_many : ?max_steps:int -> seeds:int list -> Config.t -> result list
