(* One record for every search knob, replacing the nine-optional-arg
   sprawl that every explorer and checker entry point used to duplicate.
   The engines ({!Explore}, {!Parallel}, {!Partition}) keep their
   low-level labelled interfaces; this module is the front door that
   dispatches between them on [jobs] / [partitions] / [spill]. *)

type options = {
  max_states : int;
  max_depth : int;
  max_crashes : int;
  max_recoveries : int;
  deadline : float option;
  expected_states : int option;
  reduction : Explore.reduction;
  paranoid : bool;
  fp : Explore.fp_mode option;
  jobs : int;
  visited : Parallel.visited option;
  partitions : int;
  spill : string option;
  seq_threshold : int option;
}

let default =
  {
    max_states = 5_000_000;
    max_depth = 10_000;
    max_crashes = 0;
    max_recoveries = 0;
    deadline = None;
    expected_states = None;
    reduction = Explore.no_reduction;
    paranoid = false;
    fp = None;
    jobs = 1;
    visited = None;
    partitions = 1;
    spill = None;
    seq_threshold = None;
  }

let with_max_states n o = { o with max_states = n }
let with_max_depth n o = { o with max_depth = n }
let with_max_crashes n o = { o with max_crashes = n }
let with_max_recoveries n o = { o with max_recoveries = n }
let with_deadline secs o = { o with deadline = Some secs }
let with_expected_states n o = { o with expected_states = Some n }
let with_reduction r o = { o with reduction = r }

let with_independence i o =
  { o with reduction = Explore.with_independence i o.reduction }

let with_paranoid b o = { o with paranoid = b }
let with_fp m o = { o with fp = Some m }
let with_jobs n o = { o with jobs = max 1 n }
let with_visited v o = { o with visited = Some v }
let with_partitions n o = { o with partitions = max 1 n }
let with_spill dir o = { o with spill = Some dir }
let with_seq_threshold n o = { o with seq_threshold = Some (max 0 n) }

(* Bridge for the [@@deprecated] shims: each old optional argument
   overrides the corresponding field of [default]. *)
let of_legacy ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?reduction ?independence ?paranoid ?fp ?jobs ?visited
    ?partitions ?spill ?seq_threshold () =
  let reduction = Option.value reduction ~default:default.reduction in
  let reduction =
    match independence with
    | None -> reduction
    | Some i -> Explore.with_independence i reduction
  in
  {
    max_states = Option.value max_states ~default:default.max_states;
    max_depth = Option.value max_depth ~default:default.max_depth;
    max_crashes = Option.value max_crashes ~default:default.max_crashes;
    max_recoveries =
      Option.value max_recoveries ~default:default.max_recoveries;
    deadline;
    expected_states;
    reduction;
    paranoid = Option.value paranoid ~default:default.paranoid;
    fp;
    jobs = max 1 (Option.value jobs ~default:1);
    visited;
    partitions = max 1 (Option.value partitions ~default:1);
    spill;
    seq_threshold;
  }

let pp ppf o =
  Format.fprintf ppf
    "max-states=%d max-depth=%d crashes<=%d recoveries<=%d%s%s jobs=%d%s%s \
     paranoid=%b %a"
    o.max_states o.max_depth o.max_crashes o.max_recoveries
    (match o.deadline with
    | None -> ""
    | Some s -> Printf.sprintf " deadline=%.3gs" s)
    (match o.visited with
    | None -> ""
    | Some v -> Format.asprintf " visited=%a" Parallel.pp_visited v)
    o.jobs
    (if o.partitions > 1 then Printf.sprintf " partitions=%d" o.partitions
     else "")
    (match o.spill with
    | None -> ""
    | Some dir -> Printf.sprintf " spill=%s" dir)
    o.paranoid Explore.pp_reduction o.reduction;
  match o.fp with
  | None -> ()
  | Some m -> Format.fprintf ppf " fp=%a" Explore.pp_fp_mode m

let parallel o = o.jobs > 1

(* The partitioned engine is opt-in: asking for more than one partition
   or for spilling routes there (even at [jobs = 1] — the single worker
   still gets per-partition tables and the out-of-core representation);
   otherwise the plain engines keep their zero-exchange fast paths. *)
let partitioned o = o.partitions > 1 || o.spill <> None

let iter_terminals ?(options = default) config ~f =
  let o = options in
  if partitioned o then
    Partition.iter_terminals ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ?spill:o.spill ~partitions:o.partitions ~jobs:o.jobs config ~f
  else if parallel o then
    Parallel.iter_terminals ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ~jobs:o.jobs config ~f
  else
    Explore.iter_terminals ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~f

let iter_reachable ?(options = default) config ~f =
  let o = options in
  if partitioned o then
    Partition.iter_reachable ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ?spill:o.spill ~partitions:o.partitions ~jobs:o.jobs config ~f
  else if parallel o then
    Parallel.iter_reachable ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ~jobs:o.jobs config ~f
  else
    Explore.iter_reachable ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~f

let find_terminal ?(options = default) config ~violates =
  let o = options in
  if partitioned o then
    Partition.find_terminal ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ?spill:o.spill ~partitions:o.partitions ~jobs:o.jobs config ~violates
  else if parallel o then
    Parallel.find_terminal ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ~jobs:o.jobs config ~violates
  else
    Explore.find_terminal ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~violates

let check_terminals ?(options = default) config ~ok =
  let o = options in
  if partitioned o then
    Partition.check_terminals ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ?spill:o.spill ~partitions:o.partitions ~jobs:o.jobs config ~ok
  else if parallel o then
    Parallel.check_terminals ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ?seq_threshold:o.seq_threshold
      ~jobs:o.jobs config ~ok
  else
    Explore.check_terminals ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~ok

(* Cycle hunting needs the sequential DFS stack discipline whatever
   [jobs] says; the options record still supplies every other knob. *)
let find_cycle ?(options = default) config =
  let o = options in
  Explore.find_cycle ~max_states:o.max_states ~max_depth:o.max_depth
    ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
    ?deadline:o.deadline ?expected_states:o.expected_states
    ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config
