(* One record for every search knob, replacing the nine-optional-arg
   sprawl that every explorer and checker entry point used to duplicate.
   The engines ({!Explore}, {!Parallel}) keep their low-level labelled
   interfaces; this module is the front door that dispatches between
   them on [jobs]. *)

type options = {
  max_states : int;
  max_depth : int;
  max_crashes : int;
  max_recoveries : int;
  deadline : float option;
  expected_states : int option;
  reduction : Explore.reduction;
  paranoid : bool;
  fp : Explore.fp_mode option;
  jobs : int;
  visited : Parallel.visited option;
}

let default =
  {
    max_states = 5_000_000;
    max_depth = 10_000;
    max_crashes = 0;
    max_recoveries = 0;
    deadline = None;
    expected_states = None;
    reduction = Explore.no_reduction;
    paranoid = false;
    fp = None;
    jobs = 1;
    visited = None;
  }

let with_max_states n o = { o with max_states = n }
let with_max_depth n o = { o with max_depth = n }
let with_max_crashes n o = { o with max_crashes = n }
let with_max_recoveries n o = { o with max_recoveries = n }
let with_deadline secs o = { o with deadline = Some secs }
let with_expected_states n o = { o with expected_states = Some n }
let with_reduction r o = { o with reduction = r }

let with_independence i o =
  { o with reduction = Explore.with_independence i o.reduction }

let with_paranoid b o = { o with paranoid = b }
let with_fp m o = { o with fp = Some m }
let with_jobs n o = { o with jobs = max 1 n }
let with_visited v o = { o with visited = Some v }

(* Bridge for the [@@deprecated] shims: each old optional argument
   overrides the corresponding field of [default]. *)
let of_legacy ?max_states ?max_depth ?max_crashes ?max_recoveries ?deadline
    ?expected_states ?reduction ?independence ?paranoid ?fp ?jobs ?visited ()
    =
  let reduction = Option.value reduction ~default:default.reduction in
  let reduction =
    match independence with
    | None -> reduction
    | Some i -> Explore.with_independence i reduction
  in
  {
    max_states = Option.value max_states ~default:default.max_states;
    max_depth = Option.value max_depth ~default:default.max_depth;
    max_crashes = Option.value max_crashes ~default:default.max_crashes;
    max_recoveries =
      Option.value max_recoveries ~default:default.max_recoveries;
    deadline;
    expected_states;
    reduction;
    paranoid = Option.value paranoid ~default:default.paranoid;
    fp;
    jobs = max 1 (Option.value jobs ~default:1);
    visited;
  }

let pp ppf o =
  Format.fprintf ppf
    "max-states=%d max-depth=%d crashes<=%d recoveries<=%d%s%s jobs=%d \
     paranoid=%b %a"
    o.max_states o.max_depth o.max_crashes o.max_recoveries
    (match o.deadline with
    | None -> ""
    | Some s -> Printf.sprintf " deadline=%.3gs" s)
    (match o.visited with
    | None -> ""
    | Some v -> Format.asprintf " visited=%a" Parallel.pp_visited v)
    o.jobs o.paranoid Explore.pp_reduction o.reduction;
  match o.fp with
  | None -> ()
  | Some m -> Format.fprintf ppf " fp=%a" Explore.pp_fp_mode m

let parallel o = o.jobs > 1

let iter_terminals ?(options = default) config ~f =
  let o = options in
  if parallel o then
    Parallel.iter_terminals ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ~jobs:o.jobs config ~f
  else
    Explore.iter_terminals ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~f

let iter_reachable ?(options = default) config ~f =
  let o = options in
  if parallel o then
    Parallel.iter_reachable ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ~jobs:o.jobs config ~f
  else
    Explore.iter_reachable ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~f

let find_terminal ?(options = default) config ~violates =
  let o = options in
  if parallel o then
    Parallel.find_terminal ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ~jobs:o.jobs config ~violates
  else
    Explore.find_terminal ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~violates

let check_terminals ?(options = default) config ~ok =
  let o = options in
  if parallel o then
    Parallel.check_terminals ?visited:o.visited ~max_states:o.max_states
      ~max_depth:o.max_depth ~max_crashes:o.max_crashes
      ~max_recoveries:o.max_recoveries ?deadline:o.deadline
      ?expected_states:o.expected_states ~reduction:o.reduction
      ~paranoid:o.paranoid ?fp:o.fp ~jobs:o.jobs config ~ok
  else
    Explore.check_terminals ~max_states:o.max_states ~max_depth:o.max_depth
      ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
      ?deadline:o.deadline ?expected_states:o.expected_states
      ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config ~ok

(* Cycle hunting needs the sequential DFS stack discipline whatever
   [jobs] says; the options record still supplies every other knob. *)
let find_cycle ?(options = default) config =
  let o = options in
  Explore.find_cycle ~max_states:o.max_states ~max_depth:o.max_depth
    ~max_crashes:o.max_crashes ~max_recoveries:o.max_recoveries
    ?deadline:o.deadline ?expected_states:o.expected_states
    ~reduction:o.reduction ~paranoid:o.paranoid ?fp:o.fp config
