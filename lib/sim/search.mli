(** Unified search options.

    Every explorer and checker entry point used to take the same sprawl
    of optional arguments ([?max_states ?max_depth ?max_crashes
    ?max_recoveries ?deadline ?expected_states ?reduction ?paranoid
    ?jobs ?visited]).  {!options} packs them into one record with
    pipe-friendly [with_*] builders:

    {[
      let opts =
        Search.default
        |> Search.with_max_crashes 1
        |> Search.with_reduction (Explore.full_reduction sym)
        |> Search.with_jobs 4
      in
      Search.iter_terminals ~options:opts config ~f
    ]}

    The entry points here dispatch on the parallelism fields: asking
    for more than one partition — or for out-of-core spilling — runs
    the partitioned engine ({!Partition}); otherwise [jobs > 1] runs
    the work-stealing {!Parallel} engine and [jobs <= 1] the
    sequential {!Explore}.  Whatever the path, the observable counts
    and verdicts agree (see the determinism notes in {!Parallel} and
    {!Partition}); [--reduction full] runs at full strength on all of
    them. *)

type options = {
  max_states : int;  (** visited-state budget (default [5_000_000]) *)
  max_depth : int;  (** trace-length budget (default [10_000]) *)
  max_crashes : int;  (** crash-fault budget (default [0]) *)
  max_recoveries : int;  (** recovery budget (default [0]) *)
  deadline : float option;  (** wall-clock budget in seconds *)
  expected_states : int option;  (** visited-table pre-size hint *)
  reduction : Explore.reduction;  (** default {!Explore.no_reduction} *)
  paranoid : bool;  (** exact canonical keys, no fingerprints *)
  fp : Explore.fp_mode option;
      (** fingerprint mode; [None] defers to {!Explore.default_fp} *)
  jobs : int;  (** worker domains; [<= 1] means sequential *)
  visited : Parallel.visited option;
      (** parallel visited-table representation; [None] defers to
          {!Parallel.default_visited} *)
  partitions : int;
      (** state-ownership partitions; [> 1] routes to the partitioned
          engine ({!Partition}) with per-partition visited tables and
          batched cross-partition frontier exchange (default [1]) *)
  spill : string option;
      (** out-of-core mode: directory under which each partition mmaps
          its visited set as 62-bit compressed claim words
          ({!Spill_table}); implies the partitioned engine even at
          [partitions = 1] *)
  seq_threshold : int option;
      (** auto-sequential fallback: state count the seeding pass reaches
          before worker domains spawn; [None] defers to
          {!Parallel.default_seq_threshold} *)
}

val default : options

(** {1 Builders} *)

val with_max_states : int -> options -> options
val with_max_depth : int -> options -> options
val with_max_crashes : int -> options -> options
val with_max_recoveries : int -> options -> options
val with_deadline : float -> options -> options
val with_expected_states : int -> options -> options
val with_reduction : Explore.reduction -> options -> options

val with_independence : Explore.independence -> options -> options
(** Sets the independence judge of the current [reduction] field:
    [Semantic] computes diamonds, [Static] consults installed
    {!Explore.static_independent} tables (falling back to the semantic
    judge on uncovered pairs), [Both] cross-validates. *)

val with_paranoid : bool -> options -> options

val with_fp : Explore.fp_mode -> options -> options
(** Pin the fingerprint mode ([Incremental] patches the parent's
    homomorphic hash per step; [Full] re-folds every configuration). *)

val with_jobs : int -> options -> options
(** Clamped to at least [1]. *)

val with_visited : Parallel.visited -> options -> options

val with_partitions : int -> options -> options
(** Clamped to at least [1]; [> 1] dispatches to {!Partition}. *)

val with_spill : string -> options -> options
(** Spill directory for the out-of-core visited tables; implies the
    partitioned engine. *)

val with_seq_threshold : int -> options -> options
(** Override {!Parallel.default_seq_threshold} for this search
    (clamped to at least [0]; [0] spawns domains eagerly). *)

val of_legacy :
  ?max_states:int ->
  ?max_depth:int ->
  ?max_crashes:int ->
  ?max_recoveries:int ->
  ?deadline:float ->
  ?expected_states:int ->
  ?reduction:Explore.reduction ->
  ?independence:Explore.independence ->
  ?paranoid:bool ->
  ?fp:Explore.fp_mode ->
  ?jobs:int ->
  ?visited:Parallel.visited ->
  ?partitions:int ->
  ?spill:string ->
  ?seq_threshold:int ->
  unit ->
  options
(** Bridge from the historical optional-argument spelling; each supplied
    argument overrides the corresponding field of {!default}.  The
    [@@deprecated] checker shims are one-liners over this. *)

val pp : Format.formatter -> options -> unit

(** {1 Entry points}

    Thin dispatchers over {!Explore} (sequential) and {!Parallel}
    (work-stealing); see those modules for callback and determinism
    contracts. *)

val iter_terminals :
  ?options:options -> Config.t -> f:(Config.t -> Trace.t -> unit) -> Explore.stats

val iter_reachable :
  ?options:options ->
  Config.t ->
  f:(Config.t -> Trace.t Lazy.t -> unit) ->
  Explore.stats
(** Source sets are stripped on both paths — reachability consumers want
    every state, not a reduced cover. *)

val find_terminal :
  ?options:options ->
  Config.t ->
  violates:(Config.t -> bool) ->
  (Config.t * Trace.t) option * Explore.stats

val check_terminals :
  ?options:options ->
  Config.t ->
  ok:(Config.t -> bool) ->
  (Explore.stats, Config.t * Trace.t * Explore.stats) result

val find_cycle :
  ?options:options -> Config.t -> Trace.t option * Explore.stats
(** Always sequential — cycle detection needs the DFS stack discipline —
    but honors every other field of [options] ([jobs] and [visited] are
    ignored). *)
