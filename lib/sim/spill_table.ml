(* Out-of-core visited table: an open-addressed set of 62-bit folded
   fingerprint words stored in mmap'd files, so a partition's visited set
   is bounded by disk, not by the OCaml heap.

   Each segment is one [Bigarray.Array1] of native ints mapped shared
   from a freshly created file under the spill directory.  The file is
   unlinked immediately after mapping: the mapping keeps the inode alive,
   the directory stays clean whatever happens to the process, and the
   kernel reclaims the blocks when the table is garbage collected (or the
   process exits).  Pages are file-backed and evictable, which is the
   whole point — the resident cost of the table is the page cache's
   decision, not a hard heap commitment, so [memory_bytes] reports only
   the heap-resident bookkeeping (the RSS floor) and [spill_bytes] the
   mapped bytes.

   The slot encoding is exactly the folded mode of {!Claim_table}: a live
   slot holds [Claim_table.encode (Claim_table.fold_key h1 h2)] (always
   negative), an empty slot holds 0 — a fresh mapping is all zeros
   because [Unix.map_file] extends the file with holes.  Collisions
   between distinct fingerprints therefore happen at the same ~2^-62 per
   pair as a folded claim table, and the caller surfaces the same
   birthday bound through [stats.collision_bound].

   Growth reuses the claim table's segment-chaining idea without the
   lock-free subtlety: when the head segment crosses 3/4 occupancy a
   doubled segment is mapped and prepended; older segments serve
   read-only probes forever and nothing is rehashed.  Unlike
   {!Claim_table} there is no CAS protocol: a spill table belongs to one
   partition and is serialized by [lock] — out-of-core mode trades
   claim-path parallelism within a partition for bounded memory, and
   cross-partition parallelism is unaffected (each partition owns a
   private table). *)

type segment = {
  mask : int;
  arr : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable count : int;
  limit : int; (* 3/4 of capacity, as in Claim_table *)
}

type t = {
  lock : Mutex.t;
  mutable segments : segment list; (* head = newest = claim target *)
  dir : string;
  part : int;
  mutable n_segs : int; (* names the next segment file *)
}

let empty = 0

(* Map a fresh all-zero segment of [cap] slots from an unlinked file in
   [t.dir].  The fd is closed right away — the mapping survives it. *)
let map_segment t cap =
  let path =
    Filename.concat t.dir (Printf.sprintf "part%d.seg%d.spill" t.part t.n_segs)
  in
  t.n_segs <- t.n_segs + 1;
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC ] 0o600 in
  let arr =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Unix.close fd)
      (fun () ->
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| cap |]))
  in
  { mask = cap - 1; arr; count = 0; limit = cap - (cap / 4) }

let create ?initial_capacity ?expected_states ~dir ~part () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let initial_capacity =
    match (initial_capacity, expected_states) with
    | Some c, _ -> c
    | None, Some n -> max 64 (n + (n / 3))
    | None, None -> 1 lsl 16
  in
  let cap =
    let rec up c = if c >= initial_capacity then c else up (c * 2) in
    up 64
  in
  let t = { lock = Mutex.create (); segments = []; dir; part; n_segs = 0 } in
  t.segments <- [ map_segment t cap ];
  t

(* Probe one segment for [w]; [`Found], or [`Empty i] (claimable slot in
   the head segment), or [`Full] when the probe wrapped. *)
let probe (seg : segment) st w =
  let cap = seg.mask + 1 in
  let rec go i remaining =
    if remaining = 0 then `Full
    else begin
      st.Claim_table.probes <- st.Claim_table.probes + 1;
      let a = Bigarray.Array1.unsafe_get seg.arr i in
      if a = empty then `Empty i
      else if a = w then `Found
      else go ((i + 1) land seg.mask) (remaining - 1)
    end
  in
  go (w land seg.mask) cap

let claim_word t st w =
  Mutex.lock t.lock;
  let r =
    let rec attempt () =
      match t.segments with
      | [] -> assert false
      | head :: older ->
        if
          List.exists
            (fun seg -> match probe seg st w with `Found -> true | _ -> false)
            older
        then `Dup
        else begin
          match probe head st w with
          | `Found -> `Dup
          | `Empty i when head.count < head.limit ->
            Bigarray.Array1.unsafe_set head.arr i w;
            head.count <- head.count + 1;
            `Fresh
          | `Empty _ | `Full ->
            t.segments <- map_segment t (2 * (head.mask + 1)) :: t.segments;
            attempt ()
        end
    in
    attempt ()
  in
  Mutex.unlock t.lock;
  r

let claim t st ~h1 ~h2 =
  claim_word t st (Claim_table.encode (Claim_table.fold_key h1 h2))

let occupancy t =
  Mutex.lock t.lock;
  let n = List.fold_left (fun acc s -> acc + s.count) 0 t.segments in
  Mutex.unlock t.lock;
  n

let segments t = List.length t.segments

(* Heap-resident bookkeeping only: segment records, list spine, bigarray
   custom blocks — {e not} the mapped pages, which are file-backed and
   evictable (they show up in [spill_bytes]).  ~16 words per segment
   plus the table record itself. *)
let memory_bytes t = 8 * (8 + (16 * List.length t.segments))

let spill_bytes t =
  8 * List.fold_left (fun acc s -> acc + s.mask + 1) 0 t.segments
