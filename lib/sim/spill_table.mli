(** Out-of-core visited table: 62-bit folded fingerprint words in mmap'd
    files.

    The spill mode of the partitioned explorer ({!Partition}): each
    partition can keep its claim-once visited set in file-backed mapped
    memory instead of the OCaml heap, bounding exploration by disk
    rather than RAM.  Keys are compressed to exactly the folded claim
    table's 62-bit word ([Claim_table.encode (Claim_table.fold_key h1
    h2)]), so the collision characteristics — ~2^-62 per pair, surfaced
    through the caller's [collision_bound] — match [--visited
    compressed].

    Segment files are created under the spill directory and unlinked
    immediately after mapping, so the directory stays clean even if the
    process dies; the kernel reclaims the blocks when the table is
    collected.  Growth maps a doubled segment and chains it (read-only
    probes of older segments, claims in the head) — no rehash, no
    stop-the-world.

    A spill table is owned by one partition and serialized by an
    internal mutex: claims are safe from that partition's worker
    domains, and the out-of-core trade is claim-path serialization
    within a partition for a near-zero heap footprint ({!memory_bytes}
    counts only bookkeeping; the mapped bytes are {!spill_bytes} and
    evictable). *)

type t

val create :
  ?initial_capacity:int ->
  ?expected_states:int ->
  dir:string ->
  part:int ->
  unit ->
  t
(** Create the partition's spill table under [dir] (created if absent).
    [initial_capacity] (rounded up to a power of two, minimum 64) wins
    over the [expected_states] sizing hint; the default first segment
    holds 2^16 slots (512 KiB of file). *)

val claim : t -> Claim_table.opstats -> h1:int -> h2:int -> [ `Fresh | `Dup ]
(** Claim-once on the folded word of [(h1, h2)]: [`Fresh] for the first
    caller, [`Dup] for every other — including distinct fingerprints
    whose 62-bit folds collide, which is the mode's documented ~2^-62
    per-pair miss risk.  Probe counts accumulate into the caller's
    {!Claim_table.opstats}. *)

val claim_word : t -> Claim_table.opstats -> int -> [ `Fresh | `Dup ]
(** Claim a pre-folded (already [encode]d) word directly.  Test hook:
    forcing two distinct logical keys onto one word exercises the
    collision path deterministically. *)

val occupancy : t -> int
(** Live entries across all segments. *)

val segments : t -> int
(** Mapped segments (growth events + 1). *)

val memory_bytes : t -> int
(** Heap-resident bookkeeping only — the RSS floor of the table.  The
    mapped pages are file-backed and evictable and are deliberately
    excluded; see {!spill_bytes}. *)

val spill_bytes : t -> int
(** Total mapped bytes across all segments (the on-disk footprint). *)
