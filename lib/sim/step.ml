type event = {
  proc : int;
  obj : int;
  obj_kind : string;
  op : Op.t;
  resp : Value.t option;
}

let pp_event ppf e =
  match e.resp with
  | Some r ->
    Format.fprintf ppf "P%d: #%d:%s.%a -> %a" e.proc e.obj e.obj_kind Op.pp e.op
      Value.pp r
  | None ->
    Format.fprintf ppf "P%d: #%d:%s.%a -> HANG" e.proc e.obj e.obj_kind Op.pp
      e.op

(* The slots a transition rewrote, for the incremental fingerprint/delta
   layer: every transition touches exactly one process slot, and at most
   the store slots listed (in increasing handle order).  Everything else
   in the successor is physically shared with the parent, so patching
   these slots into the parent's homomorphic fingerprint — or replaying
   them over the parent in a [Config.Delta] chain — reconstructs the
   child exactly. *)
type slots = { sl_proc : int; sl_store : (Store.handle * Value.t) list }

let step_slots (c : Config.t) i =
  let proc = c.procs.(i) in
  match proc.Config.status with
  | Config.Terminated _ | Config.Hung | Config.Crashed ->
    invalid_arg (Printf.sprintf "Step.step: process %d cannot step" i)
  | Config.Running (Program.Return _ | Program.Checkpoint _)
  | Config.Recovering (Program.Return _ | Program.Checkpoint _) ->
    (* Normalized away by [Config.advance]; unreachable. *)
    assert false
  (* A [Recovering] process steps exactly like a [Running] one; its first
     step re-normalizes the status through [Config.advance], so the
     transient tag lasts one transition. *)
  | Config.Running (Program.Invoke (h, op, k))
  | Config.Recovering (Program.Invoke (h, op, k)) ->
    let kind = Store.kind c.store (h : Store.handle) in
    let old_st = Store.state c.store h in
    let with_proc status history =
      let procs = Array.copy c.procs in
      procs.(i) <-
        {
          Config.status;
          history;
          steps = proc.Config.steps + 1;
          recoveries = proc.Config.recoveries;
        };
      procs
    in
    let successors = Store.apply c.store h op in
    let event resp =
      { proc = i; obj = (h :> int); obj_kind = kind; op; resp }
    in
    (match successors with
    | [] ->
      let procs = with_proc Config.Hung proc.Config.history in
      [ ({ c with procs }, event None, { sl_proc = i; sl_store = [] }) ]
    | _ ->
      List.map
        (fun (store', resp) ->
          let status, history =
            Config.advance (k resp) (resp :: proc.Config.history)
          in
          let procs = with_proc status history in
          let st' = Store.state store' h in
          let sl_store = if st' == old_st then [] else [ (h, st') ] in
          ( { c with Config.store = store'; procs },
            event (Some resp),
            { sl_proc = i; sl_store } ))
        successors)

let step c i = List.map (fun (c', e, _) -> (c', e)) (step_slots c i)

(* Crash transitions: instead of stepping, any running process can crash.
   One successor per running process, paired with the victim's index.
   A crash rewrites only the victim's proc slot ([Config.crash] leaves
   the store untouched). *)
let crash_successors_slots (c : Config.t) =
  List.map
    (fun i -> (Config.crash c i, i, { sl_proc = i; sl_store = [] }))
    (Config.running c)

let crash_successors c =
  List.map (fun (c', i, _) -> (c', i)) (crash_successors_slots c)

(* Recovery transitions: any crashed process can recover, restarting its
   initial program over persistent object state.  One successor per
   crashed process, paired with the recoverer's index.  A recovery
   rewrites the recoverer's proc slot plus whichever store slots the
   persistence projection actually changed — [] for fully persistent
   stores, which [Store.recover] returns physically unchanged, and only
   the genuinely erased slots otherwise ([Store.recover] preserves
   per-slot sharing on projection fixed points, so the diff is the delta
   against the persistence projection, not the whole volatile store). *)
let recover_successors_slots (c : Config.t) =
  List.map
    (fun i ->
      let c' = Config.recover c i in
      ( c',
        i,
        { sl_proc = i; sl_store = Store.diff c.Config.store c'.Config.store }
      ))
    (Config.crashed c)

let recover_successors c =
  List.map (fun (c', i, _) -> (c', i)) (recover_successors_slots c)
