type event = {
  proc : int;
  obj : int;
  obj_kind : string;
  op : Op.t;
  resp : Value.t option;
}

let pp_event ppf e =
  match e.resp with
  | Some r ->
    Format.fprintf ppf "P%d: #%d:%s.%a -> %a" e.proc e.obj e.obj_kind Op.pp e.op
      Value.pp r
  | None ->
    Format.fprintf ppf "P%d: #%d:%s.%a -> HANG" e.proc e.obj e.obj_kind Op.pp
      e.op

let step (c : Config.t) i =
  let proc = c.procs.(i) in
  match proc.Config.status with
  | Config.Terminated _ | Config.Hung | Config.Crashed ->
    invalid_arg (Printf.sprintf "Step.step: process %d cannot step" i)
  | Config.Running (Program.Return _ | Program.Checkpoint _)
  | Config.Recovering (Program.Return _ | Program.Checkpoint _) ->
    (* Normalized away by [Config.advance]; unreachable. *)
    assert false
  (* A [Recovering] process steps exactly like a [Running] one; its first
     step re-normalizes the status through [Config.advance], so the
     transient tag lasts one transition. *)
  | Config.Running (Program.Invoke (h, op, k))
  | Config.Recovering (Program.Invoke (h, op, k)) ->
    let kind = Store.kind c.store (h : Store.handle) in
    let with_proc status history =
      let procs = Array.copy c.procs in
      procs.(i) <-
        {
          Config.status;
          history;
          steps = proc.Config.steps + 1;
          recoveries = proc.Config.recoveries;
        };
      procs
    in
    let successors = Store.apply c.store h op in
    let event resp =
      { proc = i; obj = (h :> int); obj_kind = kind; op; resp }
    in
    (match successors with
    | [] ->
      let procs = with_proc Config.Hung proc.Config.history in
      [ ({ c with procs }, event None) ]
    | _ ->
      List.map
        (fun (store', resp) ->
          let status, history =
            Config.advance (k resp) (resp :: proc.Config.history)
          in
          let procs = with_proc status history in
          ({ c with Config.store = store'; procs }, event (Some resp)))
        successors)

(* Crash transitions: instead of stepping, any running process can crash.
   One successor per running process, paired with the victim's index. *)
let crash_successors (c : Config.t) =
  List.map (fun i -> (Config.crash c i, i)) (Config.running c)

(* Recovery transitions: any crashed process can recover, restarting its
   initial program over persistent object state.  One successor per
   crashed process, paired with the recoverer's index. *)
let recover_successors (c : Config.t) =
  List.map (fun i -> (Config.recover c i, i)) (Config.crashed c)
