(** Operational semantics: one process takes one atomic step.

    Stepping a running process applies its pending operation to the store.
    Nondeterministic objects yield several successor configurations; an
    empty successor set marks the process as hung — it will never receive a
    response, and no other process can detect this (Section 2's
    "hangs the system" semantics). *)

type event = {
  proc : int;
  obj : int;  (** handle of the object operated on *)
  obj_kind : string;
  op : Op.t;
  resp : Value.t option;  (** [None] when the invocation hung *)
}

val pp_event : Format.formatter -> event -> unit

(** The slots a transition rewrote: exactly one process slot, and at most
    the listed store slots (increasing handle order; [[]] when the store
    is physically shared with the parent).  The incremental explorer
    patches these into the parent's homomorphic fingerprint
    ({!Fingerprint.hom_patch_proc} / {!Fingerprint.hom_patch_store}) and
    into {!Config.Delta} frontier links, instead of re-folding or copying
    the whole configuration. *)
type slots = { sl_proc : int; sl_store : (Store.handle * Value.t) list }

(** [step config i] is every successor of letting process [i] take one step.
    @raise Invalid_argument if process [i] cannot step. *)
val step : Config.t -> int -> (Config.t * event) list

(** [step_slots config i] is {!step} with each successor's rewritten
    {!slots} attached. *)
val step_slots : Config.t -> int -> (Config.t * event * slots) list

(** [crash_successors config] is every successor obtained by crashing one
    running process, paired with the victim's index.  The crash is a
    transition of the operational semantics: the model checker uses it to
    quantify over crash patterns (bounded by its crash budget). *)
val crash_successors : Config.t -> (Config.t * int) list

(** {!crash_successors} with slots: a crash rewrites only the victim's
    proc slot. *)
val crash_successors_slots : Config.t -> (Config.t * int * slots) list

(** [recover_successors config] is every successor obtained by recovering
    one crashed process ({!Config.recover}), paired with the recoverer's
    index.  Like crashes, recoveries are transitions of the operational
    semantics, bounded by the model checker's recovery budget. *)
val recover_successors : Config.t -> (Config.t * int) list

(** {!recover_successors} with slots: a recovery rewrites the recoverer's
    proc slot plus the store slots its persistence projection changed
    ([[]] for fully persistent stores). *)
val recover_successors_slots : Config.t -> (Config.t * int * slots) list
