(** Operational semantics: one process takes one atomic step.

    Stepping a running process applies its pending operation to the store.
    Nondeterministic objects yield several successor configurations; an
    empty successor set marks the process as hung — it will never receive a
    response, and no other process can detect this (Section 2's
    "hangs the system" semantics). *)

type event = {
  proc : int;
  obj : int;  (** handle of the object operated on *)
  obj_kind : string;
  op : Op.t;
  resp : Value.t option;  (** [None] when the invocation hung *)
}

val pp_event : Format.formatter -> event -> unit

(** [step config i] is every successor of letting process [i] take one step.
    @raise Invalid_argument if process [i] cannot step. *)
val step : Config.t -> int -> (Config.t * event) list

(** [crash_successors config] is every successor obtained by crashing one
    running process, paired with the victim's index.  The crash is a
    transition of the operational semantics: the model checker uses it to
    quantify over crash patterns (bounded by its crash budget). *)
val crash_successors : Config.t -> (Config.t * int) list

(** [recover_successors config] is every successor obtained by recovering
    one crashed process ({!Config.recover}), paired with the recoverer's
    index.  Like crashes, recoveries are transitions of the operational
    semantics, bounded by the model checker's recovery budget. *)
val recover_successors : Config.t -> (Config.t * int) list
