module Imap = Map.Make (Int)

type handle = int

type t = { next : int; objs : (Obj_model.t * Value.t) Imap.t }

let empty = { next = 0; objs = Imap.empty }

let alloc store model =
  let h = store.next in
  ( { next = h + 1; objs = Imap.add h (model, model.Obj_model.init) store.objs },
    h )

let alloc_many store n model =
  let rec loop store acc n =
    if n = 0 then (store, List.rev acc)
    else
      let store, h = alloc store model in
      loop store (h :: acc) (n - 1)
  in
  loop store [] n

let find store h =
  match Imap.find_opt h store.objs with
  | Some entry -> entry
  | None -> invalid_arg (Printf.sprintf "Store: unknown handle %d" h)

let state store h = snd (find store h)
let kind store h = (fst (find store h)).Obj_model.kind
let model store h = fst (find store h)

let apply store h op =
  let model, st = find store h in
  let successors = model.Obj_model.apply st op in
  List.map
    (fun (st', resp) ->
      ({ store with objs = Imap.add h (model, st') store.objs }, resp))
    successors

(* Recovery projection of the whole store: each object's state through its
   model's [persist].  Fully persistent stores (every [persist] is [None],
   the default) are returned physically unchanged, so crash-only
   explorations pay nothing for the recovery machinery. *)
let recover store =
  if
    Imap.for_all (fun _ (model, _) -> Obj_model.all_persistent model) store.objs
  then store
  else
    {
      store with
      objs =
        Imap.map
          (fun (model, st) -> (model, Obj_model.persist_state model st))
          store.objs;
    }

let contents store =
  List.map (fun (h, (_, st)) -> (h, st)) (Imap.bindings store.objs)

let iter store f = Imap.iter (fun h (_, st) -> f h st) store.objs
let cardinal store = Imap.cardinal store.objs

let pp ppf store =
  Imap.iter
    (fun h (model, st) ->
      Format.fprintf ppf "#%d:%s = %a@." h model.Obj_model.kind Value.pp st)
    store.objs
