module Imap = Map.Make (Int)

type handle = int

type t = { next : int; objs : (Obj_model.t * Value.t) Imap.t }

let empty = { next = 0; objs = Imap.empty }

let alloc store model =
  let h = store.next in
  ( { next = h + 1; objs = Imap.add h (model, model.Obj_model.init) store.objs },
    h )

let alloc_many store n model =
  let rec loop store acc n =
    if n = 0 then (store, List.rev acc)
    else
      let store, h = alloc store model in
      loop store (h :: acc) (n - 1)
  in
  loop store [] n

let find store h =
  match Imap.find_opt h store.objs with
  | Some entry -> entry
  | None -> invalid_arg (Printf.sprintf "Store: unknown handle %d" h)

let state store h = snd (find store h)
let kind store h = (fst (find store h)).Obj_model.kind
let model store h = fst (find store h)

let apply store h op =
  let model, st = find store h in
  let successors = model.Obj_model.apply st op in
  List.map
    (fun (st', resp) ->
      ({ store with objs = Imap.add h (model, st') store.objs }, resp))
    successors

let set store h v =
  let model, _ = find store h in
  { store with objs = Imap.add h (model, v) store.objs }

(* Slot-level diff for the incremental fingerprint/delta layer.  Both
   stores must carry the same handle set (they are always a configuration
   and its successor, which never allocates).  Physical equality prunes:
   identical stores diff to [] without traversal, and slots whose states
   are physically shared (the common case — [apply] touches one handle,
   [recover] returns untouched persistent states as-is) are skipped.  A
   structurally-equal-but-physically-distinct state would yield a
   redundant patch, which is harmless: equal contents mix to equal
   fingerprint contributions. *)
let diff old_store new_store =
  if old_store == new_store || old_store.objs == new_store.objs then []
  else
    List.fold_right2
      (fun (h, (_, st_old)) (h', (_, st_new)) acc ->
        if h <> h' then invalid_arg "Store.diff: different handle sets"
        else if st_old == st_new then acc
        else (h', st_new) :: acc)
      (Imap.bindings old_store.objs)
      (Imap.bindings new_store.objs)
      []

(* Recovery projection of the whole store: each object's state through its
   model's [persist].  Fully persistent stores (every [persist] is [None],
   the default) are returned physically unchanged, so crash-only
   explorations pay nothing for the recovery machinery.

   Per-slot physical sharing is preserved whenever the projection is a
   fixed point — [persist] rebuilding a structurally equal value must not
   break the [==] pruning in [diff], or every recovery link in the
   delta-encoded frontier would carry the whole store instead of the
   slots the crash actually erased.  The [Value.equal] check restores
   sharing that a rebuilding [persist] lost; it runs only on the
   recovery path of stores with at least one volatile object. *)
let recover store =
  if
    Imap.for_all (fun _ (model, _) -> Obj_model.all_persistent model) store.objs
  then store
  else
    {
      store with
      objs =
        Imap.map
          (fun (model, st) ->
            let st' = Obj_model.persist_state model st in
            if st' == st || Value.equal st' st then (model, st)
            else (model, st'))
          store.objs;
    }

let contents store =
  List.map (fun (h, (_, st)) -> (h, st)) (Imap.bindings store.objs)

let iter store f = Imap.iter (fun h (_, st) -> f h st) store.objs
let cardinal store = Imap.cardinal store.objs

let pp ppf store =
  Imap.iter
    (fun h (model, st) ->
      Format.fprintf ppf "#%d:%s = %a@." h model.Obj_model.kind Value.pp st)
    store.objs
