(** The shared memory: an immutable map from object handles to objects.

    Persistence is essential: the model checker branches a configuration into
    all successors without copying, and keeps millions of configurations
    alive simultaneously. *)

type handle = private int

type t

val empty : t

(** [alloc store model] allocates a fresh object in its initial state. *)
val alloc : t -> Obj_model.t -> t * handle

(** [alloc_many store n model] allocates [n] objects of the same class. *)
val alloc_many : t -> int -> Obj_model.t -> t * handle list

(** [state store h] is the current state of object [h]. *)
val state : t -> handle -> Value.t

val kind : t -> handle -> string

(** [model store h] is the sequential model object [h] was allocated with
    (its state at allocation time, not the current state — pair it with
    {!state}).  Used by {!Explore}'s independence judgment and by the
    static soundness analyzer ([Subc_analysis]). *)
val model : t -> handle -> Obj_model.t

(** [apply store h op] is every (store', response) successor of performing
    [op] on object [h]; the empty list means the invocation hangs. *)
val apply : t -> handle -> Op.t -> (t * Value.t) list

(** [set store h v] replaces object [h]'s state with [v], keeping its
    model.  Used to replay delta patches when materializing a
    {!Config.Delta} chain. *)
val set : t -> handle -> Value.t -> t

(** [diff old_store new_store] lists the slots whose states changed, in
    increasing handle order.  Both stores must carry the same handle set
    (a configuration and its successor always do).  Physically shared
    slots are skipped, so the diff of a store against itself — or against
    a recovery projection that changed nothing — is [[]] without
    traversal. *)
val diff : t -> t -> (handle * Value.t) list

(** [recover store] applies every object's recovery projection
    ({!Obj_model.persist_state}) to its state — the shared-memory side of a
    crash-recovery transition ({!Config.recover}).  When every object is
    fully persistent (the default) the store is returned physically
    unchanged; otherwise every slot whose projection is a fixed point
    (physically {e or} structurally) keeps its old state value, so
    [diff store (recover store)] lists exactly the slots the crash
    erased — the delta-encoded frontier's recovery links stay as small
    as its step links. *)
val recover : t -> t

(** [contents store] lists (handle, state) pairs in increasing handle order;
    used for configuration canonicalization. *)
val contents : t -> (int * Value.t) list

(** [iter store f] calls [f handle state] on every allocated object, in
    increasing handle order — the allocation-free counterpart of
    {!contents}, used by the fingerprint layer. *)
val iter : t -> (int -> Value.t -> unit) -> unit

val cardinal : t -> int
(** Number of allocated objects. *)

val pp : Format.formatter -> t -> unit
