type perm = int array

let identity n = Array.init n (fun i -> i)
let apply (pi : perm) i = pi.(i)

let rotations n =
  List.init n (fun c -> Array.init n (fun i -> (i + c) mod n))

(* All n! permutations of 0..n-1.  Only sensible for the tiny process
   counts the checker handles exhaustively (n <= 6 or so). *)
let all_perms n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (perms xs)
  in
  perms (List.init n (fun i -> i)) |> List.map Array.of_list

type t = {
  n : int;
  perms : perm list;
  act_data : perm -> Value.t -> Value.t;
  erase_dead : bool;
}

let group_order t = List.length t.perms
let n_procs t = t.n
let perms t = t.perms
let act t pi v = t.act_data pi v

(* The standard data action for the repo's harness conventions:
   - [Int i] with 0 <= i < n is a process index and is renamed (when
     [map_ids]);
   - [Int i] with base <= i < base + n is process i-base's proposal and is
     renamed consistently (when [input_base] is given);
   - a [Vec] of length exactly n is process-indexed (snapshot segments,
     WRN cells, used-flags, scan views): entry i moves to slot pi(i) and
     is itself acted on;
   - everything else is traversed structurally.

   This is a convention the simulator itself does not check: object states
   and responses must index processes only through length-n vectors and
   0..n-1 integers.  The static analyzer (Subc_analysis) certifies it
   mechanically per object model — equivariance of apply under every group
   element over the reachable state space — and the cross-validation suite
   (test_reduction) checks each algorithm family end-to-end against the
   unreduced search. *)
let rec deep_act ~n ~map_ids ~input_base (pi : perm) v =
  match v with
  | Value.Int i when map_ids && 0 <= i && i < n -> Value.Int pi.(i)
  | Value.Int i -> (
    match input_base with
    | Some b when b <= i && i < b + n -> Value.Int (b + pi.(i - b))
    | _ -> v)
  | Value.Vec vs when List.length vs = n ->
    let arr = Array.make n Value.Bot in
    List.iteri
      (fun i x -> arr.(pi.(i)) <- deep_act ~n ~map_ids ~input_base pi x)
      vs;
    Value.Vec (Array.to_list arr)
  | Value.Pair (a, b) ->
    Value.Pair
      (deep_act ~n ~map_ids ~input_base pi a,
       deep_act ~n ~map_ids ~input_base pi b)
  | Value.Vec vs -> Value.Vec (List.map (deep_act ~n ~map_ids ~input_base pi) vs)
  | Value.Tag (s, x) -> Value.Tag (s, deep_act ~n ~map_ids ~input_base pi x)
  | _ -> v

let make ~n ~perms ?(erase_dead = true) act_data =
  if perms = [] then invalid_arg "Symmetry.make: empty permutation group";
  List.iter
    (fun pi ->
      if Array.length pi <> n then
        invalid_arg "Symmetry.make: permutation arity mismatch")
    perms;
  { n; perms; act_data; erase_dead }

let standard ~n ?input_base ?(map_ids = true) ?(erase_dead = true) grp =
  let perms =
    match grp with
    | `Trivial -> [ identity n ]
    | `Rotations -> rotations n
    | `Full -> all_perms n
  in
  make ~n ~perms ~erase_dead (fun pi v -> deep_act ~n ~map_ids ~input_base pi v)

let trivial ~n = standard ~n ~map_ids:false ~erase_dead:false `Trivial
let erasure_only ~n = standard ~n ~map_ids:false ~erase_dead:true `Trivial

(* Key of [c] under one renaming [pi].  Mirrors [Config.key] with three
   differences: (1) object states and data values go through the symmetry
   action; (2) process entry i is placed at slot pi(i); (3) with
   [erase_dead], the response histories of finished (terminated or hung)
   processes are dropped — they can no longer influence the execution, and
   no checker reads stored histories, so configurations differing only in
   how a finished process got there are merged.  Crashed histories are
   already cleared by [Config.crash].  Additionally, in a terminal
   configuration with no crashed process, no object will ever be invoked
   again, so the whole store is dead and is erased from the key.  A
   terminal {e with} crashed processes must keep its store: under a
   positive recovery budget the adversary can still revive a victim,
   whose future reads the store — erasing it would merge configurations
   with genuinely different futures (observed as schedule-dependent state
   counts under the source-set reduction before this guard existed). *)
let key_under t (pi : perm) (c : Config.t) =
  let act = t.act_data pi in
  let terminal =
    t.erase_dead && Config.is_terminal c && not (Config.any_crashed c)
  in
  let store_part =
    if terminal then Value.Sym "terminal"
    else
      Value.Vec
        (List.map
           (fun (h, st) -> Value.Pair (Value.Int h, act st))
           (Store.contents c.Config.store))
  in
  let act_proc (p : Config.proc) =
    let status =
      match p.Config.status with
      | Config.Running _ -> Value.Sym "run"
      | Config.Terminated v -> Value.Tag ("done", act v)
      | Config.Hung -> Value.Sym "hung"
      | Config.Crashed -> Value.Sym "crash"
      | Config.Recovering _ -> Value.Sym "recover"
    in
    let history =
      match p.Config.status with
      | (Config.Terminated _ | Config.Hung) when t.erase_dead -> []
      | _ ->
        (* The history is a sequence of responses: act on each element,
           never permute the list itself. *)
        List.map act p.Config.history
    in
    (* The recovery counter is never erased, even for finished processes:
       the remaining recovery budget is a function of the total consumed,
       so merging configurations that differ in it would be unsound. *)
    Value.Pair
      (status, Value.Pair (Value.Int p.Config.recoveries, Value.Vec history))
  in
  let procs = Array.make t.n Value.Unit in
  Array.iteri (fun i p -> procs.(pi.(i)) <- act_proc p) c.Config.procs;
  Value.Pair (store_part, Value.Vec (Array.to_list procs))

(* Canonical representative: minimum key over the group, together with the
   permutation that achieves it (used to transport sleep sets into
   canonical coordinates).  Ties keep the earliest permutation in group
   order, so the winner is a deterministic function of the configuration
   alone. *)
let min_over_perms t c perms =
  match perms with
  | [] -> assert false
  | pi0 :: rest ->
    let best_key = ref (key_under t pi0 c) and best_pi = ref pi0 in
    List.iter
      (fun pi ->
        let k = key_under t pi c in
        if compare k !best_key < 0 then begin
          best_key := k;
          best_pi := pi
        end)
      rest;
    (!best_key, !best_pi)

(* All permutations achieving the canonical key, in group order (the head
   is [canonical_key]'s winner).  The source-set engine needs the full
   stabilizer coset to encode sleep sets representative-independently:
   when the canonical state is fixed by more than one group element,
   orbit-mates canonicalize through minimizers that differ by a
   stabilizer element, and a sleep set transported through just the
   tie-broken winner would encode one abstract (state, sleep) pair
   several ways. *)
let canonical_minimizers t (c : Config.t) =
  match t.perms with
  | [] -> assert false
  | pi0 :: rest ->
    let best_key = ref (key_under t pi0 c) and mins = ref [ pi0 ] in
    List.iter
      (fun pi ->
        let k = key_under t pi c in
        let d = compare k !best_key in
        if d < 0 then begin
          best_key := k;
          mins := [ pi ]
        end
        else if d = 0 then mins := pi :: !mins)
      rest;
    (!best_key, List.rev !mins)

(* Below this group order the fold is too cheap to amortize a domain
   spawn; above it the per-chunk minima dominate the join cost.  E17's
   p3 row measured a 27x penalty at |G| = 24 with the old threshold of
   64: spawning domains per canonicalization loses badly until the
   group has hundreds of permutations, so small orbits (every k <= 5
   symmetric family here) stay sequential whatever [jobs] says. *)
let parallel_threshold = 512

let canonical_key ?(jobs = 1) t (c : Config.t) =
  if jobs <= 1 || List.length t.perms < parallel_threshold then
    min_over_perms t c t.perms
  else begin
    (* Orbit minimization is an embarrassingly parallel fold: split the
       group into contiguous chunks, minimize each on its own domain,
       then reduce.  Chunks preserve group order and the reduce keeps
       the earliest chunk on ties, so the winning permutation is exactly
       the sequential one at any [jobs]. *)
    let chunks = Parmap.chunk ~pieces:jobs t.perms in
    let minima = Parmap.map ~jobs (min_over_perms t c) chunks in
    match minima with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun (bk, bp) (k, p) -> if compare k bk < 0 then (k, p) else (bk, bp))
        first rest
  end
