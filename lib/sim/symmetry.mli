(** Process-symmetry specifications for state-space reduction.

    Many of the paper's algorithms are {e symmetric}: every process runs the
    same program up to renaming, and the objects treat process identities
    uniformly (or, for ring-structured algorithms such as WRN's "read the
    next cell", uniformly up to rotation).  If [pi] is an automorphism of
    the transition system, then configurations [c] and [pi(c)] have
    isomorphic futures, and the model checker only needs to explore one
    representative per orbit.  This module describes the automorphism
    group and its action on configurations; {!Explore} uses it to
    canonicalize memoization keys.

    {b Soundness obligations, and who discharges them.}  The spec given to
    the explorer must be a true automorphism group.  Its object-level
    obligations are discharged {e mechanically} by the static soundness
    analyzer ([Subc_analysis], CLI [analyze]): for every registered object
    model it certifies that each group element is an automorphism of the
    object's reachable transition system (π∘apply = apply∘π on states and
    responses, hangs included), that the group fixes the initial state and
    maps the protocol's op alphabet into itself, and — for objects claiming
    the full symmetric group — that the object is value-oblivious.  Two
    obligations remain {e out of the analyzer's scope} and stay with the
    caller: the checked property must be invariant under the renaming
    (agreement, set-validity, termination and step-count bounds all are; a
    property naming a specific process is not), and processes in the same
    orbit must run the same program modulo the data action.  The
    cross-validation suite ([test_reduction]) additionally checks each
    algorithm family end-to-end by comparing reduced and unreduced
    verdicts.

    The group to use depends on the algorithm:
    - full symmetric group ([`Full]) for read/write and snapshot-based
      algorithms and for proposal-oblivious objects (set-consensus
      objects, SSE);
    - rotations only ([`Rotations]) for WRN-family rings, where process i
      reads cell (i+1) mod k: an arbitrary transposition breaks the ring
      structure, but rotating all indices preserves it;
    - [`Trivial] when no renaming is valid (asymmetric programs); the spec
      can still enable dead-history erasure. *)

type perm = int array
(** [pi.(i)] is the image of process [i]. *)

val identity : int -> perm
val apply : perm -> int -> int

val rotations : int -> perm list
(** The cyclic group: all [n] rotations of [0..n-1], identity included. *)

val all_perms : int -> perm list
(** The full symmetric group ([n!] elements) — only for tiny [n]. *)

type t

val make :
  n:int ->
  perms:perm list ->
  ?erase_dead:bool ->
  (perm -> Value.t -> Value.t) ->
  t
(** [make ~n ~perms act] builds a spec from an explicit group and data
    action.  [erase_dead] (default true) additionally drops the response
    histories of terminated/hung processes — and, for terminal
    configurations with no crashed process, the whole store — from the
    memo key; this is sound independently of the group because finished
    state can no longer influence the execution and no checker reads it
    back.  A terminal {e with} crashed processes keeps its store: under a
    positive recovery budget a victim can still be revived and its future
    reads the store. *)

val standard :
  n:int ->
  ?input_base:int ->
  ?map_ids:bool ->
  ?erase_dead:bool ->
  [ `Trivial | `Rotations | `Full ] ->
  t
(** The spec for the repo's standard harness conventions: process ids are
    integers [0..n-1] (renamed when [map_ids], default true), proposals are
    [input_base..input_base+n-1] (renamed consistently when given), and any
    [Vec] of length exactly [n] inside object states, responses, or decided
    values is process-indexed.  See {!deep_act}. *)

val trivial : n:int -> t
(** Identity group, no erasure: canonicalization is (an erased-field-free
    rendering of) [Config.key].  Useful as an explicit "no symmetry". *)

val erasure_only : n:int -> t
(** Identity group with dead-history/terminal-store erasure: a reduction
    that is sound for {e every} algorithm, symmetric or not. *)

val deep_act :
  n:int -> map_ids:bool -> input_base:int option -> perm -> Value.t -> Value.t
(** The standard data action (exposed for property tests): renames process
    ids and proposal values, permutes the slots of every length-[n] [Vec]
    (recursing into entries), and traverses pairs/tags/other vectors
    structurally. *)

val n_procs : t -> int
val group_order : t -> int

val perms : t -> perm list
(** The explicit group, identity included (exposed for the soundness
    analyzer and for property tests). *)

val act : t -> perm -> Value.t -> Value.t
(** The spec's data action on a single value (object state, op argument or
    response).  The soundness analyzer uses it to verify that every group
    element is an automorphism of each object's transition system. *)

val key_under : t -> perm -> Config.t -> Value.t
(** The memoization key of a configuration under one fixed renaming
    (exposed for property tests). *)

val canonical_minimizers : t -> Config.t -> Value.t * perm list
(** [canonical_minimizers t c] is the canonical key together with {e every}
    permutation achieving it, in group order (so the head is
    {!canonical_key}'s winner).  The list is the coset of the canonical
    representative's stabilizer; {!Explore} minimizes the packed sleep-set
    encoding over it so the (state, sleep) visited key is an orbit
    invariant of the abstract pair rather than of whichever concrete
    representative arrived first.  Almost all states have a trivial
    stabilizer, making the list a singleton. *)

val canonical_key : ?jobs:int -> t -> Config.t -> Value.t * perm
(** [canonical_key t c] is the minimum of [key_under t pi c] over the
    group, with the permutation that achieves it.  The permutation is used
    by {!Explore} to transport sleep sets into canonical coordinates.
    Canonicalization is idempotent ([canonical_key] of any orbit member
    yields the same key) and permutation-invariant.

    [jobs > 1] parallelizes the orbit minimization across that many
    domains for groups of order [>= 64] (ROADMAP: the dominant per-state
    cost under [--reduction sym] for large groups).  The result — key
    {e and} winning permutation — is identical at any [jobs]: chunks
    preserve group order and ties keep the earliest element.  Do not
    combine with an exploration that is itself running on multiple
    domains; nested fan-out oversubscribes the host. *)
