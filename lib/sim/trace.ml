type t = Step.event list

let empty = []
let length = List.length

let events_of t i = List.filter (fun e -> e.Step.proc = i) t

let indexed t = List.mapi (fun idx e -> (idx, e)) t

let first_step t i =
  List.find_map
    (fun (idx, e) -> if e.Step.proc = i then Some idx else None)
    (indexed t)

let last_step t i =
  List.fold_left
    (fun acc (idx, e) -> if e.Step.proc = i then Some idx else acc)
    None (indexed t)

let schedule t = List.map (fun e -> e.Step.proc) t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun idx e -> Format.fprintf ppf "%3d. %a@," idx Step.pp_event e)
    t;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let pp_diagram ~n_procs ppf t =
  let width = 26 in
  (* Pad by codepoints, not bytes: responses routinely contain ⊥. *)
  let display_len s =
    String.fold_left
      (fun acc c -> if Char.code c land 0xC0 <> 0x80 then acc + 1 else acc)
      0 s
  in
  let pad s =
    let len = display_len s in
    if len >= width then s else s ^ String.make (width - len) ' '
  in
  let header =
    String.concat " | "
      (List.init n_procs (fun i -> pad (Printf.sprintf "P%d" i)))
  in
  Format.fprintf ppf "%s@." header;
  Format.fprintf ppf "%s@."
    (String.concat "-+-" (List.init n_procs (fun _ -> String.make width '-')));
  List.iter
    (fun (e : Step.event) ->
      let cell =
        match e.Step.resp with
        | Some r ->
          Printf.sprintf "%s->%s" (Op.to_string e.Step.op) (Value.to_string r)
        | None -> Printf.sprintf "%s->HANG" (Op.to_string e.Step.op)
      in
      let row =
        String.concat " | "
          (List.init n_procs (fun i ->
               pad (if i = e.Step.proc then cell else "")))
      in
      Format.fprintf ppf "%s@." row)
    t
