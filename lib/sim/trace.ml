type event = Sched of Step.event | Crash of int | Recover of int
type t = event list

let empty = []
let length = List.length
let sched e = Sched e
let crash_of i = Crash i
let recover_of i = Recover i

let actor = function Sched e -> e.Step.proc | Crash i | Recover i -> i

let ops t =
  List.filter_map
    (function Sched e -> Some e | Crash _ | Recover _ -> None)
    t

let crashes t =
  List.filter_map
    (function Crash i -> Some i | Sched _ | Recover _ -> None)
    t

let recoveries t =
  List.filter_map
    (function Recover i -> Some i | Sched _ | Crash _ -> None)
    t

let events_of t i =
  List.filter (fun (e : Step.event) -> e.Step.proc = i) (ops t)

let indexed t = List.mapi (fun idx e -> (idx, e)) t

let first_step t i =
  List.find_map
    (fun (idx, ev) ->
      match ev with
      | Sched e when e.Step.proc = i -> Some idx
      | Sched _ | Crash _ | Recover _ -> None)
    (indexed t)

let last_step t i =
  List.fold_left
    (fun acc (idx, ev) ->
      match ev with
      | Sched e when e.Step.proc = i -> Some idx
      | Sched _ | Crash _ | Recover _ -> acc)
    None (indexed t)

let schedule t = List.map (fun (e : Step.event) -> e.Step.proc) (ops t)

let pp_event ppf = function
  | Sched e -> Step.pp_event ppf e
  | Crash i -> Format.fprintf ppf "P%d: CRASH" i
  | Recover i -> Format.fprintf ppf "P%d: RECOVER" i

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun idx e -> Format.fprintf ppf "%3d. %a@," idx pp_event e)
    t;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let pp_diagram ~n_procs ppf t =
  let width = 26 in
  (* Pad by codepoints, not bytes: responses routinely contain ⊥. *)
  let display_len s =
    String.fold_left
      (fun acc c -> if Char.code c land 0xC0 <> 0x80 then acc + 1 else acc)
      0 s
  in
  let pad s =
    let len = display_len s in
    if len >= width then s else s ^ String.make (width - len) ' '
  in
  let header =
    String.concat " | "
      (List.init n_procs (fun i -> pad (Printf.sprintf "P%d" i)))
  in
  Format.fprintf ppf "%s@." header;
  Format.fprintf ppf "%s@."
    (String.concat "-+-" (List.init n_procs (fun _ -> String.make width '-')));
  List.iter
    (fun ev ->
      let proc, cell =
        match ev with
        | Sched e ->
          let cell =
            match e.Step.resp with
            | Some r ->
              Printf.sprintf "%s->%s" (Op.to_string e.Step.op)
                (Value.to_string r)
            | None -> Printf.sprintf "%s->HANG" (Op.to_string e.Step.op)
          in
          (e.Step.proc, cell)
        | Crash i -> (i, "CRASH ††")
        | Recover i -> (i, "RECOVER ↺")
      in
      let row =
        String.concat " | "
          (List.init n_procs (fun i -> pad (if i = proc then cell else "")))
      in
      Format.fprintf ppf "%s@." row)
    t
