(** Executions as data: the sequence of events of a run.

    A trace together with the initial configuration determines the whole
    execution (programs are deterministic; each event records the resolved
    nondeterministic choice).  Traces are the counterexamples produced by
    the model checker and the raw material of the linearizability checker. *)

type t = Step.event list  (** in execution order *)

val empty : t
val length : t -> int

(** [events_of t i] are process [i]'s events, in order. *)
val events_of : t -> int -> Step.event list

(** [first_step t i] is the index in [t] of process [i]'s first event. *)
val first_step : t -> int -> int option

(** [last_step t i] is the index in [t] of process [i]'s last event. *)
val last_step : t -> int -> int option

(** The process schedule of the trace. *)
val schedule : t -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [pp_diagram ~n_procs ppf t] renders a space-time diagram: one column
    per process, one row per step, the acting process's column showing its
    operation and response. *)
val pp_diagram : n_procs:int -> Format.formatter -> t -> unit
