(** Executions as data: the sequence of events of a run.

    A trace together with the initial configuration determines the whole
    execution (programs are deterministic; each event records the resolved
    nondeterministic choice).  Traces are the counterexamples produced by
    the model checker and the raw material of the linearizability checker.

    Crash faults are events of the trace: [Crash i] records the point in
    the execution at which the adversary stopped process [i], and
    [Recover i] the point at which it revived it ({!Config.recover}).  A
    trace containing crashes and recoveries replays deterministically
    ({!Replay}), so a counterexample schedule under a crash or recovery
    adversary is reproducible. *)

type event =
  | Sched of Step.event  (** process [e.proc] took one atomic step *)
  | Crash of int  (** the adversary crashed the named process *)
  | Recover of int  (** the adversary recovered the named crashed process *)

type t = event list  (** in execution order *)

val empty : t
val length : t -> int

val sched : Step.event -> event
val crash_of : int -> event
val recover_of : int -> event

(** [actor e] is the process the event concerns (the stepper, the crash
    victim, or the recoverer). *)
val actor : event -> int

(** The scheduled (operation) events of the trace, crashes and recoveries
    elided. *)
val ops : t -> Step.event list

(** The crash victims of the trace, in crash order. *)
val crashes : t -> int list

(** The recovered processes of the trace, in recovery order. *)
val recoveries : t -> int list

(** [events_of t i] are process [i]'s operation events, in order. *)
val events_of : t -> int -> Step.event list

(** [first_step t i] is the index in [t] of process [i]'s first operation
    event (crash and recovery events occupy indices but never match). *)
val first_step : t -> int -> int option

(** [last_step t i] is the index in [t] of process [i]'s last operation
    event. *)
val last_step : t -> int -> int option

(** The process schedule of the trace (crashes and recoveries elided). *)
val schedule : t -> int list

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [pp_diagram ~n_procs ppf t] renders a space-time diagram: one column
    per process, one row per event, the acting process's column showing its
    operation and response — or its crash. *)
val pp_diagram : n_procs:int -> Format.formatter -> t -> unit
