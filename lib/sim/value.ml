type t =
  | Bot
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string
  | Pair of t * t
  | Vec of t list
  | Tag of string * t

(* The type is purely first-order (no functions, no cycles), so the
   polymorphic comparison and hash are sound and total. *)
let compare = Stdlib.compare
let equal a b = compare a b = 0
let hash = Hashtbl.hash

let rec pp ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Sym s -> Format.pp_print_string ppf s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | Vec vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      vs
  | Tag (s, v) -> Format.fprintf ppf "%s%a" s pp_tag_arg v

and pp_tag_arg ppf = function
  | Unit -> ()
  | v -> Format.fprintf ppf "(%a)" pp v

let to_string v = Format.asprintf "%a" pp v

let int i = Int i
let bool b = Bool b
let sym s = Sym s
let pair a b = Pair (a, b)
let vec vs = Vec vs
let bot_vec n = Vec (List.init n (fun _ -> Bot))
let of_int_list is = Vec (List.map int is)

exception Type_error of string * t

let type_error expected v = raise (Type_error (expected, v))

let to_int = function Int i -> i | v -> type_error "Int" v
let to_bool = function Bool b -> b | v -> type_error "Bool" v
let to_sym = function Sym s -> s | v -> type_error "Sym" v
let to_pair = function Pair (a, b) -> (a, b) | v -> type_error "Pair" v
let to_vec = function Vec vs -> vs | v -> type_error "Vec" v

let vec_get v i =
  match v with
  | Vec vs ->
    (try List.nth vs i with Failure _ | Invalid_argument _ -> type_error "Vec index" v)
  | _ -> type_error "Vec" v

let vec_set v i x =
  match v with
  | Vec vs ->
    if i < 0 || i >= List.length vs then type_error "Vec index" v
    else Vec (List.mapi (fun j y -> if j = i then x else y) vs)
  | _ -> type_error "Vec" v

let vec_length v = List.length (to_vec v)
let is_bot v = v = Bot
