(** Universal immutable value domain.

    Object states, operation arguments and operation responses all live in
    this single type, so that the simulator can treat every shared object
    uniformly and so that whole configurations can be canonicalized (hashed
    and compared) by the model checker.  [Bot] is the paper's distinguished
    value {m \bot}. *)

type t =
  | Bot                   (** the paper's {m \bot} (also: "no value yet") *)
  | Unit
  | Bool of bool
  | Int of int
  | Sym of string         (** symbolic atom, e.g. [Sym "opened"] *)
  | Pair of t * t
  | Vec of t list         (** fixed-size vector / array *)
  | Tag of string * t     (** tagged value, e.g. [Tag ("win", Int 3)] *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Construction helpers} *)

val int : int -> t
val bool : bool -> t
val sym : string -> t
val pair : t -> t -> t
val vec : t list -> t

(** [bot_vec n] is a vector of [n] copies of [Bot]. *)
val bot_vec : int -> t

val of_int_list : int list -> t

(** {1 Destruction helpers}

    These raise [Type_error] when the value has the wrong shape; shape errors
    are programming errors in algorithm code, never modeled nondeterminism. *)

exception Type_error of string * t

val to_int : t -> int
val to_bool : t -> bool
val to_sym : t -> string
val to_pair : t -> t * t
val to_vec : t -> t list

(** [vec_get v i] is the [i]-th component of vector [v]. *)
val vec_get : t -> int -> t

(** [vec_set v i x] is [v] with component [i] replaced by [x] (functional
    update). *)
val vec_set : t -> int -> t -> t

val vec_length : t -> int

(** [is_bot v] is [true] iff [v = Bot]. *)
val is_bot : t -> bool
