(* Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005; memory-model
   treatment per Lê, Pop, Cohen & Zappa Nardelli, PPoPP 2013).

   One owner domain pushes and pops at the {e bottom}; any number of
   thief domains steal from the {e top}.  Owner operations are wait-free
   and CAS-free except when racing a thief for the last element; steals
   are lock-free (a failed CAS means another thief or the owner won).

   ABA avoidance is by {e top-stamping}: [top] is a monotonically
   increasing position counter, never an array index or pointer.  It is
   incremented by successful steals (and by the owner when it takes the
   last element) and never decremented or reused, so a thief's CAS
   [top: t -> t+1] can only succeed if no other take of position [t]
   happened in between — two takes of the same position would need two
   successful CASes from the same [t], which a monotone counter makes
   impossible.  The circular array is indexed by [position land mask],
   so reusing a slot is harmless: the slot's {e position} is new.

   Memory-model argument for the plain (non-atomic) cell accesses, under
   OCaml 5's SC-for-atomics model ([top], [bottom] and the buffer pointer
   are [Atomic.t]):

   - A thief reads, in order: [top] (= t), [bottom], the buffer pointer,
     the cell at position [t], then CASes [top: t -> t+1].  The owner
     writes a cell at position [b] {e before} publishing it with the
     atomic [bottom := b+1].  A thief that observed [bottom > t]
     therefore observed an atomic write that happens-after the cell
     write, so its plain read of cell [t] is ordered after the writing
     — it sees the intended value, and the access is not racy.
   - The owner may overwrite the cell at position [t] only after [top]
     has moved past [t] (the slot is recycled [capacity] positions
     later, and pushes keep [b - t <= capacity]).  If the owner's
     overwrite could race the thief's read, then [top] already passed
     [t] — so the thief's CAS from [t] fails, and the possibly-torn-free
     but stale value is discarded.  A successful CAS certifies the read.

   The buffer grows by doubling (owner-only); stale buffers remain valid
   for in-flight thieves because positions, not indices, are the names
   of elements, and the grow copies every live position. *)

type 'a buf = { mask : int; cells : 'a array }

type 'a t = {
  top : int Atomic.t; (* next position to steal; monotone *)
  bottom : int Atomic.t; (* next position to push; owner-written *)
  buf : 'a buf Atomic.t;
  dummy : 'a; (* fills vacated cells so the GC can drop payloads *)
}

let create ?(capacity = 64) ~dummy () =
  let cap =
    let rec up c = if c >= capacity then c else up (c * 2) in
    up 16
  in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make { mask = cap - 1; cells = Array.make cap dummy };
    dummy;
  }

(* Racy size estimate — victim selection only, never correctness. *)
let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner-only: double the buffer, copying live positions [tp, b). *)
let grow t b tp =
  let old = Atomic.get t.buf in
  let cap = (old.mask + 1) * 2 in
  let cells = Array.make cap t.dummy in
  for p = tp to b - 1 do
    cells.(p land (cap - 1)) <- old.cells.(p land old.mask)
  done;
  Atomic.set t.buf { mask = cap - 1; cells }

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf =
    if b - tp > buf.mask then begin
      grow t b tp;
      Atomic.get t.buf
    end
    else buf
  in
  buf.cells.(b land buf.mask) <- x;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if tp > b then begin
    (* Already empty: restore the canonical empty shape. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.cells.(b land buf.mask) in
    if tp = b then begin
      (* Last element: race thieves for position [b] via the top CAS. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then Some x else None
    end
    else begin
      buf.cells.(b land buf.mask) <- t.dummy;
      Some x
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b - tp <= 0 then `Empty
  else begin
    let buf = Atomic.get t.buf in
    let x = buf.cells.(tp land buf.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then `Stolen x
    else `Retry
  end
