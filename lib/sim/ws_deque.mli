(** Chase–Lev work-stealing deque.

    Single-owner, multi-thief: the owner domain pushes and pops LIFO at
    the bottom; other domains steal FIFO from the top with a lock-free
    CAS.  The top index is a monotone position counter ([top-stamping]),
    which rules out ABA: a successful CAS [t -> t+1] certifies that the
    value read at position [t] was not concurrently taken.  See the
    implementation comment and DESIGN.md, "Work stealing", for the
    memory-model argument covering the plain cell accesses. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] — [dummy] fills vacated cells (so popped payloads
    are not retained) and is never returned.  [capacity] is rounded up
    to a power of two; the buffer grows by doubling when full. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only: LIFO end.  [None] iff the deque is empty (a concurrent
    thief may win the race for the last element). *)

val steal : 'a t -> [ `Stolen of 'a | `Empty | `Retry ]
(** Any domain: one steal attempt at the FIFO end.  [`Retry] means the
    CAS lost to a concurrent take — the element may or may not remain;
    the caller decides whether to retry here or move to another victim. *)

val size : 'a t -> int
(** Racy estimate of the current length — victim selection only. *)
