open Subc_sim

type outcome = { proc : int; input : Value.t; output : Value.t option }
type t = { name : string; check : outcome list -> (unit, string) result }

let outcomes ~inputs config =
  List.mapi
    (fun proc input -> { proc; input; output = Config.decision config proc })
    inputs

let decided os = List.filter_map (fun o -> o.output) os

let distinct vs =
  List.fold_left
    (fun acc v -> if List.exists (Value.equal v) acc then acc else acc @ [ v ])
    [] vs

let satisfies task ~inputs config =
  Result.is_ok (task.check (outcomes ~inputs config))

let explain task ~inputs config =
  match task.check (outcomes ~inputs config) with
  | Ok () -> None
  | Error reason -> Some reason

let errorf fmt = Format.kasprintf (fun s -> Error s) fmt

let validity os =
  let inputs = List.map (fun o -> o.input) os in
  match
    List.find_opt
      (fun v -> not (List.exists (Value.equal v) inputs))
      (decided os)
  with
  | None -> Ok ()
  | Some v -> errorf "validity: output %a is nobody's input" Value.pp v

let k_agreement k os =
  let d = distinct (decided os) in
  if List.length d <= k then Ok ()
  else
    errorf "%d-agreement: %d distinct outputs: %a" k (List.length d)
      Value.pp (Value.Vec d)

let ( &&& ) a b = match a with Ok () -> b | Error _ as e -> e

let set_consensus k =
  {
    name = Printf.sprintf "%d-set-consensus" k;
    check = (fun os -> validity os &&& k_agreement k os);
  }

let consensus = { (set_consensus 1) with name = "consensus" }

(* In election tasks each process's input is its own identifier; the checks
   are the same — validity just means "output is a participant". *)
let set_election k = { (set_consensus k) with name = Printf.sprintf "%d-set-election" k }
let election = { (set_consensus 1) with name = "election" }

let self_election os =
  let violating o =
    match o.output with
    | Some out when not (Value.equal out o.input) -> (
      (* Someone decided on [out]; the process whose identifier is [out]
         must decide on itself (if it decided at all). *)
      match List.find_opt (fun o' -> Value.equal o'.input out) os with
      | Some { output = Some out'; _ } when not (Value.equal out' out) -> true
      | Some _ | None -> false)
    | Some _ | None -> false
  in
  match List.find_opt violating os with
  | None -> Ok ()
  | Some o ->
    errorf "self-election: P%d decided %a but that process decided otherwise"
      o.proc Value.pp (Option.get o.output)

let strong_set_election k =
  let base = set_election k in
  {
    name = Printf.sprintf "%d-strong-set-election" k;
    check = (fun os -> base.check os &&& self_election os);
  }

let renaming ~bound =
  {
    name = Printf.sprintf "renaming<%d" bound;
    check =
      (fun os ->
        let names = decided os in
        let in_range = function
          | Value.Int n -> 0 <= n && n < bound
          | _ -> false
        in
        match List.find_opt (fun v -> not (in_range v)) names with
        | Some v -> errorf "renaming: name %a out of [0,%d)" Value.pp v bound
        | None ->
          if List.length (distinct names) = List.length names then Ok ()
          else errorf "renaming: duplicate names: %a" Value.pp (Value.Vec names));
  }

let all_decided =
  {
    name = "all-decided";
    check =
      (fun os ->
        match List.find_opt (fun o -> o.output = None) os with
        | None -> Ok ()
        | Some o -> errorf "process P%d never decided" o.proc);
  }

let conj t1 t2 =
  {
    name = t1.name ^ " & " ^ t2.name;
    check = (fun os -> t1.check os &&& t2.check os);
  }
