(** Task specifications (Section 2).

    A task specifies which combinations of output values are allowed, given
    the input value of each participating process.  A task here is a
    decidable predicate over the outcomes of one execution; the model
    checker evaluates it on every reachable terminal configuration, the
    random runners on sampled ones. *)

open Subc_sim

type outcome = {
  proc : int;
  input : Value.t;
  output : Value.t option;  (** [None] — the process never decided *)
}

type t = {
  name : string;
  check : outcome list -> (unit, string) result;
      (** [Error reason] describes the violated property *)
}

(** [outcomes ~inputs config] pairs each process's input with its decision
    in (usually terminal) [config]. *)
val outcomes : inputs:Value.t list -> Config.t -> outcome list

(** [decided os] is the list of outputs that were actually produced. *)
val decided : outcome list -> Value.t list

(** [distinct vs] with duplicates removed (order preserved). *)
val distinct : Value.t list -> Value.t list

(** [satisfies task ~inputs config] — convenience wrapper. *)
val satisfies : t -> inputs:Value.t list -> Config.t -> bool

(** [explain task ~inputs config] is [None] if satisfied, or the reason. *)
val explain : t -> inputs:Value.t list -> Config.t -> string option

(** {1 The tasks of the paper} *)

(** Consensus: validity + agreement. *)
val consensus : t

(** [set_consensus k]: validity + at-most-[k] distinct outputs
    (k-agreement).  [set_consensus 1 = consensus]. *)
val set_consensus : int -> t

(** Election: consensus where inputs are the participants' identifiers. *)
val election : t

(** [set_election k]: k-set consensus over identifiers. *)
val set_election : int -> t

(** [strong_set_election k]: [set_election k] plus Self-Election — if some
    process decides on [j], then process [j] decides on itself.  (When [j]
    never decides, the property is judged on the processes that did.) *)
val strong_set_election : int -> t

(** [renaming ~bound]: outputs are pairwise-distinct names in [0, bound). *)
val renaming : bound:int -> t

(** [all_decided]: every process produced an output (wait-freedom of the
    run itself — useful combined with others). *)
val all_decided : t

(** [conj t1 t2] checks both. *)
val conj : t -> t -> t
