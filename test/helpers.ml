(* Shared test utilities. *)
open Subc_sim
module Verdict = Subc_check.Verdict

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

(* Distinct proposal values for k processes: 100, 101, … *)
let inputs k = List.init k (fun i -> Value.Int (100 + i))

let explore_stats_exn (v : Verdict.t) =
  match (Verdict.stats v).Verdict.explore with
  | Some e -> e
  | None -> Alcotest.fail "verdict carries no exploration stats"

let options_of ?max_states () =
  Subc_sim.Search.of_legacy ?max_states ()

let check_exhaustive ?max_states store ~programs ~inputs ~task =
  match
    Subc_check.Task_check.check
      ~options:(options_of ?max_states ())
      store ~programs ~inputs ~task
  with
  | Verdict.Proved _ as v -> explore_stats_exn v
  | Verdict.Limited _ -> Alcotest.fail "exhaustive check hit the state limit"
  | Verdict.Refuted { reason; trace; _ } ->
    Alcotest.failf "task %s violated: %s@.%a" task.Subc_tasks.Task.name reason
      Trace.pp trace

(* The historical helper semantics (no infinite schedule, no hangs) is
   0-resilient termination; the per-process solo-bound certificate is
   [Subc_check.Progress.check_wait_free], exercised in test_reduction. *)
let check_wait_free ?max_states store ~programs =
  match
    Subc_check.Progress.check_t_resilient
      ~options:(options_of ?max_states ())
      ~t:0 store ~programs
  with
  | Verdict.Proved _ as v -> explore_stats_exn v
  | Verdict.Limited _ -> Alcotest.fail "wait-freedom check hit the state limit"
  | Verdict.Refuted { reason; _ } ->
    Alcotest.failf "wait-freedom violated: %s" reason

let expect_violation ?max_states store ~programs ~inputs ~task =
  match
    Subc_check.Task_check.check
      ~options:(options_of ?max_states ())
      store ~programs ~inputs ~task
  with
  | Verdict.Proved _ | Verdict.Limited _ ->
    Alcotest.failf "expected a violation of %s, found none"
      task.Subc_tasks.Task.name
  | Verdict.Refuted { reason; trace; _ } -> (reason, trace)

(* Run under a fixed schedule (extended round-robin when exhausted). *)
let run_fixed store ~programs ~schedule =
  let config = Config.make store programs in
  Runner.run (Runner.Fixed schedule) config

let decision_exn final i =
  match Config.decision final i with
  | Some v -> v
  | None -> Alcotest.failf "process %d did not decide" i

let test name f = Alcotest.test_case name `Quick f
let test_slow name f = Alcotest.test_case name `Slow f

let seeds n = List.init n (fun i -> 7919 * (i + 1))
