(* Shared test utilities. *)
open Subc_sim

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

(* Distinct proposal values for k processes: 100, 101, … *)
let inputs k = List.init k (fun i -> Value.Int (100 + i))

let check_exhaustive ?max_states store ~programs ~inputs ~task =
  match
    Subc_check.Task_check.exhaustive ?max_states store ~programs ~inputs ~task
  with
  | Ok stats ->
    if stats.Subc_sim.Explore.limited then
      Alcotest.fail "exhaustive check hit the state limit";
    stats
  | Error (reason, trace) ->
    Alcotest.failf "task %s violated: %s@.%a" task.Subc_tasks.Task.name reason
      Trace.pp trace

let check_wait_free ?max_states store ~programs =
  match Subc_check.Task_check.wait_free ?max_states store ~programs with
  | Ok stats -> stats
  | Error reason -> Alcotest.failf "wait-freedom violated: %s" reason

let expect_violation ?max_states store ~programs ~inputs ~task =
  match
    Subc_check.Task_check.exhaustive ?max_states store ~programs ~inputs ~task
  with
  | Ok _ ->
    Alcotest.failf "expected a violation of %s, found none"
      task.Subc_tasks.Task.name
  | Error (reason, trace) -> (reason, trace)

(* Run under a fixed schedule (extended round-robin when exhausted). *)
let run_fixed store ~programs ~schedule =
  let config = Config.make store programs in
  Runner.run (Runner.Fixed schedule) config

let decision_exn final i =
  match Config.decision final i with
  | Some v -> v
  | None -> Alcotest.failf "process %d did not decide" i

let test name f = Alcotest.test_case name `Quick f
let test_slow name f = Alcotest.test_case name `Slow f

let seeds n = List.init n (fun i -> 7919 * (i + 1))
