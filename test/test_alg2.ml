(* Algorithm 2: (k−1)-set consensus for k processes from one WRN_k.
   Experiment E1 — Claims 3-8, Corollaries 9-10. *)
open Subc_sim
open Helpers
module Alg2 = Subc_core.Alg2
module Task = Subc_tasks.Task

let setup ~k ~one_shot =
  let store, t = Alg2.alloc Store.empty ~k ~one_shot in
  let inputs = inputs k in
  let programs =
    List.mapi (fun i v -> Alg2.propose t ~i v) inputs
  in
  (store, programs, inputs)

let exhaustive_case ~k ~one_shot () =
  let store, programs, inputs = setup ~k ~one_shot in
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  let stats = check_exhaustive store ~programs ~inputs ~task in
  Alcotest.(check bool) "visited some states" true (stats.Explore.states > k)

let wait_free_case ~k ~one_shot () =
  let store, programs, _ = setup ~k ~one_shot in
  ignore (check_wait_free store ~programs)

(* Claim 4: the first process to perform WRN decides its own value. *)
let first_decides_own ~k () =
  let store, programs, inputs = setup ~k ~one_shot:false in
  List.iteri
    (fun first input ->
      let order = first :: List.filter (fun i -> i <> first) (List.init k Fun.id) in
      let config = Config.make store programs in
      let r = Runner.run (Runner.Priority order) config in
      Alcotest.check value "first decides own input" input
        (decision_exn r.Runner.final first))
    inputs

(* Claim 5: the last process to perform WRN decides its successor's value. *)
let last_decides_successor ~k () =
  let store, programs, inputs = setup ~k ~one_shot:false in
  List.iteri
    (fun last _ ->
      let order = List.filter (fun i -> i <> last) (List.init k Fun.id) @ [ last ] in
      let r = run_fixed store ~programs ~schedule:order in
      Alcotest.check value "last decides successor's input"
        (List.nth inputs ((last + 1) mod k))
        (decision_exn r.Runner.final last))
    inputs

(* Corollary 8 is tight: some schedule produces exactly k−1 distinct values. *)
let bound_is_tight ~k () =
  let store, programs, _inputs = setup ~k ~one_shot:false in
  let config = Config.make store programs in
  let best = ref 0 in
  let _stats =
    Explore.iter_terminals config ~f:(fun c _ ->
        best := max !best (List.length (Task.distinct (Config.decisions c))))
  in
  Alcotest.(check int) "max distinct decisions" (k - 1) !best

(* A solo process decides its own value (wait-freedom, Claim 3). *)
let solo_decides_own ~k () =
  let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
  let program = Alg2.propose t ~i:1 (Value.Int 7) in
  let config = Config.make store [ program ] in
  let r = Runner.run Runner.Round_robin config in
  Alcotest.check value "solo decision" (Value.Int 7)
    (decision_exn r.Runner.final 0)

(* Duplicate proposals: validity still holds, distinct-count only shrinks. *)
let duplicate_proposals ~k () =
  let store, t = Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = List.init k (fun i -> Value.Int (100 + (i mod 2))) in
  let programs = List.mapi (fun i v -> Alg2.propose t ~i v) inputs in
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  ignore (check_exhaustive store ~programs ~inputs ~task)

let suite =
  [
    ( "alg2.set-consensus",
      [
        test "k=3 multi-shot exhaustive" (exhaustive_case ~k:3 ~one_shot:false);
        test "k=3 one-shot exhaustive" (exhaustive_case ~k:3 ~one_shot:true);
        test "k=4 multi-shot exhaustive" (exhaustive_case ~k:4 ~one_shot:false);
        test "k=4 one-shot exhaustive" (exhaustive_case ~k:4 ~one_shot:true);
        test_slow "k=5 one-shot exhaustive" (exhaustive_case ~k:5 ~one_shot:true);
        test "k=3 wait-free" (wait_free_case ~k:3 ~one_shot:true);
        test "k=4 wait-free" (wait_free_case ~k:4 ~one_shot:false);
      ] );
    ( "alg2.claims",
      [
        test "claim 4: first decides own (k=3)" (first_decides_own ~k:3);
        test "claim 4: first decides own (k=4)" (first_decides_own ~k:4);
        test "claim 5: last decides successor (k=3)" (last_decides_successor ~k:3);
        test "claim 5: last decides successor (k=4)" (last_decides_successor ~k:4);
        test "corollary 8 bound is tight (k=3)" (bound_is_tight ~k:3);
        test "corollary 8 bound is tight (k=4)" (bound_is_tight ~k:4);
        test "solo run decides own (k=3)" (solo_decides_own ~k:3);
        test "duplicate proposals stay valid (k=3)" (duplicate_proposals ~k:3);
        test "duplicate proposals stay valid (k=4)" (duplicate_proposals ~k:4);
      ] );
  ]
