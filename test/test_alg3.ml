(* Algorithm 3: (k−1)-set consensus for k participants out of many
   (experiment E3, Claims 11-18). *)
open Subc_sim
open Helpers
module Alg3 = Subc_core.Alg3
module Task = Subc_tasks.Task
module FF = Subc_core.Function_family

let setup ~k ~flavor ~renamer ?family ~ids () =
  let store, t = Alg3.alloc Store.empty ~k ~flavor ~renamer ?family () in
  let inputs = List.map (fun id -> Value.Int (100 + id)) ids in
  let programs =
    List.mapi
      (fun slot id -> Alg3.propose t ~slot ~id (Value.Int (100 + id)))
      ids
  in
  (store, programs, inputs)

let exhaustive ~k ~flavor ~renamer ?family ~ids () =
  let store, programs, inputs = setup ~k ~flavor ~renamer ?family ~ids () in
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  ignore (check_exhaustive store ~programs ~inputs ~task)

let sampled ~k ~flavor ~renamer ?family ~ids () =
  let store, programs, inputs = setup ~k ~flavor ~renamer ?family ~ids () in
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  let stats =
    Subc_check.Task_check.sample store ~programs ~inputs ~task
      ~seeds:(seeds 200)
  in
  if stats.Subc_check.Task_check.violations > 0 then
    Alcotest.failf "violations: %a" Subc_check.Task_check.pp_sample_stats stats

let family_tests =
  [
    test "all functions: size k^N" (fun () ->
        Alcotest.(check int) "2^3" 8 (List.length (FF.all ~names:3 ~k:2));
        Alcotest.(check int) "3^4" 81 (List.length (FF.all ~names:4 ~k:3)));
    test "covering family: one surjection per k-subset" (fun () ->
        Alcotest.(check int) "C(5,3)" 10
          (List.length (FF.covering ~names:5 ~k:3)));
    test "covering family covers every k-subset" (fun () ->
        let names = 5 and k = 3 in
        let family = FF.covering ~names ~k in
        let rec subsets start size =
          if size = 0 then [ [] ]
          else
            List.concat
              (List.init
                 (names - start - size + 1)
                 (fun d ->
                   let x = start + d in
                   List.map (fun r -> x :: r) (subsets (x + 1) (size - 1))))
        in
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (Printf.sprintf "subset %s covered"
                 (String.concat "," (List.map string_of_int s)))
              true
              (List.exists (fun f -> FF.covers f s k) family))
          (subsets 0 k));
    test "the full family also covers" (fun () ->
        let family = FF.all ~names:3 ~k:2 in
        Alcotest.(check bool) "covers {0,2}" true
          (List.exists (fun f -> FF.covers f [ 0; 2 ] 2) family));
  ]

let alg3_tests =
  [
    (* k=2: (k−1)-set consensus is full consensus; WRN₂ is a swap, so this
       must pass — a sharp correctness test of the whole sweep logic. *)
    test "k=2 plain, identity names, exhaustive = consensus"
      (exhaustive ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 3)
         ~ids:[ 0; 2 ]);
    test "k=2 relaxed, identity names, exhaustive"
      (exhaustive ~k:2 ~flavor:Alg3.Relaxed_wrn
         ~renamer:(Alg3.Rename_identity 3) ~ids:[ 0; 2 ]);
    test_slow "k=2 plain, grid renaming, exhaustive"
      (exhaustive ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:Alg3.Rename_grid
         ~ids:[ 13; 7 ]);
    test_slow "k=2 plain, snapshot renaming, exhaustive"
      (exhaustive ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:Alg3.Rename_snapshot
         ~ids:[ 13; 7 ]);
    (* k=3 with identity names covering exactly {0,1,2}: degenerates to a
       single WRN₃ (the covering family has one function). *)
    test "k=3 plain, tight identity names, exhaustive"
      (exhaustive ~k:3 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 3)
         ~ids:[ 0; 1; 2 ]);
    (* k=3 over a 5-name space: 10 instances; exhaustive on the plain
       flavor; the relaxed flavor is sampled. *)
    test_slow "k=3 plain, 5-name space, exhaustive"
      (exhaustive ~k:3 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 5)
         ~ids:[ 0; 2; 4 ]);
    test "k=3 relaxed, 5-name space, sampled"
      (sampled ~k:3 ~flavor:Alg3.Relaxed_wrn ~renamer:(Alg3.Rename_identity 5)
         ~ids:[ 0; 2; 4 ]);
    test "k=3 plain, grid renaming, sampled"
      (sampled ~k:3 ~flavor:Alg3.Plain_wrn ~renamer:Alg3.Rename_grid
         ~ids:[ 19; 3; 11 ]);
    test "k=3 relaxed, snapshot renaming, sampled"
      (sampled ~k:3 ~flavor:Alg3.Relaxed_wrn ~renamer:Alg3.Rename_snapshot
         ~ids:[ 19; 3; 11 ]);
    test "k=2 plain, immediate-snapshot renaming, exhaustive"
      (exhaustive ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:Alg3.Rename_immediate
         ~ids:[ 13; 7 ]);
    test "k=3 relaxed, immediate-snapshot renaming, sampled"
      (sampled ~k:3 ~flavor:Alg3.Relaxed_wrn ~renamer:Alg3.Rename_immediate
         ~ids:[ 19; 3; 11 ]);
    (* Fewer than k participants: still (k−1)-agreement and validity. *)
    test "k=3, only 2 participants, exhaustive"
      (exhaustive ~k:3 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 5)
         ~ids:[ 1; 3 ]);
    test "k=3, single participant decides its own value" (fun () ->
        let store, programs, inputs =
          setup ~k:3 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 5)
            ~ids:[ 2 ] ()
        in
        let config = Config.make store programs in
        let r = Runner.run Runner.Round_robin config in
        Alcotest.check value "own value" (List.hd inputs)
          (decision_exn r.Runner.final 0));
    test "paper's full family also works (k=2, N=3, sampled)"
      (sampled ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 3)
         ~family:(FF.all ~names:3 ~k:2) ~ids:[ 0; 2 ]);
    (* Claim 16: when all k participate with distinct inputs, some process
       decides another's proposal — on every schedule. *)
    test "claim 16: someone adopts another's value (k=2, exhaustive)"
      (fun () ->
        let store, programs, inputs =
          setup ~k:2 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 3)
            ~ids:[ 0; 2 ] ()
        in
        let config = Config.make store programs in
        let result =
          Explore.check_terminals config ~ok:(fun final ->
              List.exists
                (fun (i, input) ->
                  match Config.decision final i with
                  | Some d -> not (Value.equal d input)
                  | None -> false)
                (List.mapi (fun i input -> (i, input)) inputs))
        in
        Alcotest.(check bool) "adoption on every schedule" true
          (Result.is_ok result));
    test "claim 16: someone adopts another's value (k=3, exhaustive)"
      (fun () ->
        let store, programs, inputs =
          setup ~k:3 ~flavor:Alg3.Plain_wrn ~renamer:(Alg3.Rename_identity 3)
            ~ids:[ 0; 1; 2 ] ()
        in
        let config = Config.make store programs in
        let result =
          Explore.check_terminals config ~ok:(fun final ->
              List.exists
                (fun (i, input) ->
                  match Config.decision final i with
                  | Some d -> not (Value.equal d input)
                  | None -> false)
                (List.mapi (fun i input -> (i, input)) inputs))
        in
        Alcotest.(check bool) "adoption on every schedule" true
          (Result.is_ok result));
    test "wait-free (k=3, relaxed, 4-name space)" (fun () ->
        let store, programs, _ =
          setup ~k:3 ~flavor:Alg3.Relaxed_wrn
            ~renamer:(Alg3.Rename_identity 4) ~ids:[ 0; 1; 3 ] ()
        in
        ignore (check_wait_free store ~programs));
    test "wait-free (k=2, relaxed, grid)" (fun () ->
        let store, programs, _ =
          setup ~k:2 ~flavor:Alg3.Relaxed_wrn ~renamer:Alg3.Rename_grid
            ~ids:[ 4; 9 ] ()
        in
        ignore (check_wait_free store ~programs));
  ]

let suite =
  [ ("alg3.function-family", family_tests); ("alg3.set-consensus", alg3_tests) ]
