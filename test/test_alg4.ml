(* Algorithm 4: relaxed WRN from 1sWRN + counters (experiment E4,
   Claims 19-21). *)
open Subc_sim
open Helpers
module Alg4 = Subc_core.Alg4

let setup ~k = Alg4.alloc Store.empty ~k

(* Corollary 20: the one-shot object is never used illegally — no reachable
   execution hangs, whatever the index pattern. *)
let never_hangs ~k ~indices () =
  let store, t = setup ~k in
  let programs =
    List.mapi (fun p i -> Alg4.rlx_wrn t ~i (Value.Int (100 + p))) indices
  in
  ignore (check_wait_free store ~programs)

(* Claim 21: with k distinct indices every caller reaches the 1sWRN, so the
   relaxed object is exactly a WRN_k — compare outcome sets against the
   primitive. *)
let distinct_indices_behave_like_wrn ~k () =
  let outcomes store programs =
    let config = Config.make store programs in
    let acc = ref [] in
    let stats =
      Explore.iter_terminals config ~f:(fun final _ ->
          acc := Config.decisions final :: !acc)
    in
    Alcotest.(check bool) "exhaustive" false stats.Explore.limited;
    List.sort_uniq compare !acc
  in
  let store_r, t = setup ~k in
  let relaxed =
    outcomes store_r
      (List.init k (fun i -> Alg4.rlx_wrn t ~i (Value.Int (100 + i))))
  in
  let store_w, w = Store.alloc Store.empty (Subc_objects.Wrn.model ~k) in
  let plain =
    outcomes store_w
      (List.init k (fun i -> Subc_objects.Wrn.wrn w i (Value.Int (100 + i))))
  in
  Alcotest.(check bool) "same outcome sets" true (relaxed = plain)

(* Claim 19: under index collisions at most one caller passes the guard;
   colliding calls may all give up, but none hangs and any non-⊥ result is
   an announced value. *)
let collisions_give_up_safely ~k () =
  let store, t = setup ~k in
  let inputs = [ Value.Int 100; Value.Int 101; Value.Int 102 ] in
  let programs =
    [
      Alg4.rlx_wrn t ~i:0 (Value.Int 100);
      Alg4.rlx_wrn t ~i:0 (Value.Int 101);
      Alg4.rlx_wrn t ~i:1 (Value.Int 102);
    ]
  in
  let config = Config.make store programs in
  let result =
    Explore.check_terminals config ~ok:(fun final ->
        (not (Config.any_hung final))
        && List.for_all
             (fun v -> Value.is_bot v || List.exists (Value.equal v) inputs)
             (Config.decisions final))
  in
  match result with
  | Ok stats -> Alcotest.(check bool) "exhaustive" false stats.Explore.limited
  | Error (_, trace, _) -> Alcotest.failf "unsafe:@.%a" Trace.pp trace

(* A lone colliding pair: both may get ⊥, demonstrating the relaxation the
   paper warns about (the opposite of regular WRN behavior). *)
let both_bot_reachable () =
  let store, t = setup ~k:3 in
  let programs =
    [ Alg4.rlx_wrn t ~i:0 (Value.Int 1); Alg4.rlx_wrn t ~i:0 (Value.Int 2) ]
  in
  let config = Config.make store programs in
  let found, _ =
    Explore.find_terminal config ~violates:(fun final ->
        Config.decisions final = [ Value.Bot; Value.Bot ])
  in
  Alcotest.(check bool) "both give up in some schedule" true (found <> None)

(* Solo caller always reaches the 1sWRN and reads ⊥. *)
let solo_returns_bot () =
  let store, t = setup ~k:3 in
  let config = Config.make store [ Alg4.rlx_wrn t ~i:2 (Value.Int 9) ] in
  let r = Runner.run Runner.Round_robin config in
  Alcotest.check value "⊥" Value.Bot (decision_exn r.Runner.final 0)

(* Sequential distinct-index calls read their successor like real WRN. *)
let sequential_chain () =
  let store, t = setup ~k:3 in
  let programs =
    [ Alg4.rlx_wrn t ~i:1 (Value.Int 11); Alg4.rlx_wrn t ~i:0 (Value.Int 10) ]
  in
  let r = run_fixed store ~programs ~schedule:List.(concat [ init 9 (fun _ -> 0); init 9 (fun _ -> 1) ]) in
  Alcotest.check value "second reads first" (Value.Int 11)
    (decision_exn r.Runner.final 1)

let suite =
  [
    ( "alg4.relaxed-wrn",
      [
        test "never hangs: distinct indices (k=3)"
          (never_hangs ~k:3 ~indices:[ 0; 1; 2 ]);
        test "never hangs: full collision (k=3)"
          (never_hangs ~k:3 ~indices:[ 0; 0; 0 ]);
        test "never hangs: partial collision (k=3)"
          (never_hangs ~k:3 ~indices:[ 0; 0; 1 ]);
        test "claim 21: distinct indices = plain WRN (k=3)"
          (distinct_indices_behave_like_wrn ~k:3);
        test "claim 19: collisions give up safely (k=3)"
          (collisions_give_up_safely ~k:3);
        test "collision can return ⊥ to both" both_bot_reachable;
        test "solo caller reads ⊥" solo_returns_bot;
        test "sequential chain reads successor" sequential_chain;
      ] );
  ]
