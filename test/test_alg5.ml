(* Algorithm 5: linearizable 1sWRN_k from strong set election (experiment
   E5, Claims 22-24, Corollary 37). *)
open Subc_sim
open Helpers
module Alg5 = Subc_core.Alg5
module Lin = Subc_check.Linearizability
module Task = Subc_tasks.Task

let harness ~k ~participants ~register_snapshots =
  let store, t = Alg5.alloc Store.empty ~k ~register_snapshots () in
  let programs =
    List.map (fun i -> Alg5.wrn t ~i (Value.Int (100 + i))) participants
  in
  (store, programs)

let ops participants i =
  let idx = List.nth participants i in
  Op.make "wrn" [ Value.Int idx; Value.Int (100 + idx) ]

(* Corollary 37: every reachable execution has a linearization against the
   1sWRN_k sequential specification. *)
let linearizable ~k ~participants ?(register_snapshots = false)
    ?(max_states = 2_000_000) () =
  let store, programs = harness ~k ~participants ~register_snapshots in
  let spec = Subc_objects.One_shot_wrn.model ~k in
  let config = Config.make store programs in
  let checked = ref 0 in
  let stats =
    Explore.iter_terminals ~max_states config ~f:(fun final trace ->
        incr checked;
        let history = Lin.history ~ops:(ops participants) final trace in
        match Lin.check ~spec history with
        | Some _ -> ()
        | None ->
          Alcotest.failf "non-linearizable:@.%a@.%a" Lin.pp_history history
            Trace.pp trace)
  in
  Alcotest.(check bool) "exhaustive" false stats.Explore.limited;
  Alcotest.(check bool) "terminals checked" true (!checked > 0)

(* Claims 22-24 as direct output-shape checks: each result is ⊥ or the
   successor's value; when all k participate, some invocation returns ⊥ and
   some returns its successor's value. *)
let output_shape ~k () =
  let participants = List.init k Fun.id in
  let store, programs = harness ~k ~participants ~register_snapshots:false in
  let config = Config.make store programs in
  let result =
    Explore.check_terminals config ~ok:(fun final ->
        let decisions =
          List.init k (fun i -> Option.get (Config.decision final i))
        in
        let shape_ok =
          List.for_all2
            (fun i d ->
              Value.is_bot d
              || Value.equal d (Value.Int (100 + ((i + 1) mod k))))
            (List.init k Fun.id) decisions
        in
        let some_bot = List.exists Value.is_bot decisions in
        let some_value = List.exists (fun d -> not (Value.is_bot d)) decisions in
        shape_ok && some_bot && some_value)
  in
  match result with
  | Ok stats -> Alcotest.(check bool) "exhaustive" false stats.Explore.limited
  | Error (final, trace, _) ->
    Alcotest.failf "bad outputs %a:@.%a" Value.pp
      (Value.Vec (Config.decisions final))
      Trace.pp trace

let wait_free ~k ~participants () =
  let store, programs =
    harness ~k ~participants ~register_snapshots:false
  in
  ignore (check_wait_free store ~programs)

(* A solo invocation must return ⊥ (it is the first linearized op). *)
let solo_returns_bot ~k ~i () =
  let store, programs = harness ~k ~participants:[ i ] ~register_snapshots:false in
  let config = Config.make store programs in
  let result =
    Explore.check_terminals config ~ok:(fun final ->
        Config.decision final 0 = Some Value.Bot)
  in
  Alcotest.(check bool) "⊥ on every schedule" true (Result.is_ok result)

(* Sequential pair: the second invocation (predecessor index) must return
   the first's value — the scenario whose naive solution breaks
   linearizability (the doorway exists for it). *)
let sequential_pair () =
  let k = 3 in
  let store, t = Alg5.alloc Store.empty ~k () in
  let programs =
    [ Alg5.wrn t ~i:1 (Value.Int 101); Alg5.wrn t ~i:0 (Value.Int 100) ]
  in
  (* Run P0 (index 1) to completion, then P1 (index 0). *)
  let config = Config.make store programs in
  let r = Runner.run (Runner.Priority [ 0; 1 ]) config in
  Alcotest.check value "first invocation gets ⊥" Value.Bot
    (decision_exn r.Runner.final 0);
  Alcotest.check value "second reads its successor" (Value.Int 101)
    (decision_exn r.Runner.final 1)

(* Two sequential invocations in the other order return ⊥ then ⊥:
   index 0 completes, then index 1 runs and reads A[2] = ⊥. *)
let sequential_pair_other_order () =
  let k = 3 in
  let store, t = Alg5.alloc Store.empty ~k () in
  let programs =
    [ Alg5.wrn t ~i:0 (Value.Int 100); Alg5.wrn t ~i:1 (Value.Int 101) ]
  in
  let config = Config.make store programs in
  let r = Runner.run (Runner.Priority [ 0; 1 ]) config in
  Alcotest.check value "index 0 first: ⊥" Value.Bot
    (decision_exn r.Runner.final 0);
  Alcotest.check value "index 1 second: reads A[2]=⊥" Value.Bot
    (decision_exn r.Runner.final 1)

(* Combined with Algorithm 2 at the task level: the implemented 1sWRN_k
   solves (k−1)-set consensus — the full Theorem 2 pipeline, exhaustively
   for k=3. *)
let theorem2_pipeline ~k () =
  let store, t = Alg5.alloc Store.empty ~k () in
  let inputs = inputs k in
  let propose i v =
    let open Program.Syntax in
    let* r = Alg5.wrn t ~i v in
    if Value.is_bot r then Program.return v else Program.return r
  in
  let programs = List.mapi propose inputs in
  let task = Task.conj (Task.set_consensus (k - 1)) Task.all_decided in
  ignore (check_exhaustive ~max_states:2_000_000 store ~programs ~inputs ~task)

(* Section 5's proof skeleton: the precedence graph G built from any
   reachable execution satisfies Claims 27-30. *)
let graph_claims ~k ~use_impl () =
  let store, programs =
    if use_impl then harness ~k ~participants:(List.init k Fun.id) ~register_snapshots:false
    else
      let store, h =
        Store.alloc Store.empty (Subc_objects.One_shot_wrn.model ~k)
      in
      ( store,
        List.init k (fun i ->
            Subc_objects.One_shot_wrn.wrn h i (Value.Int (100 + i))) )
  in
  let config = Config.make store programs in
  let checked = ref 0 in
  let stats =
    Explore.iter_terminals config ~f:(fun final _ ->
        incr checked;
        let results = List.init k (fun i -> Config.decision final i) in
        let g = Subc_core.Alg5_graph.of_results ~k results in
        let fail claim =
          Alcotest.failf "%s violated on %a" claim Subc_core.Alg5_graph.pp g
        in
        if not (Subc_core.Alg5_graph.neighbour_edges_exclusive g) then
          fail "claim 27";
        if not (Subc_core.Alg5_graph.acyclic g) then fail "corollary 28";
        if not (Subc_core.Alg5_graph.has_source_and_sink g) then
          fail "corollary 29")
  in
  Alcotest.(check bool) "exhaustive" false stats.Explore.limited;
  Alcotest.(check bool) "terminals seen" true (!checked > 0)

let suite =
  [
    ( "alg5.graph",
      [
        test "claims 27-30 on the primitive object (k=3)"
          (graph_claims ~k:3 ~use_impl:false);
        test "claims 27-30 on the primitive object (k=4)"
          (graph_claims ~k:4 ~use_impl:false);
        test_slow "claims 27-30 on the Algorithm 5 implementation (k=3)"
          (graph_claims ~k:3 ~use_impl:true);
        test_slow "claims 27-30 on the Algorithm 5 implementation (k=4)"
          (graph_claims ~k:4 ~use_impl:true);
      ] );
    ( "alg5.linearizability",
      [
        test_slow "k=3, all participants, exhaustive"
          (linearizable ~k:3 ~participants:[ 0; 1; 2 ]);
        test "k=3, two participants (0,1), exhaustive"
          (linearizable ~k:3 ~participants:[ 0; 1 ]);
        test "k=3, two participants (0,2), exhaustive"
          (linearizable ~k:3 ~participants:[ 0; 2 ]);
        test_slow "k=4, two participants (1,2), exhaustive"
          (linearizable ~k:4 ~participants:[ 1; 2 ]);
        test_slow "k=4, all participants, exhaustive"
          (linearizable ~k:4 ~participants:[ 0; 1; 2; 3 ]);
        test_slow "k=4, three participants (0,1,3), exhaustive"
          (linearizable ~k:4 ~participants:[ 0; 1; 3 ]);
        test_slow "k=3, two participants, register snapshots"
          (linearizable ~k:3 ~participants:[ 0; 1 ] ~register_snapshots:true
             ~max_states:4_000_000);
      ] );
    ( "alg5.claims",
      [
        test_slow "claims 22-24: output shape (k=3)" (output_shape ~k:3);
        test "wait-free (k=3, all)" (wait_free ~k:3 ~participants:[ 0; 1; 2 ]);
        test "solo invocation returns ⊥ (k=3, i=0)" (solo_returns_bot ~k:3 ~i:0);
        test "solo invocation returns ⊥ (k=3, i=2)" (solo_returns_bot ~k:3 ~i:2);
        test "sequential pair: predecessor reads successor" sequential_pair;
        test "sequential pair: successor reads ⊥" sequential_pair_other_order;
        test_slow "theorem 2: implemented 1sWRN solves (k−1)-set consensus"
          (theorem2_pipeline ~k:3);
      ] );
  ]
