(* Algorithm 6: m-set consensus for n processes from WRN_k objects
   (experiment E7, Lemma 39, Corollary 40). *)
open Subc_sim
open Helpers
module Alg6 = Subc_core.Alg6
module Task = Subc_tasks.Task

let setup ~n ~k ~one_shot =
  let store, t = Alg6.alloc Store.empty ~n ~k ~one_shot in
  let inputs = inputs n in
  let programs = List.mapi (fun i v -> Alg6.propose t ~i v) inputs in
  (store, programs, inputs)

let exhaustive ~n ~k ~one_shot () =
  let store, programs, inputs = setup ~n ~k ~one_shot in
  let m = Alg6.agreement_bound ~n ~k in
  let task = Task.conj (Task.set_consensus m) Task.all_decided in
  ignore (check_exhaustive store ~programs ~inputs ~task)

let sampled ~n ~k () =
  let store, programs, inputs = setup ~n ~k ~one_shot:true in
  let m = Alg6.agreement_bound ~n ~k in
  let task = Task.conj (Task.set_consensus m) Task.all_decided in
  let stats =
    Subc_check.Task_check.sample store ~programs ~inputs ~task ~seeds:(seeds 100)
  in
  if stats.Subc_check.Task_check.violations > 0 then
    Alcotest.failf "violations: %a" Subc_check.Task_check.pp_sample_stats stats

let bound_tests =
  [
    test "bound formula matches the paper's ratio" (fun () ->
        (* WRN₃ can implement (12,8)-set consensus (Section 7.1). *)
        Alcotest.(check int) "n=12,k=3" 8 (Alg6.agreement_bound ~n:12 ~k:3);
        Alcotest.(check int) "n=3,k=3" 2 (Alg6.agreement_bound ~n:3 ~k:3);
        Alcotest.(check int) "n=4,k=3" 3 (Alg6.agreement_bound ~n:4 ~k:3);
        Alcotest.(check int) "n=7,k=4" 6 (Alg6.agreement_bound ~n:7 ~k:4));
    test "bound respects (k−1)/k ≤ m/n" (fun () ->
        List.iter
          (fun (n, k) ->
            let m = Alg6.agreement_bound ~n ~k in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d m=%d" n k m)
              true
              (m * k >= (k - 1) * n || m >= n))
          [ (3, 3); (4, 3); (6, 3); (12, 3); (5, 4); (8, 4); (10, 5) ]);
    test "bound is below n for n ≥ k (real agreement)" (fun () ->
        List.iter
          (fun (n, k) ->
            Alcotest.(check bool) "m < n" true (Alg6.agreement_bound ~n ~k < n))
          [ (3, 3); (4, 3); (6, 3); (12, 3); (5, 4); (10, 5) ]);
  ]

let run_tests =
  [
    test "n=3,k=3 exhaustive (= Algorithm 2)" (exhaustive ~n:3 ~k:3 ~one_shot:true);
    test "n=4,k=3 exhaustive" (exhaustive ~n:4 ~k:3 ~one_shot:true);
    test_slow "n=5,k=3 exhaustive" (exhaustive ~n:5 ~k:3 ~one_shot:true);
    test_slow "n=6,k=3 exhaustive" (exhaustive ~n:6 ~k:3 ~one_shot:false);
    test_slow "n=4,k=4 exhaustive" (exhaustive ~n:4 ~k:4 ~one_shot:true);
    test "n=12,k=3 sampled (the paper's (12,8) example)" (sampled ~n:12 ~k:3);
    test "n=10,k=5 sampled" (sampled ~n:10 ~k:5);
    test "wait-free n=6,k=3" (fun () ->
        let store, programs, _ = setup ~n:6 ~k:3 ~one_shot:true in
        ignore (check_wait_free store ~programs));
    test "lemma 39: each group alone solves (k−1)-set consensus" (fun () ->
        (* Only group 1 (processes 3,4,5) participates. *)
        let store, t = Alg6.alloc Store.empty ~n:6 ~k:3 ~one_shot:true in
        let ids = [ 3; 4; 5 ] in
        let inputs = List.map (fun i -> Value.Int (100 + i)) ids in
        let programs =
          List.map (fun i -> Alg6.propose t ~i (Value.Int (100 + i))) ids
        in
        let task = Task.conj (Task.set_consensus 2) Task.all_decided in
        ignore (check_exhaustive store ~programs ~inputs ~task));
  ]

let suite = [ ("alg6.bounds", bound_tests); ("alg6.runs", run_tests) ]
