(* The mechanized soundness analyzer (lib/analysis): the registry gate,
   seeded-mutation negative tests, and the certificate mint. *)
open Subc_sim
open Helpers
module Analyzer = Subc_analysis.Analyzer
module Subject = Subc_analysis.Subject
module Reach = Subc_analysis.Reach
module Commute = Subc_analysis.Commute
module Equivariance = Subc_analysis.Equivariance
module Classify = Subc_analysis.Classify
module Registry = Subc_analysis.Registry
module O = Subc_objects

let op = Op.make
let tok j = Value.Int (100 + j)

let finding_of check findings =
  match List.find_opt (fun f -> f.Analyzer.check = check) findings with
  | Some f -> f
  | None -> Alcotest.failf "no %s finding" check

(* --- the CI gate: every registry family must come back fully proved --- *)

let registry_tests =
  List.map
    (fun entry ->
      test
        (Printf.sprintf "family %s is fully proved" entry.Registry.family)
        (fun () ->
          let findings =
            Analyzer.analyze ~family:entry.Registry.family
              entry.Registry.subjects
          in
          List.iter
            (fun f ->
              if not (Verdict.is_proved f.Analyzer.verdict) then
                Alcotest.failf "%s: %a" (Analyzer.finding_name f)
                  Verdict.pp_summary f.Analyzer.verdict)
            findings;
          Alcotest.(check int) "combined exit 0" 0
            (Analyzer.exit_code findings)))
    (Registry.entries ())

(* --- seeded mutations: each soundness bug yields a Refuted witness --- *)

(* An apply that consults hidden mutable state: the purity check must
   catch it (the explorer's memoization would silently diverge). *)
let impure_subject () =
  let hidden = ref 0 in
  let model =
    Obj_model.nondet ~kind:"impure-tick" ~init:Value.Bot (fun st _op ->
        incr hidden;
        [ (st, Value.Int !hidden) ])
  in
  Subject.make ~name:"impure" ~model ~alphabet:[ op "tick" [] ]
    ~expected:Subject.Deterministic ()

(* An alphabet op the model does not support: totality refuted. *)
let unsupported_subject () =
  Subject.make ~name:"oversteps" ~model:O.Register.model_bot
    ~alphabet:[ op "read" []; op "cas" [ Value.Bot; tok 0 ] ]
    ~expected:Subject.Deterministic ()

(* Register writes do NOT commute, but the declared judgment says they
   do: the commutation census must surface a concrete race. *)
let lying_independence () =
  Subject.make ~name:"lying-writes" ~model:O.Register.model_bot
    ~alphabet:[ op "write" [ tok 0 ]; op "write" [ tok 1 ] ]
    ~expected:Subject.Deterministic
    ~independence:(Subject.Declared (fun _ _ -> true))
    ()

(* A declared-independent pair where one side hangs: anti-conservative
   for the source sets unless the census preserves hangs. *)
let lying_hang_independence () =
  Subject.make ~name:"lying-hang"
    ~model:(O.One_shot_wrn.model ~k:2)
    ~alphabet:[ op "wrn" [ Value.Int 0; tok 0 ]; op "wrn" [ Value.Int 1; tok 1 ] ]
    ~expected:Subject.Deterministic ~may_hang:true
    ~independence:(Subject.Declared (fun _ _ -> true))
    ()

(* WRN's ring reads are rotation-equivariant but NOT equivariant under
   the full symmetric group: transpositions break adjacency. *)
let wrong_group () =
  let k = 3 in
  let alphabet =
    List.concat_map
      (fun i ->
        List.map (fun j -> op "wrn" [ Value.Int i; tok j ]) (List.init k Fun.id))
      (List.init k Fun.id)
  in
  Subject.make ~name:"wrn-under-full"
    ~model:(O.Wrn.model ~k)
    ~alphabet ~expected:Subject.Deterministic
    ~symmetry:(Symmetry.standard ~n:k ~input_base:100 `Full)
    ~group_name:"full" ()

(* (3,2)-set consensus branches; declaring it deterministic must lint. *)
let misdeclared_det () =
  Subject.make ~name:"setcons-as-det"
    ~model:(O.Set_consensus_obj.model ~n:3 ~k:2)
    ~alphabet:(List.map (fun i -> op "propose" [ tok i ]) [ 0; 1; 2 ])
    ~expected:Subject.Deterministic ~may_hang:true ()

(* 1sWRN hangs on reuse; omitting may_hang must lint. *)
let misdeclared_total () =
  Subject.make ~name:"1swrn-as-total"
    ~model:(O.One_shot_wrn.model ~k:2)
    ~alphabet:[ op "wrn" [ Value.Int 0; tok 0 ]; op "wrn" [ Value.Int 1; tok 1 ] ]
    ~expected:Subject.Deterministic ()

(* A register declared nondeterministic: the spurious-declaration lint
   fires (the space is closed and exhaustive). *)
let misdeclared_nondet () =
  Subject.make ~name:"register-as-nondet" ~model:O.Register.model_bot
    ~alphabet:[ op "read" []; op "write" [ tok 0 ] ]
    ~expected:Subject.Nondeterministic ()

(* A register that silently drops writes of one token: the claimed
   value-obliviousness fails under the token swap. *)
let value_dependent () =
  let model =
    Obj_model.deterministic ~kind:"biased-register" ~init:Value.Bot
      (fun st o ->
        match (o.Op.name, o.Op.args) with
        | "read", [] -> (st, st)
        | "write", [ v ] ->
          if Value.equal v (tok 1) then (st, Value.Unit) else (v, Value.Unit)
        | _ -> Obj_model.bad_op "biased-register" o)
  in
  Subject.make ~name:"biased-register" ~model
    ~alphabet:[ op "read" []; op "write" [ tok 0 ]; op "write" [ tok 1 ] ]
    ~expected:Subject.Deterministic ~value_oblivious:true
    ~values:[ tok 0; tok 1 ] ()

let expect_refuted ~check subject =
  let findings = Analyzer.analyze_subject subject in
  let f = finding_of check findings in
  match f.Analyzer.verdict with
  | Verdict.Refuted { reason; _ } -> reason
  | v ->
    Alcotest.failf "expected %s refuted, got %a" check Verdict.pp_summary v

let negative_tests =
  [
    test "impure apply refutes reachability" (fun () ->
        let reason = expect_refuted ~check:"reachability" (impure_subject ()) in
        Alcotest.(check bool) "mentions purity" true
          (String.length reason > 0);
        (* Dependent checks must not run on a broken space. *)
        let findings = Analyzer.analyze_subject (impure_subject ()) in
        List.iter
          (fun c ->
            let f = finding_of c findings in
            Alcotest.(check bool) (c ^ " skipped") true
              (Verdict.is_limited f.Analyzer.verdict))
          [ "commutation"; "equivariance"; "classification" ]);
    test "alphabet overstepping the model refutes reachability" (fun () ->
        ignore (expect_refuted ~check:"reachability" (unsupported_subject ())));
    test "a false independence declaration yields a race witness" (fun () ->
        let s = lying_independence () in
        let space =
          match Reach.enumerate s with
          | Ok sp -> sp
          | Error flaw -> Alcotest.failf "reach: %a" Reach.pp_flaw flaw
        in
        (match Commute.check s space with
        | Error race ->
          Alcotest.(check bool) "distinct orders" true (race.Commute.ab <> race.Commute.ba);
          Alcotest.(check bool) "ops are the two writes" true
            (Op.equal race.Commute.a race.Commute.b = false)
        | Ok _ -> Alcotest.fail "expected a commutation race");
        ignore (expect_refuted ~check:"commutation" s));
    test "a hang on one side of a declared-independent pair is a race"
      (fun () ->
        ignore (expect_refuted ~check:"commutation" (lying_hang_independence ())));
    test "the semantic judgment needs no declaration and stays sound"
      (fun () ->
        (* Same alphabet as the lying subject, Semantic judgment: proved. *)
        let s =
          Subject.make ~name:"honest-writes" ~model:O.Register.model_bot
            ~alphabet:[ op "write" [ tok 0 ]; op "write" [ tok 1 ] ]
            ~expected:Subject.Deterministic ()
        in
        let f = finding_of "commutation" (Analyzer.analyze_subject s) in
        Alcotest.(check bool) "proved" true (Verdict.is_proved f.Analyzer.verdict));
    test "the full group is not an automorphism group of WRN₃" (fun () ->
        let s = wrong_group () in
        let space =
          match Reach.enumerate s with
          | Ok sp -> sp
          | Error flaw -> Alcotest.failf "reach: %a" Reach.pp_flaw flaw
        in
        (match Equivariance.check s space with
        | Error (Equivariance.Not_equivariant _) -> ()
        | Error v ->
          Alcotest.failf "unexpected violation: %a" Equivariance.pp_violation v
        | Ok _ -> Alcotest.fail "expected an equivariance violation");
        ignore (expect_refuted ~check:"equivariance" s));
    test "branching declared deterministic is linted" (fun () ->
        ignore (expect_refuted ~check:"classification" (misdeclared_det ())));
    test "an undeclared hang is linted" (fun () ->
        ignore (expect_refuted ~check:"classification" (misdeclared_total ())));
    test "a spurious nondeterminism declaration is linted" (fun () ->
        ignore (expect_refuted ~check:"classification" (misdeclared_nondet ())));
    test "a value-dependent model cannot claim obliviousness" (fun () ->
        ignore (expect_refuted ~check:"classification" (value_dependent ())));
  ]

(* --- infrastructure details the checks rely on --- *)

let mechanics_tests =
  [
    test "swap_values is a structural involution" (fun () ->
        let u = tok 0 and w = tok 1 in
        let v =
          Value.Vec [ tok 0; Value.Pair (tok 1, Value.Sym "s"); Value.Int 7 ]
        in
        let swapped = Classify.swap_values u w v in
        Alcotest.check value "swapped"
          (Value.Vec [ tok 1; Value.Pair (tok 0, Value.Sym "s"); Value.Int 7 ])
          swapped;
        Alcotest.check value "involution" v
          (Classify.swap_values u w swapped));
    test "an op budget bounds the enumeration without truncation" (fun () ->
        let s =
          Subject.make ~name:"counter" ~model:O.Counter_obj.model
            ~alphabet:[ op "inc" []; op "read" [] ]
            ~expected:Subject.Deterministic ~bound:(Subject.Ops 2) ()
        in
        match Reach.enumerate s with
        | Ok sp ->
          Alcotest.(check int) "states 0,1,2" 3 sp.Reach.n_states;
          Alcotest.(check int) "depth 2" 2 sp.Reach.depth;
          Alcotest.(check bool) "not truncated" false sp.Reach.truncated
        | Error flaw -> Alcotest.failf "reach: %a" Reach.pp_flaw flaw);
    test "a truncated closure downgrades every finding to limited" (fun () ->
        let s =
          Subject.make ~name:"counter-truncated" ~model:O.Counter_obj.model
            ~alphabet:[ op "inc" [] ]
            ~expected:Subject.Deterministic ~max_states:5 ()
        in
        let findings = Analyzer.analyze_subject s in
        List.iter
          (fun f ->
            Alcotest.(check bool)
              (Analyzer.finding_name f ^ " limited")
              true
              (Verdict.is_limited f.Analyzer.verdict))
          findings);
    test "finding JSON carries the family/subject/check name" (fun () ->
        let s =
          Subject.make ~name:"tas" ~model:O.Tas_obj.model
            ~alphabet:[ op "test_and_set" []; op "read" [] ]
            ~expected:Subject.Deterministic ()
        in
        let f =
          finding_of "reachability"
            (Analyzer.analyze ~family:"fam" [ s ])
        in
        let json = Analyzer.to_json f in
        let contains sub =
          let n = String.length sub in
          let rec scan i =
            i + n <= String.length json
            && (String.sub json i n = sub || scan (i + 1))
          in
          scan 0
        in
        Alcotest.(check bool) "name in JSON" true
          (contains "fam/tas/reachability");
        Alcotest.(check bool) "status in JSON" true (contains "proved"));
  ]

(* --- the certificate mint and its consumer --- *)

let certificate_tests =
  [
    test "certify mints a certificate certified_reduction accepts" (fun () ->
        let entry =
          match Registry.find "alg2" with
          | Some e -> e
          | None -> Alcotest.fail "no alg2 family"
        in
        match Analyzer.certify ~family:"alg2" entry.Registry.subjects with
        | Error fs ->
          Alcotest.failf "certify failed with %d findings" (List.length fs)
        | Ok cert ->
          Alcotest.(check string) "minted by the analyzer" "subc_analysis"
            (Explore.Certificate.tool cert);
          Alcotest.(check bool) "obligations discharged" true
            (List.mem "pairwise-commutation"
               (Explore.Certificate.obligations cert));
          let sym = Symmetry.standard ~n:3 ~input_base:100 `Rotations in
          ignore (Explore.certified_reduction ~certificate:cert (Some sym)));
    test "certify refuses when any finding is not proved" (fun () ->
        match Analyzer.certify ~family:"bad" [ lying_independence () ] with
        | Ok _ -> Alcotest.fail "expected no certificate"
        | Error fs ->
          Alcotest.(check bool) "at least one refuted finding" true
            (List.exists (fun f -> Verdict.is_refuted f.Analyzer.verdict) fs));
  ]

(* --- the abstract interpreter: footprints, bounds, and DSL lints --- *)

module Absint = Subc_analysis.Absint
module Footprint = Subc_analysis.Footprint

let objects_entry () =
  match Registry.find "objects" with
  | Some e -> e
  | None -> Alcotest.fail "no objects family"

let objects_protocol name =
  let e = objects_entry () in
  let p =
    List.find
      (fun (p : Absint.protocol) -> p.Absint.p_name = name)
      e.Registry.protocols
  in
  (p, Registry.declared_alphabets e.Registry.subjects)

let absint_tests =
  [
    test "blessed busy-wait: clean lints, unbounded bound" (fun () ->
        let p, declared = objects_protocol "objects.busy-wait" in
        let r = Absint.analyze ~declared p in
        Alcotest.(check int) "no lints" 0 (List.length r.Absint.r_lints);
        Alcotest.(check bool) "unbounded" true
          (r.Absint.r_bound = Absint.Unbounded);
        Alcotest.(check bool) "not widened" false r.Absint.r_widened);
    test "straight-line sweep: exact footprint and wait-free bound"
      (fun () ->
        let p, declared = objects_protocol "objects.rmw-sweep" in
        let r = Absint.analyze ~declared p in
        Alcotest.(check int) "no lints" 0 (List.length r.Absint.r_lints);
        Alcotest.(check bool) "bounded by 4" true
          (r.Absint.r_bound = Absint.Bounded 4);
        Alcotest.(check int) "four (handle, op) pairs" 4
          (List.length r.Absint.r_footprint);
        let kinds =
          List.sort_uniq compare
            (List.map (fun (_, k, _) -> k) r.Absint.r_footprint)
        in
        Alcotest.(check (list string))
          "kinds" [ "cas"; "register"; "test_and_set" ] kinds;
        Alcotest.(check bool) "not widened" false r.Absint.r_widened);
  ]

(* Seeded protocol mutations: each DSL soundness bug must refute with a
   concrete witness through the same entry point the CI gate uses. *)

let register_decl =
  Absint.decl ~kind:"register" [ op "read" []; op "write" [ tok 0 ] ]

let expect_lint_refuted ~name protocol_of =
  let p = protocol_of () in
  let f =
    Analyzer.lint_protocol ~family:"mutant" ~declared:[ register_decl ] p
  in
  (match f.Analyzer.verdict with
  | Verdict.Refuted _ -> ()
  | v -> Alcotest.failf "%s: expected refuted, got %a" name Verdict.pp_summary v);
  let r = Absint.analyze ~declared:[ register_decl ] p in
  r.Absint.r_lints

(* The checkpoint hoisted above the loop's entry write: the same key now
   names two different resumption points, so its head shapes disagree. *)
let hoisted_checkpoint () =
  let store, r = Store.alloc Store.empty O.Register.model_bot in
  let open Program.Syntax in
  let rec loop () =
    let* () = Program.checkpoint (Value.Sym "spin") in
    let* v = Program.invoke r (op "read" []) in
    if Value.is_bot v then loop () else Program.return v
  in
  let hoisted =
    let* () = Program.checkpoint (Value.Sym "spin") in
    let* _ = Program.invoke r (op "write" [ tok 0 ]) in
    loop ()
  in
  Absint.protocol ~name:"mutant.hoisted-checkpoint" ~store hoisted

(* An op name the declared register alphabet does not contain. *)
let undeclared_op () =
  let store, r = Store.alloc Store.empty O.Register.model_bot in
  let open Program.Syntax in
  Absint.protocol ~name:"mutant.undeclared-op" ~store
    (let* _ = Program.invoke r (op "sneak" []) in
     Program.return Value.Unit)

(* The protocol touches a CAS object the declaration never mentions: an
   under-declared footprint. *)
let underdeclared_footprint () =
  let store, c = Store.alloc Store.empty O.Cas_obj.model_bot in
  let open Program.Syntax in
  Absint.protocol ~name:"mutant.underdeclared" ~store
    (let* _ = Program.invoke c (op "cas" [ Value.Bot; tok 0 ]) in
     Program.return Value.Unit)

(* A continuation reading hidden mutable state: applying it twice to the
   same response yields different resumption points. *)
let nondet_continuation () =
  let store, r = Store.alloc Store.empty O.Register.model_bot in
  let flip = ref false in
  Absint.protocol ~name:"mutant.nondet-continuation" ~store
    (Program.Invoke
       ( r,
         op "read" [],
         fun _ ->
           flip := not !flip;
           if !flip then Program.Return (tok 0) else Program.Return (tok 1) ))

let mutation_tests =
  [
    test "hoisted checkpoint refutes with a checkpoint witness" (fun () ->
        let lints =
          expect_lint_refuted ~name:"hoisted" hoisted_checkpoint
        in
        Alcotest.(check bool) "checkpoint inconsistency on the spin key" true
          (List.exists
             (function
               | Absint.Checkpoint_inconsistent { key } ->
                 Value.equal key (Value.Sym "spin")
               | _ -> false)
             lints));
    test "op outside the declared alphabet refutes" (fun () ->
        let lints = expect_lint_refuted ~name:"sneak" undeclared_op in
        Alcotest.(check bool) "op-outside-alphabet on sneak" true
          (List.exists
             (function
               | Absint.Op_outside_alphabet { kind; op = o } ->
                 kind = "register" && o.Op.name = "sneak"
               | _ -> false)
             lints));
    test "under-declared footprint refutes with the missing kind" (fun () ->
        let lints =
          expect_lint_refuted ~name:"underdeclared" underdeclared_footprint
        in
        Alcotest.(check bool) "undeclared-handle on the cas object" true
          (List.exists
             (function
               | Absint.Undeclared_handle { kind; _ } -> kind = "cas"
               | _ -> false)
             lints));
    test "an impure continuation refutes as nondeterministic" (fun () ->
        let lints =
          expect_lint_refuted ~name:"nondet" nondet_continuation
        in
        Alcotest.(check bool) "nondet-continuation on read" true
          (List.exists
             (function
               | Absint.Nondet_continuation { op = o; _ } ->
                 o.Op.name = "read"
               | _ -> false)
             lints));
  ]

(* --- the lint gate itself: every registry protocol must come back
   proved, exactly as the CI job demands --- *)

let lint_gate_tests =
  List.map
    (fun entry ->
      let family = entry.Registry.family in
      test
        (Printf.sprintf "lint gate: %s protocols are clean" family)
        (fun () ->
          let findings =
            if family = "alg5" then
              (* one exemplar: the three are rotations of one another and
                 each costs seconds of exact branch exploration over the
                 snapshot's view-vector responses *)
              let declared =
                Registry.declared_alphabets entry.Registry.subjects
              in
              [
                Analyzer.lint_protocol ~family ~declared
                  (List.hd entry.Registry.protocols);
              ]
            else Analyzer.lint ~family ()
          in
          Alcotest.(check bool) "has findings" true (findings <> []);
          List.iter
            (fun f ->
              if not (Verdict.is_proved f.Analyzer.verdict) then
                Alcotest.failf "%s: %a" (Analyzer.finding_name f)
                  Verdict.pp_summary f.Analyzer.verdict)
            findings))
    (Registry.entries ())

(* --- footprint classification and the static-table fast path --- *)

let register_fp_subject () =
  Subject.make ~name:"register-fp" ~model:O.Register.model_bot
    ~alphabet:[ op "read" []; op "write" [ tok 0 ]; op "write" [ tok 1 ] ]
    ~expected:Subject.Deterministic ()

let class_of fp a b =
  let norm (x, y) = if Op.compare x y <= 0 then (x, y) else (y, x) in
  match
    List.assoc_opt (norm (a, b))
      (List.map (fun (p, c) -> (norm p, c)) fp.Footprint.fp_pairs)
  with
  | Some c -> c
  | None -> Alcotest.failf "pair (%s, %s) not classified" a.Op.name b.Op.name

let static_class =
  Alcotest.testable
    (fun ppf -> function
      | Explore.Always_commute -> Format.pp_print_string ppf "always"
      | Explore.Never_commute -> Format.pp_print_string ppf "never"
      | Explore.State_dependent -> Format.pp_print_string ppf "state-dependent")
    ( = )

let footprint_tests =
  [
    test "register pairs classify into all three classes" (fun () ->
        match Footprint.of_subject (register_fp_subject ()) with
        | Error flaw -> Alcotest.failf "reach: %a" Reach.pp_flaw flaw
        | Ok (fp, _space) ->
          Alcotest.check static_class "reads always commute"
            Explore.Always_commute
            (class_of fp (op "read" []) (op "read" []));
          Alcotest.check static_class "distinct writes never commute"
            Explore.Never_commute
            (class_of fp (op "write" [ tok 0 ]) (op "write" [ tok 1 ]));
          Alcotest.check static_class "read vs write depends on the state"
            Explore.State_dependent
            (class_of fp (op "read" []) (op "write" [ tok 0 ])));
    test "installed table drives the fast-path lookup" (fun () ->
        (match Footprint.of_subject (register_fp_subject ()) with
        | Error flaw -> Alcotest.failf "reach: %a" Reach.pp_flaw flaw
        | Ok (fp, _) -> Footprint.install fp);
        let look a b =
          Explore.static_independent ~kind:"register" ~init:Value.Bot a b
        in
        Alcotest.(check (option bool))
          "reads decided commuting" (Some true)
          (look (op "read" []) (op "read" []));
        Alcotest.(check (option bool))
          "writes decided racing" (Some false)
          (look (op "write" [ tok 0 ]) (op "write" [ tok 1 ]));
        Alcotest.(check (option bool))
          "state-dependent pair abstains" None
          (look (op "read" []) (op "write" [ tok 0 ])));
    test "table lookups are order-insensitive and init-keyed" (fun () ->
        let kind = "test-fake-kind" and init = Value.Bot in
        let a = op "a" [] and b = op "b" [] and c = op "c" [] in
        Explore.install_static_independence ~kind ~init ~alphabet:[ a; b; c ]
          [
            ((a, b), Explore.Always_commute);
            ((a, c), Explore.Never_commute);
          ];
        let look = Explore.static_independent ~kind ~init in
        Alcotest.(check (option bool)) "a,b" (Some true) (look a b);
        Alcotest.(check (option bool)) "b,a (swapped)" (Some true) (look b a);
        Alcotest.(check (option bool)) "a,c" (Some false) (look a c);
        Alcotest.(check (option bool)) "uncovered pair" None (look b c);
        Alcotest.(check (option bool))
          "other init has no table" None
          (Explore.static_independent ~kind ~init:(tok 0) a b);
        Alcotest.(check (option bool))
          "other kind has no table" None
          (Explore.static_independent ~kind:"test-other-kind" ~init a b));
    test "conflicting re-install demotes, agreeing re-install keeps"
      (fun () ->
        let kind = "test-demotion-kind" and init = Value.Bot in
        let a = op "a" [] and b = op "b" [] and c = op "c" [] in
        let look = Explore.static_independent ~kind ~init in
        Explore.install_static_independence ~kind ~init ~alphabet:[ a; b; c ]
          [
            ((a, b), Explore.Always_commute);
            ((a, c), Explore.Never_commute);
          ];
        Explore.install_static_independence ~kind ~init ~alphabet:[ a; b ]
          [ ((a, b), Explore.Never_commute) ];
        Alcotest.(check (option bool))
          "conflicting classes abstain" None (look a b);
        Explore.install_static_independence ~kind ~init ~alphabet:[ a; c ]
          [ ((a, c), Explore.Never_commute) ];
        Alcotest.(check (option bool))
          "agreeing classes survive" (Some false) (look a c));
    test "certificates attest the static-independence obligation" (fun () ->
        let entry =
          match Registry.find "alg2" with
          | Some e -> e
          | None -> Alcotest.fail "no alg2 family"
        in
        match Analyzer.certify ~family:"alg2" entry.Registry.subjects with
        | Error fs ->
          Alcotest.failf "certify failed with %d findings" (List.length fs)
        | Ok cert ->
          Alcotest.(check bool) "static-independence discharged" true
            (List.mem "static-independence"
               (Explore.Certificate.obligations cert)));
  ]

let suite =
  [
    ("analysis.registry", registry_tests);
    ("analysis.negative", negative_tests);
    ("analysis.mechanics", mechanics_tests);
    ("analysis.certificates", certificate_tests);
    ("analysis.absint", absint_tests);
    ("analysis.mutations", mutation_tests);
    ("analysis.lint-gate", lint_gate_tests);
    ("analysis.footprint", footprint_tests);
  ]
