(* Safe agreement and the BG simulation. *)
open Subc_sim
open Helpers
module Sa = Subc_bgsim.Safe_agreement
module Bg = Subc_bgsim.Bg
module Sim_code = Subc_bgsim.Sim_code
module Task = Subc_tasks.Task

(* A participant that joins and then spins on resolve until a decision. *)
let join_and_resolve sa ~me v =
  let open Program.Syntax in
  let* () = Sa.join sa ~me v in
  let rec wait () =
    let* r = Sa.resolve sa in
    match r with
    | Some d -> Program.return d
    | None ->
      let* () = Program.checkpoint (Value.Sym "sa-wait") in
      wait ()
  in
  wait ()

let sa_agreement_validity ~slots () =
  let store, sa = Sa.alloc Store.empty ~slots in
  let inputs = inputs slots in
  let programs = List.mapi (fun me v -> join_and_resolve sa ~me v) inputs in
  let config = Config.make store programs in
  let result =
    Explore.check_terminals config ~ok:(fun final ->
        let os = Task.outcomes ~inputs final in
        Result.is_ok (Task.consensus.Task.check os)
        && Result.is_ok (Task.all_decided.Task.check os))
  in
  match result with
  | Ok _ -> ()
  | Error (_, trace, _) ->
    Alcotest.failf "safe agreement violated:@.%a" Trace.pp trace

(* The unsafe window: if a joiner stalls mid-join, resolve can stay None
   forever — the model checker finds the blocking schedule as a cycle. *)
let sa_window_blocks () =
  let store, sa = Sa.alloc Store.empty ~slots:2 in
  let programs =
    [
      join_and_resolve sa ~me:0 (Value.Int 1);
      join_and_resolve sa ~me:1 (Value.Int 2);
    ]
  in
  let config = Config.make store programs in
  let cycle, _ = Explore.find_cycle config in
  Alcotest.(check bool) "a blocking schedule exists" true (cycle <> None)

(* A solo joiner always resolves to its own value. *)
let sa_solo () =
  let store, sa = Sa.alloc Store.empty ~slots:3 in
  let config =
    Config.make store [ join_and_resolve sa ~me:1 (Value.Int 9) ]
  in
  let r = Runner.run Runner.Round_robin config in
  Alcotest.check value "own value" (Value.Int 9) (decision_exn r.Runner.final 0)

(* --- BG simulation -------------------------------------------------- *)

(* Simulated protocol: write own id, snapshot, output the set of ids seen
   (as the raw view vector).  Legality of the simulated execution implies
   self-inclusion and pairwise containment of the decided views. *)
let view_codes m =
  List.init m (fun p ->
      Sim_code.write_then_snapshot (Value.Int (100 + p)) (fun view -> view))

let in_view view p = not (Value.is_bot (Value.vec_get view p))

let subset m a b =
  List.for_all (fun p -> (not (in_view a p)) || in_view b p) (List.init m Fun.id)

(* Collect each simulated process's decided view from the simulators'
   outputs (all simulators that report p's view report the same one —
   checked). *)
let decided_views m final n_simulators =
  let outputs =
    List.filter_map (Config.decision final) (List.init n_simulators Fun.id)
  in
  List.filter_map
    (fun p ->
      let views =
        List.filter_map
          (fun o ->
            match Value.vec_get o p with Value.Bot -> None | v -> Some v)
          outputs
      in
      match views with
      | [] -> None
      | v :: rest ->
        if List.for_all (Value.equal v) rest then Some (p, v)
        else Alcotest.failf "simulators disagree on process %d's view" p)
    (List.init m Fun.id)

let views_legal m views =
  List.for_all (fun (p, v) -> in_view v p) views
  && List.for_all
       (fun (_, a) ->
         List.for_all (fun (_, b) -> subset m a b || subset m b a) views)
       views

let bg_exhaustive ~n ~m () =
  let store, bg = Bg.alloc Store.empty ~simulators:n ~codes:(view_codes m) in
  let programs = List.init n (fun me -> Bg.simulate bg ~me) in
  let config = Config.make store programs in
  let result =
    Explore.check_terminals ~max_states:3_000_000 config ~ok:(fun final ->
        views_legal m (decided_views m final n))
  in
  match result with
  | Ok stats ->
    Alcotest.(check bool) "exhaustive" false stats.Explore.limited
  | Error (_, trace, _) ->
    Alcotest.failf "illegal simulated execution:@.%a" Trace.pp trace

let bg_sampled ~n ~m () =
  let store, bg = Bg.alloc Store.empty ~simulators:n ~codes:(view_codes m) in
  let programs = List.init n (fun me -> Bg.simulate bg ~me) in
  let config = Config.make store programs in
  List.iter
    (fun seed ->
      let r = Runner.run (Runner.Random seed) config in
      Alcotest.(check bool) "completed" true r.Runner.completed;
      let views = decided_views m r.Runner.final n in
      Alcotest.(check bool) "legal views" true (views_legal m views);
      (* With every simulator running to completion, every simulated
         process decides. *)
      Alcotest.(check int) "all simulated processes decided" m
        (List.length views))
    (seeds 60)

(* All simulators running normally never diverge. *)
let bg_terminates ~n ~m () =
  let store, bg = Bg.alloc Store.empty ~simulators:n ~codes:(view_codes m) in
  let programs = List.init n (fun me -> Bg.simulate bg ~me) in
  let config = Config.make store programs in
  let cycle, _ = Explore.find_cycle ~max_states:3_000_000 config in
  Alcotest.(check bool) "no infinite schedule" true (cycle = None)

(* A lone simulator simulates everything by itself. *)
let bg_solo_simulator () =
  let m = 3 in
  let store, bg = Bg.alloc Store.empty ~simulators:2 ~codes:(view_codes m) in
  let config = Config.make store [ Bg.simulate bg ~me:0 ] in
  let r = Runner.run Runner.Round_robin config in
  let out = decision_exn r.Runner.final 0 in
  (* Alone, it runs the m simulated processes sequentially: each view is
     everything written so far. *)
  List.iteri
    (fun p view ->
      Alcotest.(check bool)
        (Printf.sprintf "process %d sees itself" p)
        true
        (in_view view p))
    (Value.to_vec out);
  Alcotest.(check int) "all decided" m
    (List.length
       (List.filter (fun v -> not (Value.is_bot v)) (Value.to_vec out)))

(* n−1 resilience: crash simulator 1 after every possible prefix length;
   simulator 0 must still finish and decide at least m−(n−1) simulated
   processes. *)
let bg_crash_tolerance () =
  let m = 3 in
  let store, bg = Bg.alloc Store.empty ~simulators:2 ~codes:(view_codes m) in
  let programs = [ Bg.simulate bg ~me:0; Bg.simulate bg ~me:1 ] in
  let config = Config.make store programs in
  List.iter
    (fun prefix ->
      let crashed = Runner.run ~max_steps:prefix (Runner.Only [ 1 ]) config in
      let r = Runner.run (Runner.Only [ 0 ]) crashed.Runner.final in
      match Config.decision r.Runner.final 0 with
      | None ->
        Alcotest.failf "simulator 0 did not finish (crash prefix %d)" prefix
      | Some out ->
        let decided =
          List.length
            (List.filter (fun v -> not (Value.is_bot v)) (Value.to_vec out))
        in
        if decided < m - 1 then
          Alcotest.failf "only %d/%d decided after crash prefix %d" decided m
            prefix)
    (List.init 40 Fun.id)

let suite =
  [
    ( "bgsim.safe-agreement",
      [
        test "agreement+validity (2 procs, exhaustive)"
          (sa_agreement_validity ~slots:2);
        test "agreement+validity (3 procs, exhaustive)"
          (sa_agreement_validity ~slots:3);
        test "the unsafe window can block" sa_window_blocks;
        test "solo joiner decides its own value" sa_solo;
      ] );
    ( "bgsim.simulation",
      [
        test_slow "legal simulated views (n=2, m=2, exhaustive)"
          (bg_exhaustive ~n:2 ~m:2);
        test "legal simulated views (n=2, m=3, sampled)" (bg_sampled ~n:2 ~m:3);
        test "legal simulated views (n=3, m=4, sampled)" (bg_sampled ~n:3 ~m:4);
        test_slow "no divergence (n=2, m=2)" (bg_terminates ~n:2 ~m:2);
        test "a lone simulator finishes every simulated process"
          bg_solo_simulator;
        test "crash tolerance: every crash point of simulator 1"
          bg_crash_tolerance;
      ] );
  ]
