(* The classical hierarchy around the paper's band (experiments E2, E6). *)
open Subc_sim
open Helpers
module Two = Subc_classic.Two_consensus
module N = Subc_classic.N_consensus
module Groups = Subc_classic.Group_set_consensus
module Rw = Subc_classic.Rw_baseline
module Attempts = Subc_classic.Wrn_attempts
module Valence = Subc_check.Valence
module Task = Subc_tasks.Task

let check_two_consensus alloc () =
  List.iter
    (fun (v0, v1) ->
      let store, t = alloc Store.empty in
      let programs = [ Two.propose t ~me:0 v0; Two.propose t ~me:1 v1 ] in
      let config = Config.make store programs in
      match Valence.consensus_verdict config ~inputs:[ v0; v1 ] with
      | Verdict.Proved _ -> ()
      | v ->
        Alcotest.failf "2-consensus failed on (%a,%a): %a" Value.pp v0 Value.pp
          v1 Verdict.pp_summary v)
    [ (Value.Int 0, Value.Int 1); (Value.Int 1, Value.Int 0);
      (Value.Int 5, Value.Int 5) ]

let two_consensus_tests =
  [
    test "swap solves 2-consensus (exhaustive)" (check_two_consensus Two.alloc_swap);
    test "WRN₂ solves 2-consensus (exhaustive)" (check_two_consensus Two.alloc_wrn2);
    test "test-and-set solves 2-consensus (exhaustive)"
      (check_two_consensus Two.alloc_test_and_set);
    test "queue solves 2-consensus (exhaustive)" (check_two_consensus Two.alloc_queue);
  ]

let n_consensus_tests =
  [
    test "CAS solves 3-process consensus (exhaustive)" (fun () ->
        let store, t = N.alloc_cas Store.empty in
        let inputs = inputs 3 in
        let programs = List.map (fun v -> N.propose t v) inputs in
        let task = Task.conj Task.consensus Task.all_decided in
        ignore (check_exhaustive store ~programs ~inputs ~task));
    test "consensus object solves 4-process consensus (exhaustive)" (fun () ->
        let store, t = N.alloc_consensus_object Store.empty in
        let inputs = inputs 4 in
        let programs = List.map (fun v -> N.propose t v) inputs in
        let task = Task.conj Task.consensus Task.all_decided in
        ignore (check_exhaustive store ~programs ~inputs ~task));
  ]

let group_tests =
  [
    test "2 consensus groups give 2-set consensus for 4 (exhaustive)" (fun () ->
        let store, t = Groups.alloc Store.empty ~n:4 ~group_size:2 in
        let inputs = inputs 4 in
        let programs = List.mapi (fun i v -> Groups.propose t ~i v) inputs in
        let task =
          Task.conj
            (Task.set_consensus (Groups.agreement_bound ~n:4 ~group_size:2))
            Task.all_decided
        in
        ignore (check_exhaustive store ~programs ~inputs ~task));
    test "agreement bound formula" (fun () ->
        Alcotest.(check int) "⌈12/3⌉" 4 (Groups.agreement_bound ~n:12 ~group_size:3));
  ]

(* E2: the register-only baseline can be driven to k distinct decisions,
   while one WRN_k object caps them at k−1 on every schedule (tested in
   test_alg2).  Together: the register gap. *)
let rw_baseline_tests =
  [
    test "register baseline reaches k distinct decisions (k=3)" (fun () ->
        let k = 3 in
        let store, t = Rw.alloc Store.empty ~k in
        let inputs = inputs k in
        let programs = List.mapi (fun i v -> Rw.propose t ~i v) inputs in
        let config = Config.make store programs in
        let found, _ =
          Explore.find_terminal config ~violates:(fun final ->
              List.length (Task.distinct (Config.decisions final)) = k)
        in
        Alcotest.(check bool) "k distinct decisions reachable" true
          (found <> None));
    test "register baseline is still valid and wait-free" (fun () ->
        let k = 3 in
        let store, t = Rw.alloc Store.empty ~k in
        let inputs = inputs k in
        let programs = List.mapi (fun i v -> Rw.propose t ~i v) inputs in
        let task = Task.conj (Task.set_consensus k) Task.all_decided in
        ignore (check_exhaustive store ~programs ~inputs ~task));
  ]

(* E6: every natural 2-consensus attempt on WRN_k (k ≥ 3) fails; the same
   shapes succeed on WRN_2. *)
let attempt_verdict ~k ~style =
  let store, t = Attempts.alloc Store.empty ~k ~style in
  let programs =
    [ Attempts.propose t ~me:0 (Value.Int 0); Attempts.propose t ~me:1 (Value.Int 1) ]
  in
  let config = Config.make store programs in
  Valence.consensus_verdict config ~inputs:[ Value.Int 0; Value.Int 1 ]

let expect_violation_verdict ~k ~style () =
  match attempt_verdict ~k ~style with
  | Verdict.Refuted _ -> ()
  | v -> Alcotest.failf "expected Refuted, got %a" Verdict.pp_summary v

let wrn_attempt_tests =
  [
    test "mirror of Algorithm 2 fails on WRN₃"
      (expect_violation_verdict ~k:3 ~style:Attempts.Mirror_alg2);
    test "mirror of Algorithm 2 fails on WRN₄"
      (expect_violation_verdict ~k:4 ~style:Attempts.Mirror_alg2);
    test "same-index attempt fails on WRN₃"
      (expect_violation_verdict ~k:3 ~style:Attempts.Same_index);
    test "announce+adjacent attempt fails on WRN₃"
      (expect_violation_verdict ~k:3 ~style:Attempts.Adjacent_announce);
    test "busy-wait attempt diverges on WRN₃" (fun () ->
        match attempt_verdict ~k:3 ~style:Attempts.Busy_wait with
        | Verdict.Refuted { reason; _ } ->
          Alcotest.(check bool) "cites an infinite schedule" true
            (String.length reason > 0)
        | v -> Alcotest.failf "expected Refuted, got %a" Verdict.pp_summary v);
    test "the same mirror shape SOLVES consensus on WRN₂" (fun () ->
        match attempt_verdict ~k:2 ~style:Attempts.Mirror_alg2 with
        | Verdict.Proved _ -> ()
        | v -> Alcotest.failf "expected Proved, got %a" Verdict.pp_summary v);
    test "announce+adjacent also solves on WRN₂" (fun () ->
        match attempt_verdict ~k:2 ~style:Attempts.Adjacent_announce with
        | Verdict.Proved _ -> ()
        | v -> Alcotest.failf "expected Proved, got %a" Verdict.pp_summary v);
  ]

(* E9: the S2 strong-set-election object cannot solve 2-process consensus
   via the natural protocol shapes (its guarantees are sub-consensus). *)
let sse_weakness_tests =
  [
    test "SSE object: win/lose protocol fails 2-consensus" (fun () ->
        let k = 3 in
        let store, h =
          Store.alloc Store.empty (Subc_objects.Sse_obj.model ~k ~j:(k - 1))
        in
        let store, regs =
          Store.alloc_many store 2 Subc_objects.Register.model_bot
        in
        let program me v =
          let open Program.Syntax in
          let* () = Subc_objects.Register.write (List.nth regs me) v in
          let* w = Subc_objects.Sse_obj.propose h me in
          if w = me then Program.return v
          else Subc_objects.Register.read (List.nth regs (1 - me))
        in
        let config =
          Config.make store [ program 0 (Value.Int 0); program 1 (Value.Int 1) ]
        in
        match
          Valence.consensus_verdict config ~inputs:[ Value.Int 0; Value.Int 1 ]
        with
        | Verdict.Refuted _ -> ()
        | v -> Alcotest.failf "expected Refuted, got %a" Verdict.pp_summary v);
  ]

(* Tournament leader election from consensus objects (Common2-style). *)
let tournament_tests =
  let winners final n =
    List.length
      (List.filter
         (fun i -> Config.decision final i = Some (Value.Bool true))
         (List.init n Fun.id))
  in
  [
    test "exactly one winner (n=3, exhaustive)" (fun () ->
        let n = 3 in
        let store, t = Subc_classic.Tournament.alloc Store.empty ~n in
        let programs =
          List.init n (fun me ->
              Program.map
                (fun w -> Value.Bool w)
                (Subc_classic.Tournament.play t ~me))
        in
        let config = Config.make store programs in
        let result =
          Explore.check_terminals config ~ok:(fun final -> winners final n = 1)
        in
        Alcotest.(check bool) "one winner on every schedule" true
          (Result.is_ok result));
    test "exactly one winner (n=4, exhaustive)" (fun () ->
        let n = 4 in
        let store, t = Subc_classic.Tournament.alloc Store.empty ~n in
        let programs =
          List.init n (fun me ->
              Program.map
                (fun w -> Value.Bool w)
                (Subc_classic.Tournament.play t ~me))
        in
        let config = Config.make store programs in
        let result =
          Explore.check_terminals config ~ok:(fun final -> winners final n = 1)
        in
        Alcotest.(check bool) "one winner on every schedule" true
          (Result.is_ok result));
    test "a solo player wins; latecomers lose" (fun () ->
        let n = 3 in
        let store, t = Subc_classic.Tournament.alloc Store.empty ~n in
        let programs =
          List.init n (fun me ->
              Program.map
                (fun w -> Value.Bool w)
                (Subc_classic.Tournament.play t ~me))
        in
        let r =
          run_fixed store ~programs
            ~schedule:(List.concat [ List.init 4 (fun _ -> 1); [ 0; 0; 0; 2; 2; 2 ] ])
        in
        Alcotest.check value "P1 won" (Value.Bool true)
          (decision_exn r.Runner.final 1);
        Alcotest.check value "P0 lost" (Value.Bool false)
          (decision_exn r.Runner.final 0));
  ]

(* Herlihy's universal construction: a queue from consensus objects refines
   the primitive queue. *)
let universal_tests =
  let queue_spec = Subc_objects.Queue_obj.model [ Value.Int 0 ] in
  let outcomes_of store programs =
    let config = Config.make store programs in
    let acc = ref [] in
    let stats =
      Explore.iter_terminals config ~f:(fun final _ ->
          acc := Config.decisions final :: !acc)
    in
    Alcotest.(check bool) "exhaustive" false stats.Explore.limited;
    List.sort_uniq compare !acc
  in
  [
    test "universal queue refines the primitive queue (2 procs, exhaustive)"
      (fun () ->
        let ops =
          [ Op.make "deq" []; Op.make "enq" [ Value.Int 7 ] ]
        in
        (* Universal implementation. *)
        let store_u, u =
          Subc_classic.Universal.alloc Store.empty ~n:2 ~spec:queue_spec
        in
        let programs_u =
          List.mapi (fun me op -> Subc_classic.Universal.perform u ~me op) ops
        in
        let impl = outcomes_of store_u programs_u in
        (* Primitive object. *)
        let store_p, q = Store.alloc Store.empty queue_spec in
        let programs_p = List.map (fun op -> Program.invoke q op) ops in
        let spec = outcomes_of store_p programs_p in
        List.iter
          (fun o ->
            Alcotest.(check bool)
              (Format.asprintf "outcome %a reachable atomically" Value.pp
                 (Value.Vec o))
              true (List.mem o spec))
          impl);
    test "universal counter: sequential responses" (fun () ->
        let store, u =
          Subc_classic.Universal.alloc Store.empty ~n:3
            ~spec:Subc_objects.Counter_obj.model
        in
        let programs =
          [
            Subc_classic.Universal.perform u ~me:0 (Op.make "inc" []);
            Subc_classic.Universal.perform u ~me:1 (Op.make "inc" []);
            Subc_classic.Universal.perform u ~me:2 (Op.make "read" []);
          ]
        in
        let r =
          run_fixed store ~programs
            ~schedule:(List.concat [ List.init 5 (fun _ -> 0); List.init 5 (fun _ -> 1); List.init 5 (fun _ -> 2) ])
        in
        Alcotest.check value "read sees both incs" (Value.Int 2)
          (decision_exn r.Runner.final 2));
    test "universal construction is wait-free (3 procs)" (fun () ->
        let store, u =
          Subc_classic.Universal.alloc Store.empty ~n:3
            ~spec:Subc_objects.Counter_obj.model
        in
        let programs =
          List.init 3 (fun me ->
              Subc_classic.Universal.perform u ~me (Op.make "inc" []))
        in
        ignore (check_wait_free store ~programs));
  ]

(* E12: the consensus-number table. *)
let consensus_number_tests =
  let module Cn = Subc_classic.Consensus_number in
  let expect family ~n v () =
    let got = Cn.verdict family ~n in
    if got <> v then
      Alcotest.failf "%s at n=%d: unexpected verdict" (Cn.family_name family) n
  in
  [
    test "registers fail at n=2" (expect Cn.Register ~n:2 `Violates);
    test "WRN₃ fails at n=2" (expect (Cn.Wrn 3) ~n:2 `Violates);
    test "WRN₂ solves n=2" (expect (Cn.Wrn 2) ~n:2 `Solves);
    test "WRN₂ fails at n=3" (expect (Cn.Wrn 2) ~n:3 `Violates);
    test "swap solves n=2" (expect Cn.Swap ~n:2 `Solves);
    test "swap's canonical protocol fails at n=3" (expect Cn.Swap ~n:3 `Violates);
    test "test-and-set solves n=2" (expect Cn.Test_and_set ~n:2 `Solves);
    test "test-and-set fails at n=3" (expect Cn.Test_and_set ~n:3 `Violates);
    test "fetch-and-add solves n=2" (expect Cn.Fetch_and_add ~n:2 `Solves);
    test "fetch-and-add fails at n=3" (expect Cn.Fetch_and_add ~n:3 `Violates);
    test "queue solves n=2" (expect Cn.Queue ~n:2 `Solves);
    test "queue fails at n=3" (expect Cn.Queue ~n:3 `Violates);
    test "CAS solves n=3" (expect Cn.Cas ~n:3 `Solves);
    test "consensus object solves n=3" (expect Cn.Consensus_object ~n:3 `Solves);
    test "SSE object fails at n=2" (expect (Cn.Strong_set_election 3) ~n:2 `Violates);
  ]

(* E14: exhaustive protocol-space refutation. *)
let protocol_search_tests =
  let module Ps = Subc_classic.Protocol_search in
  [
    test "class sizes" (fun () ->
        Alcotest.(check int) "k=3 ops=1" 144
          (List.length (Ps.enumerate ~k:3 ~ops:1));
        Alcotest.(check int) "k=2 ops=1" 64
          (List.length (Ps.enumerate ~k:2 ~ops:1)));
    test "k=2, 1 op: the class contains solvers (swap protocol)" (fun () ->
        let c = Ps.census ~k:2 ~ops:1 () in
        Alcotest.(check bool) "some solver" true (c.Ps.solving > 0);
        Alcotest.(check bool) "an example is reported" true
          (c.Ps.example_solver <> None));
    test "k=3, 1 op: no protocol in the class solves consensus" (fun () ->
        let c = Ps.census ~k:3 ~ops:1 () in
        Alcotest.(check int) "zero solvers out of 144" 0 c.Ps.solving);
    test "k=4, 1 op: no protocol in the class solves consensus" (fun () ->
        let c = Ps.census ~k:4 ~ops:1 () in
        Alcotest.(check int) "zero solvers" 0 c.Ps.solving);
    test_slow "k=2, 2 ops: solvers still exist" (fun () ->
        let c = Ps.census ~k:2 ~ops:2 () in
        Alcotest.(check bool) "some solver" true (c.Ps.solving > 0));
    test_slow "k=3, 2 ops: still no solver (Lemma 38, exhaustively)"
      (fun () ->
        let c = Ps.census ~k:3 ~ops:2 () in
        Alcotest.(check int)
          (Printf.sprintf "zero solvers out of %d" c.Ps.total)
          0 c.Ps.solving);
  ]

let suite =
  [
    ("classic.two-consensus", two_consensus_tests);
    ("classic.tournament", tournament_tests);
    ("classic.universal", universal_tests);
    ("classic.consensus-number", consensus_number_tests);
    ("classic.protocol-search", protocol_search_tests);
    ("classic.n-consensus", n_consensus_tests);
    ("classic.groups", group_tests);
    ("classic.rw-baseline", rw_baseline_tests);
    ("classic.wrn-attempts", wrn_attempt_tests);
    ("classic.sse-weakness", sse_weakness_tests);
  ]
