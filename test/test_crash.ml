(* Fault injection: wait-free safety must survive arbitrary crashes — a
   crashed process is indistinguishable from a slow one, so validity and
   agreement hold on the partial outcomes.  Also exercises the
   linearizability checker's incomplete-operation path. *)
open Subc_sim
open Helpers
module Task = Subc_tasks.Task
module Task_check = Subc_check.Task_check
module Lin = Subc_check.Linearizability

let assert_no_crash_violations stats =
  if stats.Task_check.violations > 0 then
    Alcotest.failf "crash violations: %a" Task_check.pp_sample_stats stats

let alg2_crash_safety ~k () =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = inputs k in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
  (* No [all_decided] here: crashed processes legitimately never decide. *)
  let task = Task.set_consensus (k - 1) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 150))

let alg6_crash_safety ~n ~k () =
  let store, t = Subc_core.Alg6.alloc Store.empty ~n ~k ~one_shot:true in
  let inputs = inputs n in
  let programs = List.mapi (fun i v -> Subc_core.Alg6.propose t ~i v) inputs in
  let task = Task.set_consensus (Subc_core.Alg6.agreement_bound ~n ~k) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 150))

let alg3_crash_safety ~k () =
  let ids = [ 9; 2; 14 ] in
  let store, t =
    Subc_core.Alg3.alloc Store.empty ~k ~flavor:Subc_core.Alg3.Relaxed_wrn
      ~renamer:Subc_core.Alg3.Rename_immediate ()
  in
  let inputs = List.map (fun id -> Value.Int (100 + id)) ids in
  let programs =
    List.mapi
      (fun slot id -> Subc_core.Alg3.propose t ~slot ~id (Value.Int (100 + id)))
      ids
  in
  let task = Task.set_consensus (k - 1) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 100))

let sse_object_crash_safety () =
  let k = 3 in
  let store, h =
    Store.alloc Store.empty (Subc_objects.Sse_obj.model ~k ~j:(k - 1))
  in
  let programs =
    List.init k (fun i ->
        Program.map (fun w -> Value.Int w) (Subc_objects.Sse_obj.propose h i))
  in
  let inputs = List.init k (fun i -> Value.Int i) in
  let task = Task.strong_set_election (k - 1) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 150))

(* Algorithm 5 under crashes: every partial execution's history — with its
   incomplete operations — must still linearize against the 1sWRN spec. *)
let alg5_crash_linearizability () =
  let k = 3 in
  let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
  let programs =
    List.init k (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let ops i = Op.make "wrn" [ Value.Int i; Value.Int (100 + i) ] in
  let spec = Subc_objects.One_shot_wrn.model ~k in
  let config = Config.make store programs in
  let incomplete_seen = ref 0 in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let prefix = Random.State.int rng 20 in
      let survivor = Random.State.int rng k in
      let before = Runner.run ~max_steps:prefix (Runner.Random seed) config in
      let after = Runner.run (Runner.Only [ survivor ]) before.Runner.final in
      let trace = before.Runner.trace @ after.Runner.trace in
      let history = Lin.history ~ops after.Runner.final trace in
      if List.exists (fun r -> r.Lin.result = None) history then
        incr incomplete_seen;
      match Lin.check ~spec history with
      | Some _ -> ()
      | None ->
        Alcotest.failf "crashed run not linearizable (seed %d):@.%a" seed
          Lin.pp_history history)
    (seeds 200);
  Alcotest.(check bool) "some runs had incomplete operations" true
    (!incomplete_seen > 0)

(* The space-time diagram renderer. *)
let diagram_smoke () =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k:3 ~one_shot:true in
  let programs =
    List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) (inputs 3)
  in
  let config = Config.make store programs in
  let r = Runner.run (Runner.Random 3) config in
  let rendered =
    Format.asprintf "%a" (Trace.pp_diagram ~n_procs:3) r.Runner.trace
  in
  Alcotest.(check bool) "has a header row" true
    (String.length rendered > 0 && String.sub rendered 0 2 = "P0");
  (* one row per step + header + rule *)
  let lines = String.split_on_char '\n' (String.trim rendered) in
  Alcotest.(check int) "rows" (Trace.length r.Runner.trace + 2)
    (List.length lines)

let suite =
  [
    ( "crash.safety",
      [
        test "Algorithm 2 (k=3)" (alg2_crash_safety ~k:3);
        test "Algorithm 2 (k=5)" (alg2_crash_safety ~k:5);
        test "Algorithm 6 (n=6,k=3)" (alg6_crash_safety ~n:6 ~k:3);
        test "Algorithm 3 (k=3, relaxed, IS renaming)" (alg3_crash_safety ~k:3);
        test "SSE object strong election" sse_object_crash_safety;
        test "Algorithm 5 linearizable with incomplete ops"
          alg5_crash_linearizability;
      ] );
    ("crash.diagram", [ test "space-time diagram renders" diagram_smoke ]);
  ]
