(* Fault injection: wait-free safety must survive arbitrary crashes — a
   crashed process is indistinguishable from a slow one, so validity and
   agreement hold on the partial outcomes.  Also exercises the
   linearizability checker's incomplete-operation path. *)
open Subc_sim
open Helpers
module Task = Subc_tasks.Task
module Task_check = Subc_check.Task_check
module Lin = Subc_check.Linearizability

let assert_no_crash_violations stats =
  if stats.Task_check.violations > 0 then
    Alcotest.failf "crash violations: %a" Task_check.pp_sample_stats stats

let alg2_crash_safety ~k () =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = inputs k in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
  (* No [all_decided] here: crashed processes legitimately never decide. *)
  let task = Task.set_consensus (k - 1) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 150))

let alg6_crash_safety ~n ~k () =
  let store, t = Subc_core.Alg6.alloc Store.empty ~n ~k ~one_shot:true in
  let inputs = inputs n in
  let programs = List.mapi (fun i v -> Subc_core.Alg6.propose t ~i v) inputs in
  let task = Task.set_consensus (Subc_core.Alg6.agreement_bound ~n ~k) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 150))

let alg3_crash_safety ~k () =
  let ids = [ 9; 2; 14 ] in
  let store, t =
    Subc_core.Alg3.alloc Store.empty ~k ~flavor:Subc_core.Alg3.Relaxed_wrn
      ~renamer:Subc_core.Alg3.Rename_immediate ()
  in
  let inputs = List.map (fun id -> Value.Int (100 + id)) ids in
  let programs =
    List.mapi
      (fun slot id -> Subc_core.Alg3.propose t ~slot ~id (Value.Int (100 + id)))
      ids
  in
  let task = Task.set_consensus (k - 1) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 100))

let sse_object_crash_safety () =
  let k = 3 in
  let store, h =
    Store.alloc Store.empty (Subc_objects.Sse_obj.model ~k ~j:(k - 1))
  in
  let programs =
    List.init k (fun i ->
        Program.map (fun w -> Value.Int w) (Subc_objects.Sse_obj.propose h i))
  in
  let inputs = List.init k (fun i -> Value.Int i) in
  let task = Task.strong_set_election (k - 1) in
  assert_no_crash_violations
    (Task_check.sample_crashed store ~programs ~inputs ~task ~seeds:(seeds 150))

(* Algorithm 5 under crashes: every partial execution's history — with its
   incomplete operations — must still linearize against the 1sWRN spec. *)
let alg5_crash_linearizability () =
  let k = 3 in
  let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
  let programs =
    List.init k (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  let ops i = Op.make "wrn" [ Value.Int i; Value.Int (100 + i) ] in
  let spec = Subc_objects.One_shot_wrn.model ~k in
  let config = Config.make store programs in
  let incomplete_seen = ref 0 in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let prefix = Random.State.int rng 20 in
      let survivor = Random.State.int rng k in
      let before = Runner.run ~max_steps:prefix (Runner.Random seed) config in
      let after = Runner.run (Runner.Only [ survivor ]) before.Runner.final in
      let trace = before.Runner.trace @ after.Runner.trace in
      let history = Lin.history ~ops after.Runner.final trace in
      if List.exists (fun r -> r.Lin.result = None) history then
        incr incomplete_seen;
      match Lin.check ~spec history with
      | Some _ -> ()
      | None ->
        Alcotest.failf "crashed run not linearizable (seed %d):@.%a" seed
          Lin.pp_history history)
    (seeds 200);
  Alcotest.(check bool) "some runs had incomplete operations" true
    (!incomplete_seen > 0)

(* --- exhaustive crash sweeps (the model checker quantifies over crash
   patterns as well as interleavings) ------------------------------------ *)

let alg2_harness ~k =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k ~one_shot:true in
  let inputs = inputs k in
  let programs = List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) inputs in
  (store, programs, inputs)

(* Acceptance criterion: Alg 2 k=3 verified exhaustively under every crash
   pattern with at most 2 crashes. *)
let alg2_exhaustive_crash_sweep () =
  let store, programs, inputs = alg2_harness ~k:3 in
  let task = Task.set_consensus 2 in
  List.iter
    (fun (f, expect_states) ->
      let config = Config.make store programs in
      match
        Explore.check_terminals ~max_crashes:f config ~ok:(fun c ->
            Task.satisfies task ~inputs c)
      with
      | Ok stats ->
        Alcotest.(check bool)
          (Printf.sprintf "f=%d not truncated" f)
          false stats.Explore.limited;
        Alcotest.(check int)
          (Printf.sprintf "f=%d states" f)
          expect_states stats.Explore.states;
        if f > 0 then
          Alcotest.(check bool)
            (Printf.sprintf "f=%d reached crashed terminals" f)
            true
            (stats.Explore.crashed_terminals > 0)
      | Error (_, trace, _) ->
        Alcotest.failf "f=%d: crash pattern breaks safety:@.%a" f Trace.pp
          trace)
    [ (0, 16); (1, 31); (2, 37) ]

(* --- determinism of the crash adversaries ----------------------------- *)

let crash_random_deterministic () =
  let store, programs, _ = alg2_harness ~k:4 in
  let config = Config.make store programs in
  List.iter
    (fun seed ->
      let run () =
        Runner.run (Runner.Crash_random { seed; max_crashes = 3 }) config
      in
      let a = run () and b = run () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: identical trace" seed)
        (Trace.to_string a.Runner.trace)
        (Trace.to_string b.Runner.trace);
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: identical crash victims" seed)
        (Trace.crashes a.Runner.trace)
        (Trace.crashes b.Runner.trace))
    (seeds 20)

(* A crash-containing trace is a complete certificate: replaying it
   reproduces the terminal configuration, crashes included. *)
let crash_trace_replays () =
  let store, programs, _ = alg2_harness ~k:4 in
  let config = Config.make store programs in
  let replayed_crashes = ref 0 in
  List.iter
    (fun seed ->
      let r = Runner.run (Runner.Crash_random { seed; max_crashes = 3 }) config in
      match Replay.final config r.Runner.trace with
      | Error { at; reason } ->
        Alcotest.failf "seed %d: replay failed at %d: %s" seed at reason
      | Ok final ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: same decisions" seed)
          true
          (Config.decisions final = Config.decisions r.Runner.final);
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d: same crashed set" seed)
          (Config.crashed r.Runner.final)
          (Config.crashed final);
        if Config.crashed final <> [] then incr replayed_crashes)
    (seeds 30);
  Alcotest.(check bool) "some replayed runs contained crashes" true
    (!replayed_crashes > 0)

let crash_at_deterministic () =
  let store, programs, _ = alg2_harness ~k:4 in
  let config = Config.make store programs in
  let strategy = Runner.Crash_at { crashes = [ (1, 1); (2, 0) ]; seed = Some 5 } in
  let a = Runner.run strategy config and b = Runner.run strategy config in
  Alcotest.(check string) "identical trace"
    (Trace.to_string a.Runner.trace)
    (Trace.to_string b.Runner.trace);
  Alcotest.(check (list int)) "both victims died" [ 0; 1 ]
    (Config.crashed a.Runner.final)

(* --- progress properties ---------------------------------------------- *)

module Progress = Subc_check.Progress
module Verdict = Subc_check.Verdict

let metric name (v : Verdict.t) =
  match List.assoc_opt name (Verdict.stats v).Verdict.metrics with
  | Some x -> int_of_float x
  | None -> Alcotest.failf "verdict metric %S missing" name

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Acceptance criterion: wait-freedom certificate for Algorithm 2, even
   under a crash budget. *)
let alg2_wait_free_certificate () =
  let store, programs, _ = alg2_harness ~k:3 in
  match
    Progress.check_wait_free
      ~options:Search.(with_max_crashes 2 default)
      store ~programs
  with
  | Verdict.Proved _ as v ->
    Alcotest.(check int) "solo bound" 1 (metric "solo_bound" v);
    Alcotest.(check int) "configs" 37 (metric "configs" v)
  | v -> Alcotest.failf "not wait-free: %a" Verdict.pp_summary v

let alg5_wait_free_certificate () =
  let k = 3 in
  let store, t = Subc_core.Alg5.alloc Store.empty ~k () in
  let programs =
    List.init k (fun i -> Subc_core.Alg5.wrn t ~i (Value.Int (100 + i)))
  in
  match
    Progress.check_wait_free
      ~options:Search.(with_max_crashes 1 default)
      store ~programs
  with
  | Verdict.Proved _ as v ->
    Alcotest.(check int) "solo bound" 5 (metric "solo_bound" v)
  | v -> Alcotest.failf "not wait-free: %a" Verdict.pp_summary v

(* Acceptance criterion: a deliberately lock-free-only construction yields
   a counterexample schedule, not a certificate. *)
let spinner_counterexample () =
  let store, reg = Store.alloc Store.empty Subc_objects.Register.model_bot in
  let spinner =
    let open Program.Syntax in
    let rec spin () =
      let* () = Program.checkpoint (Value.Sym "spin") in
      let* v = Subc_objects.Register.read reg in
      if Value.is_bot v then spin () else Program.return v
    in
    spin ()
  in
  let writer =
    let open Program.Syntax in
    let* () = Subc_objects.Register.write reg (Value.Int 1) in
    Program.return (Value.Int 1)
  in
  match Progress.check_wait_free store ~programs:[ spinner; writer ] with
  | Verdict.Refuted { reason; trace; _ } ->
    Alcotest.(check bool) "the spinner is the culprit" true
      (contains reason "process 0 does not terminate running solo");
    Alcotest.(check bool) "counterexample has a schedule" true
      (Trace.length trace > 0)
  | v -> Alcotest.failf "spinner not refuted: %a" Verdict.pp_summary v

let alg2_t_resilient () =
  let store, programs, _ = alg2_harness ~k:3 in
  let v = Progress.check_t_resilient ~t:2 store ~programs in
  Alcotest.(check bool) "2-resilient termination proved" true
    (Verdict.is_proved v)

(* The space-time diagram renderer. *)
let diagram_smoke () =
  let store, t = Subc_core.Alg2.alloc Store.empty ~k:3 ~one_shot:true in
  let programs =
    List.mapi (fun i v -> Subc_core.Alg2.propose t ~i v) (inputs 3)
  in
  let config = Config.make store programs in
  let r = Runner.run (Runner.Random 3) config in
  let rendered =
    Format.asprintf "%a" (Trace.pp_diagram ~n_procs:3) r.Runner.trace
  in
  Alcotest.(check bool) "has a header row" true
    (String.length rendered > 0 && String.sub rendered 0 2 = "P0");
  (* one row per step + header + rule *)
  let lines = String.split_on_char '\n' (String.trim rendered) in
  Alcotest.(check int) "rows" (Trace.length r.Runner.trace + 2)
    (List.length lines)

let suite =
  [
    ( "crash.safety",
      [
        test "Algorithm 2 (k=3)" (alg2_crash_safety ~k:3);
        test "Algorithm 2 (k=5)" (alg2_crash_safety ~k:5);
        test "Algorithm 6 (n=6,k=3)" (alg6_crash_safety ~n:6 ~k:3);
        test "Algorithm 3 (k=3, relaxed, IS renaming)" (alg3_crash_safety ~k:3);
        test "SSE object strong election" sse_object_crash_safety;
        test "Algorithm 5 linearizable with incomplete ops"
          alg5_crash_linearizability;
      ] );
    ( "crash.exhaustive",
      [
        test "Algorithm 2 (k=3) safe under every pattern, f <= 2"
          alg2_exhaustive_crash_sweep;
      ] );
    ( "crash.determinism",
      [
        test "Crash_random: same seed, same trace" crash_random_deterministic;
        test "Crash_at: deterministic, victims die" crash_at_deterministic;
        test "crash traces replay to the same terminal config"
          crash_trace_replays;
      ] );
    ( "crash.progress",
      [
        test "Algorithm 2 (k=3) wait-free cert, f=2" alg2_wait_free_certificate;
        test "Algorithm 5 (k=3) wait-free cert, f=1" alg5_wait_free_certificate;
        test "lock-free spinner: counterexample schedule"
          spinner_counterexample;
        test "Algorithm 2 (k=3) 2-resilient" alg2_t_resilient;
      ] );
    ("crash.diagram", [ test "space-time diagram renders" diagram_smoke ]);
  ]
