(* Edge cases and error paths across the whole stack. *)
open Subc_sim
open Helpers
module Register = Subc_objects.Register

let value_edges =
  [
    test "vec_set out of range raises" (fun () ->
        match Value.vec_set (Value.bot_vec 2) 5 Value.Unit with
        | exception Value.Type_error _ -> ()
        | _ -> Alcotest.fail "expected Type_error");
    test "vec_get on non-vector raises" (fun () ->
        match Value.vec_get (Value.Int 3) 0 with
        | exception Value.Type_error _ -> ()
        | _ -> Alcotest.fail "expected Type_error");
    test "pair/to_pair roundtrip" (fun () ->
        let a, b = Value.to_pair (Value.pair (Value.Int 1) Value.Bot) in
        Alcotest.check value "fst" (Value.Int 1) a;
        Alcotest.check value "snd" Value.Bot b);
    test "of_int_list builds an int vector" (fun () ->
        Alcotest.check value "vec"
          (Value.Vec [ Value.Int 1; Value.Int 2 ])
          (Value.of_int_list [ 1; 2 ]));
    test "tags print with and without payloads" (fun () ->
        Alcotest.(check string) "unit payload" "win"
          (Value.to_string (Value.Tag ("win", Value.Unit)));
        Alcotest.(check string) "int payload" "win(3)"
          (Value.to_string (Value.Tag ("win", Value.Int 3))));
    test "vec_length and is_bot" (fun () ->
        Alcotest.(check int) "length" 4 (Value.vec_length (Value.bot_vec 4));
        Alcotest.(check bool) "bot" true (Value.is_bot Value.Bot);
        Alcotest.(check bool) "not bot" false (Value.is_bot Value.Unit));
  ]

let op_edges =
  [
    test "arg out of range raises Invalid_argument" (fun () ->
        let op = Op.make "write" [ Value.Int 1 ] in
        Alcotest.check value "arg 0" (Value.Int 1) (Op.arg op 0);
        match Op.arg op 1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "to_string shows arguments" (fun () ->
        Alcotest.(check string) "zero-arg" "scan"
          (Op.to_string (Op.make "scan" []));
        Alcotest.(check string) "two-arg" "wrn(1, ⊥)"
          (Op.to_string (Op.make "wrn" [ Value.Int 1; Value.Bot ])));
  ]

let store_edges =
  [
    test "unknown handle raises" (fun () ->
        let _store, h = Store.alloc Store.empty Register.model_bot in
        (* Handles from another store are just ints; probing state of a
           never-allocated one must fail loudly. *)
        let empty = Store.empty in
        match Store.apply empty h (Op.make "read" []) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "alloc_many allocates in order" (fun () ->
        let store, hs = Store.alloc_many Store.empty 3 Register.model_bot in
        Alcotest.(check int) "three handles" 3 (List.length hs);
        Alcotest.(check int) "contents in handle order" 3
          (List.length (Store.contents store)));
    test "kind reports the object class" (fun () ->
        let store, h = Store.alloc Store.empty (Subc_objects.Wrn.model ~k:3) in
        Alcotest.(check string) "kind" "wrn(3)" (Store.kind store h));
  ]

let checkpoint_edges =
  [
    test "checkpoint resets the canonical history" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let with_ckpt =
          let open Program.Syntax in
          let* _ = Register.read reg in
          let* () = Program.checkpoint (Value.Sym "s") in
          Register.read reg
        in
        let config = Config.make store [ with_ckpt ] in
        (* After one step + checkpoint, the history is [Sym "s"], so two
           different read-counts lead to the same canonical key. *)
        let step1 = fst (List.hd (Step.step config 0)) in
        let again =
          let open Program.Syntax in
          let* () = Program.checkpoint (Value.Sym "s") in
          Register.read reg
        in
        let direct = Config.make store [ again ] in
        Alcotest.(check bool) "same canonical key" true
          (Value.equal (Config.key step1) (Config.key direct)));
    test "checkpoint composes under bind" (fun () ->
        let program =
          let open Program.Syntax in
          let* () = Program.checkpoint (Value.Int 1) in
          Program.return (Value.Int 5)
        in
        let config = Config.make Store.empty [ program ] in
        Alcotest.(check bool) "terminal immediately" true
          (Config.is_terminal config);
        Alcotest.check value "value" (Value.Int 5) (decision_exn config 0));
  ]

let runner_edges =
  [
    test "Only strategy crashes the others" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let writer v =
          let open Program.Syntax in
          let* () = Register.write reg (Value.Int v) in
          Register.read reg
        in
        let config = Config.make store [ writer 1; writer 2 ] in
        let r = Runner.run (Runner.Only [ 0 ]) config in
        Alcotest.(check bool) "P1 never ran" true
          (Trace.events_of r.Runner.trace 1 = []);
        Alcotest.(check bool) "not a terminal configuration" false
          r.Runner.completed;
        Alcotest.check value "P0 decided" (Value.Int 1)
          (decision_exn r.Runner.final 0));
    test "Only reports completed when everything terminates" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let config = Config.make store [ Register.read reg ] in
        let r = Runner.run (Runner.Only [ 0 ]) config in
        Alcotest.(check bool) "completed" true r.Runner.completed);
    test "Fixed entries for finished processes are skipped" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let config =
          Config.make store [ Register.read reg; Register.read reg ]
        in
        let r = run_fixed store ~programs:[ Register.read reg; Register.read reg ]
            ~schedule:[ 0; 0; 0; 1 ] in
        ignore config;
        Alcotest.(check bool) "completed" true r.Runner.completed);
    test "different seeds usually differ" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let writer v =
          let open Program.Syntax in
          let* () = Register.write reg (Value.Int v) in
          Register.read reg
        in
        let config = Config.make store (List.init 4 writer) in
        let schedules =
          List.map
            (fun seed -> Trace.schedule (Runner.run (Runner.Random seed) config).Runner.trace)
            (List.init 10 (fun i -> i))
        in
        Alcotest.(check bool) "at least two distinct schedules" true
          (List.length (List.sort_uniq compare schedules) > 1));
  ]

let explore_edges =
  [
    test "max_depth marks limited" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let program =
          Program.for_ 0 50 (fun i -> Register.write reg (Value.Int i))
          |> fun p -> Program.bind p (fun () -> Program.return Value.Unit)
        in
        let config = Config.make store [ program ] in
        let stats =
          Explore.iter_terminals ~max_depth:5 config ~f:(fun _ _ -> ())
        in
        Alcotest.(check bool) "limited" true stats.Explore.limited);
    test "find_terminal stops early" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let writer v =
          let open Program.Syntax in
          let* () = Register.write reg (Value.Int v) in
          Register.read reg
        in
        let config = Config.make store (List.init 3 writer) in
        let full = Explore.iter_terminals config ~f:(fun _ _ -> ()) in
        let found, early =
          Explore.find_terminal config ~violates:(fun _ -> true)
        in
        Alcotest.(check bool) "found" true (found <> None);
        Alcotest.(check bool) "fewer states than full" true
          (early.Explore.states <= full.Explore.states));
    test "iter_terminals witness traces have terminal length" (fun () ->
        let store, reg = Store.alloc Store.empty Register.model_bot in
        let config = Config.make store [ Register.read reg ] in
        Explore.iter_terminals config ~f:(fun _ trace ->
            Alcotest.(check int) "one step" 1 (Trace.length trace))
        |> fun stats -> Alcotest.(check int) "one terminal" 1 stats.Explore.terminals);
  ]

let hierarchy_edges =
  let module H = Subc_core.Hierarchy in
  [
    test "implementable requires k ≥ j" (fun () ->
        Alcotest.(check bool) "k < j impossible" false
          (H.implementable ~n:4 ~k:1 ~m:3 ~j:2));
    test "partition bound with remainder larger than j" (fun () ->
        (* n=5, m=3, j=1: one full group (1 value) + remainder 2 capped at
           j=1 → 2. *)
        Alcotest.(check int) "bound" 2 (H.partition_bound ~n:5 ~m:3 ~j:1));
    test "same-k does not separate" (fun () ->
        Alcotest.(check bool) "k=k'" false (H.separates ~k:3 ~k':3));
  ]

let object_edges =
  [
    test "every object rejects foreign operations" (fun () ->
        let models =
          [
            Subc_objects.Counter_obj.model;
            Subc_objects.Swap_obj.model_bot;
            Subc_objects.Tas_obj.model;
            Subc_objects.Faa_obj.model;
            Subc_objects.Cas_obj.model_bot;
            Subc_objects.Queue_obj.model [];
            Subc_objects.Consensus_obj.model;
            Subc_objects.Wrn.model ~k:3;
            Subc_objects.One_shot_wrn.model ~k:3;
            Subc_objects.Set_consensus_obj.model ~n:2 ~k:1;
            Subc_objects.Sse_obj.model ~k:3 ~j:2;
            Subc_objects.Snapshot_obj.model ~n:2;
          ]
        in
        List.iter
          (fun m ->
            match m.Obj_model.apply m.Obj_model.init (Op.make "nonsense" []) with
            | exception Obj_model.Bad_op _ -> ()
            | _ -> Alcotest.failf "%s accepted nonsense" m.Obj_model.kind)
          models);
    test "SSE with j winners full defers forever after" (fun () ->
        let m = Subc_objects.Sse_obj.model ~k:4 ~j:1 in
        let state, r0 =
          match m.Obj_model.apply m.Obj_model.init (Op.make "propose" [ Value.Int 2 ]) with
          | [ x ] -> x
          | _ -> Alcotest.fail "first deterministic"
        in
        Alcotest.check value "first wins" (Value.Int 2) r0;
        List.iter
          (fun i ->
            List.iter
              (fun (_, resp) ->
                Alcotest.check value "defers to the unique king" (Value.Int 2) resp)
              (m.Obj_model.apply state (Op.make "propose" [ Value.Int i ])))
          [ 0; 1; 3 ]);
    test "queue roundtrip through a program" (fun () ->
        let store, q = Store.alloc Store.empty (Subc_objects.Queue_obj.model []) in
        let program =
          let open Program.Syntax in
          let* () = Subc_objects.Queue_obj.enqueue q (Value.Int 1) in
          let* a = Subc_objects.Queue_obj.dequeue q in
          let* b = Subc_objects.Queue_obj.dequeue q in
          Program.return (Value.Pair (a, b))
        in
        let r = run_fixed store ~programs:[ program ] ~schedule:[] in
        Alcotest.check value "fifo then empty"
          (Value.Pair (Value.Int 1, Value.Bot))
          (decision_exn r.Runner.final 0));
  ]

let task_edges =
  let module Task = Subc_tasks.Task in
  [
    test "conj composes names" (fun () ->
        let t = Task.conj Task.consensus Task.all_decided in
        Alcotest.(check bool) "mentions both" true
          (String.length t.Task.name > String.length "consensus"));
    test "set_election names include k" (fun () ->
        Alcotest.(check string) "name" "2-set-election"
          (Task.set_election 2).Task.name);
    test "empty outcome list satisfies everything" (fun () ->
        List.iter
          (fun t -> Alcotest.(check bool) t.Task.name true (Result.is_ok (t.Task.check [])))
          [ Task.consensus; Task.set_consensus 2; Task.strong_set_election 2;
            Task.renaming ~bound:3; Task.all_decided ]);
  ]

let suite =
  [
    ("edge.value", value_edges);
    ("edge.op", op_edges);
    ("edge.store", store_edges);
    ("edge.checkpoint", checkpoint_edges);
    ("edge.runner", runner_edges);
    ("edge.explore", explore_edges);
    ("edge.hierarchy", hierarchy_edges);
    ("edge.objects", object_edges);
    ("edge.tasks", task_edges);
  ]
